(* Recursive-descent parser for mini-C. *)

open Ast

exception Parse_error of string * int

type t = {
  toks : (Lexer.token * int) array;
  mutable cur : int;
}

let create toks = { toks = Array.of_list toks; cur = 0 }

let peek p = fst p.toks.(p.cur)
let peek2 p = if p.cur + 1 < Array.length p.toks then fst p.toks.(p.cur + 1) else Lexer.EOF
let line p = snd p.toks.(p.cur)

let advance p = if p.cur + 1 < Array.length p.toks then p.cur <- p.cur + 1

let error p msg =
  raise (Parse_error (Printf.sprintf "%s (found '%s')" msg (Lexer.token_to_string (peek p)), line p))

let expect p tok msg =
  if peek p = tok then advance p else error p ("expected " ^ msg)

let is_type_kw = function
  | Lexer.INT_KW | Lexer.FLOAT_KW | Lexer.VOID_KW -> true
  | _ -> false

let parse_type p =
  let base =
    match peek p with
    | Lexer.INT_KW -> Tint
    | Lexer.FLOAT_KW -> Tfloat
    | Lexer.VOID_KW -> Tvoid
    | _ -> error p "expected type"
  in
  advance p;
  let rec stars t = if peek p = Lexer.STAR then (advance p; stars (Tptr t)) else t in
  stars base

let parse_ident p =
  match peek p with
  | Lexer.IDENT s ->
      advance p;
      s
  | _ -> error p "expected identifier"

(* --- Expressions ------------------------------------------------------- *)

let mk line desc = { desc; line }

let rec parse_expr p = parse_ternary p

and parse_ternary p =
  let c = parse_lor p in
  if peek p = Lexer.QUESTION then begin
    let ln = line p in
    advance p;
    let a = parse_expr p in
    expect p Lexer.COLON "':'";
    let b = parse_ternary p in
    mk ln (Ternary (c, a, b))
  end
  else c

and parse_binary_level p ops sub =
  let lhs = sub p in
  let rec go lhs =
    match List.assoc_opt (peek p) ops with
    | Some op ->
        let ln = line p in
        advance p;
        let rhs = sub p in
        go (mk ln (Binary (op, lhs, rhs)))
    | None -> lhs
  in
  go lhs

and parse_lor p = parse_binary_level p [ (Lexer.OROR, Lor) ] parse_land
and parse_land p = parse_binary_level p [ (Lexer.ANDAND, Land) ] parse_bor
and parse_bor p = parse_binary_level p [ (Lexer.PIPE, Bor) ] parse_bxor
and parse_bxor p = parse_binary_level p [ (Lexer.CARET, Bxor) ] parse_band
and parse_band p = parse_binary_level p [ (Lexer.AMP, Band) ] parse_eq

and parse_eq p =
  parse_binary_level p [ (Lexer.EQ_OP, Eq); (Lexer.NE_OP, Ne) ] parse_rel

and parse_rel p =
  parse_binary_level p
    [ (Lexer.LT_OP, Lt); (Lexer.LE_OP, Le); (Lexer.GT_OP, Gt); (Lexer.GE_OP, Ge) ]
    parse_shift

and parse_shift p =
  parse_binary_level p [ (Lexer.SHL_OP, Shl); (Lexer.SHR_OP, Shr) ] parse_addsub

and parse_addsub p =
  parse_binary_level p [ (Lexer.PLUS, Add); (Lexer.MINUS, Sub) ] parse_muldiv

and parse_muldiv p =
  parse_binary_level p
    [ (Lexer.STAR, Mul); (Lexer.SLASH, Div); (Lexer.PERCENT, Mod) ]
    parse_unary

and parse_unary p =
  let ln = line p in
  match peek p with
  | Lexer.MINUS ->
      advance p;
      mk ln (Unary (Neg, parse_unary p))
  | Lexer.BANG ->
      advance p;
      mk ln (Unary (Lognot, parse_unary p))
  | Lexer.TILDE ->
      advance p;
      mk ln (Unary (Bitnot, parse_unary p))
  | Lexer.STAR ->
      advance p;
      mk ln (Unary (Deref, parse_unary p))
  | Lexer.AMP ->
      advance p;
      mk ln (Unary (Addr, parse_unary p))
  | Lexer.LPAREN when is_type_kw (peek2 p) ->
      (* cast *)
      advance p;
      let t = parse_type p in
      expect p Lexer.RPAREN "')'";
      mk ln (Cast (t, parse_unary p))
  | _ -> parse_postfix p

and parse_postfix p =
  let e = parse_primary p in
  let rec go e =
    match peek p with
    | Lexer.LBRACKET ->
        let ln = line p in
        advance p;
        let i = parse_expr p in
        expect p Lexer.RBRACKET "']'";
        go (mk ln (Index (e, i)))
    | Lexer.LPAREN ->
        let ln = line p in
        advance p;
        let args = parse_args p in
        let callee =
          match e.desc with Var s -> Direct s | _ -> Indirect e
        in
        go (mk ln (Call (callee, args)))
    | _ -> e
  in
  go e

and parse_args p =
  if peek p = Lexer.RPAREN then begin
    advance p;
    []
  end
  else
    let rec go acc =
      let e = parse_expr p in
      match peek p with
      | Lexer.COMMA ->
          advance p;
          go (e :: acc)
      | Lexer.RPAREN ->
          advance p;
          List.rev (e :: acc)
      | _ -> error p "expected ',' or ')'"
    in
    go []

and parse_primary p =
  let ln = line p in
  match peek p with
  | Lexer.NUM n ->
      advance p;
      mk ln (Num n)
  | Lexer.FNUM f ->
      advance p;
      mk ln (Fnum f)
  | Lexer.IDENT s ->
      advance p;
      mk ln (Var s)
  | Lexer.LPAREN ->
      advance p;
      let e = parse_expr p in
      expect p Lexer.RPAREN "')'";
      e
  | _ -> error p "expected expression"

(* --- Statements -------------------------------------------------------- *)

let expr_to_lvalue _p (e : expr) =
  match e.desc with
  | Var s -> Lvar s
  | Unary (Deref, e') -> Lderef e'
  | Index (a, i) -> Lindex (a, i)
  | _ -> raise (Parse_error ("invalid assignment target", e.line))

let mks line sdesc = { sdesc; sline = line }

let rec parse_stmt p =
  let ln = line p in
  match peek p with
  | t when is_type_kw t ->
      let ty = parse_type p in
      let name = parse_ident p in
      let alen =
        if peek p = Lexer.LBRACKET then begin
          advance p;
          match peek p with
          | Lexer.NUM n ->
              advance p;
              expect p Lexer.RBRACKET "']'";
              Some (Int64.to_int n)
          | _ -> error p "expected array length"
        end
        else None
      in
      let init =
        if peek p = Lexer.ASSIGN then begin
          advance p;
          Some (parse_expr p)
        end
        else None
      in
      expect p Lexer.SEMI "';'";
      mks ln (Sdecl (ty, name, alen, init))
  | Lexer.IF ->
      advance p;
      expect p Lexer.LPAREN "'('";
      let c = parse_expr p in
      expect p Lexer.RPAREN "')'";
      let thn = parse_stmt_or_block p in
      let els =
        if peek p = Lexer.ELSE then begin
          advance p;
          parse_stmt_or_block p
        end
        else []
      in
      mks ln (Sif (c, thn, els))
  | Lexer.WHILE ->
      advance p;
      expect p Lexer.LPAREN "'('";
      let c = parse_expr p in
      expect p Lexer.RPAREN "')'";
      let body = parse_stmt_or_block p in
      mks ln (Swhile (c, body))
  | Lexer.DO ->
      advance p;
      let body = parse_stmt_or_block p in
      expect p Lexer.WHILE "'while'";
      expect p Lexer.LPAREN "'('";
      let c = parse_expr p in
      expect p Lexer.RPAREN "')'";
      expect p Lexer.SEMI "';'";
      mks ln (Sdo (body, c))
  | Lexer.FOR ->
      advance p;
      expect p Lexer.LPAREN "'('";
      let init = if peek p = Lexer.SEMI then None else Some (parse_simple p) in
      expect p Lexer.SEMI "';'";
      let cond = if peek p = Lexer.SEMI then None else Some (parse_expr p) in
      expect p Lexer.SEMI "';'";
      let step = if peek p = Lexer.RPAREN then None else Some (parse_simple p) in
      expect p Lexer.RPAREN "')'";
      let body = parse_stmt_or_block p in
      mks ln (Sfor (init, cond, step, body))
  | Lexer.RETURN ->
      advance p;
      let e = if peek p = Lexer.SEMI then None else Some (parse_expr p) in
      expect p Lexer.SEMI "';'";
      mks ln (Sreturn e)
  | Lexer.BREAK ->
      advance p;
      expect p Lexer.SEMI "';'";
      mks ln Sbreak
  | Lexer.CONTINUE ->
      advance p;
      expect p Lexer.SEMI "';'";
      mks ln Scontinue
  | _ ->
      let s = parse_simple p in
      expect p Lexer.SEMI "';'";
      s

(* An assignment or expression without the trailing semicolon (also used in
   for-headers). *)
and parse_simple p =
  let ln = line p in
  let e = parse_expr p in
  if peek p = Lexer.ASSIGN then begin
    advance p;
    let rhs = parse_expr p in
    mks ln (Sassign (expr_to_lvalue p e, rhs))
  end
  else mks ln (Sexpr e)

and parse_stmt_or_block p =
  if peek p = Lexer.LBRACE then begin
    advance p;
    let rec go acc =
      if peek p = Lexer.RBRACE then begin
        advance p;
        List.rev acc
      end
      else go (parse_stmt p :: acc)
    in
    go []
  end
  else [ parse_stmt p ]

(* --- Top level --------------------------------------------------------- *)

let parse_global_init p ty =
  if peek p = Lexer.ASSIGN then begin
    advance p;
    if peek p = Lexer.LBRACE then begin
      advance p;
      let rec go acc =
        let v =
          match peek p with
          | Lexer.NUM n ->
              advance p;
              Int64.to_float n
          | Lexer.FNUM f ->
              advance p;
              f
          | Lexer.MINUS ->
              advance p;
              (match peek p with
              | Lexer.NUM n ->
                  advance p;
                  Int64.to_float (Int64.neg n)
              | Lexer.FNUM f ->
                  advance p;
                  -.f
              | _ -> error p "expected number")
          | _ -> error p "expected number"
        in
        match peek p with
        | Lexer.COMMA ->
            advance p;
            go (v :: acc)
        | Lexer.RBRACE ->
            advance p;
            List.rev (v :: acc)
        | _ -> error p "expected ',' or '}'"
      in
      Some (go [])
    end
    else
      match peek p with
      | Lexer.NUM n ->
          advance p;
          Some [ Int64.to_float n ]
      | Lexer.FNUM f ->
          advance p;
          Some [ f ]
      | Lexer.MINUS ->
          advance p;
          (match peek p with
          | Lexer.NUM n ->
              advance p;
              Some [ Int64.to_float (Int64.neg n) ]
          | Lexer.FNUM f ->
              advance p;
              Some [ -.f ]
          | _ -> error p "expected number")
      | _ -> error p "expected initializer"
  end
  else ignore ty |> fun () -> None

let parse_decl p =
  let ln = line p in
  let ty = parse_type p in
  let name = parse_ident p in
  if peek p = Lexer.LPAREN then begin
    (* function *)
    advance p;
    let params =
      if peek p = Lexer.RPAREN then begin
        advance p;
        []
      end
      else
        let rec go acc =
          let pt = parse_type p in
          let pn = parse_ident p in
          match peek p with
          | Lexer.COMMA ->
              advance p;
              go ((pt, pn) :: acc)
          | Lexer.RPAREN ->
              advance p;
              List.rev ((pt, pn) :: acc)
          | _ -> error p "expected ',' or ')'"
        in
        go []
    in
    expect p Lexer.LBRACE "'{'";
    let rec go acc =
      if peek p = Lexer.RBRACE then begin
        advance p;
        List.rev acc
      end
      else go (parse_stmt p :: acc)
    in
    let body = go [] in
    Dfunc { fname = name; ret = ty; params; body; fline = ln }
  end
  else begin
    (* global variable *)
    let alen =
      if peek p = Lexer.LBRACKET then begin
        advance p;
        match peek p with
        | Lexer.NUM n ->
            advance p;
            expect p Lexer.RBRACKET "']'";
            Some (Int64.to_int n)
        | _ -> error p "expected array length"
      end
      else None
    in
    let init = parse_global_init p ty in
    expect p Lexer.SEMI "';'";
    let ginit, gfinit =
      match (init, ty) with
      | None, _ -> (None, None)
      | Some vs, Tfloat -> (None, Some (Array.of_list vs))
      | Some vs, _ -> (Some (Array.of_list (List.map Int64.of_float vs)), None)
    in
    Dglobal { gty = ty; gname = name; array_len = alen; ginit; gfinit }
  end

let parse_program src =
  let p = create (Lexer.tokenize src) in
  let rec go acc =
    if peek p = Lexer.EOF then List.rev acc else go (parse_decl p :: acc)
  in
  go []
