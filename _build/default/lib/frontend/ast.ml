(* Abstract syntax of mini-C, the small imperative language the workload
   suite is written in.  It is a C subset with 64-bit ints, floats, pointers
   (with free int<->pointer conversion, needed to model the pointer/integer
   union types behind the paper's "wild loads"), arrays, and function
   pointers via C-style indirect calls. *)

type ty = Tint | Tfloat | Tptr of ty | Tvoid

type unop = Neg | Lognot | Bitnot | Deref | Addr

type binop =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne
  | Land | Lor (* short-circuit *)

type expr = {
  desc : expr_desc;
  line : int;
}

and expr_desc =
  | Num of int64
  | Fnum of float
  | Var of string
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Index of expr * expr (* a[i] *)
  | Call of callee * expr list
  | Cast of ty * expr
  | Ternary of expr * expr * expr (* c ? a : b *)

and callee =
  | Direct of string
  | Indirect of expr (* call through a function pointer expression *)

type lvalue =
  | Lvar of string
  | Lderef of expr
  | Lindex of expr * expr

type stmt = {
  sdesc : stmt_desc;
  sline : int;
}

and stmt_desc =
  | Sdecl of ty * string * int option * expr option
      (* type, name, array length, scalar initializer *)
  | Sassign of lvalue * expr
  | Sexpr of expr
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sdo of stmt list * expr (* do { } while (e); *)
  | Sfor of stmt option * expr option * stmt option * stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue

type func = {
  fname : string;
  ret : ty;
  params : (ty * string) list;
  body : stmt list;
  fline : int;
}

type global = {
  gty : ty;
  gname : string;
  array_len : int option;
  ginit : int64 array option;
  gfinit : float array option;
}

type decl = Dfunc of func | Dglobal of global

type program = decl list

let rec ty_to_string = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tptr t -> ty_to_string t ^ "*"
  | Tvoid -> "void"

(* Element size for pointer arithmetic: all our element types are 8 bytes. *)
let elem_size (_ : ty) = 8
