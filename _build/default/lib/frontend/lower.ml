(* Lowering from the mini-C AST to the low-level IR (the "Pcode generation /
   lowering" phases of Figure 4 in the paper).  The output is unoptimized,
   three-operand, virtual-register code: one IR function per source function,
   globals placed in the program's data segment, local arrays in the memory
   stack frame, scalars in virtual registers. *)

open Epic_ir
open Ast

exception Lower_error of string * int

let err line fmt = Fmt.kstr (fun s -> raise (Lower_error (s, line))) fmt

type binding =
  | Breg of Reg.t * ty (* scalar local or parameter *)
  | Bframe of int * ty (* local array: offset within the frame *)
  | Bglobal of Program.global * ty * bool (* global; bool = is_array *)
  | Bfunc of ty (* function name; value = code address *)

type env = {
  program : Program.t;
  fsigs : (string, ty * ty list) Hashtbl.t;
  mutable scopes : (string, binding) Hashtbl.t list;
  bld : Builder.t;
  mutable loop_stack : (string * string) list; (* (break_lbl, continue_lbl) *)
  mutable frame_off : int;
  ret_ty : ty;
}

let push_scope env = env.scopes <- Hashtbl.create 16 :: env.scopes
let pop_scope env =
  match env.scopes with _ :: tl -> env.scopes <- tl | [] -> ()

let bind env name b =
  match env.scopes with
  | s :: _ -> Hashtbl.replace s name b
  | [] -> invalid_arg "Lower.bind: no scope"

let rec lookup_scopes name = function
  | [] -> None
  | s :: tl -> (
      match Hashtbl.find_opt s name with
      | Some b -> Some b
      | None -> lookup_scopes name tl)

let lookup env line name =
  match lookup_scopes name env.scopes with
  | Some b -> b
  | None -> err line "undefined identifier %s" name

let is_float_ty = function Tfloat -> true | _ -> false

let reg_class ty = if is_float_ty ty then Reg.Flt else Reg.Int

(* --- Expression lowering ------------------------------------------------ *)

(* Result of lowering an expression: an operand plus its static type. *)
type rvalue = Operand.t * ty

let fresh_for env ty = Builder.fresh env.bld (reg_class ty)

let to_float env ((o, ty) : rvalue) : Operand.t =
  if is_float_ty ty then o
  else
    match o with
    | Operand.Imm i -> Operand.Fimm (Int64.to_float i)
    | _ ->
        let d = Builder.fresh env.bld Reg.Flt in
        ignore (Builder.emit env.bld Opcode.Cvt_if ~dsts:[ d ] ~srcs:[ o ]);
        Operand.Reg d

let to_int env ((o, ty) : rvalue) : Operand.t =
  if not (is_float_ty ty) then o
  else
    match o with
    | Operand.Fimm f -> Operand.imm64 (Int64.of_float f)
    | _ ->
        let d = Builder.fresh env.bld Reg.Int in
        ignore (Builder.emit env.bld Opcode.Cvt_fi ~dsts:[ d ] ~srcs:[ o ]);
        Operand.Reg d

let int_op_of_binop = function
  | Add -> Opcode.Add
  | Sub -> Opcode.Sub
  | Mul -> Opcode.Mul
  | Div -> Opcode.Div
  | Mod -> Opcode.Rem
  | Band -> Opcode.And
  | Bor -> Opcode.Or
  | Bxor -> Opcode.Xor
  | Shl -> Opcode.Shl
  | Shr -> Opcode.Sra (* C-style: arithmetic shift on signed ints *)
  | _ -> invalid_arg "int_op_of_binop"

let flt_op_of_binop = function
  | Add -> Opcode.Fadd
  | Sub -> Opcode.Fsub
  | Mul -> Opcode.Fmul
  | Div -> Opcode.Fdiv
  | _ -> invalid_arg "flt_op_of_binop"

let icmp_of_binop = function
  | Lt -> Opcode.Lt
  | Le -> Opcode.Le
  | Gt -> Opcode.Gt
  | Ge -> Opcode.Ge
  | Eq -> Opcode.Eq
  | Ne -> Opcode.Ne
  | _ -> invalid_arg "icmp_of_binop"

let is_cmp_binop = function
  | Lt | Le | Gt | Ge | Eq | Ne -> true
  | _ -> false

(* Address of an lvalue-ish expression; returns the address operand and the
   element type accessed through it. *)
let rec lower_address env (e : expr) : Operand.t * ty =
  match e.desc with
  | Var name -> (
      match lookup env e.line name with
      | Bframe (off, ty) ->
          let d = Builder.fresh env.bld Reg.Int in
          Builder.add env.bld d (Operand.Reg Reg.sp) (Operand.imm off);
          (Operand.Reg d, ty)
      | Bglobal (g, ty, _) ->
          let d = Builder.fresh env.bld Reg.Int in
          Builder.lea env.bld d g.Program.gname 0;
          (Operand.Reg d, ty)
      | Breg _ -> err e.line "cannot take the address of scalar local %s" name
      | Bfunc ty ->
          let d = Builder.fresh env.bld Reg.Int in
          Builder.lea env.bld d name 0;
          (Operand.Reg d, ty))
  | Unary (Deref, e') ->
      let o, ty = lower_expr env e' in
      let elem = match ty with Tptr t -> t | _ -> Tint in
      (to_int env (o, ty), elem)
  | Index (a, i) ->
      let base, bty = lower_base_address env a in
      let elem = match bty with Tptr t -> t | _ -> Tint in
      let iv = to_int env (lower_expr env i) in
      let scaled = Builder.fresh env.bld Reg.Int in
      Builder.binop env.bld Opcode.Shl scaled iv (Operand.imm 3);
      let addr = Builder.fresh env.bld Reg.Int in
      Builder.add env.bld addr base (Operand.Reg scaled);
      (Operand.Reg addr, elem)
  | _ -> err e.line "expression is not addressable"

(* The base address used by indexing: arrays decay to their address, pointer
   variables are read for their value. *)
and lower_base_address env (a : expr) : Operand.t * ty =
  match a.desc with
  | Var name -> (
      match lookup env a.line name with
      | Bframe (off, ty) ->
          let d = Builder.fresh env.bld Reg.Int in
          Builder.add env.bld d (Operand.Reg Reg.sp) (Operand.imm off);
          (Operand.Reg d, Tptr ty)
      | Bglobal (g, ty, true) ->
          let d = Builder.fresh env.bld Reg.Int in
          Builder.lea env.bld d g.Program.gname 0;
          (Operand.Reg d, Tptr ty)
      | Bglobal (_, ty, false) | Breg (_, ty) ->
          let o, t = lower_expr env a in
          (to_int env (o, t), if t = Tint then Tptr Tint else t)
          |> fun (o', _) -> (o', match ty with Tptr _ -> ty | _ -> Tptr Tint)
      | Bfunc _ -> err a.line "cannot index a function")
  | _ ->
      let o, t = lower_expr env a in
      (to_int env (o, t), match t with Tptr _ -> t | _ -> Tptr Tint)

and lower_expr env (e : expr) : rvalue =
  match e.desc with
  | Num n -> (Operand.imm64 n, Tint)
  | Fnum f -> (Operand.Fimm f, Tfloat)
  | Var name -> (
      match lookup env e.line name with
      | Breg (r, ty) -> (Operand.Reg r, ty)
      | Bglobal (g, ty, false) ->
          let a = Builder.fresh env.bld Reg.Int in
          Builder.lea env.bld a g.Program.gname 0;
          let d = fresh_for env ty in
          ignore (Builder.load env.bld d (Operand.Reg a));
          (Operand.Reg d, ty)
      | Bglobal (g, ty, true) ->
          (* array decays to pointer *)
          let a = Builder.fresh env.bld Reg.Int in
          Builder.lea env.bld a g.Program.gname 0;
          (Operand.Reg a, Tptr ty)
      | Bframe (off, ty) ->
          let d = Builder.fresh env.bld Reg.Int in
          Builder.add env.bld d (Operand.Reg Reg.sp) (Operand.imm off);
          (Operand.Reg d, Tptr ty)
      | Bfunc ty ->
          let d = Builder.fresh env.bld Reg.Int in
          Builder.lea env.bld d name 0;
          (Operand.Reg d, ty))
  | Unary (Neg, e') ->
      let o, ty = lower_expr env e' in
      if is_float_ty ty then begin
        let d = Builder.fresh env.bld Reg.Flt in
        ignore (Builder.emit env.bld Opcode.Fneg ~dsts:[ d ] ~srcs:[ to_float env (o, ty) ]);
        (Operand.Reg d, Tfloat)
      end
      else begin
        let d = Builder.fresh env.bld Reg.Int in
        Builder.sub env.bld d (Operand.imm 0) o;
        (Operand.Reg d, ty)
      end
  | Unary (Bitnot, e') ->
      let o, ty = lower_expr env e' in
      let d = Builder.fresh env.bld Reg.Int in
      Builder.binop env.bld Opcode.Xor d (to_int env (o, ty)) (Operand.imm (-1));
      (Operand.Reg d, Tint)
  | Unary (Lognot, _) | Binary ((Land | Lor), _, _) | Binary ((Lt | Le | Gt | Ge | Eq | Ne), _, _)
    ->
      (* Boolean in a value position: materialize 0/1 through control flow. *)
      lower_bool_value env e
  | Unary (Deref, e') ->
      let o, ty = lower_expr env e' in
      let elem = match ty with Tptr t -> t | _ -> Tint in
      let d = fresh_for env elem in
      ignore (Builder.load env.bld d (to_int env (o, ty)));
      (Operand.Reg d, elem)
  | Unary (Addr, e') ->
      let addr, ty = lower_address env e' in
      (addr, Tptr ty)
  | Binary (op, a, b) when not (is_cmp_binop op) -> (
      let ra = lower_expr env a in
      let rb = lower_expr env b in
      let fa = is_float_ty (snd ra) and fb = is_float_ty (snd rb) in
      if fa || fb then begin
        let d = Builder.fresh env.bld Reg.Flt in
        Builder.binop env.bld (flt_op_of_binop op) d (to_float env ra) (to_float env rb);
        (Operand.Reg d, Tfloat)
      end
      else
        (* pointer arithmetic: scale the integer side by the element size *)
        let scale side =
          let o = to_int env side in
          let s = Builder.fresh env.bld Reg.Int in
          Builder.binop env.bld Opcode.Shl s o (Operand.imm 3);
          Operand.Reg s
        in
        match (op, snd ra, snd rb) with
        | Add, Tptr t, _ ->
            let d = Builder.fresh env.bld Reg.Int in
            Builder.add env.bld d (fst ra) (scale rb);
            (Operand.Reg d, Tptr t)
        | Add, _, Tptr t ->
            let d = Builder.fresh env.bld Reg.Int in
            Builder.add env.bld d (scale ra) (fst rb);
            (Operand.Reg d, Tptr t)
        | Sub, Tptr t, (Tint | Tfloat | Tvoid) ->
            let d = Builder.fresh env.bld Reg.Int in
            Builder.sub env.bld d (fst ra) (scale rb);
            (Operand.Reg d, Tptr t)
        | _ ->
            let d = Builder.fresh env.bld Reg.Int in
            Builder.binop env.bld (int_op_of_binop op) d (to_int env ra) (to_int env rb);
            (Operand.Reg d, Tint))
  | Binary (_, _, _) -> lower_bool_value env e
  | Index (_, _) ->
      let addr, elem = lower_address env e in
      let d = fresh_for env elem in
      ignore (Builder.load env.bld d addr);
      (Operand.Reg d, elem)
  | Cast (ty, e') ->
      let o, t = lower_expr env e' in
      if is_float_ty ty && not (is_float_ty t) then (to_float env (o, t), Tfloat)
      else if (not (is_float_ty ty)) && is_float_ty t then (to_int env (o, t), ty)
      else (o, ty)
  | Ternary (c, a, b) ->
      let then_l = Builder.fresh_label env.bld "tern_t" in
      let else_l = Builder.fresh_label env.bld "tern_f" in
      let join_l = Builder.fresh_label env.bld "tern_j" in
      (* Result class decided by a quick type scan of the arms. *)
      let ty = if expr_is_float env a || expr_is_float env b then Tfloat else Tint in
      let d = fresh_for env ty in
      lower_cond env c ~if_true:then_l ~if_false:else_l;
      ignore (Builder.start_block env.bld then_l);
      let ra = lower_expr env a in
      Builder.mov env.bld d (if is_float_ty ty then to_float env ra else to_int env ra);
      Builder.br env.bld join_l;
      ignore (Builder.start_block env.bld else_l);
      let rb = lower_expr env b in
      Builder.mov env.bld d (if is_float_ty ty then to_float env rb else to_int env rb);
      ignore (Builder.start_block env.bld join_l);
      (Operand.Reg d, ty)
  | Call (callee, args) -> lower_call env e.line callee args

and expr_is_float env (e : expr) =
  match e.desc with
  | Fnum _ -> true
  | Num _ -> false
  | Var name -> (
      match lookup_scopes name env.scopes with
      | Some (Breg (_, t) | Bframe (_, t) | Bglobal (_, t, false)) -> is_float_ty t
      | _ -> false)
  | Binary ((Add | Sub | Mul | Div), a, b) -> expr_is_float env a || expr_is_float env b
  | Unary (Neg, a) -> expr_is_float env a
  | Cast (t, _) -> is_float_ty t
  | Ternary (_, a, b) -> expr_is_float env a || expr_is_float env b
  | Call (Direct f, _) -> (
      match Hashtbl.find_opt env.fsigs f with
      | Some (rt, _) -> is_float_ty rt
      | None -> false)
  | _ -> false

and lower_call env line callee args : rvalue =
  let argv =
    List.map
      (fun a ->
        let r = lower_expr env a in
        (* pass floats as floats, everything else as int *)
        if is_float_ty (snd r) then to_float env r else to_int env r)
      args
  in
  let ret_ty, direct_name =
    match callee with
    | Direct name -> (
        match Hashtbl.find_opt env.fsigs name with
        | Some (rt, _) -> (rt, Some name)
        | None -> (
            match Intrinsics.of_name name with
            | Some k ->
                let rt =
                  match k with
                  | Intrinsics.Malloc | Intrinsics.Input | Intrinsics.Input_len -> Tint
                  | _ -> Tvoid
                in
                (rt, Some name)
            | None -> (
                (* variable holding a function pointer: indirect call *)
                match lookup_scopes name env.scopes with
                | Some _ -> (Tint, None)
                | None -> err line "call to undefined function %s" name)))
    | Indirect _ -> (Tint, None)
  in
  let dsts = match ret_ty with Tvoid -> [] | t -> [ fresh_for env t ] in
  (match (direct_name, callee) with
  | Some name, _ -> ignore (Builder.call env.bld ~dsts name argv)
  | None, Direct name ->
      let fo, ft = lower_expr env { desc = Var name; line } in
      let target = Builder.fresh env.bld Reg.Int in
      Builder.mov env.bld target (to_int env (fo, ft));
      ignore (Builder.call_indirect env.bld ~dsts target argv)
  | None, Indirect fe ->
      let fo, ft = lower_expr env fe in
      let target = Builder.fresh env.bld Reg.Int in
      Builder.mov env.bld target (to_int env (fo, ft));
      ignore (Builder.call_indirect env.bld ~dsts target argv));
  match dsts with
  | [ d ] -> (Operand.Reg d, ret_ty)
  | _ -> (Operand.imm 0, Tvoid)

(* Lower a condition, branching to [if_true] or [if_false].  Handles
   short-circuit && / || by chaining blocks, comparisons directly via
   cmp+branch, everything else by comparing against zero.  Leaves the builder
   positioned in a dead block, so callers must start a block right after. *)
and lower_cond env (e : expr) ~if_true ~if_false =
  match e.desc with
  | Binary (Land, a, b) ->
      let mid = Builder.fresh_label env.bld "and_rhs" in
      lower_cond env a ~if_true:mid ~if_false;
      ignore (Builder.start_block env.bld mid);
      lower_cond env b ~if_true ~if_false
  | Binary (Lor, a, b) ->
      let mid = Builder.fresh_label env.bld "or_rhs" in
      lower_cond env a ~if_true ~if_false:mid;
      ignore (Builder.start_block env.bld mid);
      lower_cond env b ~if_true ~if_false
  | Unary (Lognot, a) -> lower_cond env a ~if_true:if_false ~if_false:if_true
  | Binary (op, a, b) when is_cmp_binop op ->
      let ra = lower_expr env a in
      let rb = lower_expr env b in
      let pt = Builder.fresh_pred env.bld and pf = Builder.fresh_pred env.bld in
      if is_float_ty (snd ra) || is_float_ty (snd rb) then
        ignore
          (Builder.emit env.bld
             (Opcode.Fcmp (icmp_of_binop op, Opcode.Norm))
             ~dsts:[ pt; pf ]
             ~srcs:[ to_float env ra; to_float env rb ])
      else
        Builder.cmp env.bld (icmp_of_binop op) pt pf (to_int env ra) (to_int env rb);
      ignore (Builder.emit ~pred:pt env.bld Opcode.Br ~srcs:[ Operand.Label if_true ]);
      Builder.br env.bld if_false
  | _ ->
      let o, ty = lower_expr env e in
      let pt = Builder.fresh_pred env.bld and pf = Builder.fresh_pred env.bld in
      Builder.cmp env.bld Opcode.Ne pt pf (to_int env (o, ty)) (Operand.imm 0);
      ignore (Builder.emit ~pred:pt env.bld Opcode.Br ~srcs:[ Operand.Label if_true ]);
      Builder.br env.bld if_false

(* Materialize a boolean expression as 0/1. *)
and lower_bool_value env (e : expr) : rvalue =
  let d = Builder.fresh env.bld Reg.Int in
  let t_l = Builder.fresh_label env.bld "bool_t" in
  let f_l = Builder.fresh_label env.bld "bool_f" in
  let j_l = Builder.fresh_label env.bld "bool_j" in
  lower_cond env e ~if_true:t_l ~if_false:f_l;
  ignore (Builder.start_block env.bld t_l);
  Builder.movi env.bld d 1;
  Builder.br env.bld j_l;
  ignore (Builder.start_block env.bld f_l);
  Builder.movi env.bld d 0;
  ignore (Builder.start_block env.bld j_l);
  (Operand.Reg d, Tint)

(* --- Statement lowering ------------------------------------------------- *)

let emit_epilogue_and_ret env vals =
  if env.frame_off > 0 then
    Builder.add env.bld Reg.sp (Operand.Reg Reg.sp) (Operand.imm env.frame_off);
  Builder.ret env.bld vals

let rec lower_stmts env stmts = List.iter (lower_stmt env) stmts

and lower_stmt env (s : stmt) =
  match s.sdesc with
  | Sdecl (ty, name, None, init) ->
      let r = Builder.fresh env.bld (reg_class ty) in
      bind env name (Breg (r, ty));
      (match init with
      | Some e ->
          let rv = lower_expr env e in
          Builder.mov env.bld r (if is_float_ty ty then to_float env rv else to_int env rv)
      | None -> ())
  | Sdecl (ty, name, Some n, _) ->
      (* Local array: carved from the pre-reserved stack frame.  Offsets were
         assigned in a pre-scan (see [lower_func]); look it up. *)
      ignore ty;
      ignore n;
      (match lookup_scopes name env.scopes with
      | Some (Bframe _) -> () (* already bound by the pre-scan *)
      | _ -> err s.sline "array %s missing from frame pre-scan" name)
  | Sassign (lv, e) -> (
      let rv = lower_expr env e in
      match lv with
      | Lvar name -> (
          match lookup env s.sline name with
          | Breg (r, ty) ->
              Builder.mov env.bld r (if is_float_ty ty then to_float env rv else to_int env rv)
          | Bglobal (g, ty, false) ->
              let a = Builder.fresh env.bld Reg.Int in
              Builder.lea env.bld a g.Program.gname 0;
              let v = if is_float_ty ty then to_float env rv else to_int env rv in
              ignore (Builder.store env.bld (Operand.Reg a) v)
          | Bglobal (_, _, true) | Bframe _ -> err s.sline "cannot assign to array %s" name
          | Bfunc _ -> err s.sline "cannot assign to function %s" name)
      | Lderef e' ->
          let o, ty = lower_expr env e' in
          let elem = match ty with Tptr t -> t | _ -> Tint in
          let v = if is_float_ty elem then to_float env rv else to_int env rv in
          ignore (Builder.store env.bld (to_int env (o, ty)) v)
      | Lindex (a, i) ->
          let addr, elem =
            lower_address env { desc = Index (a, i); line = s.sline }
          in
          let v = if is_float_ty elem then to_float env rv else to_int env rv in
          ignore (Builder.store env.bld addr v))
  | Sexpr e -> ignore (lower_expr env e)
  | Sif (c, thn, els) ->
      let t_l = Builder.fresh_label env.bld "if_t" in
      let f_l = Builder.fresh_label env.bld "if_f" in
      let j_l = Builder.fresh_label env.bld "if_j" in
      lower_cond env c ~if_true:t_l ~if_false:(if els = [] then j_l else f_l);
      ignore (Builder.start_block env.bld t_l);
      push_scope env;
      lower_stmts env thn;
      pop_scope env;
      Builder.br env.bld j_l;
      if els <> [] then begin
        ignore (Builder.start_block env.bld f_l);
        push_scope env;
        lower_stmts env els;
        pop_scope env;
        Builder.br env.bld j_l
      end;
      ignore (Builder.start_block env.bld j_l)
  | Swhile (c, body) ->
      let head_l = Builder.fresh_label env.bld "wh_head" in
      let body_l = Builder.fresh_label env.bld "wh_body" in
      let exit_l = Builder.fresh_label env.bld "wh_exit" in
      Builder.br env.bld head_l;
      ignore (Builder.start_block env.bld head_l);
      lower_cond env c ~if_true:body_l ~if_false:exit_l;
      ignore (Builder.start_block env.bld body_l);
      env.loop_stack <- (exit_l, head_l) :: env.loop_stack;
      push_scope env;
      lower_stmts env body;
      pop_scope env;
      env.loop_stack <- List.tl env.loop_stack;
      Builder.br env.bld head_l;
      ignore (Builder.start_block env.bld exit_l)
  | Sdo (body, c) ->
      let body_l = Builder.fresh_label env.bld "do_body" in
      let cont_l = Builder.fresh_label env.bld "do_cont" in
      let exit_l = Builder.fresh_label env.bld "do_exit" in
      Builder.br env.bld body_l;
      ignore (Builder.start_block env.bld body_l);
      env.loop_stack <- (exit_l, cont_l) :: env.loop_stack;
      push_scope env;
      lower_stmts env body;
      pop_scope env;
      env.loop_stack <- List.tl env.loop_stack;
      Builder.br env.bld cont_l;
      ignore (Builder.start_block env.bld cont_l);
      lower_cond env c ~if_true:body_l ~if_false:exit_l;
      ignore (Builder.start_block env.bld exit_l)
  | Sfor (init, cond, step, body) ->
      push_scope env;
      (match init with Some s' -> lower_stmt env s' | None -> ());
      let head_l = Builder.fresh_label env.bld "for_head" in
      let body_l = Builder.fresh_label env.bld "for_body" in
      let cont_l = Builder.fresh_label env.bld "for_cont" in
      let exit_l = Builder.fresh_label env.bld "for_exit" in
      Builder.br env.bld head_l;
      ignore (Builder.start_block env.bld head_l);
      (match cond with
      | Some c -> lower_cond env c ~if_true:body_l ~if_false:exit_l
      | None -> Builder.br env.bld body_l);
      ignore (Builder.start_block env.bld body_l);
      env.loop_stack <- (exit_l, cont_l) :: env.loop_stack;
      push_scope env;
      lower_stmts env body;
      pop_scope env;
      env.loop_stack <- List.tl env.loop_stack;
      Builder.br env.bld cont_l;
      ignore (Builder.start_block env.bld cont_l);
      (match step with Some s' -> lower_stmt env s' | None -> ());
      Builder.br env.bld head_l;
      ignore (Builder.start_block env.bld exit_l);
      pop_scope env
  | Sreturn e ->
      let vals =
        match e with
        | Some e' ->
            let rv = lower_expr env e' in
            [ (if is_float_ty env.ret_ty then to_float env rv else to_int env rv) ]
        | None -> []
      in
      emit_epilogue_and_ret env vals;
      (* continue in a fresh (dead) block for any trailing code *)
      ignore (Builder.start_block env.bld (Builder.fresh_label env.bld "dead"))
  | Sbreak -> (
      match env.loop_stack with
      | (brk, _) :: _ ->
          Builder.br env.bld brk;
          ignore (Builder.start_block env.bld (Builder.fresh_label env.bld "dead"))
      | [] -> err s.sline "break outside loop")
  | Scontinue -> (
      match env.loop_stack with
      | (_, cont) :: _ ->
          Builder.br env.bld cont;
          ignore (Builder.start_block env.bld (Builder.fresh_label env.bld "dead"))
      | [] -> err s.sline "continue outside loop")

(* Pre-scan a function body for local array declarations, assigning frame
   offsets.  Arrays keep their offsets across scopes (no reuse — simple and
   predictable). *)
let rec scan_arrays env stmts =
  List.iter
    (fun (s : stmt) ->
      match s.sdesc with
      | Sdecl (ty, name, Some n, _) ->
          let off = env.frame_off in
          env.frame_off <- off + (8 * n);
          bind env name (Bframe (off, ty))
      | Sif (_, a, b) ->
          scan_arrays env a;
          scan_arrays env b
      | Swhile (_, b) | Sdo (b, _) -> scan_arrays env b
      | Sfor (_, _, _, b) -> scan_arrays env b
      | Sdecl _ | Sassign _ | Sexpr _ | Sreturn _ | Sbreak | Scontinue -> ())
    stmts

let lower_func_with_globals program fsigs global_bindings (f : Ast.func) =
  let irf = Func.create f.fname [] in
  let bld = Builder.create irf in
  let env =
    { program; fsigs; scopes = [ Hashtbl.create 16; global_bindings ];
      bld; loop_stack = []; frame_off = 0; ret_ty = f.ret }
  in
  let param_regs =
    List.map
      (fun (ty, name) ->
        let r = Func.fresh_reg irf (reg_class ty) in
        bind env name (Breg (r, ty));
        r)
      f.params
  in
  irf.Func.params <- param_regs;
  ignore (Builder.start_block bld "entry");
  scan_arrays env f.body;
  irf.Func.frame_bytes <- env.frame_off;
  if env.frame_off > 0 then
    Builder.sub bld Reg.sp (Operand.Reg Reg.sp) (Operand.imm env.frame_off);
  irf.Func.returns_float <- is_float_ty f.ret;
  lower_stmts env f.body;
  emit_epilogue_and_ret env (if f.ret = Tvoid then [] else [ Operand.imm 0 ]);
  Func.remove_unreachable irf;
  irf

let lower_program (ast : Ast.program) : Program.t =
  Instr.reset_ids ();
  let program = Program.create () in
  let fsigs = Hashtbl.create 16 in
  (* First pass: declare globals and function signatures. *)
  let global_bindings = Hashtbl.create 64 in
  List.iter
    (function
      | Dglobal g ->
          let len = match g.array_len with Some n -> n | None -> 1 in
          let init =
            match (g.ginit, g.gfinit) with
            | Some ws, _ -> Some ws
            | None, Some fs -> Some (Array.map Int64.bits_of_float fs)
            | None, None -> None
          in
          let pg = Program.add_global program ?init g.gname ~size:(8 * len) in
          Hashtbl.replace global_bindings g.gname
            (Bglobal (pg, g.gty, g.array_len <> None))
      | Dfunc f ->
          Hashtbl.replace fsigs f.fname (f.ret, List.map fst f.params);
          Hashtbl.replace global_bindings f.fname (Bfunc Tint))
    ast;
  (* Second pass: lower function bodies. *)
  List.iter
    (function
      | Dglobal _ -> ()
      | Dfunc f ->
          Program.add_func program
            (lower_func_with_globals program fsigs global_bindings f))
    ast;
  Program.assign_addresses program;
  program

(* Convenience: parse and lower source text in one step. *)
let compile_source (src : string) : Program.t =
  lower_program (Parser.parse_program src)
