(* Hand-written lexer for mini-C. *)

type token =
  | INT_KW | FLOAT_KW | VOID_KW
  | IF | ELSE | WHILE | DO | FOR | RETURN | BREAK | CONTINUE
  | IDENT of string
  | NUM of int64
  | FNUM of float
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | SHL_OP | SHR_OP
  | LT_OP | LE_OP | GT_OP | GE_OP | EQ_OP | NE_OP
  | ANDAND | OROR | BANG
  | ASSIGN
  | QUESTION | COLON
  | EOF

exception Lex_error of string * int (* message, line *)

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
}

let create src = { src; pos = 0; line = 1 }

let peek_char lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance lx =
  (if lx.pos < String.length lx.src && lx.src.[lx.pos] = '\n' then
     lx.line <- lx.line + 1);
  lx.pos <- lx.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let keyword = function
  | "int" -> Some INT_KW
  | "float" -> Some FLOAT_KW
  | "void" -> Some VOID_KW
  | "if" -> Some IF
  | "else" -> Some ELSE
  | "while" -> Some WHILE
  | "do" -> Some DO
  | "for" -> Some FOR
  | "return" -> Some RETURN
  | "break" -> Some BREAK
  | "continue" -> Some CONTINUE
  | _ -> None

let rec skip_ws_and_comments lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance lx;
      skip_ws_and_comments lx
  | Some '/' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/' ->
      while peek_char lx <> None && peek_char lx <> Some '\n' do
        advance lx
      done;
      skip_ws_and_comments lx
  | Some '/' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '*' ->
      advance lx;
      advance lx;
      let rec go () =
        match peek_char lx with
        | None -> raise (Lex_error ("unterminated comment", lx.line))
        | Some '*' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/' ->
            advance lx;
            advance lx
        | Some _ ->
            advance lx;
            go ()
      in
      go ();
      skip_ws_and_comments lx
  | _ -> ()

let lex_number lx =
  let start = lx.pos in
  while (match peek_char lx with Some c -> is_digit c | None -> false) do
    advance lx
  done;
  let is_float =
    match peek_char lx with
    | Some '.' when lx.pos + 1 < String.length lx.src && is_digit lx.src.[lx.pos + 1] ->
        advance lx;
        while (match peek_char lx with Some c -> is_digit c | None -> false) do
          advance lx
        done;
        true
    | _ -> false
  in
  let s = String.sub lx.src start (lx.pos - start) in
  if is_float then FNUM (float_of_string s) else NUM (Int64.of_string s)

(* Returns (token, line-where-it-started). *)
let next lx =
  skip_ws_and_comments lx;
  let line = lx.line in
  let two t =
    advance lx;
    advance lx;
    (t, line)
  in
  let one t =
    advance lx;
    (t, line)
  in
  match peek_char lx with
  | None -> (EOF, line)
  | Some c when is_digit c -> (lex_number lx, line)
  | Some c when is_ident_start c ->
      let start = lx.pos in
      while (match peek_char lx with Some c -> is_ident_char c | None -> false) do
        advance lx
      done;
      let s = String.sub lx.src start (lx.pos - start) in
      ((match keyword s with Some k -> k | None -> IDENT s), line)
  | Some c -> (
      let next_is ch = lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = ch in
      match c with
      | '(' -> one LPAREN
      | ')' -> one RPAREN
      | '{' -> one LBRACE
      | '}' -> one RBRACE
      | '[' -> one LBRACKET
      | ']' -> one RBRACKET
      | ';' -> one SEMI
      | ',' -> one COMMA
      | '+' -> one PLUS
      | '-' -> one MINUS
      | '*' -> one STAR
      | '/' -> one SLASH
      | '%' -> one PERCENT
      | '~' -> one TILDE
      | '^' -> one CARET
      | '?' -> one QUESTION
      | ':' -> one COLON
      | '&' -> if next_is '&' then two ANDAND else one AMP
      | '|' -> if next_is '|' then two OROR else one PIPE
      | '<' ->
          if next_is '=' then two LE_OP
          else if next_is '<' then two SHL_OP
          else one LT_OP
      | '>' ->
          if next_is '=' then two GE_OP
          else if next_is '>' then two SHR_OP
          else one GT_OP
      | '=' -> if next_is '=' then two EQ_OP else one ASSIGN
      | '!' -> if next_is '=' then two NE_OP else one BANG
      | _ -> raise (Lex_error (Printf.sprintf "unexpected character %c" c, line)))

(* Tokenize the whole input, attaching line numbers. *)
let tokenize src =
  let lx = create src in
  let rec go acc =
    let t, line = next lx in
    match t with EOF -> List.rev ((EOF, line) :: acc) | _ -> go ((t, line) :: acc)
  in
  go []

let token_to_string = function
  | INT_KW -> "int"
  | FLOAT_KW -> "float"
  | VOID_KW -> "void"
  | IF -> "if"
  | ELSE -> "else"
  | WHILE -> "while"
  | DO -> "do"
  | FOR -> "for"
  | RETURN -> "return"
  | BREAK -> "break"
  | CONTINUE -> "continue"
  | IDENT s -> s
  | NUM n -> Int64.to_string n
  | FNUM f -> string_of_float f
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | AMP -> "&"
  | PIPE -> "|"
  | CARET -> "^"
  | TILDE -> "~"
  | SHL_OP -> "<<"
  | SHR_OP -> ">>"
  | LT_OP -> "<"
  | LE_OP -> "<="
  | GT_OP -> ">"
  | GE_OP -> ">="
  | EQ_OP -> "=="
  | NE_OP -> "!="
  | ANDAND -> "&&"
  | OROR -> "||"
  | BANG -> "!"
  | ASSIGN -> "="
  | QUESTION -> "?"
  | COLON -> ":"
  | EOF -> "<eof>"
