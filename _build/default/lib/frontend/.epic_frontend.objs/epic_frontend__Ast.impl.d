lib/frontend/ast.ml:
