lib/frontend/lower.ml: Array Ast Builder Epic_ir Fmt Func Hashtbl Instr Int64 Intrinsics List Opcode Operand Parser Program Reg
