(** Control-flow profiling (Figure 4's first phase): run the program under
    the reference interpreter on a training input and annotate the IR in
    place — block weights, branch taken probabilities, and per-site
    indirect-call target histograms (for specialization). *)

type t = {
  block_counts : (string * string, float) Hashtbl.t;
  branch_exec : (int, float) Hashtbl.t;
  branch_taken : (int, float) Hashtbl.t;
  indirect_targets : (int, (string, float) Hashtbl.t) Hashtbl.t;
  call_counts : (string, float) Hashtbl.t;
  mutable train_executed : int;
}

val create : unit -> t

(** Run on [input]; returns (profile, exit code, output). *)
val collect : Epic_ir.Program.t -> int64 array -> t * int * string

(** Write the collected counts into the IR's weight/probability attrs. *)
val annotate : Epic_ir.Program.t -> t -> unit

val profile_and_annotate : Epic_ir.Program.t -> int64 array -> t

(** [Some (callee, fraction)] when one target receives at least
    [threshold] of an indirect site's calls. *)
val dominant_target : t -> int -> threshold:float -> (string * float) option

(** Re-run and re-annotate after a CFG-changing transformation. *)
val reprofile : Epic_ir.Program.t -> int64 array -> unit
