(* Lightweight predicate-relation analysis, a simplified cousin of the
   BDD-based predicate analysis of Sias et al. [MICRO-33], used by the
   dependence-DAG builder and register allocator: two instructions guarded by
   provably-disjoint predicates can never both execute, so output/anti
   dependences between them may be dropped and their live ranges may share a
   register. *)

open Epic_ir

type def_info = {
  cmp_id : int; (* the compare instruction defining the predicate *)
  polarity : bool; (* true = the "true" target, false = the complement *)
  guard : Reg.t option; (* the compare's own qualifying predicate *)
}

type t = { defs : def_info Reg.Tbl.t }

(* Scan a block (typically a hyperblock) and record, for each predicate
   register, its unique defining compare, when it has exactly one. *)
let of_block (b : Block.t) =
  let defs = Reg.Tbl.create 16 in
  let multiply_defined = Reg.Tbl.create 16 in
  List.iter
    (fun (i : Instr.t) ->
      match i.Instr.op with
      | Opcode.Cmp (_, _) | Opcode.Fcmp (_, _) -> (
          match i.Instr.dsts with
          | [ pt; pf ] ->
              List.iter
                (fun (r, pol) ->
                  if Reg.Tbl.mem defs r || Reg.Tbl.mem multiply_defined r then begin
                    Reg.Tbl.remove defs r;
                    Reg.Tbl.replace multiply_defined r ()
                  end
                  else
                    Reg.Tbl.replace defs r
                      { cmp_id = i.Instr.id; polarity = pol; guard = i.Instr.pred })
                [ (pt, true); (pf, false) ]
          | _ -> ())
      | _ ->
          (* any other def of a predicate register invalidates tracking *)
          List.iter
            (fun (r : Reg.t) ->
              if r.Reg.cls = Reg.Prd then begin
                Reg.Tbl.remove defs r;
                Reg.Tbl.replace multiply_defined r ()
              end)
            i.Instr.dsts)
    b.Block.instrs;
  { defs }

(* Are [p] and [q] provably disjoint (never simultaneously true)?  True when
   they are the two targets of the same compare, under the same guard. *)
let disjoint t (p : Reg.t) (q : Reg.t) =
  if Reg.equal p q then false
  else
    match (Reg.Tbl.find_opt t.defs p, Reg.Tbl.find_opt t.defs q) with
    | Some a, Some b ->
        a.cmp_id = b.cmp_id && a.polarity <> b.polarity
        && (match (a.guard, b.guard) with
           | None, None -> true
           | Some g1, Some g2 -> Reg.equal g1 g2
           | _ -> false)
    | _ -> false

(* Disjointness lifted to instructions via their guards. *)
let instrs_disjoint t (a : Instr.t) (b : Instr.t) =
  match (a.Instr.pred, b.Instr.pred) with
  | Some p, Some q -> disjoint t p q
  | _ -> false
