(** Memory-dependence queries over the points-to tags (Section 2.2 "false
    dependences"): only the true, minimum set of arcs is drawn among loads,
    stores and calls. *)

(** Do two tag sets possibly overlap?  [None] is unknown and overlaps all. *)
val tags_may_alias : int list option -> int list option -> bool

val may_alias : Epic_ir.Instr.t -> Epic_ir.Instr.t -> bool

val intrinsic_touches_memory : Epic_ir.Intrinsics.kind -> bool
val call_touches_memory : Epic_ir.Instr.t -> bool

(** Ordering requirement between two memory-ish instructions, [a] preceding
    [b] in program order.  Advanced (data-speculated) loads are exempt from
    store→load ordering — that is the freedom ld.a/chk.a buys. *)
val must_order : Epic_ir.Instr.t -> Epic_ir.Instr.t -> bool
