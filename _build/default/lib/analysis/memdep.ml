(* Memory-dependence queries over the points-to tags, used by LICM, the
   dependence-DAG builder and the modulo scheduler to draw only the true,
   minimum set of arcs among loads, stores and calls (Section 2.2). *)

open Epic_ir

(* Do two tag sets possibly overlap?  [None] is unknown and overlaps all. *)
let tags_may_alias (a : int list option) (b : int list option) =
  match (a, b) with
  | None, _ | _, None -> true
  | Some xs, Some ys ->
      (* both sorted *)
      let rec go xs ys =
        match (xs, ys) with
        | [], _ | _, [] -> false
        | x :: xt, y :: yt ->
            if x = y then true else if x < y then go xt ys else go xs yt
      in
      go xs ys

let may_alias (a : Instr.t) (b : Instr.t) =
  tags_may_alias a.Instr.attrs.Instr.mem_tag b.Instr.attrs.Instr.mem_tag

(* Intrinsics that neither read nor write program-visible memory; calls to
   them need no memory dependence arcs. *)
let intrinsic_touches_memory = function
  | Intrinsics.Memcpy | Intrinsics.Memset -> true
  | Intrinsics.Malloc (* allocates, but the fresh pages are untouched *)
  | Intrinsics.Print_int | Intrinsics.Print_char | Intrinsics.Input
  | Intrinsics.Input_len | Intrinsics.Exit ->
      false

let call_touches_memory (i : Instr.t) =
  match Instr.callee i with
  | Some name -> (
      match Intrinsics.of_name name with
      | Some k -> intrinsic_touches_memory k
      | None -> true (* ordinary calls may touch anything *))
  | None -> true (* indirect *)

(* Ordering requirement between two instructions that both touch memory (or
   are calls), assuming [a] precedes [b] in program order. *)
let must_order (a : Instr.t) (b : Instr.t) =
  let a_call = Instr.is_call a and b_call = Instr.is_call b in
  if a_call || b_call then begin
    let mem_call i = Instr.is_call i && call_touches_memory i in
    let other_is_mem other = Instr.is_mem other || Instr.is_call other in
    (* Calls that touch memory order against every memory op and call;
       memory-silent intrinsic calls still order against other calls (I/O
       ordering: print output must stay in order). *)
    if a_call && b_call then true
    else if a_call then (call_touches_memory a && Instr.is_mem b) || mem_call a && other_is_mem b
    else (call_touches_memory b && Instr.is_mem a) || mem_call b && other_is_mem a
  end
  else
    (* a data-speculated (advanced) load is exactly the load freed from
       ordering against preceding may-aliasing stores; its chk.a recovers *)
    let advanced (i : Instr.t) =
      match i.Instr.op with Opcode.Ld (_, Opcode.Spec_advanced) -> true | _ -> false
    in
    if Instr.is_store a && advanced b then false
    else
      match (Instr.is_store a, Instr.is_store b) with
      | false, false -> false (* load-load: never ordered *)
      | _ -> may_alias a b
