(** Interprocedural, flow-insensitive points-to analysis (Andersen style),
    standing in for IMPACT's access-path pointer analysis.  Results are
    written onto loads and stores as abstract-location sets ([mem_tag]);
    values reaching address positions without a pointer source get an
    unknown tag — exactly the loads that become wild once speculated. *)

module Int_set : Set.S with type elt = int

type loc =
  | Lglobal of string
  | Lframe of string  (** a function's stack frame *)
  | Lheap of int  (** a malloc site, by instruction id *)

type t

(** Run the analysis over a whole program and annotate every memory
    instruction's [mem_tag].  With [enabled:false] (the paper disables
    pointer analysis for eon and perlbmk) all tags are set to unknown. *)
val analyze : ?enabled:bool -> Epic_ir.Program.t -> t

(** Human-readable name of an abstract location id. *)
val loc_to_string : t -> int -> string
