(* Control-flow profiling (Figure 4's "control flow profiling" phase): run
   the program under the high-level interpreter on a training input and
   annotate the IR in place — block entry counts, branch execution counts and
   taken probabilities, and per-site indirect call target histograms used by
   indirect call specialization. *)

open Epic_ir

type t = {
  block_counts : (string * string, float) Hashtbl.t; (* (func, label) -> count *)
  branch_exec : (int, float) Hashtbl.t; (* instr id -> executions *)
  branch_taken : (int, float) Hashtbl.t; (* instr id -> taken count *)
  indirect_targets : (int, (string, float) Hashtbl.t) Hashtbl.t;
  call_counts : (string, float) Hashtbl.t; (* callee -> dynamic calls *)
  mutable train_executed : int;
}

let create () =
  {
    block_counts = Hashtbl.create 256;
    branch_exec = Hashtbl.create 256;
    branch_taken = Hashtbl.create 256;
    indirect_targets = Hashtbl.create 16;
    call_counts = Hashtbl.create 64;
    train_executed = 0;
  }

let bump tbl key by =
  let cur = match Hashtbl.find_opt tbl key with Some c -> c | None -> 0. in
  Hashtbl.replace tbl key (cur +. by)

(* Run the program on [input] and collect counts.  Returns the profile and
   the program's (exit code, output) for sanity checking. *)
let collect (p : Program.t) (input : int64 array) =
  let prof = create () in
  let hooks =
    {
      Interp.on_block =
        (fun f b -> bump prof.block_counts (f.Func.name, b.Block.label) 1.);
      on_branch =
        (fun _ i taken ->
          bump prof.branch_exec i.Instr.id 1.;
          if taken then bump prof.branch_taken i.Instr.id 1.);
      on_call = (fun callee -> bump prof.call_counts callee 1.);
      on_indirect =
        (fun i callee ->
          let tbl =
            match Hashtbl.find_opt prof.indirect_targets i.Instr.id with
            | Some t -> t
            | None ->
                let t = Hashtbl.create 4 in
                Hashtbl.replace prof.indirect_targets i.Instr.id t;
                t
          in
          bump tbl callee 1.);
    }
  in
  let code, out, st = Interp.run ~hooks p input in
  prof.train_executed <- st.Interp.executed;
  (prof, code, out)

(* Write the collected counts into the IR's weight/probability attributes. *)
let annotate (p : Program.t) (prof : t) =
  List.iter
    (fun (f : Func.t) ->
      List.iter
        (fun (b : Block.t) ->
          let w =
            match Hashtbl.find_opt prof.block_counts (f.Func.name, b.Block.label) with
            | Some c -> c
            | None -> 0.
          in
          b.Block.weight <- w;
          List.iter
            (fun (i : Instr.t) ->
              i.Instr.attrs.Instr.weight <- w;
              if i.Instr.op = Opcode.Br then begin
                let e =
                  match Hashtbl.find_opt prof.branch_exec i.Instr.id with
                  | Some c -> c
                  | None -> 0.
                in
                let t =
                  match Hashtbl.find_opt prof.branch_taken i.Instr.id with
                  | Some c -> c
                  | None -> 0.
                in
                i.Instr.attrs.Instr.weight <- e;
                i.Instr.attrs.Instr.taken_prob <- (if e > 0. then t /. e else 0.)
              end)
            b.Block.instrs)
        f.Func.blocks)
    p.Program.funcs

(* One-step convenience: profile on [input] and annotate. *)
let profile_and_annotate (p : Program.t) (input : int64 array) =
  let prof, _, _ = collect p input in
  annotate p prof;
  prof

(* Dominant target of an indirect call site: [Some (callee, fraction)] when
   one target receives at least [threshold] of the calls. *)
let dominant_target (prof : t) (site : int) ~threshold =
  match Hashtbl.find_opt prof.indirect_targets site with
  | None -> None
  | Some tbl ->
      let total = Hashtbl.fold (fun _ c acc -> acc +. c) tbl 0. in
      if total <= 0. then None
      else
        let best, best_c =
          Hashtbl.fold
            (fun f c ((_, bc) as acc) -> if c > bc then (f, c) else acc)
            tbl ("", 0.)
        in
        if best_c /. total >= threshold then Some (best, best_c /. total)
        else None

(* After structural transformation the CFG changes; weights are re-derived by
   rerunning the profile.  For the copies created by duplication we fall back
   on scaling the origin instruction's weight; this helper re-annotates a
   transformed program from a fresh run. *)
let reprofile (p : Program.t) (input : int64 array) =
  ignore (profile_and_annotate p input)
