(* Call graph construction.  Direct call edges come from the IR; indirect
   edges come either from profile feedback (preferred, Section 3.1's indirect
   call specialization) or conservatively from the set of address-taken
   functions. *)

open Epic_ir

type edge = {
  caller : string;
  callee : string;
  site : int; (* call instruction id *)
  mutable count : float; (* dynamic calls from profile *)
}

type t = {
  edges : edge list;
  address_taken : string list;
}

let address_taken_funcs (p : Program.t) =
  let taken = Hashtbl.create 8 in
  Program.iter_instrs p (fun i ->
      match i.Instr.op with
      | Opcode.Lea -> (
          match i.Instr.srcs with
          | Operand.Sym s :: _ when Program.find_func p s <> None ->
              Hashtbl.replace taken s ()
          | _ -> ())
      | _ -> ());
  Hashtbl.fold (fun f () acc -> f :: acc) taken []

let compute (p : Program.t) =
  let address_taken = address_taken_funcs p in
  let edges = ref [] in
  List.iter
    (fun (f : Func.t) ->
      Func.iter_instrs f (fun i ->
          if Instr.is_call i then
            match Instr.callee i with
            | Some callee when not (Intrinsics.is_intrinsic callee) ->
                edges :=
                  { caller = f.Func.name; callee; site = i.Instr.id; count = i.Instr.attrs.Instr.weight }
                  :: !edges
            | Some _ -> ()
            | None ->
                (* indirect: conservatively an edge to each address-taken
                   function *)
                List.iter
                  (fun callee ->
                    edges :=
                      { caller = f.Func.name; callee; site = i.Instr.id; count = 0. }
                      :: !edges)
                  address_taken))
    p.Program.funcs;
  { edges = !edges; address_taken }

let callees t caller =
  List.filter_map
    (fun e -> if e.caller = caller then Some e.callee else None)
    t.edges
  |> List.sort_uniq compare

(* Is [f] reachable from [g] in the call graph (i.e. could a call to [g]
   re-enter [f])?  Used to refuse inlining of (mutually) recursive calls. *)
let reaches t g f =
  let seen = Hashtbl.create 16 in
  let rec go cur =
    if cur = f then true
    else if Hashtbl.mem seen cur then false
    else begin
      Hashtbl.add seen cur ();
      List.exists go (callees t cur)
    end
  in
  go g
