(* Interprocedural, flow-insensitive, context-insensitive points-to analysis
   in the style of Andersen, standing in for IMPACT's access-path based
   interprocedural pointer analysis [Cheng & Hwu, PLDI'00].  Its results are
   written onto every load and store as an abstract-location set ([mem_tag]),
   which the memory-dependence layer, LICM and the scheduler consult to
   break spurious dependences (Section 2.2, "False dependences").

   Abstract locations: one per global, one per function stack frame, one per
   malloc site.  Pointers may flow through integer arithmetic and through
   memory; values that reach an address position without any pointer source
   (e.g. pointer/integer unions filled from input data) end up with an empty
   set and are tagged unknown — exactly the loads that, once speculated,
   become the paper's "wild loads". *)

open Epic_ir

module Int_set = Set.Make (Int)

type loc = Lglobal of string | Lframe of string | Lheap of int

type node = Nreg of string * Reg.t | Nloc of loc

type t = {
  loc_of_id : (int, loc) Hashtbl.t;
  id_of_node : (node, int) Hashtbl.t;
  pts : (int, Int_set.t) Hashtbl.t;
  enabled : bool;
}

let node_id t node =
  match Hashtbl.find_opt t.id_of_node node with
  | Some i -> i
  | None ->
      let i = Hashtbl.length t.id_of_node in
      Hashtbl.replace t.id_of_node node i;
      (match node with Nloc l -> Hashtbl.replace t.loc_of_id i l | Nreg _ -> ());
      i

let get_pts t id =
  match Hashtbl.find_opt t.pts id with Some s -> s | None -> Int_set.empty

(* Solver state: copy edges and complex (deref) constraints, processed with a
   simple fixed-point worklist. *)
type solver = {
  an : t;
  copy_edges : (int, int list) Hashtbl.t; (* src -> dsts *)
  mutable load_cs : (int * int) list; (* (dst, addr): dst >= *addr *)
  mutable store_cs : (int * int) list; (* (addr, src): *addr >= src *)
}

let add_copy sv ~src ~dst =
  if src <> dst then
    let cur = match Hashtbl.find_opt sv.copy_edges src with Some l -> l | None -> [] in
    if not (List.mem dst cur) then Hashtbl.replace sv.copy_edges src (dst :: cur)

let add_base sv id loc =
  let lid = node_id sv.an (Nloc loc) in
  let cur = get_pts sv.an id in
  Hashtbl.replace sv.an.pts id (Int_set.add lid cur)

(* Generate constraints for one function. *)
let gen_constraints sv (p : Program.t) (f : Func.t) =
  let an = sv.an in
  let fname = f.Func.name in
  let rid (r : Reg.t) = node_id an (Nreg (fname, r)) in
  let operand_node (o : Operand.t) =
    match o with Operand.Reg r -> Some (rid r) | _ -> None
  in
  Func.iter_instrs f (fun (i : Instr.t) ->
      match i.Instr.op with
      | Opcode.Lea -> (
          match (i.Instr.dsts, i.Instr.srcs) with
          | [ d ], Operand.Sym s :: _ ->
              if Program.find_global p s <> None then add_base sv (rid d) (Lglobal s)
              (* function addresses carry no data locations *)
          | _ -> ())
      | Opcode.Mov | Opcode.Sxt _ -> (
          match (i.Instr.dsts, i.Instr.srcs) with
          | [ d ], [ s ] -> (
              match operand_node s with
              | Some sn -> add_copy sv ~src:sn ~dst:(rid d)
              | None -> ())
          | _ -> ())
      | Opcode.Add | Opcode.Sub -> (
          match (i.Instr.dsts, i.Instr.srcs) with
          | [ d ], [ a; b ] ->
              (* sp-relative addresses name this function's frame *)
              let handle (o : Operand.t) =
                match o with
                | Operand.Reg r when Reg.equal r Reg.sp -> add_base sv (rid d) (Lframe fname)
                | Operand.Reg r -> add_copy sv ~src:(rid r) ~dst:(rid d)
                | _ -> ()
              in
              handle a;
              handle b
          | _ -> ())
      | Opcode.Ld (_, _) -> (
          match (i.Instr.dsts, i.Instr.srcs) with
          | [ d ], [ Operand.Reg a ] -> sv.load_cs <- (rid d, rid a) :: sv.load_cs
          | _ -> ())
      | Opcode.St _ -> (
          match i.Instr.srcs with
          | [ Operand.Reg a; Operand.Reg v ] ->
              sv.store_cs <- (rid a, rid v) :: sv.store_cs
          | [ Operand.Reg _; _ ] -> () (* storing a constant *)
          | _ -> ())
      | Opcode.Br_call -> (
          match i.Instr.srcs with
          | Operand.Sym callee :: args -> (
              match Intrinsics.of_name callee with
              | Some Intrinsics.Malloc -> (
                  match i.Instr.dsts with
                  | [ d ] -> add_base sv (rid d) (Lheap i.Instr.id)
                  | _ -> ())
              | Some Intrinsics.Memcpy -> (
                  (* *dst >= *src: model as load through src into a fresh
                     temp, then store through dst *)
                  match args with
                  | Operand.Reg dst :: Operand.Reg src :: _ ->
                      let tmp = node_id an (Nreg (fname, Reg.virt (-i.Instr.id) Reg.Int)) in
                      sv.load_cs <- (tmp, rid src) :: sv.load_cs;
                      sv.store_cs <- (rid dst, tmp) :: sv.store_cs
                  | _ -> ())
              | Some _ -> ()
              | None -> (
                  match Program.find_func p callee with
                  | Some cf ->
                      List.iteri
                        (fun n (a : Operand.t) ->
                          match (operand_node a, List.nth_opt cf.Func.params n) with
                          | Some an', Some pr ->
                              add_copy sv ~src:an' ~dst:(node_id an (Nreg (callee, pr)))
                          | _ -> ())
                        args;
                      (* return values: connect every return site *)
                      List.iteri
                        (fun n (d : Reg.t) ->
                          Func.iter_instrs cf (fun ri ->
                              match ri.Instr.op with
                              | Opcode.Br_ret -> (
                                  match List.nth_opt ri.Instr.srcs n with
                                  | Some (Operand.Reg rr) ->
                                      add_copy sv ~src:(node_id an (Nreg (callee, rr)))
                                        ~dst:(rid d)
                                  | _ -> ())
                              | _ -> ()))
                        i.Instr.dsts
                  | None -> ()))
          | Operand.Reg _ :: args ->
              (* Indirect call: conservatively connect arguments to the
                 parameters of every address-taken function. *)
              List.iter
                (fun callee ->
                  match Program.find_func p callee with
                  | Some cf ->
                      List.iteri
                        (fun n (a : Operand.t) ->
                          match (operand_node a, List.nth_opt cf.Func.params n) with
                          | Some an', Some pr ->
                              add_copy sv ~src:an' ~dst:(node_id an (Nreg (callee, pr)))
                          | _ -> ())
                        args
                  | None -> ())
                (Callgraph.address_taken_funcs p)
          | ((Operand.Imm _ | Operand.Fimm _ | Operand.Label _) :: _ | []) -> ())
      | _ -> ())

let solve sv =
  let an = sv.an in
  let changed = ref true in
  let propagate_copy () =
    Hashtbl.iter
      (fun src dsts ->
        let s = get_pts an src in
        List.iter
          (fun d ->
            let old = get_pts an d in
            let nw = Int_set.union old s in
            if not (Int_set.equal old nw) then begin
              Hashtbl.replace an.pts d nw;
              changed := true
            end)
          dsts)
      sv.copy_edges
  in
  let contents_id loc_id =
    (* contents of a location are modelled as the pts set of the loc node *)
    loc_id
  in
  while !changed do
    changed := false;
    propagate_copy ();
    List.iter
      (fun (dst, addr) ->
        Int_set.iter
          (fun l ->
            let s = get_pts an (contents_id l) in
            let old = get_pts an dst in
            let nw = Int_set.union old s in
            if not (Int_set.equal old nw) then begin
              Hashtbl.replace an.pts dst nw;
              changed := true
            end)
          (get_pts an addr))
      sv.load_cs;
    List.iter
      (fun (addr, src) ->
        Int_set.iter
          (fun l ->
            let s = get_pts an src in
            let old = get_pts an (contents_id l) in
            let nw = Int_set.union old s in
            if not (Int_set.equal old nw) then begin
              Hashtbl.replace an.pts (contents_id l) nw;
              changed := true
            end)
          (get_pts an addr))
      sv.store_cs
  done

(* Annotate every memory instruction with the abstract locations its address
   may reference.  An empty set means the analysis saw no pointer source:
   tagged unknown ([None]) for conservative dependence treatment. *)
let annotate_program t (p : Program.t) =
  List.iter
    (fun (f : Func.t) ->
      Func.iter_instrs f (fun (i : Instr.t) ->
          let addr_operand =
            match i.Instr.op with
            | Opcode.Ld (_, _) -> (
                match i.Instr.srcs with [ a ] -> Some a | _ -> None)
            | Opcode.St _ -> (
                match i.Instr.srcs with a :: _ -> Some a | _ -> None)
            | _ -> None
          in
          match addr_operand with
          | Some (Operand.Reg r) -> (
              match Hashtbl.find_opt t.id_of_node (Nreg (f.Func.name, r)) with
              | Some id ->
                  let s = get_pts t id in
                  if Int_set.is_empty s then i.Instr.attrs.Instr.mem_tag <- None
                  else
                    i.Instr.attrs.Instr.mem_tag <-
                      Some (Int_set.elements s)
              | None -> i.Instr.attrs.Instr.mem_tag <- None)
          | Some (Operand.Imm _) ->
              (* constant address: unknown provenance *)
              i.Instr.attrs.Instr.mem_tag <- None
          | Some _ | None -> ()))
    p.Program.funcs

(* Run the analysis over the whole program and annotate it.  When [enabled]
   is false (the paper disables pointer analysis for eon and perlbmk), all
   memory tags are cleared to unknown instead. *)
let analyze ?(enabled = true) (p : Program.t) =
  if not enabled then begin
    Program.iter_instrs p (fun i ->
        if Instr.is_mem i then i.Instr.attrs.Instr.mem_tag <- None);
    {
      loc_of_id = Hashtbl.create 1;
      id_of_node = Hashtbl.create 1;
      pts = Hashtbl.create 1;
      enabled = false;
    }
  end
  else begin
    let an =
      {
        loc_of_id = Hashtbl.create 64;
        id_of_node = Hashtbl.create 256;
        pts = Hashtbl.create 256;
        enabled = true;
      }
    in
    let sv = { an; copy_edges = Hashtbl.create 256; load_cs = []; store_cs = [] } in
    List.iter (gen_constraints sv p) p.Program.funcs;
    solve sv;
    annotate_program an p;
    an
  end

let loc_to_string t id =
  match Hashtbl.find_opt t.loc_of_id id with
  | Some (Lglobal g) -> "@" ^ g
  | Some (Lframe f) -> "frame:" ^ f
  | Some (Lheap s) -> Printf.sprintf "heap:%d" s
  | None -> Printf.sprintf "loc:%d" id
