lib/analysis/profile.ml: Block Epic_ir Func Hashtbl Instr Interp List Opcode Program
