lib/analysis/memdep.mli: Epic_ir
