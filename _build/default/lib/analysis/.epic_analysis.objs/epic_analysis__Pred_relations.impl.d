lib/analysis/pred_relations.ml: Block Epic_ir Instr List Opcode Reg
