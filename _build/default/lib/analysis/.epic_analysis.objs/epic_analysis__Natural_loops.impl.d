lib/analysis/natural_loops.ml: Block Dominance Epic_ir Func Hashtbl Instr List
