lib/analysis/points_to.mli: Epic_ir Set
