lib/analysis/points_to.ml: Callgraph Epic_ir Func Hashtbl Instr Int Intrinsics List Opcode Operand Printf Program Reg Set
