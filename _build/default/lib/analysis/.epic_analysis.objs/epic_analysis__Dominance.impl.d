lib/analysis/dominance.ml: Array Block Epic_ir Func Hashtbl List
