lib/analysis/profile.mli: Epic_ir Hashtbl
