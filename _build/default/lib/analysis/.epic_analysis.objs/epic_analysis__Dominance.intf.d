lib/analysis/dominance.mli: Epic_ir
