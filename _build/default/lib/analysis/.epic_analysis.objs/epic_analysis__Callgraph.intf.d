lib/analysis/callgraph.mli: Epic_ir
