lib/analysis/liveness.mli: Epic_ir
