lib/analysis/natural_loops.mli: Epic_ir
