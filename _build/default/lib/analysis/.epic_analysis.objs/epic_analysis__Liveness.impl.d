lib/analysis/liveness.ml: Block Epic_ir Func Hashtbl Instr List Opcode Reg
