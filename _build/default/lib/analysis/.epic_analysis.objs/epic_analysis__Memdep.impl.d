lib/analysis/memdep.ml: Epic_ir Instr Intrinsics Opcode
