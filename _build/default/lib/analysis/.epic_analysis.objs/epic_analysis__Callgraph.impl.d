lib/analysis/callgraph.ml: Epic_ir Func Hashtbl Instr Intrinsics List Opcode Operand Program
