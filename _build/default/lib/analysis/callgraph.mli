(** Call-graph construction: direct edges from the IR, indirect edges
    conservatively to every address-taken function. *)

type edge = {
  caller : string;
  callee : string;
  site : int;  (** call instruction id *)
  mutable count : float;
}

type t = { edges : edge list; address_taken : string list }

val address_taken_funcs : Epic_ir.Program.t -> string list
val compute : Epic_ir.Program.t -> t
val callees : t -> string -> string list

(** Could a call to [g] re-enter [f]?  Used to refuse inlining of
    (mutually) recursive calls. *)
val reaches : t -> string -> string -> bool
