lib/sched/list_sched.mli: Epic_analysis Epic_ir
