lib/sched/dag.ml: Array Block Epic_analysis Epic_ir Epic_mach Func Instr Itanium List Liveness Memdep Opcode Pred_relations Reg
