lib/sched/list_sched.ml: Array Block Dag Epic_analysis Epic_ir Epic_mach Func Instr Itanium List Liveness Program
