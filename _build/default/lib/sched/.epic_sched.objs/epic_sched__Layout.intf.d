lib/sched/layout.mli: Epic_ir Epic_mach Hashtbl
