lib/sched/regalloc.ml: Block Epic_analysis Epic_ir Func Hashtbl Instr Int64 List Liveness Natural_loops Opcode Operand Option Program Reg
