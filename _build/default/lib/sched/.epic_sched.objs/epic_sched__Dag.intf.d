lib/sched/dag.mli: Epic_analysis Epic_ir
