lib/sched/modulo.mli: Epic_ir
