lib/sched/layout.ml: Array Block Bundle Epic_ir Epic_mach Epic_opt Func Hashtbl Instr Int64 Itanium List Program
