lib/sched/modulo.ml: Array Block Epic_ir Epic_mach Func Instr Itanium List Program Reg
