lib/sched/regalloc.mli: Epic_ir
