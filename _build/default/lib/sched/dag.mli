(** Dependence-DAG construction over one block (basic block, superblock or
    hyperblock).  Edges carry latencies; a latency-0 edge means the pair may
    share an issue group provided program order is preserved.

    Control rules encode the speculation model: branches pin later
    may-fault operations and later definitions of exit-live registers;
    stores/calls/checks above a branch may not sink below it; nothing may
    be scheduled after an unconditional transfer.  Control-speculative
    loads are exempt from the may-fault rule — the scheduling freedom the
    paper's Section 3.2 describes. *)

type t = {
  instrs : Epic_ir.Instr.t array;
  succs : (int * int) list array;  (** (target index, latency) *)
  preds : (int * int) list array;
  mutable n_edges : int;
}

val add_edge : t -> int -> int -> int -> unit

(** Registers defined for dependence purposes (a chk may rewrite its
    checked register during recovery). *)
val dep_defs : Epic_ir.Instr.t -> Epic_ir.Reg.t list

val build : Epic_ir.Func.t -> Epic_analysis.Liveness.t -> Epic_ir.Block.t -> t

(** Critical-path priority: longest latency-weighted path to any sink. *)
val priorities : t -> int array
