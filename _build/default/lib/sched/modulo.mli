(** Modulo-scheduling (IMS) analysis: initiation-interval bounds for
    single-block inner loops — ResMII from the Itanium 2 resource model,
    RecMII from loop-carried register recurrences.  Kernel code generation
    is played by unrolling + list scheduling (DESIGN.md §7); this module
    reports how close a schedule comes to the modulo bound
    (see [epicc --loops]). *)

type loop_analysis = {
  label : string;
  n_ops : int;
  res_mii : int;  (** resource-constrained minimum initiation interval *)
  rec_mii : int;  (** recurrence-constrained minimum initiation interval *)
  mii : int;  (** max of the two *)
  achieved_ii : int option;
      (** issue-cycle span of the block after list scheduling *)
}

(** Is this block an eligible software-pipelining candidate (a self-loop
    without calls)? Returns its analysis if so. *)
val analyze_block : Epic_ir.Block.t -> loop_analysis option

val analyze_func : Epic_ir.Func.t -> loop_analysis list

(** All eligible loops of a program, tagged with their function name. *)
val analyze : Epic_ir.Program.t -> (string * loop_analysis) list
