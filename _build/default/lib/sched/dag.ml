(* Dependence DAG construction over one block (basic block, superblock or
   hyperblock).  Edges carry latencies; a latency-0 edge means the pair may
   share an issue group provided program order is preserved (the in-order
   core executes a group's operations in program order, with IA-64 group
   semantics enforced by the latencies chosen here).

   Control rules implement the speculation model: a branch orders all later
   may-fault operations (so non-speculative loads cannot be hoisted above a
   side exit) and all later definitions of registers that are live into the
   branch's target (so hoisting cannot corrupt state observed at the exit).
   Speculative loads are exempt from the may-fault rule — that is exactly
   the scheduling freedom control speculation buys (Section 3.2). *)

open Epic_ir
open Epic_analysis
open Epic_mach

type t = {
  instrs : Instr.t array;
  succs : (int * int) list array; (* (target, latency) *)
  preds : (int * int) list array;
  mutable n_edges : int;
}

let add_edge g i j lat =
  if i <> j then begin
    (* keep the max latency for duplicate edges *)
    match List.assoc_opt j g.succs.(i) with
    | Some l when l >= lat -> ()
    | _ ->
        g.succs.(i) <- (j, lat) :: List.remove_assoc j g.succs.(i);
        g.preds.(j) <- (i, lat) :: List.remove_assoc i g.preds.(j);
        g.n_edges <- g.n_edges + 1
  end

(* Registers defined, for dependence purposes: a chk may rewrite the checked
   register during recovery. *)
let dep_defs (i : Instr.t) =
  match (i.Instr.op, i.Instr.attrs.Instr.check_reg) with
  | (Opcode.Chk _ | Opcode.Chka _), Some r -> r :: i.Instr.dsts
  | _ -> i.Instr.dsts

let build (_f : Func.t) (live : Liveness.t) (b : Block.t) =
  let instrs = Array.of_list b.Block.instrs in
  let n = Array.length instrs in
  let g = { instrs; succs = Array.make n []; preds = Array.make n []; n_edges = 0 } in
  let prels = Pred_relations.of_block b in
  (* last (possibly predicated) defs of each register, and uses since *)
  let defs_tbl : int list Reg.Tbl.t = Reg.Tbl.create 32 in
  let uses_tbl : int list Reg.Tbl.t = Reg.Tbl.create 32 in
  let mem_ops = ref [] in
  let branches = ref [] in
  let live_at_branch = Array.make n Reg.Set.empty in
  (* compute live-at-exit for each branch: live-in of its target *)
  Array.iteri
    (fun idx (i : Instr.t) ->
      if Instr.is_branch i then
        let s =
          match Instr.branch_target i with
          | Some t -> Liveness.live_in live t
          | None -> Reg.Set.empty
        in
        live_at_branch.(idx) <- s)
    instrs;
  Array.iteri
    (fun j (ij : Instr.t) ->
      let tracked r = not (Reg.equal r Reg.r0 || Reg.equal r Reg.p0) in
      (* RAW *)
      List.iter
        (fun r ->
          if tracked r then
            match Reg.Tbl.find_opt defs_tbl r with
            | Some ds ->
                List.iter
                  (fun d -> add_edge g d j (Itanium.dep_latency instrs.(d) ij r))
                  ds
            | None -> ())
        (Instr.uses ij);
      (* WAW / WAR (latency 1 / 0), relaxed for disjoint predicates *)
      List.iter
        (fun r ->
          if tracked r then begin
            (match Reg.Tbl.find_opt defs_tbl r with
            | Some ds ->
                List.iter
                  (fun d ->
                    if not (Pred_relations.instrs_disjoint prels instrs.(d) ij)
                    then add_edge g d j 1)
                  ds
            | None -> ());
            match Reg.Tbl.find_opt uses_tbl r with
            | Some us ->
                List.iter
                  (fun u ->
                    if not (Pred_relations.instrs_disjoint prels instrs.(u) ij)
                    then add_edge g u j 0)
                  us
            | None -> ()
          end)
        (dep_defs ij);
      (* memory and I/O ordering *)
      if Instr.is_mem ij || Instr.is_call ij || (match ij.Instr.op with Opcode.Chk _ | Opcode.Chka _ -> true | _ -> false)
      then begin
        List.iter
          (fun k ->
            let ik = instrs.(k) in
            let chk_mem (x : Instr.t) =
              match x.Instr.op with Opcode.Chk _ | Opcode.Chka _ -> true | _ -> false
            in
            let ordered =
              if chk_mem ik || chk_mem ij then
                (* a chk's recovery performs a (re)load: order it like a load
                   against stores and calls *)
                Instr.is_store ik || Instr.is_store ij || Instr.is_call ik
                || Instr.is_call ij
              else Memdep.must_order ik ij
            in
            if ordered then
              add_edge g k j (if Instr.is_store ik && Instr.is_load ij then 1 else 0))
          (List.rev !mem_ops);
        mem_ops := j :: !mem_ops
      end;
      (* control *)
      List.iter
        (fun bidx ->
          (* branch order *)
          if Instr.is_branch ij then add_edge g bidx j 0;
          (* may-fault ops stay below the branch *)
          if Instr.may_fault ij && not ij.Instr.attrs.Instr.speculated then
            add_edge g bidx j 0;
          (* defs of registers observed at the exit stay below *)
          List.iter
            (fun r ->
              if Reg.Set.mem r live_at_branch.(bidx) then add_edge g bidx j 0)
            (dep_defs ij))
        !branches;
      (* an unconditional transfer terminates the block: nothing may be
         scheduled after it (it would never execute, and the block would no
         longer end in its terminator) *)
      if
        (match ij.Instr.op with
        | Opcode.Br | Opcode.Br_ret -> ij.Instr.pred = None
        | _ -> false)
      then
        for k = 0 to j - 1 do
          add_edge g k j 0
        done;
      if Instr.is_branch ij then begin
        (* defs of live-at-exit registers above the branch stay above *)
        Reg.Set.iter
          (fun r ->
            match Reg.Tbl.find_opt defs_tbl r with
            | Some ds -> List.iter (fun d -> add_edge g d j 0) ds
            | None -> ())
          live_at_branch.(j);
        (* stores, calls and checks above the branch must still execute when
           the branch is taken: they may not sink below it *)
        List.iter
          (fun k ->
            let ik = instrs.(k) in
            if
              Instr.is_store ik || Instr.is_call ik
              || (match ik.Instr.op with Opcode.Chk _ | Opcode.Chka _ -> true | _ -> false)
            then add_edge g k j 0)
          !mem_ops;
        branches := j :: !branches
      end;
      (* update def/use tables *)
      List.iter
        (fun r ->
          let cur = match Reg.Tbl.find_opt uses_tbl r with Some l -> l | None -> [] in
          Reg.Tbl.replace uses_tbl r (j :: cur))
        (Instr.uses ij);
      List.iter
        (fun r ->
          let killing =
            ij.Instr.pred = None
            && (match ij.Instr.op with Opcode.Chk _ | Opcode.Chka _ -> false | _ -> true)
          in
          if killing then begin
            Reg.Tbl.replace defs_tbl r [ j ];
            (* uses before a killing def no longer constrain later defs *)
            Reg.Tbl.remove uses_tbl r
          end
          else
            let cur = match Reg.Tbl.find_opt defs_tbl r with Some l -> l | None -> [] in
            Reg.Tbl.replace defs_tbl r (j :: cur))
        (dep_defs ij))
    instrs;
  g

(* Critical-path priority: longest latency-weighted path from each node to
   any sink. *)
let priorities (g : t) =
  let n = Array.length g.instrs in
  let prio = Array.make n 0 in
  for j = n - 1 downto 0 do
    let h =
      List.fold_left (fun acc (s, lat) -> max acc (prio.(s) + max lat 1)) 0 g.succs.(j)
    in
    prio.(j) <- h
  done;
  prio
