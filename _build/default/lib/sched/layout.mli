(** Final code layout: issue groups packed into IA-64 bundles (16 bytes
    each, shared across adjacent groups via stop bits), every bundle given
    an address, functions laid out sequentially with cold blocks sunk.
    The simulator's front end fetches through these addresses — this is
    what makes instruction-cache footprint measurable. *)

type group = {
  instrs : Epic_ir.Instr.t list;
  bundles : Epic_mach.Bundle.t list;
  addr : int64;  (** address of the group's first bundle *)
  n_bundles : int;
  n_nops : int;  (** template nops this group retires *)
}

type block_layout = { label : string; groups : group array }

type t = {
  by_block : (string * string, block_layout) Hashtbl.t;
  mutable code_bytes : int;
  mutable total_bundles : int;
  mutable total_nops : int;
}

(** Group a scheduled block's instructions by issue cycle. *)
val groups_of_block : Epic_ir.Block.t -> Epic_ir.Instr.t list list

(** Sink cold-marked blocks to the function end, keeping control explicit
    (run before scheduling). *)
val sink_cold_blocks : Epic_ir.Func.t -> unit

val build : Epic_ir.Program.t -> t
val block_layout : t -> string -> string -> block_layout option
val static_bundles : t -> int
