(* Modulo-scheduling analysis: the initiation-interval (II) bounds of
   iterative modulo scheduling for single-block inner loops.

   IMPACT modulo-schedules counted loops on IA-64 (the paper notes it does
   not additionally unroll them).  In this reproduction the unroll-with-
   early-exits transformation plus list scheduling plays the software-
   pipelining role for code generation (DESIGN.md section 7); this module
   provides the real IMS *analysis* — ResMII from the Itanium 2 resource
   model and RecMII from the loop-carried dependence recurrences — used to
   report how close the generated schedule comes to the modulo-scheduling
   bound, and by tests as an oracle for the scheduler's loop throughput. *)

open Epic_ir
open Epic_mach

type loop_analysis = {
  label : string;
  n_ops : int;
  res_mii : int; (* resource-constrained minimum initiation interval *)
  rec_mii : int; (* recurrence-constrained minimum initiation interval *)
  mii : int; (* max of the two *)
  achieved_ii : int option; (* block cycles per iteration after scheduling *)
}

(* Is [b] a self-loop block suitable for modulo scheduling: branches only to
   itself or out, no calls. *)
let eligible (b : Block.t) =
  List.exists (fun (i : Instr.t) -> Instr.branch_target i = Some b.Block.label) b.Block.instrs
  && List.for_all (fun (i : Instr.t) -> not (Instr.is_call i)) b.Block.instrs

(* ResMII: for each resource class, ceil(uses / per-cycle capacity). *)
let res_mii (b : Block.t) =
  let m = ref 0 and i = ref 0 and f = ref 0 and br = ref 0 and total = ref 0 in
  List.iter
    (fun (ins : Instr.t) ->
      incr total;
      match Itanium.class_of ins.Instr.op with
      | Itanium.UM -> incr m
      | Itanium.UI -> incr i
      | Itanium.UA -> () (* A-type flows into M or I slack *)
      | Itanium.UF -> incr f
      | Itanium.UB -> incr br)
    b.Block.instrs;
  let ceil_div a b = (a + b - 1) / b in
  let caps = Itanium.fresh_caps () in
  List.fold_left max 1
    [
      ceil_div !total caps.Itanium.total;
      ceil_div !m caps.Itanium.m;
      ceil_div !i (caps.Itanium.i + caps.Itanium.m) (* I ops may not use M; conservative slack *);
      ceil_div !f caps.Itanium.f;
      ceil_div !br caps.Itanium.b;
    ]

(* RecMII: the tightest loop-carried recurrence.  We model distance-1
   recurrences through registers: a register defined at position d and used
   at an earlier-or-equal position u in the next iteration forms a cycle
   whose latency sum must fit in II.  For single-def registers this reduces
   to: for each cross-iteration (use before def) pair, the chain latency
   from the def back around to itself. *)
let rec_mii (b : Block.t) =
  let instrs = Array.of_list b.Block.instrs in
  let n = Array.length instrs in
  (* def position of each register (last def in the block) *)
  let def_pos : int Reg.Tbl.t = Reg.Tbl.create 16 in
  Array.iteri
    (fun k (i : Instr.t) -> List.iter (fun r -> Reg.Tbl.replace def_pos r k) i.Instr.dsts)
    instrs;
  (* longest latency path computed forward within one iteration *)
  let depth = Array.make n 0 in
  let reg_depth : int Reg.Tbl.t = Reg.Tbl.create 16 in
  Array.iteri
    (fun k (i : Instr.t) ->
      let d =
        List.fold_left
          (fun acc r ->
            match Reg.Tbl.find_opt reg_depth r with Some x -> max acc x | None -> acc)
          0 (Instr.uses i)
      in
      depth.(k) <- d + Itanium.latency i.Instr.op;
      List.iter (fun r -> Reg.Tbl.replace reg_depth r depth.(k)) i.Instr.dsts)
    instrs;
  (* a cross-iteration edge exists when a use at position u reads a register
     whose (only) def is at position d >= u: the recurrence latency is the
     path length ending at the def *)
  let mii = ref 1 in
  Array.iteri
    (fun u (i : Instr.t) ->
      List.iter
        (fun r ->
          match Reg.Tbl.find_opt def_pos r with
          | Some d when d >= u -> mii := max !mii depth.(d)
          | _ -> ())
        (Instr.uses i))
    instrs;
  !mii

(* Cycles one iteration of the scheduled block takes: the span of issue
   cycles (valid after list scheduling). *)
let achieved_ii (b : Block.t) =
  match b.Block.instrs with
  | [] -> None
  | instrs ->
      let maxc = List.fold_left (fun m (i : Instr.t) -> max m i.Instr.cycle) (-1) instrs in
      if maxc < 0 then None else Some (maxc + 1)

let analyze_block (b : Block.t) =
  if eligible b then
    let r = res_mii b and c = rec_mii b in
    Some
      {
        label = b.Block.label;
        n_ops = Block.instr_count b;
        res_mii = r;
        rec_mii = c;
        mii = max r c;
        achieved_ii = achieved_ii b;
      }
  else None

let analyze_func (f : Func.t) = List.filter_map analyze_block f.Func.blocks

let analyze (p : Program.t) =
  List.concat_map (fun f -> List.map (fun a -> (f.Func.name, a)) (analyze_func f))
    p.Program.funcs
