lib/sim/accounting.ml: Array Fmt Hashtbl List
