lib/sim/branch_pred.mli:
