lib/sim/tlb.ml: Array Epic_ir Int64
