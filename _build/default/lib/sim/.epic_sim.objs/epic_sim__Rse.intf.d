lib/sim/rse.mli:
