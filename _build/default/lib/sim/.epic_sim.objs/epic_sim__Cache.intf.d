lib/sim/cache.mli:
