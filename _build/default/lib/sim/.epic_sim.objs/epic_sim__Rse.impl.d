lib/sim/rse.ml: Epic_ir Epic_mach
