lib/sim/accounting.mli: Format Hashtbl
