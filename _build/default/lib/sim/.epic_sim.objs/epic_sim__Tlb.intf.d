lib/sim/tlb.mli:
