lib/sim/machine.mli: Accounting Branch_pred Buffer Cache Epic_ir Epic_sched Rse Tlb
