(** Set-associative LRU cache model, used for L1I, L1D, and the unified
    L2/L3 levels of the scaled Itanium 2 hierarchy. *)

type t = {
  name : string;
  sets : int;
  assoc : int;
  line_bits : int;
  tags : int64 array;
  age : int array;
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

val create : name:string -> size:int -> line:int -> assoc:int -> t

(** Access an address; true on hit.  Misses allocate (evicting LRU). *)
val access : t -> int64 -> bool

(** Probe without allocating. *)
val probe : t -> int64 -> bool

val reset : t -> unit
val miss_rate : t -> float
