(* Set-associative LRU cache model. *)

type t = {
  name : string;
  sets : int;
  assoc : int;
  line_bits : int;
  tags : int64 array; (* sets * assoc; -1 = invalid *)
  age : int array; (* LRU stamps *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let log2i n =
  let rec go k v = if v >= n then k else go (k + 1) (v * 2) in
  go 0 1

let create ~name ~size ~line ~assoc =
  let sets = max 1 (size / (line * assoc)) in
  {
    name;
    sets;
    assoc;
    line_bits = log2i line;
    tags = Array.make (sets * assoc) (-1L);
    age = Array.make (sets * assoc) 0;
    clock = 0;
    accesses = 0;
    misses = 0;
  }

(* Access [addr]; returns true on hit.  Misses allocate. *)
let access t (addr : int64) =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let line = Int64.shift_right_logical addr t.line_bits in
  let set = Int64.to_int (Int64.rem line (Int64.of_int t.sets)) in
  let base = set * t.assoc in
  let rec find k =
    if k >= t.assoc then None
    else if Int64.equal t.tags.(base + k) line then Some k
    else find (k + 1)
  in
  match find 0 with
  | Some k ->
      t.age.(base + k) <- t.clock;
      true
  | None ->
      t.misses <- t.misses + 1;
      (* evict LRU way *)
      let victim = ref 0 in
      for k = 1 to t.assoc - 1 do
        if t.age.(base + k) < t.age.(base + !victim) then victim := k
      done;
      t.tags.(base + !victim) <- line;
      t.age.(base + !victim) <- t.clock;
      false

(* Probe without allocating (used by tests). *)
let probe t (addr : int64) =
  let line = Int64.shift_right_logical addr t.line_bits in
  let set = Int64.to_int (Int64.rem line (Int64.of_int t.sets)) in
  let base = set * t.assoc in
  let rec find k =
    if k >= t.assoc then false
    else Int64.equal t.tags.(base + k) line || find (k + 1)
  in
  find 0

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1L);
  Array.fill t.age 0 (Array.length t.age) 0;
  t.accesses <- 0;
  t.misses <- 0;
  t.clock <- 0

let miss_rate t =
  if t.accesses = 0 then 0. else float_of_int t.misses /. float_of_int t.accesses
