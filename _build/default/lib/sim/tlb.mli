(** Fully-associative LRU data TLB (page size shared with
    [Epic_ir.Memimage]). *)

type t = {
  entries : int;
  pages : int64 array;
  age : int array;
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

val create : ?entries:int -> unit -> t
val page_of : int64 -> int64

(** Lookup without filling; counts the access. *)
val lookup : t -> int64 -> bool

(** Install a translation (after a successful walk). *)
val fill : t -> int64 -> unit

val reset : t -> unit
