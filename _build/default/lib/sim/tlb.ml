(* Fully-associative LRU data TLB (page size shared with Memimage). *)

type t = {
  entries : int;
  pages : int64 array; (* -1 = invalid *)
  age : int array;
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let create ?(entries = 32) () =
  {
    entries;
    pages = Array.make entries (-1L);
    age = Array.make entries 0;
    clock = 0;
    accesses = 0;
    misses = 0;
  }

let page_of (addr : int64) =
  Int64.shift_right_logical addr Epic_ir.Memimage.page_bits

(* Lookup without filling. *)
let lookup t (addr : int64) =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let page = page_of addr in
  let rec find k =
    if k >= t.entries then None
    else if Int64.equal t.pages.(k) page then Some k
    else find (k + 1)
  in
  match find 0 with
  | Some k ->
      t.age.(k) <- t.clock;
      true
  | None ->
      t.misses <- t.misses + 1;
      false

(* Install a translation (after a successful walk). *)
let fill t (addr : int64) =
  let page = page_of addr in
  let victim = ref 0 in
  for k = 1 to t.entries - 1 do
    if t.age.(k) < t.age.(!victim) then victim := k
  done;
  t.pages.(!victim) <- page;
  t.age.(!victim) <- t.clock

let reset t =
  Array.fill t.pages 0 t.entries (-1L);
  Array.fill t.age 0 t.entries 0;
  t.clock <- 0;
  t.accesses <- 0;
  t.misses <- 0
