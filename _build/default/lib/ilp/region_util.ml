(* Shared machinery for the structural (region-forming) transformations:
   block duplication with label/branch remapping, and profile-derived edge
   probabilities. *)

open Epic_ir

(* Probability of each successor edge of [b]: walk the block accumulating the
   probability of reaching each branch, splitting by taken probability. *)
let edge_probs (f : Func.t) (b : Block.t) =
  let probs : (string, float) Hashtbl.t = Hashtbl.create 4 in
  let add l p =
    let cur = match Hashtbl.find_opt probs l with Some x -> x | None -> 0. in
    Hashtbl.replace probs l (cur +. p)
  in
  let reach = ref 1.0 in
  List.iter
    (fun (i : Instr.t) ->
      match i.Instr.op with
      | Opcode.Br -> (
          match Instr.branch_target i with
          | Some t ->
              let tp =
                if i.Instr.pred = None then 1.0 else i.Instr.attrs.Instr.taken_prob
              in
              add t (!reach *. tp);
              reach := !reach *. (1. -. tp)
          | None -> ())
      | Opcode.Br_ret -> if i.Instr.pred = None then reach := 0.
      | _ -> ())
    b.Block.instrs;
  (match Func.fallthrough f b with
  | Some n when !reach > 0. -> add n.Block.label !reach
  | _ -> ());
  probs

(* The likeliest successor of [b] with its probability. *)
let best_successor (f : Func.t) (b : Block.t) =
  let probs = edge_probs f b in
  Hashtbl.fold
    (fun l p acc ->
      match acc with
      | Some (_, bp) when bp >= p -> acc
      | _ -> Some (l, p))
    probs None

(* Approximate probability of the specific edge [b] -> [succ]. *)
let edge_prob (f : Func.t) (b : Block.t) (succ : string) =
  match Hashtbl.find_opt (edge_probs f b) succ with Some p -> p | None -> 0.

(* Copy a list of blocks, renaming labels with [prefix] and remapping
   branches whose targets are inside the copied set.  Registers are NOT
   renamed: the copies compute the same values, and the IR is not SSA.
   Returns the copies in the same order plus the label map. *)
let duplicate_blocks (f : Func.t) ?(weight_scale = 1.0) (blocks : Block.t list) =
  ignore f;
  let label_map = Hashtbl.create 8 in
  List.iter
    (fun (b : Block.t) ->
      Hashtbl.replace label_map b.Block.label
        (Func.fresh_label f (b.Block.label ^ "_dup")))
    blocks;
  let copies =
    List.map
      (fun (b : Block.t) ->
        let nb =
          Block.create ~kind:b.Block.kind (Hashtbl.find label_map b.Block.label)
        in
        nb.Block.weight <- b.Block.weight *. weight_scale;
        nb.Block.cold <- b.Block.cold;
        nb.Block.instrs <-
          List.map
            (fun (i : Instr.t) ->
              let c = Instr.copy i in
              c.Instr.srcs <-
                List.map
                  (function
                    | Operand.Label l as o -> (
                        match Hashtbl.find_opt label_map l with
                        | Some l' -> Operand.Label l'
                        | None -> o)
                    | o -> o)
                  c.Instr.srcs;
              (match c.Instr.attrs.Instr.recovery with
              | Some l -> (
                  match Hashtbl.find_opt label_map l with
                  | Some l' -> c.Instr.attrs.Instr.recovery <- Some l'
                  | None -> ())
              | None -> ());
              c.Instr.attrs.Instr.weight <-
                c.Instr.attrs.Instr.weight *. weight_scale;
              c)
            b.Block.instrs;
        nb)
      blocks
  in
  (copies, label_map)

(* Retarget every branch in the function that targets [from_l] and whose
   source block satisfies [when_src] to [to_l]. *)
let retarget_branches (f : Func.t) ~from_l ~to_l ~when_src =
  List.iter
    (fun (b : Block.t) ->
      if when_src b then
        List.iter
          (fun (i : Instr.t) ->
            match Instr.branch_target i with
            | Some t when t = from_l -> i.Instr.srcs <- [ Operand.Label to_l ]
            | _ -> ())
          b.Block.instrs)
    f.Func.blocks

(* Approximate dependence height of a block: length of the longest chain of
   register RAW dependences, with unit latencies.  Used by the hyperblock
   compatibility heuristics. *)
let dependence_height (b : Block.t) =
  let depth : int Reg.Tbl.t = Reg.Tbl.create 16 in
  let height = ref 0 in
  List.iter
    (fun (i : Instr.t) ->
      let in_depth =
        List.fold_left
          (fun acc r ->
            match Reg.Tbl.find_opt depth r with
            | Some d -> max acc d
            | None -> acc)
          0 (Instr.uses i)
      in
      let d = in_depth + 1 in
      List.iter (fun r -> Reg.Tbl.replace depth r d) i.Instr.dsts;
      if d > !height then height := d)
    b.Block.instrs;
  !height

(* Static code size of a function, in instructions. *)
let code_size (f : Func.t) = Func.instr_count f
