lib/ilp/unroll.mli: Epic_ir
