lib/ilp/region_util.ml: Block Epic_ir Func Hashtbl Instr List Opcode Operand Reg
