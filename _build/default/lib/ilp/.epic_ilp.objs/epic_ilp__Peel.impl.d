lib/ilp/peel.ml: Block Epic_analysis Epic_ir Epic_opt Func Hashtbl Instr Jumpopt List Natural_loops Operand Program Region_util
