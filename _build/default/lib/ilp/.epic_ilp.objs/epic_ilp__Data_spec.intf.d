lib/ilp/data_spec.mli: Epic_ir
