lib/ilp/hyperblock.mli: Epic_ir
