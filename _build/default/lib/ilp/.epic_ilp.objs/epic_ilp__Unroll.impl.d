lib/ilp/unroll.ml: Block Epic_ir Epic_opt Func Hyperblock Instr Jumpopt List Opcode Operand Program
