lib/ilp/peel.mli: Epic_ir
