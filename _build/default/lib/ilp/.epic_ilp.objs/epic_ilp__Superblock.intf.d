lib/ilp/superblock.mli: Epic_ir
