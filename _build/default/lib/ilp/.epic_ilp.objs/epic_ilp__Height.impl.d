lib/ilp/height.ml: Array Block Epic_analysis Epic_ir Func Instr List Liveness Opcode Operand Program Reg
