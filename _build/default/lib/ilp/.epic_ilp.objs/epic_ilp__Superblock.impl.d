lib/ilp/superblock.ml: Block Epic_ir Epic_opt Func Hashtbl Hyperblock Instr Jumpopt List Opcode Operand Option Program Region_util
