lib/ilp/data_spec.ml: Array Block Epic_analysis Epic_ir Func Instr List Memdep Opcode Operand Program
