lib/ilp/hyperblock.ml: Block Epic_ir Epic_opt Func Hashtbl Instr Jumpopt List Opcode Operand Option Program Reg Region_util
