lib/ilp/speculate.ml: Block Epic_ir Func Instr List Opcode Operand Program Reg
