lib/ilp/height.mli: Epic_analysis Epic_ir
