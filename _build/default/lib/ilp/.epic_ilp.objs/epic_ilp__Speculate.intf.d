lib/ilp/speculate.mli: Epic_ir
