(* Local copy propagation: after [d = mov s] (unguarded, register source),
   later uses of [d] in the block are rewritten to [s] until either is
   redefined. *)

open Epic_ir

let run_block (b : Block.t) =
  let copies : Reg.t Reg.Tbl.t = Reg.Tbl.create 16 in
  let changed = ref false in
  let kill (r : Reg.t) =
    Reg.Tbl.remove copies r;
    (* drop entries whose source is r *)
    let stale =
      Reg.Tbl.fold (fun d s acc -> if Reg.equal s r then d :: acc else acc) copies []
    in
    List.iter (Reg.Tbl.remove copies) stale
  in
  List.iter
    (fun (i : Instr.t) ->
      let subst r =
        match Reg.Tbl.find_opt copies r with
        | Some s ->
            changed := true;
            Some s
        | None -> None
      in
      Instr.substitute_uses subst i;
      List.iter kill i.Instr.dsts;
      match (i.Instr.op, i.Instr.dsts, i.Instr.srcs, i.Instr.pred) with
      | Opcode.Mov, [ d ], [ Operand.Reg s ], None
        when d.Reg.cls = s.Reg.cls && not (Reg.equal d s) ->
          (* do not propagate through the hardwired registers *)
          if not (Reg.equal s Reg.sp) then Reg.Tbl.replace copies d s
      | _ -> ())
    b.Block.instrs;
  !changed

let run_func (f : Func.t) =
  List.fold_left (fun acc b -> run_block b || acc) false f.Func.blocks

let run (p : Program.t) =
  List.fold_left (fun acc f -> run_func f || acc) false p.Program.funcs
