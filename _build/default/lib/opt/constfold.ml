(* Local constant propagation and folding.  Works within each block with a
   forward scan: tracks registers holding known constants, rewrites uses, and
   folds ALU operations whose inputs are all constant.  Guarded definitions
   only invalidate (the write may not happen). *)

open Epic_ir

let fold_int op (a : int64) (b : int64) : int64 option =
  match op with
  | Opcode.Add -> Some (Int64.add a b)
  | Opcode.Sub -> Some (Int64.sub a b)
  | Opcode.Mul -> Some (Int64.mul a b)
  | Opcode.Div -> if Int64.equal b 0L then None else Some (Int64.div a b)
  | Opcode.Rem -> if Int64.equal b 0L then None else Some (Int64.rem a b)
  | Opcode.And -> Some (Int64.logand a b)
  | Opcode.Or -> Some (Int64.logor a b)
  | Opcode.Xor -> Some (Int64.logxor a b)
  | Opcode.Shl -> Some (Int64.shift_left a (Int64.to_int b land 63))
  | Opcode.Shr -> Some (Int64.shift_right_logical a (Int64.to_int b land 63))
  | Opcode.Sra -> Some (Int64.shift_right a (Int64.to_int b land 63))
  | _ -> None

(* Algebraic identities that do not need both operands constant. *)
let identity op (a : Operand.t) (b : Operand.t) : Operand.t option =
  match (op, a, b) with
  | Opcode.Add, x, Operand.Imm 0L | Opcode.Add, Operand.Imm 0L, x -> Some x
  | Opcode.Sub, x, Operand.Imm 0L -> Some x
  | Opcode.Mul, x, Operand.Imm 1L | Opcode.Mul, Operand.Imm 1L, x -> Some x
  | Opcode.Mul, _, Operand.Imm 0L | Opcode.Mul, Operand.Imm 0L, _ ->
      Some (Operand.Imm 0L)
  | Opcode.Div, x, Operand.Imm 1L -> Some x
  | (Opcode.Shl | Opcode.Shr | Opcode.Sra), x, Operand.Imm 0L -> Some x
  | Opcode.And, _, Operand.Imm 0L | Opcode.And, Operand.Imm 0L, _ ->
      Some (Operand.Imm 0L)
  | Opcode.Or, x, Operand.Imm 0L | Opcode.Or, Operand.Imm 0L, x -> Some x
  | Opcode.Xor, x, Operand.Imm 0L | Opcode.Xor, Operand.Imm 0L, x -> Some x
  | _ -> None

let run_block (b : Block.t) =
  let consts : Operand.t Reg.Tbl.t = Reg.Tbl.create 16 in
  let changed = ref false in
  let invalidate (i : Instr.t) = List.iter (Reg.Tbl.remove consts) i.Instr.dsts in
  let subst (o : Operand.t) =
    match o with
    | Operand.Reg r -> (
        match Reg.Tbl.find_opt consts r with
        | Some c ->
            changed := true;
            c
        | None -> o)
    | _ -> o
  in
  List.iter
    (fun (i : Instr.t) ->
      (* Rewrite constant uses (not the guard: guards stay registers). *)
      i.Instr.srcs <- List.map subst i.Instr.srcs;
      let unguarded = i.Instr.pred = None in
      (match (i.Instr.op, i.Instr.dsts, i.Instr.srcs) with
      | Opcode.Mov, [ d ], [ (Operand.Imm _ | Operand.Fimm _) as c ] ->
          invalidate i;
          if unguarded then Reg.Tbl.replace consts d c
      | ( (Opcode.Add | Opcode.Sub | Opcode.Mul | Opcode.Div | Opcode.Rem
          | Opcode.And | Opcode.Or | Opcode.Xor | Opcode.Shl | Opcode.Shr
          | Opcode.Sra),
          [ d ],
          [ a; b' ] ) -> (
          invalidate i;
          match (a, b') with
          | Operand.Imm x, Operand.Imm y -> (
              match fold_int i.Instr.op x y with
              | Some v ->
                  changed := true;
                  i.Instr.op <- Opcode.Mov;
                  i.Instr.srcs <- [ Operand.Imm v ];
                  if unguarded then Reg.Tbl.replace consts d (Operand.Imm v)
              | None -> ())
          | _ -> (
              match identity i.Instr.op a b' with
              | Some o ->
                  changed := true;
                  i.Instr.op <- Opcode.Mov;
                  i.Instr.srcs <- [ o ];
                  (match o with
                  | (Operand.Imm _ | Operand.Fimm _) when unguarded ->
                      Reg.Tbl.replace consts d o
                  | _ -> ())
              | None -> ()))
      | Opcode.Cmp (_, ct), [ _; _ ], [ Operand.Imm _; Operand.Imm _ ]
        when ct = Opcode.Norm && unguarded ->
          (* constant compares are left for jump optimization, which
             understands compares feeding branches *)
          invalidate i
      | _ -> invalidate i))
    b.Block.instrs;
  !changed

let run_func (f : Func.t) =
  List.fold_left (fun acc b -> run_block b || acc) false f.Func.blocks

let run (p : Program.t) =
  List.fold_left (fun acc f -> run_func f || acc) false p.Program.funcs
