(* Indirect-call specialization (Section 3.1): profile-selected indirect
   call sites are converted to a compare against the most popular callee's
   address plus a "specialized" direct call, with the original indirect call
   kept as the fallback.  The direct call may then be inlined normally —
   important for workloads, like eon and gap, that make heavily biased use of
   indirect calls. *)

open Epic_ir
open Epic_analysis

let specialize_site (caller : Func.t) (site : Instr.t) (target : string) =
  let rec find_block = function
    | [] -> None
    | (b : Block.t) :: tl ->
        if List.exists (fun i -> i == site) b.Block.instrs then Some b
        else find_block tl
  in
  match (find_block caller.Func.blocks, site.Instr.srcs) with
  | Some host, Operand.Reg fp :: args ->
      let rec split acc = function
        | [] -> (List.rev acc, [])
        | i :: tl when i == site -> (List.rev acc, tl)
        | i :: tl -> split (i :: acc) tl
      in
      let before, after = split [] host.Block.instrs in
      let direct_l = Func.fresh_label caller "icsp_dir" in
      let indirect_l = Func.fresh_label caller "icsp_ind" in
      let cont_l = Func.fresh_label caller "icsp_cont" in
      let taddr = Func.fresh_reg caller Reg.Int in
      let pt = Func.fresh_reg caller Reg.Prd in
      let pf = Func.fresh_reg caller Reg.Prd in
      host.Block.instrs <-
        before
        @ [
            Instr.create Opcode.Lea ~dsts:[ taddr ]
              ~srcs:[ Operand.Sym target; Operand.imm 0 ];
            Instr.create (Opcode.Cmp (Opcode.Eq, Opcode.Norm)) ~dsts:[ pt; pf ]
              ~srcs:[ Operand.Reg fp; Operand.Reg taddr ];
            Instr.create ~pred:pf Opcode.Br ~srcs:[ Operand.Label indirect_l ];
          ];
      let direct = Block.create direct_l in
      direct.Block.weight <- host.Block.weight;
      direct.Block.instrs <-
        [
          Instr.create Opcode.Br_call ~dsts:site.Instr.dsts
            ~srcs:(Operand.Sym target :: args);
          Instr.create Opcode.Br ~srcs:[ Operand.Label cont_l ];
        ];
      let indirect = Block.create indirect_l in
      indirect.Block.instrs <-
        [
          Instr.create Opcode.Br_call ~dsts:site.Instr.dsts
            ~srcs:(Operand.Reg fp :: args);
          Instr.create Opcode.Br ~srcs:[ Operand.Label cont_l ];
        ];
      let cont = Block.create cont_l in
      cont.Block.weight <- host.Block.weight;
      cont.Block.instrs <- after;
      let rec insert = function
        | [] -> [ direct; indirect; cont ]
        | x :: tl when x == host -> x :: direct :: indirect :: cont :: tl
        | x :: tl -> x :: insert tl
      in
      caller.Func.blocks <- insert caller.Func.blocks;
      true
  | _ -> false

(* Specialize every indirect call site whose profile shows a target taking at
   least [threshold] of the calls.  Returns the number of sites converted. *)
let run ?(threshold = 0.70) (p : Program.t) (prof : Profile.t) =
  let count = ref 0 in
  List.iter
    (fun (f : Func.t) ->
      let sites =
        List.concat_map
          (fun (b : Block.t) ->
            List.filter
              (fun (i : Instr.t) ->
                Instr.is_call i && Instr.callee i = None)
              b.Block.instrs)
          f.Func.blocks
      in
      List.iter
        (fun site ->
          match Profile.dominant_target prof site.Instr.id ~threshold with
          | Some (target, _) ->
              if specialize_site f site target then incr count
          | None -> ())
        sites)
    p.Program.funcs;
  !count
