lib/opt/jumpopt.ml: Block Epic_ir Func Hashtbl Instr List Opcode Operand Program
