lib/opt/dce.ml: Block Epic_analysis Epic_ir Func Instr List Liveness Opcode Program Reg
