lib/opt/indirect_call.mli: Epic_analysis Epic_ir
