lib/opt/licm.ml: Block Dominance Epic_analysis Epic_ir Func Instr List Liveness Memdep Natural_loops Opcode Operand Option Program Reg
