lib/opt/pipeline.mli: Epic_ir
