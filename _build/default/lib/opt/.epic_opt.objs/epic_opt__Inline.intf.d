lib/opt/inline.mli: Epic_ir
