lib/opt/copyprop.ml: Block Epic_ir Func Instr List Opcode Operand Program Reg
