lib/opt/strength.ml: Block Epic_ir Func Instr Int64 List Opcode Operand Program
