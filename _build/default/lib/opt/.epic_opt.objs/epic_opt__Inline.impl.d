lib/opt/inline.ml: Block Callgraph Epic_analysis Epic_ir Fun Func Hashtbl Instr Intrinsics List Opcode Operand Printf Program Reg
