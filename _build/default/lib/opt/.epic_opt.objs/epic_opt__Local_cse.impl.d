lib/opt/local_cse.ml: Block Epic_analysis Epic_ir Func Hashtbl Instr List Memdep Opcode Operand Program Reg
