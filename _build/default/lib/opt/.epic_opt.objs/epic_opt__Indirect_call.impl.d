lib/opt/indirect_call.ml: Block Epic_analysis Epic_ir Func Instr List Opcode Operand Profile Program Reg
