lib/opt/pipeline.ml: Constfold Copyprop Dce Epic_ir Jumpopt Licm Local_cse Program Strength Verify
