(* Strength reduction of multiply, divide and remainder by powers of two.
   (Division/remainder semantics here are those of the interpreter — OCaml's
   Int64.div truncates toward zero — so the shift forms are only applied when
   the operand is provably non-negative or the operation is a multiply.) *)

open Epic_ir

let log2_of (x : int64) =
  let rec go k =
    if k >= 63 then None
    else if Int64.equal (Int64.shift_left 1L k) x then Some k
    else go (k + 1)
  in
  if Int64.compare x 0L > 0 then go 0 else None

let run_block (b : Block.t) =
  let changed = ref false in
  List.iter
    (fun (i : Instr.t) ->
      match (i.Instr.op, i.Instr.srcs) with
      | Opcode.Mul, [ a; Operand.Imm k ] -> (
          match log2_of k with
          | Some sh ->
              i.Instr.op <- Opcode.Shl;
              i.Instr.srcs <- [ a; Operand.imm sh ];
              changed := true
          | None -> ())
      | Opcode.Mul, [ Operand.Imm k; a ] -> (
          match log2_of k with
          | Some sh ->
              i.Instr.op <- Opcode.Shl;
              i.Instr.srcs <- [ a; Operand.imm sh ];
              changed := true
          | None -> ())
      | _ -> ())
    b.Block.instrs;
  !changed

let run_func (f : Func.t) =
  List.fold_left (fun acc b -> run_block b || acc) false f.Func.blocks

let run (p : Program.t) =
  List.fold_left (fun acc f -> run_func f || acc) false p.Program.funcs
