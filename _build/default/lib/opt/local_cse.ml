(* Local common-subexpression elimination by value numbering within a block.
   Pure integer/float ALU expressions and Lea are candidates; redundant
   loads within a block are also reused when no intervening may-aliasing
   store or call occurs. *)

open Epic_ir
open Epic_analysis

type key = {
  kop : Opcode.t;
  ksrcs : string list; (* printed operands: structural identity *)
}

let key_of (i : Instr.t) =
  { kop = i.Instr.op; ksrcs = List.map Operand.to_string i.Instr.srcs }

let is_pure_candidate (i : Instr.t) =
  i.Instr.pred = None
  &&
  match i.Instr.op with
  | Opcode.Add | Opcode.Sub | Opcode.Mul | Opcode.And | Opcode.Or
  | Opcode.Xor | Opcode.Shl | Opcode.Shr | Opcode.Sra | Opcode.Lea
  | Opcode.Sxt _ | Opcode.Fadd | Opcode.Fsub | Opcode.Fmul | Opcode.Cvt_if
  | Opcode.Cvt_fi ->
      (* exclude sp-relative adds: sp changes at prologue boundaries *)
      not
        (List.exists
           (function Operand.Reg r -> Reg.equal r Reg.sp | _ -> false)
           i.Instr.srcs)
      && List.length i.Instr.dsts = 1
  | _ -> false

let is_load_candidate (i : Instr.t) =
  i.Instr.pred = None
  && (match i.Instr.op with Opcode.Ld (_, Opcode.Nonspec) -> true | _ -> false)
  && List.length i.Instr.dsts = 1

let run_block (b : Block.t) =
  let avail : (key, Reg.t) Hashtbl.t = Hashtbl.create 32 in
  let avail_loads : (key, Reg.t * Instr.t) Hashtbl.t = Hashtbl.create 16 in
  let changed = ref false in
  let invalidate_reg (r : Reg.t) =
    let uses_reg k =
      List.mem (Operand.to_string (Operand.Reg r)) k.ksrcs
    in
    let stale = Hashtbl.fold (fun k _ acc -> if uses_reg k then k :: acc else acc) avail [] in
    List.iter (Hashtbl.remove avail) stale;
    let stale_l =
      Hashtbl.fold
        (fun k (d, _) acc -> if uses_reg k || Reg.equal d r then k :: acc else acc)
        avail_loads []
    in
    List.iter (Hashtbl.remove avail_loads) stale_l;
    (* also drop expressions whose result register is r *)
    let stale_r = Hashtbl.fold (fun k d acc -> if Reg.equal d r then k :: acc else acc) avail [] in
    List.iter (Hashtbl.remove avail) stale_r
  in
  List.iter
    (fun (i : Instr.t) ->
      (if is_pure_candidate i then begin
         let k = key_of i in
         match Hashtbl.find_opt avail k with
         | Some prev ->
             List.iter invalidate_reg i.Instr.dsts;
             (match i.Instr.dsts with
             | [ d ] when not (Reg.equal d prev) ->
                 i.Instr.op <- Opcode.Mov;
                 i.Instr.srcs <- [ Operand.Reg prev ];
                 changed := true
             | _ -> ())
         | None -> (
             match i.Instr.dsts with
             | [ d ] ->
                 List.iter invalidate_reg i.Instr.dsts;
                 (* an expression that reads its own destination is not
                    available afterwards *)
                 if not (List.mem (Operand.Reg d : Operand.t) i.Instr.srcs) then
                   Hashtbl.replace avail k d
             | _ -> ())
       end
       else if is_load_candidate i then begin
         let k = key_of i in
         match Hashtbl.find_opt avail_loads k with
         | Some (prev, _) ->
             List.iter invalidate_reg i.Instr.dsts;
             (match i.Instr.dsts with
             | [ d ] when not (Reg.equal d prev) ->
                 i.Instr.op <- Opcode.Mov;
                 i.Instr.srcs <- [ Operand.Reg prev ];
                 changed := true
             | _ -> ())
         | None -> (
             match i.Instr.dsts with
             | [ d ] ->
                 List.iter invalidate_reg i.Instr.dsts;
                 if not (List.mem (Operand.Reg d : Operand.t) i.Instr.srcs) then
                   Hashtbl.replace avail_loads k (d, i)
             | _ -> ())
       end
       else begin
         (* stores and calls kill aliasing loads; everything kills its dsts *)
         (match i.Instr.op with
         | Opcode.St _ ->
             let stale =
               Hashtbl.fold
                 (fun k (_, li) acc ->
                   if Memdep.may_alias i li then k :: acc else acc)
                 avail_loads []
             in
             List.iter (Hashtbl.remove avail_loads) stale
         | Opcode.Br_call when Memdep.call_touches_memory i ->
             Hashtbl.reset avail_loads
         | _ -> ());
         List.iter invalidate_reg i.Instr.dsts
       end);
      (* After processing, a guarded def still invalidates. *)
      if i.Instr.pred <> None then List.iter invalidate_reg i.Instr.dsts)
    b.Block.instrs;
  !changed

let run_func (f : Func.t) =
  List.fold_left (fun acc b -> run_block b || acc) false f.Func.blocks

let run (p : Program.t) =
  List.fold_left (fun acc f -> run_func f || acc) false p.Program.funcs
