(** Indirect-call specialization (Section 3.1): profile-selected indirect
    sites become a compare against the most popular callee's address plus a
    specialized direct call (then inlinable), with the indirect call kept as
    fallback — the eon/gap pattern of heavily biased virtual invocation. *)

(** Returns the number of sites specialized. *)
val run : ?threshold:float -> Epic_ir.Program.t -> Epic_analysis.Profile.t -> int
