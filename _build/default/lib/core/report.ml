(* Textual rendering of every reproduced table and figure, side by side with
   the paper's headline numbers where it states them. *)

open Epic_sim

let level_cols = [ Config.Gcc_like; Config.O_NS; Config.ILP_NS; Config.ILP_CS ]

let pr fmt = Printf.printf fmt

let hr () = pr "%s\n" (String.make 78 '-')

let print_table1 (s : Experiments.suite_result) =
  pr "\n== Table 1: Estimated SPECint2000 performance ratios ==\n";
  pr "   (normalized so the GCC geomean = 430, matching the paper's scale)\n\n";
  pr "%-10s %8s %8s %8s %8s   %s\n" "Benchmark" "GCC" "O-NS" "ILP-NS" "ILP-CS" "ILP-CS/O-NS";
  hr ();
  let rows, geos = Experiments.table1 s in
  List.iter
    (fun (r : Experiments.table1_row) ->
      let v l = List.assoc l r.Experiments.ratios in
      pr "%-10s %8.0f %8.0f %8.0f %8.0f   %10.2f\n" r.Experiments.bench
        (v Config.Gcc_like) (v Config.O_NS) (v Config.ILP_NS) (v Config.ILP_CS)
        (v Config.ILP_CS /. v Config.O_NS))
    rows;
  hr ();
  let g l = List.assoc l geos in
  pr "%-10s %8.0f %8.0f %8.0f %8.0f   %10.2f\n" "GEOMEAN" (g Config.Gcc_like)
    (g Config.O_NS) (g Config.ILP_NS) (g Config.ILP_CS)
    (g Config.ILP_CS /. g Config.O_NS);
  pr "\npaper:     GEOMEAN    430      591      645      668         1.13\n";
  pr "speedup ILP-CS/GCC: measured %.2f (paper 1.55); ILP-NS/O-NS: measured %.2f (paper 1.10)\n"
    (g Config.ILP_CS /. g Config.Gcc_like)
    (g Config.ILP_NS /. g Config.O_NS)

let print_fig2 (s : Experiments.suite_result) =
  pr "\n== Figure 2: planned vs exploited speedup over O-NS ==\n\n";
  pr "%-10s %16s %16s\n" "Benchmark" "ILP-NS pl/expl" "ILP-CS pl/expl";
  hr ();
  let rows = Experiments.fig2 s in
  List.iter
    (fun w ->
      let find l =
        List.find
          (fun (r : Experiments.fig2_row) ->
            r.Experiments.f2_bench = w && r.Experiments.f2_level = l)
          rows
      in
      let ns = find Config.ILP_NS and cs = find Config.ILP_CS in
      pr "%-10s   %6.2f / %5.2f   %6.2f / %5.2f\n" w ns.Experiments.planned_speedup
        ns.Experiments.exploited_speedup cs.Experiments.planned_speedup
        cs.Experiments.exploited_speedup)
    (Experiments.workload_names s);
  let planned, exploited = Experiments.fig2_averages s in
  hr ();
  pr "ILP-CS average: planned %.2f (paper 1.36), exploited %.2f (paper 1.13)\n"
    planned exploited

let cat_names =
  [
    (Accounting.Kernel, "kernel");
    (Accounting.Rse, "rse");
    (Accounting.Br_mispredict, "br-flush");
    (Accounting.Front_end, "frontend");
    (Accounting.Micropipe, "micropipe");
    (Accounting.Int_load_bubble, "ld-bubble");
    (Accounting.Misc, "misc");
    (Accounting.Float_scoreboard, "fp-score");
    (Accounting.Unstalled, "unstalled");
  ]

let print_fig5 (s : Experiments.suite_result) =
  pr "\n== Figure 5: cycle accounting, normalized to O-NS total ==\n\n";
  pr "%-10s %-7s" "Benchmark" "Config";
  List.iter (fun (_, n) -> pr " %9s" n) cat_names;
  pr " %9s\n" "TOTAL";
  hr ();
  List.iter
    (fun (w, per_level) ->
      List.iter
        (fun (l, cats) ->
          pr "%-10s %-7s" w (Config.level_name l);
          List.iter
            (fun (c, _) -> pr " %9.3f" cats.(Accounting.index c))
            cat_names;
          pr " %9.3f\n" (Array.fold_left ( +. ) 0. cats))
        per_level)
    (Experiments.fig5 s)

let print_fig6 (s : Experiments.suite_result) =
  pr "\n== Figure 6: operation accounting and IPC ==\n";
  pr "   (ops normalized to O-NS fetched ops; IPC = planned/achieved useful)\n\n";
  pr "%-10s %-7s %8s %8s %8s %8s %8s %8s\n" "Benchmark" "Config" "useful"
    "squashed" "nops" "kernel" "IPCplan" "IPCach";
  hr ();
  List.iter
    (fun (r : Experiments.fig6_row) ->
      pr "%-10s %-7s %8.3f %8.3f %8.3f %8.3f %8.2f %8.2f\n" r.Experiments.f6_bench
        (Config.level_name r.Experiments.f6_level)
        r.Experiments.useful r.Experiments.squashed r.Experiments.nops
        r.Experiments.kernel r.Experiments.ipc_planned r.Experiments.ipc_achieved)
    (Experiments.fig6 s);
  pr "\npaper ILP-CS averages: planned IPC 2.63, achieved 1.23\n"

let print_fig7 (s : Experiments.suite_result) =
  pr "\n== Figure 7: branches and prediction (normalized to O-NS) ==\n\n";
  pr "%-10s %-7s %12s %12s %12s\n" "Benchmark" "Config" "predictions"
    "mispredicts" "correct-rate";
  hr ();
  List.iter
    (fun (r : Experiments.fig7_row) ->
      pr "%-10s %-7s %12.3f %12.3f %12.4f\n" r.Experiments.f7_bench
        (Config.level_name r.Experiments.f7_level)
        r.Experiments.predictions_norm r.Experiments.mispredictions_norm
        r.Experiments.correct_rate)
    (Experiments.fig7 s);
  pr "\nbranch reduction ILP-CS vs O-NS: %.0f%% (paper 27%%)\n"
    (100. *. Experiments.branch_reduction s)

let print_fig8 (s : Experiments.suite_result) =
  pr "\n== Figure 8: data-cache (load bubble) stall cycles vs O-NS ==\n\n";
  pr "%-10s %10s %10s\n" "Benchmark" "ILP-NS" "ILP-CS";
  hr ();
  List.iter
    (fun (w, per_level) ->
      pr "%-10s %10.3f %10.3f\n" w
        (List.assoc Config.ILP_NS per_level)
        (List.assoc Config.ILP_CS per_level))
    (Experiments.fig8 s)

let print_fig10 ?(workload = "vortex") (s : Experiments.suite_result) =
  pr "\n== Figure 10: per-function execution time, %s ==\n" workload;
  pr "   (share of O-NS cycles; ratio = ILP time / O-NS time per function)\n\n";
  pr "%-16s %10s %10s %10s\n" "Function" "O-NS share" "ILP-NS" "ILP-CS";
  hr ();
  List.iter
    (fun (r : Experiments.fig10_row) ->
      pr "%-16s %9.1f%% %10.2f %10.2f\n" r.Experiments.func
        (100. *. r.Experiments.base_share)
        r.Experiments.ratio_ns r.Experiments.ratio_cs)
    (Experiments.fig10 ~workload s)

let print_stats (s : Experiments.suite_result) =
  let st = Experiments.structural_stats s in
  pr "\n== Section 3 aggregate statistics ==\n\n";
  pr "  dynamic branch reduction (ILP-CS vs O-NS):  %6.1f%%   (paper: 27%%)\n"
    st.Experiments.branch_reduction_pct;
  pr "  static growth from tail duplication:        %6.1f%%   (paper: 21%%)\n"
    st.Experiments.tail_dup_growth_pct;
  pr "  static growth from loop peeling:            %6.1f%%   (paper: 2%%)\n"
    st.Experiments.peel_growth_pct;
  pr "  front-end stall reduction:                  %6.1f%%   (paper: 15%%)\n"
    st.Experiments.front_end_stall_reduction_pct;
  pr "  L1I access reduction:                       %6.1f%%   (paper: ~10%%)\n"
    st.Experiments.l1i_access_reduction_pct;
  pr "  ILP-CS planned IPC:                         %6.2f    (paper: 2.63)\n"
    st.Experiments.avg_planned_ipc_cs;
  pr "  ILP-CS achieved IPC:                        %6.2f    (paper: 1.23)\n"
    st.Experiments.avg_achieved_ipc_cs

let print_spec_model rows =
  pr "\n== Section 4.3: general vs sentinel control speculation ==\n\n";
  pr "%-10s %12s %12s %8s %12s %10s\n" "Benchmark" "general-cyc" "kernel-cyc"
    "wild" "sentinel-cyc" "recoveries";
  hr ();
  List.iter
    (fun (r : Experiments.spec_model_row) ->
      pr "%-10s %12.0f %12.0f %8d %12.0f %10d\n" r.Experiments.sm_bench
        r.Experiments.general_cycles r.Experiments.general_kernel
        r.Experiments.general_wild r.Experiments.sentinel_cycles
        r.Experiments.sentinel_recoveries)
    rows;
  pr "\npaper: under the general model, gcc spends ~20%% of its time chasing\n";
  pr "spurious (wild-load) page walks in the kernel; sentinel avoids the\n";
  pr "walks at the cost of check/recovery overhead.\n"

let print_profvar rows =
  pr "\n== Section 4.6: profile variation ==\n\n";
  pr "%-10s %14s %14s %12s\n" "Benchmark" "train-trained" "ref-trained" "improvement";
  hr ();
  List.iter
    (fun (r : Experiments.profvar_row) ->
      pr "%-10s %14.0f %14.0f %11.1f%%\n" r.Experiments.pv_bench
        r.Experiments.train_trained_cycles r.Experiments.ref_trained_cycles
        r.Experiments.improvement_pct)
    rows;
  pr "\npaper: crafty +5%%, perlbmk +10%%, gap +3%% when trained on ref inputs\n"

let print_data_spec rows =
  pr "\n== Extension: data speculation (ld.a / chk.a through the ALAT) ==\n\n";
  pr "%-10s %12s %12s %9s %9s %10s\n" "Benchmark" "without" "with" "speedup"
    "advanced" "recoveries";
  hr ();
  List.iter
    (fun (r : Experiments.data_spec_row) ->
      pr "%-10s %12.0f %12.0f %9.3f %9d %10d\n" r.Experiments.ds_bench
        r.Experiments.without_cycles r.Experiments.with_cycles
        (r.Experiments.without_cycles /. r.Experiments.with_cycles)
        r.Experiments.advanced r.Experiments.recoveries)
    rows;
  pr "\npaper: a limited initial application of data speculation gave gap ~5%%\n"

let print_ablations rows =
  pr "\n== Ablations: ILP-CS with one mechanism disabled ==\n\n";
  let benches = List.sort_uniq compare (List.map (fun r -> r.Experiments.ab_bench) rows) in
  pr "%-14s" "Variant";
  List.iter (fun b -> pr " %10s" b) benches;
  pr "\n";
  hr ();
  let variants =
    List.sort_uniq compare (List.map (fun r -> r.Experiments.ab_name) rows)
  in
  let base b =
    (List.find
       (fun r -> r.Experiments.ab_name = "full ILP-CS" && r.Experiments.ab_bench = b)
       rows)
      .Experiments.ab_cycles
  in
  List.iter
    (fun v ->
      pr "%-14s" v;
      List.iter
        (fun b ->
          let r =
            List.find
              (fun r -> r.Experiments.ab_name = v && r.Experiments.ab_bench = b)
              rows
          in
          pr " %10.3f" (r.Experiments.ab_cycles /. base b))
        benches;
      pr "\n")
    variants;
  pr "\n(cycles normalized to the full ILP-CS configuration; >1 = slower)\n"
