(** Random mini-C program generation and whole-pipeline differential
    checking, shared by the test suite's qcheck property and by the
    standalone fuzzer (bin/fuzz.exe).  Generated programs always
    terminate. *)

module Gen : sig
  (** A random, terminating mini-C program as source text. *)
  val program : string QCheck.Gen.t
end

(** The configurations a program is checked under: the paper's four levels
    plus the sentinel- and data-speculation variants. *)
val configs : (string * Config.t) list

type outcome =
  | Agree
  | Skipped  (** the reference ran out of fuel; vacuous *)
  | Mismatch of { config : string; ir_ok : bool; machine_ok : bool }
  | Crash of { config : string; exn : string }

(** Unoptimized reference behaviour: (exit code, output). *)
val reference : ?fuel:int -> string -> int64 array -> int * string

(** Compile at every configuration; compare interpreter and machine
    behaviour against the reference. *)
val check : ?fuel:int -> string -> int64 array -> outcome

(** [Agree] or [Skipped]. *)
val agrees : ?fuel:int -> string -> int64 array -> bool
