(* Compilation configurations.  The four levels reproduce the paper's
   columns: a GCC-like traditional compiler, IMPACT classical (O-NS), ILP
   transformation without control speculation (ILP-NS), and with it
   (ILP-CS).  All IMPACT levels share inlining, indirect-call specialization
   and interprocedural pointer analysis, exactly as the paper holds those
   constant across its comparison. *)

type level = Gcc_like | O_NS | ILP_NS | ILP_CS

type t = {
  level : level;
  spec_model : Epic_ilp.Speculate.model; (* ILP-CS only *)
  pointer_analysis : bool; (* disabled for eon/perlbmk in the paper *)
  inline_budget : float;
  superblock : Epic_ilp.Superblock.params;
  hyperblock : Epic_ilp.Hyperblock.params;
  peel : Epic_ilp.Peel.params;
  unroll : Epic_ilp.Unroll.params;
  enable_peel : bool;
  enable_unroll : bool;
  enable_hyperblock : bool;
  enable_superblock : bool;
  enable_height_reduction : bool;
  enable_data_speculation : bool;
      (* extension (paper Section 2: not used by IMPACT's main results;
         "a limited initial application is providing a 5% speedup" on gap) *)
}

let make ?(spec_model = Epic_ilp.Speculate.General) ?(pointer_analysis = true)
    ?(inline_budget = 1.6) level =
  {
    level;
    spec_model;
    pointer_analysis;
    inline_budget;
    superblock = Epic_ilp.Superblock.default_params;
    hyperblock = Epic_ilp.Hyperblock.default_params;
    peel = Epic_ilp.Peel.default_params;
    unroll = Epic_ilp.Unroll.default_params;
    enable_peel = true;
    enable_unroll = true;
    enable_hyperblock = true;
    enable_superblock = true;
    enable_height_reduction = true;
    enable_data_speculation = false;
  }

let gcc_like = make Gcc_like
let o_ns = make O_NS
let ilp_ns = make ILP_NS
let ilp_cs = make ILP_CS

let level_name = function
  | Gcc_like -> "GCC"
  | O_NS -> "O-NS"
  | ILP_NS -> "ILP-NS"
  | ILP_CS -> "ILP-CS"

let name c =
  level_name c.level
  ^
  match (c.level, c.spec_model) with
  | ILP_CS, Epic_ilp.Speculate.Sentinel -> "(sentinel)"
  | _ -> ""

let is_ilp c = match c.level with ILP_NS | ILP_CS -> true | Gcc_like | O_NS -> false
let has_speculation c = c.level = ILP_CS
