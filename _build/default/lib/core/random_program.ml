(* Random mini-C program generation and whole-pipeline differential
   checking.  Used by the qcheck property in the test suite and by the
   standalone fuzzer (bin/fuzz.ml): a generated program is compiled at
   every optimization level and executed both by the reference interpreter
   and by the machine simulator, and all observable behaviour (exit code,
   printed output) must agree with the unoptimized program's.

   Generated programs always terminate: loops are bounded counted loops,
   division and modulus take non-zero constant divisors, and all array
   indices are masked into range. *)

module Gen = struct
  open QCheck.Gen

  let var n = Printf.sprintf "v%d" n

  let rec expr depth st =
    let atom =
      oneof
        [
          (let* k = int_range (-50) 99 in
           return (string_of_int k));
          (let* v = int_range 0 3 in
           return (var v));
          (let* i = int_range 0 31 in
           return (Printf.sprintf "g[%d]" i));
          return "input(0)";
        ]
    in
    if depth <= 0 then atom st
    else
      (oneof
         [
           atom;
           (let* a = expr (depth - 1) and* b = expr (depth - 1) in
            let* op = oneofl [ "+"; "-"; "*"; "&"; "|"; "^" ] in
            return (Printf.sprintf "(%s %s %s)" a op b));
           (let* a = expr (depth - 1) in
            (* safe division / modulus: constant non-zero divisor *)
            let* op = oneofl [ "/"; "%" ] in
            let* k = int_range 2 9 in
            return (Printf.sprintf "(%s %s %d)" a op k));
           (let* a = expr (depth - 1) and* b = expr (depth - 1) in
            let* op = oneofl [ "<"; ">"; "=="; "!=" ] in
            return (Printf.sprintf "(%s %s %s)" a op b));
           (let* a = expr (depth - 1) in
            return (Printf.sprintf "helper(%s)" a));
         ])
        st

  let assign =
    let* v = int_range 0 3 in
    let* e = expr 2 in
    return (Printf.sprintf "%s = %s;" (var v) e)

  let array_store =
    let* i = int_range 0 3 in
    let* e = expr 2 in
    return (Printf.sprintf "g[(%s & 31)] = %s;" (var i) e)

  let rec stmt depth st =
    (if depth <= 0 then oneof [ assign; array_store ]
     else
       frequency
         [
           (3, assign);
           (2, array_store);
           ( 2,
             let* c = expr 2 in
             let* a = block (depth - 1) and* b = block (depth - 1) in
             return (Printf.sprintf "if (%s) {\n%s\n} else {\n%s\n}" c a b) );
           ( 1,
             let* n = int_range 1 12 in
             let* body = block (depth - 1) in
             let* v = int_range 4 5 in
             return
               (Printf.sprintf "for (%s = 0; %s < %d; %s = %s + 1) {\n%s\n}"
                  (var v) (var v) n (var v) (var v) body) );
         ])
      st

  and block depth st =
    (let* n = int_range 1 4 in
     let* stmts = list_size (return n) (stmt depth) in
     return (String.concat "\n" stmts))
      st

  let program =
    let* body = block 3 in
    let* helper_body = expr 2 in
    let* seed = int_range 0 1000 in
    return
      (Printf.sprintf
         {|
int g[32];
int v0; int v1; int v2; int v3; int v4; int v5;
int helper(int x) {
  int v0; int v1; int v2; int v3;
  v0 = x; v1 = x * 3; v2 = 7; v3 = 1;
  return (%s) %% 100000;
}
int main() {
  int i;
  for (i = 0; i < 32; i = i + 1) { g[i] = (i * %d + 3) %% 101 - 20; }
  v0 = 1; v1 = 2; v2 = 3; v3 = 4; v4 = 0; v5 = 0;
%s
  print_int(v0); print_int(v1); print_int(v2); print_int(v3);
  print_int(g[5]); print_int(g[17]);
  return 0;
}
|}
         helper_body seed body)
end

(** The configurations a program is checked under: the paper's four levels
    plus the sentinel-speculation and data-speculation variants. *)
let configs =
  [
    ("gcc", Config.gcc_like);
    ("o-ns", Config.o_ns);
    ("ilp-ns", Config.ilp_ns);
    ("ilp-cs", Config.ilp_cs);
    ( "ilp-cs-sentinel",
      { (Config.make Config.ILP_CS) with Config.spec_model = Epic_ilp.Speculate.Sentinel } );
    ( "ilp-cs-dataspec",
      { (Config.make Config.ILP_CS) with Config.enable_data_speculation = true } );
  ]

type outcome =
  | Agree  (** every configuration matched the reference *)
  | Skipped  (** the reference run exhausted its fuel; nothing to compare *)
  | Mismatch of { config : string; ir_ok : bool; machine_ok : bool }
  | Crash of { config : string; exn : string }

let reference ?(fuel = 4_000_000) (src : string) (input : int64 array) =
  let p = Epic_frontend.Lower.compile_source src in
  let code, out, _ = Epic_ir.Interp.run ~fuel p input in
  (code, out)

(* Check one source at every configuration, both through the interpreter
   (IR semantics after all transforms) and through the machine. *)
let check ?(fuel = 8_000_000) (src : string) (input : int64 array) : outcome =
  match reference src input with
  | exception Epic_ir.Interp.Out_of_fuel -> Skipped
  | expected ->
      let rec go = function
        | [] -> Agree
        | (name, config) :: rest -> (
            match Driver.compile ~config ~train:input src with
            | exception Epic_ir.Interp.Out_of_fuel -> Skipped
            | exception e -> Crash { config = name; exn = Printexc.to_string e }
            | compiled -> (
                match
                  ( Driver.run_reference ~fuel compiled input,
                    Driver.run ~fuel compiled input )
                with
                | exception (Epic_ir.Interp.Out_of_fuel | Epic_sim.Machine.Out_of_fuel)
                  ->
                    Skipped
                | exception e -> Crash { config = name; exn = Printexc.to_string e }
                | (ic, io), (mc, mo, _) ->
                    let ir_ok = (ic, io) = expected in
                    let machine_ok = (mc, mo) = expected in
                    if ir_ok && machine_ok then go rest
                    else Mismatch { config = name; ir_ok; machine_ok }))
      in
      go configs

(** True when the program agrees everywhere (Skipped counts as success for
    property testing — the case is vacuous). *)
let agrees ?fuel src input =
  match check ?fuel src input with
  | Agree | Skipped -> true
  | Mismatch _ | Crash _ -> false
