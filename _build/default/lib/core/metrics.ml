(* Measurements extracted from one simulated run — the counter set the paper
   reads from Pfmon, plus compiler-side statistics. *)

type run = {
  workload : string;
  config : Config.t;
  cycles : float;
  planned : float; (* unstalled + scoreboard categories (footnote 4) *)
  categories : float array; (* the 9 accounting categories *)
  useful_ops : int;
  squashed_ops : int;
  nop_ops : int;
  kernel_ops : int;
  branches : int;
  predictions : int;
  mispredictions : int;
  l1i_accesses : int;
  l1i_misses : int;
  l1d_accesses : int;
  l1d_misses : int;
  dtlb_misses : int;
  wild_loads : int;
  spec_loads : int;
  chk_recoveries : int;
  rse_spills : int;
  groups : int;
  by_func : (string * float array) list; (* per-function category cycles *)
  stats : Driver.transform_stats;
  output_matches : bool; (* simulator output == reference interpreter output *)
}

let of_machine ~(workload : string) (compiled : Driver.compiled)
    (st : Epic_sim.Machine.t) ~(output_matches : bool) =
  let open Epic_sim in
  let acc = st.Machine.acc in
  {
    workload;
    config = compiled.Driver.config;
    cycles = Accounting.total acc;
    planned = Accounting.planned acc;
    categories = Array.copy acc.Accounting.totals;
    useful_ops = st.Machine.c.Machine.useful_ops;
    squashed_ops = st.Machine.c.Machine.squashed_ops;
    nop_ops = st.Machine.c.Machine.nop_ops;
    kernel_ops = st.Machine.c.Machine.kernel_ops;
    branches = st.Machine.c.Machine.branches;
    predictions = st.Machine.bp.Branch_pred.predictions;
    mispredictions = st.Machine.bp.Branch_pred.mispredictions;
    l1i_accesses = st.Machine.l1i.Cache.accesses;
    l1i_misses = st.Machine.l1i.Cache.misses;
    l1d_accesses = st.Machine.l1d.Cache.accesses;
    l1d_misses = st.Machine.l1d.Cache.misses;
    dtlb_misses = st.Machine.dtlb.Tlb.misses;
    wild_loads = st.Machine.c.Machine.wild_loads;
    spec_loads = st.Machine.c.Machine.spec_loads;
    chk_recoveries = st.Machine.c.Machine.chk_recoveries;
    rse_spills = st.Machine.rse.Rse.spills;
    groups = st.Machine.c.Machine.groups;
    by_func =
      Hashtbl.fold (fun f b acc -> (f, Array.copy b) :: acc)
        acc.Accounting.by_func [];
    stats = compiled.Driver.transform_stats;
    output_matches;
  }

(* Planned IPC: useful operations per anticipated cycle (the paper's 2.63
   for ILP-CS); achieved IPC: useful operations per actual cycle (1.23). *)
let planned_ipc r =
  if r.planned > 0. then float_of_int r.useful_ops /. r.planned else 0.

let achieved_ipc r =
  if r.cycles > 0. then float_of_int r.useful_ops /. r.cycles else 0.

let branch_prediction_rate r =
  if r.predictions = 0 then 1.0
  else 1.0 -. (float_of_int r.mispredictions /. float_of_int r.predictions)

let category r cat = r.categories.(Epic_sim.Accounting.index cat)

let geomean xs =
  match xs with
  | [] -> 0.
  | _ ->
      let n = float_of_int (List.length xs) in
      exp (List.fold_left (fun acc x -> acc +. log (max x 1e-9)) 0. xs /. n)
