(** Measurements extracted from one simulated run — the counter set the
    paper reads from Pfmon, plus compiler-side statistics — and the derived
    quantities the figures plot. *)

type run = {
  workload : string;
  config : Config.t;
  cycles : float;
  planned : float;  (** unstalled + scoreboard categories (footnote 4) *)
  categories : float array;  (** the 9 accounting categories *)
  useful_ops : int;
  squashed_ops : int;
  nop_ops : int;
  kernel_ops : int;
  branches : int;
  predictions : int;
  mispredictions : int;
  l1i_accesses : int;
  l1i_misses : int;
  l1d_accesses : int;
  l1d_misses : int;
  dtlb_misses : int;
  wild_loads : int;
  spec_loads : int;
  chk_recoveries : int;
  rse_spills : int;
  groups : int;
  by_func : (string * float array) list;
  stats : Driver.transform_stats;
  output_matches : bool;
      (** simulator output equalled the reference interpreter's *)
}

val of_machine :
  workload:string ->
  Driver.compiled ->
  Epic_sim.Machine.t ->
  output_matches:bool ->
  run

(** Useful operations per statically-anticipated cycle (paper: 2.63 for
    ILP-CS). *)
val planned_ipc : run -> float

(** Useful operations per actual cycle (paper: 1.23). *)
val achieved_ipc : run -> float

val branch_prediction_rate : run -> float
val category : run -> Epic_sim.Accounting.category -> float
val geomean : float list -> float
