(** Compilation configurations: the four optimization levels the paper
    compares, plus the knobs the experiments (and ablations) turn. *)

(** The paper's four columns. *)
type level =
  | Gcc_like  (** traditional compiler stand-in: classical opts only *)
  | O_NS  (** IMPACT classical: inlining + IPA, no predication/speculation *)
  | ILP_NS  (** + structural region formation, no control speculation *)
  | ILP_CS  (** + control speculation *)

type t = {
  level : level;
  spec_model : Epic_ilp.Speculate.model;
      (** general vs sentinel control speculation (ILP-CS only) *)
  pointer_analysis : bool;
      (** the paper disables pointer analysis for eon and perlbmk *)
  inline_budget : float;  (** code-growth factor for inlining (paper: 1.6) *)
  superblock : Epic_ilp.Superblock.params;
  hyperblock : Epic_ilp.Hyperblock.params;
  peel : Epic_ilp.Peel.params;
  unroll : Epic_ilp.Unroll.params;
  enable_peel : bool;
  enable_unroll : bool;
  enable_hyperblock : bool;
  enable_superblock : bool;
  enable_height_reduction : bool;
  enable_data_speculation : bool;
      (** extension: ld.a/chk.a through the ALAT (off by default, as in the
          paper's shipped results) *)
}

(** [make level] builds a configuration with the defaults the experiments
    use; optional arguments override the speculation model, pointer
    analysis and inlining budget. *)
val make :
  ?spec_model:Epic_ilp.Speculate.model ->
  ?pointer_analysis:bool ->
  ?inline_budget:float ->
  level ->
  t

val gcc_like : t
val o_ns : t
val ilp_ns : t
val ilp_cs : t

(** Short name of a level, e.g. ["ILP-CS"]. *)
val level_name : level -> string

(** Name of a configuration, including the speculation model when it is not
    the default. *)
val name : t -> string

(** Does this configuration run the structural ILP transforms? *)
val is_ilp : t -> bool

(** Does this configuration apply control speculation? *)
val has_speculation : t -> bool
