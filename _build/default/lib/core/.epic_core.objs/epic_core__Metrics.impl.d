lib/core/metrics.ml: Accounting Array Branch_pred Cache Config Driver Epic_sim Hashtbl List Machine Rse Tlb
