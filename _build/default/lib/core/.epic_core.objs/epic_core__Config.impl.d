lib/core/config.ml: Epic_ilp
