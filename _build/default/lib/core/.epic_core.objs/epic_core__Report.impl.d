lib/core/report.ml: Accounting Array Config Epic_sim Experiments List Printf String
