lib/core/driver.mli: Config Epic_ir Epic_sched Epic_sim
