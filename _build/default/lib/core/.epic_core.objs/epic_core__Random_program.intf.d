lib/core/random_program.mli: Config QCheck
