lib/core/config.mli: Epic_ilp
