lib/core/experiments.ml: Accounting Array Config Driver Epic_frontend Epic_ilp Epic_ir Epic_sim Epic_workloads Fmt List Machine Metrics Printf Suite Workload
