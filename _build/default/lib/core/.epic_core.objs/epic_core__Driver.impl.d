lib/core/driver.ml: Config Epic_analysis Epic_frontend Epic_ilp Epic_ir Epic_opt Epic_sched Epic_sim Interp List Program Verify
