lib/core/random_program.ml: Config Driver Epic_frontend Epic_ilp Epic_ir Epic_sim Printexc Printf QCheck String
