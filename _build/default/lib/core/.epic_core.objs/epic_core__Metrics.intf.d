lib/core/metrics.mli: Config Driver Epic_sim
