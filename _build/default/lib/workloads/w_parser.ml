(* 197.parser stand-in: dictionary lookup and link-grammar-like recursive
   matching over tokenized "sentences".  Character-loop string comparison,
   hash probing and recursion with many simultaneously-live temporaries —
   the register-pressure benchmark of Section 4.4. *)

let source =
  {|
int dict[2048];
int dictlen[512];
int rng;

int rand_next() {
  rng = rng * 1103515245 + 12345;
  return (rng >> 16) & 32767;
}

// word w stored as 4 ints at dict[4w..]; compare two words
int word_eq(int a, int b) {
  int i;
  i = 0;
  while (i < 4) {
    if (dict[a * 4 + i] != dict[b * 4 + i]) { return 0; }
    i = i + 1;
  }
  return 1;
}

int hash_word(int w) {
  int h;
  h = dict[w * 4] * 131 + dict[w * 4 + 1] * 31 + dict[w * 4 + 2] * 7
      + dict[w * 4 + 3];
  return h & 511;
}

int buckets[512];

int lookup(int w) {
  int b; int probes;
  b = hash_word(w);
  probes = 0;
  while (probes < 16) {
    if (buckets[b] == 0) { return 0 - 1; }
    if (word_eq(buckets[b] - 1, w)) { return buckets[b] - 1; }
    b = (b + 1) & 511;
    probes = probes + 1;
  }
  return 0 - 1;
}

int insert(int w) {
  int b; int probes;
  b = hash_word(w);
  probes = 0;
  while (buckets[b] != 0 && probes < 16) {
    b = (b + 1) & 511;
    probes = probes + 1;
  }
  buckets[b] = w + 1;
  return b;
}

int sentence[32];

// recursive cost of linking words l..r; register-heavy expression mix
int link_cost(int l, int r, int depth) {
  int mid; int best; int c; int a1; int a2; int a3; int a4;
  if (r - l < 2 || depth > 5) {
    a1 = sentence[l & 31];
    a2 = sentence[r & 31];
    return (a1 * 3 + a2 * 5) % 97;
  }
  best = 1000000;
  mid = l + 1;
  while (mid < r) {
    a1 = link_cost(l, mid, depth + 1);
    a2 = link_cost(mid, r, depth + 1);
    a3 = (sentence[l & 31] + sentence[mid & 31]) % 53;
    a4 = (sentence[mid & 31] * sentence[r & 31] + 11) % 89;
    c = a1 + a2 + a3 + a4;
    if (c < best) { best = c; }
    mid = mid + 2;
  }
  return best;
}

int main() {
  int words; int sentences; int len; int s; int i; int w; int total; int found;
  rng = input(0);
  words = input(1);
  sentences = input(2);
  len = input(3);
  total = 0;
  found = 0;
  for (w = 0; w < words; w = w + 1) {
    for (i = 0; i < 4; i = i + 1) { dict[w * 4 + i] = rand_next() % 26; }
    dictlen[w] = 2 + rand_next() % 3;
    insert(w);
  }
  for (s = 0; s < sentences; s = s + 1) {
    for (i = 0; i < len; i = i + 1) {
      sentence[i & 31] = rand_next() % words;
      if (lookup(sentence[i & 31]) >= 0) { found = found + 1; }
    }
    total = total + link_cost(0, len - 1, 0);
  }
  print_int(found);
  print_int(total);
  return 0;
}
|}

let t =
  Workload.make ~name:"197.parser" ~short:"parser"
    ~description:"dictionary + link-grammar matching: recursion, register pressure"
    ~source
    ~train:[| 17L; 300L; 25L; 12L |]
    ~reference:[| 29L; 420L; 35L; 14L |]
    ()
