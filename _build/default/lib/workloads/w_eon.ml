(* 252.eon stand-in: probabilistic ray tracing in a C++ style — virtual
   dispatch through function-pointer tables where almost every call site is
   monomorphic (the paper: "in the C++ program eon, monomorphic virtual
   invocations"), plus floating-point shading math.  Pointer analysis is
   disabled for this benchmark, as in the paper (no C++ support), so
   indirect-call specialization and inlining carry the optimization. *)

let source =
  {|
int rng;
float lightx; float lighty;

int rand_next() {
  rng = rng * 1103515245 + 12345;
  return (rng >> 16) & 32767;
}

// "virtual methods": shade functions selected by object kind
int shade_matte(int obj) {
  float d;
  d = lightx * (float) (obj & 15) + lighty;
  if (d < 0.0) { d = 0.0 - d; }
  return (int) (d * 8.0) + obj % 7;
}

int shade_metal(int obj) {
  float d; float spec;
  d = lightx + lighty * (float) (obj & 7);
  spec = d * d * 0.4;
  return (int) spec + obj % 5;
}

int shade_glass(int obj) {
  float r;
  r = 0.7 * lightx + 0.2 * (float) (obj & 3);
  return (int) (r * 16.0);
}

int vtable[8];

// object table: [kind; data] pairs; kind indexes the vtable
int objects[512];

int trace_ray(int x, int y, int nobjs) {
  int i; int s; int obj; int kind; int fp;
  s = 0;
  for (i = 0; i < nobjs; i = i + 1) {
    obj = objects[i * 2 + 1] + x * 3 + y;
    kind = objects[i * 2];
    fp = vtable[kind];
    // indirect (virtual) call: 90%+ of sites resolve to shade_matte
    s = s + (fp)(obj);
  }
  return s;
}

int main() {
  int rays; int nobjs; int r; int total; int i; int k;
  rng = input(0);
  rays = input(1);
  nobjs = input(2);
  lightx = 0.6; lighty = 0.3;
  vtable[0] = (int) &shade_matte;
  vtable[1] = (int) &shade_metal;
  vtable[2] = (int) &shade_glass;
  for (i = 0; i < nobjs; i = i + 1) {
    k = rand_next() % 20;
    if (k < 18) { k = 0; } else { if (k == 18) { k = 1; } else { k = 2; } }
    objects[i * 2] = k;
    objects[i * 2 + 1] = rand_next() % 200;
  }
  total = 0;
  for (r = 0; r < rays; r = r + 1) {
    total = total + trace_ray(r % 37, r % 23, nobjs);
    total = total % 10000000;
  }
  print_int(total);
  return 0;
}
|}

let t =
  Workload.make ~name:"252.eon" ~short:"eon" ~pointer_analysis:false
    ~description:"ray tracing with monomorphic virtual calls and FP shading"
    ~source
    ~train:[| 3L; 220L; 60L |]
    ~reference:[| 51L; 350L; 90L |]
    ()
