(* 186.crafty stand-in: chess position evaluation, the paper's motivating
   example (Section 2.4).  Many distinct, branchy scoring routines give a
   large instruction footprint; the piece-scan while loops typically execute
   exactly once (ideal loop-peeling targets); evaluation is called for every
   generated move, so I-cache behaviour under code-expanding transforms is
   the phenomenon of interest. *)

let source =
  {|
int board[64];
int pawnrank[16];
int rng;

int rand_next() {
  rng = rng * 1103515245 + 12345;
  return (rng >> 16) & 32767;
}

int eval_pawns(int side) {
  int i; int s; int p;
  s = 0;
  for (i = 0; i < 64; i = i + 1) {
    p = board[i];
    if (p == 1 + side) {
      s = s + 10;
      if (pawnrank[i & 7] < (i >> 3)) { s = s + 4; } else { s = s - 2; }
      if ((i & 7) == 0 || (i & 7) == 7) { s = s - 3; }
    }
  }
  return s;
}

int eval_knights(int side) {
  int i; int s; int p;
  s = 0;
  for (i = 0; i < 64; i = i + 1) {
    p = board[i];
    if (p == 2 + side) {
      s = s + 30;
      if (i > 16 && i < 48) { s = s + 6; }
      if (board[(i + 17) & 63] == 0) { s = s + 1; }
      if (board[(i + 15) & 63] == 0) { s = s + 1; }
    }
  }
  return s;
}

int eval_bishops(int side) {
  int i; int s; int p; int d;
  s = 0;
  for (i = 0; i < 64; i = i + 1) {
    p = board[i];
    if (p == 3 + side) {
      s = s + 32;
      d = i + 9;
      // short diagonal scan: usually stops after one square
      while (d < 64 && board[d] == 0) { s = s + 2; d = d + 9; }
    }
  }
  return s;
}

int eval_rooks(int side) {
  int i; int s; int p; int f;
  s = 0;
  for (i = 0; i < 64; i = i + 1) {
    p = board[i];
    if (p == 4 + side) {
      s = s + 50;
      f = i & 7;
      if (pawnrank[f] == 0) { s = s + 8; }
      if ((i >> 3) == 6) { s = s + 12; }
    }
  }
  return s;
}

// the queen loops of Figure 3: each player typically has exactly one
// queen, so each while loop body executes exactly once
int eval_queens(int side) {
  int sq; int s;
  s = 0;
  sq = 0;
  while (sq < 64 && board[sq] != 5 + side) { sq = sq + 1; }
  while (sq < 64) {
    s = s + 90;
    if (sq > 26 && sq < 37) { s = s + 5; }
    sq = sq + 64;
  }
  return s;
}

int eval_king(int side) {
  int sq; int s;
  s = 0;
  sq = 0;
  while (sq < 64 && board[sq] != 6 + side) { sq = sq + 1; }
  while (sq < 64) {
    if ((sq & 7) > 4 || (sq & 7) < 2) { s = s + 9; } else { s = s - 6; }
    sq = sq + 64;
  }
  return s;
}

int evaluate() {
  int s;
  s = eval_pawns(0) - eval_pawns(8);
  s = s + eval_knights(0) - eval_knights(8);
  s = s + eval_bishops(0) - eval_bishops(8);
  s = s + eval_rooks(0) - eval_rooks(8);
  s = s + eval_queens(0) - eval_queens(8);
  s = s + eval_king(0) - eval_king(8);
  return s;
}

// density shapes the position: piece count, pawn structure and queen
// multiplicity all depend on it, so different inputs exercise different
// branch biases and loop trip counts (profile variation, Section 4.6)
int make_random_position(int density) {
  int i; int n;
  for (i = 0; i < 64; i = i + 1) { board[i] = 0; }
  for (i = 0; i < 16; i = i + 1) { pawnrank[i] = rand_next() % (1 + density % 5); }
  n = 6 + density + rand_next() % 12;
  for (i = 0; i < n; i = i + 1) {
    board[rand_next() & 63] = 1 + rand_next() % 6 + 8 * (rand_next() & 1);
  }
  // queen multiplicity depends on the density: sparse games usually have
  // one queen per side (single-trip loops), dense ones promote extras
  board[rand_next() & 63] = 5;
  board[rand_next() & 63] = 13;
  if (density > 10) {
    board[rand_next() & 63] = 5;
    if (rand_next() % 2 == 0) { board[rand_next() & 63] = 13; }
  }
  return n;
}

int main() {
  int moves; int m; int total; int density;
  rng = input(0);
  moves = input(1);
  density = input(2);
  total = 0;
  for (m = 0; m < moves; m = m + 1) {
    make_random_position(density);
    total = total + evaluate();
  }
  print_int(total);
  return 0;
}
|}

let t =
  Workload.make ~name:"186.crafty" ~short:"crafty"
    ~description:"chess evaluation: branchy scoring, one-trip queen loops, big footprint"
    ~source
    ~train:[| 31L; 160L; 4L |]
    ~reference:[| 8L; 260L; 13L |]
    ()
