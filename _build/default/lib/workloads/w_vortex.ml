(* 255.vortex stand-in: an object-oriented in-memory database — object
   allocation, hash-indexed lookup, field updates and object copies through
   memcpy, spread over many small accessor functions.  Inlining and region
   formation give vortex the paper's largest ILP gain (1.50); the memcpy
   and allocator time, being "library code", stays unoptimizable (the
   Figure 10 effect). *)

let source =
  {|
int rng;
int index_tbl[1024];
int live_objects;

int rand_next() {
  rng = rng * 1103515245 + 12345;
  return (rng >> 16) & 32767;
}

// object layout: [0]=key, [1]=kind, [2..5]=fields, [6]=version, [7]=pad
int *oa_create(int key, int kind) {
  int *o;
  o = malloc(64);
  o[0] = key;
  o[1] = kind;
  o[2] = key * 3; o[3] = key % 97; o[4] = 0; o[5] = kind * 7;
  o[6] = 1;
  live_objects = live_objects + 1;
  return o;
}

int hm_slot(int key) { return (key * 2654435761) & 1023; }

int hm_insert(int *o) {
  int s; int probes;
  s = hm_slot(o[0]);
  probes = 0;
  while (index_tbl[s] != 0 && probes < 24) {
    s = (s + 1) & 1023;
    probes = probes + 1;
  }
  index_tbl[s] = (int) o;
  return s;
}

int *hm_get(int key) {
  int s; int probes; int *o;
  s = hm_slot(key);
  probes = 0;
  while (probes < 24) {
    if (index_tbl[s] == 0) { return (int*) 0; }
    o = (int*) index_tbl[s];
    if (o[0] == key) { return o; }
    s = (s + 1) & 1023;
    probes = probes + 1;
  }
  return (int*) 0;
}

int oa_get_field(int *o, int f) { return o[2 + (f & 3)]; }
int oa_put_field(int *o, int f, int v) { o[2 + (f & 3)] = v; o[6] = o[6] + 1; return v; }
int oa_validate(int *o) {
  if (o[6] < 1) { return 0; }
  if (o[1] < 0 || o[1] > 15) { return 0; }
  return 1;
}

// clone an object through the library memcpy
int *oa_clone(int *o) {
  int *c;
  c = malloc(64);
  memcpy((int) c, (int) o, 64);
  c[0] = o[0] + 100000;
  live_objects = live_objects + 1;
  return c;
}

// report generation: field arithmetic over one object, biased branches —
// the straight-line-able hot path region formation thrives on
int oa_report(int *o, int salt) {
  int s; int k; int v;
  s = o[2] * 3 + o[3];
  v = o[4] + salt;
  if (v > 500) { s = s + v / 2; } else { s = s + v * 2; }
  if (o[1] < 6) { s = s + 7; } else { s = s - 3; }
  k = (o[5] + salt) & 15;
  if (k > 11) { s = s + k * k; }
  s = s + o[6];
  return s % 100000;
}

int main() {
  int objs; int txns; int i; int t; int key; int total; int *o; int *c;
  rng = input(0);
  objs = input(1);
  txns = input(2);
  live_objects = 0;
  for (i = 0; i < objs; i = i + 1) {
    o = oa_create(i * 7 + 1, i % 12);
    hm_insert(o);
  }
  total = 0;
  for (t = 0; t < txns; t = t + 1) {
    key = (rand_next() % objs) * 7 + 1;
    o = hm_get(key);
    if ((int) o != 0) {
      if (oa_validate(o)) {
        total = total + oa_get_field(o, t);
        oa_put_field(o, t + 1, total % 1000);
        total = total + oa_report(o, t & 1023);
        if (t % 64 == 0) {
          c = oa_clone(o);
          total = total + oa_get_field(c, 2);
        }
      }
    }
    total = total % 10000000;
  }
  print_int(live_objects);
  print_int(total);
  return 0;
}
|}

let t =
  Workload.make ~name:"255.vortex" ~short:"vortex"
    ~description:"OO database: hash index, small accessors, memcpy clones"
    ~source
    ~train:[| 5L; 150L; 2500L |]
    ~reference:[| 71L; 260L; 5000L |]
    ()
