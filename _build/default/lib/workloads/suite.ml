(* The twelve-benchmark suite in SPECint2000 order. *)

let all : Workload.t list =
  [
    W_gzip.t;
    W_vpr.t;
    W_gcc.t;
    W_mcf.t;
    W_crafty.t;
    W_parser.t;
    W_eon.t;
    W_perlbmk.t;
    W_gap.t;
    W_vortex.t;
    W_bzip2.t;
    W_twolf.t;
  ]

let find short = List.find_opt (fun (w : Workload.t) -> w.Workload.short = short) all

let find_exn short =
  match find short with
  | Some w -> w
  | None -> invalid_arg ("unknown workload " ^ short)

let names = List.map (fun (w : Workload.t) -> w.Workload.short) all
