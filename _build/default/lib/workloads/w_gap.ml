(* 254.gap stand-in: computer-algebra kernels — arithmetic over heap-
   allocated "bags" driven through a dispatch table of handlers (heavily
   biased indirect calls, like gap's), plus otherwise highly-parallel loops
   whose loads and stores go through pointers the analysis cannot fully
   resolve (the paper: "pointer analysis is unable to resolve critical
   spurious dependences in otherwise highly-parallel loops"). *)

let source =
  {|
int rng;
int handlers[4];

int rand_next() {
  rng = rng * 1103515245 + 12345;
  return (rng >> 16) & 32767;
}

int h_add(int x) { return (x + 17) % 65536; }
int h_mul(int x) { return (x * 3) % 65536; }
int h_neg(int x) { return (0 - x) & 65535; }

// vector sum with pointers selected at runtime from a table: the analysis
// sees all three buffers reaching both pointer slots, drawing spurious
// dependence arcs in an otherwise parallel loop
int bufsel[4];

int vector_op(int *a, int *b, int *dst, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    dst[i] = (a[i] * 3 + b[i]) % 32768;
  }
  return dst[0];
}

int main() {
  int rounds; int n; int r; int total; int i; int k; int fp; int bias;
  int *x; int *y; int *z; int *pick;
  rng = input(0);
  rounds = input(1);
  n = input(2);
  bias = input(3);
  handlers[0] = (int) &h_add;
  handlers[1] = (int) &h_mul;
  handlers[2] = (int) &h_neg;
  x = malloc(n * 8);
  y = malloc(n * 8);
  z = malloc(n * 8);
  for (i = 0; i < n; i = i + 1) {
    x[i] = rand_next();
    y[i] = rand_next();
    z[i] = 0;
  }
  total = 0;
  for (r = 0; r < rounds; r = r + 1) {
    // runtime-selected buffers obscure independence
    if (r % 3 == 0) { pick = x; } else { if (r % 3 == 1) { pick = y; } else { pick = z; } }
    total = total + vector_op(pick, y, z, n);
    // dispatch-heavy scalar pass: the handler mix depends on the input
    // (profile variation), dominated by h_add at high bias
    for (i = 0; i < n; i = i + 1) {
      k = rand_next() % 20;
      if (k < bias) { k = 0; } else { if (k < bias + 2) { k = 1; } else { k = 2; } }
      fp = handlers[k];
      z[i] = (fp)(z[i]);
    }
    total = (total + z[n - 1]) % 1000000;
  }
  print_int(total);
  return 0;
}
|}

let t =
  Workload.make ~name:"254.gap" ~short:"gap"
    ~description:"algebra kernels: biased handler dispatch, spurious loop deps"
    ~source
    ~train:[| 3L; 25L; 220L; 17L |]
    ~reference:[| 19L; 40L; 300L; 11L |]
    ()
