(* 256.bzip2 stand-in: block transform compression — counting sort over
   byte buckets, move-to-front coding and run-length emission.  Tight loops
   with stores immediately feeding nearby loads model the store-to-load
   micro-stalls the paper notes for bzip (micropipe category). *)

let source =
  {|
int block[4096];
int freq[256];
int mtf[256];
int out[4096];
int rng;

int rand_next() {
  rng = rng * 1103515245 + 12345;
  return (rng >> 16) & 32767;
}

int fill_block(int n, int alpha) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    block[i] = rand_next() % alpha;
  }
  return n;
}

// counting sort by byte value: store-then-load prefix sums
int counting_pass(int n) {
  int i; int acc;
  for (i = 0; i < 256; i = i + 1) { freq[i] = 0; }
  for (i = 0; i < n; i = i + 1) {
    freq[block[i]] = freq[block[i]] + 1;
  }
  acc = 0;
  for (i = 0; i < 256; i = i + 1) {
    acc = acc + freq[i];
    freq[i] = acc;
  }
  return acc;
}

// move-to-front: inner shift loop, usually short for skewed data
int mtf_pass(int n) {
  int i; int v; int j; int prev; int cur; int sum;
  for (i = 0; i < 256; i = i + 1) { mtf[i] = i; }
  sum = 0;
  for (i = 0; i < n; i = i + 1) {
    v = block[i];
    j = 0;
    prev = mtf[0];
    while (prev != v) {
      cur = mtf[j + 1];
      mtf[j + 1] = prev;
      prev = cur;
      j = j + 1;
    }
    mtf[0] = v;
    out[i] = j;
    sum = sum + j;
  }
  return sum;
}

// run-length emission of the MTF output
int rle_pass(int n) {
  int i; int runs; int run;
  runs = 0;
  i = 0;
  while (i < n) {
    run = 1;
    while (i + run < n && out[i + run] == out[i] && run < 255) {
      run = run + 1;
    }
    runs = runs + 1;
    i = i + run;
  }
  return runs;
}

int main() {
  int rounds; int n; int alpha; int r; int total;
  rng = input(0);
  rounds = input(1);
  n = input(2);
  alpha = input(3);
  total = 0;
  for (r = 0; r < rounds; r = r + 1) {
    fill_block(n, alpha);
    total = total + counting_pass(n);
    total = total + mtf_pass(n);
    total = total + rle_pass(n);
    total = total % 10000000;
  }
  print_int(total);
  return 0;
}
|}

let t =
  Workload.make ~name:"256.bzip2" ~short:"bzip2"
    ~description:"block compression: counting sort, MTF, RLE; store-to-load traffic"
    ~source
    ~train:[| 7L; 4L; 1200L; 10L |]
    ~reference:[| 55L; 7L; 1800L; 14L |]
    ()
