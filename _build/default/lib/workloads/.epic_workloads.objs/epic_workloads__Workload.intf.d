lib/workloads/workload.mli:
