lib/workloads/w_perlbmk.ml: Workload
