lib/workloads/workload.ml:
