lib/workloads/w_eon.ml: Workload
