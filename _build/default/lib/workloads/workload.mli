(** A workload: a mini-C program standing in for one SPECint2000 benchmark,
    with distinct training and reference inputs (SPEC run rules) and the
    per-benchmark compiler quirks the paper reports. *)

type t = {
  name : string;  (** SPEC-style name, e.g. ["164.gzip"] *)
  short : string;  (** e.g. ["gzip"] *)
  description : string;
  source : string;  (** mini-C text *)
  train : int64 array;  (** profiling input *)
  reference : int64 array;  (** evaluation input *)
  pointer_analysis : bool;
      (** false for eon and perlbmk, as in the paper *)
}

val make :
  ?pointer_analysis:bool ->
  name:string ->
  short:string ->
  description:string ->
  source:string ->
  train:int64 array ->
  reference:int64 array ->
  unit ->
  t
