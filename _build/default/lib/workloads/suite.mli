(** The twelve-benchmark suite, in SPECint2000 order. *)

val all : Workload.t list
val find : string -> Workload.t option

(** @raise Invalid_argument for an unknown short name. *)
val find_exn : string -> Workload.t

val names : string list
