(* 253.perlbmk stand-in: a bytecode interpreter — opcode dispatch through a
   biased if-chain, a small operand stack, string-hash builtins.  The mix of
   executed opcodes depends strongly on the input "script", which makes the
   benchmark sensitive to profile variation (Section 4.6); pointer analysis
   is disabled (as in the paper, for scalability). *)

let source =
  {|
int code[2048];
int stack[64];
int vars[64];
int rng;

int rand_next() {
  rng = rng * 1103515245 + 12345;
  return (rng >> 16) & 32767;
}

int hash_builtin(int v) {
  int h; int i;
  h = v;
  for (i = 0; i < 4; i = i + 1) {
    h = h * 31 + (v >> (i * 8));
    h = h & 65535;
  }
  return h;
}

// generate a random program; opcode distribution controlled by [bias] so
// train and reference inputs exercise different mixes
int gen_program(int n, int bias) {
  int i; int op;
  for (i = 0; i < n; i = i + 1) {
    op = rand_next() % 100;
    if (op < bias) { op = 0; }
    // push const
    else { if (op < bias + 20) { op = 1; }
    // add
    else { if (op < bias + 35) { op = 2; }
    // load var
    else { if (op < bias + 50) { op = 3; }
    // store var
    else { if (op < bias + 58) { op = 4; }
    // hash builtin
    else { op = 5; } } } } }
    // branch-if-zero
    code[i * 2] = op;
    code[i * 2 + 1] = rand_next() % 64;
  }
  return n;
}

int interp(int n, int steps) {
  int pc; int sp; int op; int arg; int a; int b; int executed;
  pc = 0; sp = 0; executed = 0;
  while (executed < steps) {
    if (pc >= n) { pc = 0; }
    op = code[pc * 2];
    arg = code[pc * 2 + 1];
    executed = executed + 1;
    if (op == 0) {
      if (sp < 60) { stack[sp] = arg; sp = sp + 1; }
      pc = pc + 1;
    } else { if (op == 1) {
      if (sp >= 2) { a = stack[sp - 1]; b = stack[sp - 2]; sp = sp - 1; stack[sp - 1] = (a + b) % 100000; }
      pc = pc + 1;
    } else { if (op == 2) {
      if (sp < 60) { stack[sp] = vars[arg]; sp = sp + 1; }
      pc = pc + 1;
    } else { if (op == 3) {
      if (sp >= 1) { sp = sp - 1; vars[arg] = stack[sp]; }
      pc = pc + 1;
    } else { if (op == 4) {
      if (sp >= 1) { stack[sp - 1] = hash_builtin(stack[sp - 1]); }
      pc = pc + 1;
    } else {
      // branch-if-zero
      if (sp >= 1) {
        sp = sp - 1;
        if (stack[sp] == 0) { pc = pc + arg % 7 + 1; } else { pc = pc + 1; }
      } else { pc = pc + 1; }
    } } } } }
  }
  return vars[0] + vars[1] + stack[0];
}

int main() {
  int n; int steps; int bias; int total;
  rng = input(0);
  n = input(1);
  steps = input(2);
  bias = input(3);
  gen_program(n, bias);
  total = interp(n, steps);
  print_int(total);
  return 0;
}
|}

let t =
  Workload.make ~name:"253.perlbmk" ~short:"perlbmk" ~pointer_analysis:false
    ~description:"bytecode interpreter: biased dispatch, profile-sensitive mix"
    ~source
    ~train:[| 13L; 400L; 30000L; 35L |]
    ~reference:[| 97L; 700L; 45000L; 20L |]
    ()
