(* 176.gcc stand-in: compiler-like traversal of a heap-allocated expression
   tree whose nodes carry a pointer/integer UNION payload — the pattern that
   produces the paper's "wild loads" (Section 4.3): once the guarded
   dereference of the union is control-speculated (predicate promotion under
   ILP-CS with the general model), the off-path executions present integer
   garbage as an address and chase spurious page faults in the kernel. *)

let source =
  {|
int rng;
int nnodes;

int rand_next() {
  rng = rng * 1103515245 + 12345;
  return (rng >> 16) & 32767;
}

// node layout: [0]=tag, [1]=payload (int or int* depending on tag),
// [2]=left child, [3]=right child (0 = none)
int *build(int depth) {
  int *n; int *leaf;
  n = malloc(32);
  nnodes = nnodes + 1;
  if (rand_next() % 4 == 0) {
    // boxed payload: tag 1, payload is a pointer
    leaf = malloc(8);
    leaf[0] = rand_next();
    n[0] = 1;
    n[1] = (int) leaf;
  } else {
    // immediate payload: tag 0, payload is a small integer that is NOT a
    // valid address
    n[0] = 0;
    n[1] = rand_next() + 600;
  }
  if (depth > 0 && rand_next() % 3 != 0) { n[2] = (int) build(depth - 1); } else { n[2] = 0; }
  if (depth > 0 && rand_next() % 3 != 0) { n[3] = (int) build(depth - 1); } else { n[3] = 0; }
  return n;
}

// fold the tree; the boxed-payload deref is the wild-load candidate
int walk(int *n) {
  int t; int v; int s;
  if ((int) n == 0) { return 0; }
  t = n[0];
  v = n[1];
  if (t == 1) { s = *((int*) v); } else { s = v; }
  return s + walk((int*) n[2]) + walk((int*) n[3]);
}

// constant folding pass: rewrites immediate nodes, biased branches
int fold(int *n) {
  int changed; int v;
  if ((int) n == 0) { return 0; }
  changed = 0;
  if (n[0] == 0) {
    v = n[1];
    if (v % 2 == 0) { n[1] = v / 2 + 601; changed = 1; }
  }
  return changed + fold((int*) n[2]) + fold((int*) n[3]);
}

int costtab[64];

// instruction-selection pass: table-driven cost estimation, branchy but
// union-free — the bulk of a compiler's time
int select_insns(int *n, int depth) {
  int c; int v; int k;
  if ((int) n == 0) { return 0; }
  v = n[1] & 63;
  c = costtab[v];
  if (n[0] == 0) {
    if (v < 16) { c = c + 2; } else { if (v < 40) { c = c + 5; } else { c = c + 9; } }
    if ((v & 1) == 0) { c = c + 1; }
  } else {
    c = c + 12;
  }
  k = depth & 7;
  if (k > 4) { c = c + costtab[k * 8]; }
  return c + select_insns((int*) n[2], depth + 1) + select_insns((int*) n[3], depth + 1);
}

int main() {
  int rounds; int depth; int r; int total; int *root; int i;
  rng = input(0);
  rounds = input(1);
  depth = input(2);
  total = 0;
  nnodes = 0;
  for (i = 0; i < 64; i = i + 1) { costtab[i] = i % 11; }
  root = build(depth);
  for (r = 0; r < rounds; r = r + 1) {
    // the union-dereferencing pass runs on a fraction of the rounds
    if (r % 5 == 0) { total = total + walk(root) % 100000; }
    total = total + fold(root);
    total = total + select_insns(root, 0);
    total = total % 1000000;
  }
  print_int(nnodes);
  print_int(total);
  return 0;
}
|}

let t =
  Workload.make ~name:"176.gcc" ~short:"gcc"
    ~description:"expression-tree passes with pointer/int unions (wild loads)"
    ~source
    ~train:[| 5L; 60L; 9L |]
    ~reference:[| 77L; 90L; 10L |]
    ()
