(* 300.twolf stand-in: standard-cell placement by annealing — neighborhood
   cost evaluation with short, LUKEWARM inner loops: the net-scan loop
   usually runs once but re-enters a nontrivial fraction of the time, so
   peeling leaves a remainder loop that is itself warm.  This recreates the
   paper's twolf observation: peel + specialization of a lukewarm remainder
   creates two warm code copies and measurable I-cache pressure. *)

let source =
  {|
int cellpos[512];
int netlist[2048];
int netstart[513];
int rng;

int rand_next() {
  rng = rng * 1103515245 + 12345;
  return (rng >> 16) & 32767;
}

// cost of the nets touching cell c: the while loop usually makes exactly
// one pass, sometimes two or three (lukewarm remainder after peeling)
int cell_cost(int c) {
  int k; int s; int last; int other;
  s = 0;
  k = netstart[c];
  last = netstart[c + 1];
  while (k < last) {
    other = netlist[k];
    if (other > c) { s = s + cellpos[other] - cellpos[c]; }
    else { s = s + cellpos[c] - cellpos[other]; }
    if (s < 0) { s = 0 - s; }
    k = k + 1;
  }
  return s;
}

int try_move(int c, int delta) {
  int before; int after; int oldpos;
  before = cell_cost(c);
  oldpos = cellpos[c];
  cellpos[c] = oldpos + delta;
  after = cell_cost(c);
  if (after <= before) { return 1; }
  cellpos[c] = oldpos;
  return 0;
}

int anneal(int cells, int moves) {
  int m; int c; int delta; int accepted;
  accepted = 0;
  for (m = 0; m < moves; m = m + 1) {
    c = rand_next() % cells;
    delta = rand_next() % 9 - 4;
    accepted = accepted + try_move(c, delta);
  }
  return accepted;
}

int main() {
  int cells; int moves; int i; int k; int deg; int pos;
  rng = input(0);
  cells = input(1);
  moves = input(2);
  pos = 0;
  for (i = 0; i < cells; i = i + 1) {
    cellpos[i] = rand_next() % 1000;
    netstart[i] = pos;
    // degree 1 most of the time, occasionally 2-4: lukewarm loop
    deg = 1;
    k = rand_next() % 10;
    if (k > 6) { deg = 2; }
    if (k > 8) { deg = 4; }
    k = 0;
    while (k < deg && pos < 2040) {
      netlist[pos] = rand_next() % cells;
      pos = pos + 1;
      k = k + 1;
    }
  }
  netstart[cells] = pos;
  print_int(anneal(cells, moves));
  return 0;
}
|}

let t =
  Workload.make ~name:"300.twolf" ~short:"twolf"
    ~description:"cell placement: lukewarm net-scan loops, peel remainders"
    ~source
    ~train:[| 9L; 300L; 2200L |]
    ~reference:[| 41L; 480L; 3600L |]
    ()
