(* A workload: a mini-C program standing in for one SPECint2000 benchmark,
   with distinct training and reference inputs (SPEC run rules) and the
   per-benchmark compiler quirks the paper reports (pointer analysis is
   disabled for eon and perlbmk). *)

type t = {
  name : string; (* SPEC-style name, e.g. "164.gzip" *)
  short : string; (* "gzip" *)
  description : string;
  source : string; (* mini-C text *)
  train : int64 array;
  reference : int64 array;
  pointer_analysis : bool;
}

let make ?(pointer_analysis = true) ~name ~short ~description ~source ~train
    ~reference () =
  { name; short; description; source; train; reference; pointer_analysis }
