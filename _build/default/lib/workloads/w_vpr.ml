(* 175.vpr stand-in: FPGA placement by simulated annealing — floating-point
   cost evaluation over a grid, swap accept/reject with a biased branch.
   Exercises the FP pipelines (float scoreboard category) and if-conversion
   of the accept test. *)

let source =
  {|
int cellx[400];
int celly[400];
int netfrom[600];
int netto[600];
int rng;

int rand_next() {
  rng = rng * 1103515245 + 12345;
  return (rng >> 16) & 32767;
}

float net_cost(int net) {
  float dx; float dy;
  int a; int b;
  a = netfrom[net];
  b = netto[net];
  dx = (float) (cellx[a] - cellx[b]);
  dy = (float) (celly[a] - celly[b]);
  if (dx < 0.0) { dx = -dx; }
  if (dy < 0.0) { dy = -dy; }
  return dx + dy * 1.1;
}

float total_cost(int nets) {
  float c;
  int i;
  c = 0.0;
  for (i = 0; i < nets; i = i + 1) {
    c = c + net_cost(i);
  }
  return c;
}

int anneal(int cells, int nets, int moves) {
  int m; int a; int b; int tx; int ty; int accepted;
  float before; float after;
  accepted = 0;
  for (m = 0; m < moves; m = m + 1) {
    a = rand_next() % cells;
    b = rand_next() % cells;
    before = total_cost(nets);
    // swap positions
    tx = cellx[a]; ty = celly[a];
    cellx[a] = cellx[b]; celly[a] = celly[b];
    cellx[b] = tx; celly[b] = ty;
    after = total_cost(nets);
    if (after < before + 2.5) {
      accepted = accepted + 1;
    } else {
      // undo
      tx = cellx[a]; ty = celly[a];
      cellx[a] = cellx[b]; celly[a] = celly[b];
      cellx[b] = tx; celly[b] = ty;
    }
  }
  return accepted;
}

int main() {
  int cells; int nets; int moves; int i;
  rng = input(0);
  cells = input(1);
  nets = input(2);
  moves = input(3);
  for (i = 0; i < cells; i = i + 1) {
    cellx[i] = rand_next() % 64;
    celly[i] = rand_next() % 64;
  }
  for (i = 0; i < nets; i = i + 1) {
    netfrom[i] = rand_next() % cells;
    netto[i] = rand_next() % cells;
  }
  print_int(anneal(cells, nets, moves));
  print_int((int) total_cost(nets));
  return 0;
}
|}

let t =
  Workload.make ~name:"175.vpr" ~short:"vpr"
    ~description:"simulated-annealing placement: FP cost, biased accept test"
    ~source
    ~train:[| 7L; 120L; 200L; 40L |]
    ~reference:[| 99L; 200L; 320L; 60L |]
    ()
