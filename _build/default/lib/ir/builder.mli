(** Imperative construction of IR functions, used by the frontend's
    lowering, by tests, and by programs that build workloads directly
    against the library (see examples/custom_workload.ml).

    The builder keeps a current block; [emit] and the convenience emitters
    append to it.  Blocks are laid out in the order they are started, which
    defines fall-through control flow. *)

type t

(** A builder appending into [func]. *)
val create : Func.t -> t

val func : t -> Func.t

(** Start (and switch to) a new block with the given label. *)
val start_block : ?kind:Block.kind -> t -> string -> Block.t

(** The block instructions are currently appended to. *)
val current : t -> Block.t

val set_current : t -> Block.t -> unit

(** Append a raw instruction. *)
val emit :
  ?pred:Reg.t ->
  ?dsts:Reg.t list ->
  ?srcs:Operand.t list ->
  t ->
  Opcode.t ->
  Instr.t

val fresh : t -> Reg.cls -> Reg.t
val fresh_int : t -> Reg.t
val fresh_pred : t -> Reg.t
val fresh_label : t -> string -> string

val mov : t -> Reg.t -> Operand.t -> unit
val movi : t -> Reg.t -> int -> unit
val binop : t -> Opcode.t -> Reg.t -> Operand.t -> Operand.t -> unit
val add : t -> Reg.t -> Operand.t -> Operand.t -> unit
val sub : t -> Reg.t -> Operand.t -> Operand.t -> unit
val mul : t -> Reg.t -> Operand.t -> Operand.t -> unit

(** [cmp b c pt pf x y] emits a compare writing the predicate pair. *)
val cmp :
  ?ctype:Opcode.ctype -> t -> Opcode.icmp -> Reg.t -> Reg.t -> Operand.t -> Operand.t -> unit

val load : ?size:Opcode.size -> ?spec:Opcode.spec_kind -> t -> Reg.t -> Operand.t -> Instr.t
val store : ?size:Opcode.size -> t -> Operand.t -> Operand.t -> Instr.t

(** Unconditional (or, with [?pred], guarded) branch to a label. *)
val br : t -> ?pred:Reg.t -> string -> unit

val call : t -> ?dsts:Reg.t list -> string -> Operand.t list -> Instr.t
val call_indirect : t -> ?dsts:Reg.t list -> Reg.t -> Operand.t list -> Instr.t
val ret : t -> Operand.t list -> unit

(** [lea b d sym off] loads the address of global or function [sym]. *)
val lea : t -> Reg.t -> string -> int -> unit

(** Compare-and-branch: branch to [target] when the comparison holds;
    returns the (true, false) predicate pair for reuse. *)
val cbr : t -> Opcode.icmp -> Operand.t -> Operand.t -> string -> Reg.t * Reg.t
