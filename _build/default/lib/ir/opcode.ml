(* Opcodes of the low-level IR.  The set mirrors the IA-64 subset the IMPACT
   compiler uses on Itanium 2: integer ALU, compares writing predicate pairs,
   memory operations with control-speculation variants, speculation checks,
   predicated branches, calls and the register-stack [alloc]. *)

type icmp = Eq | Ne | Lt | Le | Gt | Ge | Ltu | Geu

(* IA-64 compare types.  [Norm] writes both predicate targets only when the
   qualifying predicate is true.  [Unc] ("unconditional") clears both targets
   first, then writes them when the guard is true — the form if-conversion
   uses for nested conditions.  [Orform] sets (never clears) the targets when
   the guard is true and the condition holds, for wired-or evaluation of
   multi-term conditions in hyperblocks. *)
type ctype = Norm | Unc | Orform

type size = B1 | B4 | B8

(* How a load is marked for control speculation (Section 4.3 of the paper).
   [Spec_general] completes speculative accesses eagerly, possibly walking the
   page table off-path ("wild loads"); [Spec_sentinel] defers failing accesses
   by writing NaT and relies on a later [Chk]. *)
type spec_kind =
  | Nonspec
  | Spec_general
  | Spec_sentinel
  | Spec_advanced
      (* data speculation: an advanced load (ld.a) allocates an ALAT entry;
         intervening stores invalidate overlapping entries and the paired
         chk.a recovers by reloading *)

type t =
  (* Integer ALU (A-type: may issue on any M or I port). *)
  | Add
  | Sub
  | Mul (* issues on F ports on Itanium, latency > ALU *)
  | Div (* expanded sequence on real HW; modelled as long-latency I op *)
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr (* logical *)
  | Sra (* arithmetic *)
  | Mov (* dst <- reg/imm *)
  | Lea (* dst <- symbol address + offset: srcs = [Sym s; Imm off] *)
  | Sxt of size (* sign extend from [size] *)
  | Cmp of icmp * ctype (* dsts = [p_true; p_false], srcs = [a; b] *)
  (* Floating point. *)
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Fneg
  | Fcmp of icmp * ctype (* dsts = [p_true; p_false] *)
  | Cvt_fi (* float -> int (truncate) *)
  | Cvt_if (* int -> float *)
  (* Memory. *)
  | Ld of size * spec_kind (* dst <- [addr]; srcs = [addr] *)
  | St of size (* [addr] <- value; srcs = [addr; value] *)
  | Chk of size
    (* sentinel speculation check: srcs = [checked reg; addr].  On NaT the
       recovery reloads [addr] non-speculatively into the checked register
       (compiler-generated recovery block, modelled in place; see DESIGN.md) *)
  | Chka of size
    (* data speculation check: srcs = [checked reg; addr].  If the ALAT no
       longer holds a valid entry for the register, recovery reloads *)
  (* Control.  All branches may be guarded by the instruction predicate. *)
  | Br (* direct branch: srcs = [Label l] *)
  | Br_call (* srcs = [Sym f; args...] or [Reg b; args...]; dsts = results *)
  | Br_ret (* srcs = return values *)
  | Alloc (* register-stack frame allocation; sizes kept in attrs *)
  | Nop

let is_branch = function Br | Br_call | Br_ret -> true | _ -> false
let is_call = function Br_call -> true | _ -> false
let is_load = function Ld _ -> true | _ -> false
let is_store = function St _ -> true | _ -> false
let is_mem op = is_load op || is_store op

let is_speculative_load = function
  | Ld (_, (Spec_general | Spec_sentinel | Spec_advanced)) -> true
  | _ -> false

(* Operations that may raise a fault or have observable side effects, and so
   may not be hoisted above a branch without speculation support. *)
let may_fault = function
  (* advanced (data-speculated) loads may still fault: they are free to
     cross stores, not branches *)
  | Ld (_, (Nonspec | Spec_advanced)) | St _ | Div | Rem | Br_call | Chk _ | Chka _ ->
      true
  | _ -> false

let is_float = function
  | Fadd | Fsub | Fmul | Fdiv | Fneg | Fcmp _ | Cvt_fi | Cvt_if -> true
  | _ -> false

let icmp_to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | Ltu -> "ltu"
  | Geu -> "geu"

let ctype_suffix = function Norm -> "" | Unc -> ".unc" | Orform -> ".or"
let size_to_string = function B1 -> "1" | B4 -> "4" | B8 -> "8"
let size_bytes = function B1 -> 1 | B4 -> 4 | B8 -> 8

let to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Sra -> "sra"
  | Mov -> "mov"
  | Lea -> "lea"
  | Sxt s -> "sxt" ^ size_to_string s
  | Cmp (c, ct) -> "cmp." ^ icmp_to_string c ^ ctype_suffix ct
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"
  | Fneg -> "fneg"
  | Fcmp (c, ct) -> "fcmp." ^ icmp_to_string c ^ ctype_suffix ct
  | Cvt_fi -> "cvt.fi"
  | Cvt_if -> "cvt.if"
  | Ld (s, Nonspec) -> "ld" ^ size_to_string s
  | Ld (s, Spec_general) -> "ld" ^ size_to_string s ^ ".s"
  | Ld (s, Spec_sentinel) -> "ld" ^ size_to_string s ^ ".sa"
  | Ld (s, Spec_advanced) -> "ld" ^ size_to_string s ^ ".a"
  | St s -> "st" ^ size_to_string s
  | Chk s -> "chk.s" ^ size_to_string s
  | Chka s -> "chk.a" ^ size_to_string s
  | Br -> "br"
  | Br_call -> "br.call"
  | Br_ret -> "br.ret"
  | Alloc -> "alloc"
  | Nop -> "nop"

let pp ppf op = Fmt.string ppf (to_string op)

(* Condition evaluation helpers shared by the interpreter and simulator. *)
let eval_icmp c (a : int64) (b : int64) =
  match c with
  | Eq -> Int64.equal a b
  | Ne -> not (Int64.equal a b)
  | Lt -> Int64.compare a b < 0
  | Le -> Int64.compare a b <= 0
  | Gt -> Int64.compare a b > 0
  | Ge -> Int64.compare a b >= 0
  | Ltu -> Int64.unsigned_compare a b < 0
  | Geu -> Int64.unsigned_compare a b >= 0

let eval_fcmp c (a : float) (b : float) =
  match c with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b
  | Ltu -> a < b
  | Geu -> a >= b

(* Negation used by branch reversal and if-conversion. *)
let negate_icmp = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt
  | Ltu -> Geu
  | Geu -> Ltu
