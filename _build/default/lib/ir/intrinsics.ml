(* Runtime intrinsics: the small set of externally-provided operations the
   mini-C runtime offers.  Both the high-level interpreter and the machine
   simulator implement these directly; they stand in for the gcc-compiled
   system libraries the paper observes (Section 4.5) and are therefore never
   optimized by the compiler. *)

type kind =
  | Print_int (* print_int(x): append "<x>\n" to program output *)
  | Print_char (* print_char(c) *)
  | Malloc (* malloc(bytes) -> pointer; bump allocator *)
  | Input (* input(i) -> i-th word of the input vector, 0 past the end *)
  | Input_len (* input_len() -> number of input words *)
  | Memcpy (* memcpy(dst, src, bytes) *)
  | Memset (* memset(dst, byte, bytes) *)
  | Exit (* exit(code): stop the program *)

let all =
  [
    ("print_int", Print_int);
    ("print_char", Print_char);
    ("malloc", Malloc);
    ("input", Input);
    ("input_len", Input_len);
    ("memcpy", Memcpy);
    ("memset", Memset);
    ("exit", Exit);
  ]

let of_name n = List.assoc_opt n all
let is_intrinsic n = of_name n <> None

(* Latency charged by the timing model for one intrinsic call, standing in
   for the unoptimizable gcc-compiled library code of Section 4.5.  memcpy
   and memset additionally pay a per-byte cost in the simulator. *)
let base_cost = function
  | Print_int | Print_char -> 40
  | Malloc -> 60
  | Input | Input_len -> 10
  | Memcpy | Memset -> 30
  | Exit -> 1
