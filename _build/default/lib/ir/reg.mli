(** Registers of the low-level IR: virtual before allocation, physical
    (IA-64 conventions) after. *)

type cls =
  | Int  (** general-purpose integer; carries a NaT bit *)
  | Flt  (** floating point *)
  | Prd  (** one-bit predicate *)
  | Brr  (** branch register *)

type t = { id : int; cls : cls; phys : bool }

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val virt : int -> cls -> t
val phys : int -> cls -> t

(** {2 Distinguished physical registers} *)

val r0 : t  (** hardwired zero *)

val sp : t  (** r12, the memory stack pointer *)

val p0 : t  (** the always-true predicate *)

val ret0 : t  (** r8, first integer return register *)

val fret0 : t
val b0 : t

(** {2 Register-file geometry (IA-64)} *)

val num_int : int
val num_flt : int
val num_prd : int
val num_brr : int

val first_stacked : int  (** r32 starts the register stack *)

val num_stacked_physical : int  (** 96 physical stacked registers *)

(** Is this a physical register of the register stack (r32-r127)? *)
val is_stacked : t -> bool

val cls_letter : cls -> char
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Ord : sig
  type nonrec t = t

  val compare : t -> t -> int
end

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
