(** Opcodes of the low-level IR: the IA-64 subset the IMPACT compiler uses
    on Itanium 2 — integer and FP ALU, compares writing predicate pairs,
    memory operations with control- and data-speculation variants,
    speculation checks, predicated branches, calls, and the register-stack
    [alloc]. *)

type icmp = Eq | Ne | Lt | Le | Gt | Ge | Ltu | Geu

(** IA-64 compare types.  [Norm] writes both targets only when the guard is
    true.  [Unc] clears both targets first and writes when the guard is
    true — the form if-conversion uses for nested conditions.  [Orform]
    only ever sets its targets, for wired-or multi-term conditions. *)
type ctype = Norm | Unc | Orform

type size = B1 | B4 | B8

(** Speculation marking of loads (paper Sections 2.2, 4.3 and the data-
    speculation extension). *)
type spec_kind =
  | Nonspec
  | Spec_general  (** completes eagerly; off-path misses walk page tables *)
  | Spec_sentinel  (** defers failures as NaT; chk.s recovers *)
  | Spec_advanced  (** data speculation: allocates an ALAT entry; chk.a *)

type t =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr  (** logical *)
  | Sra  (** arithmetic *)
  | Mov
  | Lea  (** dst <- symbol address + offset: srcs = [Sym s; Imm off] *)
  | Sxt of size
  | Cmp of icmp * ctype  (** dsts = [p_true; p_false] *)
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Fneg
  | Fcmp of icmp * ctype
  | Cvt_fi
  | Cvt_if
  | Ld of size * spec_kind  (** dst <- [addr] *)
  | St of size  (** srcs = [addr; value] *)
  | Chk of size  (** sentinel check: srcs = [checked reg; addr] *)
  | Chka of size  (** ALAT check: srcs = [checked reg; addr] *)
  | Br  (** direct branch; guarded by the instruction predicate *)
  | Br_call  (** srcs = [Sym f | Reg fp; args...]; dsts = results *)
  | Br_ret  (** srcs = return values *)
  | Alloc
  | Nop

val is_branch : t -> bool
val is_call : t -> bool
val is_load : t -> bool
val is_store : t -> bool
val is_mem : t -> bool
val is_speculative_load : t -> bool

(** Operations that may fault or have side effects: not hoistable above
    branches without (control-)speculation support.  Advanced loads remain
    may-fault: data speculation frees them from stores, not branches. *)
val may_fault : t -> bool

val is_float : t -> bool
val icmp_to_string : icmp -> string
val ctype_suffix : ctype -> string
val size_to_string : size -> string
val size_bytes : size -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Condition evaluation shared by the interpreter and the simulator. *)
val eval_icmp : icmp -> int64 -> int64 -> bool

val eval_fcmp : icmp -> float -> float -> bool

(** The comparison computing the negation (used by branch reversal). *)
val negate_icmp : icmp -> icmp
