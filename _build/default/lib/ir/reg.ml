(* Registers of the Lcode-like low-level IR.

   Before register allocation, registers are virtual (unbounded ids).  After
   allocation they are physical and follow IA-64 conventions: integer
   registers r0-r127 (r0 hardwired to zero, r12 the stack pointer, r32 and up
   the register stack), predicate registers p0-p63 (p0 hardwired true),
   floating-point registers f0-f127 and branch registers b0-b7. *)

type cls =
  | Int (* general-purpose integer, carries a NaT bit *)
  | Flt (* floating point *)
  | Prd (* one-bit predicate *)
  | Brr (* branch register *)

type t = { id : int; cls : cls; phys : bool }

let compare a b =
  match compare a.cls b.cls with
  | 0 -> ( match compare a.phys b.phys with 0 -> compare a.id b.id | c -> c)
  | c -> c

let equal a b = a.id = b.id && a.cls = b.cls && a.phys = b.phys
let hash r = Hashtbl.hash (r.id, r.cls, r.phys)
let virt id cls = { id; cls; phys = false }
let phys id cls = { id; cls; phys = true }

(* Distinguished physical registers. *)
let r0 = phys 0 Int (* always zero *)
let sp = phys 12 Int (* memory stack pointer *)
let p0 = phys 0 Prd (* always-true predicate *)
let ret0 = phys 8 Int (* first integer return register *)
let fret0 = phys 8 Flt (* floating-point return register *)
let b0 = phys 0 Brr (* return-address branch register *)

(* Physical register file geometry (IA-64). *)
let num_int = 128
let num_flt = 128
let num_prd = 64
let num_brr = 8
let first_stacked = 32 (* r32 is the first register-stack register *)
let num_stacked_physical = 96 (* r32-r127 back the register stack *)

let is_stacked r = r.cls = Int && r.phys && r.id >= first_stacked

let cls_letter = function Int -> 'r' | Flt -> 'f' | Prd -> 'p' | Brr -> 'b'

let pp ppf r =
  if r.phys then Fmt.pf ppf "%c%d" (cls_letter r.cls) r.id
  else Fmt.pf ppf "v%c%d" (cls_letter r.cls) r.id

let to_string r = Fmt.str "%a" pp r

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
