(* An imperative construction interface over the IR, used by the frontend's
   lowering pass, by tests and by the examples.  The builder maintains a
   current block; emitted instructions are appended to it. *)

type t = {
  func : Func.t;
  mutable cur : Block.t option;
}

let create func = { func; cur = None }

let func b = b.func

(* Start a new block with the given label and make it current.  Blocks are
   laid out in the order they are started. *)
let start_block ?(kind = Block.Plain) b label =
  let blk = Block.create ~kind label in
  Func.append_block b.func blk;
  b.cur <- Some blk;
  blk

let current b =
  match b.cur with
  | Some blk -> blk
  | None -> invalid_arg "Builder: no current block (call start_block first)"

let set_current b blk = b.cur <- Some blk

let emit ?pred ?(dsts = []) ?(srcs = []) b op =
  let i = Instr.create ?pred ~dsts ~srcs op in
  Block.append (current b) i;
  i

let fresh b cls = Func.fresh_reg b.func cls
let fresh_int b = fresh b Reg.Int
let fresh_pred b = fresh b Reg.Prd
let fresh_label b base = Func.fresh_label b.func base

(* Convenience emitters. *)

let mov b dst src = ignore (emit b Opcode.Mov ~dsts:[ dst ] ~srcs:[ src ])

let movi b dst k = mov b dst (Operand.imm k)

let binop b op dst a c = ignore (emit b op ~dsts:[ dst ] ~srcs:[ a; c ])

let add b dst a c = binop b Opcode.Add dst a c
let sub b dst a c = binop b Opcode.Sub dst a c
let mul b dst a c = binop b Opcode.Mul dst a c

let cmp ?(ctype = Opcode.Norm) b c pt pf a a' =
  ignore (emit b (Opcode.Cmp (c, ctype)) ~dsts:[ pt; pf ] ~srcs:[ a; a' ])

let load ?(size = Opcode.B8) ?(spec = Opcode.Nonspec) b dst addr =
  emit b (Opcode.Ld (size, spec)) ~dsts:[ dst ] ~srcs:[ addr ]

let store ?(size = Opcode.B8) b addr v =
  emit b (Opcode.St size) ~srcs:[ addr; v ]

let br b ?pred target =
  ignore (emit ?pred b Opcode.Br ~srcs:[ Operand.Label target ])

let call b ?(dsts = []) fname args =
  emit b Opcode.Br_call ~dsts ~srcs:(Operand.Sym fname :: args)

let call_indirect b ?(dsts = []) target args =
  emit b Opcode.Br_call ~dsts ~srcs:(Operand.Reg target :: args)

let ret b vals = ignore (emit b Opcode.Br_ret ~srcs:vals)

let lea b dst sym off =
  ignore
    (emit b Opcode.Lea ~dsts:[ dst ]
       ~srcs:[ Operand.Sym sym; Operand.imm off ])

(* Conditional branch: compare [a] and [c] with [cond]; branch to [target]
   when true.  Returns the true/false predicates for reuse. *)
let cbr b cond a c target =
  let pt = fresh_pred b and pf = fresh_pred b in
  cmp b cond pt pf a c;
  ignore (emit ~pred:pt b Opcode.Br ~srcs:[ Operand.Label target ]);
  (pt, pf)
