lib/ir/program.mli: Format Func Instr
