lib/ir/builder.ml: Block Func Instr Opcode Operand Reg
