lib/ir/program.ml: Fmt Func Int64 List Option
