lib/ir/intrinsics.mli:
