lib/ir/func.ml: Block Fmt Hashtbl Instr List Printf Reg
