lib/ir/verify.mli: Func Program
