lib/ir/memimage.ml: Array Bytes Char Hashtbl Int64 List Program
