lib/ir/block.ml: Fmt Instr List Opcode
