lib/ir/opcode.ml: Fmt Int64
