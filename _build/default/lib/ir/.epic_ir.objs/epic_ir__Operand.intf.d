lib/ir/operand.mli: Format Reg
