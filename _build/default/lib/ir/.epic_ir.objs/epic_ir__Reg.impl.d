lib/ir/reg.ml: Fmt Hashtbl Map Set
