lib/ir/builder.mli: Block Func Instr Opcode Operand Reg
