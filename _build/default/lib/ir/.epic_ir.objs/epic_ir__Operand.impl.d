lib/ir/operand.ml: Float Fmt Int64 Reg String
