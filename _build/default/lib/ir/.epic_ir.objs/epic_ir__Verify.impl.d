lib/ir/verify.ml: Block Fmt Func Hashtbl Instr Intrinsics List Opcode Program Reg
