lib/ir/memimage.mli: Program
