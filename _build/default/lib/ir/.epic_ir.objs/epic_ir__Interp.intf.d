lib/ir/interp.mli: Block Buffer Func Instr Memimage Program
