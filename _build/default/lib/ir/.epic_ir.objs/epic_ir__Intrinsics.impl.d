lib/ir/intrinsics.ml: List
