lib/ir/interp.ml: Array Block Buffer Char Func Instr Int64 Intrinsics List Memimage Opcode Operand Printf Program Reg
