lib/ir/instr.mli: Format Opcode Operand Reg
