lib/ir/instr.ml: Fmt List Opcode Operand Reg
