(** Runtime intrinsics: the externally-provided operations of the mini-C
    runtime, standing in for the gcc-compiled system libraries the paper
    observes as unoptimizable (Section 4.5). *)

type kind =
  | Print_int
  | Print_char
  | Malloc
  | Input  (** input(i): the i-th word of the input vector, 0 past the end *)
  | Input_len
  | Memcpy
  | Memset
  | Exit

val all : (string * kind) list
val of_name : string -> kind option
val is_intrinsic : string -> bool

(** Base cycle cost charged by the timing model per call. *)
val base_cost : kind -> int
