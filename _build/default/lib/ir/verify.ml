(* Structural well-formedness checks, run between compiler phases in tests
   and (cheaply) by the driver.  A violation raises [Ill_formed]. *)

exception Ill_formed of string

let fail fmt = Fmt.kstr (fun s -> raise (Ill_formed s)) fmt

let check_func ?(program : Program.t option) (f : Func.t) =
  if f.Func.blocks = [] then fail "%s: function has no blocks" f.Func.name;
  (* Unique labels. *)
  let labels = Hashtbl.create 16 in
  List.iter
    (fun b ->
      if Hashtbl.mem labels b.Block.label then
        fail "%s: duplicate block label %s" f.Func.name b.Block.label;
      Hashtbl.add labels b.Block.label ())
    f.Func.blocks;
  (* Branch targets resolve; last block does not fall off the end. *)
  List.iter
    (fun b ->
      List.iter
        (fun (i : Instr.t) ->
          (match Instr.branch_target i with
          | Some l when not (Hashtbl.mem labels l) ->
              fail "%s/%s: branch to unknown label %s" f.Func.name
                b.Block.label l
          | _ -> ());
          (match i.Instr.attrs.recovery with
          | Some l when not (Hashtbl.mem labels l) ->
              fail "%s/%s: recovery label %s unknown" f.Func.name
                b.Block.label l
          | _ -> ());
          (* Operand arity sanity for key opcodes. *)
          (match i.Instr.op with
          | Opcode.Cmp _ | Opcode.Fcmp _ ->
              if List.length i.Instr.dsts <> 2 then
                fail "%s: cmp must define two predicates: %a" f.Func.name
                  Instr.pp i
          | Opcode.St _ ->
              if List.length i.Instr.srcs <> 2 then
                fail "%s: store needs [addr; value]: %a" f.Func.name Instr.pp i
          | Opcode.Ld _ ->
              if List.length i.Instr.srcs <> 1 || List.length i.Instr.dsts <> 1
              then fail "%s: load needs one addr, one dst: %a" f.Func.name Instr.pp i
          | Opcode.Chk _ | Opcode.Chka _ ->
              if List.length i.Instr.srcs <> 2 then
                fail "%s: chk needs [value; addr]: %a" f.Func.name Instr.pp i
          | _ -> ());
          (* Predicate guards must be predicate registers. *)
          match i.Instr.pred with
          | Some p when p.Reg.cls <> Reg.Prd ->
              fail "%s: guard is not a predicate: %a" f.Func.name Instr.pp i
          | _ -> ())
        b.Block.instrs)
    f.Func.blocks;
  (match List.rev f.Func.blocks with
  | last :: _ ->
      if not (Block.ends_in_unconditional last) then
        fail "%s: control can fall off the end of block %s" f.Func.name
          last.Block.label
  | [] -> ());
  (* Direct calls resolve when the whole program is available. *)
  match program with
  | None -> ()
  | Some p ->
      Func.iter_instrs f (fun i ->
          match Instr.callee i with
          | Some callee
            when (not (Intrinsics.is_intrinsic callee))
                 && Program.find_func p callee = None ->
              fail "%s: call to undefined function %s" f.Func.name callee
          | _ -> ())

let check_program (p : Program.t) =
  (match Program.find_func p p.Program.entry with
  | None -> fail "no entry function %s" p.Program.entry
  | Some _ -> ());
  List.iter (check_func ~program:p) p.Program.funcs

(* True when every instruction of [f] has been assigned an issue cycle. *)
let is_scheduled (f : Func.t) =
  Func.fold_instrs f (fun ok i -> ok && i.Instr.cycle >= 0) true
