(** Instruction source operands. *)

type t =
  | Reg of Reg.t
  | Imm of int64
  | Fimm of float
  | Label of string  (** a branch target: a block label within the function *)
  | Sym of string  (** a global symbol: function or data *)

val reg : Reg.t -> t
val imm : int -> t
val imm64 : int64 -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
