(* Instruction source operands. *)

type t =
  | Reg of Reg.t
  | Imm of int64
  | Fimm of float
  | Label of string (* branch target: a block label within the function *)
  | Sym of string (* a global symbol: function or data *)

let reg r = Reg r
let imm i = Imm (Int64.of_int i)
let imm64 i = Imm i

let equal a b =
  match (a, b) with
  | Reg r1, Reg r2 -> Reg.equal r1 r2
  | Imm i1, Imm i2 -> Int64.equal i1 i2
  | Fimm f1, Fimm f2 -> Float.equal f1 f2
  | Label l1, Label l2 | Sym l1, Sym l2 -> String.equal l1 l2
  | (Reg _ | Imm _ | Fimm _ | Label _ | Sym _), _ -> false

let pp ppf = function
  | Reg r -> Reg.pp ppf r
  | Imm i -> Fmt.pf ppf "%Ld" i
  | Fimm f -> Fmt.pf ppf "%g" f
  | Label l -> Fmt.pf ppf ".%s" l
  | Sym s -> Fmt.pf ppf "@%s" s

let to_string o = Fmt.str "%a" pp o
