(** Structural well-formedness checks, run between compiler phases: unique
    labels, resolvable branch and recovery targets, operand arities,
    predicate-typed guards, and no control falling off a function's end. *)

exception Ill_formed of string

(** Check one function; [program] additionally resolves direct calls. *)
val check_func : ?program:Program.t -> Func.t -> unit

val check_program : Program.t -> unit

(** Has every instruction been assigned an issue cycle? *)
val is_scheduled : Func.t -> bool
