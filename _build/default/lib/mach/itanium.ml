(* The Itanium 2 machine model used by the scheduler and bundler: execution
   unit classes, per-cycle issue capacities (six-issue: up to two bundles per
   cycle), and planned operation latencies.  Figures follow the Itanium 2
   reference manual (scaled where DESIGN.md says so). *)

open Epic_ir

(* IA-64 execution unit classes.  A-type ALU operations may issue on either
   an M or an I slot, which is what makes the machine "six-ALU". *)
type unit_class = UA | UI | UM | UF | UB

let class_of (op : Opcode.t) =
  match op with
  | Opcode.Add | Opcode.Sub | Opcode.And | Opcode.Or | Opcode.Xor
  | Opcode.Mov | Opcode.Lea | Opcode.Cmp _ ->
      UA
  | Opcode.Shl | Opcode.Shr | Opcode.Sra | Opcode.Sxt _ | Opcode.Mul
  | Opcode.Div | Opcode.Rem ->
      UI
  | Opcode.Ld _ | Opcode.St _ | Opcode.Chk _ | Opcode.Chka _ | Opcode.Alloc -> UM
  | Opcode.Fadd | Opcode.Fsub | Opcode.Fmul | Opcode.Fdiv | Opcode.Fneg
  | Opcode.Fcmp _ | Opcode.Cvt_fi | Opcode.Cvt_if ->
      UF
  | Opcode.Br | Opcode.Br_call | Opcode.Br_ret -> UB
  | Opcode.Nop -> UA

(* Planned (static) result latency in cycles: the delay the compiler must
   schedule between a producer and its consumer. *)
let latency (op : Opcode.t) =
  match op with
  | Opcode.Add | Opcode.Sub | Opcode.And | Opcode.Or | Opcode.Xor
  | Opcode.Mov | Opcode.Lea | Opcode.Sxt _ ->
      1
  | Opcode.Shl | Opcode.Shr | Opcode.Sra -> 1
  | Opcode.Cmp _ -> 1 (* 0 to a dependent branch; see [dep_latency] *)
  | Opcode.Mul -> 3
  | Opcode.Div | Opcode.Rem -> 16 (* software-expanded on real HW *)
  | Opcode.Ld (_, _) -> 1 (* Itanium 2 integer L1D load-to-use *)
  | Opcode.St _ -> 1
  | Opcode.Chk _ | Opcode.Chka _ -> 1
  | Opcode.Fadd | Opcode.Fsub | Opcode.Fmul | Opcode.Fneg | Opcode.Fcmp _ -> 4
  | Opcode.Fdiv -> 24
  | Opcode.Cvt_fi | Opcode.Cvt_if -> 4
  | Opcode.Br | Opcode.Br_call | Opcode.Br_ret | Opcode.Alloc | Opcode.Nop -> 1

(* Latency of a register dependence from [producer] to [consumer] through
   register [r].  IA-64 allows a compare and a branch that consumes its
   predicate in the same instruction group. *)
let dep_latency (producer : Instr.t) (consumer : Instr.t) (r : Reg.t) =
  match (producer.Instr.op, consumer.Instr.op) with
  | (Opcode.Cmp _ | Opcode.Fcmp _), (Opcode.Br | Opcode.Br_call | Opcode.Br_ret)
    when r.Reg.cls = Reg.Prd ->
      0
  | _ -> latency producer.Instr.op

(* Float loads are served from L2 on Itanium 2 (no FP data in L1D). *)
let float_load_latency = 6

(* Per-cycle issue capacities (two bundles = six slots). *)
type caps = {
  mutable total : int;
  mutable m : int; (* memory slots *)
  mutable i : int;
  mutable f : int;
  mutable b : int;
  mutable ld : int; (* load pipes within M *)
  mutable st : int; (* store pipes within M *)
}

let fresh_caps () = { total = 6; m = 4; i = 2; f = 2; b = 3; ld = 2; st = 2 }

(* Try to account one instruction against [caps]; true if it fits. *)
let take caps (i : Instr.t) =
  if caps.total = 0 then false
  else
    let ok =
      match class_of i.Instr.op with
      | UM ->
          if Instr.is_load i then
            if caps.m > 0 && caps.ld > 0 then (
              caps.m <- caps.m - 1;
              caps.ld <- caps.ld - 1;
              true)
            else false
          else if Instr.is_store i then
            if caps.m > 0 && caps.st > 0 then (
              caps.m <- caps.m - 1;
              caps.st <- caps.st - 1;
              true)
            else false
          else if caps.m > 0 then (
            caps.m <- caps.m - 1;
            true)
          else false
      | UI ->
          if caps.i > 0 then (
            caps.i <- caps.i - 1;
            true)
          else false
      | UA ->
          (* A-type: prefer an I slot, fall back to M *)
          if caps.i > 0 then (
            caps.i <- caps.i - 1;
            true)
          else if caps.m > 0 then (
            caps.m <- caps.m - 1;
            true)
          else false
      | UF ->
          if caps.f > 0 then (
            caps.f <- caps.f - 1;
            true)
          else false
      | UB ->
          if caps.b > 0 then (
            caps.b <- caps.b - 1;
            true)
          else false
    in
    if ok then caps.total <- caps.total - 1;
    ok

(* --- Memory hierarchy parameters (scaled; see DESIGN.md section 5.4) --- *)

let l1i_size = 2048
let l1i_line = 64
let l1i_assoc = 4
let l1d_size = 2048
let l1d_line = 64
let l1d_assoc = 4
let l2_size = 16 * 1024
let l2_line = 128
let l2_assoc = 8
let l3_size = 128 * 1024
let l3_line = 128
let l3_assoc = 12

let l2_latency = 5
let l3_latency = 12
let mem_latency = 140

let dtlb_entries = 32
let vhpt_walk_cycles = 25 (* hardware walker, successful *)
let wild_walk_cycles = 80 (* failed walk + uncached page-table query *)
let nat_page_cycles = 2 (* architected NaT page at address 0 *)
let page_fault_cycles = 400 (* OS fault handler (kernel time) *)

let branch_mispredict_penalty = 6
let call_overhead = 2 (* br.call pipeline redirect + alloc *)
let return_overhead = 2 (* br.ret redirect + RSE bookkeeping *)
let chk_recovery_penalty = 8 (* pipeline redirect into recovery *)

(* Register stack: 96 physical stacked registers back r32-r127. *)
let rse_spill_cost_per_reg = 1 (* cycles per mandatory spill/fill *)
