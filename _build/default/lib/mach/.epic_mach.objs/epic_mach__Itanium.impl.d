lib/mach/itanium.ml: Epic_ir Instr Opcode Reg
