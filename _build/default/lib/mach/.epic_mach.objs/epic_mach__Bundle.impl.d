lib/mach/bundle.ml: Array Epic_ir Instr Itanium List
