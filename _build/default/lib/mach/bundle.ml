(* IA-64 bundles: three 41-bit slots plus a template, 16 bytes per bundle.
   The bundler packs each scheduled issue group into bundles from the
   architected template set, inserting explicit nop operations into slots
   that cannot be filled — the effect the paper observes on fetch efficiency
   (Figure 6: better-scheduled code retires fewer nops). *)

open Epic_ir

type slot_kind = SM | SI | SF | SB | SL

(* The IA-64 template set (ignoring mid-bundle stops, which we model at
   group granularity). *)
let templates : (string * slot_kind array) list =
  [
    ("MII", [| SM; SI; SI |]);
    ("MLX", [| SM; SL; SL |]);
    ("MMI", [| SM; SM; SI |]);
    ("MFI", [| SM; SF; SI |]);
    ("MMF", [| SM; SM; SF |]);
    ("MIB", [| SM; SI; SB |]);
    ("MBB", [| SM; SB; SB |]);
    ("BBB", [| SB; SB; SB |]);
    ("MMB", [| SM; SM; SB |]);
    ("MFB", [| SM; SF; SB |]);
  ]

type slot = Op of Instr.t | Nop_slot

type t = {
  template : string;
  slots : slot array; (* length 3 *)
  mutable address : int64; (* assigned by layout *)
  mutable stop : bool; (* stop bit after this bundle (end of group) *)
}

let bundle_bytes = 16L

(* Which slot kinds can hold an instruction of the given unit class? *)
let fits (k : slot_kind) (cls : Itanium.unit_class) =
  match (k, cls) with
  | SM, (Itanium.UM | Itanium.UA) -> true
  | SI, (Itanium.UI | Itanium.UA) -> true
  | SF, Itanium.UF -> true
  | SB, Itanium.UB -> true
  | SL, _ -> false (* long-immediate slots: unused by our ISA subset *)
  | (SM | SI | SF | SB), _ -> false

(* Can [ops] (in order) be placed into one bundle under some template,
   using strictly increasing slot positions?  Returns the best (template
   name, slots) or None. *)
let place_ops (ops : Instr.t list) =
  let try_template (tmpl : slot_kind array) =
    let slots = Array.make 3 Nop_slot in
    let rec go slot_idx = function
      | [] -> true
      | (op : Instr.t) :: tl ->
          if slot_idx >= 3 then false
          else if fits tmpl.(slot_idx) (Itanium.class_of op.Instr.op) then begin
            slots.(slot_idx) <- Op op;
            go (slot_idx + 1) tl
          end
          else begin
            slots.(slot_idx) <- Nop_slot;
            go (slot_idx + 1) (op :: tl)
          end
    in
    if go 0 ops then Some slots else None
  in
  let rec search = function
    | [] -> None
    | (name, tmpl) :: rest -> (
        match try_template tmpl with
        | Some slots -> Some (name, slots)
        | None -> search rest)
  in
  search templates

(* Pack a block's issue groups into one continuous bundle stream.  Adjacent
   groups may share a bundle: IA-64 templates carry mid-bundle stop bits
   (e.g. MI_I, M_MI), which we idealize as "a stop may follow any slot"
   (documented in DESIGN.md).  Returns the bundles and, per group, the
   (first, last) bundle indices it occupies. *)
let pack_block (groups : Instr.t list list) : t list * (int * int) list =
  let bundles = ref [] in
  let n_bundles = ref 0 in
  let cur : Instr.t list ref = ref [] in
  let flush () =
    if !cur <> [] then begin
      match place_ops !cur with
      | Some (name, slots) ->
          bundles := { template = name; slots; address = 0L; stop = false } :: !bundles;
          incr n_bundles;
          cur := []
      | None -> assert false (* cur is only grown while placeable *)
    end
  in
  let ranges = ref [] in
  List.iter
    (fun group ->
      let first = ref (if !cur = [] then !n_bundles else !n_bundles) in
      let first_set = ref false in
      List.iter
        (fun op ->
          (if place_ops (!cur @ [ op ]) <> None then cur := !cur @ [ op ]
           else begin
             flush ();
             cur := [ op ]
           end);
          if not !first_set then begin
            (* the op landed either in the in-progress bundle (!n_bundles) *)
            first := !n_bundles;
            first_set := true
          end)
        group;
      (* stop bit after the group's last op *)
      (match !bundles with
      | b :: _ when !cur = [] -> b.stop <- true
      | _ -> ());
      let last = !n_bundles in
      ranges := (!first, last) :: !ranges;
      ignore first_set)
    groups;
  flush ();
  (match !bundles with b :: _ -> b.stop <- true | [] -> ());
  let bs = List.rev !bundles in
  (* clamp ranges to the final bundle count *)
  let total = List.length bs in
  let ranges =
    List.rev_map
      (fun (f, l) -> (min f (max 0 (total - 1)), min l (max 0 (total - 1))))
      !ranges
  in
  (bs, ranges)

(* Legacy single-group packing (used by tests). *)
let pack_group (group : Instr.t list) : t list =
  let bs, _ = pack_block [ group ] in
  bs

let nop_count (b : t) =
  Array.fold_left (fun n s -> match s with Nop_slot -> n + 1 | Op _ -> n) 0 b.slots

let op_count (b : t) = 3 - nop_count b
