(* Integration and property-based tests.

   The centerpiece is differential testing: randomly generated mini-C
   programs are compiled at every optimization level and executed both by
   the reference interpreter and by the machine simulator; all observable
   behaviour (exit code, printed output) must agree.  This exercises the
   whole stack — parser, lowering, classical opts, structural transforms,
   speculation, register allocation, scheduling, bundling and the
   simulator — against a single oracle. *)

let check = Alcotest.check
let ci = Alcotest.int
let cs = Alcotest.string
let cb = Alcotest.bool

(* --- differential property (generator shared with bin/fuzz.ml) --------- *)

let qcheck_differential =
  QCheck.Test.make ~count:25
    ~name:"random programs behave identically at every level (interp + machine)"
    (QCheck.make ~print:(fun s -> s) Epic_core.Random_program.Gen.program)
    (fun src -> Epic_core.Random_program.agrees src [| 5L |])

let reference_behaviour src input =
  let p = Epic_frontend.Lower.compile_source src in
  let code, out, _ = Epic_ir.Interp.run ~fuel:4_000_000 p input in
  (code, out)

(* --- workload integration ------------------------------------------------- *)

let test_all_workloads_parse_and_run () =
  List.iter
    (fun (w : Epic_workloads.Workload.t) ->
      let p = Epic_frontend.Lower.compile_source w.Epic_workloads.Workload.source in
      Epic_ir.Verify.check_program p;
      let code, out, _ = Epic_ir.Interp.run p w.Epic_workloads.Workload.train in
      check ci (w.Epic_workloads.Workload.short ^ " exits 0") 0 code;
      check cb (w.Epic_workloads.Workload.short ^ " prints") true (String.length out > 0);
      (* deterministic: a second run gives identical output *)
      let _, out2, _ = Epic_ir.Interp.run p w.Epic_workloads.Workload.train in
      check cs (w.Epic_workloads.Workload.short ^ " deterministic") out out2)
    Epic_workloads.Suite.all

let test_workload_inputs_differ () =
  (* train and reference inputs must exercise different behaviour *)
  List.iter
    (fun (w : Epic_workloads.Workload.t) ->
      let p = Epic_frontend.Lower.compile_source w.Epic_workloads.Workload.source in
      let _, out_t, _ = Epic_ir.Interp.run p w.Epic_workloads.Workload.train in
      let _, out_r, _ = Epic_ir.Interp.run p w.Epic_workloads.Workload.reference in
      check cb (w.Epic_workloads.Workload.short ^ " inputs differ") true (out_t <> out_r))
    Epic_workloads.Suite.all

let test_workload_end_to_end name =
  let w = Epic_workloads.Suite.find_exn name in
  let expected =
    reference_behaviour w.Epic_workloads.Workload.source w.Epic_workloads.Workload.reference
  in
  List.iter
    (fun level ->
      let config =
        {
          (Epic_core.Config.make level) with
          Epic_core.Config.pointer_analysis = w.Epic_workloads.Workload.pointer_analysis;
        }
      in
      let compiled =
        Epic_core.Driver.compile ~config ~train:w.Epic_workloads.Workload.train
          w.Epic_workloads.Workload.source
      in
      let code, out, _ = Epic_core.Driver.run compiled w.Epic_workloads.Workload.reference in
      check (Alcotest.pair ci cs)
        (Printf.sprintf "%s@%s end-to-end" name (Epic_core.Config.level_name level))
        expected (code, out))
    [ Epic_core.Config.O_NS; Epic_core.Config.ILP_CS ]

let test_vortex_end_to_end () = test_workload_end_to_end "vortex"
let test_gcc_end_to_end () = test_workload_end_to_end "gcc"
let test_twolf_end_to_end () = test_workload_end_to_end "twolf"

let test_ilp_speeds_up_compute_kernel () =
  (* the headline claim in miniature: ILP-CS beats O-NS on a regular,
     branchy kernel *)
  let src =
    {|
int a[256];
int main() {
  int i; int r; int s;
  for (i = 0; i < 256; i = i + 1) { a[i] = (i * 7) % 23 - 11; }
  s = 0;
  for (r = 0; r < 80; r = r + 1) {
    for (i = 0; i < 256; i = i + 1) {
      if (a[i] > 0) { s = s + a[i] * 3; } else { s = s - 1; }
    }
  }
  print_int(s);
  return 0;
}
|}
  in
  let cycles config =
    let compiled = Epic_core.Driver.compile ~config ~train:[||] src in
    let _, _, st = Epic_core.Driver.run compiled [||] in
    Epic_sim.Accounting.total st.Epic_sim.Machine.acc
  in
  let base = cycles Epic_core.Config.o_ns in
  let ilp = cycles Epic_core.Config.ilp_cs in
  check cb
    (Printf.sprintf "ILP-CS (%.0f) at least 15%% faster than O-NS (%.0f)" ilp base)
    true
    (ilp < 0.85 *. base)

let test_profile_variation_direction () =
  (* Training on the evaluation input usually helps (Section 4.6); the
     effect is not monotone in our scaled model (a different profile can
     promote a load that then goes wild), so this is a sanity bound, not a
     direction assertion — the direction per benchmark is reported by
     bench/main.exe profvar and recorded in EXPERIMENTS.md. *)
  let w = Epic_workloads.Suite.find_exn "perlbmk" in
  let cycles ~train =
    let config =
      { Epic_core.Config.ilp_cs with Epic_core.Config.pointer_analysis = false }
    in
    let compiled = Epic_core.Driver.compile ~config ~train w.Epic_workloads.Workload.source in
    let _, _, st = Epic_core.Driver.run compiled w.Epic_workloads.Workload.reference in
    Epic_sim.Accounting.total st.Epic_sim.Machine.acc
  in
  let t = cycles ~train:w.Epic_workloads.Workload.train in
  let r = cycles ~train:w.Epic_workloads.Workload.reference in
  check cb "self-trained within 2x of cross-trained" true (r <= t *. 2.0 && t <= r *. 2.0)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_differential;
    ("all workloads parse and run", `Quick, test_all_workloads_parse_and_run);
    ("workload inputs differ", `Quick, test_workload_inputs_differ);
    ("vortex end-to-end", `Slow, test_vortex_end_to_end);
    ("gcc end-to-end", `Slow, test_gcc_end_to_end);
    ("twolf end-to-end", `Slow, test_twolf_end_to_end);
    ("ILP speeds up kernels", `Slow, test_ilp_speeds_up_compute_kernel);
    ("profile variation direction", `Slow, test_profile_variation_direction);
  ]
