(* Analysis tests: dominance, liveness, natural loops, call graph, profile
   collection, points-to and memory dependence. *)

open Epic_ir
open Epic_analysis

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let cf = Alcotest.float 1e-6

(* Build the classic diamond:  entry -> (t | f) -> join -> ret *)
let diamond () =
  let f = Func.create "d" [] in
  let bld = Epic_ir.Builder.create f in
  ignore (Builder.start_block bld "entry");
  let r = Builder.fresh_int bld in
  Builder.movi bld r 1;
  ignore (Builder.cbr bld Opcode.Gt (Operand.reg r) (Operand.imm 0) "t");
  Builder.br bld "f";
  ignore (Builder.start_block bld "t");
  Builder.br bld "join";
  ignore (Builder.start_block bld "f");
  Builder.br bld "join";
  ignore (Builder.start_block bld "join");
  Builder.ret bld [ Operand.imm 0 ];
  f

let test_dominance_diamond () =
  let f = diamond () in
  let dom = Dominance.compute f in
  check cb "entry dominates all" true (Dominance.dominates dom "entry" "join");
  check cb "t does not dominate join" false (Dominance.dominates dom "t" "join");
  check cb "f does not dominate join" false (Dominance.dominates dom "f" "join");
  check cb "reflexive" true (Dominance.dominates dom "t" "t");
  check (Alcotest.option Alcotest.string) "idom of join is entry" (Some "entry")
    (Dominance.immediate_dominator dom "join")

let test_dominance_rpo () =
  let f = diamond () in
  let dom = Dominance.compute f in
  let rpo = Array.to_list (Dominance.rpo dom) in
  check Alcotest.(list string) "entry first" [ "entry" ] [ List.hd rpo ];
  check ci "all four blocks" 4 (List.length rpo)

let loop_func () =
  Epic_frontend.Lower.compile_source
    {|
int main() {
  int i; int s;
  s = 0;
  for (i = 0; i < 10; i = i + 1) { s = s + i; }
  print_int(s);
  return 0;
}
|}

let test_liveness_loop () =
  let p = loop_func () in
  let f = Program.find_func_exn p "main" in
  let live = Liveness.compute f in
  (* the loop counter must be live into the header *)
  let header = List.find (fun (b : Block.t) -> b.Block.label <> "entry") f.Func.blocks in
  check cb "something is live into the loop" false
    (Reg.Set.is_empty (Liveness.live_in live header.Block.label))

let test_liveness_per_instr_side_exit () =
  (* the value defined before a side exit and used only at the exit target
     must be live at the branch *)
  let f = Func.create "t" [] in
  let bld = Builder.create f in
  ignore (Builder.start_block bld "a");
  let x = Builder.fresh_int bld in
  let p = Builder.fresh_pred bld and q = Builder.fresh_pred bld in
  Builder.movi bld x 5;
  Builder.cmp bld Opcode.Eq p q (Operand.imm 0) (Operand.imm 0);
  ignore (Epic_ir.Builder.emit ~pred:p bld Opcode.Br ~srcs:[ Operand.Label "exit" ]);
  Builder.movi bld x 6;
  Builder.ret bld [ Operand.reg x ];
  ignore (Builder.start_block bld "exit");
  Builder.ret bld [ Operand.reg x ];
  let live = Liveness.compute f in
  let a = Func.find_block_exn f "a" in
  let per = Liveness.per_instr live f a in
  (* before the redefinition (instr index 3 = the branch), x is live *)
  let before_branch = List.nth per 2 in
  check cb "x live at side exit" true (Reg.Set.mem x before_branch)

let test_natural_loops () =
  let p = loop_func () in
  let f = Program.find_func_exn p "main" in
  ignore (Profile.profile_and_annotate p [||]);
  let loops = Natural_loops.compute f in
  check ci "one loop" 1 (List.length loops.Natural_loops.loops);
  let l = List.hd loops.Natural_loops.loops in
  check cb "trip count about 11 headers per entry" true
    (l.Natural_loops.avg_trips > 10.0 && l.Natural_loops.avg_trips < 12.0)

let test_loop_exits () =
  let p = loop_func () in
  let f = Program.find_func_exn p "main" in
  let loops = Natural_loops.compute f in
  let l = List.hd loops.Natural_loops.loops in
  check cb "loop has an exit" true (Natural_loops.exits f l <> [])

let test_callgraph () =
  let p =
    Epic_frontend.Lower.compile_source
      {|
int leaf(int x) { return x + 1; }
int mid(int x) { return leaf(x) * 2; }
int main() { print_int(mid(3)); return 0; }
|}
  in
  let cg = Callgraph.compute p in
  check Alcotest.(list string) "main calls mid" [ "mid" ] (Callgraph.callees cg "main");
  check cb "main reaches leaf" true (Callgraph.reaches cg "main" "leaf");
  check cb "leaf does not reach main" false (Callgraph.reaches cg "leaf" "main")

let test_callgraph_recursion () =
  let p =
    Epic_frontend.Lower.compile_source
      "int f(int n) { if (n < 1) { return 0; } return f(n - 1); }\nint main() { return f(3); }"
  in
  let cg = Callgraph.compute p in
  check cb "self recursion detected" true (Callgraph.reaches cg "f" "f")

let test_profile_counts () =
  let p = loop_func () in
  let prof, code, _ = Profile.collect p [||] in
  check ci "clean run" 0 code;
  Profile.annotate p prof;
  let f = Program.find_func_exn p "main" in
  let max_w =
    List.fold_left (fun m (b : Block.t) -> max m b.Block.weight) 0. f.Func.blocks
  in
  check cb "loop body weight about 10" true (max_w >= 10. && max_w <= 12.)

let test_profile_branch_probs () =
  let p = loop_func () in
  ignore (Profile.profile_and_annotate p [||]);
  let f = Program.find_func_exn p "main" in
  let found = ref false in
  Func.iter_instrs f (fun i ->
      if i.Instr.op = Opcode.Br && i.Instr.pred <> None && i.Instr.attrs.Instr.weight > 5.
      then begin
        found := true;
        check cb "probability in [0,1]" true
          (i.Instr.attrs.Instr.taken_prob >= 0. && i.Instr.attrs.Instr.taken_prob <= 1.)
      end);
  check cb "a hot conditional branch exists" true !found

let test_profile_indirect_targets () =
  let p =
    Epic_frontend.Lower.compile_source
      {|
int a() { return 1; }
int b() { return 2; }
int main() {
  int f; int i; int s;
  s = 0;
  for (i = 0; i < 10; i = i + 1) {
    if (i < 9) { f = (int) &a; } else { f = (int) &b; }
    s = s + (f)();
  }
  print_int(s);
  return 0;
}
|}
  in
  let prof, _, _ = Profile.collect p [||] in
  (* find the indirect call site *)
  let site = ref (-1) in
  Program.iter_instrs p (fun i ->
      if Instr.is_call i && Instr.callee i = None then site := i.Instr.id);
  check cb "site found" true (!site > 0);
  match Profile.dominant_target prof !site ~threshold:0.7 with
  | Some (t, frac) ->
      check Alcotest.string "dominant target" "a" t;
      check cb "fraction about 0.9" true (frac > 0.85 && frac < 0.95)
  | None -> Alcotest.fail "expected a dominant target"

let test_points_to_distinguishes_globals () =
  let p =
    Epic_frontend.Lower.compile_source
      {|
int g1[4];
int g2[4];
int main() {
  g1[0] = 1;
  g2[0] = 2;
  print_int(g1[0]);
  return 0;
}
|}
  in
  ignore (Points_to.analyze p);
  let stores = ref [] in
  Program.iter_instrs p (fun i -> if Instr.is_store i then stores := i :: !stores);
  match !stores with
  | [ s2; s1 ] ->
      check cb "distinct globals do not alias" false (Memdep.may_alias s1 s2)
  | _ -> Alcotest.fail "expected two stores"

let test_points_to_heap_sites () =
  let p =
    Epic_frontend.Lower.compile_source
      {|
int main() {
  int *a; int *b;
  a = malloc(16);
  b = malloc(16);
  a[0] = 1;
  b[0] = 2;
  print_int(a[0]);
  return 0;
}
|}
  in
  ignore (Points_to.analyze p);
  let stores = ref [] in
  Program.iter_instrs p (fun i -> if Instr.is_store i then stores := i :: !stores);
  match !stores with
  | [ s2; s1 ] -> check cb "distinct heap sites do not alias" false (Memdep.may_alias s1 s2)
  | _ -> Alcotest.fail "expected two stores"

let test_points_to_flow_through_copy () =
  let p =
    Epic_frontend.Lower.compile_source
      {|
int g[4];
int main() {
  int *a; int *b;
  a = g;
  b = a;
  b[1] = 5;
  print_int(g[1]);
  return 0;
}
|}
  in
  ignore (Points_to.analyze p);
  let tagged = ref 0 in
  Program.iter_instrs p (fun i ->
      if Instr.is_store i then
        match i.Instr.attrs.Instr.mem_tag with Some _ -> incr tagged | None -> ());
  check cb "store through copy is tagged" true (!tagged >= 1)

let test_points_to_disabled () =
  let p = Epic_frontend.Lower.compile_source "int g;\nint main() { g = 1; print_int(g); return 0; }" in
  ignore (Points_to.analyze ~enabled:false p);
  Program.iter_instrs p (fun i ->
      if Instr.is_mem i then
        check cb "all tags unknown when disabled" true (i.Instr.attrs.Instr.mem_tag = None))

let test_memdep_rules () =
  let mk op tag =
    let i =
      match op with
      | `Ld -> Instr.create (Opcode.Ld (Opcode.B8, Opcode.Nonspec)) ~dsts:[ Reg.virt 1 Reg.Int ] ~srcs:[ Operand.imm 0 ]
      | `St -> Instr.create (Opcode.St Opcode.B8) ~srcs:[ Operand.imm 0; Operand.imm 0 ]
    in
    i.Instr.attrs.Instr.mem_tag <- tag;
    i
  in
  check cb "load-load never ordered" false
    (Memdep.must_order (mk `Ld (Some [ 1 ])) (mk `Ld (Some [ 1 ])));
  check cb "store-load same tag ordered" true
    (Memdep.must_order (mk `St (Some [ 1 ])) (mk `Ld (Some [ 1 ])));
  check cb "store-load disjoint tags free" false
    (Memdep.must_order (mk `St (Some [ 1 ])) (mk `Ld (Some [ 2 ])));
  check cb "unknown aliases everything" true
    (Memdep.must_order (mk `St None) (mk `Ld (Some [ 9 ])))

let test_pred_relations () =
  let b = Block.create "h" in
  let pt = Reg.virt 1 Reg.Prd and pf = Reg.virt 2 Reg.Prd in
  let other = Reg.virt 3 Reg.Prd and other2 = Reg.virt 4 Reg.Prd in
  Block.append b
    (Instr.create (Opcode.Cmp (Opcode.Lt, Opcode.Unc)) ~dsts:[ pt; pf ]
       ~srcs:[ Operand.imm 1; Operand.imm 2 ]);
  Block.append b
    (Instr.create (Opcode.Cmp (Opcode.Gt, Opcode.Unc)) ~dsts:[ other; other2 ]
       ~srcs:[ Operand.imm 1; Operand.imm 2 ]);
  let rel = Pred_relations.of_block b in
  check cb "complements disjoint" true (Pred_relations.disjoint rel pt pf);
  check cb "unrelated not disjoint" false (Pred_relations.disjoint rel pt other);
  check cb "self not disjoint" false (Pred_relations.disjoint rel pt pt)

let test_geomean () =
  check cf "geomean of 2 and 8" 4.0 (Epic_core.Metrics.geomean [ 2.; 8. ])

let suite =
  [
    ("dominance diamond", `Quick, test_dominance_diamond);
    ("dominance rpo", `Quick, test_dominance_rpo);
    ("liveness loop", `Quick, test_liveness_loop);
    ("liveness per-instr side exit", `Quick, test_liveness_per_instr_side_exit);
    ("natural loops + trip counts", `Quick, test_natural_loops);
    ("loop exits", `Quick, test_loop_exits);
    ("callgraph", `Quick, test_callgraph);
    ("callgraph recursion", `Quick, test_callgraph_recursion);
    ("profile counts", `Quick, test_profile_counts);
    ("profile branch probabilities", `Quick, test_profile_branch_probs);
    ("profile indirect targets", `Quick, test_profile_indirect_targets);
    ("points-to distinct globals", `Quick, test_points_to_distinguishes_globals);
    ("points-to heap sites", `Quick, test_points_to_heap_sites);
    ("points-to copy flow", `Quick, test_points_to_flow_through_copy);
    ("points-to disabled", `Quick, test_points_to_disabled);
    ("memdep rules", `Quick, test_memdep_rules);
    ("predicate relations", `Quick, test_pred_relations);
    ("geomean", `Quick, test_geomean);
  ]
