(* Frontend tests: lexer token streams, parser error reporting and AST
   shapes, and lowering checked through interpreter semantics. *)

open Epic_frontend

let check = Alcotest.check
let ci = Alcotest.int
let cs = Alcotest.string
let cb = Alcotest.bool

let toks src = List.map fst (Lexer.tokenize src)

let test_lexer_basic () =
  check ci "token count" 6 (List.length (toks "int x = 42 ;"));
  (* the list ends with EOF *)
  check cb "ends with EOF" true (List.mem Lexer.EOF (toks ""))

let test_lexer_operators () =
  let ts = toks "a <= b >> 2 && c != ~d" in
  check cb "LE" true (List.mem Lexer.LE_OP ts);
  check cb "SHR" true (List.mem Lexer.SHR_OP ts);
  check cb "ANDAND" true (List.mem Lexer.ANDAND ts);
  check cb "NE" true (List.mem Lexer.NE_OP ts);
  check cb "TILDE" true (List.mem Lexer.TILDE ts)

let test_lexer_comments () =
  check ci "line comments skipped" 3 (List.length (toks "x // hello\ny"));
  check ci "block comments skipped" 4 (List.length (toks "a /* b c d */ e f"))

let test_lexer_numbers () =
  match toks "123 4.5" with
  | [ Lexer.NUM n; Lexer.FNUM f; Lexer.EOF ] ->
      check Alcotest.int64 "int" 123L n;
      check (Alcotest.float 1e-9) "float" 4.5 f
  | _ -> Alcotest.fail "unexpected token stream"

let test_lexer_error () =
  check cb "bad char flagged with line" true
    (try
       ignore (Lexer.tokenize "int x;\n$");
       false
     with Lexer.Lex_error (_, 2) -> true)

let test_parser_precedence () =
  (* 2 + 3 * 4 must parse as 2 + (3 * 4): verified through evaluation *)
  let p = Lower.compile_source "int main() { print_int(2 + 3 * 4); print_int((2 + 3) * 4); return 0; }" in
  let _, out, _ = Epic_ir.Interp.run p [||] in
  check cs "precedence" "14\n20" (String.trim out)

let test_parser_dangling_else () =
  let p =
    Lower.compile_source
      "int main() { int x; x = 0; if (1) if (0) x = 1; else x = 2; print_int(x); return 0; }"
  in
  let _, out, _ = Epic_ir.Interp.run p [||] in
  check cs "else binds to inner if" "2" (String.trim out)

let test_parser_ternary () =
  let p =
    Lower.compile_source
      "int main() { int a; a = 5; print_int(a > 3 ? a * 2 : a - 1); print_int(a < 3 ? 7 : 8); return 0; }"
  in
  let _, out, _ = Epic_ir.Interp.run p [||] in
  check cs "ternary" "10\n8" (String.trim out)

let test_parser_for_with_empty_parts () =
  let p =
    Lower.compile_source
      "int main() { int i; i = 0; for (;;) { i = i + 1; if (i > 4) { break; } } print_int(i); return 0; }"
  in
  let _, out, _ = Epic_ir.Interp.run p [||] in
  check cs "empty for header" "5" (String.trim out)

let test_parser_do_while () =
  let p =
    Lower.compile_source
      "int main() { int i; i = 10; do { i = i + 1; } while (i < 5); print_int(i); return 0; }"
  in
  let _, out, _ = Epic_ir.Interp.run p [||] in
  check cs "do body runs once" "11" (String.trim out)

let test_parser_continue () =
  let p =
    Lower.compile_source
      "int main() { int i; int s; s = 0; for (i = 0; i < 10; i = i + 1) { if (i % 2 == 0) { continue; } s = s + i; } print_int(s); return 0; }"
  in
  let _, out, _ = Epic_ir.Interp.run p [||] in
  check cs "continue skips evens" "25" (String.trim out)

let test_parser_global_initializers () =
  let p =
    Lower.compile_source
      "int g = 5;\nint t[3] = {10, 20, 30};\nint main() { print_int(g + t[0] + t[2]); return 0; }"
  in
  let _, out, _ = Epic_ir.Interp.run p [||] in
  check cs "global init" "45" (String.trim out)

let test_parser_negative_initializer () =
  let p = Lower.compile_source "int g = -7;\nint main() { print_int(g); return 0; }" in
  let _, out, _ = Epic_ir.Interp.run p [||] in
  check cs "negative init" "-7" (String.trim out)

let test_parser_error_line () =
  check cb "error carries line" true
    (try
       ignore (Parser.parse_program "int main() {\n  int x\n}");
       false
     with Parser.Parse_error (_, l) -> l >= 2)

let test_lower_local_arrays () =
  let p =
    Lower.compile_source
      {|
int f() {
  int a[4];
  int b[4];
  int i;
  for (i = 0; i < 4; i = i + 1) { a[i] = i; b[i] = 10 - i; }
  return a[2] + b[2];
}
int main() { print_int(f()); return 0; }
|}
  in
  let _, out, _ = Epic_ir.Interp.run p [||] in
  check cs "two stack arrays don't overlap" "10" (String.trim out)

let test_lower_nested_calls_in_args () =
  let p =
    Lower.compile_source
      "int add(int a, int b) { return a + b; }\nint main() { print_int(add(add(1, 2), add(3, 4))); return 0; }"
  in
  let _, out, _ = Epic_ir.Interp.run p [||] in
  check cs "nested calls" "10" (String.trim out)

let test_lower_array_decay () =
  let p =
    Lower.compile_source
      {|
int t[4];
int sum(int *p, int n) {
  int i; int s;
  s = 0;
  for (i = 0; i < n; i = i + 1) { s = s + p[i]; }
  return s;
}
int main() { t[0] = 1; t[1] = 2; t[2] = 3; t[3] = 4; print_int(sum(t, 4)); return 0; }
|}
  in
  let _, out, _ = Epic_ir.Interp.run p [||] in
  check cs "array decays to pointer arg" "10" (String.trim out)

let test_lower_bool_value () =
  let p =
    Lower.compile_source
      "int main() { int a; a = (3 > 2) + (2 > 3) + (1 && 1) + (0 || 0); print_int(a); return 0; }"
  in
  let _, out, _ = Epic_ir.Interp.run p [||] in
  check cs "booleans materialize as 0/1" "2" (String.trim out)

let test_lower_frame_bytes () =
  let p = Lower.compile_source "int main() { int a[10]; a[0] = 1; return a[0]; }" in
  let f = Epic_ir.Program.find_func_exn p "main" in
  check ci "frame holds the array" 80 f.Epic_ir.Func.frame_bytes

let test_lower_void_function () =
  let p =
    Lower.compile_source
      "int g;\nvoid set(int v) { g = v; }\nint main() { set(33); print_int(g); return 0; }"
  in
  let _, out, _ = Epic_ir.Interp.run p [||] in
  check cs "void call" "33" (String.trim out)

let test_lower_error_undefined_var () =
  check cb "undefined identifier" true
    (try
       ignore (Lower.compile_source "int main() { return nope; }");
       false
     with Lower.Lower_error (_, _) -> true)

let suite =
  [
    ("lexer basics", `Quick, test_lexer_basic);
    ("lexer operators", `Quick, test_lexer_operators);
    ("lexer comments", `Quick, test_lexer_comments);
    ("lexer numbers", `Quick, test_lexer_numbers);
    ("lexer error line", `Quick, test_lexer_error);
    ("parser precedence", `Quick, test_parser_precedence);
    ("parser dangling else", `Quick, test_parser_dangling_else);
    ("parser ternary", `Quick, test_parser_ternary);
    ("parser empty for", `Quick, test_parser_for_with_empty_parts);
    ("parser do-while", `Quick, test_parser_do_while);
    ("parser continue", `Quick, test_parser_continue);
    ("parser global initializers", `Quick, test_parser_global_initializers);
    ("parser negative initializer", `Quick, test_parser_negative_initializer);
    ("parser error line", `Quick, test_parser_error_line);
    ("lower local arrays", `Quick, test_lower_local_arrays);
    ("lower nested call args", `Quick, test_lower_nested_calls_in_args);
    ("lower array decay", `Quick, test_lower_array_decay);
    ("lower bool values", `Quick, test_lower_bool_value);
    ("lower frame bytes", `Quick, test_lower_frame_bytes);
    ("lower void function", `Quick, test_lower_void_function);
    ("lower undefined var", `Quick, test_lower_error_undefined_var);
  ]
