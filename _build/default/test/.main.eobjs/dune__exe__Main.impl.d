test/main.ml: Alcotest Test_analysis Test_frontend Test_ilp Test_integration Test_ir Test_opt Test_sched Test_sim Test_workload_shapes
