test/test_integration.ml: Alcotest Epic_core Epic_frontend Epic_ir Epic_sim Epic_workloads List Printf QCheck QCheck_alcotest String
