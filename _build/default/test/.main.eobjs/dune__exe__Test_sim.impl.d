test/test_sim.ml: Accounting Alcotest Branch_pred Builder Cache Epic_core Epic_frontend Epic_ir Epic_sched Epic_sim Func Instr Int64 List Machine Opcode Operand Program Rse Tlb
