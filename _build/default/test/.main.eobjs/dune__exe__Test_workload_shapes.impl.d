test/test_workload_shapes.ml: Accounting Alcotest Epic_core Epic_ilp Epic_sim Epic_workloads Machine Printf
