test/main.mli:
