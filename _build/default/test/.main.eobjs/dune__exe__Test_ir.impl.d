test/test_ir.ml: Alcotest Block Builder Epic_frontend Epic_ir Func Hashtbl Instr Int64 Interp List Memimage Opcode Operand Option Program Reg String Verify
