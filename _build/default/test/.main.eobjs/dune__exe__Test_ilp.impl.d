test/test_ilp.ml: Alcotest Block Builder Epic_analysis Epic_core Epic_frontend Epic_ilp Epic_ir Epic_opt Epic_workloads Func Hashtbl Instr Interp List Opcode Operand Program Reg String Verify
