test/test_frontend.ml: Alcotest Epic_frontend Epic_ir Lexer List Lower Parser String
