test/test_opt.ml: Alcotest Epic_analysis Epic_frontend Epic_ir Epic_opt Func Instr Interp List Opcode Program String Verify
