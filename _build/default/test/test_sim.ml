(* Simulator tests: caches, TLB, branch predictor, register stack engine,
   cycle accounting, and machine-vs-interpreter differential execution. *)

open Epic_sim

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

(* --- cache ---------------------------------------------------------------- *)

let test_cache_hit_after_miss () =
  let c = Cache.create ~name:"t" ~size:1024 ~line:64 ~assoc:2 in
  check cb "first access misses" false (Cache.access c 0L);
  check cb "second access hits" true (Cache.access c 0L);
  check cb "same line hits" true (Cache.access c 63L);
  check cb "next line misses" false (Cache.access c 64L)

let test_cache_lru_eviction () =
  (* 2-way set: three distinct lines mapping to the same set evict LRU *)
  let c = Cache.create ~name:"t" ~size:1024 ~line:64 ~assoc:2 in
  (* set count = 1024/(64*2) = 8; stride of 512 bytes keeps the same set *)
  ignore (Cache.access c 0L);
  ignore (Cache.access c 512L);
  ignore (Cache.access c 1024L);
  check cb "first way evicted" false (Cache.probe c 0L);
  check cb "second way survives" true (Cache.probe c 512L)

let test_cache_capacity () =
  let c = Cache.create ~name:"t" ~size:1024 ~line:64 ~assoc:2 in
  (* touch 2 KiB (32 lines): at most 16 can survive *)
  for k = 0 to 31 do
    ignore (Cache.access c (Int64.of_int (k * 64)))
  done;
  let resident = ref 0 in
  for k = 0 to 31 do
    if Cache.probe c (Int64.of_int (k * 64)) then incr resident
  done;
  check ci "residency bounded by capacity" 16 !resident

let test_cache_counters () =
  let c = Cache.create ~name:"t" ~size:1024 ~line:64 ~assoc:2 in
  ignore (Cache.access c 0L);
  ignore (Cache.access c 0L);
  ignore (Cache.access c 4096L);
  check ci "accesses" 3 c.Cache.accesses;
  check ci "misses" 2 c.Cache.misses;
  check cb "miss rate" true (abs_float (Cache.miss_rate c -. (2. /. 3.)) < 1e-9)

(* --- tlb -------------------------------------------------------------------- *)

let test_tlb () =
  let t = Tlb.create ~entries:2 () in
  check cb "miss before fill" false (Tlb.lookup t 4096L);
  Tlb.fill t 4096L;
  check cb "hit after fill" true (Tlb.lookup t 4096L);
  check cb "same page different offset hits" true (Tlb.lookup t 4097L);
  Tlb.fill t 8192L;
  Tlb.fill t 16384L;
  (* capacity 2: the LRU entry (4096, refreshed above...) may be evicted *)
  check ci "two entries max" 2 t.Tlb.entries

(* --- branch predictor -------------------------------------------------------- *)

let test_branch_predictor_learns () =
  let bp = Branch_pred.create () in
  (* always-taken branch: after warmup, prediction is always correct *)
  for _ = 1 to 8 do
    ignore (Branch_pred.predict_and_update bp 42 true)
  done;
  let correct = ref 0 in
  for _ = 1 to 100 do
    if Branch_pred.predict_and_update bp 42 true then incr correct
  done;
  check ci "steady-state always-taken perfect" 100 !correct

let test_branch_predictor_alternating () =
  let bp = Branch_pred.create ~history_bits:4 () in
  (* strict alternation is captured by history after warmup *)
  let outcomes = List.init 400 (fun k -> k mod 2 = 0) in
  let correct = ref 0 and total = ref 0 in
  List.iteri
    (fun k o ->
      let c = Branch_pred.predict_and_update bp 7 o in
      if k > 100 then begin
        incr total;
        if c then incr correct
      end)
    outcomes;
  check cb "alternation learned" true (float_of_int !correct /. float_of_int !total > 0.9)

let test_branch_predictor_rate () =
  let bp = Branch_pred.create () in
  Branch_pred.record_unconditional bp;
  Branch_pred.record_unconditional bp;
  check cb "unconditional never mispredicts" true (Branch_pred.rate bp = 1.0)

(* --- RSE --------------------------------------------------------------------- *)

let test_rse_no_spill_when_shallow () =
  let r = Rse.create () in
  let cost = Rse.on_call r 20 in
  let cost2 = Rse.on_call r 20 in
  check ci "no spill below capacity" 0 (cost + cost2);
  check ci "no fill either" 0 (Rse.on_return r);
  ignore (Rse.on_return r)

let test_rse_spills_on_deep_recursion () =
  let r = Rse.create () in
  let total_spill = ref 0 in
  for _ = 1 to 10 do
    total_spill := !total_spill + Rse.on_call r 20
  done;
  (* 200 stacked registers demanded, 96 physical: spills required *)
  check cb "spills happened" true (!total_spill > 0);
  check cb "spill count matches overflow" true (r.Rse.spills >= 200 - 96);
  (* returning refills the callers *)
  let total_fill = ref 0 in
  for _ = 1 to 10 do
    total_fill := !total_fill + Rse.on_return r
  done;
  check cb "fills happened" true (!total_fill > 0);
  check ci "stack empty at the end" 0 r.Rse.resident_total

(* --- accounting ----------------------------------------------------------------- *)

let test_accounting_totals () =
  let a = Accounting.create () in
  Accounting.charge a "f" Accounting.Unstalled 10;
  Accounting.charge a "f" Accounting.Kernel 5;
  Accounting.charge a "g" Accounting.Unstalled 3;
  check (Alcotest.float 1e-9) "total" 18. (Accounting.total a);
  check (Alcotest.float 1e-9) "per-func" 15. (Accounting.func_total a "f");
  check (Alcotest.float 1e-9) "planned excludes kernel" 13. (Accounting.planned a)

let test_accounting_category_index_roundtrip () =
  List.iter
    (fun c -> check cb "index unique" true (Accounting.index c >= 0 && Accounting.index c < 9))
    Accounting.all_categories;
  check ci "nine categories" 9 (List.length Accounting.all_categories)

(* --- machine differential --------------------------------------------------------- *)

let compile_and_compare ?(input = [||]) ?(config = Epic_core.Config.o_ns) src =
  let p0 = Epic_frontend.Lower.compile_source src in
  let c0, o0, _ = Epic_ir.Interp.run p0 input in
  let compiled = Epic_core.Driver.compile ~config ~train:input src in
  let c1, o1, st = Epic_core.Driver.run compiled input in
  check (Alcotest.pair ci Alcotest.string) "machine matches interpreter" (c0, o0) (c1, o1);
  st

let test_machine_matches_interp_basic () =
  ignore
    (compile_and_compare
       "int main() { int i; int s; s = 0; for (i = 0; i < 100; i = i + 1) { s = s + i * i; } print_int(s); return 0; }")

let test_machine_matches_interp_calls () =
  ignore
    (compile_and_compare
       {|
int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
int main() { print_int(fib(12)); return 0; }
|})

let test_machine_matches_interp_memory () =
  ignore
    (compile_and_compare ~input:[| 3L |]
       {|
int t[64];
int main() {
  int i; int *p;
  p = malloc(256);
  for (i = 0; i < 32; i = i + 1) { p[i] = i * input(0); t[i] = p[i] + 1; }
  print_int(p[31] + t[31]);
  return 0;
}
|})

let test_machine_matches_interp_floats () =
  ignore
    (compile_and_compare
       {|
float acc;
int main() {
  int i;
  acc = 0.5;
  for (i = 0; i < 10; i = i + 1) { acc = acc * 1.5 + 0.25; }
  print_int((int) acc);
  return 0;
}
|})

let test_machine_accounting_sums_to_cycles () =
  let st =
    compile_and_compare ~config:Epic_core.Config.ilp_cs
      "int main() { int i; int s; s = 0; for (i = 0; i < 200; i = i + 1) { if (i % 3 == 0) { s = s + i; } } print_int(s); return 0; }"
  in
  (* all cycles are accounted: total of the categories is the clock *)
  check cb "accounting total positive" true (Accounting.total st.Machine.acc > 0.);
  check cb "clock close to accounted total" true
    (abs_float (float_of_int st.Machine.cycle -. Accounting.total st.Machine.acc)
    < 0.05 *. float_of_int st.Machine.cycle)

let test_machine_counts_branches () =
  let st =
    compile_and_compare
      "int main() { int i; for (i = 0; i < 50; i = i + 1) { } print_int(i); return 0; }"
  in
  check cb "branches retired" true (st.Machine.c.Machine.branches >= 50)

let test_machine_icache_warm () =
  let st =
    compile_and_compare
      "int main() { int i; int s; s = 0; for (i = 0; i < 1000; i = i + 1) { s = s + 1; } print_int(s); return 0; }"
  in
  (* a tiny loop must be essentially free of I-cache misses after warmup *)
  check cb "few L1I misses" true (st.Machine.l1i.Cache.misses < 20)

let test_machine_dcache_misses_on_big_footprint () =
  let st =
    compile_and_compare
      {|
int main() {
  int i; int s; int *p;
  p = malloc(65536);
  s = 0;
  for (i = 0; i < 8192; i = i + 1) { p[i] = i; }
  for (i = 0; i < 8192; i = i + 1) { s = s + p[(i * 1031) % 8192]; }
  print_int(s);
  return 0;
}
|}
  in
  check cb "data misses on 64 KiB footprint" true (st.Machine.l1d.Cache.misses > 100)

let test_machine_wild_load_kernel_time () =
  (* directly run a hand-marked speculative wild load through the machine *)
  let open Epic_ir in
  Instr.reset_ids ();
  let p = Program.create () in
  let f = Func.create "main" [] in
  let bld = Builder.create f in
  ignore (Builder.start_block bld "entry");
  let d = Builder.fresh_int bld in
  let ld = Builder.load ~spec:Opcode.Spec_general bld d (Operand.imm 0x600000) in
  ld.Instr.attrs.Instr.speculated <- true;
  ignore (Builder.call bld "print_int" [ Operand.imm 1 ]);
  Builder.ret bld [ Operand.imm 0 ];
  Program.add_func p f;
  Program.assign_addresses p;
  Epic_sched.Regalloc.run p;
  Epic_sched.List_sched.run p;
  let layout = Epic_sched.Layout.build p in
  let _, _, st = Machine.run p layout [||] in
  check ci "one wild load" 1 st.Machine.c.Machine.wild_loads;
  check cb "kernel time charged" true (Accounting.get st.Machine.acc Accounting.Kernel > 0.)

let test_machine_fuel () =
  (* the GCC-like pipeline does not profile, so compiling a non-terminating
     program is fine; the machine must then hit its own fuel limit *)
  let compiled =
    Epic_core.Driver.compile ~config:Epic_core.Config.gcc_like ~train:[||]
      "int main() { while (1) { } return 0; }"
  in
  check cb "machine out of fuel" true
    (try
       ignore (Epic_core.Driver.run ~fuel:2000 compiled [||]);
       false
     with Machine.Out_of_fuel -> true)

let suite =
  [
    ("cache hit after miss", `Quick, test_cache_hit_after_miss);
    ("cache LRU eviction", `Quick, test_cache_lru_eviction);
    ("cache capacity", `Quick, test_cache_capacity);
    ("cache counters", `Quick, test_cache_counters);
    ("tlb", `Quick, test_tlb);
    ("branch predictor learns", `Quick, test_branch_predictor_learns);
    ("branch predictor alternation", `Quick, test_branch_predictor_alternating);
    ("branch predictor rate", `Quick, test_branch_predictor_rate);
    ("rse shallow", `Quick, test_rse_no_spill_when_shallow);
    ("rse deep recursion", `Quick, test_rse_spills_on_deep_recursion);
    ("accounting totals", `Quick, test_accounting_totals);
    ("accounting categories", `Quick, test_accounting_category_index_roundtrip);
    ("machine vs interp: basic", `Quick, test_machine_matches_interp_basic);
    ("machine vs interp: calls", `Quick, test_machine_matches_interp_calls);
    ("machine vs interp: memory", `Quick, test_machine_matches_interp_memory);
    ("machine vs interp: floats", `Quick, test_machine_matches_interp_floats);
    ("machine accounting sums", `Quick, test_machine_accounting_sums_to_cycles);
    ("machine branch counting", `Quick, test_machine_counts_branches);
    ("machine icache warm loop", `Quick, test_machine_icache_warm);
    ("machine dcache misses", `Quick, test_machine_dcache_misses_on_big_footprint);
    ("machine wild load kernel", `Quick, test_machine_wild_load_kernel_time);
    ("machine fuel", `Quick, test_machine_fuel);
  ]
