(* Classical-optimizer tests: per-pass unit behaviour plus semantic
   preservation (differential against the interpreter). *)

open Epic_ir

let check = Alcotest.check
let ci = Alcotest.int
let cs = Alcotest.string
let cb = Alcotest.bool

let run p input =
  let code, out, _ = Interp.run p input in
  (code, out)

(* Compile, apply [passes], and require identical observable behaviour. *)
let preserves ?(input = [||]) src passes =
  let p = Epic_frontend.Lower.compile_source src in
  let before = run p input in
  passes p;
  Verify.check_program p;
  let after = run p input in
  check (Alcotest.pair ci cs) "semantics preserved" before after;
  p

let branchy_src =
  {|
int g[32];
int f(int x) {
  int s; int i;
  s = x * 0 + 3 * 1;
  for (i = 0; i < 16; i = i + 1) {
    if (g[i] > 2) { s = s + g[i] * 4; } else { s = s - 1; }
  }
  return s + 0;
}
int main() {
  int i;
  for (i = 0; i < 32; i = i + 1) { g[i] = i % 7; }
  print_int(f(5));
  print_int(f(9));
  return 0;
}
|}

let test_constfold_folds () =
  let p =
    preserves "int main() { int x; x = 2 + 3; print_int(x * 4); return 0; }"
      (fun p -> ignore (Epic_opt.Constfold.run p))
  in
  (* after folding + a cleanup, the multiply by constant result is direct *)
  ignore p

let test_constfold_identities () =
  let p = Epic_frontend.Lower.compile_source "int main() { int x; x = input(0); print_int(x * 1 + 0); return 0; }" in
  ignore (Epic_opt.Constfold.run p);
  let muls = Program.instr_count p in
  ignore (Epic_opt.Copyprop.run p);
  ignore (Epic_opt.Dce.run p);
  check cb "identity ops removed" true (Program.instr_count p <= muls);
  let _, out, _ = Interp.run p [| 7L |] in
  check cs "value" "7" (String.trim out)

let test_strength_mul_to_shift () =
  let p = Epic_frontend.Lower.compile_source "int main() { print_int(input(0) * 8); return 0; }" in
  ignore (Epic_opt.Strength.run p);
  let has_shl = ref false and has_mul = ref false in
  Program.iter_instrs p (fun i ->
      match i.Instr.op with
      | Opcode.Shl -> has_shl := true
      | Opcode.Mul -> has_mul := true
      | _ -> ());
  check cb "mul by 8 became shift" true !has_shl;
  check cb "no mul remains" false !has_mul;
  let _, out, _ = Interp.run p [| 5L |] in
  check cs "value" "40" (String.trim out)

let test_dce_removes_dead () =
  let p =
    Epic_frontend.Lower.compile_source
      "int main() { int a; int b; a = 1; b = a + 2; a = 5; print_int(a); return 0; }"
  in
  let before = Program.instr_count p in
  ignore (Epic_opt.Dce.run p);
  check cb "dead code removed" true (Program.instr_count p < before);
  let _, out, _ = Interp.run p [||] in
  check cs "value" "5" (String.trim out)

let test_dce_keeps_stores_and_calls () =
  let p =
    Epic_frontend.Lower.compile_source
      "int g;\nint main() { g = 9; print_int(g); return 0; }"
  in
  ignore (Epic_opt.Dce.run p);
  let stores = ref 0 and calls = ref 0 in
  Program.iter_instrs p (fun i ->
      if Instr.is_store i then incr stores;
      if Instr.is_call i then incr calls);
  check cb "store kept" true (!stores >= 1);
  check cb "call kept" true (!calls >= 1)

let test_cse_reuses_expressions () =
  let p =
    Epic_frontend.Lower.compile_source
      "int main() { int a; int x; int y; a = input(0); x = a * 3 + 1; y = a * 3 + 1; print_int(x + y); return 0; }"
  in
  let muls p =
    let n = ref 0 in
    Program.iter_instrs p (fun i -> if i.Instr.op = Opcode.Mul then incr n);
    !n
  in
  let before = muls p in
  ignore (Epic_opt.Local_cse.run p);
  ignore (Epic_opt.Copyprop.run p);
  ignore (Epic_opt.Dce.run p);
  check cb "one multiply eliminated" true (muls p < before);
  let _, out, _ = Interp.run p [| 4L |] in
  check cs "value" "26" (String.trim out)

let test_cse_respects_stores () =
  (* a store between two identical loads kills availability *)
  let p =
    preserves ~input:[||]
      {|
int g;
int main() {
  int a; int b;
  g = 1;
  a = g;
  g = 2;
  b = g;
  print_int(a + b);
  return 0;
}
|}
      (fun p ->
        ignore (Epic_opt.Local_cse.run p);
        ignore (Epic_opt.Copyprop.run p);
        ignore (Epic_opt.Dce.run p))
  in
  ignore p

let test_jumpopt_collapses_chains () =
  let p = Epic_frontend.Lower.compile_source branchy_src in
  let before = List.length (Program.find_func_exn p "main").Func.blocks in
  ignore (Epic_opt.Jumpopt.run p);
  let after = List.length (Program.find_func_exn p "main").Func.blocks in
  check cb "blocks merged" true (after <= before);
  Verify.check_program p

let test_classical_pipeline_semantics () =
  ignore
    (preserves ~input:[| 3L |] branchy_src (fun p ->
         ignore (Epic_analysis.Profile.profile_and_annotate p [| 3L |]);
         ignore (Epic_analysis.Points_to.analyze p);
         Epic_opt.Pipeline.run_classical p))

let test_licm_hoists () =
  let src =
    {|
int g;
int main() {
  int i; int s; int k;
  k = input(0);
  s = 0;
  for (i = 0; i < 100; i = i + 1) {
    s = s + k * 3 + i;
  }
  print_int(s);
  return 0;
}
|}
  in
  let p = Epic_frontend.Lower.compile_source src in
  let before = run p [| 2L |] in
  ignore (Epic_analysis.Profile.profile_and_annotate p [| 2L |]);
  Epic_opt.Pipeline.run_classical p;
  let after = run p [| 2L |] in
  check (Alcotest.pair ci cs) "LICM preserves semantics" before after

let test_inline_leaf () =
  let src =
    {|
int sq(int x) { return x * x; }
int main() {
  int i; int s;
  s = 0;
  for (i = 0; i < 50; i = i + 1) { s = s + sq(i); }
  print_int(s);
  return 0;
}
|}
  in
  let p = Epic_frontend.Lower.compile_source src in
  let before = run p [||] in
  ignore (Epic_analysis.Profile.profile_and_annotate p [||]);
  let n = Epic_opt.Inline.run p in
  check cb "hot leaf inlined" true (n >= 1);
  Verify.check_program p;
  check (Alcotest.pair ci cs) "inline preserves semantics" before (run p [||])

let test_inline_skips_recursive () =
  let src =
    "int f(int n) { if (n < 1) { return 0; } return 1 + f(n - 1); }\n\
     int main() { print_int(f(20)); return 0; }"
  in
  let p = Epic_frontend.Lower.compile_source src in
  ignore (Epic_analysis.Profile.profile_and_annotate p [||]);
  let n = Epic_opt.Inline.run p in
  check ci "recursive callsite not inlined" 0 n

let test_inline_budget_zero () =
  let src =
    "int sq(int x) { return x * x; }\nint main() { print_int(sq(input(0))); return 0; }"
  in
  let p = Epic_frontend.Lower.compile_source src in
  ignore (Epic_analysis.Profile.profile_and_annotate p [| 4L |]);
  let n = Epic_opt.Inline.run ~budget:1.0 p in
  check ci "budget 1.0 inlines nothing" 0 n

let test_indirect_specialization () =
  let src =
    {|
int a(int x) { return x + 1; }
int b(int x) { return x + 2; }
int main() {
  int f; int i; int s;
  s = 0;
  for (i = 0; i < 20; i = i + 1) {
    if (i == 19) { f = (int) &b; } else { f = (int) &a; }
    s = s + (f)(i);
  }
  print_int(s);
  return 0;
}
|}
  in
  let p = Epic_frontend.Lower.compile_source src in
  let before = run p [||] in
  let prof, _, _ = Epic_analysis.Profile.collect p [||] in
  Epic_analysis.Profile.annotate p prof;
  let n = Epic_opt.Indirect_call.run p prof in
  check ci "one site specialized" 1 n;
  Verify.check_program p;
  check (Alcotest.pair ci cs) "specialization preserves semantics" before (run p [||]);
  (* the dominant callee is now reachable through a direct call *)
  let direct = ref false in
  Program.iter_instrs p (fun i -> if Instr.callee i = Some "a" then direct := true);
  check cb "direct call to dominant target" true !direct

let suite =
  [
    ("constfold folds", `Quick, test_constfold_folds);
    ("constfold identities", `Quick, test_constfold_identities);
    ("strength reduction", `Quick, test_strength_mul_to_shift);
    ("dce removes dead", `Quick, test_dce_removes_dead);
    ("dce keeps effects", `Quick, test_dce_keeps_stores_and_calls);
    ("cse reuses expressions", `Quick, test_cse_reuses_expressions);
    ("cse respects stores", `Quick, test_cse_respects_stores);
    ("jumpopt collapses", `Quick, test_jumpopt_collapses_chains);
    ("classical pipeline semantics", `Quick, test_classical_pipeline_semantics);
    ("licm", `Quick, test_licm_hoists);
    ("inline leaf", `Quick, test_inline_leaf);
    ("inline skips recursion", `Quick, test_inline_skips_recursive);
    ("inline zero budget", `Quick, test_inline_budget_zero);
    ("indirect call specialization", `Quick, test_indirect_specialization);
  ]
