(* Unit tests for the IR substrate: registers, operands, opcodes,
   instructions, blocks, functions, programs, the builder, the verifier, the
   memory image and the reference interpreter. *)

open Epic_ir

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string

(* --- Reg ---------------------------------------------------------------- *)

let test_reg_equality () =
  let a = Reg.virt 5 Reg.Int and b = Reg.virt 5 Reg.Int in
  check cb "same virtual regs equal" true (Reg.equal a b);
  check cb "different class differs" false (Reg.equal a (Reg.virt 5 Reg.Flt));
  check cb "virt <> phys" false (Reg.equal a (Reg.phys 5 Reg.Int));
  check cb "r0 is physical int 0" true (Reg.equal Reg.r0 (Reg.phys 0 Reg.Int))

let test_reg_stacked () =
  check cb "r32 is stacked" true (Reg.is_stacked (Reg.phys 32 Reg.Int));
  check cb "r31 is not stacked" false (Reg.is_stacked (Reg.phys 31 Reg.Int));
  check cb "virtual never stacked" false (Reg.is_stacked (Reg.virt 40 Reg.Int));
  check cb "predicates never stacked" false (Reg.is_stacked (Reg.phys 40 Reg.Prd))

let test_reg_printing () =
  check cs "phys int" "r12" (Reg.to_string Reg.sp);
  check cs "virt pred" "vp7" (Reg.to_string (Reg.virt 7 Reg.Prd));
  check cs "phys flt" "f8" (Reg.to_string (Reg.phys 8 Reg.Flt))

let test_reg_set_map () =
  let s = Reg.Set.of_list [ Reg.virt 1 Reg.Int; Reg.virt 1 Reg.Int; Reg.virt 2 Reg.Int ] in
  check ci "set dedups" 2 (Reg.Set.cardinal s);
  let m = Reg.Map.add (Reg.virt 1 Reg.Int) "x" Reg.Map.empty in
  check cb "map lookup" true (Reg.Map.mem (Reg.virt 1 Reg.Int) m)

(* --- Opcode --------------------------------------------------------------- *)

let test_opcode_classes () =
  check cb "branch" true (Opcode.is_branch Opcode.Br);
  check cb "call is branch" true (Opcode.is_branch Opcode.Br_call);
  check cb "add not branch" false (Opcode.is_branch Opcode.Add);
  check cb "load" true (Opcode.is_load (Opcode.Ld (Opcode.B8, Opcode.Nonspec)));
  check cb "store is mem" true (Opcode.is_mem (Opcode.St Opcode.B8));
  check cb "spec load detected" true
    (Opcode.is_speculative_load (Opcode.Ld (Opcode.B8, Opcode.Spec_general)))

let test_opcode_may_fault () =
  check cb "nonspec load faults" true (Opcode.may_fault (Opcode.Ld (Opcode.B8, Opcode.Nonspec)));
  check cb "spec load does not" false
    (Opcode.may_fault (Opcode.Ld (Opcode.B8, Opcode.Spec_general)));
  check cb "store faults" true (Opcode.may_fault (Opcode.St Opcode.B8));
  check cb "div faults" true (Opcode.may_fault Opcode.Div);
  check cb "add does not" false (Opcode.may_fault Opcode.Add)

let test_eval_icmp () =
  let t = Opcode.eval_icmp in
  check cb "lt" true (t Opcode.Lt 1L 2L);
  check cb "ge" true (t Opcode.Ge 2L 2L);
  check cb "ne" false (t Opcode.Ne 5L 5L);
  check cb "signed lt" true (t Opcode.Lt (-1L) 0L);
  check cb "unsigned ltu treats -1 as big" false (t Opcode.Ltu (-1L) 0L);
  check cb "geu" true (t Opcode.Geu (-1L) 5L)

let test_negate_icmp () =
  List.iter
    (fun c ->
      let n = Opcode.negate_icmp c in
      List.iter
        (fun (a, b) ->
          check cb "negation flips" (Opcode.eval_icmp c a b)
            (not (Opcode.eval_icmp n a b)))
        [ (1L, 2L); (2L, 1L); (3L, 3L); (-4L, 4L) ])
    [ Opcode.Eq; Opcode.Ne; Opcode.Lt; Opcode.Le; Opcode.Gt; Opcode.Ge; Opcode.Ltu; Opcode.Geu ]

(* --- Instr ---------------------------------------------------------------- *)

let test_instr_uses_defs () =
  let r1 = Reg.virt 1 Reg.Int and r2 = Reg.virt 2 Reg.Int in
  let p = Reg.virt 3 Reg.Prd in
  let i =
    Instr.create ~pred:p Opcode.Add ~dsts:[ r1 ]
      ~srcs:[ Operand.Reg r2; Operand.imm 4 ]
  in
  check ci "uses include guard" 2 (List.length (Instr.uses i));
  check cb "guard in uses" true (List.exists (Reg.equal p) (Instr.uses i));
  check ci "one def" 1 (List.length (Instr.defs i))

let test_instr_copy_provenance () =
  let i = Instr.create Opcode.Add ~dsts:[ Reg.virt 1 Reg.Int ] ~srcs:[ Operand.imm 1; Operand.imm 2 ] in
  let c = Instr.copy i in
  check cb "fresh id" true (c.Instr.id <> i.Instr.id);
  check ci "origin recorded" i.Instr.id c.Instr.attrs.Instr.origin;
  let c2 = Instr.copy c in
  check ci "origin persists through chains" i.Instr.id c2.Instr.attrs.Instr.origin

let test_instr_branch_target () =
  let b = Instr.create Opcode.Br ~srcs:[ Operand.Label "foo" ] in
  check (Alcotest.option cs) "target" (Some "foo") (Instr.branch_target b);
  let c = Instr.create Opcode.Br_call ~srcs:[ Operand.Sym "f" ] in
  check (Alcotest.option cs) "callee" (Some "f") (Instr.callee c);
  check (Alcotest.option cs) "call has no label target" None (Instr.branch_target c)

let test_instr_substitute () =
  let r1 = Reg.virt 1 Reg.Int and r2 = Reg.virt 2 Reg.Int in
  let i = Instr.create Opcode.Add ~dsts:[ r1 ] ~srcs:[ Operand.Reg r1; Operand.Reg r2 ] in
  Instr.substitute_uses (fun r -> if Reg.equal r r1 then Some r2 else None) i;
  check cb "src rewritten" true (List.for_all (Operand.equal (Operand.Reg r2)) i.Instr.srcs);
  check cb "dst untouched" true (Reg.equal (List.hd i.Instr.dsts) r1)

(* --- Func / Block --------------------------------------------------------- *)

let mk_linear_func () =
  let f = Func.create "t" [] in
  let b1 = Block.create "a" and b2 = Block.create "b" and b3 = Block.create "c" in
  Block.append b1 (Instr.create Opcode.Mov ~dsts:[ Reg.virt 1 Reg.Int ] ~srcs:[ Operand.imm 1 ]);
  Block.append b3 (Instr.create Opcode.Br_ret ~srcs:[ Operand.imm 0 ]);
  Func.append_block f b1;
  Func.append_block f b2;
  Func.append_block f b3;
  f

let test_func_fallthrough () =
  let f = mk_linear_func () in
  let b1 = Func.find_block_exn f "a" in
  check (Alcotest.option cs) "a falls to b" (Some "b")
    (Option.map (fun (b : Block.t) -> b.Block.label) (Func.fallthrough f b1));
  check (Alcotest.list cs) "successors of a" [ "b" ] (Func.successors f b1)

let test_func_successors_with_branch () =
  let f = mk_linear_func () in
  let b1 = Func.find_block_exn f "a" in
  let p = Reg.virt 9 Reg.Prd in
  Block.append b1 (Instr.create ~pred:p Opcode.Br ~srcs:[ Operand.Label "c" ]);
  check (Alcotest.slist cs compare) "branch + fallthrough" [ "b"; "c" ]
    (Func.successors f b1)

let test_func_predecessors () =
  let f = mk_linear_func () in
  let preds = Func.predecessors f in
  check (Alcotest.list cs) "preds of b" [ "a" ] (Hashtbl.find preds "b")

let test_remove_unreachable () =
  let f = mk_linear_func () in
  let dead = Block.create "dead" in
  Block.append dead (Instr.create Opcode.Br ~srcs:[ Operand.Label "a" ]);
  f.Func.blocks <- f.Func.blocks @ [ dead ];
  (* 'dead' gets no incoming edges but the last block ends in ret, so dead is
     unreachable *)
  Func.remove_unreachable f;
  check cb "dead removed" true (Func.find_block f "dead" = None);
  check ci "three blocks left" 3 (List.length f.Func.blocks)

let test_verify_catches_dangling () =
  let f = mk_linear_func () in
  let b1 = Func.find_block_exn f "a" in
  Block.append b1 (Instr.create ~pred:(Reg.virt 1 Reg.Prd) Opcode.Br ~srcs:[ Operand.Label "nope" ]);
  Alcotest.check_raises "dangling label rejected"
    (Verify.Ill_formed "t/a: branch to unknown label nope") (fun () ->
      Verify.check_func f)

let test_verify_catches_fallthrough_off_end () =
  let f = Func.create "t" [] in
  let b = Block.create "only" in
  Block.append b (Instr.create Opcode.Mov ~dsts:[ Reg.virt 1 Reg.Int ] ~srcs:[ Operand.imm 1 ]);
  Func.append_block f b;
  check cb "verify rejects" true
    (try
       Verify.check_func f;
       false
     with Verify.Ill_formed _ -> true)

(* --- Memimage ------------------------------------------------------------- *)

let test_memimage_rw () =
  let m = Memimage.create () in
  Memimage.map_range m 4096L 64;
  Memimage.write m 4096L 8 0x1122334455667788L;
  check Alcotest.int64 "read back" 0x1122334455667788L (Memimage.read m 4096L 8);
  Memimage.write m 4100L 1 0xffL;
  check cb "byte write visible in word" true (Memimage.read m 4096L 8 <> 0x1122334455667788L)

let test_memimage_sext32 () =
  let m = Memimage.create () in
  Memimage.map_range m 4096L 16;
  Memimage.write m 4096L 4 0xffffffffL;
  check Alcotest.int64 "32-bit reads sign-extend" (-1L) (Memimage.read m 4096L 4)

let test_memimage_classify () =
  let m = Memimage.create () in
  Memimage.map_range m 4096L 8;
  check cb "mapped" true (Memimage.classify m 4096L = Memimage.Ok);
  check cb "null page" true (Memimage.classify m 8L = Memimage.Null_page);
  check cb "unmapped" true (Memimage.classify m 0x999999L = Memimage.Unmapped)

(* --- Interp --------------------------------------------------------------- *)

let run_src ?(input = [||]) src =
  let p = Epic_frontend.Lower.compile_source src in
  Verify.check_program p;
  let code, out, _ = Interp.run p input in
  (code, String.trim out)

let test_interp_arith () =
  let _, out = run_src "int main() { print_int(2 + 3 * 4 - 6 / 2); return 0; }" in
  check cs "arith" "11" out

let test_interp_neg_mod () =
  let _, out = run_src "int main() { print_int(-7 % 3); print_int(-8 / 3); return 0; }" in
  check cs "C-style truncation" "-1\n-2" out

let test_interp_shifts () =
  let _, out =
    run_src "int main() { print_int(1 << 10); print_int(-16 >> 2); return 0; }"
  in
  check cs "shl and arithmetic shr" "1024\n-4" out

let test_interp_short_circuit () =
  let _, out =
    run_src
      {|
int g;
int bump() { g = g + 1; return 0; }
int main() {
  g = 0;
  if (0 && bump()) { g = 100; }
  if (1 || bump()) { g = g + 10; }
  print_int(g);
  return 0;
}
|}
  in
  check cs "&& and || short-circuit" "10" out

let test_interp_exit_code () =
  let code, _ = run_src "int main() { return 42; }" in
  check ci "exit code" 42 code;
  let code, _ = run_src "int main() { exit(7); return 1; }" in
  check ci "exit() wins" 7 code

let test_interp_recursion () =
  let _, out =
    run_src
      "int f(int n) { if (n < 2) { return n; } return f(n-1) + f(n-2); }\n\
       int main() { print_int(f(15)); return 0; }"
  in
  check cs "fib 15" "610" out

let test_interp_pointers () =
  let _, out =
    run_src
      {|
int main() {
  int *p; int *q;
  p = malloc(64);
  q = p + 2;
  *q = 99;
  print_int(p[2]);
  p[3] = *q + 1;
  print_int(*(p + 3));
  return 0;
}
|}
  in
  check cs "pointer arithmetic scales by 8" "99\n100" out

let test_interp_function_pointers () =
  let _, out =
    run_src
      {|
int double_it(int x) { return x * 2; }
int triple_it(int x) { return x * 3; }
int main() {
  int f;
  f = (int) &double_it;
  print_int((f)(21));
  f = (int) &triple_it;
  print_int((f)(7));
  return 0;
}
|}
  in
  check cs "indirect calls" "42\n21" out

let test_interp_floats () =
  let _, out =
    run_src
      {|
float scale;
int main() {
  float x; float y;
  scale = 2.5;
  x = 4.0;
  y = x * scale + 1.0;
  print_int((int) y);
  print_int((int) (y / 2.0));
  return 0;
}
|}
  in
  check cs "float arithmetic through globals" "11\n5" out

let test_interp_inputs () =
  let _, out =
    run_src ~input:[| 10L; 20L |]
      "int main() { print_int(input(0) + input(1)); print_int(input_len()); print_int(input(9)); return 0; }"
  in
  check cs "input vector" "30\n2\n0" out

let test_interp_memcpy_memset () =
  let _, out =
    run_src
      {|
int a[8];
int b[8];
int main() {
  int i;
  for (i = 0; i < 8; i = i + 1) { a[i] = i * i; }
  memcpy((int) &b[0], (int) &a[0], 64);
  print_int(b[7]);
  memset((int) &b[0], 0, 64);
  print_int(b[7]);
  return 0;
}
|}
  in
  check cs "memcpy/memset" "49\n0" out

let test_interp_spec_load_nat () =
  (* a speculative load from garbage yields NaT, which a guarded consumer
     never reads; interp must not fault *)
  Instr.reset_ids ();
  let p = Program.create () in
  let f = Func.create "main" [] in
  let bld = Builder.create f in
  ignore (Builder.start_block bld "entry");
  let d = Builder.fresh_int bld in
  ignore (Builder.load ~spec:Opcode.Spec_general bld d (Operand.imm 0x500000));
  ignore (Builder.call bld "print_int" [ Operand.imm 1 ]);
  Builder.ret bld [ Operand.imm 0 ];
  Program.add_func p f;
  Program.assign_addresses p;
  let code, out, st = Interp.run p [||] in
  check ci "no fault" 0 code;
  check cs "output" "1" (String.trim out);
  check ci "wild load counted" 1 st.Interp.wild_loads

let test_interp_fuel () =
  let src = "int main() { while (1) { } return 0; }" in
  let p = Epic_frontend.Lower.compile_source src in
  check cb "out of fuel raised" true
    (try
       ignore (Interp.run ~fuel:1000 p [||]);
       false
     with Interp.Out_of_fuel -> true)

let test_program_func_addresses () =
  let p = Epic_frontend.Lower.compile_source "int f() { return 1; }\nint main() { return 0; }" in
  let a = Program.func_address p "f" in
  check (Alcotest.option cs) "round trip" (Some "f") (Program.func_at_address p a);
  check (Alcotest.option cs) "misaligned fails" None
    (Program.func_at_address p (Int64.add a 8L))

let suite =
  [
    ("reg equality", `Quick, test_reg_equality);
    ("reg stacked", `Quick, test_reg_stacked);
    ("reg printing", `Quick, test_reg_printing);
    ("reg set/map", `Quick, test_reg_set_map);
    ("opcode classes", `Quick, test_opcode_classes);
    ("opcode may_fault", `Quick, test_opcode_may_fault);
    ("eval icmp", `Quick, test_eval_icmp);
    ("negate icmp", `Quick, test_negate_icmp);
    ("instr uses/defs", `Quick, test_instr_uses_defs);
    ("instr copy provenance", `Quick, test_instr_copy_provenance);
    ("instr branch target", `Quick, test_instr_branch_target);
    ("instr substitute", `Quick, test_instr_substitute);
    ("func fallthrough", `Quick, test_func_fallthrough);
    ("func successors with branch", `Quick, test_func_successors_with_branch);
    ("func predecessors", `Quick, test_func_predecessors);
    ("remove unreachable", `Quick, test_remove_unreachable);
    ("verify dangling label", `Quick, test_verify_catches_dangling);
    ("verify fallthrough off end", `Quick, test_verify_catches_fallthrough_off_end);
    ("memimage read/write", `Quick, test_memimage_rw);
    ("memimage 32-bit sext", `Quick, test_memimage_sext32);
    ("memimage classify", `Quick, test_memimage_classify);
    ("interp arithmetic", `Quick, test_interp_arith);
    ("interp negative div/mod", `Quick, test_interp_neg_mod);
    ("interp shifts", `Quick, test_interp_shifts);
    ("interp short circuit", `Quick, test_interp_short_circuit);
    ("interp exit codes", `Quick, test_interp_exit_code);
    ("interp recursion", `Quick, test_interp_recursion);
    ("interp pointers", `Quick, test_interp_pointers);
    ("interp function pointers", `Quick, test_interp_function_pointers);
    ("interp floats", `Quick, test_interp_floats);
    ("interp inputs", `Quick, test_interp_inputs);
    ("interp memcpy/memset", `Quick, test_interp_memcpy_memset);
    ("interp speculative NaT", `Quick, test_interp_spec_load_nat);
    ("interp fuel", `Quick, test_interp_fuel);
    ("program function addresses", `Quick, test_program_func_addresses);
  ]
