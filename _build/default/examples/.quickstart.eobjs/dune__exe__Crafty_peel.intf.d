examples/crafty_peel.mli:
