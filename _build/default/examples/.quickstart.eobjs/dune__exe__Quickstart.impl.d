examples/quickstart.ml: Accounting Epic_core Epic_sim Fmt List Machine
