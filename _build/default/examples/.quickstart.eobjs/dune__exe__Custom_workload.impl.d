examples/custom_workload.ml: Accounting Builder Epic_core Epic_ir Epic_sim Fmt Func Instr List Machine Opcode Operand Program Reg String Verify
