examples/wild_loads.mli:
