examples/crafty_peel.ml: Accounting Epic_analysis Epic_core Epic_frontend Epic_ilp Epic_ir Epic_opt Epic_sim Fmt List Machine
