examples/wild_loads.ml: Accounting Epic_core Epic_ilp Epic_sim Fmt Machine
