examples/quickstart.mli:
