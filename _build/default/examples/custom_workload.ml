(* Building and measuring your own workload through the public API:
   construct IR directly with Epic_ir.Builder (no mini-C source needed),
   compile it with the driver, run it on the simulator and read the
   performance counters — the full library surface in one place.

   Run with:  dune exec examples/custom_workload.exe *)

open Epic_ir

(* Build: int dot(int n) { s = 0; for i<n: s += a[i]*b[i]; return s } plus a
   main that fills the arrays and calls it. *)
let build_program () =
  Instr.reset_ids ();
  let p = Program.create () in
  let _ = Program.add_global p "a" ~size:(8 * 128) in
  let _ = Program.add_global p "b" ~size:(8 * 128) in

  (* dot *)
  let dot = Func.create "dot" [] in
  let n = Func.fresh_reg dot Reg.Int in
  dot.Func.params <- [ n ];
  let bld = Builder.create dot in
  let s = Builder.fresh_int bld in
  let i = Builder.fresh_int bld in
  let base_a = Builder.fresh_int bld and base_b = Builder.fresh_int bld in
  ignore (Builder.start_block bld "entry");
  Builder.movi bld s 0;
  Builder.movi bld i 0;
  Builder.lea bld base_a "a" 0;
  Builder.lea bld base_b "b" 0;
  ignore (Builder.start_block bld "loop");
  let pt, _pf = Builder.cbr bld Opcode.Ge (Operand.reg i) (Operand.reg n) "done" in
  ignore pt;
  let off = Builder.fresh_int bld in
  Builder.binop bld Opcode.Shl off (Operand.reg i) (Operand.imm 3);
  let addr_a = Builder.fresh_int bld and addr_b = Builder.fresh_int bld in
  Builder.add bld addr_a (Operand.reg base_a) (Operand.reg off);
  Builder.add bld addr_b (Operand.reg base_b) (Operand.reg off);
  let va = Builder.fresh_int bld and vb = Builder.fresh_int bld in
  ignore (Builder.load bld va (Operand.reg addr_a));
  ignore (Builder.load bld vb (Operand.reg addr_b));
  let prod = Builder.fresh_int bld in
  Builder.mul bld prod (Operand.reg va) (Operand.reg vb);
  Builder.add bld s (Operand.reg s) (Operand.reg prod);
  Builder.add bld i (Operand.reg i) (Operand.imm 1);
  Builder.br bld "loop";
  ignore (Builder.start_block bld "done");
  Builder.ret bld [ Operand.reg s ];
  Program.add_func p dot;

  (* main *)
  let main = Func.create "main" [] in
  let bld = Builder.create main in
  let i = Builder.fresh_int bld in
  let base_a = Builder.fresh_int bld and base_b = Builder.fresh_int bld in
  ignore (Builder.start_block bld "entry");
  Builder.movi bld i 0;
  Builder.lea bld base_a "a" 0;
  Builder.lea bld base_b "b" 0;
  ignore (Builder.start_block bld "fill");
  ignore (Builder.cbr bld Opcode.Ge (Operand.reg i) (Operand.imm 128) "run");
  let off = Builder.fresh_int bld in
  Builder.binop bld Opcode.Shl off (Operand.reg i) (Operand.imm 3);
  let addr = Builder.fresh_int bld in
  Builder.add bld addr (Operand.reg base_a) (Operand.reg off);
  ignore (Builder.store bld (Operand.reg addr) (Operand.reg i));
  Builder.add bld addr (Operand.reg base_b) (Operand.reg off);
  ignore (Builder.store bld (Operand.reg addr) (Operand.imm 3));
  Builder.add bld i (Operand.reg i) (Operand.imm 1);
  Builder.br bld "fill";
  ignore (Builder.start_block bld "run");
  let acc = Builder.fresh_int bld and r = Builder.fresh_int bld in
  let k = Builder.fresh_int bld in
  Builder.movi bld acc 0;
  Builder.movi bld k 0;
  ignore (Builder.start_block bld "reps");
  ignore (Builder.cbr bld Opcode.Ge (Operand.reg k) (Operand.imm 200) "out");
  ignore (Builder.call bld ~dsts:[ r ] "dot" [ Operand.imm 128 ]);
  Builder.add bld acc (Operand.reg acc) (Operand.reg r);
  Builder.add bld k (Operand.reg k) (Operand.imm 1);
  Builder.br bld "reps";
  ignore (Builder.start_block bld "out");
  ignore (Builder.call bld "print_int" [ Operand.reg acc ]);
  Builder.ret bld [ Operand.imm 0 ];
  Program.add_func p main;
  Program.assign_addresses p;
  Verify.check_program p;
  p

let () =
  Fmt.pr "Hand-built IR, compiled and simulated at two levels:@.@.";
  List.iter
    (fun level ->
      let p = build_program () in
      let config = Epic_core.Config.make level in
      let compiled = Epic_core.Driver.compile_ir ~config ~train:[||] p in
      let _, out, st = Epic_core.Driver.run compiled [||] in
      let open Epic_sim in
      Fmt.pr "%-8s -> %s (cycles %.0f, planned IPC %.2f, unrolled %d loops)@."
        (Epic_core.Config.level_name level)
        (String.trim out)
        (Accounting.total st.Machine.acc)
        (float_of_int st.Machine.c.Machine.useful_ops
        /. max 1.0 (Accounting.planned st.Machine.acc))
        compiled.Epic_core.Driver.transform_stats.Epic_core.Driver.unrolled_loops)
    [ Epic_core.Config.O_NS; Epic_core.Config.ILP_CS ]
