(* The paper's Section 2.4 motivating example: crafty's Evaluate() contains
   sequential while loops whose bodies typically execute exactly once (each
   side usually has one queen).  This example shows the transformation
   pipeline of Figure 3 on exactly that shape — loop peeling pulls the
   single iteration out, and region formation then merges the peeled code
   into one scheduling region.

   Run with:  dune exec examples/crafty_peel.exe *)

let source =
  {|
int board[64];

// Figure 3's two sequential loops: each typically runs exactly once.
int eval_queens(int side) {
  int sq; int s;
  s = 0;
  sq = 0;
  while (sq < 64 && board[sq] != 5 + side) { sq = sq + 1; }
  while (sq < 64) {
    s = s + 90;
    if (sq > 26 && sq < 37) { s = s + 5; }
    sq = sq + 64;
  }
  return s;
}

int rng;
int rand_next() {
  rng = rng * 1103515245 + 12345;
  return (rng >> 16) & 32767;
}

int main() {
  int m; int total; int i;
  rng = input(0);
  total = 0;
  for (m = 0; m < 300; m = m + 1) {
    for (i = 0; i < 64; i = i + 1) { board[i] = 0; }
    board[rand_next() & 63] = 5;
    board[rand_next() & 63] = 13;
    total = total + eval_queens(0) - eval_queens(8);
  }
  print_int(total);
  return 0;
}
|}

let () =
  let input = [| 11L |] in
  (* Show what peeling does to the IR. *)
  let p = Epic_frontend.Lower.compile_source source in
  ignore (Epic_analysis.Profile.profile_and_annotate p input);
  Epic_opt.Pipeline.run_classical p;
  Epic_analysis.Profile.reprofile p input;
  let f = Epic_ir.Program.find_func_exn p "eval_queens" in
  Fmt.pr "=== eval_queens before peeling: %d blocks ===@."
    (List.length f.Epic_ir.Func.blocks);
  let loops = Epic_analysis.Natural_loops.compute f in
  List.iter
    (fun (l : Epic_analysis.Natural_loops.loop) ->
      Fmt.pr "  loop at %s: average trip count %.2f@." l.Epic_analysis.Natural_loops.header
        l.Epic_analysis.Natural_loops.avg_trips)
    loops.Epic_analysis.Natural_loops.loops;
  let peeled = Epic_ilp.Peel.run p in
  Fmt.pr "@.peeled %d loops; eval_queens now has %d blocks "
    peeled
    (List.length f.Epic_ir.Func.blocks);
  Fmt.pr "(the remainder loops are laid out cold)@.@.";
  (* And measure the end-to-end effect. *)
  Fmt.pr "%-8s %10s %10s %14s@." "config" "cycles" "branches" "front-end stalls";
  List.iter
    (fun level ->
      let config = Epic_core.Config.make level in
      let compiled = Epic_core.Driver.compile ~config ~train:input source in
      let _, _, st = Epic_core.Driver.run compiled input in
      let open Epic_sim in
      Fmt.pr "%-8s %10.0f %10d %14.0f@."
        (Epic_core.Config.level_name level)
        (Accounting.total st.Machine.acc)
        st.Machine.c.Machine.branches
        (Accounting.get st.Machine.acc Accounting.Front_end))
    [ Epic_core.Config.O_NS; Epic_core.Config.ILP_NS; Epic_core.Config.ILP_CS ]
