(* Section 4.3: wild loads under the general speculation model.  A guarded
   dereference of a pointer/integer union is control-speculated (predicate
   promotion); the off-path executions present integer garbage as addresses
   and walk the page tables in the kernel.  The sentinel model defers those
   accesses with NaT and recovers through chk.s instead.

   Run with:  dune exec examples/wild_loads.exe *)

let source =
  {|
int rng;
int rand_next() {
  rng = rng * 1103515245 + 12345;
  return (rng >> 16) & 32767;
}

int main() {
  int i; int s; int tag; int payload; int *cells; int *boxed;
  rng = input(0);
  // a table of tagged cells: 1-in-4 holds a pointer, the rest hold ints
  cells = malloc(512 * 16);
  for (i = 0; i < 512; i = i + 1) {
    if (rand_next() % 4 == 0) {
      boxed = malloc(8);
      boxed[0] = rand_next();
      cells[i * 2] = 1;
      cells[i * 2 + 1] = (int) boxed;
    } else {
      cells[i * 2] = 0;
      cells[i * 2 + 1] = rand_next() + 600;
    }
  }
  s = 0;
  for (i = 0; i < 512; i = i + 1) {
    tag = cells[i * 2];
    payload = cells[i * 2 + 1];
    // the guarded deref: speculation promotes the load above the tag test
    if (tag == 1) { s = s + *((int*) payload); } else { s = s + payload; }
    s = s % 1000000;
  }
  print_int(s);
  return 0;
}
|}

let () =
  let input = [| 5L |] in
  Fmt.pr "Speculation model comparison (Section 4.3 / Figure 9):@.@.";
  Fmt.pr "%-18s %10s %10s %8s %11s@." "config" "cycles" "kernel" "wild"
    "recoveries";
  let show name config =
    let compiled = Epic_core.Driver.compile ~config ~train:input source in
    let _, _, st = Epic_core.Driver.run compiled input in
    let open Epic_sim in
    Fmt.pr "%-18s %10.0f %10.0f %8d %11d@." name
      (Accounting.total st.Machine.acc)
      (Accounting.get st.Machine.acc Accounting.Kernel)
      st.Machine.c.Machine.wild_loads st.Machine.c.Machine.chk_recoveries
  in
  show "ILP-NS (no spec)" (Epic_core.Config.make Epic_core.Config.ILP_NS);
  show "ILP-CS general" (Epic_core.Config.make Epic_core.Config.ILP_CS);
  show "ILP-CS sentinel"
    {
      (Epic_core.Config.make Epic_core.Config.ILP_CS) with
      Epic_core.Config.spec_model = Epic_ilp.Speculate.Sentinel;
    };
  Fmt.pr
    "@.Under the general model every off-path execution of the promoted@.";
  Fmt.pr "load with an integer payload walks the page tables (kernel time);@.";
  Fmt.pr "the sentinel model defers them and pays chk.s recoveries instead.@."
