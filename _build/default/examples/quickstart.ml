(* Quickstart: compile a small mini-C program at every optimization level
   and watch the structural transformations pay off on the simulated
   Itanium 2.  Run with:  dune exec examples/quickstart.exe *)

let source =
  {|
int data[256];

int sum_if_positive() {
  int i; int s;
  s = 0;
  for (i = 0; i < 256; i = i + 1) {
    if (data[i] > 0) { s = s + data[i]; } else { s = s - 1; }
  }
  return s;
}

int main() {
  int i; int r; int total;
  for (i = 0; i < 256; i = i + 1) { data[i] = (i * 37 + input(0)) % 19 - 6; }
  total = 0;
  for (r = 0; r < 100; r = r + 1) { total = total + sum_if_positive(); }
  print_int(total);
  return 0;
}
|}

let () =
  let input = [| 7L |] in
  Fmt.pr "Compiling the quickstart program at each level:@.@.";
  Fmt.pr "%-8s %10s %10s %8s %8s %9s %6s@." "config" "cycles" "planned"
    "useful" "nops" "branches" "IPC";
  List.iter
    (fun level ->
      let config = Epic_core.Config.make level in
      let compiled = Epic_core.Driver.compile ~config ~train:input source in
      let _, out, st = Epic_core.Driver.run compiled input in
      let open Epic_sim in
      let total = Accounting.total st.Machine.acc in
      Fmt.pr "%-8s %10.0f %10.0f %8d %8d %9d %6.2f@."
        (Epic_core.Config.level_name level)
        total
        (Accounting.planned st.Machine.acc)
        st.Machine.c.Machine.useful_ops st.Machine.c.Machine.nop_ops
        st.Machine.c.Machine.branches
        (float_of_int st.Machine.c.Machine.useful_ops /. total);
      ignore out)
    [
      Epic_core.Config.Gcc_like;
      Epic_core.Config.O_NS;
      Epic_core.Config.ILP_NS;
      Epic_core.Config.ILP_CS;
    ];
  Fmt.pr "@.The ILP configurations if-convert the positive/negative diamond,@.";
  Fmt.pr "merge the loop into a superblock and unroll it: branches disappear@.";
  Fmt.pr "and the same work retires in far fewer cycles.@."
