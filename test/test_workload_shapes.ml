(* Shape assertions tying the workloads to their paper roles: these run the
   compiled binaries and check the *phenomena*, not exact numbers — the
   regression net for the reproduction itself. *)

let check = Alcotest.check
let cb = Alcotest.bool

let run_workload short level =
  let w = Epic_workloads.Suite.find_exn short in
  let config =
    {
      (Epic_core.Config.make level) with
      Epic_core.Config.pointer_analysis = w.Epic_workloads.Workload.pointer_analysis;
    }
  in
  let compiled =
    Epic_core.Driver.compile ~config ~train:w.Epic_workloads.Workload.train
      w.Epic_workloads.Workload.source
  in
  let _, _, st = Epic_core.Driver.run compiled w.Epic_workloads.Workload.reference in
  (compiled, st)

let cycles st = Epic_sim.Accounting.total st.Epic_sim.Machine.acc

let test_mcf_is_flat () =
  (* the paper's mcf: memory-bound, insensitive to ILP transformation *)
  let _, base = run_workload "mcf" Epic_core.Config.O_NS in
  let _, ilp = run_workload "mcf" Epic_core.Config.ILP_CS in
  let ratio = cycles base /. cycles ilp in
  check cb (Printf.sprintf "mcf ILP speedup ~1.0 (got %.2f)" ratio) true
    (ratio > 0.9 && ratio < 1.12)

let test_mcf_memory_bound () =
  let _, st = run_workload "mcf" Epic_core.Config.ILP_CS in
  let open Epic_sim in
  let ld = Accounting.get st.Machine.acc Accounting.Int_load_bubble in
  check cb "load stalls are a large fraction of mcf" true (ld > 0.25 *. cycles st)

let test_gcc_wild_loads_under_general () =
  (* Section 4.3: gcc loses kernel time to wild loads under ILP-CS/general *)
  let _, ns = run_workload "gcc" Epic_core.Config.ILP_NS in
  let _, cs = run_workload "gcc" Epic_core.Config.ILP_CS in
  let open Epic_sim in
  check cb "no wild loads without speculation" true (ns.Machine.c.Machine.wild_loads = 0);
  check cb "wild loads appear with general speculation" true
    (cs.Machine.c.Machine.wild_loads > 100);
  check cb "kernel time charged" true
    (Accounting.get cs.Machine.acc Accounting.Kernel > 0.05 *. cycles cs)

let test_crafty_gains_with_icache_cost () =
  (* Section 4.1: crafty speeds up overall while I-cache pressure rises *)
  let c_base, base = run_workload "crafty" Epic_core.Config.O_NS in
  let c_ilp, ilp = run_workload "crafty" Epic_core.Config.ILP_CS in
  check cb "crafty gains from ILP" true (cycles base /. cycles ilp > 1.1);
  check cb "code grew" true
    (c_ilp.Epic_core.Driver.transform_stats.Epic_core.Driver.code_bytes
    > c_base.Epic_core.Driver.transform_stats.Epic_core.Driver.code_bytes)

let test_branches_drop_with_regions () =
  let _, base = run_workload "bzip2" Epic_core.Config.O_NS in
  let _, ilp = run_workload "bzip2" Epic_core.Config.ILP_CS in
  let open Epic_sim in
  check cb "region formation removes dynamic branches" true
    (ilp.Machine.c.Machine.branches < base.Machine.c.Machine.branches)

let test_planned_exceeds_exploited () =
  (* Figure 2's defining relation on a compute benchmark *)
  let _, base = run_workload "gzip" Epic_core.Config.O_NS in
  let _, ilp = run_workload "gzip" Epic_core.Config.ILP_CS in
  let open Epic_sim in
  let planned_sp =
    Accounting.planned base.Machine.acc /. Accounting.planned ilp.Machine.acc
  in
  let exploited_sp = cycles base /. cycles ilp in
  check cb
    (Printf.sprintf "planned (%.2f) >= exploited (%.2f) - eps" planned_sp exploited_sp)
    true
    (planned_sp >= exploited_sp -. 0.08)

let test_eon_indirect_specialized () =
  let c, _ = run_workload "eon" Epic_core.Config.ILP_CS in
  check cb "eon's virtual calls were specialized" true
    (c.Epic_core.Driver.transform_stats.Epic_core.Driver.specialized_calls >= 1)

let test_sentinel_avoids_gcc_kernel_time () =
  let w = Epic_workloads.Suite.find_exn "gcc" in
  let run model =
    let config =
      { (Epic_core.Config.make Epic_core.Config.ILP_CS) with
        Epic_core.Config.spec_model = model }
    in
    let compiled =
      Epic_core.Driver.compile ~config ~train:w.Epic_workloads.Workload.train
        w.Epic_workloads.Workload.source
    in
    let _, _, st = Epic_core.Driver.run compiled w.Epic_workloads.Workload.reference in
    st
  in
  let open Epic_sim in
  let g = run Epic_ilp.Speculate.General in
  let s = run Epic_ilp.Speculate.Sentinel in
  check cb "sentinel eliminates the kernel walks" true
    (Accounting.get s.Machine.acc Accounting.Kernel
    < 0.2 *. Accounting.get g.Machine.acc Accounting.Kernel)

(* --big-inputs contract: [Workload.scale] swaps only the evaluation
   input (source and train untouched, so compiles share cache keys), the
   scaled runs simulate substantially more work, and workloads without a
   big variant pass through unchanged. *)
let test_big_inputs_scaling () =
  List.iter
    (fun short ->
      let w = Epic_workloads.Suite.find_exn short in
      let big = Epic_workloads.Workload.scale w in
      check Alcotest.string "source unchanged" w.Epic_workloads.Workload.source
        big.Epic_workloads.Workload.source;
      check cb "train unchanged" true
        (w.Epic_workloads.Workload.train = big.Epic_workloads.Workload.train);
      check cb "reference input actually scaled" true
        (w.Epic_workloads.Workload.reference
        <> big.Epic_workloads.Workload.reference))
    [ "gzip"; "mcf" ];
  (* a workload with no big variant scales to itself *)
  let twolf = Epic_workloads.Suite.find_exn "twolf" in
  check cb "no big variant: scale is the identity" true
    (Epic_workloads.Workload.scale twolf == twolf);
  (* the scaled gzip really is ~10x the simulated work *)
  let w = Epic_workloads.Suite.find_exn "gzip" in
  let config =
    {
      (Epic_core.Config.make Epic_core.Config.ILP_CS) with
      Epic_core.Config.pointer_analysis =
        w.Epic_workloads.Workload.pointer_analysis;
    }
  in
  let compiled =
    Epic_core.Driver.compile ~config ~train:w.Epic_workloads.Workload.train
      w.Epic_workloads.Workload.source
  in
  let groups input =
    let _, _, st = Epic_core.Driver.run compiled input in
    st.Epic_sim.Machine.c.Epic_sim.Machine.groups
  in
  let small = groups w.Epic_workloads.Workload.reference in
  let big =
    groups
      (Epic_workloads.Workload.scale w).Epic_workloads.Workload.reference
  in
  check cb
    (Printf.sprintf "scaled gzip simulates ~10x the groups (%d vs %d)" big
       small)
    true
    (big > 5 * small)

let suite =
  [
    ("big-inputs scale the evaluation input only", `Slow, test_big_inputs_scaling);
    ("mcf flat across levels", `Slow, test_mcf_is_flat);
    ("mcf memory bound", `Slow, test_mcf_memory_bound);
    ("gcc wild loads (general model)", `Slow, test_gcc_wild_loads_under_general);
    ("crafty gains, code grows", `Slow, test_crafty_gains_with_icache_cost);
    ("branches drop with regions", `Slow, test_branches_drop_with_regions);
    ("planned >= exploited", `Slow, test_planned_exceeds_exploited);
    ("eon indirect specialization", `Slow, test_eon_indirect_specialized);
    ("sentinel avoids gcc kernel time", `Slow, test_sentinel_avoids_gcc_kernel_time);
  ]
