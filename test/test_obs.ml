(* Observability-layer tests: JSON emitter/parser round-trips, trace ring
   invariants, sampling-profiler attribution against the exact accounting,
   the per-function/total accounting invariant, and the Metrics edge cases
   (empty geomean, zero-prediction branch rate). *)

open Epic_obs

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let cs = Alcotest.string
let cf = Alcotest.float 1e-9

(* --- JSON ----------------------------------------------------------------- *)

let roundtrip v =
  match Json.of_string (Json.to_string v) with
  | Ok v' -> v'
  | Error m -> Alcotest.failf "parse error on emitted JSON: %s" m

let test_json_string_escaping () =
  (* Every character class the emitter must escape: quote, backslash,
     control characters, plus multi-byte UTF-8 passed through verbatim. *)
  let nasty = "he said \"hi\\bye\"\n\ttab\r\x0c\x08 \x01 caf\xc3\xa9" in
  (match roundtrip (Json.Str nasty) with
  | Json.Str s -> check cs "escaped string round-trips" nasty s
  | _ -> Alcotest.fail "string did not parse back as a string");
  (* the emitted form must be ASCII-clean for control characters *)
  let emitted = Json.to_string (Json.Str "\x01\n") in
  check cs "control chars escaped" {|"\u0001\n"|} emitted

let test_json_unicode_escapes () =
  (* \uXXXX escapes, including a surrogate pair, decode to UTF-8. *)
  (match Json.of_string {|"\u0041\u00e9"|} with
  | Ok (Json.Str s) -> check cs "BMP escapes" "A\xc3\xa9" s
  | _ -> Alcotest.fail "unicode escape parse failed");
  match Json.of_string {|"\ud83d\ude00"|} with
  | Ok (Json.Str s) -> check cs "surrogate pair" "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "surrogate pair parse failed"

let test_json_numbers () =
  (match roundtrip (Json.Float 0.1) with
  | Json.Float f -> check cf "0.1 round-trips" 0.1 f
  | _ -> Alcotest.fail "float did not parse back as float");
  (match roundtrip (Json.Int (-123456789)) with
  | Json.Int n -> check ci "int round-trips" (-123456789) n
  | _ -> Alcotest.fail "int did not parse back as int");
  (* Non-finite floats have no JSON representation: emitted as null. *)
  check cs "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  check cs "inf is null" "null" (Json.to_string (Json.Float Float.infinity))

let test_json_structures () =
  let v =
    Json.Obj
      [
        ("a", Json.List [ Json.Int 1; Json.Bool true; Json.Null ]);
        ("b", Json.Obj [ ("nested", Json.Str "x") ]);
      ]
  in
  let v' = roundtrip v in
  (match Json.member "a" v' with
  | Some (Json.List [ Json.Int 1; Json.Bool true; Json.Null ]) -> ()
  | _ -> Alcotest.fail "list member mangled");
  match Json.member "b" v' with
  | Some b -> (
      match Option.bind (Json.member "nested" b) Json.to_string_opt with
      | Some "x" -> ()
      | _ -> Alcotest.fail "nested member mangled")
  | None -> Alcotest.fail "missing member"

(* --- trace ring ----------------------------------------------------------- *)

let test_trace_ring_wrap () =
  let tr = Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    Trace.record tr ~cycle:i ~kind:Trace.L1d_miss ~func:"f" ~addr:(Int64.of_int i)
  done;
  Trace.record tr ~cycle:11 ~kind:Trace.Br_mispredict ~func:"f" ~addr:0L;
  check ci "total counts every event" 11 (Trace.total tr);
  check ci "dropped = total - capacity" 7 (Trace.dropped tr);
  check ci "window bounded" 4 (List.length (Trace.events tr));
  (* counters stay exact even though the ring dropped most events *)
  check ci "per-kind count exact" 10 (Trace.count tr Trace.L1d_miss);
  check ci "other kind exact" 1 (Trace.count tr Trace.Br_mispredict);
  check ci "distinct kinds" 2 (Trace.distinct_kinds tr);
  (* oldest-first, and the retained window is the most recent events *)
  match Trace.events tr with
  | { Trace.cycle = 8; _ } :: _ -> ()
  | e :: _ -> Alcotest.failf "window starts at cycle %d, wanted 8" e.Trace.cycle
  | [] -> Alcotest.fail "empty window"

(* --- profiler attribution arithmetic -------------------------------------- *)

let test_profile_interval_attribution () =
  let p = Profile.create ~period:10 () in
  (* (0, 25] covers sample points 10 and 20 -> two samples for f *)
  Profile.tick p ~cycle:25 ~func:"f" ~block:"b0";
  check ci "two points in (0,25]" 2 (Profile.samples p);
  (* (25, 29] covers nothing *)
  Profile.tick p ~cycle:29 ~func:"g" ~block:"b0";
  check ci "no point in (25,29]" 2 (Profile.samples p);
  (* (29, 30] covers exactly 30 -> attributed to g *)
  Profile.tick p ~cycle:30 ~func:"g" ~block:"b1";
  check ci "boundary point lands" 3 (Profile.samples p);
  check cf "f share" (2. /. 3.) (Profile.func_share p "f");
  check cf "g cycles estimate" 10. (Profile.func_cycles_est p "g")

(* --- whole-system properties (one shared compile+run) --------------------- *)

let source =
  {|
int data[256];

int sum_if_positive() {
  int i; int s;
  s = 0;
  for (i = 0; i < 256; i = i + 1) {
    if (data[i] > 0) { s = s + data[i]; } else { s = s - 1; }
  }
  return s;
}

int main() {
  int i; int r; int total;
  for (i = 0; i < 256; i = i + 1) { data[i] = (i * 37 + input(0)) % 19 - 6; }
  total = 0;
  for (r = 0; r < 100; r = r + 1) { total = total + sum_if_positive(); }
  print_int(total);
  return 0;
}
|}

let input = [| 7L |]

(* One instrumented run shared by the system-level tests below. *)
let instrumented =
  lazy
    (let compiled =
       Epic_core.Driver.compile ~config:Epic_core.Config.ilp_cs ~train:input source
     in
     let trace = Trace.create () in
     let profile = Profile.create ~period:97 () in
     let code, out, st = Epic_core.Driver.run ~trace ~profile compiled input in
     let run =
       Epic_core.Metrics.of_machine ~workload:"quickstart" ~profile compiled st
         ~output_matches:true
     in
     (compiled, trace, profile, st, run, code, out))

let test_by_func_sums_to_totals () =
  let _, _, _, st, _, _, _ = Lazy.force instrumented in
  let open Epic_sim in
  let acc = st.Machine.acc in
  let n = Array.length acc.Accounting.totals in
  let sums = Array.make n 0. in
  Hashtbl.iter
    (fun _ bins -> Array.iteri (fun i v -> sums.(i) <- sums.(i) +. v) bins)
    acc.Accounting.by_func;
  List.iter
    (fun c ->
      let i = Accounting.index c in
      check (Alcotest.float 1e-6)
        (Printf.sprintf "category %s: per-function sum = total" (Accounting.name c))
        acc.Accounting.totals.(i) sums.(i))
    Accounting.all_categories

let test_run_json_roundtrip () =
  let _, _, _, _, run, _, _ = Lazy.force instrumented in
  let doc = roundtrip (Epic_core.Export.run_to_json run) in
  (match Option.bind (Json.member "workload" doc) Json.to_string_opt with
  | Some w -> check cs "workload survives" "quickstart" w
  | None -> Alcotest.fail "workload missing");
  let cats =
    match Json.member "categories" doc with
    | Some (Json.Obj kvs) -> kvs
    | _ -> Alcotest.fail "categories missing or not an object"
  in
  check ci "all 9 categories present" 9 (List.length cats);
  let open Epic_sim in
  List.iter
    (fun c ->
      match List.assoc_opt (Accounting.name c) cats with
      | Some v ->
          let f = Option.get (Json.to_float_opt v) in
          check (Alcotest.float 1e-6)
            (Printf.sprintf "category %s value survives" (Accounting.name c))
            run.Epic_core.Metrics.categories.(Accounting.index c)
            f
      | None -> Alcotest.failf "category %s missing" (Accounting.name c))
    Accounting.all_categories;
  (* spot-check a counter and the pass records through the round-trip *)
  (match
     Option.bind (Json.member "counters" doc) (Json.member "useful_ops")
   with
  | Some (Json.Int n) -> check ci "useful_ops survives" run.Epic_core.Metrics.useful_ops n
  | _ -> Alcotest.fail "useful_ops missing");
  match Option.bind (Json.member "passes" doc) Json.to_list_opt with
  | Some passes ->
      check cb "pass records present" true (List.length passes > 3);
      List.iter
        (fun p ->
          match Option.bind (Json.member "wall_s" p) Json.to_float_opt with
          | Some w -> check cb "pass wall time non-negative" true (w >= 0.)
          | None -> Alcotest.fail "pass missing wall_s")
        passes
  | None -> Alcotest.fail "passes missing"

let test_sampled_shares_match_exact () =
  let _, _, profile, st, _, _, _ = Lazy.force instrumented in
  let open Epic_sim in
  let acc = st.Machine.acc in
  let total = Accounting.total acc in
  let exact_share f =
    match Hashtbl.find_opt acc.Accounting.by_func f with
    | Some bins -> Array.fold_left ( +. ) 0. bins /. total
    | None -> 0.
  in
  let funcs = Hashtbl.fold (fun f _ l -> f :: l) acc.Accounting.by_func [] in
  check cb "run produced samples" true (Profile.samples profile > 100);
  List.iter
    (fun f ->
      let e = exact_share f in
      let s = Profile.func_share profile f in
      if abs_float (e -. s) > 0.05 then
        Alcotest.failf "%s: sampled share %.4f vs exact %.4f differs by > 5%%" f s e)
    funcs

let test_trace_events_emitted () =
  let _, trace, _, _, _, _, _ = Lazy.force instrumented in
  check cb "trace saw events" true (Trace.total trace > 0);
  check cb "several event kinds fire on quickstart" true
    (Trace.distinct_kinds trace >= 5);
  (* every retained event belongs to a simulated function *)
  List.iter
    (fun (e : Trace.event) ->
      check cb "event has a function" true (String.length e.Trace.func > 0))
    (Trace.events trace)

let test_disabled_observability_is_free () =
  (* Same program, no trace/profile: identical cycle count and output —
     observability off must not perturb the simulation. *)
  let compiled, _, _, st, _, code, out = Lazy.force instrumented in
  let code', out', st' = Epic_core.Driver.run compiled input in
  check ci "exit code unchanged" code code';
  check cs "output unchanged" out out';
  check (Alcotest.float 0.)
    "cycles identical with observability off"
    (Epic_sim.Accounting.total st.Epic_sim.Machine.acc)
    (Epic_sim.Accounting.total st'.Epic_sim.Machine.acc)

(* --- metrics edge cases --------------------------------------------------- *)

let test_geomean_edges () =
  check (Alcotest.float 1e-9) "geomean [2;8] = 4" 4.0
    (Epic_core.Metrics.geomean [ 2.; 8. ]);
  Alcotest.check_raises "geomean [] raises"
    (Invalid_argument "Metrics.geomean: empty list") (fun () ->
      ignore (Epic_core.Metrics.geomean []))

let test_branch_rate_no_predictions () =
  let _, _, _, _, run, _, _ = Lazy.force instrumented in
  let vacuous = { run with Epic_core.Metrics.predictions = 0; mispredictions = 0 } in
  check (Alcotest.float 0.) "no predictions -> vacuously perfect" 1.0
    (Epic_core.Metrics.branch_prediction_rate vacuous);
  check cb "real run rate is in (0,1]" true
    (let r = Epic_core.Metrics.branch_prediction_rate run in
     r > 0. && r <= 1.)

let suite =
  [
    Alcotest.test_case "json: string escaping" `Quick test_json_string_escaping;
    Alcotest.test_case "json: unicode escapes" `Quick test_json_unicode_escapes;
    Alcotest.test_case "json: numbers" `Quick test_json_numbers;
    Alcotest.test_case "json: structures" `Quick test_json_structures;
    Alcotest.test_case "trace: ring wrap keeps exact counts" `Quick test_trace_ring_wrap;
    Alcotest.test_case "profile: interval attribution" `Quick
      test_profile_interval_attribution;
    Alcotest.test_case "sim: per-function sums = totals" `Quick
      test_by_func_sums_to_totals;
    Alcotest.test_case "sim: run JSON round-trip" `Quick test_run_json_roundtrip;
    Alcotest.test_case "sim: sampled shares within 5% of exact" `Quick
      test_sampled_shares_match_exact;
    Alcotest.test_case "sim: trace events emitted" `Quick test_trace_events_emitted;
    Alcotest.test_case "sim: disabled observability is free" `Quick
      test_disabled_observability_is_free;
    Alcotest.test_case "metrics: geomean edge cases" `Quick test_geomean_edges;
    Alcotest.test_case "metrics: branch rate with no predictions" `Quick
      test_branch_rate_no_predictions;
  ]
