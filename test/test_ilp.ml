(* ILP / structural transformation tests: hyperblock if-conversion,
   superblock formation with tail duplication, loop peeling, unrolling and
   control speculation — each checked for its structural effect and for
   semantic preservation. *)

open Epic_ir

let check = Alcotest.check
let ci = Alcotest.int
let cs = Alcotest.string
let cb = Alcotest.bool

let run p input =
  let code, out, _ = Interp.run p input in
  (code, out)

let prepared ?(input = [||]) src =
  let p = Epic_frontend.Lower.compile_source src in
  ignore (Epic_analysis.Profile.profile_and_annotate p input);
  ignore (Epic_analysis.Points_to.analyze p);
  Epic_opt.Pipeline.run_classical p;
  Epic_analysis.Profile.reprofile p input;
  p

let diamond_src =
  {|
int g[64];
int main() {
  int i; int s;
  for (i = 0; i < 64; i = i + 1) { g[i] = (i * 11) % 13 - 5; }
  s = 0;
  for (i = 0; i < 64; i = i + 1) {
    if (g[i] > 0) { s = s + g[i]; } else { s = s - 1; }
  }
  print_int(s);
  return 0;
}
|}

let fill_then ~init src = init ^ src

let test_hyperblock_converts_diamond () =
  Epic_ilp.Hyperblock.reset_stats ();
  let p = prepared diamond_src in
  let before = run p [||] in
  Epic_ilp.Hyperblock.run p;
  Verify.check_program p;
  check cb "at least one region converted" true
    ((Epic_ilp.Hyperblock.stats ()).Epic_ilp.Hyperblock.regions_converted >= 1);
  check (Alcotest.pair ci cs) "semantics preserved" before (run p [||]);
  (* predicated instructions now exist *)
  let predicated = ref 0 in
  Program.iter_instrs p (fun i -> if i.Instr.pred <> None && i.Instr.op <> Opcode.Br then incr predicated);
  check cb "predicated code produced" true (!predicated > 0)

let test_hyperblock_unc_compare () =
  let p = prepared diamond_src in
  Epic_ilp.Hyperblock.run p;
  let unc = ref false in
  Program.iter_instrs p (fun i ->
      match i.Instr.op with
      | Opcode.Cmp (_, Opcode.Unc) -> unc := true
      | _ -> ());
  check cb "defining compare became unconditional type" true !unc

let test_hyperblock_skips_calls () =
  Epic_ilp.Hyperblock.reset_stats ();
  let p =
    prepared
      {|
int g;
int side() { g = g + 1; return g; }
int main() {
  int i; int s;
  s = 0;
  for (i = 0; i < 10; i = i + 1) {
    if (i % 2 == 0) { s = s + side(); } else { s = s - 1; }
  }
  print_int(s);
  return 0;
}
|}
  in
  let before = run p [||] in
  Epic_ilp.Hyperblock.run p;
  Verify.check_program p;
  check (Alcotest.pair ci cs) "still correct" before (run p [||]);
  (* no call may be predicated by the converter *)
  Program.iter_instrs p (fun i ->
      if Instr.is_call i then check cb "calls unpredicated" true (i.Instr.pred = None))

let test_superblock_forms_trace () =
  Epic_ilp.Superblock.reset_stats ();
  let p = prepared diamond_src in
  let before = run p [||] in
  Epic_ilp.Superblock.run p;
  Verify.check_program p;
  check cb "traces formed" true ((Epic_ilp.Superblock.stats ()).Epic_ilp.Superblock.traces_formed >= 1);
  check (Alcotest.pair ci cs) "semantics preserved" before (run p [||])

let test_superblock_tail_duplication () =
  Epic_ilp.Superblock.reset_stats ();
  (* a join block with two hot predecessors forces duplication *)
  let src =
    {|
int g[64];
int main() {
  int i; int s; int t;
  s = 0;
  for (i = 0; i < 200; i = i + 1) {
    if (g[i & 63] > 0) { t = i * 3; } else { t = i * 5; }
    s = s + t * 2 + 1;
    s = s % 65536;
  }
  print_int(s);
  return 0;
}
|}
  in
  let p = Epic_frontend.Lower.compile_source src in
  ignore (Epic_analysis.Profile.profile_and_annotate p [||]);
  Epic_opt.Pipeline.run_classical p;
  Epic_analysis.Profile.reprofile p [||];
  let before = run p [||] in
  (* keep the diamond from being if-converted so the superblock pass sees it *)
  Epic_ilp.Superblock.run p;
  Verify.check_program p;
  check (Alcotest.pair ci cs) "semantics preserved" before (run p [||])

let peel_src =
  {|
int data[128];
int work(int start) {
  int s; int q;
  s = 0;
  q = start;
  while (q > 0) { s = s + data[q & 127]; q = q - 150; }
  return s;
}
int main() {
  int t; int total; int i;
  for (i = 0; i < 128; i = i + 1) { data[i] = i; }
  total = 0;
  for (t = 0; t < 80; t = t + 1) { total = total + work((t * 13) % 140 + 1); }
  print_int(total);
  return 0;
}
|}

let test_peel_one_trip_loop () =
  Epic_ilp.Peel.reset_stats ();
  let p = prepared peel_src in
  ignore (Epic_opt.Inline.run p);
  Epic_analysis.Profile.reprofile p [||];
  let before = run p [||] in
  let n = Epic_ilp.Peel.run p in
  Verify.check_program p;
  check cb "a loop was peeled" true (n >= 1);
  check (Alcotest.pair ci cs) "semantics preserved" before (run p [||])

let test_peel_skips_high_trip_loops () =
  Epic_ilp.Peel.reset_stats ();
  let p =
    prepared
      {|
int main() {
  int i; int s;
  s = 0;
  for (i = 0; i < 1000; i = i + 1) { s = s + i; }
  print_int(s);
  return 0;
}
|}
  in
  let n = Epic_ilp.Peel.run p in
  check ci "1000-trip loop not peeled" 0 n

let unrollable_src =
  {|
int a[512];
int main() {
  int i; int s;
  for (i = 0; i < 512; i = i + 1) { a[i] = i % 9; }
  s = 0;
  for (i = 0; i < 512; i = i + 1) { s = s + a[i] * 3; }
  print_int(s);
  return 0;
}
|}

let test_unroll_hot_loop () =
  Epic_ilp.Unroll.reset_stats ();
  let p = prepared unrollable_src in
  Epic_ilp.Superblock.run p;
  Epic_analysis.Profile.reprofile p [||];
  let before = run p [||] in
  let n = Epic_ilp.Unroll.run p in
  Verify.check_program p;
  check cb "hot loops unrolled" true (n >= 1);
  check (Alcotest.pair ci cs) "semantics preserved" before (run p [||])

let union_src =
  {|
int rng;
int rand_next() { rng = rng * 1103515245 + 12345; return (rng >> 16) & 32767; }
int main() {
  int i; int s; int tag; int v; int *cells; int *boxed;
  rng = 3;
  cells = malloc(64 * 16);
  for (i = 0; i < 64; i = i + 1) {
    if (rand_next() % 3 == 0) {
      boxed = malloc(8);
      boxed[0] = i * 7;
      cells[i * 2] = 1;
      cells[i * 2 + 1] = (int) boxed;
    } else {
      cells[i * 2] = 0;
      cells[i * 2 + 1] = rand_next() + 600;
    }
  }
  s = 0;
  for (i = 0; i < 64; i = i + 1) {
    tag = cells[i * 2];
    v = cells[i * 2 + 1];
    if (tag == 1) { s = s + *((int*) v); } else { s = s + v; }
    s = s % 1000000;
  }
  print_int(s);
  return 0;
}
|}

let ilp_prepared src input =
  let p = prepared ~input src in
  ignore (Epic_ilp.Peel.run p);
  Epic_analysis.Profile.reprofile p input;
  Epic_ilp.Hyperblock.run p;
  Epic_analysis.Profile.reprofile p input;
  Epic_ilp.Superblock.run p;
  Epic_analysis.Profile.reprofile p input;
  ignore (Epic_ilp.Unroll.run p);
  Epic_opt.Pipeline.run_classical p;
  Epic_analysis.Profile.reprofile p input;
  p

let test_speculate_general_preserves () =
  Epic_ilp.Speculate.reset_stats ();
  let p = ilp_prepared union_src [||] in
  let before = run p [||] in
  Epic_ilp.Speculate.run p;
  Verify.check_program p;
  check cb "loads were speculated" true
    ((Epic_ilp.Speculate.stats ()).Epic_ilp.Speculate.promoted
     + (Epic_ilp.Speculate.stats ()).Epic_ilp.Speculate.marked
    > 0);
  check (Alcotest.pair ci cs) "general speculation preserves semantics" before (run p [||]);
  (* promoted wild loads produce NaT in the interpreter without faulting *)
  let _, _, st = Interp.run p [||] in
  check cb "no NaT consumed by effects" true (st.Interp.nat_faults = 0)

let test_speculate_sentinel_inserts_checks () =
  Epic_ilp.Speculate.reset_stats ();
  let p = ilp_prepared union_src [||] in
  let before = run p [||] in
  Epic_ilp.Speculate.run
    ~params:
      { Epic_ilp.Speculate.default_params with Epic_ilp.Speculate.model = Epic_ilp.Speculate.Sentinel }
    p;
  Verify.check_program p;
  let chks = ref 0 in
  Program.iter_instrs p (fun i ->
      match i.Instr.op with Opcode.Chk _ -> incr chks | _ -> ());
  check cb "chk.s present" true (!chks > 0);
  check ci "one chk per speculated load"
    ((Epic_ilp.Speculate.stats ()).Epic_ilp.Speculate.promoted
    + (Epic_ilp.Speculate.stats ()).Epic_ilp.Speculate.marked)
    !chks;
  check (Alcotest.pair ci cs) "sentinel speculation preserves semantics" before (run p [||])

let test_region_util_edge_probs () =
  let p = prepared diamond_src in
  let f = Program.find_func_exn p "main" in
  List.iter
    (fun (b : Block.t) ->
      let probs = Epic_ilp.Region_util.edge_probs f b in
      let total = Hashtbl.fold (fun _ p acc -> acc +. p) probs 0. in
      if Func.successors f b <> [] && b.Block.weight > 0. then
        check cb "edge probabilities sum to about 1" true (total > 0.9 && total < 1.1))
    f.Func.blocks

let test_full_ilp_pipeline_on_workloads () =
  (* end-to-end IR-level differential on two real workloads *)
  List.iter
    (fun short ->
      let w = Epic_workloads.Suite.find_exn short in
      let p = Epic_frontend.Lower.compile_source w.Epic_workloads.Workload.source in
      let before = run p w.Epic_workloads.Workload.train in
      let p2 = Epic_frontend.Lower.compile_source w.Epic_workloads.Workload.source in
      let p2 = ilp_prepared
        (ignore p2; w.Epic_workloads.Workload.source)
        w.Epic_workloads.Workload.train in
      Epic_ilp.Speculate.run p2;
      Verify.check_program p2;
      check (Alcotest.pair ci cs)
        (short ^ " ILP pipeline preserves semantics")
        before
        (run p2 w.Epic_workloads.Workload.train))
    [ "gzip"; "twolf" ]

let test_height_reduction () =
  Epic_ilp.Height.reset_stats ();
  let src =
    "int main() { int a; int b; int c; int d; int s; a = input(0); b = a * 3; c = a - 7; d = b ^ c; s = a + b + c + d + 5 + a + b + c; print_int(s); return 0; }"
  in
  let p = Epic_frontend.Lower.compile_source src in
  let before = run p [| 4L |] in
  Epic_opt.Pipeline.run_classical p;
  let changed = Epic_ilp.Height.run p in
  Verify.check_program p;
  check cb "a chain was rebalanced" true changed;
  check cb "stats recorded" true ((Epic_ilp.Height.stats ()).Epic_ilp.Height.chains_rebalanced >= 1);
  check (Alcotest.pair ci cs) "height reduction preserves semantics" before (run p [| 4L |]);
  (* the dependence height of the rebalanced block must not be larger *)
  ignore (Epic_opt.Dce.run p)

let test_height_skips_guarded () =
  (* a predicated add must break the chain *)
  let b = Block.create "x" in
  let vi n = Reg.virt n Reg.Int in
  let p9 = Reg.virt 9 Reg.Prd in
  let link d a t = Instr.create Opcode.Add ~dsts:[ vi d ] ~srcs:[ Operand.Reg (vi a); Operand.imm t ] in
  b.Block.instrs <-
    [ link 2 1 1; link 3 2 2;
      Instr.create ~pred:p9 Opcode.Add ~dsts:[ vi 4 ] ~srcs:[ Operand.Reg (vi 3); Operand.imm 3 ];
      link 5 4 4; link 6 5 5;
      Instr.create Opcode.Br_ret ~srcs:[ Operand.Reg (vi 6) ] ];
  let f = Func.create "t" [] in
  Func.append_block f b;
  let live = Epic_analysis.Liveness.compute f in
  let changed = Epic_ilp.Height.run_block f live b in
  check cb "guarded link breaks the chain" false changed

let test_data_speculation () =
  Epic_ilp.Data_spec.reset_stats ();
  let src =
    {|
int main() {
  int i; int s; int *a; int *b;
  a = malloc(2048);
  b = malloc(2048);
  for (i = 0; i < 256; i = i + 1) { a[i] = i; b[i] = 0; }
  s = 0;
  for (i = 1; i < 255; i = i + 1) {
    b[i] = s % 64;
    s = s + a[i + 1] * 3;
  }
  print_int(s);
  return 0;
}
|}
  in
  (* defeat points-to with pointer analysis off, as the paper's gap story *)
  let p0 = Epic_frontend.Lower.compile_source src in
  let expected =
    let c, o, _ = Interp.run p0 [||] in
    (c, o)
  in
  let config =
    {
      (Epic_core.Config.make Epic_core.Config.ILP_CS) with
      Epic_core.Config.enable_data_speculation = true;
      Epic_core.Config.pointer_analysis = false;
    }
  in
  let compiled = Epic_core.Driver.compile ~config ~train:[||] src in
  check cb "loads were advanced" true
    (compiled.Epic_core.Driver.transform_stats.Epic_core.Driver.advanced_loads > 0);
  let code, out, _ = Epic_core.Driver.run compiled [||] in
  check (Alcotest.pair ci cs) "data speculation preserves semantics" expected (code, out);
  (* the IR-level semantics (scheduled order!) must also hold: a hoisted
     ld.a that conflicts is repaired by its chk.a *)
  let ir = Epic_core.Driver.run_reference compiled [||] in
  check (Alcotest.pair ci cs) "interp agrees on scheduled IR" expected ir

let test_alat_recovery_semantics () =
  (* hand-built conflict: advance a load above a truly-aliasing store; the
     chk.a must restore the stored value *)
  Instr.reset_ids ();
  let p = Program.create () in
  let _ = Program.add_global p "g" ~size:16 in
  let f = Func.create "main" [] in
  let bld = Builder.create f in
  ignore (Builder.start_block bld "entry");
  let addr = Builder.fresh_int bld in
  Builder.lea bld addr "g" 0;
  ignore (Builder.store bld (Operand.reg addr) (Operand.imm 1));
  (* advanced load hoisted above the store in final order: *)
  let d = Builder.fresh_int bld in
  let ld = Builder.load ~spec:Opcode.Spec_advanced bld d (Operand.reg addr) in
  ld.Instr.attrs.Instr.speculated <- true;
  ignore (Builder.store bld (Operand.reg addr) (Operand.imm 42));
  let chk =
    Epic_ir.Builder.emit bld (Opcode.Chka Opcode.B8)
      ~srcs:[ Operand.reg d; Operand.reg addr ]
  in
  chk.Instr.attrs.Instr.check_reg <- Some d;
  ignore (Builder.call bld "print_int" [ Operand.reg d ]);
  Builder.ret bld [ Operand.imm 0 ];
  Program.add_func p f;
  Program.assign_addresses p;
  let _, out, st = Interp.run p [||] in
  check cs "chk.a recovered the stored value" "42" (String.trim out);
  check ci "one recovery" 1 st.Interp.alat_recoveries

let _ = fill_then

let suite =
  [
    ("hyperblock converts diamond", `Quick, test_hyperblock_converts_diamond);
    ("hyperblock unc compare", `Quick, test_hyperblock_unc_compare);
    ("hyperblock skips calls", `Quick, test_hyperblock_skips_calls);
    ("superblock forms trace", `Quick, test_superblock_forms_trace);
    ("superblock tail duplication", `Quick, test_superblock_tail_duplication);
    ("peel one-trip loop", `Quick, test_peel_one_trip_loop);
    ("peel skips high-trip loops", `Quick, test_peel_skips_high_trip_loops);
    ("unroll hot loop", `Quick, test_unroll_hot_loop);
    ("speculate general", `Quick, test_speculate_general_preserves);
    ("speculate sentinel checks", `Quick, test_speculate_sentinel_inserts_checks);
    ("edge probabilities", `Quick, test_region_util_edge_probs);
    ("height reduction", `Quick, test_height_reduction);
    ("data speculation end-to-end", `Quick, test_data_speculation);
    ("ALAT recovery semantics", `Quick, test_alat_recovery_semantics);
    ("height skips guarded", `Quick, test_height_skips_guarded);
    ("full ILP pipeline on workloads", `Slow, test_full_ilp_pipeline_on_workloads);
  ]
