(* Tests for the host-performance engineering layer (DESIGN.md §10): the
   word-granularity memory image with its page-handle cache, the predecoded
   label index in Func, the flattened interpreter register files, the cache
   set-index bitmask, and the host section of run exports.

   The common theme: every optimization here must be architecturally
   invisible, so each test checks the fast path against the semantics the
   slow path (or the seed implementation) defined. *)

open Epic_ir

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string
let c64 = Alcotest.int64

(* --- Memimage: word-granularity access and the page-handle cache --------- *)

let test_memimage_word_roundtrip () =
  let m = Memimage.create () in
  Memimage.map_range m 4096L 1024;
  Memimage.write m 4096L 8 0x1122334455667788L;
  check c64 "8-byte roundtrip" 0x1122334455667788L (Memimage.read m 4096L 8);
  (* little-endian: the byte view of the word must agree with byte reads *)
  check c64 "low byte" 0x88L (Memimage.read m 4096L 1);
  check c64 "high byte" 0x11L (Memimage.read m 4103L 1);
  (* a 1-byte write lands inside the word *)
  Memimage.write m 4100L 1 0xffL;
  check c64 "byte write visible in word" 0x112233ff55667788L (Memimage.read m 4096L 8);
  (* 4-byte write truncates to the low half, like the old byte loop *)
  Memimage.write m 4200L 4 0x1_0000_0001L;
  check c64 "4-byte write truncates" 1L (Memimage.read m 4200L 4)

let test_memimage_sign_extension () =
  let m = Memimage.create () in
  Memimage.map_range m 4096L 64;
  Memimage.write m 4096L 4 0xffffffffL;
  check c64 "in-page 32-bit read sign-extends" (-1L) (Memimage.read m 4096L 4);
  Memimage.write m 4096L 4 0x7fffffffL;
  check c64 "positive stays positive" 0x7fffffffL (Memimage.read m 4096L 4);
  check c64 "1-byte reads are unsigned" 0xffL
    (Memimage.write m 4096L 1 0xffL;
     Memimage.read m 4096L 1)

let test_memimage_page_crossing () =
  (* pages are 512 B; an 8-byte access at offset 508 straddles the edge and
     must take the byte-assembly slow path with identical semantics *)
  let m = Memimage.create () in
  Memimage.map_range m 4096L 2048;
  let edge = Int64.add 4096L 508L in
  Memimage.write m edge 8 0x0102030405060708L;
  check c64 "crossing 8-byte roundtrip" 0x0102030405060708L (Memimage.read m edge 8);
  (* bytes landed on both sides of the boundary *)
  check c64 "byte before edge" 0x08L (Memimage.read m edge 1);
  check c64 "byte after edge" 0x01L (Memimage.read m (Int64.add edge 7L) 1);
  (* crossing 4-byte read still sign-extends *)
  let edge4 = Int64.add 4096L 510L in
  Memimage.write m edge4 4 0xffffffffL;
  check c64 "crossing 32-bit read sign-extends" (-1L) (Memimage.read m edge4 4)

let test_memimage_handle_cache_interleaving () =
  (* alternating between two pages repeatedly must behave exactly like
     sequential access — the one-entry handle cache may never serve a stale
     page *)
  let m = Memimage.create () in
  Memimage.map_range m 4096L 4096;
  let a = 4096L and b = Int64.add 4096L 1024L in
  for i = 0 to 99 do
    Memimage.write m a 8 (Int64.of_int i);
    Memimage.write m b 8 (Int64.of_int (1000 + i));
    check c64 "page a current" (Int64.of_int i) (Memimage.read m a 8);
    check c64 "page b current" (Int64.of_int (1000 + i)) (Memimage.read m b 8)
  done;
  (* classification is orthogonal to the handle cache *)
  check cb "unmapped still unmapped" true
    (Memimage.classify m 0x999999L = Memimage.Unmapped)

(* --- Func: the predecoded label index vs the linear scan ----------------- *)

(* The seed implementation [find_block] replaced: first block in layout
   order bearing the label. *)
let oracle_find (f : Func.t) label =
  List.find_opt (fun (b : Block.t) -> b.Block.label = label) f.Func.blocks

let oracle_fallthrough (f : Func.t) (b : Block.t) =
  let rec go = function
    | x :: (y :: _ as tl) -> if x == b then Some y else go tl
    | [ _ ] | [] -> None
  in
  go f.Func.blocks

let assert_index_matches_oracle f =
  let labels =
    "nope" :: List.map (fun (b : Block.t) -> b.Block.label) f.Func.blocks
  in
  List.iter
    (fun l ->
      let got = Func.find_block f l and want = oracle_find f l in
      check cb ("find_block " ^ l ^ " agrees (some/none)")
        (Option.is_some want) (Option.is_some got);
      match (got, want) with
      | Some g, Some w -> check cb ("find_block " ^ l ^ " same block") true (g == w)
      | _ -> ())
    labels;
  List.iter
    (fun (b : Block.t) ->
      let got = Func.fallthrough f b and want = oracle_fallthrough f b in
      check cb ("fallthrough " ^ b.Block.label ^ " agrees") true
        (match (got, want) with
        | Some g, Some w -> g == w
        | None, None -> true
        | _ -> false))
    f.Func.blocks

let mk_func labels =
  let f = Func.create "t" [] in
  List.iter
    (fun l ->
      let b = Block.create l in
      Block.append b
        (Instr.create Opcode.Mov ~dsts:[ Reg.virt 1 Reg.Int ] ~srcs:[ Operand.imm 1 ]);
      Func.append_block f b)
    labels;
  f

let test_label_index_oracle () =
  let f = mk_func [ "a"; "b"; "c"; "d" ] in
  assert_index_matches_oracle f

let test_label_index_duplicate_labels () =
  (* duplicate labels: the index must keep the first, like List.find_opt;
     fallthrough from the alias block must still be exact *)
  let f = mk_func [ "a"; "dup"; "b"; "dup"; "c" ] in
  assert_index_matches_oracle f

let test_label_index_invalidation () =
  let f = mk_func [ "a"; "b"; "c" ] in
  assert_index_matches_oracle f;
  (* append_block replaces the list spine *)
  Func.append_block f (Block.create "e");
  assert_index_matches_oracle f;
  (* insert_after does too *)
  let b = Func.find_block_exn f "b" in
  Func.insert_after f b (Block.create "after_b");
  assert_index_matches_oracle f;
  (* direct reassignment of [blocks] (filtering, reordering) *)
  f.Func.blocks <-
    List.filter (fun (x : Block.t) -> x.Block.label <> "c") f.Func.blocks;
  assert_index_matches_oracle f;
  check cb "removed block gone" true (Func.find_block f "c" = None);
  f.Func.blocks <- List.rev f.Func.blocks;
  assert_index_matches_oracle f

(* --- Interp: flattened register files ------------------------------------ *)

(* Hand-built function using small virtual ids (1..9) — the bank sizing must
   follow the ids actually used, not assume Func.fresh_reg's 1000+ range. *)
let test_interp_small_virt_ids () =
  Instr.reset_ids ();
  let p = Program.create () in
  let f = Func.create "main" [] in
  let bld = Builder.create f in
  ignore (Builder.start_block bld "entry");
  let v1 = Reg.virt 1 Reg.Int and v2 = Reg.virt 2 Reg.Int in
  let vf = Reg.virt 3 Reg.Flt in
  let vp = Reg.virt 4 Reg.Prd and vpf = Reg.virt 9 Reg.Prd in
  Builder.movi bld v1 20;
  Builder.add bld v2 (Operand.Reg v1) (Operand.imm 22);
  Builder.binop bld Opcode.Fadd vf (Operand.Fimm 1.5) (Operand.Fimm 2.5);
  Builder.cmp bld Opcode.Lt vp vpf (Operand.Reg v1) (Operand.Reg v2);
  let v5 = Reg.virt 5 Reg.Int in
  (* predicated move exercises the predicate bank *)
  ignore (Builder.emit bld ~pred:vp Opcode.Mov ~dsts:[ v5 ] ~srcs:[ Operand.imm 7 ]);
  ignore (Builder.call bld "print_int" [ Operand.Reg v2 ]);
  ignore (Builder.call bld "print_int" [ Operand.Reg v5 ]);
  Builder.ret bld [ Operand.imm 0 ];
  Program.add_func p f;
  Program.assign_addresses p;
  let code, out, st = Interp.run p [||] in
  check ci "exit code" 0 code;
  check cs "output" "42\n7" (String.trim out);
  check ci "no nat faults" 0 st.Interp.nat_faults

(* Exact event-counter semantics on hand-built programs: the flattening must
   not move where NaT, wild-load and ALAT events are counted. *)
let test_interp_counters_wild_and_nat () =
  Instr.reset_ids ();
  let p = Program.create () in
  let f = Func.create "main" [] in
  let bld = Builder.create f in
  ignore (Builder.start_block bld "entry");
  let d = Builder.fresh_int bld in
  (* control-speculative load from unmapped memory: wild load, NaT dest *)
  ignore (Builder.load ~spec:Opcode.Spec_general bld d (Operand.imm 0x500000));
  (* storing the NaT value consumes it non-speculatively: one nat fault *)
  ignore (Builder.store bld (Operand.Reg Reg.sp) (Operand.Reg d));
  (* NaT propagates through arithmetic without faulting *)
  let e = Builder.fresh_int bld in
  Builder.add bld e (Operand.Reg d) (Operand.imm 1);
  ignore (Builder.call bld "print_int" [ Operand.imm 5 ]);
  Builder.ret bld [ Operand.imm 0 ];
  Program.add_func p f;
  Program.assign_addresses p;
  let code, out, st = Interp.run p [||] in
  check ci "exit code" 0 code;
  check cs "output" "5" (String.trim out);
  check ci "one wild load" 1 st.Interp.wild_loads;
  check ci "one nat fault" 1 st.Interp.nat_faults;
  check ci "no alat recoveries" 0 st.Interp.alat_recoveries

let test_interp_counters_alat () =
  (* ld.a / st / chk.a: the overlapping store invalidates the ALAT entry and
     the check reloads — exactly one recovery, and the reloaded value is the
     stored one *)
  Instr.reset_ids ();
  let p = Program.create () in
  let f = Func.create "main" [] in
  let bld = Builder.create f in
  ignore (Builder.start_block bld "entry");
  ignore (Builder.store bld (Operand.Reg Reg.sp) (Operand.imm 111));
  let d = Builder.fresh_int bld in
  ignore (Builder.load ~spec:Opcode.Spec_advanced bld d (Operand.Reg Reg.sp));
  ignore (Builder.store bld (Operand.Reg Reg.sp) (Operand.imm 222));
  ignore
    (Builder.emit bld (Opcode.Chka Opcode.B8) ~dsts:[]
       ~srcs:[ Operand.Reg d; Operand.Reg Reg.sp ]);
  ignore (Builder.call bld "print_int" [ Operand.Reg d ]);
  (* a second chk.a on the same (still absent) entry recovers again *)
  ignore
    (Builder.emit bld (Opcode.Chka Opcode.B8) ~dsts:[]
       ~srcs:[ Operand.Reg d; Operand.Reg Reg.sp ]);
  Builder.ret bld [ Operand.imm 0 ];
  Program.add_func p f;
  Program.assign_addresses p;
  let code, out, st = Interp.run p [||] in
  check ci "exit code" 0 code;
  check cs "reloaded the stored value" "222" (String.trim out);
  check ci "two alat recoveries" 2 st.Interp.alat_recoveries;
  (* disjoint store leaves the entry alone: zero recoveries *)
  Instr.reset_ids ();
  let p2 = Program.create () in
  let f2 = Func.create "main" [] in
  let bld2 = Builder.create f2 in
  ignore (Builder.start_block bld2 "entry");
  ignore (Builder.store bld2 (Operand.Reg Reg.sp) (Operand.imm 7));
  let d2 = Builder.fresh_int bld2 in
  ignore (Builder.load ~spec:Opcode.Spec_advanced bld2 d2 (Operand.Reg Reg.sp));
  let far = Builder.fresh_int bld2 in
  Builder.add bld2 far (Operand.Reg Reg.sp) (Operand.imm 64);
  ignore (Builder.store bld2 (Operand.Reg far) (Operand.imm 9));
  ignore
    (Builder.emit bld2 (Opcode.Chka Opcode.B8) ~dsts:[]
       ~srcs:[ Operand.Reg d2; Operand.Reg Reg.sp ]);
  ignore (Builder.call bld2 "print_int" [ Operand.Reg d2 ]);
  Builder.ret bld2 [ Operand.imm 0 ];
  Program.add_func p2 f2;
  Program.assign_addresses p2;
  let _, out2, st2 = Interp.run p2 [||] in
  check cs "original value survives" "7" (String.trim out2);
  check ci "no recovery on disjoint store" 0 st2.Interp.alat_recoveries

let test_interp_executed_count_exact () =
  Instr.reset_ids ();
  let p = Program.create () in
  let f = Func.create "main" [] in
  let bld = Builder.create f in
  ignore (Builder.start_block bld "entry");
  let v = Builder.fresh_int bld in
  Builder.movi bld v 1;
  Builder.add bld v (Operand.Reg v) (Operand.imm 2);
  Builder.ret bld [ Operand.Reg v ];
  Program.add_func p f;
  Program.assign_addresses p;
  let code, _, st = Interp.run p [||] in
  check ci "returns 3" 3 code;
  check ci "exactly three instructions executed" 3 st.Interp.executed

(* The whole-pipeline differential property: the flattened interpreter must
   agree with the unoptimized reference AND the machine simulator at every
   level (the same oracle the seed engines satisfied). *)
let qcheck_flat_interp_differential =
  QCheck.Test.make ~count:10
    ~name:"flat-register interpreter preserves seed semantics at every level"
    (QCheck.make ~print:(fun s -> s) Epic_core.Random_program.Gen.program)
    (fun src -> Epic_core.Random_program.agrees src [| 9L |])

(* --- Cache: set-index bitmask vs division -------------------------------- *)

let test_cache_mask_geometry () =
  let open Epic_sim in
  let c = Cache.create ~name:"l1" ~size:(16 * 1024) ~line:64 ~assoc:4 in
  check ci "sets" 64 c.Cache.sets;
  check ci "mask is sets-1" 63 c.Cache.sets_mask;
  (* non-power-of-two geometry keeps the division path *)
  let odd = Cache.create ~name:"odd" ~size:(3 * 64 * 2) ~line:64 ~assoc:2 in
  check ci "odd sets" 3 odd.Cache.sets;
  check ci "odd mask disabled" (-1) odd.Cache.sets_mask

let test_cache_access_probe_agree () =
  let open Epic_sim in
  List.iter
    (fun c ->
      (* addresses chosen to scatter over sets, including high addresses *)
      let addrs =
        List.init 200 (fun i ->
            Int64.add 0x7000_0000_0000_0000L (Int64.of_int (i * 4093 * 64)))
      in
      List.iter (fun a -> ignore (Cache.access c a)) addrs;
      (* the most recent [assoc] lines of every set survive; at minimum the
         very last access must probe as present *)
      let last = List.nth addrs 199 in
      check cb (c.Cache.name ^ ": probe sees last access") true (Cache.probe c last);
      (* an address never accessed misses *)
      check cb (c.Cache.name ^ ": unknown probe misses") false (Cache.probe c 0x123L);
      (* hit on immediate re-access *)
      check cb (c.Cache.name ^ ": re-access hits") true (Cache.access c last))
    [
      Cache.create ~name:"pow2" ~size:(8 * 1024) ~line:64 ~assoc:2;
      Cache.create ~name:"odd" ~size:(3 * 64 * 2) ~line:64 ~assoc:2;
    ]

(* --- Export: host section and its normalization -------------------------- *)

let test_export_host_section () =
  let w =
    Epic_workloads.Workload.make ~name:"000.tiny" ~short:"tiny"
      ~description:"host-section probe"
      ~source:"int main() { print_int(42); return 0; }" ~train:[||]
      ~reference:[||] ()
  in
  let r = Epic_core.Experiments.run_one w Epic_core.Config.Gcc_like in
  let open Epic_obs in
  let j = Epic_core.Export.run_to_json r in
  (match Json.member "host" j with
  | Some (Json.Obj _ as h) ->
      let field n =
        match Option.bind (Json.member n h) Json.to_float_opt with
        | Some v -> v
        | None -> Alcotest.fail ("host section missing " ^ n)
      in
      check cb "wall_s non-negative" true (field "wall_s" >= 0.);
      check cb "minor_words non-negative" true (field "minor_words" >= 0.);
      check cb "collections counted" true (field "minor_collections" >= 0.)
  | _ -> Alcotest.fail "run JSON has no host section");
  (* normalization drops the section whole, so normalized documents are
     byte-identical to pre-host exports *)
  let n = Epic_core.Export.normalize_time j in
  check cb "normalize removes host" true (Json.member "host" n = None);
  (* and still zeroes wall-clock fields elsewhere *)
  match Json.member "passes" n with
  | Some (Json.List (p :: _)) ->
      check cb "pass wall_s zeroed" true
        (Option.bind (Json.member "wall_s" p) Json.to_float_opt = Some 0.)
  | _ -> Alcotest.fail "run JSON has no passes"

let suite =
  [
    ("memimage word roundtrip", `Quick, test_memimage_word_roundtrip);
    ("memimage sign extension", `Quick, test_memimage_sign_extension);
    ("memimage page crossing", `Quick, test_memimage_page_crossing);
    ("memimage handle-cache interleaving", `Quick, test_memimage_handle_cache_interleaving);
    ("label index oracle", `Quick, test_label_index_oracle);
    ("label index duplicate labels", `Quick, test_label_index_duplicate_labels);
    ("label index invalidation", `Quick, test_label_index_invalidation);
    ("interp small virtual ids", `Quick, test_interp_small_virt_ids);
    ("interp wild/nat counters", `Quick, test_interp_counters_wild_and_nat);
    ("interp alat counters", `Quick, test_interp_counters_alat);
    ("interp executed count", `Quick, test_interp_executed_count_exact);
    QCheck_alcotest.to_alcotest qcheck_flat_interp_differential;
    ("cache mask geometry", `Quick, test_cache_mask_geometry);
    ("cache access/probe agree", `Quick, test_cache_access_probe_agree);
    ("export host section", `Quick, test_export_host_section);
  ]
