(* The causal-profiling subsystem: the virtual-speedup hook must scale
   exactly what it claims to (and nothing else), a no-op experiment must be
   byte-invisible, and the causal ranking of the cache/predictor stall
   categories must agree with the independent perfect-* sweep variants. *)

open Epic_sim
module Causal = Epic_causal.Causal
module Acc = Accounting

(* Random charge traces: (func 0..3, category 0..8, cycles 0..200). *)
let charge_trace_gen =
  QCheck.Gen.(
    list_size (int_range 1 300)
      (triple (int_range 0 3) (int_range 0 8) (int_range 0 200)))

let cat_of_index i = List.nth Acc.all_categories i

let funcs = [| "f0"; "f1"; "f2"; "f3" |]

let replay ?experiment trace =
  let t = Acc.create () in
  Acc.set_experiment t experiment;
  (* charge through per-function bins, like the simulator's hot path *)
  let bins = Array.map (Acc.bins t) funcs in
  List.iter
    (fun (fi, ci, cyc) -> Acc.charge_bins t bins.(fi) (cat_of_index ci) cyc)
    trace;
  t

let close msg a b =
  let tol = 1e-9 *. Float.max 1.0 (Float.max (abs_float a) (abs_float b)) in
  if abs_float (a -. b) > tol then
    QCheck.Test.fail_reportf "%s: %.17g vs %.17g" msg a b

(* Property: a category experiment scales exactly the targeted category's
   charges by (1 - s) — every total and every per-function bin — and
   leaves every other category bit-identical to the unscaled replay. *)
let qcheck_category_scaling =
  QCheck.Test.make ~count:100 ~name:"category experiment scales its bins by the factor"
    (QCheck.make
       QCheck.Gen.(triple charge_trace_gen (int_range 0 8) (int_range 0 100)))
    (fun (trace, ci, pct) ->
      let s = float_of_int pct /. 100. in
      let cat = cat_of_index ci in
      let plain = replay trace in
      let scaled =
        replay ~experiment:{ Acc.target = Acc.Target_category cat; speedup = s }
          trace
      in
      List.iter
        (fun c ->
          let i = Acc.index c in
          if c = cat then
            close (Acc.name c) ((1. -. s) *. plain.Acc.totals.(i))
              scaled.Acc.totals.(i)
          else if plain.Acc.totals.(i) <> scaled.Acc.totals.(i) then
            QCheck.Test.fail_reportf "untargeted %s changed" (Acc.name c))
        Acc.all_categories;
      Array.iter
        (fun f ->
          List.iter
            (fun c ->
              let i = Acc.index c in
              let p = (Acc.bins plain f).(i) and q = (Acc.bins scaled f).(i) in
              if c = cat then close (f ^ "/" ^ Acc.name c) ((1. -. s) *. p) q
              else if p <> q then
                QCheck.Test.fail_reportf "untargeted %s/%s changed" f
                  (Acc.name c))
            Acc.all_categories)
        funcs;
      true)

(* Property: a function experiment scales exactly the targeted function's
   bins (every category), leaving every other function bit-identical; the
   global totals drop by exactly what the function's bins dropped. *)
let qcheck_func_scaling =
  QCheck.Test.make ~count:100 ~name:"function experiment scales only that function"
    (QCheck.make
       QCheck.Gen.(triple charge_trace_gen (int_range 0 3) (int_range 0 100)))
    (fun (trace, fi, pct) ->
      let s = float_of_int pct /. 100. in
      let f = funcs.(fi) in
      let plain = replay trace in
      let scaled =
        replay ~experiment:{ Acc.target = Acc.Target_func f; speedup = s } trace
      in
      Array.iter
        (fun g ->
          List.iter
            (fun c ->
              let i = Acc.index c in
              let p = (Acc.bins plain g).(i) and q = (Acc.bins scaled g).(i) in
              if g = f then close (g ^ "/" ^ Acc.name c) ((1. -. s) *. p) q
              else if p <> q then
                QCheck.Test.fail_reportf "untargeted %s/%s changed" g
                  (Acc.name c))
            Acc.all_categories)
        funcs;
      List.iter
        (fun c ->
          let i = Acc.index c in
          let expected =
            plain.Acc.totals.(i) -. (s *. (Acc.bins plain f).(i))
          in
          close ("total " ^ Acc.name c) expected scaled.Acc.totals.(i))
        Acc.all_categories;
      true)

(* Property: a (function, category) experiment scales exactly the one bin
   at their intersection — that function's, that category's — leaving
   every other (function, category) bin bit-identical; the global total of
   the targeted category drops by exactly what the bin dropped, all other
   totals are untouched. *)
let qcheck_func_category_scaling =
  QCheck.Test.make ~count:100
    ~name:"func-category experiment scales exactly the one bin"
    (QCheck.make
       QCheck.Gen.(
         pair charge_trace_gen
           (triple (int_range 0 3) (int_range 0 8) (int_range 0 100))))
    (fun (trace, (fi, ci, pct)) ->
      let s = float_of_int pct /. 100. in
      let f = funcs.(fi) and cat = cat_of_index ci in
      let plain = replay trace in
      let scaled =
        replay
          ~experiment:{ Acc.target = Acc.Target_func_category (f, cat); speedup = s }
          trace
      in
      Array.iter
        (fun g ->
          List.iter
            (fun c ->
              let i = Acc.index c in
              let p = (Acc.bins plain g).(i) and q = (Acc.bins scaled g).(i) in
              if g = f && c = cat then
                close (g ^ "/" ^ Acc.name c) ((1. -. s) *. p) q
              else if p <> q then
                QCheck.Test.fail_reportf "untargeted %s/%s changed" g (Acc.name c))
            Acc.all_categories)
        funcs;
      List.iter
        (fun c ->
          let i = Acc.index c in
          let expected =
            if c = cat then
              plain.Acc.totals.(i) -. (s *. (Acc.bins plain f).(i))
            else plain.Acc.totals.(i)
          in
          if c = cat then close ("total " ^ Acc.name c) expected scaled.Acc.totals.(i)
          else if plain.Acc.totals.(i) <> scaled.Acc.totals.(i) then
            QCheck.Test.fail_reportf "untargeted total %s changed" (Acc.name c))
        Acc.all_categories;
      true)

(* Random experiments over the replay vocabulary: any target kind, any
   factor in [0, 1]. *)
let experiment_gen =
  QCheck.Gen.(
    map
      (fun (kind, fi, ci, pct) ->
        let s = float_of_int pct /. 100. in
        let f = funcs.(fi) and cat = cat_of_index ci in
        let target =
          match kind with
          | 0 -> Acc.Target_func f
          | 1 -> Acc.Target_category cat
          | _ -> Acc.Target_func_category (f, cat)
        in
        { Acc.target; speedup = s })
      (quad (int_range 0 2) (int_range 0 3) (int_range 0 8) (int_range 0 100)))

(* Replay a charge trace through a fused experiment set, mimicking the
   simulator's hot path: per-function bin rows refreshed on every function
   switch, one charge_set per event. *)
let replay_set exps trace =
  let s = Acc.make_set exps in
  let bs = Array.make (Acc.set_size s) [||] in
  let cur = ref (-1) in
  List.iter
    (fun (fi, ci, cyc) ->
      if !cur <> fi then begin
        Acc.set_bins s bs funcs.(fi);
        cur := fi
      end;
      Acc.charge_set s bs (cat_of_index ci) cyc)
    trace;
  Acc.set_accounts s

(* Property (the tentpole's core claim, DESIGN.md §14): an N-experiment
   fused replay is bit-for-bit equal to the N serial single-experiment
   replays — every total and every per-function bin, bitwise. *)
let qcheck_fused_equals_serial =
  QCheck.Test.make ~count:100
    ~name:"fused N-experiment replay == N serial replays, bitwise"
    (QCheck.make
       QCheck.Gen.(
         pair charge_trace_gen (list_size (int_range 1 5) experiment_gen)))
    (fun (trace, exps) ->
      let fused = replay_set exps trace in
      List.iteri
        (fun i e ->
          let serial = replay ~experiment:e trace in
          List.iter
            (fun c ->
              let k = Acc.index c in
              if
                Int64.bits_of_float fused.(i).Acc.totals.(k)
                <> Int64.bits_of_float serial.Acc.totals.(k)
              then
                QCheck.Test.fail_reportf "experiment %d: total %s differs" i
                  (Acc.name c))
            Acc.all_categories;
          Array.iter
            (fun f ->
              let bf = Acc.bins fused.(i) f and bs = Acc.bins serial f in
              Array.iteri
                (fun k v ->
                  if Int64.bits_of_float v <> Int64.bits_of_float bs.(k) then
                    QCheck.Test.fail_reportf "experiment %d: bin %s/%d differs"
                      i f k)
                bf)
            funcs)
        exps;
      true)

(* The same identity end-to-end through the machine: one fused gzip
   simulation carrying mixed-kind experiments must reproduce each serial
   [?experiment] run bitwise, and leave its own host accounting
   bit-identical to a plain run. *)
let test_fused_machine_identity () =
  let w = Epic_workloads.Suite.find_exn "gzip" in
  let config = Epic_core.Experiments.config_for w Epic_core.Config.ILP_CS in
  let compiled =
    Epic_core.Driver.compile ~config ~train:w.Epic_workloads.Workload.train
      w.Epic_workloads.Workload.source
  in
  let input = w.Epic_workloads.Workload.reference in
  let exps =
    [
      { Acc.target = Acc.Target_category Acc.Front_end; speedup = 1.0 };
      { Acc.target = Acc.Target_category Acc.Br_mispredict; speedup = 0.5 };
      { Acc.target = Acc.Target_func "deflate"; speedup = 0.25 };
      { Acc.target = Acc.Target_func_category ("deflate", Acc.Unstalled);
        speedup = 0.75;
      };
    ]
  in
  let code_f, out_f, st_f =
    Epic_core.Driver.run ~experiments:exps compiled input
  in
  let fused = Epic_sim.Machine.fused_accounts st_f in
  Alcotest.(check int) "one fused account per experiment" (List.length exps)
    (Array.length fused);
  List.iteri
    (fun i e ->
      let code_s, out_s, st_s =
        Epic_core.Driver.run ~experiment:e compiled input
      in
      Alcotest.(check int) "exit code" code_s code_f;
      Alcotest.(check string) "output" out_s out_f;
      Array.iteri
        (fun k v ->
          Alcotest.(check int64)
            (Printf.sprintf "experiment %d category %d bitwise" i k)
            (Int64.bits_of_float st_s.Epic_sim.Machine.acc.Acc.totals.(k))
            (Int64.bits_of_float v))
        fused.(i).Acc.totals)
    exps;
  let _, _, st_plain = Epic_core.Driver.run compiled input in
  Array.iteri
    (fun k v ->
      Alcotest.(check int64)
        (Printf.sprintf "host category %d untouched by the fused set" k)
        (Int64.bits_of_float st_plain.Epic_sim.Machine.acc.Acc.totals.(k))
        (Int64.bits_of_float v))
    st_f.Epic_sim.Machine.acc.Acc.totals

(* Checkpoint-prefix reuse under experiments: resuming a mid-run snapshot
   with a fused set applies each experiment to the checkpointed past
   (Accounting.apply_experiment_to_past) — totals must land within an ulp
   (1e-9 relative) of the straight-through fused run, and exactly when
   the target never charged before the capture point. *)
let test_fused_checkpoint_resume () =
  let w = Epic_workloads.Suite.find_exn "gzip" in
  let config = Epic_core.Experiments.config_for w Epic_core.Config.ILP_CS in
  let compiled =
    Epic_core.Driver.compile ~config ~train:w.Epic_workloads.Workload.train
      w.Epic_workloads.Workload.source
  in
  let input = w.Epic_workloads.Workload.reference in
  let _, _, st_plain = Epic_core.Driver.run compiled input in
  let at = st_plain.Epic_sim.Machine.c.Epic_sim.Machine.groups / 2 in
  Alcotest.(check bool) "program long enough to split" true (at > 0);
  let _, _, st_ck = Epic_core.Driver.run ~checkpoint_at:at compiled input in
  let ck =
    match st_ck.Epic_sim.Machine.ck_saved with
    | Some ck -> ck
    | None -> Alcotest.fail "no checkpoint captured"
  in
  let exps =
    [
      { Acc.target = Acc.Target_category Acc.Br_mispredict; speedup = 0.5 };
      { Acc.target = Acc.Target_func "deflate"; speedup = 1.0 };
    ]
  in
  let code_f, out_f, st_full =
    Epic_core.Driver.run ~experiments:exps compiled input
  in
  let code_r, out_r, st_res = Epic_core.Driver.resume ~experiments:exps compiled ck in
  Alcotest.(check int) "exit code" code_f code_r;
  Alcotest.(check string) "output" out_f out_r;
  let full = Epic_sim.Machine.fused_accounts st_full in
  let res = Epic_sim.Machine.fused_accounts st_res in
  let close_a msg a b =
    let tol = 1e-9 *. Float.max 1.0 (Float.max (abs_float a) (abs_float b)) in
    Alcotest.(check bool)
      (Printf.sprintf "%s (%.17g vs %.17g)" msg a b)
      true
      (abs_float (a -. b) <= tol)
  in
  List.iteri
    (fun i _ ->
      Array.iteri
        (fun k v ->
          close_a
            (Printf.sprintf "experiment %d category %d within ulp" i k)
            full.(i).Acc.totals.(k) v)
        res.(i).Acc.totals)
    exps

(* A no-op experiment (speedup 0) must leave the whole exported run
   document byte-identical to a run without any experiment — the
   acceptance guarantee that an idle hook costs nothing observable. *)
let test_noop_experiment_identity () =
  let w = Epic_workloads.Suite.find_exn "gzip" in
  let config = Epic_core.Experiments.config_for w Epic_core.Config.ILP_CS in
  let compiled =
    Epic_core.Driver.compile ~config ~train:w.Epic_workloads.Workload.train
      w.Epic_workloads.Workload.source
  in
  let doc ?experiment () =
    let code, out, st =
      Epic_core.Driver.run ?experiment compiled
        w.Epic_workloads.Workload.reference
    in
    let run =
      Epic_core.Metrics.of_machine ~workload:"gzip" compiled st
        ~output_matches:(code = 0 && String.length out >= 0)
    in
    Epic_obs.Json.to_string ~pretty:true
      (Epic_core.Export.normalize_time (Epic_core.Export.run_to_json run))
  in
  let plain = doc () in
  let noop =
    doc
      ~experiment:
        { Acc.target = Acc.Target_category Acc.Front_end; speedup = 0.0 }
      ()
  in
  Alcotest.(check string) "no-op experiment: byte-identical export" plain noop

let test_experiment_validation () =
  let t = Acc.create () in
  Alcotest.check_raises "speedup > 1 rejected"
    (Invalid_argument "Accounting.set_experiment: speedup must be in [0, 1]")
    (fun () ->
      Acc.set_experiment t
        (Some { Acc.target = Acc.Target_func "f"; speedup = 1.5 }));
  Acc.set_experiment t
    (Some { Acc.target = Acc.Target_func "f"; speedup = 0.0 });
  Alcotest.(check bool) "no-op experiment is inactive" false
    (Acc.experiment_active t);
  Acc.set_experiment t
    (Some { Acc.target = Acc.Target_func "f"; speedup = 0.5 });
  Alcotest.(check bool) "half-speedup experiment is active" true
    (Acc.experiment_active t)

let test_parse_and_plan () =
  (match Causal.parse_target "front-end" with
  | Causal.Target_category Acc.Front_end -> ()
  | _ -> Alcotest.fail "front-end should parse as a category");
  (match Causal.parse_target "deflate" with
  | Causal.Target_func "deflate" -> ()
  | _ -> Alcotest.fail "deflate should parse as a function");
  Alcotest.(check string) "round-trip" "br-mispredict"
    (Causal.target_name (Causal.parse_target "br-mispredict"));
  (match Causal.parse_target "deflate:front-end" with
  | Causal.Target_func_category ("deflate", Acc.Front_end) -> ()
  | _ -> Alcotest.fail "deflate:front-end should parse as a (func, category) pair");
  Alcotest.(check string) "func:category round-trip" "deflate:front-end"
    (Causal.target_name (Causal.parse_target "deflate:front-end"));
  (match Causal.parse_target "deflate:nonsense" with
  | Causal.Target_func "deflate:nonsense" -> ()
  | _ -> Alcotest.fail "an unknown category suffix falls back to a function name");
  let categories = Array.make 9 0. in
  categories.(Acc.index Acc.Unstalled) <- 1000.;
  categories.(Acc.index Acc.Front_end) <- 50.;
  categories.(Acc.index Acc.Rse) <- 10.;
  let targets =
    Causal.plan ~top_funcs:2
      ~prof_by_func:[ ("hot", 90); ("warm", 9); ("cold", 1) ]
      ~categories ()
  in
  Alcotest.(check (list string))
    "top functions then nonzero categories, unstalled excluded"
    [ "hot"; "warm"; "front-end"; "rse" ]
    (List.map Causal.target_name targets);
  (* split planner: per-(function, category) targets for the top
     [split_funcs] functions, one per nonzero non-unstalled bin *)
  let hot_bins = Array.make 9 0. in
  hot_bins.(Acc.index Acc.Unstalled) <- 800.;
  hot_bins.(Acc.index Acc.Front_end) <- 40.;
  let warm_bins = Array.make 9 0. in
  warm_bins.(Acc.index Acc.Rse) <- 10.;
  let split =
    Causal.plan ~split_funcs:2
      ~func_bins:[ ("hot", hot_bins); ("warm", warm_bins) ]
      ~top_funcs:2
      ~prof_by_func:[ ("hot", 90); ("warm", 9); ("cold", 1) ]
      ~categories ()
  in
  Alcotest.(check (list string))
    "split plan appends per-(func, category) targets, unstalled excluded"
    [ "hot"; "warm"; "front-end"; "rse"; "hot:front-end"; "warm:rse" ]
    (List.map Causal.target_name split)

(* The full-matrix invariants, one bounded causal run on gzip + twolf:
   - per target, program speedup is linear in the factor (the accounting
     model scales charges exactly), so the slope is trustworthy;
   - the factor-1.0 category deltas equal the perfect-* sweep savings
     exactly (two independent suppression mechanisms, same charges);
   - the causal ranking of front-end vs br-mispredict matches the sweep
     delta ordering on every workload. *)
let test_causal_vs_perfect_sweep () =
  let targets =
    [
      Causal.Target_category Acc.Front_end;
      Causal.Target_category Acc.Br_mispredict;
    ]
  in
  let r =
    Causal.run ~targets ~factors:[ 0.25; 0.5; 1.0 ] ~jobs:2
      ~workloads:[ "gzip"; "twolf" ] ()
  in
  Alcotest.(check (list pass)) "no output mismatches" []
    (Causal.mismatches r);
  List.iter
    (fun wr ->
      Alcotest.(check int)
        (wr.Causal.c_workload ^ ": both targets present")
        2
        (List.length wr.Causal.c_curves);
      List.iter
        (fun k ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: linear in the factor (%.2e)"
               wr.Causal.c_workload
               (Causal.target_name k.Causal.k_target)
               k.Causal.k_linearity)
            true
            (k.Causal.k_linearity < 1e-6);
          (* slope = local share: scaling a category's charges by (1-s)
             removes exactly s * share of the total *)
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: slope matches local share"
               wr.Causal.c_workload
               (Causal.target_name k.Causal.k_target))
            true
            (abs_float (k.Causal.k_slope -. k.Causal.k_local_share) < 1e-6))
        wr.Causal.c_curves)
    r.Causal.r_reports;
  let rows = Causal.check_against_sweep ~jobs:2 r in
  Alcotest.(check int) "one check row per workload" 2 (List.length rows);
  List.iter
    (fun row ->
      let near msg a b =
        Alcotest.(check bool)
          (Printf.sprintf "%s: %s (%.0f vs %.0f)" row.Causal.ck_workload msg a b)
          true
          (abs_float (a -. b) <= 1e-9 *. Float.max 1.0 (abs_float b))
      in
      (* exact agreement: the factor-1.0 experiment and the perfect-*
         variant suppress the same charges by independent mechanisms *)
      near "causal front-end == perfect-icache saving" row.Causal.ck_causal_fe
        row.Causal.ck_sweep_fe;
      near "causal br-mispredict == perfect-predictor saving"
        row.Causal.ck_causal_bp row.Causal.ck_sweep_bp;
      Alcotest.(check bool)
        (row.Causal.ck_workload ^ ": rankings agree")
        true row.Causal.ck_order_ok)
    rows

(* Per-(function, category) targets through the full pipeline: a bounded
   causal run with split targets, then the factor-1.0 local-exactness
   cross-check — the measured Δcycles at factor 1.0 must equal the
   baseline cycles charged to each target, exactly, for function,
   category AND (function, category) target kinds alike. *)
let test_func_category_local_exactness () =
  let r =
    Causal.run ~split_funcs:2 ~top_funcs:1 ~factors:[ 0.5; 1.0 ] ~jobs:2
      ~workloads:[ "gzip" ] ()
  in
  Alcotest.(check (list pass)) "no output mismatches" [] (Causal.mismatches r);
  let rows = Causal.check_local_exactness r in
  let fc_rows =
    List.filter
      (fun row ->
        match row.Causal.lk_target with
        | Causal.Target_func_category _ -> true
        | _ -> false)
      rows
  in
  Alcotest.(check bool)
    "at least one (function, category) target was planned and checked" true
    (fc_rows <> []);
  List.iter
    (fun row ->
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s: factor-1.0 delta == local charges (%.0f vs %.0f)"
           row.Causal.lk_workload
           (Causal.target_name row.Causal.lk_target)
           row.Causal.lk_causal row.Causal.lk_local)
        true row.Causal.lk_ok)
    rows

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_category_scaling;
    QCheck_alcotest.to_alcotest qcheck_func_scaling;
    QCheck_alcotest.to_alcotest qcheck_func_category_scaling;
    QCheck_alcotest.to_alcotest qcheck_fused_equals_serial;
    Alcotest.test_case "fused machine run == serial runs, bitwise" `Slow
      test_fused_machine_identity;
    Alcotest.test_case "checkpoint resume under experiments" `Slow
      test_fused_checkpoint_resume;
    Alcotest.test_case "no-op experiment is byte-invisible" `Slow
      test_noop_experiment_identity;
    Alcotest.test_case "experiment validation and activity" `Quick
      test_experiment_validation;
    Alcotest.test_case "target parsing and the planner" `Quick
      test_parse_and_plan;
    Alcotest.test_case "causal ranking matches perfect-* sweep" `Slow
      test_causal_vs_perfect_sweep;
    Alcotest.test_case "(function, category) targets are locally exact" `Slow
      test_func_category_local_exactness;
  ]
