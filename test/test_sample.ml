(* Sampled simulation and checkpoint/restore.

   Two properties anchor the subsystem (ISSUE 8 acceptance):

   - checkpoint save -> restore is *bit-identical* to uninterrupted
     simulation — exit code, output, total cycles, every accounting
     category and every retired-op counter — proven on the gzip workload
     and by qcheck over random programs;
   - sampled extrapolation error on the full 12-workload suite stays
     within the CI-enforced budget (geomean total error <= 2%, every
     per-category error <= 5%), with architecturally exact output. *)

module Driver = Epic_core.Driver
module Machine = Epic_sim.Machine
module Accounting = Epic_sim.Accounting
module Workload = Epic_workloads.Workload

let exact = Alcotest.float 0.

(* Full run vs (checkpoint_at -> resume): every observable equal, bit for
   bit.  Returns false only on divergence; a program too short to reach
   [at] groups has nothing to restore and passes vacuously. *)
let roundtrip_identical ?fuel ~at compiled input =
  let code0, out0, st0 = Driver.run ?fuel compiled input in
  let _, _, stc = Driver.run ?fuel ~checkpoint_at:at compiled input in
  match Machine.checkpoint stc with
  | None -> true
  | Some ck ->
      let code1, out1, st1 = Driver.resume compiled ck in
      code0 = code1 && out0 = out1
      && Accounting.total st0.Machine.acc = Accounting.total st1.Machine.acc
      && st0.Machine.acc.Accounting.totals = st1.Machine.acc.Accounting.totals
      && st0.Machine.c.Machine.useful_ops = st1.Machine.c.Machine.useful_ops
      && st0.Machine.c.Machine.squashed_ops = st1.Machine.c.Machine.squashed_ops
      && st0.Machine.c.Machine.nop_ops = st1.Machine.c.Machine.nop_ops
      && st0.Machine.c.Machine.branches = st1.Machine.c.Machine.branches
      && st0.Machine.c.Machine.groups = st1.Machine.c.Machine.groups
      && st0.Machine.l1d.Epic_sim.Cache.misses
         = st1.Machine.l1d.Epic_sim.Cache.misses
      && st0.Machine.dtlb.Epic_sim.Tlb.misses
         = st1.Machine.dtlb.Epic_sim.Tlb.misses
      && st0.Machine.rse.Epic_sim.Rse.spills = st1.Machine.rse.Epic_sim.Rse.spills

let gzip () = Option.get (Epic_workloads.Suite.find "gzip")

let compile_workload w =
  let config = Epic_core.Experiments.config_for w Epic_core.Config.ILP_CS in
  Driver.compile ~config ~train:w.Workload.train w.Workload.source

(* gzip, checkpointed mid-run: the restore must replay to the same bits. *)
let test_roundtrip_gzip () =
  let w = gzip () in
  let compiled = compile_workload w in
  List.iter
    (fun at ->
      Alcotest.(check bool)
        (Printf.sprintf "restore at %d groups bit-identical" at)
        true
        (roundtrip_identical ~at compiled w.Workload.reference))
    [ 1000; 65536 ]

(* The checkpoint itself records its capture position. *)
let test_checkpoint_position () =
  let w = gzip () in
  let compiled = compile_workload w in
  let _, _, stc = Driver.run ~checkpoint_at:1000 compiled w.Workload.reference in
  match Machine.checkpoint stc with
  | None -> Alcotest.fail "gzip retires far more than 1000 groups"
  | Some ck ->
      Alcotest.(check int) "captured at the armed group" 1000
        (Machine.checkpoint_groups ck);
      Alcotest.(check bool) "capture cycle is positive" true
        (Machine.checkpoint_cycle ck > 0)

(* qcheck: the round-trip property over random terminating programs.
   [Driver.compile]'s training run has no fuel guard (real workloads
   terminate), so skip generated programs whose reference run isn't
   quickly bounded — same discipline as test_serve's qcheck. *)
let roundtrip_random =
  QCheck.Test.make ~count:25 ~name:"checkpoint restore bit-identical"
    (QCheck.make ~print:(fun s -> s) Epic_core.Random_program.Gen.program)
    (fun src ->
      match
        Epic_core.Random_program.reference ~fuel:200_000 src [| 3L; 7L |]
      with
      | exception _ -> true
      | _ ->
          let config = Epic_core.Config.make Epic_core.Config.ILP_CS in
          let compiled = Driver.compile ~config ~train:[| 3L; 7L |] src in
          roundtrip_identical ~fuel:2_000_000 ~at:64 compiled [| 3L; 7L |])

(* Sampling and checkpointing drive the same phase machinery in
   incompatible directions; the combination must be rejected loudly. *)
let test_sampling_checkpoint_exclusive () =
  let w = gzip () in
  let compiled = compile_workload w in
  Alcotest.check_raises "sampling + checkpoint_at rejected"
    (Invalid_argument "Machine.run: sampling and checkpoint_at are exclusive")
    (fun () ->
      ignore
        (Driver.run ~sampling:Epic_sim.Sampling.default_plan ~checkpoint_at:1000
           compiled w.Workload.reference))

(* The accuracy harness over the full 12-workload suite: the same gate CI
   enforces on a 3-workload subset, here on everything. *)
let test_accuracy_budget () =
  let rep = Epic_sample.Sample.run ~jobs:1 () in
  Alcotest.(check int) "all 12 workloads measured" 12
    (List.length rep.Epic_sample.Sample.rows);
  List.iter
    (fun (r : Epic_sample.Sample.row) ->
      Alcotest.(check bool)
        (r.Epic_sample.Sample.r_workload ^ ": sampled output exact")
        true r.Epic_sample.Sample.r_output_ok)
    rep.Epic_sample.Sample.rows;
  Alcotest.(check bool)
    (Printf.sprintf "geomean error %.3f%% within %.0f%% budget"
       (rep.Epic_sample.Sample.geomean_err *. 100.)
       (Epic_sample.Sample.total_budget *. 100.))
    true
    (rep.Epic_sample.Sample.geomean_err <= Epic_sample.Sample.total_budget);
  Alcotest.(check bool)
    (Printf.sprintf "worst category error %.3f%% within %.0f%% budget"
       (rep.Epic_sample.Sample.worst_cat_err *. 100.)
       (Epic_sample.Sample.cat_budget *. 100.))
    true
    (rep.Epic_sample.Sample.worst_cat_err <= Epic_sample.Sample.cat_budget);
  Alcotest.(check bool) "report verdict is PASS" true
    rep.Epic_sample.Sample.pass

(* A run that never leaves the detail phase is not an estimate at all: the
   scale must be exactly 1 and the accounting bit-identical to unsampled. *)
let test_short_run_exact () =
  let w = gzip () in
  let compiled = compile_workload w in
  let _, _, st0 = Driver.run compiled w.Workload.reference in
  let huge =
    { Epic_sim.Sampling.interval = 200_000_000; detail = 100_000_000; warmup = 0 }
  in
  let _, _, st1 = Driver.run ~sampling:huge compiled w.Workload.reference in
  Alcotest.check exact "totals identical"
    (Accounting.total st0.Machine.acc)
    (Accounting.total st1.Machine.acc);
  match Machine.sample_summary st1 with
  | None -> Alcotest.fail "sampled run must carry a summary"
  | Some su ->
      Alcotest.check exact "scale exactly 1" 1.0 su.Epic_sim.Sampling.s_scale

(* Checkpoints as session artifacts: content-addressed, built once. *)
let test_session_checkpoint_cache () =
  let open Epic_serve in
  let session = Session.create () in
  let w = gzip () in
  let config = Epic_core.Experiments.config_for w Epic_core.Config.ILP_CS in
  let compiled, key, _ =
    Session.compile session ~config ~desc:None ~train:w.Workload.train
      w.Workload.source
  in
  let ck1, ckey1, hit1 =
    Session.checkpoint session ~key ~at:1000 compiled w.Workload.reference
  in
  let ck2, ckey2, hit2 =
    Session.checkpoint session ~key ~at:1000 compiled w.Workload.reference
  in
  Alcotest.(check bool) "first build is a miss" false hit1;
  Alcotest.(check bool) "repeat is a hit" true hit2;
  Alcotest.(check string) "key is stable" ckey1 ckey2;
  let _, ckey3, _ =
    Session.checkpoint session ~key ~at:2000 compiled w.Workload.reference
  in
  Alcotest.(check bool) "capture position is part of the key" true
    (ckey1 <> ckey3);
  match (ck1, ck2) with
  | Some a, Some b ->
      Alcotest.(check bool) "hit returns the same artifact" true (a == b);
      let code, out, st = Driver.resume compiled a in
      let code0, out0, st0 = Driver.run compiled w.Workload.reference in
      Alcotest.(check int) "resumed exit code" code0 code;
      Alcotest.(check string) "resumed output" out0 out;
      Alcotest.check exact "resumed cycles"
        (Accounting.total st0.Machine.acc)
        (Accounting.total st.Machine.acc)
  | _ -> Alcotest.fail "gzip checkpoint at 1000 groups must capture"

let suite =
  [
    Alcotest.test_case "checkpoint round-trip: gzip" `Slow test_roundtrip_gzip;
    Alcotest.test_case "checkpoint capture position" `Quick
      test_checkpoint_position;
    QCheck_alcotest.to_alcotest roundtrip_random;
    Alcotest.test_case "sampling x checkpoint exclusive" `Quick
      test_sampling_checkpoint_exclusive;
    Alcotest.test_case "sampled accuracy budget: 12 workloads" `Slow
      test_accuracy_budget;
    Alcotest.test_case "all-detail sampled run is exact" `Slow
      test_short_run_exact;
    Alcotest.test_case "session checkpoint artifact cache" `Slow
      test_session_checkpoint_cache;
  ]
