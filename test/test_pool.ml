(* Domain-pool tests: every job runs exactly once, results are
   index-ordered regardless of completion order, exceptions propagate with
   the original payload, jobs=1 stays in the calling domain — and the
   tentpole property, that the parallel suite runner is byte-identical to
   the sequential one (modulo wall-clock, which the export normalizes). *)

module Pool = Epic_core.Pool
module Experiments = Epic_core.Experiments
module Export = Epic_core.Export

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

(* Spin long enough to let other workers overtake; returns a value derived
   from the loop so it cannot be optimized away. *)
let spin n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := (!acc + i) land 0xffff
  done;
  !acc

let test_map_basic () =
  let items = Array.init 100 Fun.id in
  let out = Pool.map ~jobs:4 (fun x -> x * x) items in
  check (Alcotest.array ci) "squares in order" (Array.map (fun x -> x * x) items) out;
  check (Alcotest.array ci) "empty input" [||] (Pool.map ~jobs:4 (fun x -> x) [||])

let test_every_job_once () =
  let n = 64 in
  let started = Array.init n (fun _ -> Atomic.make 0) in
  ignore
    (Pool.map ~jobs:8
       (fun i ->
         Atomic.incr started.(i);
         i)
       (Array.init n Fun.id));
  Array.iteri
    (fun i a -> check ci (Printf.sprintf "job %d ran exactly once" i) 1 (Atomic.get a))
    started

let test_index_order_under_skew () =
  (* early indices do the most work, so later indices finish first; the
     result array must still be index-ordered *)
  let n = 32 in
  let out =
    Pool.map ~jobs:4
      (fun i -> ignore (spin ((n - i) * 20000)); i)
      (Array.init n Fun.id)
  in
  check (Alcotest.array ci) "index order despite skewed completion"
    (Array.init n Fun.id) out

exception Boom of int

let test_exception_propagates () =
  let raised =
    try
      ignore
        (Pool.map ~jobs:4
           (fun i -> if i = 13 then raise (Boom i) else i)
           (Array.init 48 Fun.id));
      None
    with Boom i -> Some i
  in
  check (Alcotest.option ci) "original exception propagates" (Some 13) raised;
  (* smallest raising index wins when several jobs raise *)
  let first =
    try
      ignore
        (Pool.map ~jobs:2
           (fun i ->
             ignore (spin ((i + 1) * 1000));
             raise (Boom i))
           (Array.init 16 Fun.id));
      None
    with Boom i -> Some i
  in
  match first with
  | Some i -> check cb "a raising job's own exception, low index" true (i < 16)
  | None -> Alcotest.fail "expected Boom"

let test_jobs1_no_domain () =
  let self = Domain.self () in
  let seen =
    Pool.map ~jobs:1 (fun _ -> Domain.self ()) (Array.init 8 Fun.id)
  in
  Array.iter
    (fun d -> check cb "jobs=1 runs in the calling domain" true (d = self))
    seen;
  check cb "jobs=0 rejected" true
    (try
       ignore (Pool.map ~jobs:0 Fun.id [| 1 |]);
       false
     with Invalid_argument _ -> true)

let qcheck_pool_matches_sequential =
  QCheck.Test.make ~count:50 ~name:"pool.map == Array.map (any jobs, any size)"
    QCheck.(pair (int_range 1 8) (list small_int))
    (fun (jobs, xs) ->
      let items = Array.of_list xs in
      Pool.map ~jobs (fun x -> (x * 31) lxor 5) items
      = Array.map (fun x -> (x * 31) lxor 5) items)

(* The tentpole guarantee: a parallel suite run produces a byte-identical
   JSON document to the sequential one (wall-clock normalized).  Two cheap
   workloads keep this test affordable; CI runs a larger subset through
   bench/main.exe -j. *)
let test_suite_determinism () =
  let workloads =
    [ Epic_workloads.Suite.find_exn "gap"; Epic_workloads.Suite.find_exn "twolf" ]
  in
  let export s =
    Epic_obs.Json.to_string (Export.normalize_time (Export.suite_to_json s))
  in
  let seq = Experiments.run_suite ~workloads () in
  let par = Experiments.run_suite ~workloads ~jobs:4 () in
  check ci "same number of runs" (List.length seq.Experiments.runs)
    (List.length par.Experiments.runs);
  List.iter2
    (fun (w1, l1, _) (w2, l2, _) ->
      check Alcotest.string "runs in the same order" w1 w2;
      check cb "levels in the same order" true (l1 = l2))
    seq.Experiments.runs par.Experiments.runs;
  check Alcotest.string "suite JSON byte-identical at -j 4" (export seq) (export par);
  check ci "no output mismatches" 0 (List.length (Experiments.mismatches seq))

let suite =
  [
    Alcotest.test_case "pool: map basics" `Quick test_map_basic;
    Alcotest.test_case "pool: every job exactly once" `Quick test_every_job_once;
    Alcotest.test_case "pool: index order under skew" `Quick test_index_order_under_skew;
    Alcotest.test_case "pool: exception propagation" `Quick test_exception_propagates;
    Alcotest.test_case "pool: jobs=1 stays in caller" `Quick test_jobs1_no_domain;
    QCheck_alcotest.to_alcotest qcheck_pool_matches_sequential;
    Alcotest.test_case "suite: -j 4 byte-identical to -j 1" `Slow test_suite_determinism;
  ]
