(* Full test suite: `dune runtest`. *)
let () =
  Alcotest.run "epic"
    [
      ("ir", Test_ir.suite);
      ("frontend", Test_frontend.suite);
      ("analysis", Test_analysis.suite);
      ("opt", Test_opt.suite);
      ("passman", Test_passman.suite);
      ("pool", Test_pool.suite);
      ("ilp", Test_ilp.suite);
      ("sched", Test_sched.suite);
      ("sim", Test_sim.suite);
      ("hotpath", Test_hotpath.suite);
      ("integration", Test_integration.suite);
      ("obs", Test_obs.suite);
      ("paper-shapes", Test_workload_shapes.suite);
      ("sweep", Test_sweep.suite);
      ("causal", Test_causal.suite);
      ("serve", Test_serve.suite);
      ("sample", Test_sample.suite);
    ]
