(* Machine-description plumbing and the sensitivity-sweep subsystem:
   non-default geometries must actually change the component models in the
   expected direction, the default description must reproduce the seed
   behaviour exactly, and the sweep matrix's perfect-* idealizations must
   confine their deltas to the targeted accounting category. *)

open Epic_sim
module Md = Epic_mach.Machine_desc
module Sweep = Epic_sweep.Sweep

(* Halving the L1I size halves the sets: a round-robin stream of 24
   distinct lines fits the full 32-line cache (cold misses only) but
   thrashes the halved 16-line one (LRU round-robin always evicts the
   next line needed). *)
let test_cache_geometry () =
  let stream cache =
    Cache.reset cache;
    for _round = 1 to 50 do
      for k = 0 to 23 do
        ignore (Cache.access cache (Int64.of_int (k * 64)))
      done
    done;
    cache.Cache.misses
  in
  let g = Md.itanium2.Md.l1i in
  let full =
    Cache.create ~name:"l1i" ~size:g.Md.size ~line:g.Md.line ~assoc:g.Md.assoc
  in
  let half =
    Cache.create ~name:"l1i/2" ~size:(g.Md.size / 2) ~line:g.Md.line
      ~assoc:g.Md.assoc
  in
  let m_full = stream full and m_half = stream half in
  Alcotest.(check int) "full cache: cold misses only" 24 m_full;
  Alcotest.(check bool)
    (Printf.sprintf "half cache misses at least doubles (%d vs %d)" m_half
       m_full)
    true
    (m_half >= 2 * m_full)

(* A 4-entry DTLB thrashes on an 8-page round-robin that a 32-entry one
   absorbs after the cold misses. *)
let test_tlb_geometry () =
  let stream tlb =
    Tlb.reset tlb;
    for _round = 1 to 50 do
      for p = 0 to 7 do
        let addr = Int64.of_int (p * 1 lsl 20) in
        if not (Tlb.lookup tlb addr) then Tlb.fill tlb addr
      done
    done;
    tlb.Tlb.misses
  in
  let big = Tlb.create ~entries:Md.itanium2.Md.dtlb_entries () in
  let tiny = Tlb.create ~entries:4 () in
  let m_big = stream big and m_tiny = stream tiny in
  Alcotest.(check int) "32 entries: cold misses only" 8 m_big;
  Alcotest.(check bool)
    (Printf.sprintf "4 entries thrash (%d vs %d)" m_tiny m_big)
    true
    (m_tiny >= 2 * m_big)

(* A small table aliases biased sites that the full table keeps apart:
   64 sites whose (fixed) outcome is their bit 4, which a 16-entry index
   discards — aliased sites disagree and thrash the shared counter, while
   the 4096-entry table gives every site its own.  History is disabled on
   both so the comparison isolates table size. *)
let test_predictor_geometry () =
  let stream bp =
    for _round = 1 to 100 do
      for site = 0 to 63 do
        let taken = site land 16 <> 0 in
        ignore (Branch_pred.predict_and_update bp site taken)
      done
    done;
    bp.Branch_pred.mispredictions
  in
  let big =
    Branch_pred.create ~bits:Md.itanium2.Md.bp_bits ~history_bits:0 ()
  in
  let small = Branch_pred.create ~bits:4 ~history_bits:0 () in
  let m_big = stream big and m_small = stream small in
  Alcotest.(check bool)
    (Printf.sprintf "small table mispredicts at least as much (%d vs %d)"
       m_small m_big)
    true
    (m_small >= m_big)

(* The default description is the single source of the seed's machine
   constants: compiling and simulating under an explicit
   [Machine_desc.itanium2] must reproduce the default-run metrics JSON
   byte-for-byte (wall-clock normalized). *)
let test_default_desc_identity () =
  let w = Epic_workloads.Suite.find_exn "gzip" in
  let norm r =
    Epic_obs.Json.to_string ~pretty:true
      (Epic_core.Export.normalize_time (Epic_core.Export.run_to_json r))
  in
  let implicit = Epic_core.Experiments.run_one w Epic_core.Config.ILP_CS in
  let explicit_ =
    Epic_core.Experiments.run_one ~desc:Md.itanium2 w Epic_core.Config.ILP_CS
  in
  Alcotest.(check string)
    "explicit itanium2 desc == default" (norm implicit) (norm explicit_)

(* Matrix smoke: two workloads x three variants.  The perfect-*
   idealizations suppress only their category's accounting charge, so
   they can never be slower and their deltas are confined to exactly the
   targeted category; doubling memory latency can never be faster. *)
let test_sweep_matrix () =
  let variants =
    List.map
      (fun n -> Option.get (Sweep.find_variant n))
      [ "perfect-icache"; "perfect-predictor"; "2x-mem-latency" ]
  in
  let r =
    Sweep.run ~variants ~jobs:2 ~workloads:[ "gzip"; "twolf" ] ()
  in
  Alcotest.(check int) "cells" 6 (List.length r.Sweep.r_cells);
  Alcotest.(check (list pass)) "no mismatches" [] (Sweep.mismatches r);
  List.iter
    (fun (c : Sweep.cell) ->
      let b = Sweep.baseline_of r c.Sweep.c_workload in
      let ds = Sweep.deltas r c in
      let confined target =
        List.iter
          (fun cat ->
            if cat <> target then
              Alcotest.(check (float 0.))
                (Printf.sprintf "%s/%s: %s delta zero" c.Sweep.c_workload
                   c.Sweep.c_variant (Accounting.name cat))
                0.
                ds.(Accounting.index cat))
          Accounting.all_categories;
        Alcotest.(check bool)
          (Printf.sprintf "%s/%s: targeted delta nonzero" c.Sweep.c_workload
             c.Sweep.c_variant)
          true
          (ds.(Accounting.index target) < 0.)
      in
      match c.Sweep.c_variant with
      | "perfect-icache" ->
          Alcotest.(check bool) "perfect-icache never slower" true
            (c.Sweep.c_cycles <= b.Sweep.c_cycles);
          confined Accounting.Front_end
      | "perfect-predictor" ->
          Alcotest.(check bool) "perfect-predictor never slower" true
            (c.Sweep.c_cycles <= b.Sweep.c_cycles);
          confined Accounting.Br_mispredict
      | "2x-mem-latency" ->
          Alcotest.(check bool) "2x-mem-latency never faster" true
            (c.Sweep.c_cycles >= b.Sweep.c_cycles)
      | v -> Alcotest.failf "unexpected variant %s" v)
    r.Sweep.r_cells;
  (* the tornado covers every (variant, ablation) combo exactly once *)
  Alcotest.(check int) "tornado rows" 3 (List.length r.Sweep.r_tornado)

let suite =
  [
    Alcotest.test_case "cache: halved L1I doubles conflict misses" `Quick
      test_cache_geometry;
    Alcotest.test_case "tlb: tiny DTLB thrashes" `Quick test_tlb_geometry;
    Alcotest.test_case "predictor: small table aliases" `Quick
      test_predictor_geometry;
    Alcotest.test_case "default desc reproduces seed metrics" `Slow
      test_default_desc_identity;
    Alcotest.test_case "sweep matrix: signs and confinement" `Slow
      test_sweep_matrix;
  ]
