(* Pass-manager tests: analysis-cache hits vs fresh recomputes (the debug
   self-check), explicit invalidation with preservation lists, staleness
   detection, and the equivalence of the dirty-function fixed point with
   the legacy whole-program fixed point on every suite workload. *)

open Epic_ir
module Cache = Epic_analysis.Cache

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let cs = Alcotest.string

let lower = Epic_frontend.Lower.compile_source

let loopy_src =
  {|
int g[16];
int f(int x) {
  int s; int i;
  s = 0;
  for (i = 0; i < 16; i = i + 1) { s = s + g[i] * x; }
  return s;
}
int main() {
  int i;
  for (i = 0; i < 16; i = i + 1) { g[i] = i; }
  print_int(f(3));
  return 0;
}
|}

(* --- cache hits, invalidation, preservation lists ----------------------- *)

let test_cache_hit_returns_cached () =
  let p = lower loopy_src in
  let cache = Cache.create () in
  let f = List.hd p.Program.funcs in
  let live0 = Cache.liveness cache f in
  let live1 = Cache.liveness cache f in
  check cb "second fetch is the cached value" true (live0 == live1);
  let hits, misses = List.assoc Cache.Liveness (Cache.stats cache) in
  check ci "one miss" 1 misses;
  check ci "one hit" 1 hits

let test_invalidation_respects_preserve () =
  let p = lower loopy_src in
  let cache = Cache.create () in
  let f = List.hd p.Program.funcs in
  let dom0 = Cache.dominance cache f in
  let live0 = Cache.liveness cache f in
  Cache.invalidate cache ~preserve:[ Cache.Dominance ] f.Func.name;
  let dom1 = Cache.dominance cache f in
  let live1 = Cache.liveness cache f in
  check cb "preserved entry survives invalidation" true (dom0 == dom1);
  check cb "non-preserved entry is recomputed" true (not (live0 == live1))

let test_invalidation_is_per_function () =
  let p = lower loopy_src in
  let cache = Cache.create () in
  let f = Program.find_func_exn p "f" in
  let m = Program.find_func_exn p "main" in
  let live_f = Cache.liveness cache f in
  let live_m = Cache.liveness cache m in
  Cache.invalidate cache f.Func.name;
  check cb "other function's entry survives" true
    (Cache.liveness cache m == live_m);
  check cb "invalidated function recomputes" true
    (not (Cache.liveness cache f == live_f))

(* Mutating the IR without invalidating must trip the debug self-check on
   the next (stale) hit. *)
let test_selfcheck_catches_stale_entry () =
  let p = lower loopy_src in
  let cache = Cache.create () in
  let f = Program.find_func_exn p "f" in
  ignore (Cache.liveness cache f);
  (* make some register live through the entry block without telling the
     cache: copy an existing dst into a fresh register at function end *)
  let b = List.hd (List.rev f.Func.blocks) in
  let src =
    List.concat_map (fun (i : Instr.t) -> i.Instr.dsts) b.Block.instrs
    @ [ Reg.sp ]
    |> List.hd
  in
  let d = Func.fresh_reg f Reg.Int in
  Block.append b
    (Instr.create Opcode.Mov ~dsts:[ d ] ~srcs:[ Operand.Reg src ]);
  Cache.self_check := true;
  let tripped =
    try
      ignore (Cache.liveness cache f);
      false
    with Failure _ -> true
  in
  Cache.self_check := false;
  check cb "stale hit detected" true tripped

(* --- pass runs keep the cache coherent (cached = fresh) ------------------ *)

(* Every structural pass of full compiles at every configuration, with every
   cache hit re-validated against a fresh recompute: a stale entry fails
   inside the compile and surfaces as [Crash].  Goes through
   [Random_program.check] for its fuel guards (some generated programs are
   too expensive to profile). *)
let qcheck_selfcheck_across_driver =
  QCheck.Test.make ~count:8
    ~name:"cached = fresh across full compiles (random programs)"
    (QCheck.make ~print:(fun s -> s) Epic_core.Random_program.Gen.program)
    (fun src ->
      Cache.self_check := true;
      Fun.protect
        ~finally:(fun () -> Cache.self_check := false)
        (fun () ->
          match Epic_core.Random_program.check src [| 5L |] with
          | Epic_core.Random_program.Agree | Epic_core.Random_program.Skipped
            ->
              true
          | Epic_core.Random_program.Mismatch _
          | Epic_core.Random_program.Crash _ ->
              false))

(* --- dirty-function fixed point ≡ whole-program fixed point -------------- *)

(* The legacy whole-program fixed point, cache-free: bounded rounds of every
   cleanup pass over every function, then LICM, then a bounded cleanup of
   the whole program again.  This is the oracle the worklist version must
   reproduce exactly. *)
let oracle_classical ?(max_rounds = 8) (p : Program.t) =
  let rec go n = if n > 0 && Epic_opt.Pipeline.classical_pass p then go (n - 1) in
  go max_rounds;
  let moved = Epic_opt.Licm.run p in
  if moved then go 3;
  Verify.check_program p

let test_fixed_point_matches_oracle () =
  List.iter
    (fun (w : Epic_workloads.Workload.t) ->
      let p_oracle = lower w.Epic_workloads.Workload.source in
      oracle_classical p_oracle;
      let p_pm = lower w.Epic_workloads.Workload.source in
      Epic_opt.Pipeline.run_classical p_pm;
      check cs
        (w.Epic_workloads.Workload.short ^ ": worklist IR = oracle IR")
        (Program.to_string p_oracle) (Program.to_string p_pm))
    Epic_workloads.Suite.all

(* --- the worklist actually skips clean functions ------------------------- *)

let test_clean_worklist_runs_no_rounds () =
  (* loop-free program: after one fixed point everything is stable and
     clean, so a second fixed point must do zero rounds and change nothing *)
  let p = lower "int main() { int x; x = 2 + 3; print_int(x * 4); return 0; }" in
  let m = Epic_opt.Passman.create p in
  Epic_opt.Pipeline.register_classical m;
  ignore (Epic_opt.Pipeline.run_classical_pm m ~name:"classical (first)");
  check ci "worklist drained" 0
    (List.length (Epic_opt.Passman.dirty_funcs m));
  let before = Program.to_string p in
  let rounds = Epic_opt.Pipeline.run_classical_pm m ~name:"classical (again)" in
  check ci "clean worklist does no cleanup rounds" 0 rounds;
  check cs "IR untouched" before (Program.to_string p)

let test_mark_dirty_revisits () =
  let p = lower loopy_src in
  let m = Epic_opt.Passman.create p in
  Epic_opt.Pipeline.register_classical m;
  ignore (Epic_opt.Pipeline.run_classical_pm m ~name:"classical");
  (* un-optimize one function by hand: dead pure code the cleanup removes *)
  let f = Program.find_func_exn p "f" in
  let d = Func.fresh_reg f Reg.Int in
  let entry = Func.entry f in
  entry.Block.instrs <-
    Instr.create Opcode.Add ~dsts:[ d ]
      ~srcs:[ Operand.Imm 1L; Operand.Imm 2L ]
    :: entry.Block.instrs;
  let n_before = Func.instr_count f in
  Epic_opt.Passman.note_changes m ~preserves:[] (Epic_opt.Passman.Changed [ "f" ]);
  check cb "function is dirty again" true (Epic_opt.Passman.is_dirty m "f");
  ignore (Epic_opt.Pipeline.run_classical_pm m ~name:"classical (redo)");
  check cb "revisited function re-optimized" true (Func.instr_count f < n_before)

let suite =
  [
    Alcotest.test_case "cache hit returns cached value" `Quick
      test_cache_hit_returns_cached;
    Alcotest.test_case "invalidation respects preserve list" `Quick
      test_invalidation_respects_preserve;
    Alcotest.test_case "invalidation is per-function" `Quick
      test_invalidation_is_per_function;
    Alcotest.test_case "self-check catches stale entries" `Quick
      test_selfcheck_catches_stale_entry;
    QCheck_alcotest.to_alcotest qcheck_selfcheck_across_driver;
    Alcotest.test_case "worklist fixed point = whole-program oracle (suite)"
      `Slow test_fixed_point_matches_oracle;
    Alcotest.test_case "clean worklist runs no rounds" `Quick
      test_clean_worklist_runs_no_rounds;
    Alcotest.test_case "mark_dirty revisits a function" `Quick
      test_mark_dirty_revisits;
  ]
