(* The session/service layer: the machine-description digest is pinned
   (cache keys must not drift silently), the LRU evicts in recency order,
   the session caches hit/miss/evict exactly as specified, a cache hit is
   byte-identical to the cold compile+run, and concurrent requests for
   one key compile exactly once. *)

module Session = Epic_serve.Session
module Lru = Epic_serve.Lru
module Protocol = Epic_serve.Protocol
module Desc = Epic_mach.Machine_desc
module Json = Epic_obs.Json

(* --- Machine_desc.digest ------------------------------------------------ *)

(* Pinned values: a digest change means every persisted cache key and
   cross-run comparison silently invalidates — so changing the
   serialization (or the description's contents) must show up here as a
   deliberate test update, never as an accident.  (Adding a field to
   Machine_desc.t without extending [digest] is already a compile error:
   the digest destructures the full record.) *)
let test_digest_pinned () =
  Alcotest.(check string) "itanium2" "cafe4d92cf2104c2" (Desc.digest Desc.itanium2);
  Alcotest.(check string) "perfect-icache" "56e81970838fe795"
    (Desc.digest { Desc.itanium2 with Desc.perfect_icache = true });
  Alcotest.(check string) "2x-mem-latency" "a44384110093430b"
    (Desc.digest { Desc.itanium2 with Desc.mem_latency = 280 });
  Alcotest.(check string) "tiny-dtlb" "10db796fcc7bc94b"
    (Desc.digest { Desc.itanium2 with Desc.dtlb_entries = 4 })

(* The digest is content-addressed: the display name is not content. *)
let test_digest_name_invariant () =
  Alcotest.(check string) "renaming does not change the digest"
    (Desc.digest Desc.itanium2)
    (Desc.digest { Desc.itanium2 with Desc.name = "anything-else" });
  Alcotest.(check bool) "a real knob does" false
    (Desc.digest Desc.itanium2
    = Desc.digest { Desc.itanium2 with Desc.issue_width = 4 })

(* --- Lru ---------------------------------------------------------------- *)

let test_lru_eviction_order () =
  let c = Lru.create ~capacity:3 in
  Alcotest.(check (option (pair string int))) "a fits" None (Lru.add c "a" 1);
  Alcotest.(check (option (pair string int))) "b fits" None (Lru.add c "b" 2);
  Alcotest.(check (option (pair string int))) "c fits" None (Lru.add c "c" 3);
  Alcotest.(check (list string)) "MRU order" [ "c"; "b"; "a" ]
    (Lru.keys_mru_first c);
  (* touching a makes b the LRU *)
  Alcotest.(check (option int)) "find a" (Some 1) (Lru.find c "a");
  Alcotest.(check (option (pair string int))) "d evicts b" (Some ("b", 2))
    (Lru.add c "d" 4);
  Alcotest.(check (list string)) "b gone" [ "d"; "a"; "c" ]
    (Lru.keys_mru_first c);
  Alcotest.(check bool) "mem does not touch" true (Lru.mem c "c");
  Alcotest.(check (option (pair string int))) "e evicts c (mem was no use)"
    (Some ("c", 3))
    (Lru.add c "e" 5);
  Alcotest.(check int) "evictions counted" 2 (Lru.evictions c);
  Alcotest.(check int) "length at capacity" 3 (Lru.length c)

let test_lru_replace () =
  let c = Lru.create ~capacity:2 in
  ignore (Lru.add c "a" 1);
  ignore (Lru.add c "b" 2);
  (* replacing is not an insert: no eviction, value updated, a now MRU *)
  Alcotest.(check (option (pair string int))) "replace a" None (Lru.add c "a" 9);
  Alcotest.(check (option int)) "new value" (Some 9) (Lru.find c "a");
  Alcotest.(check int) "no eviction" 0 (Lru.evictions c);
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Lru.create: capacity must be >= 1") (fun () ->
      ignore (Lru.create ~capacity:0))

(* --- Session caches ----------------------------------------------------- *)

let prog_a = "int main() { int i; int s; s = 0; for (i = 0; i < 40; i = i + 1) { s = s + i; } return s % 7; }"
let prog_b = "int main() { int i; int s; s = 1; for (i = 0; i < 30; i = i + 1) { s = s + 2 * i; } return s % 5; }"

let ilp_cs = Epic_core.Config.ilp_cs

let test_session_counters () =
  let s = Session.create () in
  let _, k1, h1 = Session.compile s ~config:ilp_cs ~desc:None ~train:[||] prog_a in
  let _, k2, h2 = Session.compile s ~config:ilp_cs ~desc:None ~train:[||] prog_a in
  Alcotest.(check bool) "cold is a miss" false h1;
  Alcotest.(check bool) "repeat is a hit" true h2;
  Alcotest.(check string) "same key" k1 k2;
  (* the default desc and an explicit itanium2 are the same content *)
  let _, k3, h3 =
    Session.compile s ~config:ilp_cs ~desc:(Some Desc.itanium2) ~train:[||] prog_a
  in
  Alcotest.(check string) "explicit itanium2 shares the key" k1 k3;
  Alcotest.(check bool) "and hits" true h3;
  (* any key ingredient changing misses: config, train, desc, source *)
  let _, k4, h4 =
    Session.compile s ~config:Epic_core.Config.gcc_like ~desc:None ~train:[||] prog_a
  in
  let _, k5, h5 = Session.compile s ~config:ilp_cs ~desc:None ~train:[| 3L |] prog_a in
  let _, k6, h6 =
    Session.compile s ~config:ilp_cs
      ~desc:(Some { Desc.itanium2 with Desc.mem_latency = 280 })
      ~train:[||] prog_a
  in
  let _, k7, h7 = Session.compile s ~config:ilp_cs ~desc:None ~train:[||] prog_b in
  List.iter
    (fun (what, k, h) ->
      Alcotest.(check bool) (what ^ " misses") false h;
      Alcotest.(check bool) (what ^ " has a fresh key") true (k <> k1))
    [ ("config", k4, h4); ("train", k5, h5); ("desc", k6, h6); ("source", k7, h7) ];
  let st = Session.stats s in
  Alcotest.(check int) "compile hits" 2 st.Session.st_compile_hits;
  Alcotest.(check int) "compile misses" 5 st.Session.st_compile_misses;
  Alcotest.(check int) "no evictions at capacity 64" 0 st.Session.st_compile_evictions

let test_session_eviction () =
  let s = Session.create ~compile_capacity:1 () in
  let _ = Session.compile s ~config:ilp_cs ~desc:None ~train:[||] prog_a in
  let _ = Session.compile s ~config:ilp_cs ~desc:None ~train:[||] prog_b in
  let _ = Session.compile s ~config:ilp_cs ~desc:None ~train:[||] prog_a in
  let st = Session.stats s in
  Alcotest.(check int) "b evicted a, a evicted b" 2 st.Session.st_compile_evictions;
  Alcotest.(check int) "so the re-request missed" 3 st.Session.st_compile_misses;
  Alcotest.(check int) "entries bounded" 1 st.Session.st_compile_entries

(* A run-cache hit must be byte-identical to the cold compile+run — the
   whole exported document, not just the totals — even before
   normalize_time, because served outcomes carry no host section. *)
let run_doc (served : Session.served) =
  Json.to_string ~pretty:true
    (Epic_core.Export.run_to_json served.Session.s_outcome.Session.o_metrics)

let test_run_cache_byte_identity () =
  let s = Session.create () in
  let go () =
    Session.compile_and_run s ~workload:"prog" ~config:ilp_cs ~desc:None
      ~train:[| 5L |] ~input:[| 5L |] prog_a
  in
  let cold = go () in
  let warm = go () in
  Alcotest.(check bool) "cold missed" false cold.Session.s_run_hit;
  Alcotest.(check bool) "warm hit" true warm.Session.s_run_hit;
  Alcotest.(check bool) "warm compile hit too" true warm.Session.s_compile_hit;
  Alcotest.(check string) "byte-identical documents" (run_doc cold) (run_doc warm);
  (* a different workload label for the same content still hits, and the
     label is patched into the served document *)
  let relabeled =
    Session.compile_and_run s ~workload:"other-name" ~config:ilp_cs ~desc:None
      ~train:[| 5L |] ~input:[| 5L |] prog_a
  in
  Alcotest.(check bool) "relabel hits" true relabeled.Session.s_run_hit;
  Alcotest.(check string) "label patched" "other-name"
    relabeled.Session.s_outcome.Session.o_metrics.Epic_core.Metrics.workload

(* Property: for random programs, a session cache hit returns the same
   bytes as the cold path.  (The cold path itself is the plain Driver, so
   this pins served == batch on arbitrary inputs, not just the suite.) *)
let qcheck_cold_vs_hit =
  QCheck.Test.make ~count:8 ~name:"session hit is byte-identical to cold run"
    (QCheck.make Epic_core.Random_program.Gen.program)
    (fun src ->
      (* the session layer has no fuel guard (real workloads terminate), so
         skip generated programs whose reference run isn't quickly bounded *)
      match Epic_core.Random_program.reference ~fuel:200_000 src [| 3L |] with
      | exception _ -> true
      | _ ->
          let s = Session.create () in
          let go () =
            Session.compile_and_run s ~workload:"fuzz" ~config:ilp_cs ~desc:None
              ~train:[| 3L |] ~input:[| 3L |] src
          in
          let cold = go () in
          let warm = go () in
          if not warm.Session.s_run_hit then
            QCheck.Test.fail_report "second request did not hit the run cache";
          if run_doc cold <> run_doc warm then
            QCheck.Test.fail_report "hit diverged from cold bytes";
          true)

(* Experiment runs are cached (the experiment is part of the run key);
   only trace runs bypass.  Fused runs memoize in their own cache, and a
   second matrix over the same (compiled, input) resumes the checkpoint
   prefix the first one captured. *)
let test_experiment_and_fused_caching () =
  let module Acc = Epic_sim.Accounting in
  let s = Session.create () in
  let compiled, key, _ =
    Session.compile s ~config:ilp_cs ~desc:None ~train:[| 5L |] prog_a
  in
  let reference, _ = Session.reference s ~source:prog_a ~input:[| 5L |] in
  let e1 = { Acc.target = Acc.Target_category Acc.Front_end; speedup = 0.5 } in
  let e2 = { Acc.target = Acc.Target_category Acc.Front_end; speedup = 1.0 } in
  let run ?experiment () =
    Session.run s ?experiment ~workload:"prog" ~reference ~key compiled [| 5L |]
  in
  let o1, h1 = run ~experiment:e1 () in
  let _, h2 = run ~experiment:e1 () in
  let _, h3 = run ~experiment:e2 () in
  let _, h4 = run () in
  Alcotest.(check bool) "cold experiment run misses" false h1;
  Alcotest.(check bool) "same experiment hits" true h2;
  Alcotest.(check bool) "different factor misses" false h3;
  Alcotest.(check bool) "plain run has its own key" false h4;
  ignore o1;
  let st = Session.stats s in
  Alcotest.(check int) "no uncached runs yet" 0 st.Session.st_run_uncached;
  let trace = Epic_obs.Trace.create ~capacity:8 () in
  let _ =
    Session.run s ~trace ~workload:"prog" ~reference ~key compiled [| 5L |]
  in
  let st = Session.stats s in
  Alcotest.(check int) "trace run bypasses" 1 st.Session.st_run_uncached;
  (* fused runs: cold miss, warm hit; a second distinct set resumes the
     prefix the first captured *)
  let exps = [ e1; e2 ] in
  let _, _, st_plain = Epic_core.Driver.run compiled [| 5L |] in
  let groups = st_plain.Epic_sim.Machine.c.Epic_sim.Machine.groups in
  let at = groups / 2 in
  Alcotest.(check bool) "test program long enough" true (at > 0);
  let f1, fh1 =
    Session.run_fused s ~key compiled ~experiments:exps ~prefix_at:(Some at)
      [| 5L |]
  in
  let f2, fh2 =
    Session.run_fused s ~key compiled ~experiments:exps ~prefix_at:(Some at)
      [| 5L |]
  in
  Alcotest.(check bool) "cold fused misses" false fh1;
  Alcotest.(check bool) "warm fused hits" true fh2;
  Alcotest.(check bool) "cold fused ran straight through" false
    f1.Epic_core.Driver.f_resumed;
  Alcotest.(check bool) "hit returns the same value" true (f1 == f2);
  let exps' = [ { e1 with Acc.speedup = 0.25 } ] in
  let f3, fh3 =
    Session.run_fused s ~key compiled ~experiments:exps' ~prefix_at:(Some at)
      [| 5L |]
  in
  Alcotest.(check bool) "different set misses" false fh3;
  Alcotest.(check bool) "but resumes the captured prefix" true
    f3.Epic_core.Driver.f_resumed;
  (* resumed totals within an ulp of straight-through *)
  let f3_full =
    Epic_core.Driver.default_fused ~config:ilp_cs ~desc:None ~train:[| 5L |]
      ~input:[| 5L |] ~experiments:exps' ~prefix_at:None prog_a
  in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun k v ->
          let r = f3.Epic_core.Driver.f_categories.(i).(k) in
          let tol = 1e-9 *. Float.max 1.0 (abs_float v) in
          Alcotest.(check bool)
            (Printf.sprintf "resumed exp %d cat %d within ulp (%.17g vs %.17g)"
               i k r v)
            true
            (abs_float (r -. v) <= tol))
        row)
    f3_full.Epic_core.Driver.f_categories

(* Concurrency: N pool jobs demanding one key must compile exactly once —
   one miss, N-1 hits, every job handed the same physical artifact. *)
let test_concurrent_hammer () =
  let s = Session.create ~jobs:4 () in
  let results =
    Session.map s
      (fun _ -> Session.compile s ~config:ilp_cs ~desc:None ~train:[||] prog_a)
      (Array.init 8 Fun.id)
  in
  let first, _, _ = results.(0) in
  Array.iter
    (fun (c, k, _) ->
      Alcotest.(check bool) "same physical compiled value" true (c == first);
      let _, k0, _ = results.(0) in
      Alcotest.(check string) "same key" k0 k)
    results;
  let st = Session.stats s in
  Alcotest.(check int) "compiled exactly once" 1 st.Session.st_compile_misses;
  Alcotest.(check int) "everyone else hit" 7 st.Session.st_compile_hits

(* --- Protocol ----------------------------------------------------------- *)

let test_protocol_envelopes () =
  let s = Session.create () in
  let exec line = Protocol.execute s (Protocol.parse line) in
  (match Json.of_string (exec {|{"id": 7, "op": "ping"}|}) with
  | Ok j ->
      Alcotest.(check bool) "id echoed" true (Json.member "id" j = Some (Json.Int 7));
      Alcotest.(check bool) "ok" true (Json.member "ok" j = Some (Json.Bool true));
      Alcotest.(check bool) "pong" true
        (Json.member "result" j = Some (Json.Str "pong"))
  | Error e -> Alcotest.fail e);
  (match Json.of_string (exec {|{"id": 8, "op": "no-such-op"}|}) with
  | Ok j ->
      Alcotest.(check bool) "not ok" true (Json.member "ok" j = Some (Json.Bool false));
      Alcotest.(check bool) "id still echoed" true
        (Json.member "id" j = Some (Json.Int 8))
  | Error e -> Alcotest.fail e);
  (match Json.of_string (exec "this is not json") with
  | Ok j ->
      Alcotest.(check bool) "bad JSON is an error response, not a crash" true
        (Json.member "ok" j = Some (Json.Bool false))
  | Error e -> Alcotest.fail e);
  (* a stats response carries the counter tree the CI smoke asserts on *)
  match Json.of_string (exec {|{"op": "stats"}|}) with
  | Ok j ->
      let result = Option.get (Json.member "result" j) in
      List.iter
        (fun path ->
          Alcotest.(check bool) (path ^ " present") true
            (match Json.member path result with
            | Some (Json.Obj _) -> true
            | _ -> false))
        [ "compile"; "run"; "reference" ]
  | Error e -> Alcotest.fail e

let test_protocol_heaviness () =
  Alcotest.(check bool) "run is light" false
    (Protocol.is_heavy (Protocol.parse {|{"op":"run","source":"int main(){return 0;}"}|}));
  Alcotest.(check bool) "suite is heavy" true
    (Protocol.is_heavy (Protocol.parse {|{"op":"suite"}|}));
  Alcotest.(check bool) "shutdown recognized" true
    (Protocol.is_shutdown (Protocol.parse {|{"op":"shutdown"}|}))

let suite =
  [
    Alcotest.test_case "machine-desc digest is pinned" `Quick test_digest_pinned;
    Alcotest.test_case "digest ignores the name, sees the knobs" `Quick
      test_digest_name_invariant;
    Alcotest.test_case "lru evicts in recency order" `Quick test_lru_eviction_order;
    Alcotest.test_case "lru replace and capacity validation" `Quick test_lru_replace;
    Alcotest.test_case "compile cache hit/miss per key ingredient" `Slow
      test_session_counters;
    Alcotest.test_case "bounded cache evicts and recounts" `Quick
      test_session_eviction;
    Alcotest.test_case "run-cache hit is byte-identical to cold" `Slow
      test_run_cache_byte_identity;
    QCheck_alcotest.to_alcotest qcheck_cold_vs_hit;
    Alcotest.test_case "experiment runs cache; fused runs memoize and resume"
      `Slow test_experiment_and_fused_caching;
    Alcotest.test_case "concurrent same-key requests compile once" `Quick
      test_concurrent_hammer;
    Alcotest.test_case "protocol envelopes and error paths" `Quick
      test_protocol_envelopes;
    Alcotest.test_case "protocol op classification" `Quick test_protocol_heaviness;
  ]
