(* Back-end tests: dependence DAG, list scheduler invariants (checked also
   as qcheck properties over randomly generated blocks), register allocator
   and bundler. *)

open Epic_ir
open Epic_sched
open Epic_mach

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

(* --- helpers -------------------------------------------------------------- *)

let func_of_block instrs =
  let f = Func.create "t" [] in
  let b = Block.create "b" in
  b.Block.instrs <- instrs;
  Block.append b (Instr.create Opcode.Br_ret ~srcs:[ Operand.imm 0 ]);
  Func.append_block f b;
  (f, b)

let vi n = Reg.virt n Reg.Int

let test_dag_raw_edge () =
  let a = Instr.create Opcode.Mov ~dsts:[ vi 1 ] ~srcs:[ Operand.imm 1 ] in
  let b = Instr.create Opcode.Add ~dsts:[ vi 2 ] ~srcs:[ Operand.Reg (vi 1); Operand.imm 1 ] in
  let f, blk = func_of_block [ a; b ] in
  let live = Epic_analysis.Liveness.compute f in
  let g = Dag.build f live blk in
  check cb "RAW edge exists" true (List.mem_assoc 1 g.Dag.succs.(0))

let test_dag_memory_edges () =
  let st = Instr.create (Opcode.St Opcode.B8) ~srcs:[ Operand.Reg (vi 1); Operand.imm 0 ] in
  let ld = Instr.create (Opcode.Ld (Opcode.B8, Opcode.Nonspec)) ~dsts:[ vi 2 ] ~srcs:[ Operand.Reg (vi 1) ] in
  let f, blk = func_of_block [ st; ld ] in
  let live = Epic_analysis.Liveness.compute f in
  let g = Dag.build f live blk in
  check cb "store->load ordered (unknown tags alias)" true (List.mem_assoc 1 g.Dag.succs.(0))

let test_dag_branch_pins_store () =
  let f = Func.create "t" [] in
  let b = Block.create "b" in
  let p = Reg.virt 9 Reg.Prd in
  let st = Instr.create (Opcode.St Opcode.B8) ~srcs:[ Operand.Reg (vi 1); Operand.imm 7 ] in
  let br = Instr.create ~pred:p Opcode.Br ~srcs:[ Operand.Label "out" ] in
  let st2 = Instr.create (Opcode.St Opcode.B8) ~srcs:[ Operand.Reg (vi 2); Operand.imm 8 ] in
  b.Block.instrs <- [ st; br; st2 ];
  Block.append b (Instr.create Opcode.Br_ret ~srcs:[ Operand.imm 0 ]);
  Func.append_block f b;
  let out = Block.create "out" in
  Block.append out (Instr.create Opcode.Br_ret ~srcs:[ Operand.imm 1 ]);
  Func.append_block f out;
  let live = Epic_analysis.Liveness.compute f in
  let g = Dag.build f live b in
  check cb "store before branch pinned above" true (List.mem_assoc 1 g.Dag.succs.(0));
  check cb "store after branch pinned below" true (List.mem_assoc 2 g.Dag.succs.(1))

let test_dag_speculative_load_free () =
  let f = Func.create "t" [] in
  let b = Block.create "b" in
  let p = Reg.virt 9 Reg.Prd in
  let br = Instr.create ~pred:p Opcode.Br ~srcs:[ Operand.Label "out" ] in
  let ld = Instr.create (Opcode.Ld (Opcode.B8, Opcode.Spec_general)) ~dsts:[ vi 2 ] ~srcs:[ Operand.imm 4096 ] in
  ld.Instr.attrs.Instr.speculated <- true;
  let ldn = Instr.create (Opcode.Ld (Opcode.B8, Opcode.Nonspec)) ~dsts:[ vi 3 ] ~srcs:[ Operand.imm 4096 ] in
  b.Block.instrs <- [ br; ld; ldn ];
  Block.append b (Instr.create Opcode.Br_ret ~srcs:[ Operand.Reg (vi 2); Operand.Reg (vi 3) ]);
  Func.append_block f b;
  let out = Block.create "out" in
  Block.append out (Instr.create Opcode.Br_ret ~srcs:[ Operand.imm 1 ]);
  Func.append_block f out;
  let live = Epic_analysis.Liveness.compute f in
  let g = Dag.build f live b in
  check cb "speculative load NOT pinned by branch" false (List.mem_assoc 1 g.Dag.succs.(0));
  check cb "non-speculative load pinned" true (List.mem_assoc 2 g.Dag.succs.(0))

(* --- scheduler invariants -------------------------------------------------- *)

(* After scheduling: (1) all instrs have cycles; (2) the list is sorted by
   cycle; (3) every DAG edge (i -> j, lat) satisfies cycle(j) >= cycle(i) +
   lat, with order preserved for latency 0; (4) per-cycle resource caps
   hold. *)
let schedule_invariants (f : Func.t) (b : Block.t) =
  let live = Epic_analysis.Liveness.compute f in
  let g = Dag.build f live b in
  List_sched.schedule_block f live b;
  let arr = Array.of_list b.Block.instrs in
  Array.iter (fun (i : Instr.t) -> assert (i.Instr.cycle >= 0)) arr;
  Array.iteri
    (fun k (i : Instr.t) ->
      if k > 0 then assert (arr.(k - 1).Instr.cycle <= i.Instr.cycle))
    arr;
  (* map id -> (cycle, position) *)
  let pos = Hashtbl.create 32 in
  Array.iteri (fun k (i : Instr.t) -> Hashtbl.replace pos i.Instr.id (i.Instr.cycle, k)) arr;
  Array.iteri
    (fun i_idx succs ->
      List.iter
        (fun (j_idx, lat) ->
          let ii = g.Dag.instrs.(i_idx) and jj = g.Dag.instrs.(j_idx) in
          let ci_, pi = Hashtbl.find pos ii.Instr.id in
          let cj, pj = Hashtbl.find pos jj.Instr.id in
          assert (cj >= ci_ + lat);
          if lat = 0 && cj = ci_ then assert (pj > pi))
        succs)
    g.Dag.succs;
  (* resource caps per cycle *)
  let by_cycle = Hashtbl.create 16 in
  Array.iter
    (fun (i : Instr.t) ->
      let l = match Hashtbl.find_opt by_cycle i.Instr.cycle with Some l -> l | None -> [] in
      Hashtbl.replace by_cycle i.Instr.cycle (i :: l))
    arr;
  Hashtbl.iter
    (fun _ instrs ->
      let caps = Itanium.fresh_caps () in
      List.iter (fun i -> assert (Itanium.take caps i)) (List.rev instrs))
    by_cycle;
  true

let test_schedule_simple_block () =
  let instrs =
    [
      Instr.create Opcode.Mov ~dsts:[ vi 1 ] ~srcs:[ Operand.imm 1 ];
      Instr.create Opcode.Mov ~dsts:[ vi 2 ] ~srcs:[ Operand.imm 2 ];
      Instr.create Opcode.Add ~dsts:[ vi 3 ] ~srcs:[ Operand.Reg (vi 1); Operand.Reg (vi 2) ];
      Instr.create Opcode.Mul ~dsts:[ vi 4 ] ~srcs:[ Operand.Reg (vi 3); Operand.imm 3 ];
    ]
  in
  let f, b = func_of_block instrs in
  check cb "invariants hold" true (schedule_invariants f b);
  (* the two independent movs share cycle 0 *)
  let cycles = List.map (fun (i : Instr.t) -> i.Instr.cycle) b.Block.instrs in
  check ci "first cycle is 0" 0 (List.hd cycles)

let test_schedule_respects_latency () =
  let instrs =
    [
      Instr.create Opcode.Mul ~dsts:[ vi 1 ] ~srcs:[ Operand.imm 3; Operand.imm 4 ];
      Instr.create Opcode.Add ~dsts:[ vi 2 ] ~srcs:[ Operand.Reg (vi 1); Operand.imm 1 ];
    ]
  in
  let f, b = func_of_block instrs in
  ignore (schedule_invariants f b);
  let mul = List.find (fun (i : Instr.t) -> i.Instr.op = Opcode.Mul) b.Block.instrs in
  let add = List.find (fun (i : Instr.t) -> i.Instr.op = Opcode.Add) b.Block.instrs in
  check cb "mul latency respected" true
    (add.Instr.cycle >= mul.Instr.cycle + Itanium.latency Opcode.Mul)

let test_schedule_issue_width () =
  (* ten independent movs cannot fit in one six-wide cycle *)
  let instrs =
    List.init 10 (fun k -> Instr.create Opcode.Mov ~dsts:[ vi (k + 1) ] ~srcs:[ Operand.imm k ])
  in
  let f, b = func_of_block instrs in
  ignore (schedule_invariants f b);
  let max_cycle =
    List.fold_left (fun m (i : Instr.t) -> max m i.Instr.cycle) 0 b.Block.instrs
  in
  check cb "spans at least two cycles" true (max_cycle >= 1)

(* qcheck: random straight-line blocks keep all invariants *)
let random_block_gen =
  let open QCheck.Gen in
  let op_gen regs =
    oneof
      [
        (let* d = int_range 1 regs and* k = int_range 0 99 in
         return (Instr.create Opcode.Mov ~dsts:[ vi d ] ~srcs:[ Operand.imm k ]));
        (let* d = int_range 1 regs and* a = int_range 1 regs and* b = int_range 1 regs in
         return
           (Instr.create Opcode.Add ~dsts:[ vi d ]
              ~srcs:[ Operand.Reg (vi a); Operand.Reg (vi b) ]));
        (let* d = int_range 1 regs and* a = int_range 1 regs in
         return
           (Instr.create Opcode.Mul ~dsts:[ vi d ] ~srcs:[ Operand.Reg (vi a); Operand.imm 3 ]));
        (let* d = int_range 1 regs and* a = int_range 1 regs in
         return
           (Instr.create (Opcode.Ld (Opcode.B8, Opcode.Nonspec)) ~dsts:[ vi d ]
              ~srcs:[ Operand.Reg (vi a) ]));
        (let* a = int_range 1 regs and* v = int_range 1 regs in
         return
           (Instr.create (Opcode.St Opcode.B8)
              ~srcs:[ Operand.Reg (vi a); Operand.Reg (vi v) ]));
      ]
  in
  let* n = int_range 1 40 in
  list_size (return n) (op_gen 8)

let qcheck_schedule =
  QCheck.Test.make ~count:60 ~name:"random blocks schedule with invariants"
    (QCheck.make random_block_gen)
    (fun instrs ->
      Instr.reset_ids ();
      let instrs = List.map Instr.copy instrs in
      let f, b = func_of_block instrs in
      schedule_invariants f b)

(* --- regalloc -------------------------------------------------------------- *)

let test_regalloc_all_physical () =
  let p = Epic_frontend.Lower.compile_source
      "int main() { int a; int b; a = 1; b = a + 2; print_int(a * b); return 0; }"
  in
  let before = Interp.run p [||] in
  Regalloc.run p;
  Program.iter_instrs p (fun i ->
      List.iter (fun (r : Reg.t) -> check cb "defs physical" true r.Reg.phys) (Instr.defs i);
      List.iter (fun (r : Reg.t) -> check cb "uses physical" true r.Reg.phys) (Instr.uses i));
  let after = Interp.run p [||] in
  let out3 (c, o, _) = (c, o) in
  check (Alcotest.pair ci Alcotest.string) "allocation preserves semantics"
    (out3 before) (out3 after)

let test_regalloc_n_stacked () =
  let p =
    Epic_frontend.Lower.compile_source
      {|
int callee(int x) { return x + 1; }
int main() {
  int a; int b; int c;
  a = input(0);
  b = callee(a);
  c = callee(b);
  print_int(a + b + c);
  return 0;
}
|}
  in
  Regalloc.run p;
  let main = Program.find_func_exn p "main" in
  (* a and b live across calls: at least two stacked registers *)
  check cb "call-crossing values use the register stack" true (main.Func.n_stacked >= 2)

let test_regalloc_spill_pressure () =
  (* force > 114 simultaneously live values with a big expression chain *)
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "int main() {\n";
  for k = 0 to 129 do
    Buffer.add_string buf (Printf.sprintf "  int v%d;\n" k)
  done;
  for k = 0 to 129 do
    Buffer.add_string buf (Printf.sprintf "  v%d = input(%d) + %d;\n" k k k)
  done;
  Buffer.add_string buf "  print_int(";
  for k = 0 to 129 do
    Buffer.add_string buf (if k = 0 then "v0" else Printf.sprintf " + v%d" k)
  done;
  Buffer.add_string buf ");\n  return 0;\n}\n";
  let src = Buffer.contents buf in
  let p = Epic_frontend.Lower.compile_source src in
  let input = Array.init 130 Int64.of_int in
  let c0, o0, _ = Interp.run p input in
  Regalloc.reset_stats ();
  Regalloc.run p;
  check cb "spills happened" true ((Regalloc.stats ()).Regalloc.spilled_vregs > 0);
  let c1, o1, _ = Interp.run p input in
  check (Alcotest.pair ci Alcotest.string) "spill code is correct" (c0, o0) (c1, o1)

(* --- bundler ---------------------------------------------------------------- *)

let test_bundle_pack_preserves_ops () =
  let mk op = Instr.create op ~dsts:[ vi 1 ] ~srcs:[ Operand.imm 0 ] in
  let g1 = [ mk Opcode.Add; mk Opcode.Shl; mk Opcode.Mov ] in
  let g2 = [ mk (Opcode.Ld (Opcode.B8, Opcode.Nonspec)); mk Opcode.Add ] in
  let bundles, ranges = Bundle.pack_block [ g1; g2 ] in
  let total_ops =
    List.fold_left (fun n b -> n + Bundle.op_count b) 0 bundles
  in
  check ci "all ops placed exactly once" 5 total_ops;
  check ci "one range per group" 2 (List.length ranges);
  (* program order preserved across the bundle stream *)
  let flat =
    List.concat_map
      (fun (b : Bundle.t) ->
        Array.to_list b.Bundle.slots
        |> List.filter_map (function Bundle.Op i -> Some i.Instr.id | Bundle.Nop_slot -> None))
      bundles
  in
  let expected = List.map (fun (i : Instr.t) -> i.Instr.id) (g1 @ g2) in
  check (Alcotest.list ci) "order preserved" expected flat

let test_bundle_template_classes () =
  (* a branch can only sit in a B slot of a branch-bearing template *)
  let br = Instr.create Opcode.Br ~srcs:[ Operand.Label "x" ] in
  let bundles = Bundle.pack_group [ br ] in
  List.iter
    (fun (b : Bundle.t) ->
      Array.iteri
        (fun k slot ->
          match slot with
          | Bundle.Op i when Instr.is_branch i ->
              let _, tmpl =
                List.find (fun (n, _) -> n = b.Bundle.template) Bundle.templates
              in
              check cb "branch sits in a B slot" true (tmpl.(k) = Bundle.SB)
          | _ -> ())
        b.Bundle.slots)
    bundles

let test_modulo_bounds () =
  (* a serial accumulator loop: RecMII dominated by the add chain; a wide
     independent loop: ResMII dominated by memory ports *)
  let b = Block.create "loop" in
  let acc = vi 1 and x = vi 2 in
  b.Block.instrs <-
    [
      Instr.create (Opcode.Ld (Opcode.B8, Opcode.Nonspec)) ~dsts:[ x ] ~srcs:[ Operand.Reg (vi 3) ];
      Instr.create Opcode.Mul ~dsts:[ acc ] ~srcs:[ Operand.Reg acc; Operand.Reg x ];
      Instr.create Opcode.Add ~dsts:[ vi 3 ] ~srcs:[ Operand.Reg (vi 3); Operand.imm 8 ];
      Instr.create ~pred:(Reg.virt 9 Reg.Prd) Opcode.Br ~srcs:[ Operand.Label "loop" ];
    ];
  (match Modulo.analyze_block b with
  | Some a ->
      (* the acc *= x recurrence costs a multiply (latency 3) per iteration *)
      check cb "recurrence bound from the multiply" true (a.Modulo.rec_mii >= Itanium.latency Opcode.Mul);
      check cb "mii >= both bounds" true
        (a.Modulo.mii >= a.Modulo.rec_mii && a.Modulo.mii >= a.Modulo.res_mii)
  | None -> Alcotest.fail "loop not recognized");
  (* resource-bound loop: five independent loads per iteration, two load pipes *)
  let b2 = Block.create "loop" in
  b2.Block.instrs <-
    List.init 5 (fun k ->
        Instr.create (Opcode.Ld (Opcode.B8, Opcode.Nonspec)) ~dsts:[ vi (10 + k) ]
          ~srcs:[ Operand.Reg (vi 3) ])
    @ [ Instr.create ~pred:(Reg.virt 9 Reg.Prd) Opcode.Br ~srcs:[ Operand.Label "loop" ] ];
  (match Modulo.analyze_block b2 with
  | Some a -> check cb "five loads need >= 2 cycles on 4 M slots" true (a.Modulo.res_mii >= 2)
  | None -> Alcotest.fail "loop2 not recognized")

let test_modulo_skips_calls () =
  let b = Block.create "loop" in
  b.Block.instrs <-
    [
      Instr.create Opcode.Br_call ~srcs:[ Operand.Sym "print_int"; Operand.imm 1 ];
      Instr.create ~pred:(Reg.virt 9 Reg.Prd) Opcode.Br ~srcs:[ Operand.Label "loop" ];
    ];
  check cb "loops with calls are not eligible" true (Modulo.analyze_block b = None)

let test_layout_addresses_monotonic () =
  let p = Epic_frontend.Lower.compile_source
      "int f() { return 2; }\nint main() { print_int(f()); return 0; }"
  in
  Regalloc.run p;
  List_sched.run p;
  let l = Layout.build p in
  check cb "nonzero code" true (l.Layout.code_bytes > 0);
  Hashtbl.iter
    (fun _ (bl : Layout.block_layout) ->
      Array.iter
        (fun (g : Layout.group) ->
          check cb "addresses set" true (Int64.compare g.Layout.addr 0L > 0))
        bl.Layout.groups)
    l.Layout.by_block

let suite =
  [
    ("dag RAW edge", `Quick, test_dag_raw_edge);
    ("dag memory edges", `Quick, test_dag_memory_edges);
    ("dag branch pins stores", `Quick, test_dag_branch_pins_store);
    ("dag speculative load freedom", `Quick, test_dag_speculative_load_free);
    ("schedule simple block", `Quick, test_schedule_simple_block);
    ("schedule latency", `Quick, test_schedule_respects_latency);
    ("schedule issue width", `Quick, test_schedule_issue_width);
    QCheck_alcotest.to_alcotest qcheck_schedule;
    ("regalloc all physical", `Quick, test_regalloc_all_physical);
    ("regalloc stacked count", `Quick, test_regalloc_n_stacked);
    ("regalloc spill pressure", `Quick, test_regalloc_spill_pressure);
    ("bundle pack preserves ops", `Quick, test_bundle_pack_preserves_ops);
    ("bundle template classes", `Quick, test_bundle_template_classes);
    ("modulo II bounds", `Quick, test_modulo_bounds);
    ("modulo skips calls", `Quick, test_modulo_skips_calls);
    ("layout addresses", `Quick, test_layout_addresses_monotonic);
  ]
