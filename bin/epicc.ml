(* epicc: compile mini-C source files with chosen configurations and run
   them on the Itanium-2-class simulator, printing program output, the
   cycle accounting and the headline counters.

   All compiles and runs route through one Epic_serve.Session, so a batch
   invocation — several FILEs, repeated --level — reuses the
   content-addressed artifact cache across its runs, and --json reports
   the session's hit/miss/eviction counters in a [session] block
   (stripped by --normalize-time, like [host]). *)

open Cmdliner
module Session = Epic_serve.Session

let level_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "gcc" -> Ok Epic_core.Config.Gcc_like
    | "o-ns" | "ons" -> Ok Epic_core.Config.O_NS
    | "ilp-ns" | "ilpns" -> Ok Epic_core.Config.ILP_NS
    | "ilp-cs" | "ilpcs" -> Ok Epic_core.Config.ILP_CS
    | _ -> Error (`Msg "expected one of: gcc, o-ns, ilp-ns, ilp-cs")
  in
  let print ppf l = Fmt.string ppf (Epic_core.Config.level_name l) in
  Arg.conv (parse, print)

let files =
  Arg.(
    non_empty & pos_all file []
    & info [] ~docv:"FILE" ~doc:"mini-C source file(s); several run through one session")

let levels =
  Arg.(
    value
    & opt_all level_conv []
    & info [ "O"; "level" ] ~docv:"LEVEL"
        ~doc:
          "optimization level: gcc, o-ns, ilp-ns, ilp-cs (default ilp-cs).  \
           Repeatable: each FILE runs once per level, all through the same \
           session cache")

let sentinel =
  Arg.(value & flag & info [ "sentinel" ] ~doc:"use sentinel (chk.s) speculation instead of general")

let no_pa =
  Arg.(value & flag & info [ "no-pointer-analysis" ] ~doc:"disable interprocedural pointer analysis")

let inputs =
  Arg.(
    value
    & opt (list int) []
    & info [ "i"; "input" ] ~docv:"INTS" ~doc:"comma-separated input vector (read by input(i))")

let train =
  Arg.(
    value
    & opt (some (list int)) None
    & info [ "train" ] ~docv:"INTS" ~doc:"training input for profiling (defaults to the run input)")

let dump_ir = Arg.(value & flag & info [ "dump-ir" ] ~doc:"print the final IR before running")

let show_loops =
  Arg.(
    value & flag
    & info [ "loops" ]
        ~doc:"print the modulo-scheduling analysis (ResMII/RecMII/achieved II) of inner loops")

let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"print program output only")

let json_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "write the full run metrics (cycle accounting, counters, per-pass \
           compiler instrumentation, PC-sampling profile, session cache \
           counters) as JSON to $(docv); with several runs, a document with \
           a $(b,runs) array")

let normalize_time =
  Arg.(
    value & flag
    & info [ "normalize-time" ]
        ~doc:
          "normalize the --json document for byte-for-byte diffing: zero \
           wall-clock fields and drop the host and session sections \
           (Export.normalize_time)")

let trace_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "enable architectural event tracing (cache misses, TLB walks, \
           mispredict flushes, RSE traffic, speculation events) and write the \
           event counts plus the trailing ring-buffer window as JSON to $(docv)")

let sample_period =
  Arg.(
    value
    & opt int 0
    & info [ "sample-period" ] ~docv:"N"
        ~doc:
          "sample the simulated PC every $(docv) cycles (0 disables sampling; \
           a prime such as 97 avoids aliasing with periodic code).  The \
           profile lands in the --json document")

let profile_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile-out" ] ~docv:"FILE"
        ~doc:
          "write the PC-sampling profile (period, per-function and per-block \
           sample counts) as JSON to its own $(docv) instead of interleaving \
           it in the --json document (whose profile field is then null).  \
           Implies sampling, at --sample-period or the suite default")

let sample_sim =
  Arg.(
    value
    & opt ~vopt:(Some "") (some string) None
    & info [ "sample-sim" ] ~docv:"I:D[:W]"
        ~doc:
          "simulate under interval sampling: fast-forward in a \
           functional-warming mode and charge cycles only during periodic \
           detailed phases, extrapolating the accounting (with confidence \
           bounds in the --json document).  $(docv) is \
           INTERVAL:DETAIL[:WARMUP] in issue groups; bare $(b,--sample-sim) \
           uses the tuned default plan.  Program output and exit code are \
           exact; cycles are estimates")

let write_json f doc =
  try Epic_obs.Json.to_file f doc
  with Sys_error m ->
    Fmt.epr "epicc: cannot write %s: %s@." f m;
    exit 1

let print_counters config (o : Session.outcome) =
  let m = o.Session.o_metrics in
  Fmt.pr "@.;; %s: exit code %d@." (Epic_core.Config.name config) o.Session.o_code;
  Fmt.pr ";; cycles          %12.0f@." m.Epic_core.Metrics.cycles;
  Fmt.pr ";; planned cycles  %12.0f@." m.Epic_core.Metrics.planned;
  Fmt.pr ";; useful ops      %12d (%.2f IPC)@." m.Epic_core.Metrics.useful_ops
    (float_of_int m.Epic_core.Metrics.useful_ops
    /. max 1.0 m.Epic_core.Metrics.cycles);
  Fmt.pr ";; squashed ops    %12d@." m.Epic_core.Metrics.squashed_ops;
  Fmt.pr ";; nop ops         %12d@." m.Epic_core.Metrics.nop_ops;
  Fmt.pr ";; branches        %12d (%d mispredicted)@." m.Epic_core.Metrics.branches
    m.Epic_core.Metrics.mispredictions;
  Fmt.pr ";; wild loads      %12d@." m.Epic_core.Metrics.wild_loads;
  Fmt.pr ";; chk recoveries  %12d@." m.Epic_core.Metrics.chk_recoveries;
  Fmt.pr ";; code size       %12d bytes@."
    m.Epic_core.Metrics.stats.Epic_core.Driver.code_bytes;
  Fmt.pr ";; cycle accounting:@.";
  List.iter
    (fun c ->
      Fmt.pr "%-16s %12.0f@." (Epic_sim.Accounting.name c)
        m.Epic_core.Metrics.categories.(Epic_sim.Accounting.index c))
    Epic_sim.Accounting.all_categories;
  Fmt.pr "%-16s %12.0f@." "TOTAL" m.Epic_core.Metrics.cycles;
  match m.Epic_core.Metrics.sampling with
  | None -> ()
  | Some su ->
      Fmt.pr ";; sampled (%s): %d/%d groups detailed over %d phases, +-%.0f \
              cycles (95%%)@."
        (Epic_sim.Sampling.key_fragment su.Epic_sim.Sampling.s_plan)
        su.Epic_sim.Sampling.s_detail_groups
        su.Epic_sim.Sampling.s_total_groups su.Epic_sim.Sampling.s_phases
        su.Epic_sim.Sampling.s_ci95

(* One (file, level) cell: compile and run through the session.  The
   instrumented path (--trace / --profile-out) needs the raw instrument
   objects back, so it runs outside the run cache — the compile and
   reference caches still apply. *)
let run_cell session ~file ~level ~sentinel ~no_pa ~input ~train ~dump_ir
    ~show_loops ~quiet ~json_wanted ~trace_file ~sample_period ~profile_out
    ~sampling =
  let src = In_channel.with_open_text file In_channel.input_all in
  let config =
    {
      (Epic_core.Config.make level) with
      Epic_core.Config.spec_model =
        (if sentinel then Epic_ilp.Speculate.Sentinel else Epic_ilp.Speculate.General);
      Epic_core.Config.pointer_analysis = not no_pa;
    }
  in
  match Session.compile session ~config ~desc:None ~train src with
  | exception Epic_frontend.Lexer.Lex_error (m, l) ->
      Fmt.epr "%s:%d: lexical error: %s@." file l m;
      exit 1
  | exception Epic_frontend.Parser.Parse_error (m, l) ->
      Fmt.epr "%s:%d: syntax error: %s@." file l m;
      exit 1
  | exception Epic_frontend.Lower.Lower_error (m, l) ->
      Fmt.epr "%s:%d: error: %s@." file l m;
      exit 1
  | compiled, key, _compile_hit ->
      if dump_ir then Fmt.pr "%a@." Epic_ir.Program.pp compiled.Epic_core.Driver.program;
      if show_loops then begin
        Fmt.pr ";; inner-loop modulo-scheduling analysis:@.";
        List.iter
          (fun (fname, (a : Epic_sched.Modulo.loop_analysis)) ->
            Fmt.pr ";;   %s/%s: %d ops, ResMII=%d RecMII=%d MII=%d achieved II=%s@."
              fname a.Epic_sched.Modulo.label a.Epic_sched.Modulo.n_ops
              a.Epic_sched.Modulo.res_mii a.Epic_sched.Modulo.rec_mii
              a.Epic_sched.Modulo.mii
              (match a.Epic_sched.Modulo.achieved_ii with
              | Some ii -> string_of_int ii
              | None -> "-"))
          (Epic_sched.Modulo.analyze compiled.Epic_core.Driver.program)
      end;
      let workload = Filename.basename file in
      let reference, _ = Session.reference session ~source:src ~input in
      let instrumented = trace_file <> None || profile_out <> None in
      let outcome =
        if instrumented then begin
          let trace =
            match trace_file with
            | Some _ -> Some (Epic_obs.Trace.create ())
            | None -> None
          in
          let profile =
            if sample_period > 0 then
              Some (Epic_obs.Profile.create ~period:sample_period ())
            else if json_wanted || profile_out <> None then
              Some (Epic_obs.Profile.create ())
            else None
          in
          let code, out, st =
            Epic_core.Driver.run ?trace ?profile ?sampling compiled input
          in
          (match trace_file with
          | Some f ->
              let tr = Option.get trace in
              write_json f (Epic_obs.Trace.to_json tr);
              if not quiet then
                Fmt.epr ";; wrote %d trace events (%d kinds, %d dropped) to %s@."
                  (Epic_obs.Trace.total tr)
                  (Epic_obs.Trace.distinct_kinds tr)
                  (Epic_obs.Trace.dropped tr) f
          | None -> ());
          (match profile_out with
          | Some f ->
              let p = Option.get profile in
              write_json f (Epic_obs.Profile.to_json p);
              if not quiet then
                Fmt.epr ";; wrote %d profile samples (period %d) to %s@."
                  (Epic_obs.Profile.samples p)
                  (Epic_obs.Profile.period p)
                  f
          | None -> ());
          (* with --profile-out the profile lives in its own file; keep the
             main document's profile field null rather than duplicating *)
          let json_profile = if profile_out = None then profile else None in
          let ref_code, ref_out = reference in
          let metrics =
            Epic_core.Metrics.of_machine ~workload ?profile:json_profile
              compiled st
              ~output_matches:(code = ref_code && out = ref_out)
          in
          {
            Session.o_code = code;
            Session.o_output = out;
            Session.o_metrics = metrics;
          }
        end
        else begin
          let sp =
            if sample_period > 0 then sample_period
            else if json_wanted then Epic_core.Experiments.sample_period
            else 0
          in
          let o, _run_hit =
            Session.run session ?sampling ~sample_period:sp ~workload
              ~reference ~key compiled input
          in
          o
        end
      in
      print_string outcome.Session.o_output;
      (config, outcome)

let run_cmd files levels sentinel no_pa inputs train dump_ir show_loops quiet
    json_file normalize trace_file sample_period profile_out sample_sim =
  let levels = match levels with [] -> [ Epic_core.Config.ILP_CS ] | l -> l in
  let sampling =
    match sample_sim with
    | None -> None
    | Some spec -> (
        try Some (Epic_sim.Sampling.parse_spec spec)
        with Invalid_argument m ->
          Fmt.epr "epicc: %s@." m;
          exit 2)
  in
  let input = Array.of_list (List.map Int64.of_int inputs) in
  let train =
    match train with
    | Some t -> Array.of_list (List.map Int64.of_int t)
    | None -> input
  in
  let cells = List.concat_map (fun f -> List.map (fun l -> (f, l)) levels) files in
  let single = match cells with [ _ ] -> true | _ -> false in
  if (not single) && (dump_ir || show_loops || trace_file <> None || profile_out <> None)
  then begin
    Fmt.epr "epicc: --dump-ir, --loops, --trace and --profile-out need a single FILE and level@.";
    exit 2
  end;
  let session = Session.create () in
  let results =
    List.map
      (fun (file, level) ->
        run_cell session ~file ~level ~sentinel ~no_pa ~input ~train ~dump_ir
          ~show_loops ~quiet ~json_wanted:(json_file <> None) ~trace_file
          ~sample_period ~profile_out ~sampling)
      cells
  in
  (match json_file with
  | Some f ->
      let run_doc (_, (o : Session.outcome)) =
        Epic_core.Export.run_to_json o.Session.o_metrics
      in
      let doc =
        match results with
        | [ r ] -> (
            (* single run: the historical flat run document, plus the
               session counters *)
            match run_doc r with
            | Epic_obs.Json.Obj fields ->
                Epic_obs.Json.Obj
                  (fields @ [ ("session", Session.stats_to_json session) ])
            | j -> j)
        | rs ->
            Epic_obs.Json.Obj
              [
                ("runs", Epic_obs.Json.List (List.map run_doc rs));
                ("session", Session.stats_to_json session);
              ]
      in
      let doc = if normalize then Epic_core.Export.normalize_time doc else doc in
      write_json f doc;
      if not quiet then Fmt.epr ";; wrote run metrics to %s@." f
  | None -> ());
  if not quiet then begin
    List.iter (fun (config, o) -> print_counters config o) results;
    let s = Session.stats session in
    if List.length results > 1 || s.Session.st_compile_hits > 0 then
      Fmt.epr ";; session: compile %d hits / %d misses, run %d hits / %d misses@."
        s.Session.st_compile_hits s.Session.st_compile_misses
        s.Session.st_run_hits s.Session.st_run_misses
  end;
  match results with
  | [ (_, o) ] -> exit o.Session.o_code
  | _ -> exit 0

let cmd =
  let doc = "compile mini-C for an Itanium-2-class EPIC machine and simulate it" in
  Cmd.v
    (Cmd.info "epicc" ~doc)
    Term.(
      const run_cmd $ files $ levels $ sentinel $ no_pa $ inputs $ train
      $ dump_ir $ show_loops $ quiet $ json_file $ normalize_time $ trace_file
      $ sample_period $ profile_out $ sample_sim)

let () = exit (Cmd.eval cmd)
