(* epicc: compile a mini-C source file with a chosen configuration and run
   it on the Itanium-2-class simulator, printing program output, the cycle
   accounting and the headline counters. *)

open Cmdliner

let level_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "gcc" -> Ok Epic_core.Config.Gcc_like
    | "o-ns" | "ons" -> Ok Epic_core.Config.O_NS
    | "ilp-ns" | "ilpns" -> Ok Epic_core.Config.ILP_NS
    | "ilp-cs" | "ilpcs" -> Ok Epic_core.Config.ILP_CS
    | _ -> Error (`Msg "expected one of: gcc, o-ns, ilp-ns, ilp-cs")
  in
  let print ppf l = Fmt.string ppf (Epic_core.Config.level_name l) in
  Arg.conv (parse, print)

let file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"mini-C source file")

let level =
  Arg.(
    value
    & opt level_conv Epic_core.Config.ILP_CS
    & info [ "O"; "level" ] ~docv:"LEVEL" ~doc:"optimization level: gcc, o-ns, ilp-ns, ilp-cs")

let sentinel =
  Arg.(value & flag & info [ "sentinel" ] ~doc:"use sentinel (chk.s) speculation instead of general")

let no_pa =
  Arg.(value & flag & info [ "no-pointer-analysis" ] ~doc:"disable interprocedural pointer analysis")

let inputs =
  Arg.(
    value
    & opt (list int) []
    & info [ "i"; "input" ] ~docv:"INTS" ~doc:"comma-separated input vector (read by input(i))")

let train =
  Arg.(
    value
    & opt (some (list int)) None
    & info [ "train" ] ~docv:"INTS" ~doc:"training input for profiling (defaults to the run input)")

let dump_ir = Arg.(value & flag & info [ "dump-ir" ] ~doc:"print the final IR before running")

let show_loops =
  Arg.(
    value & flag
    & info [ "loops" ]
        ~doc:"print the modulo-scheduling analysis (ResMII/RecMII/achieved II) of inner loops")

let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"print program output only")

let json_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "write the full run metrics (cycle accounting, counters, per-pass \
           compiler instrumentation, PC-sampling profile) as JSON to $(docv)")

let trace_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "enable architectural event tracing (cache misses, TLB walks, \
           mispredict flushes, RSE traffic, speculation events) and write the \
           event counts plus the trailing ring-buffer window as JSON to $(docv)")

let sample_period =
  Arg.(
    value
    & opt int 0
    & info [ "sample-period" ] ~docv:"N"
        ~doc:
          "sample the simulated PC every $(docv) cycles (0 disables sampling; \
           a prime such as 97 avoids aliasing with periodic code).  The \
           profile lands in the --json document")

let profile_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile-out" ] ~docv:"FILE"
        ~doc:
          "write the PC-sampling profile (period, per-function and per-block \
           sample counts) as JSON to its own $(docv) instead of interleaving \
           it in the --json document (whose profile field is then null).  \
           Implies sampling, at --sample-period or the suite default")

let run_cmd file level sentinel no_pa inputs train dump_ir show_loops quiet json_file
    trace_file sample_period profile_out =
  let src = In_channel.with_open_text file In_channel.input_all in
  let input = Array.of_list (List.map Int64.of_int inputs) in
  let train =
    match train with
    | Some t -> Array.of_list (List.map Int64.of_int t)
    | None -> input
  in
  let config =
    {
      (Epic_core.Config.make level) with
      Epic_core.Config.spec_model =
        (if sentinel then Epic_ilp.Speculate.Sentinel else Epic_ilp.Speculate.General);
      Epic_core.Config.pointer_analysis = not no_pa;
    }
  in
  match Epic_core.Driver.compile ~config ~train src with
  | exception Epic_frontend.Lexer.Lex_error (m, l) ->
      Fmt.epr "%s:%d: lexical error: %s@." file l m;
      exit 1
  | exception Epic_frontend.Parser.Parse_error (m, l) ->
      Fmt.epr "%s:%d: syntax error: %s@." file l m;
      exit 1
  | exception Epic_frontend.Lower.Lower_error (m, l) ->
      Fmt.epr "%s:%d: error: %s@." file l m;
      exit 1
  | compiled ->
      if dump_ir then Fmt.pr "%a@." Epic_ir.Program.pp compiled.Epic_core.Driver.program;
      if show_loops then begin
        Fmt.pr ";; inner-loop modulo-scheduling analysis:@.";
        List.iter
          (fun (fname, (a : Epic_sched.Modulo.loop_analysis)) ->
            Fmt.pr ";;   %s/%s: %d ops, ResMII=%d RecMII=%d MII=%d achieved II=%s@."
              fname a.Epic_sched.Modulo.label a.Epic_sched.Modulo.n_ops
              a.Epic_sched.Modulo.res_mii a.Epic_sched.Modulo.rec_mii
              a.Epic_sched.Modulo.mii
              (match a.Epic_sched.Modulo.achieved_ii with
              | Some ii -> string_of_int ii
              | None -> "-"))
          (Epic_sched.Modulo.analyze compiled.Epic_core.Driver.program)
      end;
      let trace =
        match trace_file with
        | Some _ -> Some (Epic_obs.Trace.create ())
        | None -> None
      in
      let profile =
        (* --json without an explicit period still samples: the JSON schema
           promises a profile, and the default period matches the suite's.
           --profile-out likewise implies sampling. *)
        if sample_period > 0 then Some (Epic_obs.Profile.create ~period:sample_period ())
        else if json_file <> None || profile_out <> None then
          Some (Epic_obs.Profile.create ())
        else None
      in
      let code, out, st = Epic_core.Driver.run ?trace ?profile compiled input in
      print_string out;
      let write_json f doc =
        try Epic_obs.Json.to_file f doc
        with Sys_error m ->
          Fmt.epr "epicc: cannot write %s: %s@." f m;
          exit 1
      in
      (match trace_file with
      | Some f ->
          let tr = Option.get trace in
          write_json f (Epic_obs.Trace.to_json tr);
          if not quiet then
            Fmt.epr ";; wrote %d trace events (%d kinds, %d dropped) to %s@."
              (Epic_obs.Trace.total tr)
              (Epic_obs.Trace.distinct_kinds tr)
              (Epic_obs.Trace.dropped tr) f
      | None -> ());
      (match profile_out with
      | Some f ->
          let p = Option.get profile in
          write_json f (Epic_obs.Profile.to_json p);
          if not quiet then
            Fmt.epr ";; wrote %d profile samples (period %d) to %s@."
              (Epic_obs.Profile.samples p)
              (Epic_obs.Profile.period p)
              f
      | None -> ());
      (match json_file with
      | Some f ->
          let ref_code, ref_out =
            let p = Epic_frontend.Lower.compile_source src in
            let c, o, _ = Epic_ir.Interp.run p input in
            (c, o)
          in
          (* with --profile-out the profile lives in its own file; keep the
             main document's profile field null rather than duplicating *)
          let json_profile = if profile_out = None then profile else None in
          let run =
            Epic_core.Metrics.of_machine ~workload:(Filename.basename file)
              ?profile:json_profile compiled st
              ~output_matches:(code = ref_code && out = ref_out)
          in
          write_json f (Epic_core.Export.run_to_json run);
          if not quiet then Fmt.epr ";; wrote run metrics to %s@." f
      | None -> ());
      if not quiet then begin
        let open Epic_sim in
        Fmt.pr "@.;; %s: exit code %d@." (Epic_core.Config.name config) code;
        Fmt.pr ";; cycles          %12.0f@." (Accounting.total st.Machine.acc);
        Fmt.pr ";; planned cycles  %12.0f@." (Accounting.planned st.Machine.acc);
        Fmt.pr ";; useful ops      %12d (%.2f IPC)@." st.Machine.c.Machine.useful_ops
          (float_of_int st.Machine.c.Machine.useful_ops
          /. max 1.0 (Accounting.total st.Machine.acc));
        Fmt.pr ";; squashed ops    %12d@." st.Machine.c.Machine.squashed_ops;
        Fmt.pr ";; nop ops         %12d@." st.Machine.c.Machine.nop_ops;
        Fmt.pr ";; branches        %12d (%d mispredicted)@." st.Machine.c.Machine.branches
          st.Machine.bp.Branch_pred.mispredictions;
        Fmt.pr ";; wild loads      %12d@." st.Machine.c.Machine.wild_loads;
        Fmt.pr ";; chk recoveries  %12d@." st.Machine.c.Machine.chk_recoveries;
        Fmt.pr ";; code size       %12d bytes@."
          compiled.Epic_core.Driver.transform_stats.Epic_core.Driver.code_bytes;
        Fmt.pr ";; cycle accounting:@.%a" Accounting.pp st.Machine.acc
      end;
      exit code

let cmd =
  let doc = "compile mini-C for an Itanium-2-class EPIC machine and simulate it" in
  Cmd.v
    (Cmd.info "epicc" ~doc)
    Term.(
      const run_cmd $ file $ level $ sentinel $ no_pa $ inputs $ train $ dump_ir
      $ show_loops $ quiet $ json_file $ trace_file $ sample_period
      $ profile_out)

let () = exit (Cmd.eval cmd)
