(* Regenerate every table and figure of the paper's evaluation section.
   With no arguments runs everything; otherwise each argument names one
   experiment: table1 fig2 fig5 fig6 fig7 fig8 fig10 stats spec_model
   profvar ablations. *)

let usage = "experiments [-j N] [table1|fig2|fig5|fig6|fig7|fig8|fig10|stats|spec_model|profvar|ablations]*"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* `-j N` / `--jobs N`: shard the suite over N domains.  The default is
     the recommended domain count capped at the job count; `-j 1` is the
     explicit sequential escape hatch. *)
  let jobs = ref 0 in
  let rec split_opts acc = function
    | ("-j" | "--jobs") :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n >= 1 -> jobs := n
        | _ ->
            prerr_endline usage;
            exit 2);
        split_opts acc rest
    | a :: rest -> split_opts (a :: acc) rest
    | [] -> List.rev acc
  in
  let args = split_opts [] args in
  let wanted x = args = [] || List.mem x args in
  let needs_suite =
    List.exists wanted [ "table1"; "fig2"; "fig5"; "fig6"; "fig7"; "fig8"; "fig10"; "stats" ]
  in
  if List.exists (fun a -> a = "-h" || a = "--help") args then print_endline usage
  else begin
    let suite =
      if needs_suite then begin
        let jobs =
          if !jobs >= 1 then !jobs
          else
            min
              (Domain.recommended_domain_count ())
              (4 * List.length Epic_workloads.Suite.all)
        in
        (* one session for the whole invocation: every suite compile goes
           through its content-addressed artifact cache *)
        let session = Epic_serve.Session.create ~jobs () in
        Some (Epic_serve.Session.suite session ~progress:true ())
      end
      else None
    in
    (match suite with
    | Some s ->
        if wanted "table1" then Epic_core.Report.print_table1 s;
        if wanted "fig2" then Epic_core.Report.print_fig2 s;
        if wanted "fig5" then Epic_core.Report.print_fig5 s;
        if wanted "fig6" then Epic_core.Report.print_fig6 s;
        if wanted "fig7" then Epic_core.Report.print_fig7 s;
        if wanted "fig8" then Epic_core.Report.print_fig8 s;
        if wanted "fig10" then Epic_core.Report.print_fig10 s;
        if wanted "stats" then Epic_core.Report.print_stats s
    | None -> ());
    if wanted "spec_model" then
      Epic_core.Report.print_spec_model (Epic_core.Experiments.spec_model_experiment ());
    if wanted "profvar" then
      Epic_core.Report.print_profvar (Epic_core.Experiments.profile_variation ());
    if wanted "ablations" then
      Epic_core.Report.print_ablations (Epic_core.Experiments.ablations ());
    if wanted "data_spec" then
      Epic_core.Report.print_data_spec (Epic_core.Experiments.data_spec_experiment ())
  end
