(* epicq: the epicd client.  Builds protocol requests from CLI flags,
   speaks the newline-delimited JSON protocol over the daemon's
   Unix-domain socket, and writes results with the same emitter as the
   batch CLIs (Json.to_file: pretty, trailing newline) so a served run
   document is byte-comparable against `epicc --json`.

   Subcommands:
     epicq [opts] ping | stats | shutdown
     epicq [opts] compile --source FILE [-O LEVEL] [--train CSV]
     epicq [opts] run --source FILE [--workload NAME] [-O LEVEL]
                      [-i CSV] [--train CSV] [--sample-period N]
                      [--sample-sim I:D[:W]] [--normalize-time]
                      [--require-cached] [--out FILE]
     epicq [opts] req 'JSON'            one raw request line
     epicq [opts] burst FILE            pipeline every line of FILE
   Common opts: --socket PATH (default epicd.sock), -q, --out FILE. *)

module Json = Epic_obs.Json

let usage =
  "usage: epicq [--socket PATH] [-q] [--out FILE] \
   (ping|stats|shutdown|compile|run|req JSON|burst FILE) [op flags]"

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("epicq: " ^ m); exit 2) fmt

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with Unix.Unix_error (e, _, _) ->
     die "cannot connect to %s: %s (is epicd running?)" path
       (Unix.error_message e));
  fd

(* Send [lines] (pipelined), then read exactly one response line each. *)
let exchange fd lines =
  let out = Unix.out_channel_of_descr fd in
  List.iter
    (fun l ->
      output_string out l;
      output_char out '\n')
    lines;
  flush out;
  let inc = Unix.in_channel_of_descr fd in
  List.map
    (fun _ ->
      match In_channel.input_line inc with
      | Some l -> l
      | None -> die "connection closed before all responses arrived")
    lines

let csv_int64s s =
  Array.of_list
    (List.map
       (fun x -> Int64.of_string (String.trim x))
       (List.filter (fun x -> String.trim x <> "") (String.split_on_char ',' s)))

let int64s_json a =
  Json.List (Array.to_list (Array.map (fun v -> Json.Int (Int64.to_int v)) a))

let read_file f =
  try In_channel.with_open_text f In_channel.input_all
  with Sys_error m -> die "%s" m

let () =
  let socket_path = ref "epicd.sock" in
  let quiet = ref false in
  let out_file = ref None in
  let command = ref None in
  let command_arg = ref None in
  let source = ref None in
  let workload = ref None in
  let level = ref None in
  let inputs = ref None in
  let train = ref None in
  let sample_period = ref None in
  let sample_sim = ref None in
  let normalize = ref false in
  let require_cached = ref false in
  let rec parse_args = function
    | [] -> ()
    | "--socket" :: p :: rest -> socket_path := p; parse_args rest
    | ("-q" | "--quiet") :: rest -> quiet := true; parse_args rest
    | "--out" :: f :: rest -> out_file := Some f; parse_args rest
    | "--source" :: f :: rest -> source := Some f; parse_args rest
    | "--workload" :: w :: rest -> workload := Some w; parse_args rest
    | ("-O" | "--level") :: l :: rest -> level := Some l; parse_args rest
    | ("-i" | "--input") :: v :: rest -> inputs := Some v; parse_args rest
    | "--train" :: v :: rest -> train := Some v; parse_args rest
    | "--sample-period" :: n :: rest ->
        sample_period := Some (int_of_string n); parse_args rest
    | "--sample-sim" :: s :: rest -> sample_sim := Some s; parse_args rest
    | "--normalize-time" :: rest -> normalize := true; parse_args rest
    | "--require-cached" :: rest -> require_cached := true; parse_args rest
    | ("-h" | "--help") :: _ -> print_endline usage; exit 0
    | a :: rest when !command = None -> command := Some a; parse_args rest
    | a :: rest when !command_arg = None -> command_arg := Some a; parse_args rest
    | a :: _ -> die "unexpected argument %s\n%s" a usage
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let cmd = match !command with Some c -> c | None -> die "%s" usage in
  let common_fields () =
    let src = match !source with Some f -> f | None -> die "--source is required" in
    [ ("source", Json.Str (read_file src)) ]
    @ (match !level with Some l -> [ ("level", Json.Str l) ] | None -> [])
    @ match !train with
      | Some t -> [ ("train", int64s_json (csv_int64s t)) ]
      | None -> []
  in
  let request =
    match cmd with
    | "ping" | "stats" | "shutdown" ->
        Json.Obj [ ("id", Json.Int 1); ("op", Json.Str cmd) ]
    | "compile" ->
        Json.Obj
          ([ ("id", Json.Int 1); ("op", Json.Str "compile") ] @ common_fields ())
    | "run" ->
        Json.Obj
          ([ ("id", Json.Int 1); ("op", Json.Str "run") ]
          @ common_fields ()
          @ (match !workload with
            | Some w -> [ ("workload", Json.Str w) ]
            | None -> [])
          @ (match !inputs with
            | Some i -> [ ("input", int64s_json (csv_int64s i)) ]
            | None -> [])
          @ (match !sample_period with
            | Some n -> [ ("sample_period", Json.Int n) ]
            | None -> [])
          @ (match !sample_sim with
            | Some s -> [ ("sampling", Json.Str s) ]
            | None -> [])
          @ if !normalize then [ ("normalize_time", Json.Bool true) ] else [])
    | "req" -> (
        match !command_arg with
        | Some raw -> (
            match Json.of_string raw with
            | Ok j -> j
            | Error m -> die "bad request JSON: %s" m)
        | None -> die "req needs a JSON argument")
    | "burst" -> Json.Null (* handled below *)
    | other -> die "unknown command %s\n%s" other usage
  in
  let fd = connect !socket_path in
  let emit_result doc =
    match !out_file with
    | Some f -> Json.to_file f doc
    | None -> print_endline (Json.to_string ~pretty:true doc)
  in
  match cmd with
  | "burst" ->
      let file = match !command_arg with Some f -> f | None -> die "burst needs a FILE" in
      let lines =
        List.filter
          (fun l -> String.trim l <> "")
          (String.split_on_char '\n' (read_file file))
      in
      let responses = exchange fd lines in
      let body = String.concat "\n" responses ^ "\n" in
      (match !out_file with
      | Some f -> Out_channel.with_open_text f (fun oc -> output_string oc body)
      | None -> print_string body);
      (* any failed response fails the burst *)
      let failures =
        List.filter
          (fun l ->
            match Json.of_string l with
            | Ok j -> Json.member "ok" j <> Some (Json.Bool true)
            | Error _ -> true)
          responses
      in
      if failures <> [] then begin
        Printf.eprintf "epicq: %d of %d burst requests failed\n"
          (List.length failures) (List.length responses);
        exit 1
      end
  | _ -> (
      let line = Json.to_string request in
      let resp =
        match exchange fd [ line ] with [ r ] -> r | _ -> assert false
      in
      match Json.of_string resp with
      | Error m -> die "bad response: %s" m
      | Ok j ->
          let ok = Json.member "ok" j = Some (Json.Bool true) in
          if not ok then begin
            let msg =
              match Json.member "error" j with
              | Some (Json.Str m) -> m
              | _ -> resp
            in
            die "server error: %s" msg
          end;
          let cached =
            match Json.member "cached" j with
            | Some (Json.Bool b) -> Some b
            | _ -> None
          in
          (match cached with
          | Some b when not !quiet ->
              Printf.eprintf "epicq: cached=%b\n" b
          | _ -> ());
          if !require_cached && cached <> Some true then
            die "--require-cached: response was not served from the cache";
          (match Json.member "result" j with
          | Some r -> emit_result r
          | None -> ());
          (match cmd with
          | "run" -> (
              (* surface the simulated program's output and exit code like
                 a local run would *)
              (match Json.member "output" j with
              | Some (Json.Str out) when not !quiet -> print_string out
              | _ -> ());
              match Json.member "exit_code" j with
              | Some (Json.Int c) when c <> 0 -> exit c
              | _ -> ())
          | _ -> ()))
