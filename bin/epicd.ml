(* epicd: a persistent compile/simulate service over a Unix-domain socket.

   One process owns one Epic_serve.Session — a domain pool plus the
   bounded content-addressed compile/run caches — and speaks the
   newline-delimited JSON protocol of Epic_serve.Protocol: clients write
   one request object per line and read one response line per request,
   in order.

   Batching: each select() wake-up drains every complete line already
   buffered across all clients into one batch.  Light requests (ping,
   stats, compile, run) are fanned over the session's domain pool —
   concurrent identical keys compile exactly once, the rest wait on the
   in-flight table and read the cache.  Heavy matrix requests (suite,
   sweep, causal) parallelize internally, so they run serially after the
   light ones.  Responses are written back per client in request order. *)

module Protocol = Epic_serve.Protocol
module Session = Epic_serve.Session

let usage =
  "usage: epicd [--socket PATH] [-j N] [--compile-cache N] [--run-cache N] [-q]"

let () =
  let socket_path = ref "epicd.sock" in
  let jobs = ref 1 in
  let compile_cap = ref 64 in
  let run_cap = ref 256 in
  let quiet = ref false in
  let rec parse_args = function
    | [] -> ()
    | "--socket" :: p :: rest -> socket_path := p; parse_args rest
    | "-j" :: n :: rest | "--jobs" :: n :: rest ->
        jobs := int_of_string n; parse_args rest
    | "--compile-cache" :: n :: rest -> compile_cap := int_of_string n; parse_args rest
    | "--run-cache" :: n :: rest -> run_cap := int_of_string n; parse_args rest
    | ("-q" | "--quiet") :: rest -> quiet := true; parse_args rest
    | ("-h" | "--help") :: _ -> print_endline usage; exit 0
    | a :: _ -> Printf.eprintf "epicd: unknown argument %s\n%s\n" a usage; exit 2
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let session =
    Session.create ~jobs:!jobs ~compile_capacity:!compile_cap
      ~run_capacity:!run_cap ()
  in
  (* a client that disconnects mid-write must not kill the daemon *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  if Sys.file_exists !socket_path then Sys.remove !socket_path;
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX !socket_path);
  Unix.listen srv 16;
  if not !quiet then
    Printf.eprintf "epicd: listening on %s (jobs=%d, compile-cache=%d, run-cache=%d)\n%!"
      !socket_path !jobs !compile_cap !run_cap;
  (* per-client input buffer: bytes received but not yet a complete line *)
  let clients : (Unix.file_descr, Buffer.t) Hashtbl.t = Hashtbl.create 8 in
  let close_client fd =
    Hashtbl.remove clients fd;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let write_all fd s =
    let b = Bytes.of_string s in
    let n = Bytes.length b in
    let rec go off =
      if off < n then
        match Unix.write fd b off (n - off) with
        | written -> go (off + written)
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
            close_client fd
    in
    go 0
  in
  let chunk = Bytes.create 65536 in
  let shutting_down = ref false in
  while not !shutting_down do
    let fds = srv :: Hashtbl.fold (fun fd _ acc -> fd :: acc) clients [] in
    let readable, _, _ = Unix.select fds [] [] (-1.0) in
    (* accept new connections first so their first burst lands this loop *)
    if List.mem srv readable then begin
      let fd, _ = Unix.accept srv in
      Hashtbl.replace clients fd (Buffer.create 4096)
    end;
    (* drain readable clients into their line buffers *)
    let batch = ref [] in
    List.iter
      (fun fd ->
        if fd <> srv then
          match Hashtbl.find_opt clients fd with
          | None -> ()
          | Some buf -> (
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 -> close_client fd
              | n ->
                  Buffer.add_subbytes buf chunk 0 n;
                  (* split off every complete line now in the buffer *)
                  let data = Buffer.contents buf in
                  Buffer.clear buf;
                  let rec lines start =
                    match String.index_from_opt data start '\n' with
                    | Some nl ->
                        let line = String.sub data start (nl - start) in
                        if String.trim line <> "" then
                          batch := (fd, line) :: !batch;
                        lines (nl + 1)
                    | None ->
                        Buffer.add_substring buf data start
                          (String.length data - start)
                  in
                  lines 0
              | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
                  close_client fd))
      readable;
    (* one batch: everything that was already complete on the wire *)
    let entries =
      Array.of_list
        (List.map (fun (fd, line) -> (fd, Protocol.parse line)) (List.rev !batch))
    in
    let responses = Array.make (Array.length entries) "" in
    let light, heavy =
      let l = ref [] and h = ref [] in
      Array.iteri
        (fun i (_, r) ->
          if Protocol.is_heavy r then h := i :: !h else l := i :: !l)
        entries;
      (Array.of_list (List.rev !l), List.rev !h)
    in
    (* light requests fan out over the pool; the session's in-flight
       table makes identical concurrent keys build exactly once *)
    let light_resps =
      Session.map session
        (fun i ->
          let _, r = entries.(i) in
          Protocol.execute session r)
        light
    in
    Array.iteri (fun k i -> responses.(i) <- light_resps.(k)) light;
    List.iter
      (fun i ->
        let _, r = entries.(i) in
        responses.(i) <- Protocol.execute session r)
      heavy;
    Array.iteri
      (fun i (fd, r) ->
        if Hashtbl.mem clients fd then write_all fd (responses.(i) ^ "\n");
        if Protocol.is_shutdown r then shutting_down := true)
      entries
  done;
  if not !quiet then Printf.eprintf "epicd: shutting down\n%!";
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) clients;
  (try Unix.close srv with Unix.Unix_error _ -> ());
  if Sys.file_exists !socket_path then Sys.remove !socket_path
