(* Machine-sensitivity sweep driver: run a matrix of machine-description
   variants x compiler ablations over the workload suite and print (and
   optionally export) the sensitivity report.  See lib/sweep/sweep.mli. *)

let usage =
  "sweep [--workloads a,b,..] [--variants v,..] [--ablations a,..] [-j N]\n\
  \      [--sample-sim[=I:D[:W]]] [--no-fuse] [--big-inputs] [--json FILE]\n\
  \      [--normalize-time] [--check BASELINE] [--list]\n\n\
   Runs every named machine variant (default: all six) against the\n\
   itanium2 x ILP-CS baseline on the given workloads (default: gzip,twolf)\n\
   and reports per-cell cycle and stall-category deltas plus a geomean\n\
   tornado.  --check diffs the normalized JSON against a stored baseline\n\
   and exits 1 on any difference.  -j defaults to the machine's\n\
   recommended domain count (capped at the job count by the pool).\n\
   --sample-sim runs every cell under interval sampling (cycles become\n\
   extrapolated estimates within the EXPERIMENTS.md accuracy budget);\n\
   sampled reports are not comparable to full-simulation baselines.\n\
   By default the charge-suppression variants (perfect-icache,\n\
   perfect-predictor) ride the baseline simulation as fused experiments\n\
   (bit-identical, fewer simulations); --no-fuse keeps one simulation\n\
   per cell.  --big-inputs substitutes the ~10x scaled evaluation\n\
   inputs."

let split_commas s = String.split_on_char ',' s |> List.filter (( <> ) "")

let die msg =
  prerr_endline msg;
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let workloads = ref [ "gzip"; "twolf" ] in
  let sel_variants = ref (List.map (fun v -> v.Epic_sweep.Sweep.v_name) Epic_sweep.Sweep.variants) in
  let sel_ablations = ref [ Epic_sweep.Sweep.baseline_ablation.Epic_sweep.Sweep.a_name ] in
  let jobs = ref 0 (* 0 = auto: recommended domain count *) in
  let json_file = ref None in
  let normalize = ref false in
  let check_file = ref None in
  let list_only = ref false in
  let sampling = ref None in
  let fuse = ref true in
  let big_inputs = ref false in
  let rec parse = function
    | [] -> ()
    | ("-h" | "--help") :: _ ->
        print_endline usage;
        exit 0
    | "--list" :: rest ->
        list_only := true;
        parse rest
    | "--workloads" :: v :: rest ->
        workloads := split_commas v;
        parse rest
    | "--variants" :: v :: rest ->
        sel_variants := split_commas v;
        parse rest
    | "--ablations" :: v :: rest ->
        sel_ablations := split_commas v;
        parse rest
    | ("-j" | "--jobs") :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n >= 1 -> jobs := n
        | _ -> die usage);
        parse rest
    | "--json" :: f :: rest ->
        json_file := Some f;
        parse rest
    | "--normalize-time" :: rest ->
        normalize := true;
        parse rest
    | "--check" :: f :: rest ->
        check_file := Some f;
        parse rest
    | "--no-fuse" :: rest ->
        fuse := false;
        parse rest
    | "--big-inputs" :: rest ->
        big_inputs := true;
        parse rest
    | "--sample-sim" :: rest ->
        sampling := Some Epic_sim.Sampling.default_plan;
        parse rest
    | a :: rest when String.length a > 13 && String.sub a 0 13 = "--sample-sim=" ->
        (match
           Epic_sim.Sampling.parse_spec
             (String.sub a 13 (String.length a - 13))
         with
        | p -> sampling := Some p
        | exception Invalid_argument m -> die ("sweep: " ^ m));
        parse rest
    | a :: _ -> die (Printf.sprintf "sweep: unknown argument %S\n%s" a usage)
  in
  parse args;
  let open Epic_sweep.Sweep in
  if !list_only then begin
    (* One discoverable vocabulary, shared with causal.exe --list: every
       machine variant and every compiler ablation, baseline rows included,
       each with the one-line "what it isolates" description. *)
    Fmt.pr "variants:@.";
    List.iter
      (fun v -> Fmt.pr "  %-18s %s@." v.v_name v.v_isolates)
      (Epic_sweep.Sweep.baseline_variant :: Epic_sweep.Sweep.variants);
    Fmt.pr "ablations:@.";
    List.iter
      (fun a -> Fmt.pr "  %-18s %s@." a.a_name a.a_isolates)
      Epic_sweep.Sweep.ablations;
    exit 0
  end;
  let lookup kind find names =
    List.map
      (fun n ->
        match find n with
        | Some x -> x
        | None -> die (Printf.sprintf "sweep: unknown %s %S" kind n))
      names
  in
  let vs = lookup "variant" find_variant !sel_variants in
  let abs_ = lookup "ablation" find_ablation !sel_ablations in
  let jobs =
    if !jobs >= 1 then !jobs
    else
      (* cap at the cell count: the pool never spawns more domains than
         jobs anyway, but don't ask for more than there is work *)
      let cells = List.length !workloads * (1 + List.length vs * List.length abs_) in
      min (Domain.recommended_domain_count ()) (max 1 cells)
  in
  (* the matrix runs through a session: its compile cache dedupes the
     shared (workload, baseline-config) compiles across cells *)
  let session = Epic_serve.Session.create ~jobs () in
  let report =
    try
      Epic_serve.Session.sweep session ~variants:vs ~ablations:abs_
        ?sampling:!sampling ~fuse:!fuse ~big_inputs:!big_inputs
        ~progress:true ~workloads:!workloads ()
    with Invalid_argument msg -> die ("sweep: " ^ msg)
  in
  print_report Fmt.stdout report;
  (match mismatches report with
  | [] -> ()
  | l ->
      List.iter
        (fun c ->
          Fmt.epr "MISMATCH: %s / %s / %s diverged from the reference@."
            c.c_workload c.c_variant c.c_ablation)
        l;
      exit 1);
  let doc () =
    let d = to_json report in
    if !normalize then Epic_core.Export.normalize_time d else d
  in
  (match !json_file with
  | Some f ->
      Epic_obs.Json.to_file f (doc ());
      Fmt.pr "@.wrote %s@." f
  | None -> ());
  match !check_file with
  | None -> ()
  | Some f ->
      let stored =
        match
          In_channel.with_open_text f In_channel.input_all
          |> Epic_obs.Json.of_string
        with
        | Ok j -> j
        | Error e -> die (Printf.sprintf "sweep: cannot parse %s: %s" f e)
      in
      (* compare wall-normalized on both sides so a stored baseline always
         diffs cleanly against a fresh run *)
      let norm j =
        Epic_obs.Json.to_string ~pretty:true (Epic_core.Export.normalize_time j)
      in
      let a = norm stored and b = norm (to_json report) in
      if a = b then Fmt.pr "check: %s matches@." f
      else begin
        let la = String.split_on_char '\n' a
        and lb = String.split_on_char '\n' b in
        let rec first_diff i = function
          | x :: xs, y :: ys ->
              if x = y then first_diff (i + 1) (xs, ys)
              else Some (i, x, y)
          | [], y :: _ -> Some (i, "<end>", y)
          | x :: _, [] -> Some (i, x, "<end>")
          | [], [] -> None
        in
        (match first_diff 1 (la, lb) with
        | Some (i, x, y) ->
            Fmt.epr "check: %s differs at line %d@.  stored:  %s@.  current: %s@."
              f i (String.trim x) (String.trim y)
        | None -> ());
        exit 1
      end
