(* Standalone differential fuzzer: generates random mini-C programs and
   checks that every optimization level — interpreted and simulated —
   behaves identically to the unoptimized reference.

     dune exec bin/fuzz.exe [SEED] [COUNT]

   On a failure the offending seed and program source are printed to
   stdout (so CI logs carry the full reproducer), the program is also
   written to /tmp/epic_fuzz_<seed>_<case>.c, and the process exits 1. *)

let () =
  let seed = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 42 in
  let count = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 100 in
  let st = Random.State.make [| seed |] in
  let input = [| 5L |] in
  let skipped = ref 0 in
  let failed = ref false in
  for case = 1 to count do
    let src = Epic_core.Random_program.Gen.program st in
    (match Epic_core.Random_program.check src input with
    | Epic_core.Random_program.Agree -> ()
    | Epic_core.Random_program.Skipped -> incr skipped
    | Epic_core.Random_program.Mismatch { config; ir_ok; machine_ok } ->
        Printf.printf "case %d: MISMATCH at %s (ir ok: %b, machine ok: %b)\n"
          case config ir_ok machine_ok;
        failed := true
    | Epic_core.Random_program.Crash { config; exn } ->
        Printf.printf "case %d: CRASH at %s: %s\n" case config exn;
        failed := true);
    if !failed then begin
      let path = Printf.sprintf "/tmp/epic_fuzz_%d_%d.c" seed case in
      Out_channel.with_open_text path (fun oc -> output_string oc src);
      Printf.printf "reproduce with: fuzz.exe %d %d (case %d)\n" seed case case;
      Printf.printf "program saved to %s\n" path;
      Printf.printf "--- offending program ---\n%s\n-------------------------\n" src;
      exit 1
    end;
    if case mod 20 = 0 then Printf.eprintf "  ...%d/%d\n%!" case count
  done;
  Printf.printf "seed %d: %d cases clean (%d skipped for fuel)\n" seed count !skipped
