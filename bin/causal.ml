(* Causal-profiling driver: run the COZ-style virtual-speedup matrix and
   print (and optionally export) the ranked "optimize this next" report.
   See lib/causal/causal.mli. *)

let usage =
  "causal [--workloads a,b,..] [--targets t,..] [--factors 10,25,..] [-j N]\n\
  \       [--split N] [--serial] [--big-inputs] [--json FILE]\n\
  \       [--normalize-time] [--check] [--fused-check] [--list]\n\n\
   Runs each workload (default: gzip,twolf) under a matrix of virtual\n\
   speedups — per target, the cycles charged to it are scaled by\n\
   (1 - factor) while the machine evolves untouched — and ranks targets\n\
   by causal slope: predicted end-to-end gain per unit of local speedup.\n\
   Targets are stall-category names (see --list), workload function\n\
   names, or func:category pairs; omitted, each workload plans its own\n\
   (top profiled functions plus its nonzero stall categories, plus —\n\
   with --split N — per-(function, category) splits of the N hottest\n\
   functions).  Factors are percentages (default 10,25,50,100).\n\
   By default the per-workload grid is fused into one simulation\n\
   carrying every experiment; --serial keeps one simulation per cell,\n\
   and --fused-check runs both and exits 1 unless every cell is\n\
   bit-identical and the fused path saved >= 5x simulations.\n\
   --big-inputs substitutes the ~10x scaled evaluation inputs.\n\
   --check also runs the perfect-icache / perfect-predictor sweep and\n\
   exits 1 unless the causal ranking of the front-end and br-mispredict\n\
   categories matches the sweep's delta ordering on every workload, and\n\
   verifies factor-1.0 local exactness for every measured target (each\n\
   kind: category, function, func:category).  -j defaults to the\n\
   machine's recommended domain count."

let split_commas s = String.split_on_char ',' s |> List.filter (( <> ) "")

let die msg =
  prerr_endline msg;
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let workloads = ref [ "gzip"; "twolf" ] in
  let sel_targets = ref None in
  let factors = ref Epic_causal.Causal.default_factors in
  let split = ref 0 in
  let jobs = ref 0 (* 0 = auto *) in
  let json_file = ref None in
  let normalize = ref false in
  let check = ref false in
  let serial = ref false in
  let big_inputs = ref false in
  let fused_check = ref false in
  let list_only = ref false in
  let rec parse = function
    | [] -> ()
    | ("-h" | "--help") :: _ ->
        print_endline usage;
        exit 0
    | "--list" :: rest ->
        list_only := true;
        parse rest
    | "--workloads" :: v :: rest ->
        workloads := split_commas v;
        parse rest
    | "--targets" :: v :: rest ->
        sel_targets :=
          Some (List.map Epic_causal.Causal.parse_target (split_commas v));
        parse rest
    | "--factors" :: v :: rest ->
        factors :=
          List.map
            (fun s ->
              match float_of_string_opt s with
              | Some p when p > 0. && p <= 100. -> p /. 100.
              | _ -> die (Printf.sprintf "causal: bad factor %S (percent in (0,100])" s))
            (split_commas v);
        parse rest
    | "--split" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n >= 0 -> split := n
        | _ -> die (Printf.sprintf "causal: bad --split %S" v));
        parse rest
    | ("-j" | "--jobs") :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n >= 1 -> jobs := n
        | _ -> die usage);
        parse rest
    | "--json" :: f :: rest ->
        json_file := Some f;
        parse rest
    | "--normalize-time" :: rest ->
        normalize := true;
        parse rest
    | "--check" :: rest ->
        check := true;
        parse rest
    | "--serial" :: rest ->
        serial := true;
        parse rest
    | "--big-inputs" :: rest ->
        big_inputs := true;
        parse rest
    | "--fused-check" :: rest ->
        fused_check := true;
        parse rest
    | a :: _ -> die (Printf.sprintf "causal: unknown argument %S\n%s" a usage)
  in
  parse args;
  let open Epic_causal.Causal in
  if !list_only then begin
    (* the same vocabulary sweep.exe --list prints, from the same tables *)
    Fmt.pr "category targets (program-wide stall charges):@.";
    List.iter
      (fun c ->
        Fmt.pr "  %-18s@." (Epic_sim.Accounting.name c))
      (List.filter
         (fun c -> c <> Epic_sim.Accounting.Unstalled)
         Epic_sim.Accounting.all_categories);
    Fmt.pr "function targets: any function name of the workload@.";
    Fmt.pr "@.sweep vocabulary (variants x ablations, for --check):@.";
    Fmt.pr "variants:@.";
    List.iter
      (fun v -> Fmt.pr "  %-18s %s@." v.Epic_sweep.Sweep.v_name v.Epic_sweep.Sweep.v_isolates)
      (Epic_sweep.Sweep.baseline_variant :: Epic_sweep.Sweep.variants);
    Fmt.pr "ablations:@.";
    List.iter
      (fun a -> Fmt.pr "  %-18s %s@." a.Epic_sweep.Sweep.a_name a.Epic_sweep.Sweep.a_isolates)
      Epic_sweep.Sweep.ablations;
    exit 0
  end;
  (* --check needs the two cross-check categories measured at factor 1.0;
     union them in rather than failing later. *)
  let targets =
    if not !check then !sel_targets
    else
      let needed =
        [
          Target_category Epic_sim.Accounting.Front_end;
          Target_category Epic_sim.Accounting.Br_mispredict;
        ]
      in
      match !sel_targets with
      | None -> None (* the planner includes every nonzero category *)
      | Some ts ->
          Some (ts @ List.filter (fun t -> not (List.mem t ts)) needed)
  in
  if !check && not (List.mem 1.0 !factors) then factors := !factors @ [ 1.0 ];
  let jobs =
    if !jobs >= 1 then !jobs
    else min (Domain.recommended_domain_count ()) (max 1 (4 * List.length !workloads))
  in
  (* the whole matrix — baselines, cells and the --check sweep — shares
     one session's content-addressed compile cache *)
  let session = Epic_serve.Session.create ~jobs () in
  if !fused_check && !serial then
    die "causal: --fused-check runs both paths; drop --serial";
  let report =
    try
      Epic_serve.Session.causal session ?targets ~factors:!factors
        ~split_funcs:!split ~serial:!serial ~big_inputs:!big_inputs
        ~progress:true ~workloads:!workloads ()
    with Invalid_argument msg -> die ("causal: " ^ msg)
  in
  print_report Fmt.stdout report;
  (match mismatches report with
  | [] -> ()
  | l ->
      List.iter
        (fun (w, t, f) ->
          Fmt.epr "MISMATCH: %s / %s / %g diverged from the reference@." w
            (target_name t) f)
        l;
      exit 1);
  (match !json_file with
  | Some f ->
      let d = to_json report in
      let d = if !normalize then Epic_core.Export.normalize_time d else d in
      Epic_obs.Json.to_file f d;
      Fmt.pr "@.wrote %s@." f
  | None -> ());
  if !fused_check then begin
    (* the CI gate: re-run the whole matrix one-simulation-per-cell and
       demand bitwise identity, cell for cell — the fused path must be a
       pure accounting transformation (the serial cells never route
       through the fused cache, so the comparison is live, not a
       cache-vs-itself tautology) *)
    Fmt.epr "fused-check: re-running the matrix serially...@.";
    let serial_report =
      Epic_serve.Session.causal session ?targets ~factors:!factors
        ~split_funcs:!split ~serial:true ~big_inputs:!big_inputs
        ~workloads:!workloads ()
    in
    let bits = Int64.bits_of_float in
    let diffs = ref [] in
    let bad fmt = Fmt.kstr (fun s -> diffs := s :: !diffs) fmt in
    let cells = ref 0 in
    List.iter2
      (fun wf ws ->
        if bits wf.c_base_cycles <> bits ws.c_base_cycles then
          bad "%s: baseline cycles differ (%h vs %h)" wf.c_workload
            wf.c_base_cycles ws.c_base_cycles;
        List.iter
          (fun cf ->
            match curve_of ws cf.k_target with
            | None ->
                bad "%s: target %s missing from the serial report"
                  wf.c_workload (target_name cf.k_target)
            | Some cs ->
                List.iter2
                  (fun pf ps ->
                    incr cells;
                    if
                      bits pf.p_cycles <> bits ps.p_cycles
                      || pf.p_output_ok <> ps.p_output_ok
                    then
                      bad "%s / %s / %g: fused %h vs serial %h%s"
                        wf.c_workload (target_name cf.k_target) pf.p_factor
                        pf.p_cycles ps.p_cycles
                        (if pf.p_output_ok = ps.p_output_ok then ""
                         else " (output flags differ)"))
                  cf.k_points cs.k_points)
          wf.c_curves)
      report.r_reports serial_report.r_reports;
    (match report.r_fusion with
    | None -> bad "the fused run reported no fusion block"
    | Some fz ->
        if fz.fz_cells < 5 * fz.fz_sims then
          bad "cells_per_sim %.1f < 5 (%d cells from %d sims)"
            (float_of_int fz.fz_cells /. float_of_int (max 1 fz.fz_sims))
            fz.fz_cells fz.fz_sims);
    (match serial_report.r_fusion with
    | None -> ()
    | Some _ -> bad "the serial run unexpectedly reported fusion");
    List.iter (fun d -> Fmt.pr "fused-check: MISMATCH %s@." d) !diffs;
    if !diffs <> [] then exit 1;
    (match report.r_fusion with
    | Some fz ->
        Fmt.pr
          "fused-check: %d cells bit-identical to serial; %d cells from %d \
           sims (%.1f cells/sim, %d sims saved)@."
          !cells fz.fz_cells fz.fz_sims
          (float_of_int fz.fz_cells /. float_of_int (max 1 fz.fz_sims))
          (fz.fz_cells - fz.fz_sims)
    | None -> ())
  end;
  if !check then begin
    let rows =
      try Epic_serve.Session.causal_check session report
      with Invalid_argument msg -> die ("causal: " ^ msg)
    in
    let bad = List.filter (fun r -> not r.ck_order_ok) rows in
    List.iter
      (fun r ->
        Fmt.pr
          "check %s: causal front-end %.0f br-mispredict %.0f | sweep \
           perfect-icache %.0f perfect-predictor %.0f -> %s@."
          r.ck_workload r.ck_causal_fe r.ck_causal_bp r.ck_sweep_fe
          r.ck_sweep_bp
          (if r.ck_order_ok then "rankings agree" else "RANKINGS DISAGREE"))
      rows;
    (* the generalized factor-1.0 identity: for every measured target of
       every kind — category, function, func:category — scaling its
       charges to zero must save exactly the cycles the baseline charged
       to it *)
    let local = check_local_exactness report in
    let bad_local = List.filter (fun r -> not r.lk_ok) local in
    List.iter
      (fun r ->
        Fmt.pr "check %s: %s local exactness: causal %.0f vs local %.0f -> %s@."
          r.lk_workload (target_name r.lk_target) r.lk_causal r.lk_local
          (if r.lk_ok then "exact" else "INEXACT"))
      local;
    if bad <> [] || bad_local <> [] then exit 1;
    Fmt.pr
      "check: causal ranking matches the perfect-* sweep on %d workloads; \
       %d factor-1.0 targets locally exact@."
      (List.length rows) (List.length local)
  end
