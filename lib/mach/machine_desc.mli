(** First-class machine descriptions: every microarchitectural constant the
    scheduler plans against and the simulator charges for, in one record.
    [itanium2] is the canonical value; sensitivity sweeps (lib/sweep) run
    perturbed copies of it.  The compiler and the simulator read the same
    description (threaded via {!Itanium.with_desc} and
    [Epic_sim.Machine.run ?desc]), so planned latencies and the event model
    never diverge.

    The [perfect_*] switches are attribution idealizations: cache/predictor
    state and the global clock evolve exactly as on the baseline machine, but
    the corresponding stall category is charged zero cycles — so the deltas
    of a perfect-component variant are confined to that category. *)

type cache_geom = { size : int; line : int; assoc : int }

type t = {
  name : string;
  bundles_per_cycle : int;
  issue_width : int;  (** total slots per cycle (bundles x 3) *)
  m_slots : int;
  i_slots : int;
  f_slots : int;
  b_slots : int;
  ld_pipes : int;
  st_pipes : int;
  lat_alu : int;
  lat_mul : int;
  lat_div : int;
  lat_fp : int;
  lat_fdiv : int;
  lat_load : int;
  float_load_latency : int;
  l1i : cache_geom;
  l1d : cache_geom;
  l2 : cache_geom;
  l3 : cache_geom;
  l2_latency : int;
  l3_latency : int;
  mem_latency : int;
  perfect_icache : bool;
  dtlb_entries : int;
  vhpt_walk_cycles : int;
  wild_walk_cycles : int;
  nat_page_cycles : int;
  page_fault_cycles : int;
  bp_bits : int;
  bp_history_bits : int;
  branch_mispredict_penalty : int;
  perfect_predictor : bool;
  call_overhead : int;
  return_overhead : int;
  chk_recovery_penalty : int;
  rse_physical : int;
  rse_spill_cost_per_reg : int;
}

(** The canonical (scaled) Itanium 2 description; the single source of the
    machine constants the pre-refactor code spread across
    [Epic_mach.Itanium] and the simulator units. *)
val itanium2 : t

(** A stable, canonical content digest of a description: FNV-1a (64-bit)
    over an explicit decimal serialization of every field except [name],
    rendered as 16 lowercase hex digits.  Two physically identical
    machines digest identically regardless of their names, and the digest
    is stable across processes and OCaml versions (no [Marshal]).  The
    serialization destructures the full record, so adding or removing a
    field without updating it is a compile error — the cache-key
    discipline of lib/serve rests on this. *)
val digest : t -> string
