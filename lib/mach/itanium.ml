(* The machine model used by the scheduler and bundler: execution unit
   classes, per-cycle issue capacities and planned operation latencies.  All
   numbers come from the current machine description (Machine_desc.t); the
   default is [Machine_desc.itanium2] (six-issue: up to two bundles per
   cycle, figures following the Itanium 2 reference manual, scaled where
   DESIGN.md says so).

   The current description is domain-local state: each compile+simulate job
   runs entirely in one domain, and [with_desc] scopes a variant description
   to one compilation (the sensitivity sweeps run different variants on
   different domains concurrently).  Reading it is a DLS array lookup, cheap
   enough for the scheduler's inner loops. *)

open Epic_ir

(* IA-64 execution unit classes.  A-type ALU operations may issue on either
   an M or an I slot, which is what makes the machine "six-ALU". *)
type unit_class = UA | UI | UM | UF | UB

let class_of (op : Opcode.t) =
  match op with
  | Opcode.Add | Opcode.Sub | Opcode.And | Opcode.Or | Opcode.Xor
  | Opcode.Mov | Opcode.Lea | Opcode.Cmp _ ->
      UA
  | Opcode.Shl | Opcode.Shr | Opcode.Sra | Opcode.Sxt _ | Opcode.Mul
  | Opcode.Div | Opcode.Rem ->
      UI
  | Opcode.Ld _ | Opcode.St _ | Opcode.Chk _ | Opcode.Chka _ | Opcode.Alloc -> UM
  | Opcode.Fadd | Opcode.Fsub | Opcode.Fmul | Opcode.Fdiv | Opcode.Fneg
  | Opcode.Fcmp _ | Opcode.Cvt_fi | Opcode.Cvt_if ->
      UF
  | Opcode.Br | Opcode.Br_call | Opcode.Br_ret -> UB
  | Opcode.Nop -> UA

(* --- the current machine description (domain-local) --------------------- *)

let desc_key = Domain.DLS.new_key (fun () -> Machine_desc.itanium2)
let desc () = Domain.DLS.get desc_key
let set_desc d = Domain.DLS.set desc_key d

(* Run [f] with [d] as the current description, restoring the previous one
   afterwards (also on exception — the driver's register-pressure fallback
   recompiles inside this scope). *)
let with_desc d f =
  let old = Domain.DLS.get desc_key in
  Domain.DLS.set desc_key d;
  Fun.protect ~finally:(fun () -> Domain.DLS.set desc_key old) f

(* Planned (static) result latency in cycles under description [d]: the
   delay the compiler must schedule between a producer and its consumer. *)
let latency_in (d : Machine_desc.t) (op : Opcode.t) =
  match op with
  | Opcode.Add | Opcode.Sub | Opcode.And | Opcode.Or | Opcode.Xor
  | Opcode.Mov | Opcode.Lea | Opcode.Sxt _ ->
      d.Machine_desc.lat_alu
  | Opcode.Shl | Opcode.Shr | Opcode.Sra -> d.Machine_desc.lat_alu
  | Opcode.Cmp _ ->
      d.Machine_desc.lat_alu (* 0 to a dependent branch; see [dep_latency] *)
  | Opcode.Mul -> d.Machine_desc.lat_mul
  | Opcode.Div | Opcode.Rem -> d.Machine_desc.lat_div
  | Opcode.Ld (_, _) -> d.Machine_desc.lat_load
  | Opcode.St _ -> d.Machine_desc.lat_alu
  | Opcode.Chk _ | Opcode.Chka _ -> d.Machine_desc.lat_alu
  | Opcode.Fadd | Opcode.Fsub | Opcode.Fmul | Opcode.Fneg | Opcode.Fcmp _ ->
      d.Machine_desc.lat_fp
  | Opcode.Fdiv -> d.Machine_desc.lat_fdiv
  | Opcode.Cvt_fi | Opcode.Cvt_if -> d.Machine_desc.lat_fp
  | Opcode.Br | Opcode.Br_call | Opcode.Br_ret | Opcode.Alloc | Opcode.Nop ->
      d.Machine_desc.lat_alu

let latency (op : Opcode.t) = latency_in (desc ()) op

(* Latency of a register dependence from [producer] to [consumer] through
   register [r].  IA-64 allows a compare and a branch that consumes its
   predicate in the same instruction group. *)
let dep_latency (producer : Instr.t) (consumer : Instr.t) (r : Reg.t) =
  match (producer.Instr.op, consumer.Instr.op) with
  | (Opcode.Cmp _ | Opcode.Fcmp _), (Opcode.Br | Opcode.Br_call | Opcode.Br_ret)
    when r.Reg.cls = Reg.Prd ->
      0
  | _ -> latency producer.Instr.op

(* Per-cycle issue capacities (itanium2: two bundles = six slots). *)
type caps = {
  mutable total : int;
  mutable m : int; (* memory slots *)
  mutable i : int;
  mutable f : int;
  mutable b : int;
  mutable ld : int; (* load pipes within M *)
  mutable st : int; (* store pipes within M *)
}

let fresh_caps () =
  let d = desc () in
  {
    total = d.Machine_desc.issue_width;
    m = d.Machine_desc.m_slots;
    i = d.Machine_desc.i_slots;
    f = d.Machine_desc.f_slots;
    b = d.Machine_desc.b_slots;
    ld = d.Machine_desc.ld_pipes;
    st = d.Machine_desc.st_pipes;
  }

(* Try to account one instruction against [caps]; true if it fits. *)
let take caps (i : Instr.t) =
  if caps.total = 0 then false
  else
    let ok =
      match class_of i.Instr.op with
      | UM ->
          if Instr.is_load i then
            if caps.m > 0 && caps.ld > 0 then (
              caps.m <- caps.m - 1;
              caps.ld <- caps.ld - 1;
              true)
            else false
          else if Instr.is_store i then
            if caps.m > 0 && caps.st > 0 then (
              caps.m <- caps.m - 1;
              caps.st <- caps.st - 1;
              true)
            else false
          else if caps.m > 0 then (
            caps.m <- caps.m - 1;
            true)
          else false
      | UI ->
          if caps.i > 0 then (
            caps.i <- caps.i - 1;
            true)
          else false
      | UA ->
          (* A-type: prefer an I slot, fall back to M *)
          if caps.i > 0 then (
            caps.i <- caps.i - 1;
            true)
          else if caps.m > 0 then (
            caps.m <- caps.m - 1;
            true)
          else false
      | UF ->
          if caps.f > 0 then (
            caps.f <- caps.f - 1;
            true)
          else false
      | UB ->
          if caps.b > 0 then (
            caps.b <- caps.b - 1;
            true)
          else false
    in
    if ok then caps.total <- caps.total - 1;
    ok

(* Code-layout geometry the backend reads (function padding, fetch chunks). *)
let l1i_line () = (desc ()).Machine_desc.l1i.Machine_desc.line
