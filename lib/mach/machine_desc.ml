(* First-class machine descriptions.  Every microarchitectural constant the
   scheduler plans against and the simulator charges for lives in one record,
   with [itanium2] as the canonical value (the scaled Itanium 2 of DESIGN.md
   section 5.4).  Perturbing a copy of [itanium2] yields a machine variant for
   the sensitivity sweeps (lib/sweep); the compiler and the simulator read the
   same description, so planned latencies and the event model never diverge.

   The two [perfect_*] switches are attribution idealizations, not physical
   machines: the cache/predictor state and the global clock evolve exactly as
   on the baseline, but the corresponding stall category is charged zero
   cycles.  That makes "what if the I-cache/predictor were free" a controlled
   ablation whose category deltas are confined to the targeted category. *)

type cache_geom = { size : int; line : int; assoc : int }

type t = {
  name : string;
  (* issue: [bundles_per_cycle] bundles of three slots fetched and issued per
     front-end cycle; the per-class slot counts bound what one group holds. *)
  bundles_per_cycle : int;
  issue_width : int; (* total slots per cycle (bundles x 3) *)
  m_slots : int; (* memory slots *)
  i_slots : int;
  f_slots : int;
  b_slots : int;
  ld_pipes : int; (* load pipes within M *)
  st_pipes : int; (* store pipes within M *)
  (* planned (static) result latencies the scheduler inserts *)
  lat_alu : int;
  lat_mul : int;
  lat_div : int; (* software-expanded on real HW *)
  lat_fp : int;
  lat_fdiv : int;
  lat_load : int; (* integer L1D load-to-use *)
  float_load_latency : int; (* FP loads are served from L2 on Itanium 2 *)
  (* memory hierarchy (scaled; see DESIGN.md section 5.4) *)
  l1i : cache_geom;
  l1d : cache_geom;
  l2 : cache_geom;
  l3 : cache_geom;
  l2_latency : int;
  l3_latency : int;
  mem_latency : int;
  perfect_icache : bool; (* charge no front-end stall cycles *)
  (* data TLB and the OS walk model *)
  dtlb_entries : int;
  vhpt_walk_cycles : int; (* hardware walker, successful *)
  wild_walk_cycles : int; (* failed walk + uncached page-table query *)
  nat_page_cycles : int; (* architected NaT page at address 0 *)
  page_fault_cycles : int; (* OS fault handler (kernel time) *)
  (* branch prediction *)
  bp_bits : int; (* log2 of the two-bit counter table *)
  bp_history_bits : int;
  branch_mispredict_penalty : int;
  perfect_predictor : bool; (* charge no misprediction flush cycles *)
  (* calls and the register stack engine *)
  call_overhead : int; (* br.call pipeline redirect + alloc *)
  return_overhead : int; (* br.ret redirect + RSE bookkeeping *)
  chk_recovery_penalty : int; (* pipeline redirect into recovery *)
  rse_physical : int; (* physical stacked registers backing r32-r127 *)
  rse_spill_cost_per_reg : int; (* cycles per mandatory spill/fill *)
}

(* --- Stable content digest ----------------------------------------------
   Cache keys must survive across processes, so the digest is computed over
   an explicit canonical serialization — never Marshal, whose bytes depend
   on the runtime.  FNV-1a (64-bit) over decimal field renderings in a
   fixed order.  [name] is deliberately excluded: keys are content-
   addressed, and two differently-named but physically identical machines
   must hash alike.  The full-record destructuring pattern makes adding or
   removing a field a compile error here (warning 9 is fatal), so the
   serialization can never silently go stale. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a64 (s : string) =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let digest (d : t) =
  let {
    name = _name;
    bundles_per_cycle;
    issue_width;
    m_slots;
    i_slots;
    f_slots;
    b_slots;
    ld_pipes;
    st_pipes;
    lat_alu;
    lat_mul;
    lat_div;
    lat_fp;
    lat_fdiv;
    lat_load;
    float_load_latency;
    l1i;
    l1d;
    l2;
    l3;
    l2_latency;
    l3_latency;
    mem_latency;
    perfect_icache;
    dtlb_entries;
    vhpt_walk_cycles;
    wild_walk_cycles;
    nat_page_cycles;
    page_fault_cycles;
    bp_bits;
    bp_history_bits;
    branch_mispredict_penalty;
    perfect_predictor;
    call_overhead;
    return_overhead;
    chk_recovery_penalty;
    rse_physical;
    rse_spill_cost_per_reg;
  } =
    d
  in
  let buf = Buffer.create 256 in
  let int i =
    Buffer.add_string buf (string_of_int i);
    Buffer.add_char buf ';'
  in
  let bool b = int (if b then 1 else 0) in
  let geom { size; line; assoc } =
    int size;
    int line;
    int assoc
  in
  int bundles_per_cycle;
  int issue_width;
  int m_slots;
  int i_slots;
  int f_slots;
  int b_slots;
  int ld_pipes;
  int st_pipes;
  int lat_alu;
  int lat_mul;
  int lat_div;
  int lat_fp;
  int lat_fdiv;
  int lat_load;
  int float_load_latency;
  geom l1i;
  geom l1d;
  geom l2;
  geom l3;
  int l2_latency;
  int l3_latency;
  int mem_latency;
  bool perfect_icache;
  int dtlb_entries;
  int vhpt_walk_cycles;
  int wild_walk_cycles;
  int nat_page_cycles;
  int page_fault_cycles;
  int bp_bits;
  int bp_history_bits;
  int branch_mispredict_penalty;
  bool perfect_predictor;
  int call_overhead;
  int return_overhead;
  int chk_recovery_penalty;
  int rse_physical;
  int rse_spill_cost_per_reg;
  Printf.sprintf "%016Lx" (fnv1a64 (Buffer.contents buf))

let itanium2 =
  {
    name = "itanium2";
    bundles_per_cycle = 2;
    issue_width = 6;
    m_slots = 4;
    i_slots = 2;
    f_slots = 2;
    b_slots = 3;
    ld_pipes = 2;
    st_pipes = 2;
    lat_alu = 1;
    lat_mul = 3;
    lat_div = 16;
    lat_fp = 4;
    lat_fdiv = 24;
    lat_load = 1;
    float_load_latency = 6;
    l1i = { size = 2048; line = 64; assoc = 4 };
    l1d = { size = 2048; line = 64; assoc = 4 };
    l2 = { size = 16 * 1024; line = 128; assoc = 8 };
    l3 = { size = 128 * 1024; line = 128; assoc = 12 };
    l2_latency = 5;
    l3_latency = 12;
    mem_latency = 140;
    perfect_icache = false;
    dtlb_entries = 32;
    vhpt_walk_cycles = 25;
    wild_walk_cycles = 80;
    nat_page_cycles = 2;
    page_fault_cycles = 400;
    bp_bits = 12;
    bp_history_bits = 8;
    branch_mispredict_penalty = 6;
    perfect_predictor = false;
    call_overhead = 2;
    return_overhead = 2;
    chk_recovery_penalty = 8;
    rse_physical = Epic_ir.Reg.num_stacked_physical;
    rse_spill_cost_per_reg = 1;
  }
