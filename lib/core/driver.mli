(** The compilation driver: the phase sequence of the paper's Figure 4,
    from mini-C source (or IR) to a scheduled, register-allocated, laid-out
    binary image, plus runners for the simulator and for the reference
    interpreter. *)

type compiled = {
  program : Epic_ir.Program.t;  (** the final (scheduled, allocated) IR *)
  layout : Epic_sched.Layout.t;  (** bundles and code addresses *)
  config : Config.t;
  desc : Epic_mach.Machine_desc.t;
      (** the machine description the schedule was planned against; [run]
          simulates under the same description *)
  transform_stats : transform_stats;
  pass_records : Epic_obs.Passes.record list;
      (** per-phase wall time, fixed-point rounds and IR-size deltas, in
          execution order *)
}

(** Static statistics of one compilation, feeding the code-growth numbers of
    Sections 3.2 and 4.1. *)
and transform_stats = {
  instrs_after_frontend : int;
  instrs_after_classical : int;
  instrs_final : int;
  inlined_sites : int;
  specialized_calls : int;
  peeled_loops : int;
  unrolled_loops : int;
  hyperblocks : int;
  superblocks : int;
  tail_dup_instrs : int;
  peel_instrs : int;
  promoted_loads : int;
  marked_spec_loads : int;
  advanced_loads : int;
  static_bundles : int;
  code_bytes : int;
  fallback : string option;
      (** the degraded region-formation level a register-pressure fallback
          recompile landed on ([Some "no-unroll-no-hyperblock"] or
          [Some "o-ns"]); [None] when the first attempt succeeded *)
}

(** Reset the per-pass statistics counters (done automatically by
    [compile]). *)
val reset_pass_stats : unit -> unit

(** Compile an already-lowered program under [config], profiling on the
    [train] input.  The program is transformed in place.  [passes]
    accumulates the per-phase instrumentation records (a fresh registry is
    used when omitted; either way the records land in [pass_records]).

    [desc] is the machine description to compile for (planned latencies,
    issue geometry); the whole phase sequence runs inside
    {!Epic_mach.Itanium.with_desc}, and the description is recorded in the
    result so {!run} simulates the same machine.  Default: the domain's
    current description, normally {!Epic_mach.Machine_desc.itanium2}. *)
val compile_ir :
  ?config:Config.t ->
  ?desc:Epic_mach.Machine_desc.t ->
  ?passes:Epic_obs.Passes.t ->
  train:int64 array ->
  Epic_ir.Program.t ->
  compiled

(** Compile mini-C source text.  ILP configurations degrade gracefully
    (less aggressive region formation) if the structural transforms would
    exhaust the predicate register file; the source is lowered once and
    fallback attempts restart from a deep copy of the pre-optimization IR,
    recording the level reached in [transform_stats.fallback]. *)
val compile :
  ?config:Config.t ->
  ?desc:Epic_mach.Machine_desc.t ->
  train:int64 array ->
  string ->
  compiled

(** The shape of a compile entry point, for dependency inversion: the
    experiment layers ({!Experiments}, [Epic_sweep.Sweep],
    [Epic_causal.Causal]) accept a [compile_fn] so a caching session
    ([Epic_serve.Session]) can substitute its content-addressed cache
    without a dependency cycle.  [desc] is a plain option (not an optional
    argument) to keep the arrow type first-class. *)
type compile_fn =
  config:Config.t ->
  desc:Epic_mach.Machine_desc.t option ->
  train:int64 array ->
  string ->
  compiled

(** [compile] as a {!compile_fn}: [default_compile ~config ~desc ~train src]
    is [compile ~config ?desc ~train src]. *)
val default_compile : compile_fn

(** Run a compiled binary on the Itanium-2-class simulator; returns
    (exit code, program output, final machine state with all counters).
    [trace] and [profile] enable the opt-in observability instruments;
    [experiment] installs a causal-profiling virtual speedup and
    [experiments] a fused set of them, each bit-identical to its serial
    run (see {!Epic_sim.Machine.run}). *)
val run :
  ?fuel:int ->
  ?trace:Epic_obs.Trace.t ->
  ?profile:Epic_obs.Profile.t ->
  ?experiment:Epic_sim.Accounting.experiment ->
  ?experiments:Epic_sim.Accounting.experiment list ->
  ?sampling:Epic_sim.Sampling.plan ->
  ?checkpoint_at:int ->
  compiled ->
  int64 array ->
  int * string * Epic_sim.Machine.t

(** Resume a checkpoint (captured by a [?checkpoint_at] run of the same
    compiled binary) to completion under this binary's machine description;
    see {!Epic_sim.Machine.resume}. *)
val resume :
  ?fuel:int ->
  ?trace:Epic_obs.Trace.t ->
  ?profile:Epic_obs.Profile.t ->
  ?experiment:Epic_sim.Accounting.experiment ->
  ?experiments:Epic_sim.Accounting.experiment list ->
  compiled ->
  Epic_sim.Machine.checkpoint ->
  int * string * Epic_sim.Machine.t

(** The result of one fused multi-experiment simulation (DESIGN.md §14). *)
type fused = {
  f_code : int;
  f_output : string;
  f_categories : float array array;
      (** [f_categories.(i)] = experiment [i]'s nine category totals, in
          the order the experiment list was given *)
  f_resumed : bool;
      (** the run resumed a cached checkpoint prefix instead of simulating
          from the start (totals then within an ulp of straight-through,
          not bit-identical) *)
}

(** The shape of a fused-matrix entry point, mirroring {!compile_fn}: the
    causal planner accepts a [fused_fn] so the caching session can
    substitute its checkpoint-prefix-reusing, memoizing implementation.
    [prefix_at] is the issue-group position a reusable checkpoint prefix
    may be captured/reused at ([None] = never); {!default_fused} ignores
    it. *)
type fused_fn =
  config:Config.t ->
  desc:Epic_mach.Machine_desc.t option ->
  train:int64 array ->
  input:int64 array ->
  experiments:Epic_sim.Accounting.experiment list ->
  prefix_at:int option ->
  string ->
  fused

(** Build a {!fused} result from a finished [?experiments] machine. *)
val fused_of_machine :
  int -> string -> Epic_sim.Machine.t -> resumed:bool -> fused

(** Compile and run fused, with no caching and no prefix reuse. *)
val default_fused : fused_fn

(** Run the compiled program's IR on the reference interpreter (scheduling
    does not change IR meaning, so this cross-checks the simulator). *)
val run_reference : ?fuel:int -> compiled -> int64 array -> int * string
