(** Machine-readable export: serialize runs and whole suite results to the
    hand-rolled {!Epic_obs.Json} tree, so benchmark trajectories and CI can
    diff counters instead of scraping the text reports.

    Schema (stable; additions only):
    - a run document has [workload], [config], [cycles], [planned],
      [categories] (all nine accounting categories by name), [counters],
      [derived] (IPCs and prediction rate), [by_func], [transform_stats],
      [passes] (per-pass instrumentation), optional [profile] and an
      optional [host] section (wall seconds and GC traffic of the
      simulation, from {!Metrics.host_stats});
    - a suite document has [suite], [sample_period], [workloads], [configs]
      and a [runs] array of run documents. *)

val config_to_json : Config.t -> Epic_obs.Json.t

(** The static compile-side statistics block of a run document, standalone —
    what a compile-only request (epicd [compile]) can report without
    simulating. *)
val transform_stats_to_json : Driver.transform_stats -> Epic_obs.Json.t

val run_to_json : Metrics.run -> Epic_obs.Json.t
val suite_to_json : Experiments.suite_result -> Epic_obs.Json.t

(** The shared per-cell observability block of the sweep and causal
    matrices: [trace_counts] (exact per-kind event totals from
    {!Epic_obs.Trace} — exact even when the retained window wrapped) and
    [profile] (period, sample total and per-function PC-sample counts from
    {!Epic_obs.Profile}).  Either instrument may be absent ([Null]). *)
val obs_to_json :
  ?trace:Epic_obs.Trace.t ->
  ?profile:Epic_obs.Profile.t ->
  unit ->
  Epic_obs.Json.t

(** Zero every wall-clock field ([wall_s], [total_wall_s]) in a document,
    recursively, and drop [host] and [session] sections whole ([host] is
    host noise; [session] carries the cache hit/miss/eviction counters of
    [Epic_serve.Session], which describe the traffic history rather than
    the result — and a zeroed-but-present key would still break diffs
    against documents exported before the section existed).  Everything
    else in a run/suite document is deterministic, so two exports of the
    same suite — sequential or parallel, same or different process, cold
    or cache-hit — are byte-identical after normalization.  The
    determinism test and the CI gates (including the epicd-vs-batch
    byte-identity gate) diff through this. *)
val normalize_time : Epic_obs.Json.t -> Epic_obs.Json.t
