(** A dependency-free fixed-size domain worker pool.

    [map ~jobs f items] applies [f] to every element of [items] and returns
    the results in index order, regardless of the order in which jobs
    complete.  With [jobs = 1] the whole array is processed sequentially in
    the calling domain and no domain is ever spawned — bit-identical to
    [Array.map f items].  With [jobs > 1], [min jobs (Array.length items)]
    workers (the caller plus spawned domains) pull indices from a shared
    mutex-protected queue.

    Jobs must be domain-safe: they may only share state that is immutable
    or domain-local (see DESIGN.md, "Domain-safety contract").  Each job is
    started at most once; once any job raises, no further jobs are started.

    If a job raises, [map] waits for the in-flight jobs, then re-raises the
    exception of the raising job with the smallest index, with its original
    backtrace.  Work already completed is discarded. *)

val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** @raise Invalid_argument if [jobs < 1]. *)
