(* JSON serializers for runs and suite results (see the .mli for the
   schema).  Everything downstream — bench trajectories, regression CI,
   dashboards — consumes these documents rather than the text reports. *)

open Epic_obs

let config_to_json (c : Config.t) =
  Json.Obj
    [
      ("name", Json.Str (Config.name c));
      ("level", Json.Str (Config.level_name c.Config.level));
      ( "spec_model",
        Json.Str
          (match c.Config.spec_model with
          | Epic_ilp.Speculate.General -> "general"
          | Epic_ilp.Speculate.Sentinel -> "sentinel") );
      ("pointer_analysis", Json.Bool c.Config.pointer_analysis);
      ("inline_budget", Json.Float c.Config.inline_budget);
      ("data_speculation", Json.Bool c.Config.enable_data_speculation);
    ]

let categories_to_json (cats : float array) =
  Json.Obj
    (List.map
       (fun c ->
         (Epic_sim.Accounting.name c, Json.Float cats.(Epic_sim.Accounting.index c)))
       Epic_sim.Accounting.all_categories)

let transform_stats_to_json (s : Driver.transform_stats) =
  Json.Obj
    [
      ("instrs_after_frontend", Json.Int s.Driver.instrs_after_frontend);
      ("instrs_after_classical", Json.Int s.Driver.instrs_after_classical);
      ("instrs_final", Json.Int s.Driver.instrs_final);
      ("inlined_sites", Json.Int s.Driver.inlined_sites);
      ("specialized_calls", Json.Int s.Driver.specialized_calls);
      ("peeled_loops", Json.Int s.Driver.peeled_loops);
      ("unrolled_loops", Json.Int s.Driver.unrolled_loops);
      ("hyperblocks", Json.Int s.Driver.hyperblocks);
      ("superblocks", Json.Int s.Driver.superblocks);
      ("tail_dup_instrs", Json.Int s.Driver.tail_dup_instrs);
      ("peel_instrs", Json.Int s.Driver.peel_instrs);
      ("promoted_loads", Json.Int s.Driver.promoted_loads);
      ("marked_spec_loads", Json.Int s.Driver.marked_spec_loads);
      ("advanced_loads", Json.Int s.Driver.advanced_loads);
      ("static_bundles", Json.Int s.Driver.static_bundles);
      ("code_bytes", Json.Int s.Driver.code_bytes);
      ( "fallback",
        match s.Driver.fallback with
        | Some level -> Json.Str level
        | None -> Json.Null );
    ]

let run_to_json (r : Metrics.run) =
  (* Omitted (not [null]) when the run was not sampled, so documents from
     unsampled runs — including every pinned baseline — are byte-identical
     to what this field predates. *)
  let sampling_fields =
    match r.Metrics.sampling with
    | None -> []
    | Some su ->
        let open Epic_sim in
        [
          ( "sampling",
            Json.Obj
              [
                ("plan", Json.Str (Sampling.key_fragment su.Sampling.s_plan));
                ("total_groups", Json.Int su.Sampling.s_total_groups);
                ("detail_groups", Json.Int su.Sampling.s_detail_groups);
                ("phases", Json.Int su.Sampling.s_phases);
                ("scale", Json.Float su.Sampling.s_scale);
                ("measured_cycles", Json.Float su.Sampling.s_measured_cycles);
                ("est_cycles", Json.Float su.Sampling.s_est_cycles);
                ("ci95", Json.Float su.Sampling.s_ci95);
                ("cat_ci95", categories_to_json su.Sampling.s_cat_ci95);
              ] );
        ]
  in
  Json.Obj
    ([
      ("workload", Json.Str r.Metrics.workload);
      ("config", config_to_json r.Metrics.config);
      ("cycles", Json.Float r.Metrics.cycles);
      ("planned", Json.Float r.Metrics.planned);
      ("categories", categories_to_json r.Metrics.categories);
      ( "counters",
        Json.Obj
          [
            ("useful_ops", Json.Int r.Metrics.useful_ops);
            ("squashed_ops", Json.Int r.Metrics.squashed_ops);
            ("nop_ops", Json.Int r.Metrics.nop_ops);
            ("kernel_ops", Json.Int r.Metrics.kernel_ops);
            ("branches", Json.Int r.Metrics.branches);
            ("predictions", Json.Int r.Metrics.predictions);
            ("mispredictions", Json.Int r.Metrics.mispredictions);
            ("l1i_accesses", Json.Int r.Metrics.l1i_accesses);
            ("l1i_misses", Json.Int r.Metrics.l1i_misses);
            ("l1d_accesses", Json.Int r.Metrics.l1d_accesses);
            ("l1d_misses", Json.Int r.Metrics.l1d_misses);
            ("dtlb_misses", Json.Int r.Metrics.dtlb_misses);
            ("wild_loads", Json.Int r.Metrics.wild_loads);
            ("spec_loads", Json.Int r.Metrics.spec_loads);
            ("chk_recoveries", Json.Int r.Metrics.chk_recoveries);
            ("rse_spills", Json.Int r.Metrics.rse_spills);
            ("groups", Json.Int r.Metrics.groups);
          ] );
      ( "derived",
        Json.Obj
          [
            ("planned_ipc", Json.Float (Metrics.planned_ipc r));
            ("achieved_ipc", Json.Float (Metrics.achieved_ipc r));
            ("branch_prediction_rate", Json.Float (Metrics.branch_prediction_rate r));
          ] );
      ( "by_func",
        Json.List
          (List.map
             (fun (f, cats) ->
               Json.Obj
                 [
                   ("func", Json.Str f);
                   ("total", Json.Float (Array.fold_left ( +. ) 0. cats));
                   ("categories", categories_to_json cats);
                 ])
             (List.sort compare r.Metrics.by_func)) );
      ("transform_stats", transform_stats_to_json r.Metrics.stats);
      ( "passes",
        Json.List (List.map Epic_obs.Passes.record_to_json r.Metrics.passes) );
      ( "profile",
        match r.Metrics.profile with
        | Some p -> Epic_obs.Profile.summary_to_json p
        | None -> Json.Null );
      ("output_matches", Json.Bool r.Metrics.output_matches);
      ( "host",
        match r.Metrics.host with
        | Some h ->
            Json.Obj
              [
                ("wall_s", Json.Float h.Metrics.h_wall_s);
                ("minor_words", Json.Float h.Metrics.h_minor_words);
                ("major_words", Json.Float h.Metrics.h_major_words);
                ("minor_collections", Json.Int h.Metrics.h_minor_collections);
                ("major_collections", Json.Int h.Metrics.h_major_collections);
              ]
        | None -> Json.Null );
    ]
    @ sampling_fields)

(* The observability block experiment cells carry (sweep and causal alike):
   exact per-kind event counts from the trace ring — counts stay exact even
   when the retained window wraps — and the PC-sampling profile reduced to
   its per-function shares.  The full profile summary (with per-block
   attribution) stays a run-document affair; per-cell documents would
   multiply it by the matrix size. *)
let obs_to_json ?trace ?profile () =
  Json.Obj
    [
      ( "trace_counts",
        match trace with
        | Some tr ->
            Json.Obj
              (List.map
                 (fun k -> (Trace.kind_name k, Json.Int (Trace.count tr k)))
                 Trace.all_kinds)
        | None -> Json.Null );
      ( "profile",
        match profile with
        | Some p ->
            Json.Obj
              [
                ("period", Json.Int (Profile.period p));
                ("samples", Json.Int (Profile.samples p));
                ( "by_func",
                  Json.List
                    (List.map
                       (fun (f, n) ->
                         Json.Obj
                           [ ("func", Json.Str f); ("samples", Json.Int n) ])
                       (Profile.by_func p)) );
              ]
        | None -> Json.Null );
    ]

(* Wall-clock is the one nondeterministic ingredient of a run document;
   zeroing it makes exports diffable byte-for-byte across runner shapes.
   The [host] section (wall time and GC traffic of the simulation) is
   host-noise through and through, so normalization drops it whole: zeroed
   fields would still leave a key that pre-host documents lack, and the
   engine-equivalence gate diffs normalized exports across revisions.
   [session] sections (cache hit/miss/eviction counters from
   Epic_serve.Session) are dropped for the same reason: whether a request
   hit the cache is a property of the traffic history, not of the result,
   and the served-vs-batch byte-identity gate diffs through this. *)
let rec normalize_time = function
  | Json.Obj fields ->
      Json.Obj
        (List.filter_map
           (fun (name, v) ->
             match name with
             | "host" | "session" -> None
             | "wall_s" | "total_wall_s" -> Some (name, Json.Float 0.)
             | _ -> Some (name, normalize_time v))
           fields)
  | Json.List l -> Json.List (List.map normalize_time l)
  | j -> j

let suite_to_json (s : Experiments.suite_result) =
  Json.Obj
    [
      ("suite", Json.Str "specint2000-standin");
      ("sample_period", Json.Int Experiments.sample_period);
      ( "workloads",
        Json.List
          (List.map (fun w -> Json.Str w) (Experiments.workload_names s)) );
      ( "configs",
        Json.List
          (List.map
             (fun l -> Json.Str (Config.level_name l))
             [ Config.Gcc_like; Config.O_NS; Config.ILP_NS; Config.ILP_CS ]) );
      ( "runs",
        Json.List (List.map (fun (_, _, r) -> run_to_json r) s.Experiments.runs) );
    ]
