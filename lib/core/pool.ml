(* A fixed-size domain worker pool over a mutex-protected job queue.

   The design favours determinism over cleverness: the job list is an
   array, workers pull the next unstarted index under a mutex, and results
   land in a slot array at their own index — so the result order is the
   input order no matter how the scheduler interleaves completions.  The
   suite runner builds on this to make `-j N` byte-identical to `-j 1`
   (every job is an independent compile+simulate whose only shared state is
   read-only; see DESIGN.md, "Domain-safety contract"). *)

type 'b slot = Empty | Done of 'b

(* Work-dispatch state shared by the caller and the spawned domains.  All
   fields are protected by [lock] except [slots], whose cells are written
   by exactly one worker each (the happens-before edge for the caller is
   Domain.join). *)
type ('a, 'b) shared = {
  items : 'a array;
  slots : 'b slot array;
  lock : Mutex.t;
  mutable next : int; (* next unstarted job index *)
  mutable failed : (int * exn * Printexc.raw_backtrace) option;
      (* raising job with the smallest index seen so far *)
}

let take sh =
  Mutex.lock sh.lock;
  let r =
    if sh.failed = None && sh.next < Array.length sh.items then begin
      let i = sh.next in
      sh.next <- i + 1;
      Some i
    end
    else None
  in
  Mutex.unlock sh.lock;
  r

let record_failure sh i exn bt =
  Mutex.lock sh.lock;
  (match sh.failed with
  | Some (j, _, _) when j < i -> ()
  | _ -> sh.failed <- Some (i, exn, bt));
  Mutex.unlock sh.lock

let rec worker f sh =
  match take sh with
  | None -> ()
  | Some i ->
      (match f sh.items.(i) with
      | v -> sh.slots.(i) <- Done v
      | exception exn -> record_failure sh i exn (Printexc.get_raw_backtrace ()));
      worker f sh

let map ~jobs f items =
  if jobs < 1 then invalid_arg "Pool.map: jobs must be >= 1";
  let n = Array.length items in
  if jobs = 1 || n <= 1 then Array.map f items
  else begin
    let sh =
      {
        items;
        slots = Array.make n Empty;
        lock = Mutex.create ();
        next = 0;
        failed = None;
      }
    in
    (* the caller is worker number [jobs]: spawn one domain fewer *)
    let spawned =
      Array.init (min jobs n - 1) (fun _ -> Domain.spawn (fun () -> worker f sh))
    in
    worker f sh;
    Array.iter Domain.join spawned;
    match sh.failed with
    | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None ->
        Array.map
          (function
            | Done v -> v
            | Empty -> assert false (* no failure => every index completed *))
          sh.slots
  end
