(* The compilation driver: runs the phase sequence of the paper's Figure 4
   for a given configuration, producing a scheduled, register-allocated,
   laid-out binary image ready for the machine simulator. *)

open Epic_ir

type compiled = {
  program : Program.t;
  layout : Epic_sched.Layout.t;
  config : Config.t;
  transform_stats : transform_stats;
  pass_records : Epic_obs.Passes.record list;
      (* wall time, rounds and IR-size deltas per phase, in order *)
}

and transform_stats = {
  instrs_after_frontend : int;
  instrs_after_classical : int;
  instrs_final : int;
  inlined_sites : int;
  specialized_calls : int;
  peeled_loops : int;
  unrolled_loops : int;
  hyperblocks : int;
  superblocks : int;
  tail_dup_instrs : int;
  peel_instrs : int;
  promoted_loads : int;
  marked_spec_loads : int;
  advanced_loads : int;
  static_bundles : int;
  code_bytes : int;
}

let reset_pass_stats () =
  Epic_ilp.Superblock.reset_stats ();
  Epic_ilp.Hyperblock.reset_stats ();
  Epic_ilp.Peel.reset_stats ();
  Epic_ilp.Unroll.reset_stats ();
  Epic_ilp.Speculate.reset_stats ();
  Epic_ilp.Data_spec.reset_stats ();
  Epic_ilp.Height.reset_stats ();
  Epic_sched.Regalloc.reset_stats ()

(* IR-size measurement for the per-pass instrumentation: instruction and
   block counts, plus estimated code bytes (16-byte bundles at the
   architectural 3-ops-per-bundle density — exact only after layout). *)
let ir_measure (p : Program.t) =
  let instrs = Program.instr_count p in
  let blocks =
    List.fold_left
      (fun acc (f : Func.t) -> acc + List.length f.Func.blocks)
      0 p.Program.funcs
  in
  (instrs, blocks, (instrs + 2) / 3 * 16)

(* Compile IR under [config], profiling with [train] input.  Each phase is
   wrapped in the [passes] instrumentation (a fresh registry when none is
   supplied): wall time, fixed-point rounds and IR-size deltas. *)
let compile_ir ?(config = Config.o_ns) ?passes ~(train : int64 array)
    (p : Program.t) =
  let pm = match passes with Some pm -> pm | None -> Epic_obs.Passes.create () in
  reset_pass_stats ();
  Verify.check_program p;
  let step ?(rounds_of = fun _ -> 1) name f =
    let i0, b0, y0 = ir_measure p in
    let t0 = Sys.time () in
    let r = f () in
    let dt = Sys.time () -. t0 in
    let i1, b1, y1 = ir_measure p in
    Epic_obs.Passes.add pm ~name ~wall_s:dt ~rounds:(rounds_of r)
      ~instrs:(i0, i1) ~blocks:(b0, b1) ~bytes:(y0, y1);
    r
  in
  let classical name =
    ignore
      (step name ~rounds_of:(fun r -> r) (fun () ->
           Epic_opt.Pipeline.run_classical_counted p))
  in
  let n0 = Program.instr_count p in
  let inlined = ref 0 and specialized = ref 0 in
  let peeled = ref 0 and unrolled = ref 0 in
  (match config.Config.level with
  | Config.Gcc_like ->
      (* traditional compilation: classical optimization only, no profile
         feedback, no inlining, no interprocedural analysis *)
      classical "classical"
  | Config.O_NS | Config.ILP_NS | Config.ILP_CS ->
      (* high-level phase: profile, specialize indirect calls, inline *)
      let prof =
        step "profile (train)" (fun () ->
            Epic_analysis.Profile.profile_and_annotate p train)
      in
      step "indirect-call specialization" (fun () ->
          specialized := Epic_opt.Indirect_call.run p prof;
          if !specialized > 0 then Epic_analysis.Profile.reprofile p train);
      step "inline" (fun () ->
          inlined := Epic_opt.Inline.run ~budget:config.Config.inline_budget p;
          Epic_analysis.Profile.reprofile p train);
      (* interprocedural pointer analysis annotates memory dependence tags *)
      step "points-to analysis" (fun () ->
          ignore
            (Epic_analysis.Points_to.analyze
               ~enabled:config.Config.pointer_analysis p));
      classical "classical (pre-region)";
      Epic_analysis.Profile.reprofile p train);
  let n1 = Program.instr_count p in
  (* low-level ILP phase *)
  if Config.is_ilp config then begin
    if config.Config.enable_peel then
      step "loop peeling" (fun () ->
          peeled := Epic_ilp.Peel.run ~params:config.Config.peel p;
          if !peeled > 0 then begin
            Verify.check_program p;
            Epic_analysis.Profile.reprofile p train
          end);
    if config.Config.enable_hyperblock then
      step "hyperblock formation" (fun () ->
          Epic_ilp.Hyperblock.run ~params:config.Config.hyperblock p;
          Verify.check_program p;
          Epic_analysis.Profile.reprofile p train);
    if config.Config.enable_superblock then
      step "superblock formation" (fun () ->
          Epic_ilp.Superblock.run ~params:config.Config.superblock p;
          Verify.check_program p;
          Epic_analysis.Profile.reprofile p train);
    if config.Config.enable_unroll then
      step "loop unrolling" (fun () ->
          unrolled := Epic_ilp.Unroll.run ~params:config.Config.unroll p;
          if !unrolled > 0 then begin
            Verify.check_program p;
            Epic_analysis.Profile.reprofile p train
          end);
    (* post-region cleanup *)
    classical "classical (post-region)";
    (* data-height reduction of the accumulator chains exposed by region
       formation and unrolling *)
    if config.Config.enable_height_reduction then
      step "height reduction" (fun () ->
          if Epic_ilp.Height.run p then begin
            Verify.check_program p;
            Epic_opt.Pipeline.run_classical p
          end);
    Epic_analysis.Profile.reprofile p train;
    if Config.has_speculation config then
      step "control speculation" (fun () ->
          Epic_ilp.Speculate.run
            ~params:
              {
                Epic_ilp.Speculate.default_params with
                Epic_ilp.Speculate.model = config.Config.spec_model;
              }
            p;
          Verify.check_program p);
    (* extension: data speculation (ld.a / chk.a through the ALAT) *)
    if config.Config.enable_data_speculation then
      step "data speculation" (fun () ->
          Epic_ilp.Data_spec.run p;
          Verify.check_program p)
  end;
  (* code generation: cold-code sinking, register allocation, scheduling,
     bundling and layout *)
  step "cold-code sinking" (fun () ->
      List.iter Epic_sched.Layout.sink_cold_blocks p.Program.funcs);
  step "register allocation" (fun () -> Epic_sched.Regalloc.run p);
  (* the GCC-like configuration performs no instruction reordering *)
  step "list scheduling" (fun () ->
      Epic_sched.List_sched.run ~reorder:(config.Config.level <> Config.Gcc_like) p;
      Verify.check_program p);
  let layout = step "bundling and layout" (fun () -> Epic_sched.Layout.build p) in
  {
    program = p;
    layout;
    config;
    pass_records = Epic_obs.Passes.records pm;
    transform_stats =
      {
        instrs_after_frontend = n0;
        instrs_after_classical = n1;
        instrs_final = Program.instr_count p;
        inlined_sites = !inlined;
        specialized_calls = !specialized;
        peeled_loops = !peeled;
        unrolled_loops = !unrolled;
        hyperblocks = Epic_ilp.Hyperblock.stats.Epic_ilp.Hyperblock.regions_converted;
        superblocks = Epic_ilp.Superblock.stats.Epic_ilp.Superblock.traces_formed;
        tail_dup_instrs = Epic_ilp.Superblock.stats.Epic_ilp.Superblock.tail_dup_instrs;
        peel_instrs = Epic_ilp.Peel.stats.Epic_ilp.Peel.peel_instrs;
        promoted_loads = Epic_ilp.Speculate.stats.Epic_ilp.Speculate.promoted;
        marked_spec_loads = Epic_ilp.Speculate.stats.Epic_ilp.Speculate.marked;
        advanced_loads = Epic_ilp.Data_spec.stats.Epic_ilp.Data_spec.advanced;
        static_bundles = Epic_sched.Layout.static_bundles layout;
        code_bytes = layout.Epic_sched.Layout.code_bytes;
      };
  }

(* Compile mini-C source text.  If the structural transforms of an ILP
   configuration blow the (finite) predicate file — possible for adversarial
   inputs despite the hyperblock pressure guard — fall back to progressively
   less aggressive region formation rather than failing the compile. *)
let compile ?(config = Config.o_ns) ~(train : int64 array) (src : string) =
  let attempt config =
    let pm = Epic_obs.Passes.create () in
    let t0 = Sys.time () in
    let p = Epic_frontend.Lower.compile_source src in
    let i1, b1, y1 = ir_measure p in
    Epic_obs.Passes.add pm ~name:"frontend: parse+lower"
      ~wall_s:(Sys.time () -. t0)
      ~rounds:1 ~instrs:(0, i1) ~blocks:(0, b1) ~bytes:(0, y1);
    compile_ir ~config ~passes:pm ~train p
  in
  try attempt config
  with Epic_sched.Regalloc.Out_of_registers _ -> (
    try
      attempt
        { config with Config.enable_unroll = false; Config.enable_hyperblock = false }
    with Epic_sched.Regalloc.Out_of_registers _ ->
      attempt { config with Config.level = Config.O_NS })

(* Run a compiled binary on the machine simulator. *)
let run ?fuel ?trace ?profile (c : compiled) (input : int64 array) =
  Epic_sim.Machine.run ?fuel ?trace ?profile c.program c.layout input

(* Reference semantics: the pre-backend program still runs on the
   high-level interpreter (scheduling does not change IR meaning), so a
   compiled program can always be cross-checked. *)
let run_reference ?fuel (c : compiled) (input : int64 array) =
  let code, out, _ = Interp.run ?fuel c.program input in
  (code, out)
