(* The compilation driver: runs the phase sequence of the paper's Figure 4
   for a given configuration, producing a scheduled, register-allocated,
   laid-out binary image ready for the machine simulator.

   Every phase runs on a pass manager (Epic_opt.Passman): the transforms
   are registered passes declaring the analyses they require and preserve,
   analysis results flow through the manager's per-function cache, and the
   classical fixed points only revisit functions some pass has dirtied. *)

open Epic_ir
module Passman = Epic_opt.Passman
module Cache = Epic_analysis.Cache

type compiled = {
  program : Program.t;
  layout : Epic_sched.Layout.t;
  config : Config.t;
  desc : Epic_mach.Machine_desc.t;
      (* the machine description the schedule was planned against; [run]
         hands it to the simulator so both sides read the same machine *)
  transform_stats : transform_stats;
  pass_records : Epic_obs.Passes.record list;
      (* wall time, rounds and IR-size deltas per phase, in order *)
}

and transform_stats = {
  instrs_after_frontend : int;
  instrs_after_classical : int;
  instrs_final : int;
  inlined_sites : int;
  specialized_calls : int;
  peeled_loops : int;
  unrolled_loops : int;
  hyperblocks : int;
  superblocks : int;
  tail_dup_instrs : int;
  peel_instrs : int;
  promoted_loads : int;
  marked_spec_loads : int;
  advanced_loads : int;
  static_bundles : int;
  code_bytes : int;
  fallback : string option;
      (* the degraded region-formation level a register-pressure fallback
         recompile landed on; [None] when the first attempt succeeded *)
}

let reset_pass_stats () =
  Epic_ilp.Superblock.reset_stats ();
  Epic_ilp.Hyperblock.reset_stats ();
  Epic_ilp.Peel.reset_stats ();
  Epic_ilp.Unroll.reset_stats ();
  Epic_ilp.Speculate.reset_stats ();
  Epic_ilp.Data_spec.reset_stats ();
  Epic_ilp.Height.reset_stats ();
  Epic_sched.Regalloc.reset_stats ()

(* IR-size measurement for the frontend instrumentation record (the per-pass
   records are measured inside the pass manager): instruction and block
   counts, plus estimated code bytes. *)
let ir_measure (p : Program.t) =
  let instrs = Program.instr_count p in
  let blocks =
    List.fold_left
      (fun acc (f : Func.t) -> acc + List.length f.Func.blocks)
      0 p.Program.funcs
  in
  (instrs, blocks, (instrs + 2) / 3 * 16)

(* Register the ILP region and backend transforms on the manager, with
   their preservation contracts.  The closures capture the configuration
   and the driver's stat counters.  Region formation restructures the CFG
   wholesale, so only the flow-insensitive points-to solution survives it;
   the backend passes keep the CFG and invalidate the data-sensitive
   analyses from inside (they thread the manager's cache). *)
let register_backend m (config : Config.t) ~peeled ~unrolled =
  let region = [ Cache.Points_to ] in
  Passman.register m
    (Passman.func_pass "loop peeling" ~requires:[ Cache.Loops ]
       ~preserves:region (fun c f ->
         let n = Epic_ilp.Peel.run_func ~cache:c ~params:config.Config.peel f in
         peeled := !peeled + n;
         n > 0));
  Passman.register m
    (Passman.func_pass "hyperblock formation" ~preserves:region (fun _ f ->
         Epic_ilp.Hyperblock.run_func ~params:config.Config.hyperblock f));
  Passman.register m
    (Passman.func_pass "superblock formation" ~preserves:region (fun _ f ->
         Epic_ilp.Superblock.run_func ~params:config.Config.superblock f));
  Passman.register m
    (Passman.func_pass "loop unrolling" ~preserves:region (fun _ f ->
         let n = Epic_ilp.Unroll.run_func ~params:config.Config.unroll f in
         unrolled := !unrolled + n;
         n > 0));
  Passman.register m
    (Passman.func_pass "height reduction" ~requires:[ Cache.Liveness ]
       ~preserves:Cache.[ Callgraph; Points_to ]
       (fun c f -> Epic_ilp.Height.run_func ~cache:c f));
  Passman.register m
    (Passman.func_pass "control speculation"
       ~preserves:Cache.[ Callgraph; Points_to ]
       (fun _ f ->
         Epic_ilp.Speculate.run_func
           ~params:
             {
               Epic_ilp.Speculate.default_params with
               Epic_ilp.Speculate.model = config.Config.spec_model;
             }
           f));
  Passman.register m
    (Passman.func_pass "data speculation"
       ~preserves:Cache.[ Callgraph; Points_to ]
       (fun _ f -> Epic_ilp.Data_spec.run_func f));
  Passman.register m
    (Passman.func_pass "cold-code sinking"
       ~preserves:Cache.[ Callgraph; Points_to ]
       (fun _ f ->
         Epic_sched.Layout.sink_cold_blocks f;
         true));
  Passman.register m
    (Passman.func_pass "register allocation"
       ~requires:Cache.[ Loops; Liveness ]
       ~preserves:Cache.[ Dominance; Loops; Callgraph; Points_to ]
       (fun c f ->
         Epic_sched.Regalloc.run_func ~cache:c f;
         true));
  Passman.register m
    (Passman.func_pass "list scheduling" ~requires:[ Cache.Liveness ]
       ~preserves:Cache.[ Callgraph; Points_to ]
       (fun c f ->
         Epic_sched.List_sched.run_func ~cache:c
           ~reorder:(config.Config.level <> Config.Gcc_like)
           f;
         true))

(* Compile IR under [config], profiling with [train] input.  [passes]
   accumulates the per-phase instrumentation: wall time, fixed-point
   rounds, IR-size deltas and analysis-cache hit/miss counters. *)
let compile_ir ?(config = Config.o_ns) ?desc ?passes ~(train : int64 array)
    (p : Program.t) =
  let desc = match desc with Some d -> d | None -> Epic_mach.Itanium.desc () in
  Epic_mach.Itanium.with_desc desc @@ fun () ->
  let obs = match passes with Some pm -> pm | None -> Epic_obs.Passes.create () in
  reset_pass_stats ();
  Verify.check_program p;
  let m = Passman.create ~obs p in
  Epic_opt.Pipeline.register_classical m;
  let cache = Passman.cache m in
  let inlined = ref 0 and specialized = ref 0 in
  let peeled = ref 0 and unrolled = ref 0 in
  register_backend m config ~peeled ~unrolled;
  (* (Re)profiling rewrites execution weights in place.  No structure
     moves, so no function becomes dirty — the cleanup passes and LICM are
     weight-insensitive — but the weight-derived analyses (loop trip
     counts, the callgraph) must be refetched. *)
  let invalidate_weight_sensitive () =
    Cache.invalidate_kinds cache Cache.[ Loops; Callgraph ]
  in
  let reprofile () =
    Epic_analysis.Profile.reprofile p train;
    invalidate_weight_sensitive ()
  in
  let classical name = ignore (Epic_opt.Pipeline.run_classical_pm m ~name) in
  let changed ch = ch <> Passman.Unchanged in
  let n0 = Program.instr_count p in
  (match config.Config.level with
  | Config.Gcc_like ->
      (* traditional compilation: classical optimization only, no profile
         feedback, no inlining, no interprocedural analysis *)
      classical "classical"
  | Config.O_NS | Config.ILP_NS | Config.ILP_CS ->
      (* high-level phase: profile, specialize indirect calls, inline *)
      let prof =
        Passman.phase m ~name:"profile (train)" (fun _ ->
            let prof = Epic_analysis.Profile.profile_and_annotate p train in
            invalidate_weight_sensitive ();
            (prof, Passman.Unchanged))
      in
      Passman.phase m ~name:"indirect-call specialization" (fun _ ->
          specialized := Epic_opt.Indirect_call.run p prof;
          if !specialized > 0 then reprofile ();
          ( (),
            if !specialized > 0 then Passman.Changed_all else Passman.Unchanged
          ));
      Passman.phase m ~name:"inline" (fun _ ->
          inlined :=
            Epic_opt.Inline.run ~cache ~budget:config.Config.inline_budget p;
          reprofile ();
          ((), if !inlined > 0 then Passman.Changed_all else Passman.Unchanged));
      (* interprocedural pointer analysis annotates memory dependence tags *)
      Passman.phase m ~name:"points-to analysis" (fun m ->
          ignore (Cache.points_to cache ~enabled:config.Config.pointer_analysis p);
          (* the annotation refines alias precision program-wide: no cached
             analysis goes stale, but every function may optimize further *)
          Passman.mark_all_dirty m;
          ((), Passman.Unchanged));
      classical "classical (pre-region)";
      reprofile ());
  let n1 = Program.instr_count p in
  (* low-level ILP phase *)
  if Config.is_ilp config then begin
    if config.Config.enable_peel then begin
      let ch = Passman.run_pass m "loop peeling" in
      if changed ch then begin
        Verify.check_program p;
        reprofile ()
      end
    end;
    if config.Config.enable_hyperblock then begin
      ignore (Passman.run_pass m "hyperblock formation");
      Verify.check_program p;
      reprofile ()
    end;
    if config.Config.enable_superblock then begin
      ignore (Passman.run_pass m "superblock formation");
      Verify.check_program p;
      reprofile ()
    end;
    if config.Config.enable_unroll then begin
      let ch = Passman.run_pass m "loop unrolling" in
      if changed ch then begin
        Verify.check_program p;
        reprofile ()
      end
    end;
    (* post-region cleanup *)
    classical "classical (post-region)";
    (* data-height reduction of the accumulator chains exposed by region
       formation and unrolling *)
    if config.Config.enable_height_reduction then begin
      let ch = Passman.run_pass m "height reduction" in
      if changed ch then begin
        Verify.check_program p;
        classical "classical (post-height)"
      end
    end;
    reprofile ();
    if Config.has_speculation config then begin
      ignore (Passman.run_pass m "control speculation");
      Verify.check_program p
    end;
    (* extension: data speculation (ld.a / chk.a through the ALAT) *)
    if config.Config.enable_data_speculation then begin
      ignore (Passman.run_pass m "data speculation");
      Verify.check_program p
    end
  end;
  (* code generation: cold-code sinking, register allocation, scheduling,
     bundling and layout *)
  ignore (Passman.run_pass m "cold-code sinking");
  ignore (Passman.run_pass m "register allocation");
  (* the GCC-like configuration performs no instruction reordering *)
  ignore (Passman.run_pass m "list scheduling");
  Verify.check_program p;
  let layout =
    Passman.phase m ~name:"bundling and layout" (fun _ ->
        (Epic_sched.Layout.build p, Passman.Unchanged))
  in
  {
    program = p;
    layout;
    config;
    desc;
    pass_records = Epic_obs.Passes.records obs;
    transform_stats =
      {
        instrs_after_frontend = n0;
        instrs_after_classical = n1;
        instrs_final = Program.instr_count p;
        inlined_sites = !inlined;
        specialized_calls = !specialized;
        peeled_loops = !peeled;
        unrolled_loops = !unrolled;
        hyperblocks = (Epic_ilp.Hyperblock.stats ()).Epic_ilp.Hyperblock.regions_converted;
        superblocks = (Epic_ilp.Superblock.stats ()).Epic_ilp.Superblock.traces_formed;
        tail_dup_instrs = (Epic_ilp.Superblock.stats ()).Epic_ilp.Superblock.tail_dup_instrs;
        peel_instrs = (Epic_ilp.Peel.stats ()).Epic_ilp.Peel.peel_instrs;
        promoted_loads = (Epic_ilp.Speculate.stats ()).Epic_ilp.Speculate.promoted;
        marked_spec_loads = (Epic_ilp.Speculate.stats ()).Epic_ilp.Speculate.marked;
        advanced_loads = (Epic_ilp.Data_spec.stats ()).Epic_ilp.Data_spec.advanced;
        static_bundles = Epic_sched.Layout.static_bundles layout;
        code_bytes = layout.Epic_sched.Layout.code_bytes;
        fallback = None;
      };
  }

(* Compile mini-C source text.  If the structural transforms of an ILP
   configuration blow the (finite) predicate file — possible for adversarial
   inputs despite the hyperblock pressure guard — fall back to progressively
   less aggressive region formation rather than failing the compile.  The
   source is parsed and lowered exactly once; fallback attempts recompile
   from a deep copy of the pre-optimization IR snapshot, and record the
   level they landed on in [transform_stats.fallback]. *)
let compile ?(config = Config.o_ns) ?desc ~(train : int64 array) (src : string) =
  let t0 = Sys.time () in
  let p0 = Epic_frontend.Lower.compile_source src in
  let parse_s = Sys.time () -. t0 in
  let post_parse_ids = Instr.id_counter () in
  let i1, b1, y1 = ir_measure p0 in
  let snapshot = Program.copy p0 in
  let attempt ?fallback config p =
    let pm = Epic_obs.Passes.create () in
    Epic_obs.Passes.add pm ~name:"frontend: parse+lower" ~wall_s:parse_s
      ~rounds:1 ~instrs:(0, i1) ~blocks:(0, b1) ~bytes:(0, y1) ();
    let c = compile_ir ~config ?desc ~passes:pm ~train p in
    { c with transform_stats = { c.transform_stats with fallback } }
  in
  (* A fallback restarts from the snapshot exactly as a recompile from
     source would: the snapshot carries the original ids ([Program.copy]
     preserves them) and the id counter rewinds to its post-parse value. *)
  let retry ?fallback config =
    Instr.restore_ids post_parse_ids;
    attempt ?fallback config (Program.copy snapshot)
  in
  try attempt config p0
  with Epic_sched.Regalloc.Out_of_registers _ -> (
    try
      retry ~fallback:"no-unroll-no-hyperblock"
        { config with Config.enable_unroll = false; Config.enable_hyperblock = false }
    with Epic_sched.Regalloc.Out_of_registers _ ->
      retry ~fallback:"o-ns" { config with Config.level = Config.O_NS })

(* The shape of a compile entry point, for dependency inversion: the
   experiment layers (Experiments, Sweep, Causal) take a [compile_fn] so a
   caching session (lib/serve) can substitute itself without this library
   depending on it.  [desc] is a plain option — not an optional argument —
   so the arrow type stays first-class. *)
type compile_fn =
  config:Config.t ->
  desc:Epic_mach.Machine_desc.t option ->
  train:int64 array ->
  string ->
  compiled

let default_compile : compile_fn =
 fun ~config ~desc ~train src -> compile ~config ?desc ~train src

(* Run a compiled binary on the machine simulator. *)
let run ?fuel ?trace ?profile ?experiment ?experiments ?sampling
    ?checkpoint_at (c : compiled) (input : int64 array) =
  Epic_sim.Machine.run ?fuel ?trace ?profile ?experiment ?experiments
    ?sampling ?checkpoint_at ~desc:c.desc c.program c.layout input

(* Resume a checkpoint taken from a run of the same compiled binary (or a
   structurally identical recompile: the session cache's content keys
   guarantee that). *)
let resume ?fuel ?trace ?profile ?experiment ?experiments (c : compiled)
    (ck : Epic_sim.Machine.checkpoint) =
  Epic_sim.Machine.resume ?fuel ?trace ?profile ?experiment ?experiments
    ~desc:c.desc c.program c.layout ck

(* The result of one fused multi-experiment simulation (DESIGN.md §14):
   per-experiment category totals in the order the experiments were given,
   plus the run's architectural outcome (which no experiment can change —
   the hooks live purely at accounting time). *)
type fused = {
  f_code : int;
  f_output : string;
  f_categories : float array array;
      (* f_categories.(i) = experiment i's nine category totals *)
  f_resumed : bool;
      (* the run resumed a cached checkpoint prefix instead of simulating
         from the start (per-experiment totals then within an ulp of the
         straight-through run, not bit-identical) *)
}

(* The shape of a fused-matrix entry point, mirroring [compile_fn]: the
   causal planner takes a [fused_fn] so the caching session can substitute
   its checkpoint-prefix-reusing, memoizing implementation.  [prefix_at]
   is the issue-group position a reusable checkpoint prefix may be taken
   at ([None] = never); the default implementation ignores it. *)
type fused_fn =
  config:Config.t ->
  desc:Epic_mach.Machine_desc.t option ->
  train:int64 array ->
  input:int64 array ->
  experiments:Epic_sim.Accounting.experiment list ->
  prefix_at:int option ->
  string ->
  fused

let fused_of_machine code output (st : Epic_sim.Machine.t) ~resumed =
  {
    f_code = code;
    f_output = output;
    f_categories =
      Array.map
        (fun (a : Epic_sim.Accounting.t) ->
          Array.copy a.Epic_sim.Accounting.totals)
        (Epic_sim.Machine.fused_accounts st);
    f_resumed = resumed;
  }

let default_fused : fused_fn =
 fun ~config ~desc ~train ~input ~experiments ~prefix_at:_ src ->
  let c = compile ~config ?desc ~train src in
  let code, output, st = run ~experiments c input in
  fused_of_machine code output st ~resumed:false

(* Reference semantics: the pre-backend program still runs on the
   high-level interpreter (scheduling does not change IR meaning), so a
   compiled program can always be cross-checked. *)
let run_reference ?fuel (c : compiled) (input : int64 array) =
  let code, out, _ = Interp.run ?fuel c.program input in
  (code, out)
