(* Experiment harness: compiles and runs the twelve-workload suite under the
   four configurations and derives every table and figure of the paper's
   evaluation section.  Results are memoized so one suite run feeds all the
   tables (like one SPEC run feeding many counters). *)

open Epic_workloads

type suite_result = {
  runs : (string * Config.level * Metrics.run) list; (* (workload, level, run) *)
  index : (string * Config.level, Metrics.run) Hashtbl.t;
      (* built at suite construction; every table lookup goes through it
         instead of rescanning [runs] *)
}

let index_runs runs =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (w, l, r) -> Hashtbl.replace tbl (w, l) r) runs;
  tbl

let config_for (w : Workload.t) (level : Config.level) =
  let base = Config.make level in
  { base with Config.pointer_analysis = w.Workload.pointer_analysis }

(* Reference output: the program as lowered (unoptimized), interpreted. *)
let reference_output (w : Workload.t) =
  let p = Epic_frontend.Lower.compile_source w.Workload.source in
  let code, out, _ = Epic_ir.Interp.run p w.Workload.reference in
  (code, out)

(* Sampling period for the suite's PC profiler (the Pfmon address-sampling
   stand-in feeding Figure 10).  Prime, to avoid aliasing with periodic
   code; small enough that per-function shares converge within 5% of the
   exact accounting on every workload. *)
let sample_period = 97

let run_one ?(train : int64 array option) ?reference ?desc
    ?(compile = Driver.default_compile) (w : Workload.t) (level : Config.level)
    =
  let config = config_for w level in
  let train = match train with Some t -> t | None -> w.Workload.train in
  let compiled = compile ~config ~desc ~train w.Workload.source in
  (* the reference interpretation is per-workload, not per-level: suite
     runs compute it once and pass it in *)
  let ref_code, ref_out =
    match reference with Some r -> r | None -> reference_output w
  in
  let profile = Epic_obs.Profile.create ~period:sample_period () in
  (* time the simulation and its GC traffic (host observability; exports
     zero this under --normalize-time, so determinism diffs are unaffected) *)
  let gc0 = Gc.quick_stat () in
  let t0 = Sys.time () in
  let code, out, st = Driver.run ~profile compiled w.Workload.reference in
  let wall = Sys.time () -. t0 in
  let gc1 = Gc.quick_stat () in
  let host =
    {
      Metrics.h_wall_s = wall;
      h_minor_words = gc1.Gc.minor_words -. gc0.Gc.minor_words;
      h_major_words = gc1.Gc.major_words -. gc0.Gc.major_words;
      h_minor_collections = gc1.Gc.minor_collections - gc0.Gc.minor_collections;
      h_major_collections = gc1.Gc.major_collections - gc0.Gc.major_collections;
    }
  in
  let ok = code = ref_code && out = ref_out in
  if not ok then
    Fmt.epr "WARNING: %s/%s output mismatch@." w.Workload.short (Config.name config);
  Metrics.of_machine ~workload:w.Workload.short ~profile ~host compiled st ~output_matches:ok

let levels = [ Config.Gcc_like; Config.O_NS; Config.ILP_NS; Config.ILP_CS ]

(* The suite is 12 workloads x 4 levels = 48 independent compile+simulate
   jobs, sharded over a domain pool ([Pool.map]).  Determinism: each job
   compiles its program from source, which resets the domain-local
   instruction-id counter, so the ids — and with them branch-predictor
   indexing and sample attribution — are identical whichever domain runs
   the job.  Reference outputs are computed once per workload (phase 1) and
   shared read-only with the 4 per-level jobs (phase 2).  Results come back
   in index order, so [runs] is ordered exactly as the sequential walk. *)
let run_suite ?(workloads = Suite.all) ?(progress = false) ?(jobs = 1)
    ?compile () =
  let ws = Array.of_list workloads in
  let references =
    Pool.map ~jobs
      (fun (w : Workload.t) ->
        if progress then Fmt.epr "  reference %s...@." w.Workload.short;
        reference_output w)
      ws
  in
  let pairs =
    Array.of_list
      (List.concat_map
         (fun wi -> List.map (fun level -> (wi, level)) levels)
         (List.init (Array.length ws) Fun.id))
  in
  let results =
    Pool.map ~jobs
      (fun (wi, level) ->
        let w = ws.(wi) in
        if progress then
          Fmt.epr "  running %s / %s...@." w.Workload.short (Config.level_name level);
        run_one ~reference:references.(wi) ?compile w level)
      pairs
  in
  let runs =
    Array.to_list
      (Array.mapi
         (fun i (wi, level) -> (ws.(wi).Workload.short, level, results.(i)))
         pairs)
  in
  { runs; index = index_runs runs }

(* Runs whose simulated output diverged from the reference interpreter.
   [run_one] warns as it happens; this is the machine-checkable record the
   bench harness and CI gate on. *)
let mismatches (s : suite_result) =
  List.filter_map
    (fun (w, l, (r : Metrics.run)) ->
      if r.Metrics.output_matches then None else Some (w, l))
    s.runs

let get (s : suite_result) (workload : string) (level : Config.level) =
  Hashtbl.find_opt s.index (workload, level)

let get_exn s w l =
  match get s w l with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "no run for %s/%s" w (Config.level_name l))

let workload_names (s : suite_result) =
  List.sort_uniq compare (List.map (fun (w, _, _) -> w) s.runs)
  |> fun names ->
  (* keep SPEC order *)
  List.filter (fun n -> List.mem n names) Suite.names

(* --- Table 1: estimated SPECint ratios --------------------------------- *)

(* The paper's ratios are SPEC reference-machine ratios; we normalize with a
   single global constant so that the GCC geomean lands at the paper's 430,
   keeping all relative (per-benchmark and per-config) variation ours. *)
type table1_row = {
  bench : string;
  ratios : (Config.level * float) list;
}

let table1 (s : suite_result) =
  let gcc_cycles =
    List.map (fun w -> (get_exn s w Config.Gcc_like).Metrics.cycles) (workload_names s)
  in
  let scale = 430. *. Metrics.geomean gcc_cycles in
  let rows =
    List.map
      (fun w ->
        {
          bench = w;
          ratios =
            List.map
              (fun l -> (l, scale /. (get_exn s w l).Metrics.cycles))
              levels;
        })
      (workload_names s)
  in
  let geo l =
    Metrics.geomean (List.map (fun r -> List.assoc l r.ratios) rows)
  in
  (rows, List.map (fun l -> (l, geo l)) levels)

(* --- Figure 2: planned vs exploited speedup over O-NS ------------------- *)

type fig2_row = {
  f2_bench : string;
  f2_level : Config.level;
  planned_speedup : float;
  exploited_speedup : float;
}

let fig2 (s : suite_result) =
  List.concat_map
    (fun w ->
      let base = get_exn s w Config.O_NS in
      List.map
        (fun l ->
          let r = get_exn s w l in
          {
            f2_bench = w;
            f2_level = l;
            planned_speedup = base.Metrics.planned /. r.Metrics.planned;
            exploited_speedup = base.Metrics.cycles /. r.Metrics.cycles;
          })
        [ Config.ILP_NS; Config.ILP_CS ])
    (workload_names s)

let fig2_averages (s : suite_result) =
  let rows = fig2 s in
  let avg lvl f =
    Metrics.geomean
      (List.filter_map (fun r -> if r.f2_level = lvl then Some (f r) else None) rows)
  in
  ( avg Config.ILP_CS (fun r -> r.planned_speedup),
    avg Config.ILP_CS (fun r -> r.exploited_speedup) )

(* --- Figure 5: cycle accounting normalized to O-NS ---------------------- *)

let fig5 (s : suite_result) =
  List.map
    (fun w ->
      let base = (get_exn s w Config.O_NS).Metrics.cycles in
      ( w,
        List.map
          (fun l ->
            let r = get_exn s w l in
            (l, Array.map (fun c -> c /. base) r.Metrics.categories))
          [ Config.O_NS; Config.ILP_NS; Config.ILP_CS ] ))
    (workload_names s)

(* --- Figure 6: operation accounting and IPC ----------------------------- *)

type fig6_row = {
  f6_bench : string;
  f6_level : Config.level;
  useful : float; (* normalized to O-NS total fetched ops *)
  squashed : float;
  nops : float;
  kernel : float;
  ipc_planned : float;
  ipc_achieved : float;
}

let fig6 (s : suite_result) =
  List.concat_map
    (fun w ->
      let b = get_exn s w Config.O_NS in
      let base =
        float_of_int
          (b.Metrics.useful_ops + b.Metrics.squashed_ops + b.Metrics.nop_ops)
      in
      List.map
        (fun l ->
          let r = get_exn s w l in
          {
            f6_bench = w;
            f6_level = l;
            useful = float_of_int r.Metrics.useful_ops /. base;
            squashed = float_of_int r.Metrics.squashed_ops /. base;
            nops = float_of_int r.Metrics.nop_ops /. base;
            kernel = float_of_int r.Metrics.kernel_ops /. base;
            ipc_planned = Metrics.planned_ipc r;
            ipc_achieved = Metrics.achieved_ipc r;
          })
        [ Config.O_NS; Config.ILP_NS; Config.ILP_CS ])
    (workload_names s)

(* --- Figure 7: branches and prediction ----------------------------------- *)

type fig7_row = {
  f7_bench : string;
  f7_level : Config.level;
  predictions_norm : float; (* vs O-NS *)
  mispredictions_norm : float;
  correct_rate : float;
}

let fig7 (s : suite_result) =
  List.concat_map
    (fun w ->
      let b = get_exn s w Config.O_NS in
      List.map
        (fun l ->
          let r = get_exn s w l in
          {
            f7_bench = w;
            f7_level = l;
            predictions_norm =
              float_of_int r.Metrics.predictions /. float_of_int (max 1 b.Metrics.predictions);
            mispredictions_norm =
              float_of_int r.Metrics.mispredictions
              /. float_of_int (max 1 b.Metrics.mispredictions);
            correct_rate = Metrics.branch_prediction_rate r;
          })
        [ Config.O_NS; Config.ILP_NS; Config.ILP_CS ])
    (workload_names s)

(* average dynamic branch reduction, ILP-CS vs O-NS (paper: 27%) *)
let branch_reduction (s : suite_result) =
  let ratios =
    List.map
      (fun w ->
        let b = get_exn s w Config.O_NS and r = get_exn s w Config.ILP_CS in
        float_of_int r.Metrics.branches /. float_of_int (max 1 b.Metrics.branches))
      (workload_names s)
  in
  1.0 -. Metrics.geomean ratios

(* --- Figure 8: data-cache stall cycles vs O-NS --------------------------- *)

let fig8 (s : suite_result) =
  List.map
    (fun w ->
      let base =
        max 1.0 (Metrics.category (get_exn s w Config.O_NS) Epic_sim.Accounting.Int_load_bubble)
      in
      ( w,
        List.map
          (fun l ->
            ( l,
              Metrics.category (get_exn s w l) Epic_sim.Accounting.Int_load_bubble
              /. base ))
          [ Config.ILP_NS; Config.ILP_CS ] ))
    (workload_names s)

(* --- Figure 10: per-function time (vortex by default) -------------------- *)

type fig10_row = {
  func : string;
  base_share : float; (* fraction of O-NS cycles *)
  ratio_ns : float; (* ILP-NS time / O-NS time for this function *)
  ratio_cs : float;
}

(* Per-function attribution comes from the PC-sampling profiler when the
   runs carried one (the suite always samples — this is the Pfmon
   address-sampling methodology behind the paper's Figure 10), falling
   back to the exact accounting bins for unsampled runs. *)
let fig10 ?(workload = "vortex") (s : suite_result) =
  let base = get_exn s workload Config.O_NS in
  let ns = get_exn s workload Config.ILP_NS in
  let cs = get_exn s workload Config.ILP_CS in
  let base_total = Metrics.total_cycles_est base in
  Metrics.profiled_functions base
  |> List.map (fun f ->
         let bt = Metrics.func_cycles_est base f in
         {
           func = f;
           base_share = bt /. base_total;
           ratio_ns = (if bt > 0. then Metrics.func_cycles_est ns f /. bt else 1.);
           ratio_cs = (if bt > 0. then Metrics.func_cycles_est cs f /. bt else 1.);
         })
  |> List.filter (fun r -> r.base_share > 0.002)
  |> List.sort (fun a b -> compare b.base_share a.base_share)

(* --- Section 3 aggregate statistics -------------------------------------- *)

type structural_stats = {
  branch_reduction_pct : float; (* paper: 27% *)
  tail_dup_growth_pct : float; (* paper: 21% *)
  peel_growth_pct : float; (* paper: 2% *)
  front_end_stall_reduction_pct : float; (* paper: 15% *)
  l1i_access_reduction_pct : float; (* paper: ~10% *)
  avg_planned_ipc_cs : float; (* paper: 2.63 *)
  avg_achieved_ipc_cs : float; (* paper: 1.23 *)
}

let structural_stats (s : suite_result) =
  let ws = workload_names s in
  let avg f = Metrics.geomean (List.map f ws) in
  {
    branch_reduction_pct = 100. *. branch_reduction s;
    tail_dup_growth_pct =
      100.
      *. Metrics.geomean
           (List.map
              (fun w ->
                let r = get_exn s w Config.ILP_CS in
                1.
                +. float_of_int r.Metrics.stats.Driver.tail_dup_instrs
                   /. float_of_int (max 1 r.Metrics.stats.Driver.instrs_after_classical))
              ws)
      -. 100.;
    peel_growth_pct =
      100.
      *. Metrics.geomean
           (List.map
              (fun w ->
                let r = get_exn s w Config.ILP_CS in
                1.
                +. float_of_int r.Metrics.stats.Driver.peel_instrs
                   /. float_of_int (max 1 r.Metrics.stats.Driver.instrs_after_classical))
              ws)
      -. 100.;
    front_end_stall_reduction_pct =
      100.
      *. (1.
         -. avg (fun w ->
                let b =
                  max 1.0 (Metrics.category (get_exn s w Config.O_NS) Epic_sim.Accounting.Front_end)
                in
                Metrics.category (get_exn s w Config.ILP_CS) Epic_sim.Accounting.Front_end /. b));
    l1i_access_reduction_pct =
      100.
      *. (1.
         -. avg (fun w ->
                float_of_int (get_exn s w Config.ILP_CS).Metrics.l1i_accesses
                /. float_of_int (max 1 (get_exn s w Config.O_NS).Metrics.l1i_accesses)));
    avg_planned_ipc_cs = avg (fun w -> Metrics.planned_ipc (get_exn s w Config.ILP_CS));
    avg_achieved_ipc_cs = avg (fun w -> Metrics.achieved_ipc (get_exn s w Config.ILP_CS));
  }

(* --- Section 4.3: speculation models (Figure 9's cost structure) --------- *)

type spec_model_row = {
  sm_bench : string;
  general_cycles : float;
  general_kernel : float;
  general_wild : int;
  sentinel_cycles : float;
  sentinel_recoveries : int;
}

let spec_model_experiment ?(workloads = [ "gcc"; "parser"; "perlbmk"; "gap" ]) () =
  List.map
    (fun short ->
      let w = Suite.find_exn short in
      let compile model =
        let config =
          {
            (config_for w Config.ILP_CS) with
            Config.spec_model = model;
          }
        in
        let compiled = Driver.compile ~config ~train:w.Workload.train w.Workload.source in
        let _, _, st = Driver.run compiled w.Workload.reference in
        st
      in
      let open Epic_sim in
      let g = compile Epic_ilp.Speculate.General in
      let st = compile Epic_ilp.Speculate.Sentinel in
      {
        sm_bench = short;
        general_cycles = Accounting.total g.Machine.acc;
        general_kernel = Accounting.get g.Machine.acc Accounting.Kernel;
        general_wild = g.Machine.c.Machine.wild_loads;
        sentinel_cycles = Accounting.total st.Machine.acc;
        sentinel_recoveries = st.Machine.c.Machine.chk_recoveries;
      })
    workloads

(* --- Section 4.6: profile variation -------------------------------------- *)

type profvar_row = {
  pv_bench : string;
  train_trained_cycles : float; (* normal SPEC practice *)
  ref_trained_cycles : float; (* trained on the reference input *)
  improvement_pct : float;
}

let profile_variation ?(workloads = [ "crafty"; "perlbmk"; "gap" ]) () =
  List.map
    (fun short ->
      let w = Suite.find_exn short in
      let cycles ~train =
        let config = config_for w Config.ILP_CS in
        let compiled = Driver.compile ~config ~train w.Workload.source in
        let _, _, st = Driver.run compiled w.Workload.reference in
        Epic_sim.Accounting.total st.Epic_sim.Machine.acc
      in
      let t = cycles ~train:w.Workload.train in
      let r = cycles ~train:w.Workload.reference in
      {
        pv_bench = short;
        train_trained_cycles = t;
        ref_trained_cycles = r;
        improvement_pct = 100. *. (t -. r) /. t;
      })
    workloads

(* --- Extension: data speculation (paper Section 2) ----------------------- *)

type data_spec_row = {
  ds_bench : string;
  without_cycles : float;
  with_cycles : float;
  advanced : int;
  recoveries : int;
}

(* The paper: "In gap, pointer analysis is unable to resolve critical
   spurious dependences in otherwise highly-parallel loops.  A limited
   initial application [of data speculation], currently in progress, is
   providing a 5% speedup."  We reproduce the experiment: ILP-CS with and
   without the ld.a/chk.a extension. *)
let data_spec_experiment ?(workloads = [ "gap"; "gzip"; "bzip2"; "vortex" ]) () =
  List.map
    (fun short ->
      let w = Suite.find_exn short in
      let run enable =
        let config =
          {
            (config_for w Config.ILP_CS) with
            Config.enable_data_speculation = enable;
          }
        in
        let compiled = Driver.compile ~config ~train:w.Workload.train w.Workload.source in
        let _, _, st = Driver.run compiled w.Workload.reference in
        (compiled, st)
      in
      let _, st0 = run false in
      let c1, st1 = run true in
      {
        ds_bench = short;
        without_cycles = Epic_sim.Accounting.total st0.Epic_sim.Machine.acc;
        with_cycles = Epic_sim.Accounting.total st1.Epic_sim.Machine.acc;
        advanced = c1.Driver.transform_stats.Driver.advanced_loads;
        recoveries = st1.Epic_sim.Machine.c.Epic_sim.Machine.chk_recoveries;
      })
    workloads

(* --- Ablations of the design choices DESIGN.md calls out ----------------- *)

type ablation_row = {
  ab_name : string;
  ab_bench : string;
  ab_cycles : float;
}

let ablations ?(workloads = [ "gzip"; "crafty"; "vortex"; "twolf" ]) () =
  let variants =
    [
      ("full ILP-CS", fun (c : Config.t) -> c);
      ("no hyperblock", fun c -> { c with Config.enable_hyperblock = false });
      ("no peeling", fun c -> { c with Config.enable_peel = false });
      ("no unrolling", fun c -> { c with Config.enable_unroll = false });
      ( "no tail dup",
        fun c ->
          {
            c with
            Config.superblock =
              { c.Config.superblock with Epic_ilp.Superblock.growth_budget = 0.0 };
          } );
      ( "no inlining",
        fun c -> { c with Config.inline_budget = 1.0 } );
      ( "no height red.",
        fun c -> { c with Config.enable_height_reduction = false } );
    ]
  in
  List.concat_map
    (fun short ->
      let w = Suite.find_exn short in
      List.map
        (fun (name, tweak) ->
          let config = tweak (config_for w Config.ILP_CS) in
          let compiled = Driver.compile ~config ~train:w.Workload.train w.Workload.source in
          let _, _, st = Driver.run compiled w.Workload.reference in
          { ab_name = name; ab_bench = short;
            ab_cycles = Epic_sim.Accounting.total st.Epic_sim.Machine.acc })
        variants)
    workloads
