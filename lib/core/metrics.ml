(* Measurements extracted from one simulated run — the counter set the paper
   reads from Pfmon, plus compiler-side statistics. *)

(* Host-side cost of producing the run: wall time and GC traffic of the
   simulation itself (not the compile).  Pure observability — nothing
   architectural is derived from it, and exports zero it under
   [--normalize-time] so documents stay diffable. *)
type host_stats = {
  h_wall_s : float;
  h_minor_words : float;
  h_major_words : float;
  h_minor_collections : int;
  h_major_collections : int;
}

type run = {
  workload : string;
  config : Config.t;
  cycles : float;
  planned : float; (* unstalled + scoreboard categories (footnote 4) *)
  categories : float array; (* the 9 accounting categories *)
  useful_ops : int;
  squashed_ops : int;
  nop_ops : int;
  kernel_ops : int;
  branches : int;
  predictions : int;
  mispredictions : int;
  l1i_accesses : int;
  l1i_misses : int;
  l1d_accesses : int;
  l1d_misses : int;
  dtlb_misses : int;
  wild_loads : int;
  spec_loads : int;
  chk_recoveries : int;
  rse_spills : int;
  groups : int;
  by_func : (string * float array) list; (* per-function category cycles *)
  stats : Driver.transform_stats;
  passes : Epic_obs.Passes.record list; (* per-pass compiler instrumentation *)
  profile : Epic_obs.Profile.summary option; (* PC samples, when sampling ran *)
  sampling : Epic_sim.Sampling.summary option; (* interval-sampling extrapolation *)
  output_matches : bool; (* simulator output == reference interpreter output *)
  host : host_stats option; (* host-side run cost, when the caller timed it *)
}

let of_machine ~(workload : string) ?profile ?host (compiled : Driver.compiled)
    (st : Epic_sim.Machine.t) ~(output_matches : bool) =
  let open Epic_sim in
  let acc = st.Machine.acc in
  {
    workload;
    config = compiled.Driver.config;
    cycles = Accounting.total acc;
    planned = Accounting.planned acc;
    categories = Array.copy acc.Accounting.totals;
    useful_ops = st.Machine.c.Machine.useful_ops;
    squashed_ops = st.Machine.c.Machine.squashed_ops;
    nop_ops = st.Machine.c.Machine.nop_ops;
    kernel_ops = st.Machine.c.Machine.kernel_ops;
    branches = st.Machine.c.Machine.branches;
    predictions = st.Machine.bp.Branch_pred.predictions;
    mispredictions = st.Machine.bp.Branch_pred.mispredictions;
    l1i_accesses = st.Machine.l1i.Cache.accesses;
    l1i_misses = st.Machine.l1i.Cache.misses;
    l1d_accesses = st.Machine.l1d.Cache.accesses;
    l1d_misses = st.Machine.l1d.Cache.misses;
    dtlb_misses = st.Machine.dtlb.Tlb.misses;
    wild_loads = st.Machine.c.Machine.wild_loads;
    spec_loads = st.Machine.c.Machine.spec_loads;
    chk_recoveries = st.Machine.c.Machine.chk_recoveries;
    rse_spills = st.Machine.rse.Rse.spills;
    groups = st.Machine.c.Machine.groups;
    by_func =
      Hashtbl.fold (fun f b acc -> (f, Array.copy b) :: acc)
        acc.Accounting.by_func [];
    stats = compiled.Driver.transform_stats;
    passes = compiled.Driver.pass_records;
    profile = Option.map Epic_obs.Profile.summarize profile;
    sampling = Epic_sim.Machine.sample_summary st;
    output_matches;
    host;
  }

(* Estimated cycles spent in [f] from PC samples (samples x period) when a
   profile is present, else the exact per-function accounting sum. *)
let func_cycles_est r f =
  match r.profile with
  | Some p -> (
      match List.assoc_opt f p.Epic_obs.Profile.s_by_func with
      | Some n -> float_of_int (n * p.Epic_obs.Profile.s_period)
      | None -> 0.)
  | None -> (
      match List.assoc_opt f r.by_func with
      | Some b -> Array.fold_left ( +. ) 0. b
      | None -> 0.)

(* The functions a per-function report should iterate over: sampled
   functions when a profile is present, accounting bins otherwise. *)
let profiled_functions r =
  match r.profile with
  | Some p -> List.map fst p.Epic_obs.Profile.s_by_func
  | None -> List.map fst r.by_func

(* Total estimated cycles backing [func_cycles_est] (sampling quantizes, so
   use the matching denominator when computing shares). *)
let total_cycles_est r =
  match r.profile with
  | Some p -> float_of_int (p.Epic_obs.Profile.s_samples * p.Epic_obs.Profile.s_period)
  | None -> r.cycles

(* Planned IPC: useful operations per anticipated cycle (the paper's 2.63
   for ILP-CS); achieved IPC: useful operations per actual cycle (1.23). *)
let planned_ipc r =
  if r.planned > 0. then float_of_int r.useful_ops /. r.planned else 0.

let achieved_ipc r =
  if r.cycles > 0. then float_of_int r.useful_ops /. r.cycles else 0.

(* With zero predictions there is nothing to mispredict, so the rate is
   vacuously perfect: 1.0 by convention (documented in the .mli, asserted
   by the tests) rather than 0/0. *)
let branch_prediction_rate r =
  if r.predictions = 0 then 1.0
  else 1.0 -. (float_of_int r.mispredictions /. float_of_int r.predictions)

let category r cat = r.categories.(Epic_sim.Accounting.index cat)

(* The geometric mean of an empty list has no value (it would be exp of an
   empty average); raise rather than silently answering 0. *)
let geomean xs =
  match xs with
  | [] -> invalid_arg "Metrics.geomean: empty list"
  | _ ->
      let n = float_of_int (List.length xs) in
      exp (List.fold_left (fun acc x -> acc +. log (max x 1e-9)) 0. xs /. n)
