(** Measurements extracted from one simulated run — the counter set the
    paper reads from Pfmon, plus compiler-side statistics — and the derived
    quantities the figures plot. *)

(** Host-side cost of the simulation that produced a run: wall time and GC
    traffic ({!Gc.quick_stat} deltas).  Pure observability — nothing
    architectural derives from it, and {!Export.normalize_time} zeroes it so
    exports stay diffable across hosts. *)
type host_stats = {
  h_wall_s : float;
  h_minor_words : float;
  h_major_words : float;
  h_minor_collections : int;
  h_major_collections : int;
}

type run = {
  workload : string;
  config : Config.t;
  cycles : float;
  planned : float;  (** unstalled + scoreboard categories (footnote 4) *)
  categories : float array;  (** the 9 accounting categories *)
  useful_ops : int;
  squashed_ops : int;
  nop_ops : int;
  kernel_ops : int;
  branches : int;
  predictions : int;
  mispredictions : int;
  l1i_accesses : int;
  l1i_misses : int;
  l1d_accesses : int;
  l1d_misses : int;
  dtlb_misses : int;
  wild_loads : int;
  spec_loads : int;
  chk_recoveries : int;
  rse_spills : int;
  groups : int;
  by_func : (string * float array) list;
  stats : Driver.transform_stats;
  passes : Epic_obs.Passes.record list;
      (** per-pass compiler instrumentation (wall time, rounds, IR deltas) *)
  profile : Epic_obs.Profile.summary option;
      (** PC-sampling profile, when the run sampled *)
  sampling : Epic_sim.Sampling.summary option;
      (** interval-sampling extrapolation summary, when the run was
          sampled ({!Driver.run} [?sampling]); cycles and categories are
          then estimates with the confidence bounds recorded here *)
  output_matches : bool;
      (** simulator output equalled the reference interpreter's *)
  host : host_stats option;
      (** host-side run cost, when the caller timed the simulation *)
}

(** [profile] embeds the run's PC-sampling profile (pass the profiler
    given to {!Driver.run}); [host] attaches the host-side cost of the
    simulation (see {!host_stats}). *)
val of_machine :
  workload:string ->
  ?profile:Epic_obs.Profile.t ->
  ?host:host_stats ->
  Driver.compiled ->
  Epic_sim.Machine.t ->
  output_matches:bool ->
  run

(** Estimated cycles spent in a function: samples x period when the run
    carries a profile (the Pfmon address-sampling path behind Figure 10),
    the exact accounting sum otherwise. *)
val func_cycles_est : run -> string -> float

(** Functions a per-function report should iterate over: sampled functions
    when a profile is present, accounting bins otherwise. *)
val profiled_functions : run -> string list

(** Denominator matching {!func_cycles_est} (sampling quantizes totals). *)
val total_cycles_est : run -> float

(** Useful operations per statically-anticipated cycle (paper: 2.63 for
    ILP-CS). *)
val planned_ipc : run -> float

(** Useful operations per actual cycle (paper: 1.23). *)
val achieved_ipc : run -> float

(** Fraction of predictions that were correct.  With [predictions = 0]
    there is nothing to mispredict, so the rate is vacuously perfect:
    [1.0] by convention (not 0/0). *)
val branch_prediction_rate : run -> float

val category : run -> Epic_sim.Accounting.category -> float

(** Geometric mean.  @raise Invalid_argument on an empty list — an empty
    geomean has no value, and silently answering 0 hid bugs. *)
val geomean : float list -> float
