(* Per-pass instrumentation registry: wall time, rounds and IR-size deltas
   for every phase the driver runs. *)

type record = {
  name : string;
  wall_s : float;
  rounds : int;
  instrs_before : int;
  instrs_after : int;
  blocks_before : int;
  blocks_after : int;
  bytes_before : int;
  bytes_after : int;
  cache : (string * int * int) list;
}

type t = { mutable rev : record list }

let create () = { rev = [] }
let reset t = t.rev <- []

let add t ~name ~wall_s ~rounds ~instrs:(instrs_before, instrs_after)
    ~blocks:(blocks_before, blocks_after) ~bytes:(bytes_before, bytes_after)
    ?(cache = []) () =
  t.rev <-
    {
      name;
      wall_s;
      rounds;
      instrs_before;
      instrs_after;
      blocks_before;
      blocks_after;
      bytes_before;
      bytes_after;
      cache;
    }
    :: t.rev

let records t = List.rev t.rev
let total_wall_s t = List.fold_left (fun a r -> a +. r.wall_s) 0. t.rev

let record_to_json r =
  Json.Obj
    ([
      ("name", Json.Str r.name);
      ("wall_s", Json.Float r.wall_s);
      ("rounds", Json.Int r.rounds);
      ("instrs_before", Json.Int r.instrs_before);
      ("instrs_after", Json.Int r.instrs_after);
      ("blocks_before", Json.Int r.blocks_before);
      ("blocks_after", Json.Int r.blocks_after);
      ("bytes_before", Json.Int r.bytes_before);
      ("bytes_after", Json.Int r.bytes_after);
    ]
    @
    match r.cache with
    | [] -> []
    | rows ->
        [
          ( "cache",
            Json.Obj
              (List.map
                 (fun (analysis, hits, misses) ->
                   ( analysis,
                     Json.Obj
                       [ ("hits", Json.Int hits); ("misses", Json.Int misses) ]
                   ))
                 rows) );
        ])

let to_json t =
  Json.Obj
    [
      ("total_wall_s", Json.Float (total_wall_s t));
      ("passes", Json.List (List.map record_to_json (records t)));
    ]
