(* Hand-rolled JSON: a small tree type, an RFC 8259 emitter and a
   recursive-descent parser.  No dependencies beyond the stdlib. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- emission ------------------------------------------------------------ *)

let escape_to buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* Shortest decimal representation that round-trips; non-finite floats have
   no JSON spelling and become null. *)
let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then None
  else
    let s = Printf.sprintf "%.15g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    (* "1e17" and "1" are both valid JSON numbers; nothing to patch up *)
    Some s

let rec emit buf ~pretty ~depth j =
  let indent d =
    if pretty then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * d) ' ')
    end
  in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> (
      match float_repr f with
      | Some s -> Buffer.add_string buf s
      | None -> Buffer.add_string buf "null")
  | Str s ->
      Buffer.add_char buf '"';
      escape_to buf s;
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun k x ->
          if k > 0 then Buffer.add_char buf ',';
          indent (depth + 1);
          emit buf ~pretty ~depth:(depth + 1) x)
        xs;
      indent depth;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun k (key, v) ->
          if k > 0 then Buffer.add_char buf ',';
          indent (depth + 1);
          Buffer.add_char buf '"';
          escape_to buf key;
          Buffer.add_string buf (if pretty then "\": " else "\":");
          emit buf ~pretty ~depth:(depth + 1) v)
        kvs;
      indent depth;
      Buffer.add_char buf '}'

let to_buffer buf j = emit buf ~pretty:false ~depth:0 j

let to_string ?(pretty = false) j =
  let buf = Buffer.create 1024 in
  emit buf ~pretty ~depth:0 j;
  Buffer.contents buf

let to_file file j =
  Out_channel.with_open_text file (fun oc ->
      output_string oc (to_string ~pretty:true j);
      output_char oc '\n')

(* --- parsing ------------------------------------------------------------- *)

exception Fail of string * int

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  (* encode a Unicode code point as UTF-8 *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance ()
          | Some '/' -> Buffer.add_char buf '/'; advance ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance ()
          | Some 't' -> Buffer.add_char buf '\t'; advance ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance ()
          | Some 'u' ->
              advance ();
              let cp = hex4 () in
              let cp =
                (* combine a surrogate pair when one follows *)
                if cp >= 0xd800 && cp <= 0xdbff
                   && !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo >= 0xdc00 && lo <= 0xdfff then
                    0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00)
                  else fail "invalid low surrogate"
                end
                else cp
              in
              add_utf8 buf cp
          | _ -> fail "bad escape");
          go ())
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          (* integer overflow: fall back to float *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec pairs acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                pairs ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (pairs [])
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (msg, p) -> Error (Printf.sprintf "at offset %d: %s" p msg)

(* --- accessors ----------------------------------------------------------- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None
