(* Bounded ring-buffer event trace with an exact per-kind counter registry.
   See the .mli for the event taxonomy. *)

type kind =
  | L1i_miss
  | L1d_miss
  | L2_miss
  | Dtlb_walk
  | Wild_load
  | Br_mispredict
  | Rse_spill
  | Rse_fill
  | Spec_load
  | Chk_recovery
  | Nat_deferral

let all_kinds =
  [
    L1i_miss; L1d_miss; L2_miss; Dtlb_walk; Wild_load; Br_mispredict;
    Rse_spill; Rse_fill; Spec_load; Chk_recovery; Nat_deferral;
  ]

let kind_index = function
  | L1i_miss -> 0
  | L1d_miss -> 1
  | L2_miss -> 2
  | Dtlb_walk -> 3
  | Wild_load -> 4
  | Br_mispredict -> 5
  | Rse_spill -> 6
  | Rse_fill -> 7
  | Spec_load -> 8
  | Chk_recovery -> 9
  | Nat_deferral -> 10

let n_kinds = List.length all_kinds

let kind_name = function
  | L1i_miss -> "l1i-miss"
  | L1d_miss -> "l1d-miss"
  | L2_miss -> "l2-miss"
  | Dtlb_walk -> "dtlb-walk"
  | Wild_load -> "wild-load"
  | Br_mispredict -> "br-mispredict"
  | Rse_spill -> "rse-spill"
  | Rse_fill -> "rse-fill"
  | Spec_load -> "spec-load"
  | Chk_recovery -> "chk-recovery"
  | Nat_deferral -> "nat-deferral"

type event = { cycle : int; kind : kind; func : string; addr : int64 }

let dummy = { cycle = 0; kind = L1i_miss; func = ""; addr = 0L }

type t = {
  buf : event array;
  mutable next : int; (* write cursor *)
  mutable total : int; (* events ever recorded *)
  counts : int array; (* exact per-kind tallies *)
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { buf = Array.make capacity dummy; next = 0; total = 0; counts = Array.make n_kinds 0 }

let capacity t = Array.length t.buf

let record t ~cycle ~kind ~func ~addr =
  t.counts.(kind_index kind) <- t.counts.(kind_index kind) + 1;
  t.buf.(t.next) <- { cycle; kind; func; addr };
  t.next <- (t.next + 1) mod Array.length t.buf;
  t.total <- t.total + 1

let total t = t.total
let dropped t = max 0 (t.total - Array.length t.buf)
let count t kind = t.counts.(kind_index kind)

let distinct_kinds t =
  Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 t.counts

let events t =
  let cap = Array.length t.buf in
  let retained = min t.total cap in
  let first = (t.next - retained + cap) mod cap in
  List.init retained (fun k -> t.buf.((first + k) mod cap))

let to_json t =
  Json.Obj
    [
      ("total", Json.Int t.total);
      ("dropped", Json.Int (dropped t));
      ("capacity", Json.Int (capacity t));
      ( "counts",
        Json.Obj
          (List.map (fun k -> (kind_name k, Json.Int (count t k))) all_kinds) );
      ( "events",
        Json.List
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("cycle", Json.Int e.cycle);
                   ("kind", Json.Str (kind_name e.kind));
                   ("func", Json.Str e.func);
                   ("addr", Json.Str (Printf.sprintf "0x%Lx" e.addr));
                 ])
             (events t)) );
    ]
