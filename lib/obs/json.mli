(** A hand-rolled JSON tree, emitter and parser — the wire format of the
    observability layer.  Deliberately dependency-free (stdlib only) so
    every layer of the system, down to the simulator, can link against it.

    The emitter produces standards-conforming JSON (RFC 8259): strings are
    escaped, non-finite floats are emitted as [null].  The parser accepts
    everything the emitter produces (and ordinary hand-written JSON),
    which is what the round-trip tests and the CI smoke check rely on. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Serialize; [pretty] (default false) adds newlines and two-space
    indentation. *)
val to_string : ?pretty:bool -> t -> string

val to_buffer : Buffer.t -> t -> unit

(** Write to [file] (pretty-printed, trailing newline). *)
val to_file : string -> t -> unit

(** Parse a complete JSON document; [Error msg] carries a position. *)
val of_string : string -> (t, string) result

(** {2 Accessors} (total: [None] on shape mismatch) *)

val member : string -> t -> t option

(** Accepts [Int] and [Float]. *)
val to_float_opt : t -> float option

val to_int_opt : t -> int option
val to_string_opt : t -> string option
val to_list_opt : t -> t list option
