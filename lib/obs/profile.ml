(* Interval-based PC-sampling profiler (see the .mli for the attribution
   model).  Sample points are the multiples of [period]; a tick covers the
   half-open cycle interval since the previous tick. *)

type t = {
  period : int;
  mutable last : int; (* cycle of the previous tick *)
  mutable samples : int;
  by_func : (string, int) Hashtbl.t;
  by_block : (string * string, int) Hashtbl.t;
}

let create ?(period = 97) () =
  if period <= 0 then invalid_arg "Profile.create: period must be positive";
  { period; last = 0; samples = 0; by_func = Hashtbl.create 32; by_block = Hashtbl.create 64 }

let period t = t.period

let bump tbl key n =
  match Hashtbl.find_opt tbl key with
  | Some c -> Hashtbl.replace tbl key (c + n)
  | None -> Hashtbl.replace tbl key n

let tick t ~cycle ~func ~block =
  if cycle > t.last then begin
    let n = (cycle / t.period) - (t.last / t.period) in
    if n > 0 then begin
      t.samples <- t.samples + n;
      bump t.by_func func n;
      bump t.by_block (func, block) n
    end;
    t.last <- cycle
  end

let samples t = t.samples

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (ka, a) (kb, b) ->
         match compare b a with 0 -> compare ka kb | c -> c)

let by_func t = sorted_bindings t.by_func
let by_block t = sorted_bindings t.by_block

let func_share t f =
  if t.samples = 0 then 0.
  else
    match Hashtbl.find_opt t.by_func f with
    | Some n -> float_of_int n /. float_of_int t.samples
    | None -> 0.

let func_cycles_est t f =
  match Hashtbl.find_opt t.by_func f with
  | Some n -> float_of_int (n * t.period)
  | None -> 0.

type summary = {
  s_period : int;
  s_samples : int;
  s_by_func : (string * int) list;
  s_by_block : ((string * string) * int) list;
}

let summarize t =
  {
    s_period = t.period;
    s_samples = t.samples;
    s_by_func = by_func t;
    s_by_block = by_block t;
  }

let summary_to_json s =
  Json.Obj
    [
      ("period", Json.Int s.s_period);
      ("samples", Json.Int s.s_samples);
      ( "by_func",
        Json.List
          (List.map
             (fun (f, n) ->
               Json.Obj [ ("func", Json.Str f); ("samples", Json.Int n) ])
             s.s_by_func) );
      ( "by_block",
        Json.List
          (List.map
             (fun ((f, b), n) ->
               Json.Obj
                 [
                   ("func", Json.Str f);
                   ("block", Json.Str b);
                   ("samples", Json.Int n);
                 ])
             s.s_by_block) );
    ]

let to_json t = summary_to_json (summarize t)
