(** PC-sampling profiler — the address-sampling mode of Pfmon behind the
    paper's Figure 10.  The simulator notifies the profiler at attribution
    points (end of each issue group, end of each intrinsic); the profiler
    converts the elapsed cycle interval into the sample points it covers
    (one every [period] cycles) and attributes them to the function and
    basic block that was executing.

    Because the simulated clock advances in bursts (stalls, penalties),
    sampling works on intervals rather than a per-cycle callback: a tick at
    cycle [c] attributes every multiple of [period] in [(last, c]] to the
    given location.  Attribution error is bounded by one period per
    control transfer, so sampled shares converge to the exact accounting
    shares as runs get longer — the property the tests check at 5%. *)

type t

(** [create ()] makes a profiler sampling every [period] cycles
    (default 97 — prime, to avoid aliasing with periodic code). *)
val create : ?period:int -> unit -> t

val period : t -> int

(** [tick t ~cycle ~func ~block] attributes the sample points in
    [(last_tick, cycle]] to [func]/[block]. *)
val tick : t -> cycle:int -> func:string -> block:string -> unit

(** Total samples taken. *)
val samples : t -> int

(** Samples per function, descending. *)
val by_func : t -> (string * int) list

(** Samples per (function, block), descending. *)
val by_block : t -> ((string * string) * int) list

(** Fraction of samples landing in [func] (0 if no samples). *)
val func_share : t -> string -> float

(** Estimated cycles spent in [func]: samples × period. *)
val func_cycles_est : t -> string -> float

(** An immutable summary, embeddable in {!Epic_core.Metrics.run}. *)
type summary = {
  s_period : int;
  s_samples : int;
  s_by_func : (string * int) list;  (** descending *)
  s_by_block : ((string * string) * int) list;  (** descending *)
}

val summarize : t -> summary
val summary_to_json : summary -> Json.t
val to_json : t -> Json.t
