(** Per-pass compiler instrumentation: the driver wraps every phase of the
    Figure-4 pipeline and records wall time, fixed-point round counts and
    IR-size deltas here, giving each compilation a machine-readable cost
    breakdown to diff across PRs. *)

type record = {
  name : string;  (** phase name, in execution order *)
  wall_s : float;  (** processor time spent in the phase *)
  rounds : int;  (** fixed-point rounds run (1 for single-shot passes) *)
  instrs_before : int;
  instrs_after : int;
  blocks_before : int;
  blocks_after : int;
  bytes_before : int;
  bytes_after : int;
      (** estimated code bytes (16-byte bundles at the architectural
          3-ops-per-bundle density); exact only after layout *)
  cache : (string * int * int) list;
      (** analysis-cache counters attributable to this phase, as
          [(analysis, hits, misses)] rows; empty when the phase ran outside
          the pass manager or touched no cached analysis *)
}

type t

val create : unit -> t
val reset : t -> unit

val add :
  t ->
  name:string ->
  wall_s:float ->
  rounds:int ->
  instrs:int * int ->
  blocks:int * int ->
  bytes:int * int ->
  ?cache:(string * int * int) list ->
  unit ->
  unit

(** Records in execution order. *)
val records : t -> record list

val total_wall_s : t -> float
val record_to_json : record -> Json.t
val to_json : t -> Json.t
