(** Bounded event tracing — the Pfmon-style event stream behind the
    paper's counter figures.  The simulator records timestamped
    architectural events (cache misses, DTLB walks, mispredict flushes,
    RSE traffic, speculation outcomes) into a fixed-capacity ring buffer;
    when the ring wraps, the oldest events are dropped but every event is
    still tallied in the per-kind counter registry, so counts are exact
    even when the retained window is not.

    Tracing is opt-in: the simulator takes an optional sink and emits
    nothing (and pays nothing) when none is supplied. *)

type kind =
  | L1i_miss  (** instruction fetch missed L1I; [addr] = fetch address *)
  | L1d_miss  (** integer load/store missed L1D; [addr] = data address *)
  | L2_miss  (** access missed unified L2; [addr] = address *)
  | Dtlb_walk  (** DTLB miss serviced by a VHPT walk; [addr] = data address *)
  | Wild_load
      (** speculative load to an unmapped page: failed walk charged to the
          kernel (Section 4.3); [addr] = wild address *)
  | Br_mispredict  (** branch misprediction flush; [addr] = static branch id *)
  | Rse_spill  (** register stack engine spilled frames on call *)
  | Rse_fill  (** register stack engine refilled frames on return *)
  | Spec_load  (** a control- or data-speculative load issued; [addr] = address *)
  | Chk_recovery
      (** a chk.s/chk.a detected deferral or ALAT miss and ran recovery;
          [addr] = reload address *)
  | Nat_deferral
      (** a speculative access deferred (NaT page or sentinel early
          deferral); [addr] = faulting address *)

val all_kinds : kind list
val kind_index : kind -> int
val kind_name : kind -> string

type event = { cycle : int; kind : kind; func : string; addr : int64 }

type t

(** [create ()] makes an enabled trace sink; [capacity] (default 65536)
    bounds the retained event window. *)
val create : ?capacity:int -> unit -> t

val capacity : t -> int

val record : t -> cycle:int -> kind:kind -> func:string -> addr:int64 -> unit

(** Retained events, oldest first (at most [capacity]). *)
val events : t -> event list

(** Total events ever recorded (including dropped ones). *)
val total : t -> int

(** Events dropped because the ring wrapped. *)
val dropped : t -> int

(** Exact per-kind event count (the central counter registry). *)
val count : t -> kind -> int

(** Number of distinct kinds with a nonzero count. *)
val distinct_kinds : t -> int

(** Serialize: counter registry, drop statistics and the retained event
    window.  Addresses are emitted as ["0x..."] strings. *)
val to_json : t -> Json.t
