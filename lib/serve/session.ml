(* The session layer: bounded content-addressed caches over the stateless
   Driver core, one lock + in-flight table for exactly-once builds under
   domain parallelism.  See the .mli for the contract. *)

module Config = Epic_core.Config
module Driver = Epic_core.Driver
module Metrics = Epic_core.Metrics
module Experiments = Epic_core.Experiments
module Pool = Epic_core.Pool

(* ---- content hashing --------------------------------------------------- *)

(* FNV-1a 64-bit, the same digest Machine_desc uses: tiny, dependency-free,
   and stable across processes (unlike Hashtbl.hash, which is documented to
   vary between OCaml versions). *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a64 (s : string) =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  Printf.sprintf "%016Lx" !h

let int64s_key (a : int64 array) =
  let buf = Buffer.create (8 * Array.length a) in
  Array.iter
    (fun v ->
      Buffer.add_string buf (Int64.to_string v);
      Buffer.add_char buf ';')
    a;
  fnv1a64 (Buffer.contents buf)

(* Canonical serialization of a full configuration.  Every field of
   Config.t and of the four ILP params records is destructured by name, so
   adding a field without extending the key is a compile error (warning 9
   is fatal in the dev profile) — the same discipline as
   Machine_desc.digest.  Floats are rendered with %h (hex, exact). *)
let config_key (c : Config.t) =
  let {
    Config.level;
    spec_model;
    pointer_analysis;
    inline_budget;
    superblock;
    hyperblock;
    peel;
    unroll;
    enable_peel;
    enable_unroll;
    enable_hyperblock;
    enable_superblock;
    enable_height_reduction;
    enable_data_speculation;
  } =
    c
  in
  let buf = Buffer.create 160 in
  let str s =
    Buffer.add_string buf s;
    Buffer.add_char buf ';'
  in
  let int i = str (string_of_int i) in
  let fl f = str (Printf.sprintf "%h" f) in
  let bool b = int (if b then 1 else 0) in
  str (Config.level_name level);
  (match spec_model with
  | Epic_ilp.Speculate.General -> str "general"
  | Epic_ilp.Speculate.Sentinel -> str "sentinel");
  bool pointer_analysis;
  fl inline_budget;
  (let { Epic_ilp.Superblock.min_edge_prob; min_block_weight; growth_budget; max_trace_len } =
     superblock
   in
   fl min_edge_prob;
   fl min_block_weight;
   fl growth_budget;
   int max_trace_len);
  (let { Epic_ilp.Hyperblock.max_path_instrs; min_path_ratio; max_height_diff; max_block_predicates } =
     hyperblock
   in
   int max_path_instrs;
   fl min_path_ratio;
   int max_height_diff;
   int max_block_predicates);
  (let { Epic_ilp.Peel.max_avg_trips; min_avg_trips; max_body_instrs; growth_budget; mark_remainder_cold } =
     peel
   in
   fl max_avg_trips;
   fl min_avg_trips;
   int max_body_instrs;
   fl growth_budget;
   bool mark_remainder_cold);
  (let { Epic_ilp.Unroll.factor; min_avg_trips; max_body_instrs } = unroll in
   int factor;
   fl min_avg_trips;
   int max_body_instrs);
  bool enable_peel;
  bool enable_unroll;
  bool enable_hyperblock;
  bool enable_superblock;
  bool enable_height_reduction;
  bool enable_data_speculation;
  Buffer.contents buf

(* Canonical serialization of a virtual-speedup experiment (list): the
   target's kind-tagged name plus the factor in %h (hex, exact), so a fused
   experiment set is content-addressable exactly like a config. *)
let experiment_key (e : Epic_sim.Accounting.experiment) =
  let open Epic_sim.Accounting in
  let tgt =
    match e.target with
    | Target_func f -> "f:" ^ f
    | Target_category c -> "c:" ^ string_of_int (index c)
    | Target_func_category (f, c) -> Printf.sprintf "fc:%s:%d" f (index c)
  in
  Printf.sprintf "%s@%h" tgt e.speedup

let experiments_key = function
  | [] -> ""
  | es -> ";ex=" ^ String.concat "," (List.map experiment_key es)

let resolve_desc = function
  | Some d -> d
  | None -> Epic_mach.Itanium.desc ()

let compile_key ~config ~desc ~train source =
  let d = resolve_desc desc in
  fnv1a64
    (Printf.sprintf "src=%s;cfg=%s;train=%s;desc=%s" (fnv1a64 source)
       (config_key config) (int64s_key train)
       (Epic_mach.Machine_desc.digest d))

(* ---- the session ------------------------------------------------------- *)

type outcome = {
  o_code : int;
  o_output : string;
  o_metrics : Metrics.run;
}

type t = {
  pool_jobs : int;
  mu : Mutex.t;
  cond : Condition.t;
  compile_cache : (string, Driver.compiled) Lru.t;
  run_cache : (string, outcome) Lru.t;
  ref_cache : (string, int * string) Lru.t;
  ckpt_cache : (string, Epic_sim.Machine.checkpoint option) Lru.t;
  fused_cache : (string, Driver.fused) Lru.t;
  inflight : (string, unit) Hashtbl.t;
      (* keys under construction, prefixed by kind ("c:", "r:", "f:",
         "k:", "x:") so the five caches share one table and one condition
         variable *)
  mutable s_compile_hits : int;
  mutable s_compile_misses : int;
  mutable s_run_hits : int;
  mutable s_run_misses : int;
  mutable s_run_uncached : int;
  mutable s_fused_hits : int;
  mutable s_fused_misses : int;
  mutable s_ref_hits : int;
  mutable s_ref_misses : int;
  mutable s_ckpt_hits : int;
  mutable s_ckpt_misses : int;
  mutable s_inflight_waits : int;
}

let create ?(jobs = 1) ?(compile_capacity = 64) ?(run_capacity = 256)
    ?(ckpt_capacity = 16) () =
  if jobs < 1 then invalid_arg "Session.create: jobs must be >= 1";
  {
    pool_jobs = jobs;
    mu = Mutex.create ();
    cond = Condition.create ();
    compile_cache = Lru.create ~capacity:compile_capacity;
    run_cache = Lru.create ~capacity:run_capacity;
    ref_cache = Lru.create ~capacity:run_capacity;
    ckpt_cache = Lru.create ~capacity:ckpt_capacity;
    fused_cache = Lru.create ~capacity:run_capacity;
    inflight = Hashtbl.create 16;
    s_compile_hits = 0;
    s_compile_misses = 0;
    s_run_hits = 0;
    s_run_misses = 0;
    s_run_uncached = 0;
    s_fused_hits = 0;
    s_fused_misses = 0;
    s_ref_hits = 0;
    s_ref_misses = 0;
    s_ckpt_hits = 0;
    s_ckpt_misses = 0;
    s_inflight_waits = 0;
  }

let jobs t = t.pool_jobs
let map t f arr = Pool.map ~jobs:t.pool_jobs f arr

(* Exactly-once construction: the first domain to miss marks the key
   in-flight and builds outside the lock; later domains for the same key
   wait on the condition variable and read the finished entry.  A waiter
   re-checks the cache on every wake-up — if the entry was evicted between
   insert and wake-up (tiny cache under pressure) it simply becomes the
   next builder, which is correct, just cold. *)
let cached_or_build t cache ~kind ~on_hit ~on_miss key build =
  let ikey = kind ^ key in
  Mutex.lock t.mu;
  let waited = ref false in
  let rec obtain () =
    match Lru.find cache key with
    | Some v ->
        on_hit ();
        Mutex.unlock t.mu;
        (v, true)
    | None ->
        if Hashtbl.mem t.inflight ikey then begin
          if not !waited then begin
            waited := true;
            t.s_inflight_waits <- t.s_inflight_waits + 1
          end;
          Condition.wait t.cond t.mu;
          obtain ()
        end
        else begin
          Hashtbl.add t.inflight ikey ();
          on_miss ();
          Mutex.unlock t.mu;
          let v =
            try build ()
            with e ->
              Mutex.lock t.mu;
              Hashtbl.remove t.inflight ikey;
              Condition.broadcast t.cond;
              Mutex.unlock t.mu;
              raise e
          in
          Mutex.lock t.mu;
          Hashtbl.remove t.inflight ikey;
          ignore (Lru.add cache key v);
          Condition.broadcast t.cond;
          Mutex.unlock t.mu;
          (v, false)
        end
  in
  obtain ()

let compile t ~config ~desc ~train source =
  let d = resolve_desc desc in
  let key = compile_key ~config ~desc:(Some d) ~train source in
  let compiled, hit =
    cached_or_build t t.compile_cache ~kind:"c:"
      ~on_hit:(fun () -> t.s_compile_hits <- t.s_compile_hits + 1)
      ~on_miss:(fun () -> t.s_compile_misses <- t.s_compile_misses + 1)
      key
      (fun () -> Driver.compile ~config ~desc:d ~train source)
  in
  (compiled, key, hit)

let compile_fn t : Driver.compile_fn =
 fun ~config ~desc ~train source ->
  let compiled, _, _ = compile t ~config ~desc ~train source in
  compiled

let reference t ~source ~input =
  let key = fnv1a64 ("src=" ^ fnv1a64 source ^ ";in=" ^ int64s_key input) in
  cached_or_build t t.ref_cache ~kind:"f:"
    ~on_hit:(fun () -> t.s_ref_hits <- t.s_ref_hits + 1)
    ~on_miss:(fun () -> t.s_ref_misses <- t.s_ref_misses + 1)
    key
    (fun () ->
      let p = Epic_frontend.Lower.compile_source source in
      let code, out, _ = Epic_ir.Interp.run p input in
      (code, out))

let simulate ?trace ?experiment ?sampling ~sample_period ~workload
    ~reference:(ref_code, ref_out) compiled ~input () =
  let profile =
    if sample_period > 0 then
      Some (Epic_obs.Profile.create ~period:sample_period ())
    else None
  in
  let code, out, st =
    Driver.run ?trace ?profile ?experiment ?sampling compiled input
  in
  let ok = code = ref_code && out = ref_out in
  let metrics =
    Metrics.of_machine ~workload ?profile compiled st ~output_matches:ok
  in
  { o_code = code; o_output = out; o_metrics = metrics }

let run t ?trace ?experiment ?sampling
    ?(sample_period = Experiments.sample_period) ~workload ~reference ~key
    compiled input =
  match trace with
  | Some _ ->
      (* a cached outcome could not have filled this trace ring — the one
         genuinely uncacheable run shape (the compile cache still applies
         upstream) *)
      Mutex.lock t.mu;
      t.s_run_uncached <- t.s_run_uncached + 1;
      Mutex.unlock t.mu;
      ( simulate ?trace ?experiment ?sampling ~sample_period ~workload
          ~reference compiled ~input (),
        false )
  | None ->
      (* the sampling plan and the experiment are part of the outcome's
         identity (extrapolated cycles differ per plan; an experiment's
         outcome describes a counterfactual accounting) — both fold into
         the key; plain unsampled keys keep the historical form so warm
         caches stay valid *)
      let rkey =
        fnv1a64
          (Printf.sprintf "c=%s;in=%s;sp=%d%s%s" key (int64s_key input)
             sample_period
             (match sampling with
             | None -> ""
             | Some p -> ";sm=" ^ Epic_sim.Sampling.key_fragment p)
             (experiments_key (Option.to_list experiment)))
      in
      let o, hit =
        cached_or_build t t.run_cache ~kind:"r:"
          ~on_hit:(fun () -> t.s_run_hits <- t.s_run_hits + 1)
          ~on_miss:(fun () -> t.s_run_misses <- t.s_run_misses + 1)
          rkey
          (simulate ?experiment ?sampling ~sample_period ~workload ~reference
             compiled ~input)
      in
      (* the key is content-addressed; only the caller's label differs *)
      if hit && o.o_metrics.Metrics.workload <> workload then
        ({ o with o_metrics = { o.o_metrics with Metrics.workload } }, hit)
      else (o, hit)

(* ---- checkpoints ------------------------------------------------------- *)

(* Machine-state checkpoints are session artifacts like compiles: keyed by
   content (compile key + input hash + capture position), built exactly
   once under the in-flight table, bounded by their own LRU.  The cached
   value is an [option]: [None] records that the program retires fewer
   than [at] groups, which is just as deterministic as a captured snapshot
   and saves re-running the prefix to rediscover it. *)
let checkpoint_key ~key ~input ~at =
  fnv1a64 (Printf.sprintf "c=%s;in=%s;at=%d" key (int64s_key input) at)

let checkpoint t ~key ~at compiled input =
  let ckey = checkpoint_key ~key ~input ~at in
  let ck, hit =
    cached_or_build t t.ckpt_cache ~kind:"k:"
      ~on_hit:(fun () -> t.s_ckpt_hits <- t.s_ckpt_hits + 1)
      ~on_miss:(fun () -> t.s_ckpt_misses <- t.s_ckpt_misses + 1)
      ckey
      (fun () ->
        let _, _, st = Driver.run ~checkpoint_at:at compiled input in
        st.Epic_sim.Machine.ck_saved)
  in
  (ck, ckey, hit)

(* ---- fused multi-experiment runs --------------------------------------- *)

(* A fused run (one detailed simulation carrying a whole experiment set,
   DESIGN.md §14) is content-addressed like any outcome: compile key +
   input + the canonical experiment-set serialization + the prefix
   position.  Prefix reuse is peek-don't-build: a checkpoint already in
   the cache is resumed under the experiment set
   (Accounting.resume_set/apply_experiment_to_past, within an ulp of
   straight-through); an absent one is captured as a side effect of the
   full run and seeded into the checkpoint cache for the next matrix —
   never built eagerly, so a cold fused matrix costs exactly one full
   simulation per workload. *)
let run_fused t ~key compiled ~experiments ~prefix_at input =
  let fkey =
    fnv1a64
      (Printf.sprintf "c=%s;in=%s%s;px=%s" key (int64s_key input)
         (experiments_key experiments)
         (match prefix_at with None -> "-" | Some at -> string_of_int at))
  in
  cached_or_build t t.fused_cache ~kind:"x:"
    ~on_hit:(fun () -> t.s_fused_hits <- t.s_fused_hits + 1)
    ~on_miss:(fun () -> t.s_fused_misses <- t.s_fused_misses + 1)
    fkey
    (fun () ->
      let full ?checkpoint_at () =
        let code, output, st =
          Driver.run ?checkpoint_at ~experiments compiled input
        in
        (Driver.fused_of_machine code output st ~resumed:false, st)
      in
      match prefix_at with
      | None -> fst (full ())
      | Some at ->
          let ckey = checkpoint_key ~key ~input ~at in
          let peek =
            Mutex.lock t.mu;
            let v = Lru.find t.ckpt_cache ckey in
            Mutex.unlock t.mu;
            v
          in
          (match peek with
          | Some (Some ck) ->
              (* warm prefix: replay only the suffix, experiments applied
                 to the checkpointed past *)
              let code, output, st =
                Driver.resume ~experiments compiled ck
              in
              Driver.fused_of_machine code output st ~resumed:true
          | Some None ->
              (* known too short for the prefix: plain full run *)
              fst (full ())
          | None ->
              (* cold: capture the prefix as a side effect (checkpoint
                 capture never perturbs accounting) and seed the cache *)
              let f, st = full ~checkpoint_at:at () in
              Mutex.lock t.mu;
              if not (Hashtbl.mem t.inflight ("k:" ^ ckey)) then
                ignore (Lru.add t.ckpt_cache ckey st.Epic_sim.Machine.ck_saved);
              Mutex.unlock t.mu;
              f))

let fused_fn t : Driver.fused_fn =
 fun ~config ~desc ~train ~input ~experiments ~prefix_at source ->
  let compiled, key, _ = compile t ~config ~desc ~train source in
  fst (run_fused t ~key compiled ~experiments ~prefix_at input)

type served = {
  s_outcome : outcome;
  s_key : string;
  s_compile_hit : bool;
  s_run_hit : bool;
}

let compile_and_run t ?trace ?experiment ?sampling ?sample_period ~workload
    ~config ~desc ~train ~input source =
  let compiled, key, compile_hit = compile t ~config ~desc ~train source in
  let reference, _ = reference t ~source ~input in
  let outcome, run_hit =
    run t ?trace ?experiment ?sampling ?sample_period ~workload ~reference
      ~key compiled input
  in
  { s_outcome = outcome; s_key = key; s_compile_hit = compile_hit; s_run_hit = run_hit }

(* ---- experiment matrices ---------------------------------------------- *)

let suite t ?workloads ?progress () =
  Experiments.run_suite ?workloads ?progress ~jobs:t.pool_jobs
    ~compile:(compile_fn t) ()

let sweep t ?variants ?ablations ?sampling ?fuse ?big_inputs ?progress
    ~workloads () =
  Epic_sweep.Sweep.run ?variants ?ablations ~compile:(compile_fn t) ?sampling
    ?fuse ?big_inputs ?progress ~jobs:t.pool_jobs ~workloads ()

let causal t ?targets ?factors ?top_funcs ?split_funcs ?serial ?big_inputs
    ?progress ~workloads () =
  Epic_causal.Causal.run ?targets ?factors ?top_funcs ?split_funcs
    ~compile:(compile_fn t) ~fused:(fused_fn t) ?serial ?big_inputs ?progress
    ~jobs:t.pool_jobs ~workloads ()

let causal_check t ?progress report =
  Epic_causal.Causal.check_against_sweep ?progress ~compile:(compile_fn t)
    ~jobs:t.pool_jobs report

(* ---- accounting -------------------------------------------------------- *)

type stats = {
  st_compile_hits : int;
  st_compile_misses : int;
  st_compile_evictions : int;
  st_compile_entries : int;
  st_run_hits : int;
  st_run_misses : int;
  st_run_evictions : int;
  st_run_entries : int;
  st_run_uncached : int;
  st_fused_hits : int;
  st_fused_misses : int;
  st_fused_entries : int;
  st_ref_hits : int;
  st_ref_misses : int;
  st_ckpt_hits : int;
  st_ckpt_misses : int;
  st_ckpt_entries : int;
  st_inflight_waits : int;
}

let stats t =
  Mutex.lock t.mu;
  let s =
    {
      st_compile_hits = t.s_compile_hits;
      st_compile_misses = t.s_compile_misses;
      st_compile_evictions = Lru.evictions t.compile_cache;
      st_compile_entries = Lru.length t.compile_cache;
      st_run_hits = t.s_run_hits;
      st_run_misses = t.s_run_misses;
      st_run_evictions = Lru.evictions t.run_cache;
      st_run_entries = Lru.length t.run_cache;
      st_run_uncached = t.s_run_uncached;
      st_fused_hits = t.s_fused_hits;
      st_fused_misses = t.s_fused_misses;
      st_fused_entries = Lru.length t.fused_cache;
      st_ref_hits = t.s_ref_hits;
      st_ref_misses = t.s_ref_misses;
      st_ckpt_hits = t.s_ckpt_hits;
      st_ckpt_misses = t.s_ckpt_misses;
      st_ckpt_entries = Lru.length t.ckpt_cache;
      st_inflight_waits = t.s_inflight_waits;
    }
  in
  Mutex.unlock t.mu;
  s

let stats_to_json t =
  let s = stats t in
  Epic_obs.Json.Obj
    [
      ("jobs", Epic_obs.Json.Int t.pool_jobs);
      ( "compile",
        Epic_obs.Json.Obj
          [
            ("hits", Epic_obs.Json.Int s.st_compile_hits);
            ("misses", Epic_obs.Json.Int s.st_compile_misses);
            ("evictions", Epic_obs.Json.Int s.st_compile_evictions);
            ("entries", Epic_obs.Json.Int s.st_compile_entries);
            ("capacity", Epic_obs.Json.Int (Lru.capacity t.compile_cache));
          ] );
      ( "run",
        Epic_obs.Json.Obj
          [
            ("hits", Epic_obs.Json.Int s.st_run_hits);
            ("misses", Epic_obs.Json.Int s.st_run_misses);
            ("evictions", Epic_obs.Json.Int s.st_run_evictions);
            ("entries", Epic_obs.Json.Int s.st_run_entries);
            ("uncached", Epic_obs.Json.Int s.st_run_uncached);
            ("capacity", Epic_obs.Json.Int (Lru.capacity t.run_cache));
          ] );
      ( "fused",
        Epic_obs.Json.Obj
          [
            ("hits", Epic_obs.Json.Int s.st_fused_hits);
            ("misses", Epic_obs.Json.Int s.st_fused_misses);
            ("entries", Epic_obs.Json.Int s.st_fused_entries);
            ("capacity", Epic_obs.Json.Int (Lru.capacity t.fused_cache));
          ] );
      ( "reference",
        Epic_obs.Json.Obj
          [
            ("hits", Epic_obs.Json.Int s.st_ref_hits);
            ("misses", Epic_obs.Json.Int s.st_ref_misses);
          ] );
      ( "checkpoint",
        Epic_obs.Json.Obj
          [
            ("hits", Epic_obs.Json.Int s.st_ckpt_hits);
            ("misses", Epic_obs.Json.Int s.st_ckpt_misses);
            ("entries", Epic_obs.Json.Int s.st_ckpt_entries);
            ("capacity", Epic_obs.Json.Int (Lru.capacity t.ckpt_cache));
          ] );
      ("inflight_waits", Epic_obs.Json.Int s.st_inflight_waits);
    ]
