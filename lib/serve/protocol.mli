(** The epicd wire protocol: newline-delimited {!Epic_obs.Json} documents
    over a Unix-domain socket, one request and one response per line.

    A request is an object with an optional [id] (echoed verbatim in the
    response), an [op] string, and per-op fields:

    - [ping] — liveness probe;
    - [stats] — the session's cache counters ({!Session.stats_to_json});
    - [shutdown] — reply, then the daemon exits;
    - [compile] — [source] (mini-C text, required), [level] (gcc | o-ns |
      ilp-ns | ilp-cs, default ilp-cs), [sentinel] and [pointer_analysis]
      (bools), [train] (int list, default []);
    - [run] — the [compile] fields plus [input] (int list, default []),
      [train] defaulting to [input], [workload] (label, default
      "program"), [sample_period] (default the suite's
      {!Epic_core.Experiments.sample_period}), [sampling] (an
      interval-sampling spec for {!Epic_sim.Sampling.parse_spec} —
      ["I:D[:W]"], [""] for the default plan; absent = full detailed
      simulation) and [normalize_time] (bool: pass the result through
      {!Epic_core.Export.normalize_time});
    - [suite] — [workloads] (name list, default the whole suite),
      [normalize_time];
    - [sweep] — [workloads] (required), optional [variants] / [ablations]
      (name lists), [fuse] (bool, default true: charge-suppression
      variants ride the baseline simulation), [big_inputs] (bool, default
      false: scaled evaluation inputs), [normalize_time];
    - [causal] — [workloads] (required), optional [targets] (names for
      {!Epic_causal.Causal.parse_target}), [factors], [top_funcs],
      [split_funcs], [serial] (bool, default false: one simulation per
      cell instead of the fused grid), [big_inputs], [normalize_time].

    A response echoes [{"id", "ok", "op"}] and carries [result] on
    success ([error] on failure); [compile] and [run] responses add
    [cached] (did the decisive cache hit — the compile cache for
    [compile], the run cache for [run]), plus the content-addressed [key]
    and, for [run], [compile_cached].  A [run] result is exactly the
    {!Epic_core.Export.run_to_json} document the batch [epicc --json]
    writes, so a served response diffs byte-for-byte against the CLI
    after [normalize_time]. *)

type request

(** Parse one request line.  Never raises: a malformed line parses as a
    request whose execution reports the error (with [id] echoed when one
    could be recovered). *)
val parse : string -> request

(** Matrix ops ([suite], [sweep], [causal]) — they parallelize internally
    over the session pool, so the daemon runs them serially rather than
    fanning them into a batch. *)
val is_heavy : request -> bool

val is_shutdown : request -> bool

(** Execute against the session; returns the compact one-line response
    (no trailing newline).  Catches exceptions into error responses. *)
val execute : Session.t -> request -> string
