(* The epicd wire protocol (see the .mli for the schema).  Parsing is
   total: bad input becomes a [Bad] op that executes to an error
   response, so one malformed line can never take the daemon down. *)

module Json = Epic_obs.Json
module Config = Epic_core.Config
module Export = Epic_core.Export

type op =
  | Ping
  | Stats
  | Shutdown
  | Compile of { source : string; config : Config.t; train : int64 array }
  | Run of {
      source : string;
      workload : string;
      config : Config.t;
      train : int64 array option;  (* None: default to the run input *)
      input : int64 array;
      sample_period : int;
      sampling : Epic_sim.Sampling.plan option;
      normalize : bool;
    }
  | Suite of { workloads : string list option; normalize : bool }
  | Sweep of {
      workloads : string list;
      variants : string list option;
      ablations : string list option;
      fuse : bool;
      big_inputs : bool;
      normalize : bool;
    }
  | Causal of {
      workloads : string list;
      targets : string list option;
      factors : float list option;
      top_funcs : int option;
      split_funcs : int option;
      serial : bool;
      big_inputs : bool;
      normalize : bool;
    }
  | Bad of string

type request = { req_id : Json.t; req_op : string; op : op }

(* ---- field accessors --------------------------------------------------- *)

exception Field of string

let field name j = Json.member name j

let str_opt name j =
  match field name j with
  | None | Some Json.Null -> None
  | Some v -> (
      match Json.to_string_opt v with
      | Some s -> Some s
      | None -> raise (Field (name ^ " must be a string")))

let str ~default name j = Option.value ~default (str_opt name j)

let bool ~default name j =
  match field name j with
  | None | Some Json.Null -> default
  | Some (Json.Bool b) -> b
  | Some _ -> raise (Field (name ^ " must be a bool"))

let int_opt name j =
  match field name j with
  | None | Some Json.Null -> None
  | Some v -> (
      match Json.to_int_opt v with
      | Some i -> Some i
      | None -> raise (Field (name ^ " must be an int")))

let int64s_opt name j =
  match field name j with
  | None | Some Json.Null -> None
  | Some (Json.List l) ->
      Some
        (Array.of_list
           (List.map
              (fun v ->
                match Json.to_int_opt v with
                | Some i -> Int64.of_int i
                | None -> raise (Field (name ^ " must be a list of ints")))
              l))
  | Some _ -> raise (Field (name ^ " must be a list of ints"))

let strs_opt name j =
  match field name j with
  | None | Some Json.Null -> None
  | Some (Json.List l) ->
      Some
        (List.map
           (fun v ->
             match Json.to_string_opt v with
             | Some s -> s
             | None -> raise (Field (name ^ " must be a list of strings")))
           l)
  | Some _ -> raise (Field (name ^ " must be a list of strings"))

let floats_opt name j =
  match field name j with
  | None | Some Json.Null -> None
  | Some (Json.List l) ->
      Some
        (List.map
           (fun v ->
             match Json.to_float_opt v with
             | Some f -> f
             | None -> raise (Field (name ^ " must be a list of numbers")))
           l)
  | Some _ -> raise (Field (name ^ " must be a list of numbers"))

let level_of_string s =
  match String.lowercase_ascii s with
  | "gcc" -> Config.Gcc_like
  | "o-ns" | "ons" -> Config.O_NS
  | "ilp-ns" | "ilpns" -> Config.ILP_NS
  | "ilp-cs" | "ilpcs" -> Config.ILP_CS
  | _ -> raise (Field ("unknown level " ^ s ^ " (gcc, o-ns, ilp-ns, ilp-cs)"))

(* Same knobs as the epicc command line. *)
let config_of j =
  let level = level_of_string (str ~default:"ilp-cs" "level" j) in
  {
    (Config.make level) with
    Config.spec_model =
      (if bool ~default:false "sentinel" j then Epic_ilp.Speculate.Sentinel
       else Epic_ilp.Speculate.General);
    Config.pointer_analysis = bool ~default:true "pointer_analysis" j;
  }

let source_of j =
  match str_opt "source" j with
  | Some s -> s
  | None -> raise (Field "source is required")

let normalize_of j = bool ~default:false "normalize_time" j

(* "sampling": an interval-sampling spec string ("I:D[:W]", "" = default
   plan) or absent/null for a full detailed run. *)
let sampling_of j =
  match str_opt "sampling" j with
  | None -> None
  | Some s -> (
      try Some (Epic_sim.Sampling.parse_spec s)
      with Invalid_argument msg -> raise (Field msg))

(* ---- parse ------------------------------------------------------------- *)

let parse line =
  match Json.of_string line with
  | Error msg -> { req_id = Json.Null; req_op = "?"; op = Bad ("bad JSON: " ^ msg) }
  | Ok j -> (
      let req_id = Option.value ~default:Json.Null (field "id" j) in
      match str_opt "op" j with
      | None -> { req_id; req_op = "?"; op = Bad "missing op" }
      | Some name -> (
          let op =
            try
              match name with
              | "ping" -> Ping
              | "stats" -> Stats
              | "shutdown" -> Shutdown
              | "compile" ->
                  Compile
                    {
                      source = source_of j;
                      config = config_of j;
                      train =
                        Option.value ~default:[||] (int64s_opt "train" j);
                    }
              | "run" ->
                  Run
                    {
                      source = source_of j;
                      workload = str ~default:"program" "workload" j;
                      config = config_of j;
                      train = int64s_opt "train" j;
                      input =
                        Option.value ~default:[||] (int64s_opt "input" j);
                      sample_period =
                        Option.value
                          ~default:Epic_core.Experiments.sample_period
                          (int_opt "sample_period" j);
                      sampling = sampling_of j;
                      normalize = normalize_of j;
                    }
              | "suite" ->
                  Suite
                    { workloads = strs_opt "workloads" j; normalize = normalize_of j }
              | "sweep" -> (
                  match strs_opt "workloads" j with
                  | None -> raise (Field "workloads is required")
                  | Some workloads ->
                      Sweep
                        {
                          workloads;
                          variants = strs_opt "variants" j;
                          ablations = strs_opt "ablations" j;
                          fuse = bool ~default:true "fuse" j;
                          big_inputs = bool ~default:false "big_inputs" j;
                          normalize = normalize_of j;
                        })
              | "causal" -> (
                  match strs_opt "workloads" j with
                  | None -> raise (Field "workloads is required")
                  | Some workloads ->
                      Causal
                        {
                          workloads;
                          targets = strs_opt "targets" j;
                          factors = floats_opt "factors" j;
                          top_funcs = int_opt "top_funcs" j;
                          split_funcs = int_opt "split_funcs" j;
                          serial = bool ~default:false "serial" j;
                          big_inputs = bool ~default:false "big_inputs" j;
                          normalize = normalize_of j;
                        })
              | other -> Bad ("unknown op " ^ other)
            with Field msg -> Bad msg
          in
          { req_id; req_op = name; op }))

let is_heavy r =
  match r.op with Suite _ | Sweep _ | Causal _ -> true | _ -> false

let is_shutdown r = match r.op with Shutdown -> true | _ -> false

(* ---- execute ----------------------------------------------------------- *)

let envelope r ?(extra = []) body =
  Json.to_string
    (Json.Obj
       ([ ("id", r.req_id); ("ok", Json.Bool true); ("op", Json.Str r.req_op) ]
       @ extra @ body))

let error_envelope r msg =
  Json.to_string
    (Json.Obj
       [
         ("id", r.req_id);
         ("ok", Json.Bool false);
         ("op", Json.Str r.req_op);
         ("error", Json.Str msg);
       ])

let maybe_normalize normalize doc =
  if normalize then Export.normalize_time doc else doc

let variants_of names =
  List.map
    (fun n ->
      match Epic_sweep.Sweep.find_variant n with
      | Some v -> v
      | None -> raise (Field ("unknown variant " ^ n)))
    names

let ablations_of names =
  List.map
    (fun n ->
      match Epic_sweep.Sweep.find_ablation n with
      | Some a -> a
      | None -> raise (Field ("unknown ablation " ^ n)))
    names

let workload_list names =
  List.map
    (fun n ->
      match Epic_workloads.Suite.find n with
      | Some w -> w
      | None -> raise (Field ("unknown workload " ^ n)))
    names

let execute session r =
  try
    match r.op with
    | Bad msg -> error_envelope r msg
    | Ping -> envelope r [ ("result", Json.Str "pong") ]
    | Stats -> envelope r [ ("result", Session.stats_to_json session) ]
    | Shutdown -> envelope r [ ("result", Json.Str "bye") ]
    | Compile { source; config; train } ->
        let compiled, key, hit =
          Session.compile session ~config ~desc:None ~train source
        in
        envelope r
          ~extra:[ ("cached", Json.Bool hit); ("key", Json.Str key) ]
          [
            ( "result",
              Json.Obj
                [
                  ("config", Export.config_to_json config);
                  ( "desc_digest",
                    Json.Str
                      (Epic_mach.Machine_desc.digest
                         compiled.Epic_core.Driver.desc) );
                  ( "transform_stats",
                    Export.transform_stats_to_json
                      compiled.Epic_core.Driver.transform_stats );
                ] );
          ]
    | Run
        {
          source;
          workload;
          config;
          train;
          input;
          sample_period;
          sampling;
          normalize;
        } ->
        let train = Option.value ~default:input train in
        let served =
          Session.compile_and_run session ?sampling ~sample_period ~workload
            ~config ~desc:None ~train ~input source
        in
        let doc =
          maybe_normalize normalize
            (Export.run_to_json served.Session.s_outcome.Session.o_metrics)
        in
        envelope r
          ~extra:
            [
              ("cached", Json.Bool served.Session.s_run_hit);
              ("compile_cached", Json.Bool served.Session.s_compile_hit);
              ("key", Json.Str served.Session.s_key);
              ("exit_code", Json.Int served.Session.s_outcome.Session.o_code);
              ( "output",
                Json.Str served.Session.s_outcome.Session.o_output );
            ]
          [ ("result", doc) ]
    | Suite { workloads; normalize } ->
        let workloads = Option.map workload_list workloads in
        let s = Session.suite session ?workloads () in
        envelope r
          [ ("result", maybe_normalize normalize (Export.suite_to_json s)) ]
    | Sweep { workloads; variants; ablations; fuse; big_inputs; normalize } ->
        let variants = Option.map variants_of variants in
        let ablations = Option.map ablations_of ablations in
        let report =
          Session.sweep session ?variants ?ablations ~fuse ~big_inputs
            ~workloads ()
        in
        envelope r
          [
            ( "result",
              maybe_normalize normalize (Epic_sweep.Sweep.to_json report) );
          ]
    | Causal
        {
          workloads;
          targets;
          factors;
          top_funcs;
          split_funcs;
          serial;
          big_inputs;
          normalize;
        } ->
        let targets =
          Option.map (List.map Epic_causal.Causal.parse_target) targets
        in
        let report =
          Session.causal session ?targets ?factors ?top_funcs ?split_funcs
            ~serial ~big_inputs ~workloads ()
        in
        envelope r
          [
            ( "result",
              maybe_normalize normalize (Epic_causal.Causal.to_json report) );
          ]
  with
  | Field msg -> error_envelope r msg
  | e -> error_envelope r (Printexc.to_string e)
