(** A bounded least-recently-used map: hash table plus intrusive doubly
    linked recency list, both O(1) per operation.  The building block of
    {!Session}'s artifact caches.

    Not thread-safe on its own — {!Session} serializes access under its
    lock.  [find] counts as a use (moves the entry to the
    most-recently-used end); [mem] does not. *)

type ('k, 'v) t

(** [create ~capacity] is an empty cache holding at most [capacity]
    entries.  @raise Invalid_argument if [capacity < 1]. *)
val create : capacity:int -> ('k, 'v) t

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

(** Entries evicted by {!add} since {!create}. *)
val evictions : ('k, 'v) t -> int

(** Look up and touch: the entry becomes most recently used. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** Pure membership test; recency unchanged. *)
val mem : ('k, 'v) t -> 'k -> bool

(** Insert (or replace) at the most-recently-used end.  When the insert
    pushes the cache past capacity the least-recently-used entry is
    evicted and returned. *)
val add : ('k, 'v) t -> 'k -> 'v -> ('k * 'v) option

(** Keys from most to least recently used (test/debug aid; O(n)). *)
val keys_mru_first : ('k, 'v) t -> 'k list
