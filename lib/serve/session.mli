(** A compile/simulate session: the stateful, reusable layer over the
    stateless {!Epic_core.Driver} core.

    A session owns the parallelism width of its {!Epic_core.Pool} and two
    bounded content-addressed artifact caches ({!Lru}):

    - the {e compile cache}, keyed by (source hash, full
      {!Epic_core.Config} serialization, train-input hash,
      {!Epic_mach.Machine_desc.digest}) — a [Driver.compiled] is
      deterministic in exactly those four ingredients, and compiling from
      source resets the domain-local instruction-id counter, so a cached
      program is safe to re-simulate on any domain;
    - the {e run cache}, keyed by (compile key, run-input hash, sample
      period, sampling plan, experiment), holding finished simulation
      outcomes;
    - the {e fused cache}, keyed by (compile key, run-input hash,
      experiment set, prefix position), holding finished fused
      multi-experiment results ({!Epic_core.Driver.fused}).

    All caches are protected by one lock and an in-flight table with a
    condition variable, so concurrent requests for the same key — e.g. a
    burst of identical epicd requests fanned over the pool — compile
    exactly once: the first requester builds, the rest block and read the
    cached value.  All entry points are domain-safe.

    Everything the binaries do routes through here: [epicc] and [epicd]
    via {!compile_and_run}, the suite / sensitivity-sweep / causal
    matrices via {!suite} / {!sweep} / {!causal}, which thread
    {!compile_fn} — the session's cache as an
    {!Epic_core.Driver.compile_fn} — into the experiment layers. *)

type t

(** [create ()] makes a fresh session.  [jobs] (default 1) is the domain
    pool width used by {!map}, {!suite}, {!sweep} and {!causal};
    [compile_capacity] (default 64), [run_capacity] (default 256) and
    [ckpt_capacity] (default 16) bound the caches.
    @raise Invalid_argument if a capacity or [jobs] is < 1. *)
val create :
  ?jobs:int ->
  ?compile_capacity:int ->
  ?run_capacity:int ->
  ?ckpt_capacity:int ->
  unit ->
  t

val jobs : t -> int

(** Shard [f] over the session's domain pool ({!Epic_core.Pool.map} at the
    session's width). *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array

(** {2 Keys} *)

(** The content-addressed compile key (16 hex digits, FNV-1a over the
    canonical serialization of all four ingredients).  [desc = None] is
    resolved to the calling domain's current machine description first, so
    an explicit [Some itanium2] and the default share cache entries. *)
val compile_key :
  config:Epic_core.Config.t ->
  desc:Epic_mach.Machine_desc.t option ->
  train:int64 array ->
  string ->
  string

(** {2 Entry points} *)

(** Compile through the cache.  Returns the program, its key, and whether
    this was a cache hit. *)
val compile :
  t ->
  config:Epic_core.Config.t ->
  desc:Epic_mach.Machine_desc.t option ->
  train:int64 array ->
  string ->
  Epic_core.Driver.compiled * string * bool

(** The session's cache as a {!Epic_core.Driver.compile_fn} — what
    {!suite}, {!sweep} and {!causal} thread into the experiment layers,
    and what callers with their own harness can pass explicitly. *)
val compile_fn : t -> Epic_core.Driver.compile_fn

(** A finished simulation: exit code, program output, metrics.  Cached
    outcomes carry no [host] section (host timings describe the run that
    populated the cache, not the request), so a cache hit is
    byte-identical to the cold outcome even before
    {!Epic_core.Export.normalize_time}. *)
type outcome = {
  o_code : int;
  o_output : string;
  o_metrics : Epic_core.Metrics.run;
}

(** Reference interpretation of [source] on [input] (lower once,
    interpret), cached by (source, input).  Returns (exit code, output)
    and whether it hit. *)
val reference : t -> source:string -> input:int64 array -> (int * string) * bool

(** Simulate a cached-or-fresh compile through the run cache.
    [sample_period] (default {!Epic_core.Experiments.sample_period})
    controls the PC profiler; [0] disables sampling.  [reference] is the
    interpreter's (code, output) for the mismatch check.  On a hit only
    the workload label is patched ([workload] names the request, the key
    is content-addressed).  A request carrying [trace] bypasses the run
    cache entirely (a hit could not replay the trace) — the only
    uncacheable run shape; it still reuses the compile cache.
    [experiment] and [sampling] instead join the run-cache key (the
    experiment via its canonical target/factor serialization, the plan
    via {!Epic_sim.Sampling.key_fragment}) because their outcomes are
    deterministic in it — plain unsampled requests keep the historical
    key form.  Returns the outcome and whether it hit. *)
val run :
  t ->
  ?trace:Epic_obs.Trace.t ->
  ?experiment:Epic_sim.Accounting.experiment ->
  ?sampling:Epic_sim.Sampling.plan ->
  ?sample_period:int ->
  workload:string ->
  reference:int * string ->
  key:string ->
  Epic_core.Driver.compiled ->
  int64 array ->
  outcome * bool

(** {2 Checkpoints}

    Machine-state checkpoints are session artifacts keyed like compiles:
    content-addressed by (compile key, input hash, capture position),
    built exactly once under the in-flight table, bounded by their own
    LRU. *)

(** The content-addressed checkpoint key. *)
val checkpoint_key : key:string -> input:int64 array -> at:int -> string

(** [checkpoint t ~key ~at compiled input] runs [compiled] on [input]
    with one-shot capture armed at [at] retired groups (through the
    cache) and returns the snapshot, its key, and whether it hit.
    [None] means the program retires fewer than [at] groups — also a
    cacheable fact.  Resume the snapshot with
    {!Epic_core.Driver.resume}. *)
val checkpoint :
  t ->
  key:string ->
  at:int ->
  Epic_core.Driver.compiled ->
  int64 array ->
  Epic_sim.Machine.checkpoint option * string * bool

(** {2 Fused multi-experiment runs}

    One detailed simulation carrying a whole virtual-speedup experiment
    set (DESIGN.md §14), content-addressed in its own LRU. *)

(** [run_fused t ~key compiled ~experiments ~prefix_at input] delivers a
    {!Epic_core.Driver.fused} result through the fused cache.
    [prefix_at = Some g] enables checkpoint-prefix reuse,
    peek-don't-build: a checkpoint for (key, input, g) already in the
    session's checkpoint cache is resumed under the experiment set
    (totals within an ulp of straight-through, [f_resumed = true]); a
    missing one is captured as a free side effect of the full run and
    seeded for the next matrix.  Returns the result and whether it
    hit. *)
val run_fused :
  t ->
  key:string ->
  Epic_core.Driver.compiled ->
  experiments:Epic_sim.Accounting.experiment list ->
  prefix_at:int option ->
  int64 array ->
  Epic_core.Driver.fused * bool

(** The session's fused path as a {!Epic_core.Driver.fused_fn} — what
    {!causal} threads into the causal planner. *)
val fused_fn : t -> Epic_core.Driver.fused_fn

(** What one [epicc]/[epicd] request resolves to. *)
type served = {
  s_outcome : outcome;
  s_key : string;  (** the compile key *)
  s_compile_hit : bool;
  s_run_hit : bool;
}

(** The whole request path: compile (cached), reference (cached), run
    (cached).  Labels, defaults and profile period match what [epicc]
    historically produced, so served documents diff cleanly against batch
    ones. *)
val compile_and_run :
  t ->
  ?trace:Epic_obs.Trace.t ->
  ?experiment:Epic_sim.Accounting.experiment ->
  ?sampling:Epic_sim.Sampling.plan ->
  ?sample_period:int ->
  workload:string ->
  config:Epic_core.Config.t ->
  desc:Epic_mach.Machine_desc.t option ->
  train:int64 array ->
  input:int64 array ->
  string ->
  served

(** {2 Experiment matrices through the session cache}

    Thin wrappers over the experiment layers with [~compile:(compile_fn t)]
    and [~jobs:(jobs t)] applied — so one session reuses compiles across a
    suite, a sweep and a causal matrix (the sweep baseline and the suite's
    ILP-CS column, for instance, share cache entries). *)

val suite :
  t ->
  ?workloads:Epic_workloads.Workload.t list ->
  ?progress:bool ->
  unit ->
  Epic_core.Experiments.suite_result

val sweep :
  t ->
  ?variants:Epic_sweep.Sweep.variant list ->
  ?ablations:Epic_sweep.Sweep.ablation list ->
  ?sampling:Epic_sim.Sampling.plan ->
  ?fuse:bool ->
  ?big_inputs:bool ->
  ?progress:bool ->
  workloads:string list ->
  unit ->
  Epic_sweep.Sweep.report

(** The causal matrix additionally threads [~fused:(fused_fn t)], so the
    per-workload fused grids memoize and reuse checkpoint prefixes across
    repeated matrices. *)
val causal :
  t ->
  ?targets:Epic_causal.Causal.target list ->
  ?factors:float list ->
  ?top_funcs:int ->
  ?split_funcs:int ->
  ?serial:bool ->
  ?big_inputs:bool ->
  ?progress:bool ->
  workloads:string list ->
  unit ->
  Epic_causal.Causal.report

val causal_check :
  t ->
  ?progress:bool ->
  Epic_causal.Causal.report ->
  Epic_causal.Causal.check_row list

(** {2 Accounting} *)

type stats = {
  st_compile_hits : int;
  st_compile_misses : int;
  st_compile_evictions : int;
  st_compile_entries : int;
  st_run_hits : int;
  st_run_misses : int;
  st_run_evictions : int;
  st_run_entries : int;
  st_run_uncached : int;  (** trace runs that bypassed the cache *)
  st_fused_hits : int;
  st_fused_misses : int;
  st_fused_entries : int;
  st_ref_hits : int;
  st_ref_misses : int;
  st_ckpt_hits : int;
  st_ckpt_misses : int;
  st_ckpt_entries : int;
  st_inflight_waits : int;
      (** requests that blocked on another domain building the same key *)
}

val stats : t -> stats

(** The [session] JSON block ([epicc --json], epicd [stats]):
    the {!stats} counters plus the cache capacities and jobs width.
    {!Epic_core.Export.normalize_time} drops [session] sections whole —
    traffic history, not results. *)
val stats_to_json : t -> Epic_obs.Json.t
