(* Classic LRU: Hashtbl from key to list node, nodes linked in recency
   order.  [head] is most recently used, [tail] least. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  cap : int;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  mutable evicted : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  {
    cap = capacity;
    tbl = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    evicted = 0;
  }

let capacity t = t.cap
let length t = Hashtbl.length t.tbl
let evictions t = t.evicted
let mem t k = Hashtbl.mem t.tbl k

(* Detach a node from the recency list (it stays in the table). *)
let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some n ->
      unlink t n;
      push_front t n;
      Some n.value

let add t k v =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
      n.value <- v;
      unlink t n;
      push_front t n;
      None
  | None ->
      let n = { key = k; value = v; prev = None; next = None } in
      Hashtbl.replace t.tbl k n;
      push_front t n;
      if Hashtbl.length t.tbl <= t.cap then None
      else
        (* over capacity by exactly one: drop the LRU tail *)
        let victim =
          match t.tail with Some v -> v | None -> assert false
        in
        unlink t victim;
        Hashtbl.remove t.tbl victim.key;
        t.evicted <- t.evicted + 1;
        Some (victim.key, victim.value)

let keys_mru_first t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some n -> walk (n.key :: acc) n.next
  in
  walk [] t.head
