(** The classical optimization pipeline (Figure 4's "classical
    optimization"): iterated local cleanups, control-flow simplification
    and loop-invariant code motion, run to a bounded fixed point; verifies
    the program on exit. *)

(** One round of every classical pass; true if anything changed. *)
val classical_pass : Epic_ir.Program.t -> bool

val run_classical : ?max_rounds:int -> Epic_ir.Program.t -> unit

(** Same as {!run_classical} but returns the number of fixed-point rounds
    actually executed (feeding the per-pass instrumentation). *)
val run_classical_counted : ?max_rounds:int -> Epic_ir.Program.t -> int
