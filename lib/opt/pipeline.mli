(** The classical optimization pipeline (Figure 4's "classical
    optimization"): iterated local cleanups, control-flow simplification
    and loop-invariant code motion, run to a bounded fixed point; verifies
    the program on exit.  Expressed as {!Passman} passes so the fixed point
    only revisits functions some pass has dirtied. *)

(** One round of every classical pass over the whole program, cache-free —
    the reference oracle the pass-manager fixed point is tested against;
    true if anything changed. *)
val classical_pass : Epic_ir.Program.t -> bool

(** The cleanup passes of the fixed point, in canonical order (as
    registered by {!register_classical}). *)
val cleanup_passes : string list

(** Register the six cleanup passes plus ["licm"] (with their preservation
    contracts) on a manager. *)
val register_classical : Passman.t -> unit

(** The classical fixed point over the manager's dirty-function worklist,
    instrumented as phase [name]; returns the round count. *)
val run_classical_pm : ?max_rounds:int -> Passman.t -> name:string -> int

val run_classical : ?max_rounds:int -> Epic_ir.Program.t -> unit

(** Same as {!run_classical} but returns the number of fixed-point rounds
    actually executed (feeding the per-pass instrumentation). *)
val run_classical_counted : ?max_rounds:int -> Epic_ir.Program.t -> int
