(* The pass manager: every transform of the Figure-4 pipeline is a
   registered pass declaring the analyses it requires and preserves.  The
   manager owns the per-function analysis cache (Epic_analysis.Cache), a
   dirty-function set driving the classical fixed point's worklist, and the
   per-phase instrumentation (wall time, rounds, IR deltas, cache hit/miss
   counters) flowing into Epic_obs.Passes. *)

open Epic_ir
module Cache = Epic_analysis.Cache

type changes =
  | Unchanged
  | Changed of string list (* names of the functions mutated *)
  | Changed_all

type func_pass = {
  fp_name : string;
  fp_requires : Cache.kind list;
  fp_preserves : Cache.kind list;
  fp_run : Cache.t -> Func.t -> bool;
}

type prog_pass = {
  pp_name : string;
  pp_requires : Cache.kind list;
  pp_preserves : Cache.kind list;
  pp_run : Cache.t -> Program.t -> changes;
}

type pass = Func_pass of func_pass | Prog_pass of prog_pass

let pass_name = function
  | Func_pass p -> p.fp_name
  | Prog_pass p -> p.pp_name

let func_pass ?(requires = []) ?(preserves = []) name run =
  Func_pass
    { fp_name = name; fp_requires = requires; fp_preserves = preserves; fp_run = run }

let prog_pass ?(requires = []) ?(preserves = []) name run =
  Prog_pass
    { pp_name = name; pp_requires = requires; pp_preserves = preserves; pp_run = run }

type t = {
  program : Program.t;
  cache : Cache.t;
  obs : Epic_obs.Passes.t;
  registry : (string, pass) Hashtbl.t;
  order : string list ref; (* registration order, for introspection *)
  dirty : (string, unit) Hashtbl.t;
}

let create ?obs program =
  let obs = match obs with Some o -> o | None -> Epic_obs.Passes.create () in
  let t =
    {
      program;
      cache = Cache.create ();
      obs;
      registry = Hashtbl.create 32;
      order = ref [];
      dirty = Hashtbl.create 16;
    }
  in
  (* everything starts dirty: nothing has reached a fixed point yet *)
  List.iter
    (fun (f : Func.t) -> Hashtbl.replace t.dirty f.Func.name ())
    program.Program.funcs;
  t

let cache t = t.cache
let obs t = t.obs
let program t = t.program

let register t pass =
  let name = pass_name pass in
  if Hashtbl.mem t.registry name then
    invalid_arg ("Passman.register: duplicate pass " ^ name);
  Hashtbl.replace t.registry name pass;
  t.order := name :: !(t.order)

let find t name =
  match Hashtbl.find_opt t.registry name with
  | Some p -> p
  | None -> invalid_arg ("Passman.find: unregistered pass " ^ name)

let registered t = List.rev !(t.order)

(* --- dirty-function tracking -------------------------------------------- *)

let mark_dirty t fname = Hashtbl.replace t.dirty fname ()

let mark_all_dirty t =
  List.iter
    (fun (f : Func.t) -> Hashtbl.replace t.dirty f.Func.name ())
    t.program.Program.funcs

let mark_clean t fname = Hashtbl.remove t.dirty fname

let is_dirty t fname = Hashtbl.mem t.dirty fname

(* Dirty functions, in program (definition) order for determinism. *)
let dirty_funcs t =
  List.filter
    (fun (f : Func.t) -> Hashtbl.mem t.dirty f.Func.name)
    t.program.Program.funcs

(* Record a pass's reported mutations: drop the non-preserved analysis
   entries of every changed function and put it on the dirty worklist. *)
let note_changes t ~preserves = function
  | Unchanged -> ()
  | Changed names ->
      List.iter
        (fun n ->
          Cache.invalidate t.cache ~preserve:preserves n;
          mark_dirty t n)
        names
  | Changed_all ->
      Cache.invalidate_all t.cache ~preserve:preserves ();
      mark_all_dirty t

(* --- instrumentation ----------------------------------------------------- *)

(* IR-size measurement: instruction and block counts, plus estimated code
   bytes (16-byte bundles at the architectural 3-ops-per-bundle density —
   exact only after layout). *)
let ir_measure (p : Program.t) =
  let instrs = Program.instr_count p in
  let blocks =
    List.fold_left
      (fun acc (f : Func.t) -> acc + List.length f.Func.blocks)
      0 p.Program.funcs
  in
  (instrs, blocks, (instrs + 2) / 3 * 16)

(* Run [f] as a named, instrumented phase: wall time, IR deltas, the cache
   hit/miss counters it incurred, and the fixed-point rounds extracted from
   its result by [rounds_of].  The returned [changes] are applied under
   [preserves]. *)
let phase t ~name ?(rounds_of = fun _ -> 1) ?(preserves = []) f =
  let i0, b0, y0 = ir_measure t.program in
  let c0 = Cache.stats t.cache in
  let t0 = Sys.time () in
  let r, changes = f t in
  let dt = Sys.time () -. t0 in
  let i1, b1, y1 = ir_measure t.program in
  note_changes t ~preserves changes;
  Epic_obs.Passes.add t.obs ~name ~wall_s:dt ~rounds:(rounds_of r)
    ~instrs:(i0, i1) ~blocks:(b0, b1) ~bytes:(y0, y1)
    ~cache:(Cache.diff_rows c0 (Cache.stats t.cache))
    ();
  r

(* Run one registered pass over the whole program as an instrumented phase.
   A function pass visits every function and reports per-function
   Changed/Unchanged; the manager invalidates and dirties exactly the
   changed ones. *)
let run_pass t name =
  match find t name with
  | Func_pass fp ->
      phase t ~name:fp.fp_name ~preserves:fp.fp_preserves (fun t ->
          let changed =
            List.filter_map
              (fun (f : Func.t) ->
                if fp.fp_run t.cache f then Some f.Func.name else None)
              t.program.Program.funcs
          in
          match changed with
          | [] -> (Unchanged, Unchanged)
          | l -> (Changed l, Changed l))
  | Prog_pass pp ->
      phase t ~name:pp.pp_name ~preserves:pp.pp_preserves (fun t ->
          let ch = pp.pp_run t.cache t.program in
          (ch, ch))

(* --- the classical fixed point as a dirty-function worklist -------------- *)

(* Run the registered [cleanup] function passes to a per-function fixed
   point — but only over the functions currently on the dirty worklist.  A
   function no pass has touched since it last reached its fixed point is
   skipped entirely: re-running the cleanup passes on it would be the
   identity.  The optional [licm] pass then visits every function (LICM is
   not skippable for clean functions: a second run can hoist chain tails
   whose defining instruction the first run's scan order visited too late),
   followed by up to [post_rounds] more cleanup rounds where it moved code.

   Processing is per-function (each function runs to its own fixed point
   before the next starts); since every cleanup pass is intra-procedural
   this reaches exactly the same IR as the classic whole-program rounds.  A
   function whose round budget ran out while it was still changing stays on
   the dirty worklist for the next fixed point to finish.

   Returns the instrumented round count: max cleanup rounds over the dirty
   functions plus max post-LICM rounds over the functions LICM changed —
   the same count the classic whole-program iteration reports. *)
let fixed_point t ~name ?(max_rounds = 8) ?(post_rounds = 3) ~cleanup ?licm ()
    =
  let as_func_pass n =
    match find t n with
    | Func_pass fp -> fp
    | Prog_pass _ -> invalid_arg ("Passman.fixed_point: not a function pass: " ^ n)
  in
  let cleanup_passes = List.map as_func_pass cleanup in
  let licm_pass = Option.map as_func_pass licm in
  let run_one (fp : func_pass) (f : Func.t) =
    let changed = fp.fp_run t.cache f in
    if changed then
      Cache.invalidate t.cache ~preserve:fp.fp_preserves f.Func.name;
    changed
  in
  let cleanup_round f =
    List.fold_left (fun acc fp -> run_one fp f || acc) false cleanup_passes
  in
  (* Iterate cleanup rounds on [f]; counts rounds into [rounds].  Returns
     true when [f] stabilized (a round ran without changes), false when the
     budget ran out first. *)
  let rec go f rounds budget =
    if budget = 0 then false
    else if cleanup_round f then begin
      incr rounds;
      go f rounds (budget - 1)
    end
    else true
  in
  phase t ~name ~rounds_of:(fun r -> r) (fun t ->
      let max_a = ref 0 and max_b = ref 0 in
      (* phase A: cleanup fixed point over the dirty worklist only *)
      List.iter
        (fun (f : Func.t) ->
          let rounds = ref 0 in
          let stable = go f rounds max_rounds in
          if stable then mark_clean t f.Func.name;
          if !rounds > !max_a then max_a := !rounds)
        (dirty_funcs t);
      (* phase B: LICM over every function, then — exactly as the classic
         pipeline gated its post-LICM rounds on "did LICM move anything
         anywhere" — cleanup over whatever is dirty: the functions LICM
         changed plus any whose phase-A budget ran out *)
      (match licm_pass with
      | Some lp ->
          let moved_any = ref false in
          List.iter
            (fun (f : Func.t) ->
              if run_one lp f then begin
                moved_any := true;
                mark_dirty t f.Func.name
              end)
            t.program.Program.funcs;
          if !moved_any then
            List.iter
              (fun (f : Func.t) ->
                let rounds = ref 0 in
                let stable = go f rounds post_rounds in
                if stable then mark_clean t f.Func.name;
                if !rounds > !max_b then max_b := !rounds)
              (dirty_funcs t)
      | None -> ());
      (!max_a + !max_b, Unchanged))
