(* Global dead-code elimination driven by liveness: an instruction with no
   side effects whose definitions are all dead after it is removed.  Iterates
   to a fixed point (removals expose more dead code). *)

open Epic_ir
open Epic_analysis

let has_side_effect (i : Instr.t) =
  match i.Instr.op with
  | Opcode.St _ | Opcode.Br | Opcode.Br_call | Opcode.Br_ret | Opcode.Chk _
  | Opcode.Chka _
  | Opcode.Alloc ->
      true
  | Opcode.Div | Opcode.Rem ->
      (* may fault; keep unless proven safe — conservative *)
      true
  | Opcode.Ld (_, Opcode.Nonspec) -> true (* may fault *)
  | Opcode.Ld (_, (Opcode.Spec_general | Opcode.Spec_sentinel)) ->
      false (* speculative loads never fault and are removable when dead *)
  | _ -> false

(* DCE never removes branches, stores or calls (all side-effecting), so the
   CFG, the loop nest and the memory-dependence summary survive each round —
   only liveness must be refetched after a removal. *)
let dce_preserves =
  Cache.[ Dominance; Loops; Memdep; Callgraph; Points_to ]

let run_func ?cache (f : Func.t) =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  let changed = ref false in
  let rec pass () =
    let live = Cache.liveness cache f in
    let pass_changed = ref false in
    List.iter
      (fun (b : Block.t) ->
        let per = Liveness.per_instr live f b in
        (* [per] has live-before each instr; we need live-after: pair instr k
           with live-before of instr k+1 (or block live-out for the last). *)
        let live_afters =
          match per with
          | [] -> []
          | _ :: tl -> tl @ [ Liveness.live_out live b.Block.label ]
        in
        let keep =
          List.map2
            (fun (i : Instr.t) after ->
              if has_side_effect i then true
              else if i.Instr.dsts = [] then
                (* no side effect and defines nothing: dead (e.g. nop) *)
                i.Instr.op = Opcode.Nop
              else
                List.exists
                  (fun (d : Reg.t) ->
                    Reg.Set.mem d after || Reg.equal d Reg.sp)
                  i.Instr.dsts)
            b.Block.instrs live_afters
        in
        let before = List.length b.Block.instrs in
        b.Block.instrs <-
          List.filteri (fun k _ -> List.nth keep k) b.Block.instrs;
        if List.length b.Block.instrs <> before then pass_changed := true)
      f.Func.blocks;
    if !pass_changed then begin
      changed := true;
      Cache.invalidate cache ~preserve:dce_preserves f.Func.name;
      pass ()
    end
  in
  pass ();
  !changed

let run ?cache (p : Program.t) =
  List.fold_left (fun acc f -> run_func ?cache f || acc) false p.Program.funcs
