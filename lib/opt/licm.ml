(* Loop-invariant code motion.  For every natural loop, a preheader is
   created and loop-invariant computations are hoisted into it.  Pure ALU
   operations are hoisted from any block that executes on every iteration;
   loads are hoisted only when they also execute on loop entry (the header,
   ahead of its exit branch) and no store or call in the loop may alias
   them — the classically-safe subset (speculative hoisting belongs to the
   ILP phases). *)

open Epic_ir
open Epic_analysis

(* Ensure [header] has a preheader; returns it.  All entry edges from
   outside the loop are redirected to the preheader. *)
let get_preheader (f : Func.t) (l : Natural_loops.loop) =
  let header = Func.find_block_exn f l.Natural_loops.header in
  (* make fall-through edges into the header explicit *)
  List.iter
    (fun (b : Block.t) ->
      if not (Block.ends_in_unconditional b) then
        match Func.fallthrough f b with
        | Some n when n == header ->
            Block.append b (Instr.create Opcode.Br ~srcs:[ Operand.Label header.Block.label ])
        | _ -> ())
    f.Func.blocks;
  let ph_label = Func.fresh_label f (l.Natural_loops.header ^ "_ph") in
  let ph = Block.create ph_label in
  (* weight: entries = header weight minus latch weights; approximate *)
  ph.Block.weight <- 0.;
  (* redirect non-loop branches to the header *)
  List.iter
    (fun (b : Block.t) ->
      if not (Natural_loops.in_loop l b.Block.label) then
        List.iter
          (fun (i : Instr.t) ->
            match Instr.branch_target i with
            | Some t when t = l.Natural_loops.header ->
                i.Instr.srcs <- [ Operand.Label ph_label ]
            | _ -> ())
          b.Block.instrs)
    f.Func.blocks;
  (* insert the preheader immediately before the header in layout *)
  let rec insert = function
    | [] -> [ ph ]
    | x :: tl when x == header -> ph :: x :: tl
    | x :: tl -> x :: insert tl
  in
  f.Func.blocks <- insert f.Func.blocks;
  ph

let is_pure (i : Instr.t) =
  match i.Instr.op with
  | Opcode.Add | Opcode.Sub | Opcode.Mul | Opcode.And | Opcode.Or
  | Opcode.Xor | Opcode.Shl | Opcode.Shr | Opcode.Sra | Opcode.Mov
  | Opcode.Lea | Opcode.Sxt _ | Opcode.Fadd | Opcode.Fsub | Opcode.Fmul
  | Opcode.Fneg | Opcode.Cvt_fi | Opcode.Cvt_if ->
      true
  | _ -> false

let run_loop (cache : Cache.t) (f : Func.t) (dom : Dominance.t)
    (l : Natural_loops.loop) =
  let changed = ref false in
  let loop_blocks =
    List.filter_map (Func.find_block f) l.Natural_loops.body
  in
  (* registers defined anywhere in the loop *)
  let defs_in_loop = Reg.Tbl.create 32 in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          List.iter (fun d -> Reg.Tbl.replace defs_in_loop d (1 + (Option.value ~default:0 (Reg.Tbl.find_opt defs_in_loop d)))) i.Instr.dsts)
        b.Block.instrs)
    loop_blocks;
  let md = Cache.memdep cache f in
  let stores_and_calls =
    List.concat_map
      (fun (b : Block.t) ->
        Option.value ~default:[] (Hashtbl.find_opt md b.Block.label))
      loop_blocks
  in
  let live = Cache.liveness cache f in
  let header_live_in = Liveness.live_in live l.Natural_loops.header in
  let exit_live =
    List.fold_left
      (fun acc e -> Reg.Set.union acc (Liveness.live_in live e))
      Reg.Set.empty
      (Natural_loops.exits f l)
  in
  (* blocks executing on every iteration: dominate every latch *)
  let every_iter label =
    List.for_all (fun latch -> Dominance.dominates dom label latch) l.Natural_loops.back_edges
  in
  let hoisted = ref [] in
  let invariant_operand (o : Operand.t) =
    match o with
    | Operand.Reg r ->
        (not (Reg.Tbl.mem defs_in_loop r))
        || List.exists (fun (h : Instr.t) -> List.exists (Reg.equal r) h.Instr.dsts) !hoisted
    | _ -> true
  in
  List.iter
    (fun (b : Block.t) ->
      if Natural_loops.in_loop l b.Block.label && every_iter b.Block.label then begin
        let before_branch = ref true in
        let keep =
          List.filter
            (fun (i : Instr.t) ->
              if Instr.is_branch i then before_branch := false;
              let single_def d =
                Reg.Tbl.find_opt defs_in_loop d = Some 1
              in
              let basic_ok =
                i.Instr.pred = None
                && (match i.Instr.dsts with [ d ] -> single_def d | _ -> false)
                && List.for_all invariant_operand i.Instr.srcs
                && List.for_all
                     (fun d ->
                       (not (Reg.Set.mem d header_live_in))
                       && not (Reg.Set.mem d exit_live))
                     i.Instr.dsts
                && not (List.exists (Reg.equal Reg.sp) i.Instr.dsts)
              in
              let hoistable =
                basic_ok
                &&
                if is_pure i then true
                else
                  match i.Instr.op with
                  | Opcode.Ld (_, Opcode.Nonspec) ->
                      (* loads: must execute on loop entry, and no aliasing
                         store/call inside the loop *)
                      b.Block.label = l.Natural_loops.header && !before_branch
                      && not
                           (List.exists
                              (fun s ->
                                if Instr.is_call s then true
                                else Memdep.may_alias i s)
                              stores_and_calls)
                  | _ -> false
              in
              if hoistable then begin
                hoisted := i :: !hoisted;
                changed := true;
                false
              end
              else true)
            b.Block.instrs
        in
        b.Block.instrs <- keep
      end)
    loop_blocks;
  (match !hoisted with
  | [] -> ()
  | hs ->
      let ph = get_preheader f l in
      ph.Block.instrs <- List.rev hs);
  !changed

(* The loop nest and dominator tree are computed once up front and kept
   through the whole scan even as hoisting rewrites the function — the
   classic by-design staleness of LICM.  They are fetched into locals so the
   cache itself can be invalidated after each mutating loop: per-loop
   liveness (and the memory-dependence summary) must see the hoisted IR. *)
let run_func ?cache (f : Func.t) =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  let loops = Cache.loops cache f in
  let dom = Cache.dominance cache f in
  List.fold_left
    (fun acc l ->
      let moved = run_loop cache f dom l in
      if moved then
        Cache.invalidate cache ~preserve:Cache.[ Callgraph; Points_to ]
          f.Func.name;
      moved || acc)
    false
    (Natural_loops.innermost_first loops)

let run ?cache (p : Program.t) =
  List.fold_left (fun acc f -> run_func ?cache f || acc) false p.Program.funcs
