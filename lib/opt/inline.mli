(** Profile-guided procedure inlining (Section 3.1): call sites expanded in
    priority order, priority = exec_weight / sqrt(callee_size), until the
    touched code has grown by [budget] (the paper's empirically determined
    1.6).  Recursive and mutually-recursive calls are skipped. *)

(** Returns the number of call sites inlined.  The callgraph guarding
    against (mutual) recursion is fetched through [cache] when given. *)
val run :
  ?cache:Epic_analysis.Cache.t -> ?budget:float -> Epic_ir.Program.t -> int
