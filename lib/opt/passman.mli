(** The pass manager behind the Figure-4 phase sequence.

    Every transform is a registered pass declaring the analyses it
    {e requires} and {e preserves} (see {!Epic_analysis.Cache.kind}).
    Passes report [Changed]/[Unchanged] per function; the manager drops only
    the non-preserved cache entries of the functions that actually changed
    and puts them on a dirty worklist.  The classical-optimization fixed
    point ({!fixed_point}) then runs over the dirty functions only — a
    function untouched since it last stabilized is skipped entirely.

    Each pass execution is instrumented into {!Epic_obs.Passes}: wall time,
    fixed-point rounds, IR-size deltas, and the analysis-cache hit/miss
    counters it incurred. *)

type changes =
  | Unchanged
  | Changed of string list  (** names of the functions the pass mutated *)
  | Changed_all
      (** conservative: interprocedural passes (inlining, indirect-call
          specialization) that rewrite an unknown set of functions *)

type func_pass = {
  fp_name : string;
  fp_requires : Epic_analysis.Cache.kind list;
  fp_preserves : Epic_analysis.Cache.kind list;
  fp_run : Epic_analysis.Cache.t -> Epic_ir.Func.t -> bool;
      (** intra-procedural transform; true iff it mutated the function *)
}

type prog_pass = {
  pp_name : string;
  pp_requires : Epic_analysis.Cache.kind list;
  pp_preserves : Epic_analysis.Cache.kind list;
  pp_run : Epic_analysis.Cache.t -> Epic_ir.Program.t -> changes;
}

type pass = Func_pass of func_pass | Prog_pass of prog_pass

val pass_name : pass -> string

val func_pass :
  ?requires:Epic_analysis.Cache.kind list ->
  ?preserves:Epic_analysis.Cache.kind list ->
  string ->
  (Epic_analysis.Cache.t -> Epic_ir.Func.t -> bool) ->
  pass

val prog_pass :
  ?requires:Epic_analysis.Cache.kind list ->
  ?preserves:Epic_analysis.Cache.kind list ->
  string ->
  (Epic_analysis.Cache.t -> Epic_ir.Program.t -> changes) ->
  pass

type t

(** A manager for one compilation of [program]: fresh analysis cache, all
    functions initially dirty.  [obs] receives the per-phase records (a
    fresh registry when omitted). *)
val create : ?obs:Epic_obs.Passes.t -> Epic_ir.Program.t -> t

val cache : t -> Epic_analysis.Cache.t
val obs : t -> Epic_obs.Passes.t
val program : t -> Epic_ir.Program.t

(** Register a pass by name; raises on duplicates. *)
val register : t -> pass -> unit

val find : t -> string -> pass

(** Registered pass names, in registration order. *)
val registered : t -> string list

(** {1 Dirty-function worklist} *)

val mark_dirty : t -> string -> unit
val mark_all_dirty : t -> unit
val is_dirty : t -> string -> bool

(** Dirty functions in program order. *)
val dirty_funcs : t -> Epic_ir.Func.t list

(** Apply a change report: invalidate the changed functions' non-[preserves]
    cache entries and mark them dirty. *)
val note_changes : t -> preserves:Epic_analysis.Cache.kind list -> changes -> unit

(** {1 Instrumented execution} *)

(** [phase t ~name f] runs [f] as a named instrumented phase (wall time,
    IR deltas, cache counters; [rounds_of] extracts a round count from the
    result) and applies the changes it reports under [preserves]. *)
val phase :
  t ->
  name:string ->
  ?rounds_of:('a -> int) ->
  ?preserves:Epic_analysis.Cache.kind list ->
  (t -> 'a * changes) ->
  'a

(** Run one registered pass over the whole program as an instrumented
    phase; returns what changed.  Function passes visit every function and
    report per-function changes. *)
val run_pass : t -> string -> changes

(** The classical-optimization fixed point as a dirty-function worklist:
    the registered [cleanup] function passes iterate to a per-function
    fixed point over the dirty functions only (clean functions are
    skipped); the optional [licm] pass then visits every function, with up
    to [post_rounds] extra cleanup rounds where it moved code.  Functions
    whose budget ran out while still changing stay dirty.  Returns the
    round count (also recorded as the phase's [rounds]). *)
val fixed_point :
  t ->
  name:string ->
  ?max_rounds:int ->
  ?post_rounds:int ->
  cleanup:string list ->
  ?licm:string ->
  unit ->
  int
