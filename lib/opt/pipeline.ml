(* The classical optimization pipeline ("Classical optimization" in
   Figure 4): iterated local cleanups plus control-flow simplification and
   loop-invariant code motion, run to a (bounded) fixed point. *)

open Epic_ir

let classical_pass (p : Program.t) =
  let c1 = Constfold.run p in
  let c2 = Copyprop.run p in
  let c3 = Strength.run p in
  let c4 = Local_cse.run p in
  let c5 = Dce.run p in
  let c6 = Jumpopt.run p in
  c1 || c2 || c3 || c4 || c5 || c6

(* Run classical optimization to a fixed point (bounded), then LICM, then a
   final cleanup round.  Returns the number of fixed-point rounds actually
   executed (for the per-pass instrumentation). *)
let run_classical_counted ?(max_rounds = 8) (p : Program.t) =
  let rounds = ref 0 in
  let rec go n =
    if n > 0 && classical_pass p then begin
      incr rounds;
      go (n - 1)
    end
  in
  go max_rounds;
  let moved = Licm.run p in
  if moved then go 3;
  Verify.check_program p;
  !rounds

let run_classical ?max_rounds (p : Program.t) =
  ignore (run_classical_counted ?max_rounds p)
