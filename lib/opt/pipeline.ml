(* The classical optimization pipeline ("Classical optimization" in
   Figure 4), expressed as registered pass-manager passes: the six local
   cleanups plus loop-invariant code motion, iterated to a (bounded)
   per-function fixed point over the manager's dirty-function worklist. *)

open Epic_ir
module Cache = Epic_analysis.Cache

(* One round of every classical pass over the whole program, cache-free —
   the reference oracle the pass-manager fixed point is tested against. *)
let classical_pass (p : Program.t) =
  let c1 = Constfold.run p in
  let c2 = Copyprop.run p in
  let c3 = Strength.run p in
  let c4 = Local_cse.run p in
  let c5 = Dce.run p in
  let c6 = Jumpopt.run p in
  c1 || c2 || c3 || c4 || c5 || c6

(* Preservation contracts.  The straight-line rewrites (folding, copy
   propagation, strength reduction) never touch the CFG, stores or calls, so
   the dominator tree, loop nest, memory-dependence summary and callgraph
   all survive; only liveness must be recomputed.  Jump optimization
   rewrites the CFG (and its unreachable-code removal can delete call
   sites), so it invalidates everything but the flow-insensitive points-to
   solution. *)
let straightline_preserves =
  Cache.[ Dominance; Loops; Memdep; Callgraph; Points_to ]

let cse_preserves = Cache.[ Dominance; Loops; Callgraph; Points_to ]

(* The cleanup passes of the fixed point, in their canonical order. *)
let cleanup_passes =
  [ "constfold"; "copyprop"; "strength"; "local-cse"; "dce"; "jumpopt" ]

let register_classical (m : Passman.t) =
  Passman.register m
    (Passman.func_pass "constfold" ~preserves:straightline_preserves
       (fun _ f -> Constfold.run_func f));
  Passman.register m
    (Passman.func_pass "copyprop" ~preserves:straightline_preserves
       (fun _ f -> Copyprop.run_func f));
  Passman.register m
    (Passman.func_pass "strength" ~preserves:straightline_preserves
       (fun _ f -> Strength.run_func f));
  Passman.register m
    (Passman.func_pass "local-cse" ~preserves:cse_preserves (fun _ f ->
         Local_cse.run_func f));
  Passman.register m
    (Passman.func_pass "dce" ~requires:[ Cache.Liveness ]
       ~preserves:Dce.dce_preserves
       (fun c f -> Dce.run_func ~cache:c f));
  Passman.register m
    (Passman.func_pass "jumpopt" ~preserves:[ Cache.Points_to ] (fun _ f ->
         Jumpopt.run_func f));
  Passman.register m
    (Passman.func_pass "licm"
       ~requires:Cache.[ Dominance; Loops; Liveness; Memdep ]
       ~preserves:Cache.[ Callgraph; Points_to ]
       (fun c f -> Licm.run_func ~cache:c f))

(* The classical fixed point on a pass manager: only the functions on the
   dirty worklist are iterated (LICM still sweeps every function).  Returns
   the round count, as the legacy entry point did. *)
let run_classical_pm ?max_rounds (m : Passman.t) ~name =
  let rounds =
    Passman.fixed_point m ~name ?max_rounds ~cleanup:cleanup_passes
      ~licm:"licm" ()
  in
  Verify.check_program (Passman.program m);
  rounds

(* Legacy whole-program entry points, kept for callers without a manager:
   an ephemeral manager with every function initially dirty reduces to the
   classic whole-program iteration. *)
let run_classical_counted ?max_rounds (p : Program.t) =
  let m = Passman.create p in
  register_classical m;
  run_classical_pm ?max_rounds m ~name:"classical"

let run_classical ?max_rounds (p : Program.t) =
  ignore (run_classical_counted ?max_rounds p)
