(* Profile-guided procedure inlining (Section 3.1).  Call sites are expanded
   in priority order, priority = exec_weight / sqrt(callee_size), until the
   touched code has grown by a factor of [budget] (the paper's empirically
   determined 1.6).  Recursive (and mutually recursive) calls are skipped. *)

open Epic_ir
open Epic_analysis

type candidate = {
  caller : string;
  site : Instr.t;
  callee : string;
  priority : float;
  callee_size : int;
}

let copy_func_body (f : Func.t) (callee : Func.t) (site_id : int) =
  (* Fresh labels and fresh virtual registers for the copy. *)
  let label_map = Hashtbl.create 16 in
  List.iter
    (fun (b : Block.t) ->
      Hashtbl.replace label_map b.Block.label
        (Printf.sprintf "inl%d_%s" site_id b.Block.label))
    callee.Func.blocks;
  let reg_map = Reg.Tbl.create 64 in
  let map_reg (r : Reg.t) =
    if r.Reg.phys then r
    else
      match Reg.Tbl.find_opt reg_map r with
      | Some r' -> r'
      | None ->
          let r' = Func.fresh_reg f r.Reg.cls in
          Reg.Tbl.replace reg_map r r';
          r'
  in
  let map_operand (o : Operand.t) =
    match o with
    | Operand.Reg r -> Operand.Reg (map_reg r)
    | Operand.Label l -> Operand.Label (Hashtbl.find label_map l)
    | _ -> o
  in
  let blocks =
    List.map
      (fun (b : Block.t) ->
        let nb = Block.create ~kind:b.Block.kind (Hashtbl.find label_map b.Block.label) in
        nb.Block.weight <- b.Block.weight;
        nb.Block.instrs <-
          List.map
            (fun (i : Instr.t) ->
              let c = Instr.copy i in
              c.Instr.dsts <- List.map map_reg c.Instr.dsts;
              c.Instr.srcs <- List.map map_operand c.Instr.srcs;
              (match c.Instr.pred with
              | Some p -> c.Instr.pred <- Some (map_reg p)
              | None -> ());
              (match c.Instr.attrs.Instr.recovery with
              | Some l ->
                  c.Instr.attrs.Instr.recovery <- Some (Hashtbl.find label_map l)
              | None -> ());
              (match c.Instr.attrs.Instr.check_reg with
              | Some r -> c.Instr.attrs.Instr.check_reg <- Some (map_reg r)
              | None -> ());
              c)
            b.Block.instrs;
        nb)
      callee.Func.blocks
  in
  (blocks, List.map map_reg callee.Func.params)

(* Inline one call site.  The caller block is split at the call; the callee
   body is spliced between the pieces; parameter moves bind arguments and
   each return becomes moves + a branch to the continuation. *)
let inline_site (p : Program.t) (caller : Func.t) (site : Instr.t) =
  match Instr.callee site with
  | None -> false
  | Some callee_name -> (
      match Program.find_func p callee_name with
      | None -> false
      | Some callee ->
          (* locate the block and split *)
          let rec find_block = function
            | [] -> None
            | (b : Block.t) :: tl ->
                if List.exists (fun i -> i == site) b.Block.instrs then Some b
                else find_block tl
          in
          (match find_block caller.Func.blocks with
          | None -> false
          | Some host ->
              let rec split acc = function
                | [] -> (List.rev acc, [])
                | i :: tl when i == site -> (List.rev acc, tl)
                | i :: tl -> split (i :: acc) tl
              in
              let before, after = split [] host.Block.instrs in
              let cont_label = Func.fresh_label caller "inlcont" in
              let cont = Block.create cont_label in
              cont.Block.weight <- host.Block.weight;
              cont.Block.instrs <- after;
              let body, params = copy_func_body caller callee site.Instr.id in
              (* argument moves *)
              let args = match site.Instr.srcs with _ :: a -> a | [] -> [] in
              let moves =
                List.mapi
                  (fun n (pr : Reg.t) ->
                    match List.nth_opt args n with
                    | Some a -> Some (Instr.create Opcode.Mov ~dsts:[ pr ] ~srcs:[ a ])
                    | None -> None)
                  params
                |> List.filter_map Fun.id
              in
              let entry_label =
                match body with
                | b :: _ -> b.Block.label
                | [] -> cont_label
              in
              host.Block.instrs <-
                before @ moves
                @ [ Instr.create Opcode.Br ~srcs:[ Operand.Label entry_label ] ];
              (* rewrite returns in the copied body *)
              List.iter
                (fun (b : Block.t) ->
                  b.Block.instrs <-
                    List.concat_map
                      (fun (i : Instr.t) ->
                        match i.Instr.op with
                        | Opcode.Br_ret ->
                            let moves =
                              List.mapi
                                (fun n (d : Reg.t) ->
                                  match List.nth_opt i.Instr.srcs n with
                                  | Some v ->
                                      Some (Instr.create ?pred:i.Instr.pred Opcode.Mov ~dsts:[ d ] ~srcs:[ v ])
                                  | None -> None)
                                site.Instr.dsts
                              |> List.filter_map Fun.id
                            in
                            moves
                            @ [
                                Instr.create ?pred:i.Instr.pred Opcode.Br
                                  ~srcs:[ Operand.Label cont_label ];
                              ]
                        | _ -> [ i ])
                      b.Block.instrs)
                body;
              (* splice: host :: body :: cont :: rest *)
              let rec insert = function
                | [] -> body @ [ cont ]
                | x :: tl when x == host -> (x :: body) @ (cont :: tl)
                | x :: tl -> x :: insert tl
              in
              caller.Func.blocks <- insert caller.Func.blocks;
              true))

(* Collect candidates with the paper's priority function. *)
let candidates (p : Program.t) (cg : Callgraph.t) =
  List.concat_map
    (fun (f : Func.t) ->
      List.concat_map
        (fun (b : Block.t) ->
          List.filter_map
            (fun (i : Instr.t) ->
              match Instr.callee i with
              | Some callee_name
                when (not (Intrinsics.is_intrinsic callee_name))
                     && callee_name <> f.Func.name
                     && not (Callgraph.reaches cg callee_name f.Func.name) -> (
                  match Program.find_func p callee_name with
                  | Some callee ->
                      let size = Func.instr_count callee in
                      let w = i.Instr.attrs.Instr.weight in
                      if w <= 0. || size = 0 then None
                      else
                        Some
                          {
                            caller = f.Func.name;
                            site = i;
                            callee = callee_name;
                            priority = w /. sqrt (float_of_int size);
                            callee_size = size;
                          }
                  | None -> None)
              | _ -> None)
            b.Block.instrs)
        f.Func.blocks)
    p.Program.funcs

(* Run inlining with a code-growth budget (default 1.6, per the paper). *)
let run ?cache ?(budget = 1.6) (p : Program.t) =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  let cg = Cache.callgraph cache p in
  let original = Program.instr_count p in
  let allowance = int_of_float (float_of_int original *. (budget -. 1.0)) in
  let cands =
    List.sort (fun a b -> compare b.priority a.priority) (candidates p cg)
  in
  let grown = ref 0 in
  let inlined = ref 0 in
  List.iter
    (fun c ->
      if !grown + c.callee_size <= allowance then begin
        match Program.find_func p c.caller with
        | Some caller ->
            if inline_site p caller c.site then begin
              grown := !grown + c.callee_size;
              incr inlined
            end
        | None -> ()
      end)
    cands;
  !inlined
