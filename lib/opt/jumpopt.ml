(* Control-flow cleanup: collapse branch chains through empty forwarding
   blocks, delete branches to the fall-through block, merge single-entry
   straight-line successors, and drop unreachable blocks.  Lowering produces
   many tiny forwarding blocks; this pass restores a clean CFG before
   profiling and region formation. *)

open Epic_ir

(* A block that only forwards: empty with a fall-through, or a single
   unconditional branch.  Returns the label it forwards to. *)
let forwards_to (f : Func.t) (b : Block.t) =
  match b.Block.instrs with
  | [] -> ( match Func.fallthrough f b with Some n -> Some n.Block.label | None -> None)
  | [ i ] when i.Instr.op = Opcode.Br && i.Instr.pred = None -> Instr.branch_target i
  | _ -> None

let collapse_chains (f : Func.t) =
  let changed = ref false in
  (* Resolve the final target of a forwarding chain (with cycle guard). *)
  let resolve label =
    let rec go seen label =
      if List.mem label seen then label
      else
        match Func.find_block f label with
        | Some b -> (
            match forwards_to f b with
            | Some next when next <> label -> go (label :: seen) next
            | _ -> label)
        | None -> label
    in
    go [] label
  in
  Func.iter_instrs f (fun i ->
      match Instr.branch_target i with
      | Some t ->
          let t' = resolve t in
          if t' <> t then begin
            i.Instr.srcs <- [ Operand.Label t' ];
            changed := true
          end
      | None -> ());
  !changed

(* Delete unconditional branches that target the fall-through block. *)
let remove_fallthrough_branches (f : Func.t) =
  let changed = ref false in
  List.iter
    (fun (b : Block.t) ->
      match Func.fallthrough f b with
      | None -> ()
      | Some next -> (
          match List.rev b.Block.instrs with
          | last :: _
            when last.Instr.op = Opcode.Br && last.Instr.pred = None
                 && Instr.branch_target last = Some next.Block.label ->
              b.Block.instrs <- List.filter (fun i -> i != last) b.Block.instrs;
              changed := true
          | _ -> ()))
    f.Func.blocks;
  !changed

(* Merge [b] with its unique successor when that successor has [b] as its
   unique predecessor and [b] reaches it unconditionally. *)
let merge_blocks (f : Func.t) =
  let changed = ref false in
  let preds = Func.predecessors f in
  let rec try_merge () =
    let merged =
      List.exists
        (fun (b : Block.t) ->
          match Func.successors f b with
          | [ s ] when s <> b.Block.label -> (
              match Func.find_block f s with
              | Some sb
                when (match Hashtbl.find_opt preds s with
                     | Some [ p ] -> p = b.Block.label
                     | _ -> false)
                     && sb != Func.entry f
                     (* exactly one edge from b to s: a second (conditional)
                        branch to s would dangle after the merge *)
                     && List.length
                          (List.filter
                             (fun (i : Instr.t) -> Instr.branch_target i = Some s)
                             b.Block.instrs)
                        <= 1 ->
                  (* drop a trailing unconditional branch to s, then splice *)
                  let instrs =
                    match List.rev b.Block.instrs with
                    | last :: rest
                      when last.Instr.op = Opcode.Br && last.Instr.pred = None
                           && Instr.branch_target last = Some s ->
                        List.rev rest
                    | _ -> b.Block.instrs
                  in
                  (* a remaining (non-trailing) branch to s still dangles:
                     only merge when none survives *)
                  if
                    List.exists
                      (fun (i : Instr.t) -> Instr.branch_target i = Some s)
                      instrs
                  then false
                  else begin
                    (* the merged code leaves sb's layout slot: its implicit
                       fall-through must become an explicit branch *)
                    (if not (Block.ends_in_unconditional sb) then
                       match Func.fallthrough f sb with
                       | Some next ->
                           Block.append sb
                             (Instr.create Opcode.Br
                                ~srcs:[ Operand.Label next.Block.label ])
                       | None -> ());
                    b.Block.instrs <- instrs @ sb.Block.instrs;
                    f.Func.blocks <- List.filter (fun x -> x != sb) f.Func.blocks;
                    true
                  end
              | _ -> false)
          | _ -> false)
        f.Func.blocks
    in
    if merged then begin
      changed := true;
      (* predecessor map is stale after a merge: recompute via recursion *)
      let preds' = Func.predecessors f in
      Hashtbl.reset preds;
      Hashtbl.iter (Hashtbl.replace preds) preds';
      try_merge ()
    end
  in
  try_merge ();
  !changed

(* Make the fall-through edge of every block explicit with an unconditional
   branch.  Used before layout changes (cold-code sinking).  Returns true
   when any branch was inserted, i.e. the IR changed. *)
let materialize_fallthroughs (f : Func.t) =
  let changed = ref false in
  List.iter
    (fun (b : Block.t) ->
      if not (Block.ends_in_unconditional b) then
        match Func.fallthrough f b with
        | Some n ->
            Block.append b
              (Instr.create Opcode.Br ~srcs:[ Operand.Label n.Block.label ]);
            changed := true
        | None -> ())
    f.Func.blocks;
  !changed

let run_func (f : Func.t) =
  let c1 = collapse_chains f in
  Func.remove_unreachable f;
  let c2 = remove_fallthrough_branches f in
  let c3 = merge_blocks f in
  Func.remove_unreachable f;
  c1 || c2 || c3

let run (p : Program.t) =
  List.fold_left (fun acc f -> run_func f || acc) false p.Program.funcs
