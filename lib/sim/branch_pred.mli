(** Branch prediction: a gshare-style two-level predictor of two-bit
    counters, with unconditional transfers (calls, returns, gotos)
    predicted perfectly (Itanium 2's return stack and static hints). *)

type t = {
  counters : int array;
  mutable history : int;
  history_bits : int;
  mutable predictions : int;
  mutable mispredictions : int;
}

val create : ?bits:int -> ?history_bits:int -> unit -> t

(** Predict, update with the actual outcome, and report correctness. *)
val predict_and_update : t -> int -> bool -> bool

val record_unconditional : t -> unit

(** Correct-prediction rate (Figure 7's right axis). *)
val rate : t -> float

val reset : t -> unit

(** Deep copy (private counter array), for checkpointing. *)
val copy : t -> t
