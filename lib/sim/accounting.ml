(* Cycle accounting into the paper's nine categories (Figure 5), globally
   and binned per function (the Pfmon-style address sampling behind
   Figure 10). *)

type category =
  | Unstalled (* unstalled execution *)
  | Float_scoreboard
  | Misc (* int scoreboard, misc scoreboard, exception flush *)
  | Int_load_bubble (* data cache stall on integer loads *)
  | Micropipe (* memory-subsystem micro-stalls: DTLB walks, store buffer *)
  | Front_end (* instruction cache / fetch bubbles *)
  | Br_mispredict (* branch misprediction flush *)
  | Rse (* register stack engine traffic *)
  | Kernel (* OS time: wild-load page walks, faults *)

let all_categories =
  [
    Unstalled; Float_scoreboard; Misc; Int_load_bubble; Micropipe; Front_end;
    Br_mispredict; Rse; Kernel;
  ]

let index = function
  | Unstalled -> 0
  | Float_scoreboard -> 1
  | Misc -> 2
  | Int_load_bubble -> 3
  | Micropipe -> 4
  | Front_end -> 5
  | Br_mispredict -> 6
  | Rse -> 7
  | Kernel -> 8

let name = function
  | Unstalled -> "unstalled"
  | Float_scoreboard -> "fp-scoreboard"
  | Misc -> "misc"
  | Int_load_bubble -> "int-load-bubble"
  | Micropipe -> "micropipe"
  | Front_end -> "front-end"
  | Br_mispredict -> "br-mispredict"
  | Rse -> "rse"
  | Kernel -> "kernel"

type t = {
  totals : float array; (* length 9 *)
  by_func : (string, float array) Hashtbl.t;
}

let create () = { totals = Array.make 9 0.; by_func = Hashtbl.create 32 }

let bins t (func : string) =
  match Hashtbl.find_opt t.by_func func with
  | Some b -> b
  | None ->
      let b = Array.make 9 0. in
      Hashtbl.replace t.by_func func b;
      b

(* Hot-path variant: the caller has already fetched (and may cache) the
   function's bins, so a charge is two array updates with no string
   hashing.  [charge] below remains the convenience form. *)
let charge_bins t (b : float array) (cat : category) (cycles : int) =
  if cycles > 0 then begin
    let c = float_of_int cycles in
    let k = index cat in
    t.totals.(k) <- t.totals.(k) +. c;
    b.(k) <- b.(k) +. c
  end

let charge t (func : string) (cat : category) (cycles : int) =
  if cycles > 0 then charge_bins t (bins t func) cat cycles

let total t = Array.fold_left ( +. ) 0. t.totals
let get t cat = t.totals.(index cat)

(* The paper's "planned" cycles (footnote 4): unstalled plus the scoreboard
   components — everything the compiler could statically anticipate. *)
let planned t = get t Unstalled +. get t Float_scoreboard +. get t Misc

let func_total t fname =
  match Hashtbl.find_opt t.by_func fname with
  | Some b -> Array.fold_left ( +. ) 0. b
  | None -> 0.

let functions t = Hashtbl.fold (fun f _ acc -> f :: acc) t.by_func []

let pp ppf t =
  List.iter
    (fun c -> Fmt.pf ppf "%-16s %12.0f@." (name c) (get t c))
    all_categories;
  Fmt.pf ppf "%-16s %12.0f@." "TOTAL" (total t)
