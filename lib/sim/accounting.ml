(* Cycle accounting into the paper's nine categories (Figure 5), globally
   and binned per function (the Pfmon-style address sampling behind
   Figure 10). *)

type category =
  | Unstalled (* unstalled execution *)
  | Float_scoreboard
  | Misc (* int scoreboard, misc scoreboard, exception flush *)
  | Int_load_bubble (* data cache stall on integer loads *)
  | Micropipe (* memory-subsystem micro-stalls: DTLB walks, store buffer *)
  | Front_end (* instruction cache / fetch bubbles *)
  | Br_mispredict (* branch misprediction flush *)
  | Rse (* register stack engine traffic *)
  | Kernel (* OS time: wild-load page walks, faults *)

let all_categories =
  [
    Unstalled; Float_scoreboard; Misc; Int_load_bubble; Micropipe; Front_end;
    Br_mispredict; Rse; Kernel;
  ]

let index = function
  | Unstalled -> 0
  | Float_scoreboard -> 1
  | Misc -> 2
  | Int_load_bubble -> 3
  | Micropipe -> 4
  | Front_end -> 5
  | Br_mispredict -> 6
  | Rse -> 7
  | Kernel -> 8

let name = function
  | Unstalled -> "unstalled"
  | Float_scoreboard -> "fp-scoreboard"
  | Misc -> "misc"
  | Int_load_bubble -> "int-load-bubble"
  | Micropipe -> "micropipe"
  | Front_end -> "front-end"
  | Br_mispredict -> "br-mispredict"
  | Rse -> "rse"
  | Kernel -> "kernel"

let category_of_name s =
  List.find_opt (fun c -> name c = s) all_categories

(* A causal-profiling virtual speedup (COZ-style): scale the cycles charged
   to one target — a function or a stall category — by [1 - speedup],
   leaving the clock and every model's state untouched.  The experiment
   lives here, at the accounting layer, so the simulator's hot path needs
   no knowledge of it beyond the one [exp_keep] comparison in
   [charge_bins]. *)
type target =
  | Target_func of string
  | Target_category of category
  | Target_func_category of string * category

type experiment = {
  target : target;
  speedup : float;
      (* fraction of the target's charged cycles virtually removed,
         in [0, 1]; 1.0 = the target becomes free (a perfect-* run) *)
}

type t = {
  totals : float array; (* length 9 *)
  by_func : (string, float array) Hashtbl.t;
  (* Experiment state, decomposed for the hot path: [exp_keep] is the
     charge multiplier (1.0 = no experiment: [charge_bins] pays one float
     comparison and nothing else), [exp_cat] the targeted category index
     (-1 = every category), and a function target is matched by physical
     equality against its bins array ([exp_all_funcs] = no function
     filter), so the active-experiment path is allocation-free too. *)
  mutable exp_keep : float;
  mutable exp_cat : int;
  mutable exp_all_funcs : bool;
  mutable exp_bins : float array;
}

let create () =
  {
    totals = Array.make 9 0.;
    by_func = Hashtbl.create 32;
    exp_keep = 1.0;
    exp_cat = -1;
    exp_all_funcs = true;
    exp_bins = [||];
  }

let bins t (func : string) =
  match Hashtbl.find_opt t.by_func func with
  | Some b -> b
  | None ->
      let b = Array.make 9 0. in
      Hashtbl.replace t.by_func func b;
      b

let set_experiment t = function
  | None ->
      t.exp_keep <- 1.0;
      t.exp_cat <- -1;
      t.exp_all_funcs <- true;
      t.exp_bins <- [||]
  | Some { target; speedup } ->
      if not (speedup >= 0. && speedup <= 1.) then
        invalid_arg "Accounting.set_experiment: speedup must be in [0, 1]";
      (* a 0% speedup leaves exp_keep at 1.0: the no-op experiment takes
         the inactive fast path and is bit-identical to no experiment *)
      t.exp_keep <- 1.0 -. speedup;
      (match target with
      | Target_category cat ->
          t.exp_cat <- index cat;
          t.exp_all_funcs <- true;
          t.exp_bins <- [||]
      | Target_func f ->
          t.exp_cat <- -1;
          t.exp_all_funcs <- false;
          (* pin the target's bins now: matching is then one physical
             equality against the array the caller already holds *)
          t.exp_bins <- bins t f
      | Target_func_category (f, cat) ->
          (* both filters at once; [charge_bins] already conjoins them *)
          t.exp_cat <- index cat;
          t.exp_all_funcs <- false;
          t.exp_bins <- bins t f)

let experiment_active t = t.exp_keep <> 1.0

(* Deep copy for checkpointing: totals and every per-function bin get
   private arrays; the experiment state is reset to inactive (the resumer
   installs its own with [set_experiment]).  [Hashtbl.copy] preserves the
   table's internal layout, so a resumed run that adds the same functions
   in the same order folds in the same order as the uninterrupted one. *)
let copy t =
  let by_func = Hashtbl.copy t.by_func in
  Hashtbl.filter_map_inplace (fun _ b -> Some (Array.copy b)) by_func;
  {
    totals = Array.copy t.totals;
    by_func;
    exp_keep = 1.0;
    exp_cat = -1;
    exp_all_funcs = true;
    exp_bins = [||];
  }

(* Retroactively apply an experiment to already-charged cycles: scale the
   target's bins (and the totals they contributed) by [1 - speedup], as if
   every matching past charge had gone through the active experiment.
   Used when resuming a checkpointed prefix under an experiment the prefix
   was simulated without; exact in real arithmetic, within an ulp or two
   of the straight-through run in floats (and bit-exact at speedup 0 and,
   for the bins themselves, at speedup 1). *)
let apply_experiment_to_past t = function
  | None -> ()
  | Some { target; speedup } ->
      let keep = 1.0 -. speedup in
      if keep <> 1.0 then begin
        let adjust (b : float array) k =
          let old = b.(k) in
          if old <> 0. then begin
            let nw = old *. keep in
            t.totals.(k) <- t.totals.(k) -. old +. nw;
            b.(k) <- nw
          end
        in
        match target with
        | Target_category cat ->
            let k = index cat in
            Hashtbl.iter (fun _ b -> adjust b k) t.by_func
        | Target_func f -> (
            match Hashtbl.find_opt t.by_func f with
            | None -> ()
            | Some b ->
                for k = 0 to 8 do
                  adjust b k
                done)
        | Target_func_category (f, cat) -> (
            match Hashtbl.find_opt t.by_func f with
            | None -> ()
            | Some b -> adjust b (index cat))
      end

(* --- fused experiment sets ------------------------------------------------
   N concurrent virtual-speedup experiments over one simulated instruction
   stream.  Each experiment owns a *full* accumulator with the experiment
   installed through the ordinary [set_experiment], and fused charging
   routes every charge through the ordinary [charge_bins] on each
   accumulator — so a fused experiment sees exactly the float-operation
   sequence its serial [~experiment] run would see, and its totals and
   per-function bins are bit-identical to that run's, by construction.
   The host accumulator (the machine's own) is charged as usual and stays
   bit-identical to a run with no experiments at all. *)
type exp_set = {
  xexps : experiment array;
  xacc : t array; (* one accumulator per experiment, same order *)
}

let make_set (exps : experiment list) =
  let xexps = Array.of_list exps in
  let xacc =
    Array.map
      (fun e ->
        let a = create () in
        set_experiment a (Some e);
        a)
      xexps
  in
  { xexps; xacc }

(* A set for resuming a checkpointed prefix: each accumulator starts from
   a private copy of the prefix accounting with the experiment applied
   retroactively — within an ulp of the straight-through fused run, for
   the same reason [apply_experiment_to_past] is (see above). *)
let resume_set ~(past : t) (exps : experiment list) =
  let xexps = Array.of_list exps in
  let xacc =
    Array.map
      (fun e ->
        let a = copy past in
        set_experiment a (Some e);
        apply_experiment_to_past a (Some e);
        a)
      xexps
  in
  { xexps; xacc }

let set_size (s : exp_set) = Array.length s.xacc
let set_accounts (s : exp_set) = s.xacc
let set_experiments (s : exp_set) = s.xexps

(* Refill the caller's per-experiment bins scratch for [func]: slot [i]
   becomes [func]'s live bins array in experiment [i]'s accumulator
   (created on demand, exactly as a serial run's first charge under [func]
   would create it). *)
let set_bins (s : exp_set) (bs : float array array) (func : string) =
  for i = 0 to Array.length s.xacc - 1 do
    bs.(i) <- bins s.xacc.(i) func
  done

(* Hot-path variant: the caller has already fetched (and may cache) the
   function's bins, so a charge is two array updates with no string
   hashing.  [charge] below remains the convenience form.  With no (or a
   no-op) experiment the only overhead over the seed is the [exp_keep]
   comparison; [c] stays the exact [float_of_int cycles], so inactive runs
   are bit-identical to pre-hook accounting. *)
let charge_bins t (b : float array) (cat : category) (cycles : int) =
  if cycles > 0 then begin
    let k = index cat in
    let c = float_of_int cycles in
    let c =
      if t.exp_keep = 1.0 then c
      else if
        (t.exp_cat = -1 || t.exp_cat = k)
        && (t.exp_all_funcs || t.exp_bins == b)
      then c *. t.exp_keep
      else c
    in
    t.totals.(k) <- t.totals.(k) +. c;
    b.(k) <- b.(k) +. c
  end

let charge t (func : string) (cat : category) (cycles : int) =
  if cycles > 0 then charge_bins t (bins t func) cat cycles

(* Fused hot path: one simulator charge fans out to every experiment's
   accumulator through the ordinary [charge_bins], each against its own
   cached bins for the current function (see [set_bins]). *)
let charge_set (s : exp_set) (bs : float array array) (cat : category)
    (cycles : int) =
  for i = 0 to Array.length s.xacc - 1 do
    charge_bins s.xacc.(i) bs.(i) cat cycles
  done

let total t = Array.fold_left ( +. ) 0. t.totals
let get t cat = t.totals.(index cat)

(* The paper's "planned" cycles (footnote 4): unstalled plus the scoreboard
   components — everything the compiler could statically anticipate. *)
let planned t = get t Unstalled +. get t Float_scoreboard +. get t Misc

let func_total t fname =
  match Hashtbl.find_opt t.by_func fname with
  | Some b -> Array.fold_left ( +. ) 0. b
  | None -> 0.

let functions t = Hashtbl.fold (fun f _ acc -> f :: acc) t.by_func []

let pp ppf t =
  List.iter
    (fun c -> Fmt.pf ppf "%-16s %12.0f@." (name c) (get t c))
    all_categories;
  Fmt.pf ppf "%-16s %12.0f@." "TOTAL" (total t)
