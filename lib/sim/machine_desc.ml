(* Re-export of the machine-description record at the simulator's level, so
   clients can write [Epic_sim.Machine_desc.itanium2] without reaching into
   Epic_mach.  The types are equal: a description built here parameterizes
   the scheduler (via [Epic_mach.Itanium.with_desc]) and the simulator
   ([Machine.run ?desc]) alike. *)

include Epic_mach.Machine_desc
