(* Register Stack Engine model (Section 4.4).  Each call pushes the callee's
   stacked-register frame; when the cumulative resident count exceeds the
   physical stacked registers (96 on Itanium 2), the RSE must spill the
   oldest frames to the backing store (and fill them back on return),
   costing bus cycles that the paper's Figure 5 shows as "register stack
   engine" time.  The geometry and per-register cost come from the machine
   description at creation time. *)

type frame = { size : int; mutable resident : int }

type t = {
  physical : int;
  cost_per_reg : int; (* cycles per mandatory spill/fill *)
  mutable frames : frame list; (* innermost first *)
  mutable resident_total : int;
  mutable spills : int;
  mutable fills : int;
}

let create ?(physical = Epic_mach.Machine_desc.itanium2.Epic_mach.Machine_desc.rse_physical)
    ?(cost_per_reg =
      Epic_mach.Machine_desc.itanium2.Epic_mach.Machine_desc.rse_spill_cost_per_reg)
    () =
  { physical; cost_per_reg; frames = []; resident_total = 0; spills = 0; fills = 0 }

(* Push a frame of [size] stacked registers; returns the spill cycles. *)
let on_call t size =
  let fr = { size; resident = size } in
  t.frames <- fr :: t.frames;
  t.resident_total <- t.resident_total + size;
  let spilled = ref 0 in
  (* spill oldest frames until we fit *)
  let rec spill_oldest = function
    | [] -> ()
    | _ when t.resident_total <= t.physical -> ()
    | [ oldest ] ->
        let take = min oldest.resident (t.resident_total - t.physical) in
        oldest.resident <- oldest.resident - take;
        t.resident_total <- t.resident_total - take;
        spilled := !spilled + take
    | x :: tl ->
        spill_oldest tl;
        if t.resident_total > t.physical then begin
          let take = min x.resident (t.resident_total - t.physical) in
          x.resident <- x.resident - take;
          t.resident_total <- t.resident_total - take;
          spilled := !spilled + take
        end
  in
  (match t.frames with _cur :: rest -> spill_oldest rest | [] -> ());
  t.spills <- t.spills + !spilled;
  !spilled * t.cost_per_reg

(* Pop the current frame; the caller's frame must be fully resident again.
   Returns the fill cycles. *)
let on_return t =
  match t.frames with
  | [] -> 0
  | cur :: rest ->
      t.frames <- rest;
      t.resident_total <- t.resident_total - cur.resident;
      let fills =
        match rest with
        | caller :: _ ->
            let need = caller.size - caller.resident in
            caller.resident <- caller.size;
            t.resident_total <- t.resident_total + need;
            need
        | [] -> 0
      in
      t.fills <- t.fills + fills;
      fills * t.cost_per_reg

let reset t =
  t.frames <- [];
  t.resident_total <- 0;
  t.spills <- 0;
  t.fills <- 0

(* Deep copy for checkpointing: the frame list's cells are mutable, so each
   is duplicated (order preserved — innermost first). *)
let copy t =
  {
    t with
    frames = List.map (fun f -> { size = f.size; resident = f.resident }) t.frames;
  }
