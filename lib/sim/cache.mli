(** Set-associative LRU cache model, used for L1I, L1D, and the unified
    L2/L3 levels of the scaled Itanium 2 hierarchy. *)

type t = {
  name : string;
  sets : int;
  assoc : int;
  line_bits : int;
  sets_mask : int;
      (** [sets - 1] when [sets] is a power of two (so the set index is a
          bitmask rather than a division), [-1] otherwise *)
  tags : int array;
      (** line numbers as native ints ([-1] = invalid): a line number is a
          logical shift of the address by at least 2 bits, so it is
          non-negative and always fits an OCaml int exactly *)
  age : int array;
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

val create : name:string -> size:int -> line:int -> assoc:int -> t

(** Access an address; true on hit.  Misses allocate (evicting LRU). *)
val access : t -> int64 -> bool

(** Probe without allocating. *)
val probe : t -> int64 -> bool

val reset : t -> unit
val miss_rate : t -> float

(** Line number of an address (a logical shift by [line_bits]). *)
val line_of : t -> int64 -> int

(** Deep copy (private tag/age arrays), for checkpointing. *)
val copy : t -> t
