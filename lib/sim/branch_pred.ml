(* Branch prediction: a gshare-style two-level predictor of two-bit
   saturating counters keyed by (site, global history), plus trivially
   correct prediction of unconditional branches, calls and returns (Itanium
   2's return stack and static branch hints make these near-perfect). *)

type t = {
  counters : int array;
  mutable history : int;
  history_bits : int;
  mutable predictions : int;
  mutable mispredictions : int;
}

let create ?(bits = 12) ?(history_bits = 8) () =
  {
    counters = Array.make (1 lsl bits) 2 (* weakly taken *);
    history = 0;
    history_bits;
    predictions = 0;
    mispredictions = 0;
  }

let index t (site : int) =
  let n = Array.length t.counters in
  (site lxor (t.history * 31)) land (n - 1)

(* Predict and immediately update with the actual [taken] outcome; returns
   whether the prediction was correct. *)
let predict_and_update t (site : int) (taken : bool) =
  t.predictions <- t.predictions + 1;
  let idx = index t site in
  let c = t.counters.(idx) in
  let predicted_taken = c >= 2 in
  let correct = predicted_taken = taken in
  if not correct then t.mispredictions <- t.mispredictions + 1;
  t.counters.(idx) <- (if taken then min 3 (c + 1) else max 0 (c - 1));
  t.history <-
    ((t.history lsl 1) lor (if taken then 1 else 0))
    land ((1 lsl t.history_bits) - 1);
  correct

(* Unconditional transfers: counted as predictions, never mispredicted. *)
let record_unconditional t = t.predictions <- t.predictions + 1

let rate t =
  if t.predictions = 0 then 1.0
  else 1.0 -. (float_of_int t.mispredictions /. float_of_int t.predictions)

let reset t =
  Array.fill t.counters 0 (Array.length t.counters) 2;
  t.history <- 0;
  t.predictions <- 0;
  t.mispredictions <- 0

(* Deep copy for checkpointing. *)
let copy t = { t with counters = Array.copy t.counters }
