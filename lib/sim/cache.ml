(* Set-associative LRU cache model.

   Host-performance note (DESIGN.md §10): line numbers are kept as native
   ints.  A line number is the address shifted right *logically* by
   [line_bits] >= 2 (every real line is at least 4 bytes), so it is
   non-negative and below 2^62 — it always fits an OCaml int exactly, and
   the tag compare in the lookup loop is an unboxed integer compare
   instead of a boxed [Int64] one. *)

type t = {
  name : string;
  sets : int;
  assoc : int;
  line_bits : int;
  sets_mask : int; (* sets - 1 when sets is a power of two, else -1 *)
  tags : int array; (* sets * assoc; -1 = invalid (lines are >= 0) *)
  age : int array; (* LRU stamps *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let log2i n =
  let rec go k v = if v >= n then k else go (k + 1) (v * 2) in
  go 0 1

let create ~name ~size ~line ~assoc =
  let sets = max 1 (size / (line * assoc)) in
  {
    name;
    sets;
    assoc;
    line_bits = log2i line;
    (* every real geometry has power-of-two sets, making the set index a
       mask; the [mod] path stays for hypothetical odd configurations *)
    sets_mask = (if sets land (sets - 1) = 0 then sets - 1 else -1);
    tags = Array.make (sets * assoc) (-1);
    age = Array.make (sets * assoc) 0;
    clock = 0;
    accesses = 0;
    misses = 0;
  }

let line_of t (addr : int64) =
  Int64.to_int (Int64.shift_right_logical addr t.line_bits)

(* The set index of a (non-negative) line number: a bitmask when the set
   count is a power of two, a division otherwise. *)
let set_of_line t (line : int) =
  if t.sets_mask >= 0 then line land t.sets_mask else line mod t.sets

(* Access [addr]; returns true on hit.  Misses allocate. *)
let access t (addr : int64) =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let line = line_of t addr in
  let set = set_of_line t line in
  let base = set * t.assoc in
  let hit = ref (-1) in
  let k = ref 0 in
  while !hit < 0 && !k < t.assoc do
    if t.tags.(base + !k) = line then hit := !k;
    incr k
  done;
  if !hit >= 0 then begin
    t.age.(base + !hit) <- t.clock;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (* evict LRU way *)
    let victim = ref 0 in
    for k = 1 to t.assoc - 1 do
      if t.age.(base + k) < t.age.(base + !victim) then victim := k
    done;
    t.tags.(base + !victim) <- line;
    t.age.(base + !victim) <- t.clock;
    false
  end

(* Probe without allocating (used by tests). *)
let probe t (addr : int64) =
  let line = line_of t addr in
  let set = set_of_line t line in
  let base = set * t.assoc in
  let rec find k =
    if k >= t.assoc then false
    else t.tags.(base + k) = line || find (k + 1)
  in
  find 0

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.age 0 (Array.length t.age) 0;
  t.accesses <- 0;
  t.misses <- 0;
  t.clock <- 0

(* Deep copy for checkpointing: same geometry, private tag/age arrays. *)
let copy t =
  {
    t with
    tags = Array.copy t.tags;
    age = Array.copy t.age;
  }

let miss_rate t =
  if t.accesses = 0 then 0. else float_of_int t.misses /. float_of_int t.accesses
