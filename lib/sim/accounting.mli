(** Cycle accounting into the paper's nine categories (Figure 5), globally
    and binned per function (the Pfmon-style sampling behind Figure 10). *)

type category =
  | Unstalled  (** unstalled execution *)
  | Float_scoreboard
  | Misc  (** int scoreboard, misc scoreboard, exception flush *)
  | Int_load_bubble  (** data-cache stalls on integer loads *)
  | Micropipe  (** memory-subsystem micro-stalls: DTLB walks, store buffer *)
  | Front_end  (** instruction-cache / fetch bubbles *)
  | Br_mispredict  (** branch misprediction flush *)
  | Rse  (** register stack engine traffic *)
  | Kernel  (** OS time: wild-load page walks, faults *)

val all_categories : category list

(** Stable index of a category in [totals] (0..8). *)
val index : category -> int

val name : category -> string

(** Inverse of {!name}; [None] for an unknown name. *)
val category_of_name : string -> category option

(** A causal-profiling target: one function's cycles, one stall category
    program-wide, or one (function, category) pair — the cycles of a
    single stall category within a single function, everything else
    untouched. *)
type target =
  | Target_func of string
  | Target_category of category
  | Target_func_category of string * category

(** A COZ-style virtual speedup: while active, every charge attributable
    to [target] is scaled by [1 - speedup] — the clock, the cache/TLB/
    predictor state and the program semantics are untouched, so the run's
    accounting answers "what would end-to-end cycles be if this target
    were [speedup] faster?". *)
type experiment = {
  target : target;
  speedup : float;  (** fraction removed, in [0, 1]; 1.0 = target free *)
}

type t = {
  totals : float array;  (** length 9, indexed by [index] *)
  by_func : (string, float array) Hashtbl.t;
  mutable exp_keep : float;  (** charge multiplier; 1.0 = inactive *)
  mutable exp_cat : int;  (** targeted category index; -1 = all *)
  mutable exp_all_funcs : bool;  (** no function filter *)
  mutable exp_bins : float array;
      (** the targeted function's bins, matched physically *)
}

val create : unit -> t

(** Install (or clear, with [None]) the active virtual-speedup experiment.
    With no experiment — or a no-op one ([speedup = 0.]) — charging is
    bit-identical to an accounting that never had the hook.
    @raise Invalid_argument if [speedup] is outside [0, 1]. *)
val set_experiment : t -> experiment option -> unit

(** Whether a non-no-op experiment is installed. *)
val experiment_active : t -> bool

(** [charge t func cat cycles] attributes cycles globally and to [func]. *)
val charge : t -> string -> category -> int -> unit

(** [bins t func] is [func]'s per-function bin array, created on demand.
    Callers may hold on to it and charge through {!charge_bins}; the array
    is the live accounting state, not a copy. *)
val bins : t -> string -> float array

(** [charge_bins t b cat cycles] is {!charge} with the per-function bins
    already in hand — the simulator's hot path, skipping the name lookup.
    [b] must come from {!bins} on the same [t]. *)
val charge_bins : t -> float array -> category -> int -> unit

(** Sum of all categories: the program's total cycles. *)
val total : t -> float

val get : t -> category -> float

(** The paper's "planned" cycles (footnote 4): unstalled plus the
    scoreboard components — everything the compiler could statically
    anticipate. *)
val planned : t -> float

val func_total : t -> string -> float
val functions : t -> string list
val pp : Format.formatter -> t -> unit

(** Deep copy for checkpointing: private totals and bin arrays, the
    experiment state reset to inactive (resumers install their own). *)
val copy : t -> t

(** Retroactively apply an experiment to already-charged cycles: scale the
    target's bins (and their contribution to the totals) by [1 - speedup],
    as if every matching past charge had gone through the experiment.
    Used when resuming a checkpointed prefix under an experiment the
    prefix was simulated without; exact in real arithmetic, within an ulp
    of the straight-through run in floats. *)
val apply_experiment_to_past : t -> experiment option -> unit

(** A fused set of N concurrent virtual-speedup experiments carried by one
    simulation.  Each experiment owns a full private accumulator with the
    experiment installed via {!set_experiment}, and fused charging routes
    every charge through {!charge_bins} on each accumulator — so each
    fused experiment's totals and per-function bins are bit-identical to
    the serial [~experiment] run's, by construction.  The host accumulator
    is charged separately as usual and is untouched by the set. *)
type exp_set = {
  xexps : experiment array;
  xacc : t array;  (** one accumulator per experiment, same order *)
}

(** Fresh accumulators, one per experiment, experiments installed.
    @raise Invalid_argument if any speedup is outside [0, 1]. *)
val make_set : experiment list -> exp_set

(** A set resuming from a checkpointed prefix: each accumulator is a
    private {!copy} of [past] with its experiment installed and applied
    retroactively via {!apply_experiment_to_past} — within an ulp of the
    straight-through fused run. *)
val resume_set : past:t -> experiment list -> exp_set

val set_size : exp_set -> int
val set_accounts : exp_set -> t array
val set_experiments : exp_set -> experiment array

(** [set_bins s bs func] refills the caller's per-experiment bins scratch
    for [func]: slot [i] becomes [func]'s live bins in accumulator [i]
    (created on demand).  [Array.length bs] must be [set_size s]. *)
val set_bins : exp_set -> float array array -> string -> unit

(** [charge_set s bs cat cycles] fans one charge out to every experiment's
    accumulator via {!charge_bins}, [bs] being the current function's
    per-experiment bins from {!set_bins}. *)
val charge_set : exp_set -> float array array -> category -> int -> unit
