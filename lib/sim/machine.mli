(** The Itanium-2-class machine simulator: executes scheduled,
    register-allocated code laid out in bundles, and accounts every cycle
    to one of the paper's nine categories (see {!Accounting}).

    Architectural semantics match the reference interpreter (predication,
    NaT deferral, sentinel and ALAT recovery); timing comes from the
    in-order six-issue pipeline, the scaled memory hierarchy, the branch
    predictor, the register stack engine and the OS page-walk model. *)

exception Machine_fault of string
exception Exit_program of int
exception Out_of_fuel

(** Retired-operation and event counters (the Pfmon counter set). *)
type counters = {
  mutable useful_ops : int;
      (** retired with a true qualifying predicate, non-nop *)
  mutable squashed_ops : int;  (** retired with a false qualifying predicate *)
  mutable nop_ops : int;  (** template nops fetched and retired *)
  mutable kernel_ops : int;  (** work executed in "kernel" mode *)
  mutable branches : int;
  mutable groups : int;  (** issue groups executed *)
  mutable wild_loads : int;
  mutable spec_loads : int;
  mutable chk_recoveries : int;
  mutable nat_consumed : int;
  mutable calls : int;
}

type reason = Rload | Rfload | Rlong

(** Per-invocation register state (see DESIGN.md on the per-frame
    simplification). *)
type frame

type dfunc
(** A function with its control flow predecoded against the layout:
    blocks in an array with their [Layout.block_layout] resolved and
    fall-through links wired, plus a label->block table (DESIGN.md §10).
    Built once per function in {!run}; purely a host-speed structure. *)

type dblock
(** One decoded block of a {!dfunc} (warm-path branch targets). *)

type pending
(** A call live at checkpoint-capture time (internal bookkeeping). *)

type checkpoint
(** A positional, fully deep-copied snapshot of the machine between two
    issue groups: register frames, memory image, cache/TLB/predictor/RSE
    state, accounting, counters and the call stack as (function, block
    index, group index) coordinates.  It holds no pointers into the
    program, layout or decoded tables, so it can be resumed against any
    structurally identical compile of the same source, any number of
    times (DESIGN.md §13). *)

val checkpoint_groups : checkpoint -> int
(** The groups counter at capture — the checkpoint's position. *)

val checkpoint_cycle : checkpoint -> int

type t = {
  program : Epic_ir.Program.t;
  layout : Epic_sched.Layout.t;
  decoded : (string, dfunc) Hashtbl.t;
      (** per-function predecoded control flow, keyed by function name *)
  mem : Epic_ir.Memimage.t;
  mutable heap : int64;
  output : Buffer.t;
  input : int64 array;
  l1i : Cache.t;
  l1d : Cache.t;
  l2 : Cache.t;
  l3 : Cache.t;
  dtlb : Tlb.t;
  bp : Branch_pred.t;
  rse : Rse.t;
  desc : Machine_desc.t;  (** the machine description being simulated *)
  acc : Accounting.t;  (** the nine-way cycle accounting *)
  c : counters;
  mutable cycle : int;  (** the global clock *)
  mutable sb_work : int;
  mutable sb_last_cycle : int;
  mutable fuel : int;
  mutable cur_func : string;
  mutable cur_block : string;
  trace : Epic_obs.Trace.t option;
      (** event-trace sink; [None] (the default) records nothing and
          changes no counter or cycle *)
  prof : Epic_obs.Profile.t option;  (** PC-sampling profiler, opt-in *)
  mutable onat : bool;
      (** host-speed scratch (DESIGN.md §10): NaT bit of the last operand
          read, reported here instead of in a returned tuple *)
  mutable ld_extra : int;  (** scratch: cache penalty of the last load *)
  mutable cur_bins : float array;
      (** scratch: cached accounting bins of [cur_bins_for] *)
  mutable cur_bins_for : string;
      (** the name (physically) that [cur_bins] was fetched for *)
  exps : Accounting.exp_set option;
      (** fused experiment set (DESIGN.md §14): when present, every charge
          additionally fans out to each experiment's private accumulator;
          [None] costs one option match per charge *)
  mutable cur_xbins : float array array;
      (** scratch: the set's cached bins for [cur_bins_for] *)
  syms : (string, int64) Hashtbl.t;  (** memoized symbol addresses *)
  mutable free_frames : frame list;
      (** pool of released call frames, cleared on reuse (DESIGN.md §10) *)
  mutable warm : bool;
      (** interval sampling (DESIGN.md §13): in a warm phase the timing
          model is bypassed — no charges, no clock, no stalls — while the
          functional state and the cache/TLB/predictor warming evolve *)
  sampling : Sampling.state option;
  mutable sample_summary : Sampling.summary option;
      (** filled by {!run} when [sampling] was requested *)
  warm_tlb_pages : int array;
      (** direct-mapped warm-phase probe filters (recently warmed
          pages/lines, keyed by low page/line bits) *)
  warm_l1d_lines : int array;
  warm_l2_lines : int array;
  warm_l1i_lines : int array;
  mutable wjump : dblock option;
      (** warm fast path taken-branch mailbox; [None] between groups *)
  mutable warm_ttl : int;
      (** warm groups left before the probe filters are flushed (bounds
          the LRU-recency staleness a filter hit introduces) *)
  ck_track : bool;  (** checkpoint bookkeeping armed (run-long) *)
  mutable ck_at : int;
  mutable ck_saved : checkpoint option;
  mutable ck_stack : pending list;
  mutable pos_blk : int;
  mutable pos_gi : int;
  mutable pos_rest : int;
}

(** Run a laid-out program on the given input; returns (exit code, printed
    output, final machine state).  Output must equal the reference
    interpreter's on the same program and input.

    [trace] enables architectural event tracing (see {!Epic_obs.Trace});
    [profile] enables PC sampling (see {!Epic_obs.Profile}).  Both are off
    by default and, when off, leave every counter and cycle identical to a
    plain run.

    [experiment] installs a causal-profiling virtual speedup (see
    {!Accounting.experiment}): charges attributable to the target are
    scaled by [1 - speedup] while the clock and all architectural state
    evolve exactly as without it.  Omitted (or no-op), the accounting is
    bit-identical to a machine without the hook.

    [experiments] fuses N concurrent virtual speedups into the one run:
    each gets a private accumulator charged through the same hot path, so
    experiment [i]'s final accounting (via {!fused_accounts}) is
    bit-identical to a serial [~experiment] run of it, while the host
    accounting stays bit-identical to a run with no experiments.
    Exclusive with [experiment] ([Invalid_argument]); composes with
    [sampling] (per-experiment extrapolation tracks) and with
    [checkpoint_at] (the snapshot carries host accounting only, so it
    equals a plain run's).

    [desc] selects the machine description to simulate; the default is the
    domain's current description ({!Epic_mach.Itanium.desc}), normally
    {!Machine_desc.itanium2}.  For a run to be meaningful the program must
    have been scheduled under the same description (the driver guarantees
    this by compiling inside [Itanium.with_desc] and passing the
    description along).

    [sampling] runs under interval sampling (see {!Sampling}): detailed
    phases alternate with warm functional phases and the final accounting
    is extrapolated; exit code, output and all retired-op counters are
    exact, cache/TLB access and miss counts approximate.

    [checkpoint_at] arms one-shot checkpoint capture: the snapshot fires
    just before the [n]-th issue group executes and is retrievable with
    {!checkpoint}.  Exclusive with [sampling] ([Invalid_argument]). *)
val run :
  ?fuel:int ->
  ?trace:Epic_obs.Trace.t ->
  ?profile:Epic_obs.Profile.t ->
  ?experiment:Accounting.experiment ->
  ?experiments:Accounting.experiment list ->
  ?desc:Machine_desc.t ->
  ?sampling:Sampling.plan ->
  ?checkpoint_at:int ->
  Epic_ir.Program.t ->
  Epic_sched.Layout.t ->
  int64 array ->
  int * string * t

val checkpoint : t -> checkpoint option
(** The checkpoint captured by a [?checkpoint_at] run, if the run lived
    long enough to reach it. *)

val sample_summary : t -> Sampling.summary option
(** The extrapolation summary of a [?sampling] run. *)

val fused_accounts : t -> Accounting.t array
(** The final accumulators of a [?experiments] run, in the order the list
    was given; [[||]] when the run carried none.  Entry [i] is
    bit-identical to the accounting of a serial [~experiment] run of
    experiment [i]. *)

(** Resume a checkpoint against a structurally identical (program, layout)
    pair; returns (exit code, output, state) like {!run}, with the output
    including the checkpointed prefix.  The run is bit-identical — cycles,
    accounting, counters, output — to the uninterrupted one.

    [experiment] is applied retroactively to the checkpointed prefix
    (exact in real arithmetic, within an ulp of a straight-through run in
    floats) and exactly to the remainder.  [experiments] does the same
    for a fused set, each experiment resuming from its own copy of the
    prefix accounting (exclusive with [experiment]).  [desc] must
    digest-match the description at capture ([Invalid_argument]
    otherwise).  [fuel] defaults to the fuel remaining at capture, so a
    resumed run exhausts at the same point as the uninterrupted one. *)
val resume :
  ?fuel:int ->
  ?trace:Epic_obs.Trace.t ->
  ?profile:Epic_obs.Profile.t ->
  ?experiment:Accounting.experiment ->
  ?experiments:Accounting.experiment list ->
  ?desc:Machine_desc.t ->
  Epic_ir.Program.t ->
  Epic_sched.Layout.t ->
  checkpoint ->
  int * string * t
