(** The Itanium-2-class machine simulator: executes scheduled,
    register-allocated code laid out in bundles, and accounts every cycle
    to one of the paper's nine categories (see {!Accounting}).

    Architectural semantics match the reference interpreter (predication,
    NaT deferral, sentinel and ALAT recovery); timing comes from the
    in-order six-issue pipeline, the scaled memory hierarchy, the branch
    predictor, the register stack engine and the OS page-walk model. *)

exception Machine_fault of string
exception Exit_program of int
exception Out_of_fuel

(** Retired-operation and event counters (the Pfmon counter set). *)
type counters = {
  mutable useful_ops : int;
      (** retired with a true qualifying predicate, non-nop *)
  mutable squashed_ops : int;  (** retired with a false qualifying predicate *)
  mutable nop_ops : int;  (** template nops fetched and retired *)
  mutable kernel_ops : int;  (** work executed in "kernel" mode *)
  mutable branches : int;
  mutable groups : int;  (** issue groups executed *)
  mutable wild_loads : int;
  mutable spec_loads : int;
  mutable chk_recoveries : int;
  mutable nat_consumed : int;
  mutable calls : int;
}

type reason = Rload | Rfload | Rlong

(** Per-invocation register state (see DESIGN.md on the per-frame
    simplification). *)
type frame

type dfunc
(** A function with its control flow predecoded against the layout:
    blocks in an array with their [Layout.block_layout] resolved and
    fall-through links wired, plus a label->block table (DESIGN.md §10).
    Built once per function in {!run}; purely a host-speed structure. *)

type t = {
  program : Epic_ir.Program.t;
  layout : Epic_sched.Layout.t;
  decoded : (string, dfunc) Hashtbl.t;
      (** per-function predecoded control flow, keyed by function name *)
  mem : Epic_ir.Memimage.t;
  mutable heap : int64;
  output : Buffer.t;
  input : int64 array;
  l1i : Cache.t;
  l1d : Cache.t;
  l2 : Cache.t;
  l3 : Cache.t;
  dtlb : Tlb.t;
  bp : Branch_pred.t;
  rse : Rse.t;
  desc : Machine_desc.t;  (** the machine description being simulated *)
  acc : Accounting.t;  (** the nine-way cycle accounting *)
  c : counters;
  mutable cycle : int;  (** the global clock *)
  mutable sb_work : int;
  mutable sb_last_cycle : int;
  mutable fuel : int;
  mutable cur_func : string;
  mutable cur_block : string;
  trace : Epic_obs.Trace.t option;
      (** event-trace sink; [None] (the default) records nothing and
          changes no counter or cycle *)
  prof : Epic_obs.Profile.t option;  (** PC-sampling profiler, opt-in *)
  mutable onat : bool;
      (** host-speed scratch (DESIGN.md §10): NaT bit of the last operand
          read, reported here instead of in a returned tuple *)
  mutable ld_extra : int;  (** scratch: cache penalty of the last load *)
  mutable cur_bins : float array;
      (** scratch: cached accounting bins of [cur_bins_for] *)
  mutable cur_bins_for : string;
      (** the name (physically) that [cur_bins] was fetched for *)
  syms : (string, int64) Hashtbl.t;  (** memoized symbol addresses *)
  mutable free_frames : frame list;
      (** pool of released call frames, cleared on reuse (DESIGN.md §10) *)
}

(** Run a laid-out program on the given input; returns (exit code, printed
    output, final machine state).  Output must equal the reference
    interpreter's on the same program and input.

    [trace] enables architectural event tracing (see {!Epic_obs.Trace});
    [profile] enables PC sampling (see {!Epic_obs.Profile}).  Both are off
    by default and, when off, leave every counter and cycle identical to a
    plain run.

    [experiment] installs a causal-profiling virtual speedup (see
    {!Accounting.experiment}): charges attributable to the target are
    scaled by [1 - speedup] while the clock and all architectural state
    evolve exactly as without it.  Omitted (or no-op), the accounting is
    bit-identical to a machine without the hook.

    [desc] selects the machine description to simulate; the default is the
    domain's current description ({!Epic_mach.Itanium.desc}), normally
    {!Machine_desc.itanium2}.  For a run to be meaningful the program must
    have been scheduled under the same description (the driver guarantees
    this by compiling inside [Itanium.with_desc] and passing the
    description along). *)
val run :
  ?fuel:int ->
  ?trace:Epic_obs.Trace.t ->
  ?profile:Epic_obs.Profile.t ->
  ?experiment:Accounting.experiment ->
  ?desc:Machine_desc.t ->
  Epic_ir.Program.t ->
  Epic_sched.Layout.t ->
  int64 array ->
  int * string * t
