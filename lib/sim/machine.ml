(* The Itanium-2-class machine simulator: executes scheduled, register-
   allocated code (issue groups laid out in bundles) and accounts every
   cycle to one of the paper's nine categories.  Architectural semantics
   match the high-level interpreter (predication, NaT deferral, speculation
   models); timing comes from the in-order six-issue pipeline, the scaled
   memory hierarchy, the branch predictor, the register stack engine and the
   OS page-walk model.

   Simplifications (documented in DESIGN.md): each frame has a private
   register file (parameters/returns carried by the call), wrong-path fetch
   is not modelled, and the fetch-decoupling buffer is ignored. *)

open Epic_ir
open Epic_mach
open Epic_sched

exception Machine_fault of string
exception Exit_program of int
exception Out_of_fuel

type counters = {
  mutable useful_ops : int; (* retired, qualifying predicate true, non-nop *)
  mutable squashed_ops : int; (* retired with false qualifying predicate *)
  mutable nop_ops : int; (* template nops fetched and retired *)
  mutable kernel_ops : int; (* dynamic work executed in "kernel" mode *)
  mutable branches : int; (* retired branch instructions *)
  mutable groups : int; (* issue groups executed *)
  mutable wild_loads : int;
  mutable spec_loads : int; (* speculative load executions *)
  mutable chk_recoveries : int;
  mutable nat_consumed : int;
  mutable calls : int;
}

let fresh_counters () =
  {
    useful_ops = 0;
    squashed_ops = 0;
    nop_ops = 0;
    kernel_ops = 0;
    branches = 0;
    groups = 0;
    wild_loads = 0;
    spec_loads = 0;
    chk_recoveries = 0;
    nat_consumed = 0;
    calls = 0;
  }

(* Stall reason attached to a not-yet-ready register. *)
type reason = Rload | Rfload | Rlong

type frame = {
  mutable func : Func.t; (* mutable so a pooled frame can be re-targeted *)
  ints : int64 array;
  nat : bool array;
  flts : float array;
  prds : bool array;
  iready : int array; (* global cycle at which the register's value is ready *)
  ireason : reason array;
  fready : int array;
  freason : reason array;
  alat : (int, int64 * int) Hashtbl.t; (* reg id -> (addr, bytes); flushed at calls *)
}

let fresh_frame (func : Func.t) =
  {
    func;
    ints = Array.make Reg.num_int 0L;
    nat = Array.make Reg.num_int false;
    flts = Array.make Reg.num_flt 0.;
    prds = Array.make Reg.num_prd false;
    iready = Array.make Reg.num_int 0;
    ireason = Array.make Reg.num_int Rload;
    fready = Array.make Reg.num_flt 0;
    freason = Array.make Reg.num_flt Rfload;
    alat = Hashtbl.create 8;
  }

(* Predecoded control flow (DESIGN.md §10): the layout's tuple-keyed
   hashtable and the function's block list are resolved once, before the
   first instruction executes, into per-function tables — so a taken branch
   is one string-keyed hash lookup and a fall-through is one pointer load,
   instead of a (func, label) tuple allocation + hash plus a linear
   [List.find_opt] scan per block exit.  Faults for blocks without layout
   (or layouts that fall off the end) are still raised only if the block is
   actually reached, preserving the lazy fault semantics. *)
type dblock = {
  db_block : Block.t;
  db_layout : Layout.block_layout option; (* None -> fault when executed *)
  mutable db_fall : dblock option; (* next block in layout order *)
}

type dfunc = {
  df_func : Func.t;
  df_blocks : dblock array; (* layout order; index 0 = entry *)
  df_by_label : (string, dblock) Hashtbl.t; (* first block per label *)
  (* one-entry memo for taken-branch resolution, keyed by the *physical*
     label string: a loop's back edge raises the same [Operand.Label]
     string every iteration, so the common case skips the hash lookup *)
  mutable df_hot_label : string;
  mutable df_hot_target : dblock option;
  (* register spans: 1 + the highest register id the function can touch,
     per bank, from scanning params, predicates, dests and sources (plus
     sp).  A pooled frame only needs clearing up to these; stall/ready
     state for Int, Brr and Prd classes lives in the integer bank, so
     [df_ispan] covers all three. *)
  df_ispan : int;
  df_fspan : int;
  df_pspan : int;
}

(* The span of registers [f] can touch (see [df_ispan] above). *)
let span_scan (f : Func.t) =
  let ispan = ref (Reg.sp.Reg.id + 1) in
  let fspan = ref 0 in
  let pspan = ref 0 in
  let see (r : Reg.t) =
    match r.Reg.cls with
    | Reg.Flt -> if r.Reg.id >= !fspan then fspan := r.Reg.id + 1
    | Reg.Prd ->
        if r.Reg.id >= !pspan then pspan := r.Reg.id + 1;
        if r.Reg.id >= !ispan then ispan := r.Reg.id + 1
    | _ -> if r.Reg.id >= !ispan then ispan := r.Reg.id + 1
  in
  List.iter see f.Func.params;
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          (match i.Instr.pred with Some p -> see p | None -> ());
          List.iter see i.Instr.dsts;
          List.iter
            (fun (o : Operand.t) ->
              match o with Operand.Reg r -> see r | _ -> ())
            i.Instr.srcs)
        b.Block.instrs)
    f.Func.blocks;
  (min !ispan Reg.num_int, min !fspan Reg.num_flt, min !pspan Reg.num_prd)

let decode_func (layout : Layout.t) (f : Func.t) =
  let dbs =
    Array.of_list
      (List.map
         (fun (b : Block.t) ->
           {
             db_block = b;
             db_layout = Layout.block_layout layout f.Func.name b.Block.label;
             db_fall = None;
           })
         f.Func.blocks)
  in
  let by_label = Hashtbl.create (max 8 (2 * Array.length dbs)) in
  Array.iteri
    (fun i db ->
      if i + 1 < Array.length dbs then db.db_fall <- Some dbs.(i + 1);
      if not (Hashtbl.mem by_label db.db_block.Block.label) then
        Hashtbl.add by_label db.db_block.Block.label db)
    dbs;
  let ispan, fspan, pspan = span_scan f in
  {
    df_func = f;
    df_blocks = dbs;
    df_by_label = by_label;
    df_hot_label = "\000"; (* sentinel: physically equal to no label *)
    df_hot_target = None;
    df_ispan = ispan;
    df_fspan = fspan;
    df_pspan = pspan;
  }

type t = {
  program : Program.t;
  layout : Layout.t;
  decoded : (string, dfunc) Hashtbl.t; (* function name -> decoded body *)
  mem : Memimage.t;
  mutable heap : int64;
  output : Buffer.t;
  input : int64 array;
  l1i : Cache.t;
  l1d : Cache.t;
  l2 : Cache.t;
  l3 : Cache.t;
  dtlb : Tlb.t;
  bp : Branch_pred.t;
  rse : Rse.t;
  desc : Machine_desc.t; (* the machine being simulated *)
  acc : Accounting.t;
  c : counters;
  mutable cycle : int;
  mutable sb_work : int; (* pending store-buffer drain work, in cycles *)
  mutable sb_last_cycle : int;
  mutable fuel : int;
  mutable cur_func : string; (* for per-function attribution *)
  mutable cur_block : string; (* for per-block sample attribution *)
  trace : Epic_obs.Trace.t option; (* event tracing; None = disabled, free *)
  prof : Epic_obs.Profile.t option; (* PC-sampling profiler *)
  (* Host-speed scratch state (DESIGN.md §10): operand evaluation reports
     the NaT bit and load penalties through these fields instead of
     returning tuples, so the per-instruction hot path allocates nothing. *)
  mutable onat : bool; (* NaT bit of the last operand/register read *)
  mutable ld_extra : int; (* cache penalty of the last [load_value] *)
  mutable cur_bins : float array; (* accounting bins of [cur_bins_for] *)
  mutable cur_bins_for : string; (* physically: the name [cur_bins] is for *)
  syms : (string, int64) Hashtbl.t; (* memoized symbol addresses *)
  mutable free_frames : frame list; (* frame pool: released call frames *)
}

let create ?(fuel = 400_000_000) ?trace ?profile ?experiment
    ?(desc = Itanium.desc ()) (program : Program.t) (layout : Layout.t)
    (input : int64 array) =
  Program.assign_addresses program;
  let mem = Memimage.create () in
  Memimage.load_program mem program;
  let decoded = Hashtbl.create 64 in
  List.iter
    (fun (f : Func.t) ->
      Hashtbl.replace decoded f.Func.name (decode_func layout f))
    program.Program.funcs;
  let geom (g : Machine_desc.cache_geom) = (g.Machine_desc.size, g.Machine_desc.line, g.Machine_desc.assoc) in
  let cache name g =
    let size, line, assoc = geom g in
    Cache.create ~name ~size ~line ~assoc
  in
  let acc = Accounting.create () in
  (* install the causal virtual-speedup experiment, if any, before the
     first charge; with [None] the accounting stays on its inactive fast
     path and the run is bit-identical to a pre-hook machine *)
  Accounting.set_experiment acc experiment;
  {
    program;
    layout;
    decoded;
    mem;
    heap = Program.heap_base;
    output = Buffer.create 256;
    input;
    l1i = cache "L1I" desc.Machine_desc.l1i;
    l1d = cache "L1D" desc.Machine_desc.l1d;
    l2 = cache "L2" desc.Machine_desc.l2;
    l3 = cache "L3" desc.Machine_desc.l3;
    dtlb = Tlb.create ~entries:desc.Machine_desc.dtlb_entries ();
    bp =
      Branch_pred.create ~bits:desc.Machine_desc.bp_bits
        ~history_bits:desc.Machine_desc.bp_history_bits ();
    rse =
      Rse.create ~physical:desc.Machine_desc.rse_physical
        ~cost_per_reg:desc.Machine_desc.rse_spill_cost_per_reg ();
    desc;
    acc;
    c = fresh_counters ();
    cycle = 0;
    sb_work = 0;
    sb_last_cycle = 0;
    fuel;
    cur_func = "main";
    cur_block = "entry";
    trace;
    prof = profile;
    onat = false;
    ld_extra = 0;
    cur_bins = [||];
    cur_bins_for = "\000"; (* sentinel: no function is named this *)
    syms = Hashtbl.create 32;
    free_frames = [];
  }

(* Charge [n] cycles to [cat].  Under a [perfect_*] idealization the
   targeted category is charged zero while the clock (advanced by the
   callers) and every model's state evolve exactly as on the baseline — so
   an idealized run differs from the baseline only in that one category. *)
let charge st cat n =
  if n > 0 then begin
    let suppressed =
      match cat with
      | Accounting.Front_end -> st.desc.Machine_desc.perfect_icache
      | Accounting.Br_mispredict -> st.desc.Machine_desc.perfect_predictor
      | _ -> false
    in
    if not suppressed then begin
      (* The bins of the charged function are cached keyed by the physical
         [cur_func] string; a miss (function change, or the same name via a
         different string) is one hash lookup, a hit is free.  Bins are
         still created only on the first positive charge, exactly as when
         every charge went through [Accounting.charge]. *)
      if not (st.cur_bins_for == st.cur_func) then begin
        st.cur_bins <- Accounting.bins st.acc st.cur_func;
        st.cur_bins_for <- st.cur_func
      end;
      Accounting.charge_bins st.acc st.cur_bins cat n
    end
  end

(* Frame pool (DESIGN.md §10): call frames are ~900 words of register
   state, so per-call allocation dominates GC traffic in call-heavy code.
   A released frame is cleared back to the all-zero state a fresh frame
   starts in — but only over the callee's register spans (every register
   the function can read, write, stall on or mark ready lies inside them)
   and only the fields a fresh frame guarantees: register values, NaT
   bits, predicate bits and ready times.  The reason arrays are only read
   under [ready > cycle], which a cleared ready time makes false. *)
let alloc_frame st (df : dfunc) (func : Func.t) =
  match st.free_frames with
  | [] -> fresh_frame func
  | fr :: tl ->
      st.free_frames <- tl;
      fr.func <- func;
      Array.fill fr.ints 0 df.df_ispan 0L;
      Array.fill fr.nat 0 df.df_ispan false;
      Array.fill fr.flts 0 df.df_fspan 0.;
      Array.fill fr.prds 0 df.df_pspan false;
      Array.fill fr.iready 0 df.df_ispan 0;
      Array.fill fr.fready 0 df.df_fspan 0;
      if Hashtbl.length fr.alat > 0 then Hashtbl.reset fr.alat;
      fr

let release_frame st (fr : frame) = st.free_frames <- fr :: st.free_frames

(* Emit a trace event (free when tracing is disabled, the default). *)
let emit st kind addr =
  match st.trace with
  | None -> ()
  | Some tr ->
      Epic_obs.Trace.record tr ~cycle:st.cycle ~kind ~func:st.cur_func ~addr

(* Attribute the sample points in the cycle interval since the last tick to
   the current function and block. *)
let sample_tick st =
  match st.prof with
  | None -> ()
  | Some p ->
      Epic_obs.Profile.tick p ~cycle:st.cycle ~func:st.cur_func ~block:st.cur_block

(* --- memory hierarchy ---------------------------------------------------- *)

(* Penalty cycles beyond the planned L1 latency for a data access. *)
let dcache_extra st (addr : int64) ~(is_float : bool) =
  let d = st.desc in
  if is_float then
    (* Itanium 2 keeps no FP data in L1D; FP loads are served from L2, and
       the compiler plans [float_load_latency] already *)
    if Cache.access st.l2 addr then 0
    else begin
      emit st Epic_obs.Trace.L2_miss addr;
      if Cache.access st.l3 addr then
        max 0 (d.Machine_desc.l3_latency - d.Machine_desc.float_load_latency)
      else d.Machine_desc.mem_latency - d.Machine_desc.float_load_latency
    end
  else if Cache.access st.l1d addr then 0
  else begin
    emit st Epic_obs.Trace.L1d_miss addr;
    if Cache.access st.l2 addr then d.Machine_desc.l2_latency - 1
    else begin
      emit st Epic_obs.Trace.L2_miss addr;
      if Cache.access st.l3 addr then d.Machine_desc.l3_latency - 1
      else d.Machine_desc.mem_latency
    end
  end

let icache_penalty st (addr : int64) =
  let d = st.desc in
  if Cache.access st.l1i addr then 0
  else begin
    emit st Epic_obs.Trace.L1i_miss addr;
    if Cache.access st.l2 addr then d.Machine_desc.l2_latency
    else begin
      emit st Epic_obs.Trace.L2_miss addr;
      if Cache.access st.l3 addr then d.Machine_desc.l3_latency
      else d.Machine_desc.mem_latency
    end
  end

(* DTLB lookup; returns extra cycles charged appropriately.  [spec] decides
   the policy on unmapped pages; returns [`Ok extra | `Nat extra]. *)
let translate st (addr : int64) (spec : Opcode.spec_kind) =
  if Tlb.lookup st.dtlb addr then `Ok 0
  else
    match Memimage.classify st.mem addr with
    | Memimage.Ok -> (
        match spec with
        | Opcode.Spec_sentinel ->
            (* early deferral: a DTLB miss defers rather than walking; the
               chk's recovery will perform the real access *)
            emit st Epic_obs.Trace.Nat_deferral addr;
            `Nat 0
        | Opcode.Nonspec | Opcode.Spec_general | Opcode.Spec_advanced ->
            Tlb.fill st.dtlb addr;
            emit st Epic_obs.Trace.Dtlb_walk addr;
            charge st Accounting.Micropipe st.desc.Machine_desc.vhpt_walk_cycles;
            st.cycle <- st.cycle + st.desc.Machine_desc.vhpt_walk_cycles;
            `Ok 0)
    | Memimage.Null_page -> (
        match spec with
        | Opcode.Nonspec | Opcode.Spec_advanced ->
            raise (Machine_fault (Printf.sprintf "NULL access 0x%Lx" addr))
        | _ ->
            (* architected NaT page: cheap *)
            emit st Epic_obs.Trace.Nat_deferral addr;
            charge st Accounting.Micropipe st.desc.Machine_desc.nat_page_cycles;
            st.cycle <- st.cycle + st.desc.Machine_desc.nat_page_cycles;
            `Nat 0)
    | Memimage.Unmapped -> (
        match spec with
        | Opcode.Nonspec | Opcode.Spec_advanced ->
            raise (Machine_fault (Printf.sprintf "unmapped access 0x%Lx" addr))
        | Opcode.Spec_general ->
            (* wild load: failed walk + uncached page-table query (kernel) *)
            emit st Epic_obs.Trace.Wild_load addr;
            st.c.wild_loads <- st.c.wild_loads + 1;
            st.c.kernel_ops <-
              st.c.kernel_ops + (st.desc.Machine_desc.wild_walk_cycles / 4);
            charge st Accounting.Kernel st.desc.Machine_desc.wild_walk_cycles;
            st.cycle <- st.cycle + st.desc.Machine_desc.wild_walk_cycles;
            `Nat 0
        | Opcode.Spec_sentinel ->
            emit st Epic_obs.Trace.Nat_deferral addr;
            `Nat 0)

(* --- register access ----------------------------------------------------- *)

let stall_on st (fr : frame) (r : Reg.t) =
  let ready, reason =
    match r.Reg.cls with
    | Reg.Flt -> (fr.fready.(r.Reg.id), fr.freason.(r.Reg.id))
    | _ -> (fr.iready.(r.Reg.id), fr.ireason.(r.Reg.id))
  in
  if ready > st.cycle then begin
    let n = ready - st.cycle in
    let cat =
      match reason with
      | Rload -> Accounting.Int_load_bubble
      | Rfload -> Accounting.Float_scoreboard
      | Rlong -> Accounting.Misc
    in
    charge st cat n;
    st.cycle <- ready
  end

(* Register and operand readers report the NaT bit through [st.onat]
   rather than in a returned tuple: with the value coming straight out of
   the frame's arrays, the integer hot path allocates nothing. *)
let read_int st fr (r : Reg.t) =
  stall_on st fr r;
  if r.Reg.id = 0 then begin
    st.onat <- false;
    0L
  end
  else begin
    st.onat <- fr.nat.(r.Reg.id);
    fr.ints.(r.Reg.id)
  end

let read_flt st fr (r : Reg.t) =
  stall_on st fr r;
  fr.flts.(r.Reg.id)

let read_prd st fr (r : Reg.t) =
  stall_on st fr r;
  if r.Reg.id = 0 then true else fr.prds.(r.Reg.id)

let write_int fr (r : Reg.t) (v : int64) (n : bool) =
  if r.Reg.id <> 0 then begin
    fr.ints.(r.Reg.id) <- v;
    fr.nat.(r.Reg.id) <- n
  end

let write_flt fr (r : Reg.t) (v : float) = fr.flts.(r.Reg.id) <- v
let write_prd fr (r : Reg.t) (v : bool) = if r.Reg.id <> 0 then fr.prds.(r.Reg.id) <- v

let mark_ready st fr (r : Reg.t) (extra : int) (reason : reason) =
  match r.Reg.cls with
  | Reg.Flt ->
      fr.fready.(r.Reg.id) <- st.cycle + extra;
      fr.freason.(r.Reg.id) <- reason
  | _ ->
      fr.iready.(r.Reg.id) <- st.cycle + extra;
      fr.ireason.(r.Reg.id) <- reason

(* Symbol addresses never change after [Program.assign_addresses], so they
   are resolved once and memoized — the seed scanned the globals list (and
   possibly the function list) on every reference. *)
let sym_address st (s : string) =
  match Hashtbl.find_opt st.syms s with
  | Some a -> a
  | None ->
      let a =
        match Program.find_global st.program s with
        | Some g -> g.Program.address
        | None -> Program.func_address st.program s
      in
      Hashtbl.add st.syms s a;
      a

(* Evaluate an integer-class operand; the NaT bit lands in [st.onat]. *)
let operand_int st fr (o : Operand.t) =
  match o with
  | Operand.Reg r -> (
      match r.Reg.cls with
      | Reg.Flt ->
          let v = Int64.of_float (read_flt st fr r) in
          st.onat <- false;
          v
      | Reg.Prd ->
          let v = if read_prd st fr r then 1L else 0L in
          st.onat <- false;
          v
      | _ -> read_int st fr r)
  | Operand.Imm i ->
      st.onat <- false;
      i
  | Operand.Fimm f ->
      st.onat <- false;
      Int64.of_float f
  | Operand.Label _ ->
      st.onat <- false;
      0L
  | Operand.Sym s ->
      st.onat <- false;
      sym_address st s

let operand_flt st fr (o : Operand.t) =
  match o with
  | Operand.Reg r -> (
      match r.Reg.cls with
      | Reg.Flt ->
          st.onat <- false;
          read_flt st fr r
      | _ ->
          (* [read_int] leaves the register's NaT bit in [st.onat] *)
          Int64.to_float (read_int st fr r))
  | Operand.Fimm f ->
      st.onat <- false;
      f
  | Operand.Imm i ->
      st.onat <- false;
      Int64.to_float i
  | _ ->
      st.onat <- false;
      0.

(* --- intrinsics ---------------------------------------------------------- *)

let do_intrinsic st (k : Intrinsics.kind) (args : (int64 * bool) list) =
  let geti n =
    match List.nth_opt args n with
    | Some (v, false) -> v
    | Some (_, true) ->
        st.c.nat_consumed <- st.c.nat_consumed + 1;
        0L
    | None -> 0L
  in
  let caller = st.cur_func in
  let caller_block = st.cur_block in
  (* settle samples owed to the caller before entering the pseudo-function *)
  sample_tick st;
  let pseudo = Intrinsics.(List.find (fun (_, k') -> k' = k) all) |> fst in
  st.cur_func <- pseudo;
  st.cur_block <- "<intrinsic>";
  let cost = Intrinsics.base_cost k in
  charge st Accounting.Unstalled cost;
  st.cycle <- st.cycle + cost;
  let results =
    match k with
    | Intrinsics.Print_int ->
        Buffer.add_string st.output (Int64.to_string (geti 0));
        Buffer.add_char st.output '\n';
        []
    | Intrinsics.Print_char ->
        Buffer.add_char st.output (Char.chr (Int64.to_int (geti 0) land 0xff));
        []
    | Intrinsics.Malloc ->
        let bytes = max 8 ((Int64.to_int (geti 0) + 15) / 16 * 16) in
        let addr = st.heap in
        st.heap <- Int64.add st.heap (Int64.of_int bytes);
        Memimage.map_range st.mem addr bytes;
        [ (addr, false) ]
    | Intrinsics.Input ->
        let i = Int64.to_int (geti 0) in
        if i >= 0 && i < Array.length st.input then [ (st.input.(i), false) ]
        else [ (0L, false) ]
    | Intrinsics.Input_len -> [ (Int64.of_int (Array.length st.input), false) ]
    | Intrinsics.Memcpy ->
        let dst = geti 0 and src = geti 1 and n = Int64.to_int (geti 2) in
        for i = 0 to n - 1 do
          let b = Memimage.read st.mem (Int64.add src (Int64.of_int i)) 1 in
          Memimage.write st.mem (Int64.add dst (Int64.of_int i)) 1 b
        done;
        (* cache traffic per touched line *)
        let lines = max 1 (n / 64) in
        for i = 0 to lines - 1 do
          let off = Int64.of_int (i * 64) in
          let e1 = dcache_extra st (Int64.add src off) ~is_float:false in
          let e2 = dcache_extra st (Int64.add dst off) ~is_float:false in
          let e = (e1 + e2) / 4 in
          charge st Accounting.Unstalled (1 + e);
          st.cycle <- st.cycle + 1 + e
        done;
        []
    | Intrinsics.Memset ->
        let dst = geti 0 and v = geti 1 and n = Int64.to_int (geti 2) in
        for i = 0 to n - 1 do
          Memimage.write st.mem (Int64.add dst (Int64.of_int i)) 1 v
        done;
        let lines = max 1 (n / 64) in
        for i = 0 to lines - 1 do
          let e = dcache_extra st (Int64.add dst (Int64.of_int (i * 64))) ~is_float:false in
          charge st Accounting.Unstalled (1 + (e / 4));
          st.cycle <- st.cycle + 1 + (e / 4)
        done;
        []
    | Intrinsics.Exit -> raise (Exit_program (Int64.to_int (geti 0)))
  in
  (* attribute the intrinsic's cycles to the pseudo-function, matching the
     per-function accounting bins *)
  sample_tick st;
  st.cur_func <- caller;
  st.cur_block <- caller_block;
  results

(* --- execution ----------------------------------------------------------- *)

exception Taken of string (* branch taken to label *)
exception Returned of (int64 * bool) list

let int_alu op (a : int64) (b : int64) =
  match op with
  | Opcode.Add -> Int64.add a b
  | Opcode.Sub -> Int64.sub a b
  | Opcode.Mul -> Int64.mul a b
  | Opcode.Div -> if Int64.equal b 0L then raise (Machine_fault "div by zero") else Int64.div a b
  | Opcode.Rem -> if Int64.equal b 0L then raise (Machine_fault "rem by zero") else Int64.rem a b
  | Opcode.And -> Int64.logand a b
  | Opcode.Or -> Int64.logor a b
  | Opcode.Xor -> Int64.logxor a b
  | Opcode.Shl -> Int64.shift_left a (Int64.to_int b land 63)
  | Opcode.Shr -> Int64.shift_right_logical a (Int64.to_int b land 63)
  | Opcode.Sra -> Int64.shift_right a (Int64.to_int b land 63)
  | _ -> invalid_arg "int_alu"

let flt_alu op (a : float) (b : float) =
  match op with
  | Opcode.Fadd -> a +. b
  | Opcode.Fsub -> a -. b
  | Opcode.Fmul -> a *. b
  | Opcode.Fdiv -> a /. b
  | _ -> invalid_arg "flt_alu"

(* Perform a load's data access (translation already done, result Ok);
   returns the raw bits, with the cache penalty left in [st.ld_extra]. *)
let load_value st (addr : int64) (sz : Opcode.size) ~(is_float : bool) =
  st.ld_extra <- dcache_extra st addr ~is_float;
  Memimage.read st.mem addr (Opcode.size_bytes sz)

(* Evaluate a compare's two sources and the condition, encoded without
   allocation: -1 = deferred (a NaT input), 0 = false, 1 = true.  The
   second source is evaluated before the first, preserving the register
   stall (and hence cycle-accounting) order of the seed's tuple build. *)
let cmp_result st fr ~(fcmp : bool) cond (i : Instr.t) =
  match i.Instr.srcs with
  | [ a; b ] ->
      if fcmp then begin
        let y = operand_flt st fr b in
        let ny = st.onat in
        let x = operand_flt st fr a in
        if st.onat || ny then -1
        else if Opcode.eval_fcmp cond x y then 1
        else 0
      end
      else begin
        let y = operand_int st fr b in
        let ny = st.onat in
        let x = operand_int st fr a in
        if st.onat || ny then -1
        else if Opcode.eval_icmp cond x y then 1
        else 0
      end
  | _ -> raise (Machine_fault "cmp arity")

let drain_store_buffer st =
  let elapsed = st.cycle - st.sb_last_cycle in
  st.sb_last_cycle <- st.cycle;
  st.sb_work <- max 0 (st.sb_work - elapsed)

(* Bind call arguments to the callee's parameter registers (missing
   arguments leave the fresh-frame zeros in place), and call results to the
   caller's destination registers (missing results read as 0/false) — as
   parallel walks, not the seed's quadratic [List.nth_opt] per element. *)
let rec bind_params fr (params : Reg.t list) (args : (int64 * bool) list) =
  match (params, args) with
  | [], _ | _, [] -> ()
  | p :: ps, (v, na) :: tl ->
      if p.Reg.cls = Reg.Flt then write_flt fr p (Int64.float_of_bits v)
      else write_int fr p v na;
      bind_params fr ps tl

let rec bind_results fr (dsts : Reg.t list) (results : (int64 * bool) list) =
  match (dsts, results) with
  | [], _ -> ()
  | d :: ds, (v, na) :: tl ->
      (if d.Reg.cls = Reg.Flt then write_flt fr d (Int64.float_of_bits v)
       else write_int fr d v na);
      bind_results fr ds tl
  | d :: ds, [] ->
      (if d.Reg.cls = Reg.Flt then write_flt fr d (Int64.float_of_bits 0L)
       else write_int fr d 0L false);
      bind_results fr ds []

(* Execute one instruction.  Raises [Taken l] for a taken branch,
   [Returned vs] for a return. *)
let rec exec_instr st (fr : frame) (i : Instr.t) =
  if st.fuel <= 0 then raise Out_of_fuel;
  st.fuel <- st.fuel - 1;
  let guard =
    match i.Instr.pred with None -> true | Some p -> read_prd st fr p
  in
  match i.Instr.op with
  | Opcode.Cmp (cond, ct) | Opcode.Fcmp (cond, ct) -> (
      let fcmp = match i.Instr.op with Opcode.Fcmp _ -> true | _ -> false in
      match i.Instr.dsts with
      | [ pt; pf ] -> (
          st.c.useful_ops <- st.c.useful_ops + 1;
          match ct with
          | Opcode.Norm ->
              if guard then (
                match cmp_result st fr ~fcmp cond i with
                | -1 ->
                    write_prd fr pt false;
                    write_prd fr pf false
                | r ->
                    write_prd fr pt (r = 1);
                    write_prd fr pf (r = 0))
          | Opcode.Unc ->
              write_prd fr pt false;
              write_prd fr pf false;
              if guard then (
                match cmp_result st fr ~fcmp cond i with
                | -1 -> ()
                | r ->
                    write_prd fr pt (r = 1);
                    write_prd fr pf (r = 0))
          | Opcode.Orform ->
              if guard then (
                match cmp_result st fr ~fcmp cond i with
                | 1 ->
                    write_prd fr pt true;
                    write_prd fr pf true
                | _ -> ()))
      | _ -> raise (Machine_fault "cmp without two dests"))
  | _ when not guard -> (
      st.c.squashed_ops <- st.c.squashed_ops + 1;
      (* pattern match rather than [=]: Opcode.t has parameterized
         constructors, so [=] would be a generic structural compare *)
      match i.Instr.op with
      | Opcode.Br ->
          st.c.branches <- st.c.branches + 1;
          let correct = Branch_pred.predict_and_update st.bp i.Instr.id false in
          if not correct then begin
            emit st Epic_obs.Trace.Br_mispredict (Int64.of_int i.Instr.id);
            charge st Accounting.Br_mispredict
              st.desc.Machine_desc.branch_mispredict_penalty;
            st.cycle <- st.cycle + st.desc.Machine_desc.branch_mispredict_penalty
          end
      | _ -> ())
  | Opcode.Add | Opcode.Sub | Opcode.Mul | Opcode.Div | Opcode.Rem
  | Opcode.And | Opcode.Or | Opcode.Xor | Opcode.Shl | Opcode.Shr | Opcode.Sra
    -> (
      match (i.Instr.dsts, i.Instr.srcs) with
      | [ d ], [ a; b ] ->
          st.c.useful_ops <- st.c.useful_ops + 1;
          let va = operand_int st fr a in
          let na = st.onat in
          let vb = operand_int st fr b in
          let nb = st.onat in
          if na || nb then write_int fr d 0L true
          else begin
            (match int_alu i.Instr.op va vb with
            | v -> write_int fr d v false
            | exception Machine_fault _ when i.Instr.attrs.Instr.speculated ->
                (* a speculated divide by zero defers instead of faulting *)
                write_int fr d 0L true);
            match i.Instr.op with
            | Opcode.Div | Opcode.Rem -> mark_ready st fr d 4 Rlong
            | _ -> ()
          end
      | _ -> raise (Machine_fault "bad ALU"))
  | Opcode.Fadd | Opcode.Fsub | Opcode.Fmul | Opcode.Fdiv -> (
      match (i.Instr.dsts, i.Instr.srcs) with
      | [ d ], [ a; b ] ->
          st.c.useful_ops <- st.c.useful_ops + 1;
          let va = operand_flt st fr a in
          let vb = operand_flt st fr b in
          write_flt fr d (flt_alu i.Instr.op va vb);
          (match i.Instr.op with
          | Opcode.Fdiv -> mark_ready st fr d 8 Rfload
          | _ -> ())
      | _ -> raise (Machine_fault "bad FP op"))
  | Opcode.Fneg -> (
      match (i.Instr.dsts, i.Instr.srcs) with
      | [ d ], [ a ] ->
          st.c.useful_ops <- st.c.useful_ops + 1;
          write_flt fr d (-.operand_flt st fr a)
      | _ -> raise (Machine_fault "bad fneg"))
  | Opcode.Cvt_fi -> (
      match (i.Instr.dsts, i.Instr.srcs) with
      | [ d ], [ a ] ->
          st.c.useful_ops <- st.c.useful_ops + 1;
          let v = operand_flt st fr a in
          write_int fr d (Int64.of_float v) st.onat
      | _ -> raise (Machine_fault "bad cvt.fi"))
  | Opcode.Cvt_if -> (
      match (i.Instr.dsts, i.Instr.srcs) with
      | [ d ], [ a ] ->
          st.c.useful_ops <- st.c.useful_ops + 1;
          write_flt fr d (Int64.to_float (operand_int st fr a))
      | _ -> raise (Machine_fault "bad cvt.if"))
  | Opcode.Mov | Opcode.Sxt _ -> (
      match (i.Instr.dsts, i.Instr.srcs) with
      | [ d ], [ a ] ->
          st.c.useful_ops <- st.c.useful_ops + 1;
          if d.Reg.cls = Reg.Flt then write_flt fr d (operand_flt st fr a)
          else begin
            let v = operand_int st fr a in
            let n = st.onat in
            let v =
              match i.Instr.op with
              | Opcode.Sxt sz ->
                  let bits = 8 * Opcode.size_bytes sz in
                  Int64.shift_right (Int64.shift_left v (64 - bits)) (64 - bits)
              | _ -> v
            in
            write_int fr d v n
          end
      | _ -> raise (Machine_fault "bad mov"))
  | Opcode.Lea -> (
      match (i.Instr.dsts, i.Instr.srcs) with
      | [ d ], [ base; off ] ->
          st.c.useful_ops <- st.c.useful_ops + 1;
          let vb = operand_int st fr base in
          let vo = operand_int st fr off in
          write_int fr d (Int64.add vb vo) false
      | _ -> raise (Machine_fault "bad lea"))
  | Opcode.Ld (sz, spec) -> (
      match (i.Instr.dsts, i.Instr.srcs) with
      | [ d ], [ a ] -> (
          st.c.useful_ops <- st.c.useful_ops + 1;
          if spec <> Opcode.Nonspec then st.c.spec_loads <- st.c.spec_loads + 1;
          let addr = operand_int st fr a in
          let na = st.onat in
          if spec <> Opcode.Nonspec then emit st Epic_obs.Trace.Spec_load addr;
          if na then begin
            (* NaT address: propagate deferral *)
            if spec = Opcode.Nonspec then st.c.nat_consumed <- st.c.nat_consumed + 1;
            write_int fr d 0L true
          end
          else
            match translate st addr spec with
            | `Nat extra ->
                st.cycle <- st.cycle + extra;
                write_int fr d 0L true
            | `Ok _ ->
                if spec = Opcode.Spec_advanced then
                  Hashtbl.replace fr.alat d.Reg.id (addr, Opcode.size_bytes sz);
                let is_float = d.Reg.cls = Reg.Flt in
                let raw = load_value st addr sz ~is_float in
                let extra = st.ld_extra in
                if is_float then begin
                  write_flt fr d (Int64.float_of_bits raw);
                  if extra > 0 then mark_ready st fr d extra Rfload
                end
                else begin
                  write_int fr d raw false;
                  if extra > 0 then mark_ready st fr d extra Rload
                end)
      | _ -> raise (Machine_fault "bad load"))
  | Opcode.St sz -> (
      match i.Instr.srcs with
      | [ a; v ] -> (
          st.c.useful_ops <- st.c.useful_ops + 1;
          let addr = operand_int st fr a in
          let na = st.onat in
          let data =
            match v with
            | Operand.Reg r when r.Reg.cls = Reg.Flt ->
                let d = Int64.bits_of_float (read_flt st fr r) in
                st.onat <- false;
                d
            | Operand.Fimm fv ->
                st.onat <- false;
                Int64.bits_of_float fv
            | _ -> operand_int st fr v
          in
          let nv = st.onat in
          if na || nv then begin
            st.c.nat_consumed <- st.c.nat_consumed + 1;
            charge st Accounting.Misc 2
          end
          else
            match translate st addr Opcode.Nonspec with
            | `Ok _ ->
                (* ALAT snoop: stores invalidate overlapping advanced loads.
                   The table is empty in the common case (no advanced load in
                   flight), so check the size first; otherwise drop stale
                   entries in place, with no intermediate list. *)
                if Hashtbl.length fr.alat > 0 then begin
                  let bytes = Opcode.size_bytes sz in
                  Hashtbl.filter_map_inplace
                    (fun _rid ((a, n) as e) ->
                      let lo = max (Int64.to_int a) (Int64.to_int addr) in
                      let hi = min (Int64.to_int a + n) (Int64.to_int addr + bytes) in
                      if lo < hi then None else Some e)
                    fr.alat
                end;
                Memimage.write st.mem addr (Opcode.size_bytes sz) data;
                drain_store_buffer st;
                let extra = dcache_extra st addr ~is_float:false in
                if extra > 0 then begin
                  st.sb_work <- st.sb_work + 3;
                  if st.sb_work > 24 then begin
                    let over = st.sb_work - 24 in
                    charge st Accounting.Micropipe over;
                    st.cycle <- st.cycle + over;
                    st.sb_work <- 24
                  end
                end
            | `Nat _ -> raise (Machine_fault "store deferred (impossible)"))
      | _ -> raise (Machine_fault "bad store"))
  | Opcode.Chk sz -> (
      match i.Instr.srcs with
      | [ Operand.Reg r; a ] ->
          st.c.useful_ops <- st.c.useful_ops + 1;
          stall_on st fr r;
          let is_nat =
            match r.Reg.cls with Reg.Flt -> false | _ -> fr.nat.(r.Reg.id)
          in
          if is_nat then begin
            (* recovery: pipeline redirect + non-speculative reload *)
            st.c.chk_recoveries <- st.c.chk_recoveries + 1;
            charge st Accounting.Misc st.desc.Machine_desc.chk_recovery_penalty;
            st.cycle <- st.cycle + st.desc.Machine_desc.chk_recovery_penalty;
            let addr = operand_int st fr a in
            emit st Epic_obs.Trace.Chk_recovery addr;
            if st.onat then raise (Machine_fault "chk recovery with NaT address")
            else
              match translate st addr Opcode.Nonspec with
              | `Ok _ ->
                  let raw = load_value st addr sz ~is_float:(r.Reg.cls = Reg.Flt) in
                  if r.Reg.cls = Reg.Flt then write_flt fr r (Int64.float_of_bits raw)
                  else write_int fr r raw false;
                  if st.ld_extra > 0 then mark_ready st fr r st.ld_extra Rload
              | `Nat _ -> assert false
          end
      | _ -> raise (Machine_fault "bad chk"))
  | Opcode.Chka sz -> (
      match i.Instr.srcs with
      | [ Operand.Reg r; a ] ->
          st.c.useful_ops <- st.c.useful_ops + 1;
          stall_on st fr r;
          if not (Hashtbl.mem fr.alat r.Reg.id) then begin
            (* the entry was invalidated: redirect + non-speculative reload *)
            st.c.chk_recoveries <- st.c.chk_recoveries + 1;
            charge st Accounting.Misc st.desc.Machine_desc.chk_recovery_penalty;
            st.cycle <- st.cycle + st.desc.Machine_desc.chk_recovery_penalty;
            let addr = operand_int st fr a in
            emit st Epic_obs.Trace.Chk_recovery addr;
            if st.onat then raise (Machine_fault "chk.a recovery with NaT address")
            else
              match translate st addr Opcode.Nonspec with
              | `Ok _ ->
                  let raw = load_value st addr sz ~is_float:(r.Reg.cls = Reg.Flt) in
                  if r.Reg.cls = Reg.Flt then write_flt fr r (Int64.float_of_bits raw)
                  else write_int fr r raw false;
                  if st.ld_extra > 0 then mark_ready st fr r st.ld_extra Rload
              | `Nat _ -> assert false
          end
      | _ -> raise (Machine_fault "bad chk.a"))
  | Opcode.Br -> (
      st.c.useful_ops <- st.c.useful_ops + 1;
      st.c.branches <- st.c.branches + 1;
      match i.Instr.srcs with
      | [ Operand.Label l ] ->
          (match i.Instr.pred with
          | None -> Branch_pred.record_unconditional st.bp
          | Some _ ->
              (* conditional, and the guard was true (we are here) *)
              let correct = Branch_pred.predict_and_update st.bp i.Instr.id true in
              if not correct then begin
                emit st Epic_obs.Trace.Br_mispredict (Int64.of_int i.Instr.id);
                charge st Accounting.Br_mispredict
                  st.desc.Machine_desc.branch_mispredict_penalty;
                st.cycle <- st.cycle + st.desc.Machine_desc.branch_mispredict_penalty
              end);
          raise (Taken l)
      | _ -> raise (Machine_fault "bad br"))
  | Opcode.Br_call -> (
      st.c.useful_ops <- st.c.useful_ops + 1;
      st.c.branches <- st.c.branches + 1;
      st.c.calls <- st.c.calls + 1;
      Branch_pred.record_unconditional st.bp;
      match i.Instr.srcs with
      | target :: args ->
          let argv =
            List.map
              (fun (o : Operand.t) ->
                match o with
                | Operand.Reg r when r.Reg.cls = Reg.Flt ->
                    (Int64.bits_of_float (read_flt st fr r), false)
                | Operand.Fimm fv -> (Int64.bits_of_float fv, false)
                | _ ->
                    let v = operand_int st fr o in
                    (v, st.onat))
              args
          in
          let fname =
            match target with
            | Operand.Sym s -> s
            | Operand.Reg r -> (
                let addr = read_int st fr r in
                if st.onat then raise (Machine_fault "indirect call through NaT")
                else
                  match Program.func_at_address st.program addr with
                  | Some s -> s
                  | None -> raise (Machine_fault (Printf.sprintf "indirect call to 0x%Lx" addr)))
            | _ -> raise (Machine_fault "bad call target")
          in
          (* the ALAT is flushed at calls; skip the reset (which allocates
             a fresh bucket array) when it is already empty *)
          if Hashtbl.length fr.alat > 0 then Hashtbl.reset fr.alat;
          let results = exec_call st fr fname argv in
          bind_results fr i.Instr.dsts results
      | [] -> raise (Machine_fault "bad call"))
  | Opcode.Br_ret ->
      st.c.useful_ops <- st.c.useful_ops + 1;
      st.c.branches <- st.c.branches + 1;
      Branch_pred.record_unconditional st.bp;
      let vals =
        List.map
          (fun (o : Operand.t) ->
            match o with
            | Operand.Reg r when r.Reg.cls = Reg.Flt ->
                (Int64.bits_of_float (read_flt st fr r), false)
            | Operand.Fimm fv -> (Int64.bits_of_float fv, false)
            | _ ->
                let v = operand_int st fr o in
                (v, st.onat))
          i.Instr.srcs
      in
      raise (Returned vals)
  | Opcode.Alloc | Opcode.Nop -> st.c.useful_ops <- st.c.useful_ops + 1

(* Execute one function invocation (sp inherited via the call). *)
and exec_call st (caller_fr : frame) (fname : string) (args : (int64 * bool) list) =
  match Intrinsics.of_name fname with
  | Some k -> do_intrinsic st k args
  | None ->
      let f = Program.find_func_exn st.program fname in
      let df =
        match Hashtbl.find_opt st.decoded fname with
        | Some df -> df
        | None ->
            (* a function registered after [create]; decode on first call *)
            let df = decode_func st.layout f in
            Hashtbl.replace st.decoded fname df;
            df
      in
      charge st Accounting.Unstalled st.desc.Machine_desc.call_overhead;
      st.cycle <- st.cycle + st.desc.Machine_desc.call_overhead;
      (* RSE push *)
      let spill_cycles = Rse.on_call st.rse (max 1 f.Func.n_stacked) in
      if spill_cycles > 0 then begin
        emit st Epic_obs.Trace.Rse_spill 0L;
        charge st Accounting.Rse spill_cycles;
        st.cycle <- st.cycle + spill_cycles
      end;
      (* settle samples owed to the caller before attribution switches *)
      sample_tick st;
      let fr = alloc_frame st df f in
      bind_params fr f.Func.params args;
      fr.ints.(Reg.sp.Reg.id) <- caller_fr.ints.(Reg.sp.Reg.id);
      let saved_func = st.cur_func in
      let saved_block = st.cur_block in
      st.cur_func <- fname;
      (* [Func.entry] both checks non-emptiness (same fault as before) and
         is, by construction, the block decoded at index 0 *)
      ignore (Func.entry f);
      let result =
        try
          exec_blocks st fr df df.df_blocks.(0);
          []
        with Returned vs -> vs
      in
      release_frame st fr;
      (* settle samples owed to the callee before attribution reverts *)
      sample_tick st;
      st.cur_func <- saved_func;
      st.cur_block <- saved_block;
      charge st Accounting.Unstalled st.desc.Machine_desc.return_overhead;
      st.cycle <- st.cycle + st.desc.Machine_desc.return_overhead;
      let fill_cycles = Rse.on_return st.rse in
      if fill_cycles > 0 then begin
        emit st Epic_obs.Trace.Rse_fill 0L;
        charge st Accounting.Rse fill_cycles;
        st.cycle <- st.cycle + fill_cycles
      end;
      result

(* Execute a group's instruction list; a top-level walker rather than a
   [List.iter] closure so the per-group hot path allocates nothing. *)
and exec_instrs st fr = function
  | [] -> ()
  | i :: tl ->
      exec_instr st fr i;
      exec_instrs st fr tl

(* Execute from [block] until return, navigating the predecoded tables.
   The walk is a loop over a mutable current block (no per-block state is
   allocated); it terminates only by exception ([Returned] for the normal
   return path, or a fault). *)
and exec_blocks st (fr : frame) (df : dfunc) (block : dblock) =
  let f = fr.func in
  let cur = ref block in
  while true do
    let db = !cur in
    let b = db.db_block in
    match db.db_layout with
    | None -> raise (Machine_fault ("no layout for block " ^ b.Block.label))
    | Some bl ->
        st.cur_block <- b.Block.label;
        let next =
          try
            let groups = bl.Layout.groups in
            for gi = 0 to Array.length groups - 1 do
              let g = groups.(gi) in
              st.c.groups <- st.c.groups + 1;
              (* fetch: one access per [bundles_per_cycle]-bundle chunk
                 (32 bytes on itanium2) of the group's bundles *)
              let bpc = st.desc.Machine_desc.bundles_per_cycle in
              let chunks = max 1 ((g.Layout.n_bundles + bpc - 1) / bpc) in
              for k = 0 to chunks - 1 do
                (* k = 0 (almost always the only chunk) reuses the group's
                   address box instead of re-adding an offset of zero *)
                let addr =
                  if k = 0 then g.Layout.addr
                  else Int64.add g.Layout.addr (Int64.of_int (k * bpc * 16))
                in
                let pen = icache_penalty st addr in
                if pen > 0 then begin
                  charge st Accounting.Front_end pen;
                  st.cycle <- st.cycle + pen
                end
              done;
              st.c.nop_ops <- st.c.nop_ops + g.Layout.n_nops;
              (* issue: one cycle per fetch chunk *)
              charge st Accounting.Unstalled chunks;
              st.cycle <- st.cycle + chunks;
              exec_instrs st fr g.Layout.instrs;
              (* sampling attribution point: this group's cycles (issue,
                 stalls, penalties) belong to the current block *)
              sample_tick st
            done;
            (* fall through *)
            (match db.db_fall with
            | Some ndb -> ndb
            | None ->
                raise (Machine_fault (f.Func.name ^ ": fell off " ^ b.Block.label)))
          with Taken l -> (
            sample_tick st;
            let tgt =
              if l == df.df_hot_label then df.df_hot_target
              else begin
                let t = Hashtbl.find_opt df.df_by_label l in
                df.df_hot_label <- l;
                df.df_hot_target <- t;
                t
              end
            in
            match tgt with
            | Some ndb -> ndb
            | None -> raise (Machine_fault ("branch to unknown label " ^ l)))
        in
        cur := next
  done

(* Run a whole program; returns (exit code, output, state). *)
let run ?fuel ?trace ?profile ?experiment ?desc (p : Program.t)
    (layout : Layout.t) (input : int64 array) =
  let st = create ?fuel ?trace ?profile ?experiment ?desc p layout input in
  let main_fr = fresh_frame (Program.find_func_exn p p.Program.entry) in
  main_fr.ints.(Reg.sp.Reg.id) <- Int64.sub Program.stack_top 128L;
  let code =
    try
      match exec_call st main_fr p.Program.entry [] with
      | (v, _) :: _ -> Int64.to_int v
      | [] -> 0
    with Exit_program c -> c
  in
  (* settle any samples still owed to the last attribution point *)
  sample_tick st;
  (code, Buffer.contents st.output, st)
