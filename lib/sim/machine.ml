(* The Itanium-2-class machine simulator: executes scheduled, register-
   allocated code (issue groups laid out in bundles) and accounts every
   cycle to one of the paper's nine categories.  Architectural semantics
   match the high-level interpreter (predication, NaT deferral, speculation
   models); timing comes from the in-order six-issue pipeline, the scaled
   memory hierarchy, the branch predictor, the register stack engine and the
   OS page-walk model.

   Simplifications (documented in DESIGN.md): each frame has a private
   register file (parameters/returns carried by the call), wrong-path fetch
   is not modelled, and the fetch-decoupling buffer is ignored. *)

open Epic_ir
open Epic_mach
open Epic_sched

exception Machine_fault of string
exception Exit_program of int
exception Out_of_fuel

let warm_filter_size = 256

type counters = {
  mutable useful_ops : int; (* retired, qualifying predicate true, non-nop *)
  mutable squashed_ops : int; (* retired with false qualifying predicate *)
  mutable nop_ops : int; (* template nops fetched and retired *)
  mutable kernel_ops : int; (* dynamic work executed in "kernel" mode *)
  mutable branches : int; (* retired branch instructions *)
  mutable groups : int; (* issue groups executed *)
  mutable wild_loads : int;
  mutable spec_loads : int; (* speculative load executions *)
  mutable chk_recoveries : int;
  mutable nat_consumed : int;
  mutable calls : int;
}

let fresh_counters () =
  {
    useful_ops = 0;
    squashed_ops = 0;
    nop_ops = 0;
    kernel_ops = 0;
    branches = 0;
    groups = 0;
    wild_loads = 0;
    spec_loads = 0;
    chk_recoveries = 0;
    nat_consumed = 0;
    calls = 0;
  }

(* Stall reason attached to a not-yet-ready register. *)
type reason = Rload | Rfload | Rlong

type frame = {
  mutable func : Func.t; (* mutable so a pooled frame can be re-targeted *)
  ints : int64 array;
  nat : bool array;
  flts : float array;
  prds : bool array;
  iready : int array; (* global cycle at which the register's value is ready *)
  ireason : reason array;
  fready : int array;
  freason : reason array;
  alat : (int, int64 * int) Hashtbl.t; (* reg id -> (addr, bytes); flushed at calls *)
}

let fresh_frame (func : Func.t) =
  {
    func;
    ints = Array.make Reg.num_int 0L;
    nat = Array.make Reg.num_int false;
    flts = Array.make Reg.num_flt 0.;
    prds = Array.make Reg.num_prd false;
    iready = Array.make Reg.num_int 0;
    ireason = Array.make Reg.num_int Rload;
    fready = Array.make Reg.num_flt 0;
    freason = Array.make Reg.num_flt Rfload;
    alat = Hashtbl.create 8;
  }

(* Predecoded control flow (DESIGN.md §10): the layout's tuple-keyed
   hashtable and the function's block list are resolved once, before the
   first instruction executes, into per-function tables — so a taken branch
   is one string-keyed hash lookup and a fall-through is one pointer load,
   instead of a (func, label) tuple allocation + hash plus a linear
   [List.find_opt] scan per block exit.  Faults for blocks without layout
   (or layouts that fall off the end) are still raised only if the block is
   actually reached, preserving the lazy fault semantics. *)
type dblock = {
  db_block : Block.t;
  db_index : int; (* position in [df_blocks]: the checkpoint coordinate *)
  db_layout : Layout.block_layout option; (* None -> fault when executed *)
  mutable db_fall : dblock option; (* next block in layout order *)
  (* closure-compiled warm-phase code, one compiled group per issue group;
     built on the block's first warm execution (see [compile_warm]) *)
  mutable db_warm : wgroup array option;
}

and dfunc = {
  df_func : Func.t;
  df_blocks : dblock array; (* layout order; index 0 = entry *)
  df_by_label : (string, dblock) Hashtbl.t; (* first block per label *)
  (* one-entry memo for taken-branch resolution, keyed by the *physical*
     label string: a loop's back edge raises the same [Operand.Label]
     string every iteration, so the common case skips the hash lookup *)
  mutable df_hot_label : string;
  mutable df_hot_target : dblock option;
  (* register spans: 1 + the highest register id the function can touch,
     per bank, from scanning params, predicates, dests and sources (plus
     sp).  A pooled frame only needs clearing up to these; stall/ready
     state for Int, Brr and Prd classes lives in the integer bank, so
     [df_ispan] covers all three. *)
  df_ispan : int;
  df_fspan : int;
  df_pspan : int;
}

(* --- checkpoints ----------------------------------------------------------
   A checkpoint is a *positional*, fully deep-copied snapshot of the
   machine between two issue groups: register frames, memory image, cache/
   TLB/predictor/RSE arrays, accounting and counters, plus the call stack
   as (function name, block index, group index, instrs-after-call count)
   coordinates.  It holds no pointers into the program, layout or decoded
   tables, so it can be resumed against any structurally identical compile
   of the same source (the session cache keys guarantee exactly that), and
   one checkpoint can seed any number of resumed runs. *)

(* A call that is live at capture time: where in the *caller* to continue
   when the callee returns.  [pk_rest] counts the instructions after the
   call in its issue group (the call's own position is derived from it). *)
and pending = {
  pk_fr : frame; (* the caller's live frame (deep-copied at capture) *)
  pk_blk : int;
  pk_gi : int;
  pk_rest : int;
}

and ck_frame = {
  kf_func : string;
  kf_ints : int64 array;
  kf_nat : bool array;
  kf_flts : float array;
  kf_prds : bool array;
  kf_iready : int array;
  kf_ireason : reason array;
  kf_fready : int array;
  kf_freason : reason array;
  kf_alat : (int * (int64 * int)) list;
}

(* One stack entry, outermost first in [ck_calls]; [ke_rest = -1] marks
   the innermost (running) invocation, which resumes at group [ke_gi]
   rather than after a call inside it. *)
and ck_entry = {
  ke_frame : ck_frame;
  ke_blk : int;
  ke_gi : int;
  ke_rest : int;
}

and checkpoint = {
  ck_desc_digest : string; (* guards resume against a mismatched machine *)
  ck_groups : int; (* the groups counter at capture = the position *)
  ck_cycle : int;
  ck_sb_work : int;
  ck_sb_last_cycle : int;
  ck_fuel : int; (* remaining fuel, so resumed runs exhaust identically *)
  ck_heap : int64;
  ck_output : string;
  ck_input : int64 array;
  ck_counters : counters; (* a private copy *)
  ck_mem : Memimage.t; (* private deep copies, never mutated after capture *)
  ck_l1i : Cache.t;
  ck_l1d : Cache.t;
  ck_l2 : Cache.t;
  ck_l3 : Cache.t;
  ck_dtlb : Tlb.t;
  ck_bp : Branch_pred.t;
  ck_rse : Rse.t;
  ck_acc : Accounting.t;
  ck_calls : ck_entry list; (* outermost first; last entry is innermost *)
}

and t = {
  program : Program.t;
  layout : Layout.t;
  decoded : (string, dfunc) Hashtbl.t; (* function name -> decoded body *)
  mem : Memimage.t;
  mutable heap : int64;
  output : Buffer.t;
  input : int64 array;
  l1i : Cache.t;
  l1d : Cache.t;
  l2 : Cache.t;
  l3 : Cache.t;
  dtlb : Tlb.t;
  bp : Branch_pred.t;
  rse : Rse.t;
  desc : Machine_desc.t; (* the machine being simulated *)
  acc : Accounting.t;
  c : counters;
  mutable cycle : int;
  mutable sb_work : int; (* pending store-buffer drain work, in cycles *)
  mutable sb_last_cycle : int;
  mutable fuel : int;
  mutable cur_func : string; (* for per-function attribution *)
  mutable cur_block : string; (* for per-block sample attribution *)
  trace : Epic_obs.Trace.t option; (* event tracing; None = disabled, free *)
  prof : Epic_obs.Profile.t option; (* PC-sampling profiler *)
  (* Host-speed scratch state (DESIGN.md §10): operand evaluation reports
     the NaT bit and load penalties through these fields instead of
     returning tuples, so the per-instruction hot path allocates nothing. *)
  mutable onat : bool; (* NaT bit of the last operand/register read *)
  mutable ld_extra : int; (* cache penalty of the last [load_value] *)
  mutable cur_bins : float array; (* accounting bins of [cur_bins_for] *)
  mutable cur_bins_for : string; (* physically: the name [cur_bins] is for *)
  (* Fused experiment set (DESIGN.md §14): [None] on ordinary runs — the
     hot path pays one option match per charge.  When present, each charge
     additionally fans out to every experiment's private accumulator;
     [cur_xbins] caches those accumulators' bins for [cur_bins_for],
     refreshed by the same function-change check as [cur_bins]. *)
  exps : Accounting.exp_set option;
  mutable cur_xbins : float array array;
  syms : (string, int64) Hashtbl.t; (* memoized symbol addresses *)
  mutable free_frames : frame list; (* frame pool: released call frames *)
  (* Interval sampling (DESIGN.md §13): in a warm phase [warm] is true and
     the timing model is bypassed — no charges, no clock, no stalls — while
     the functional state and the cache/TLB/predictor warming evolve.  The
     [warm_*] fields are one-entry filters that keep warm-phase memory-
     system probes cheap (same line/page as the previous probe = skip). *)
  mutable warm : bool;
  sampling : Sampling.state option;
  mutable sample_summary : Sampling.summary option;
  warm_tlb_pages : int array;
  warm_l1d_lines : int array;
  warm_l2_lines : int array;
  warm_l1i_lines : int array;
  (* Taken-branch mailbox for the warm fast path: compiled warm branches
     deposit their (compile-time-resolved) target block here instead of
     raising [Taken], so the warm block walker is exception-free.  Always
     [None] between groups. *)
  mutable wjump : dblock option;
  (* groups left before the warm probe filters are flushed: a filter hit
     skips the model probe and therefore the line's LRU-recency update,
     so unbounded filter lifetime would let the model evict lines that
     are in fact hot; a periodic flush bounds that divergence *)
  mutable warm_ttl : int;
  (* Checkpointing: when armed ([ck_track]), the machine maintains the
     positional call stack ([ck_stack], plus the [pos_*] coordinates of
     the group/call being executed) and captures a checkpoint into
     [ck_saved] when the groups counter reaches [ck_at]. *)
  ck_track : bool;
  mutable ck_at : int; (* groups count to capture at; max_int = disarmed *)
  mutable ck_saved : checkpoint option;
  mutable ck_stack : pending list; (* live non-entry calls, innermost first *)
  mutable pos_blk : int; (* block index of the executing group; -1 = none *)
  mutable pos_gi : int;
  mutable pos_rest : int; (* instrs after the executing call in its group *)
}

(* Warm-phase probe filters are small direct-mapped tables (page/line
   keyed by its low bits): a hit means the page/line was warmed recently
   and the model probe is skipped.  One-entry memos thrash as soon as a
   loop alternates between two arrays; 64 entries make warm memory probes
   a two-array-op fast path for real access patterns. *)
(* The form an instruction executes as inside a warm sampling phase: a
   closure specialized at block-compile time (registers, immediates and
   opcode decisions resolved once), so warm phases do not pay
   [exec_instr]'s full operand/opcode dispatch per retired instruction. *)
and wop = t -> frame -> unit

(* One issue group's compiled warm code.  [wg_prefix] is the length of the
   leading run of *pure* compiled ops — no branch deposit, no fallback to
   [exec_instr], no non-fatal control transfer — which the warm walker
   executes with a single batched fuel gate and no per-op jump checks. *)
and wgroup = { wg_ops : wop array; wg_prefix : int }

let checkpoint_groups ck = ck.ck_groups
let checkpoint_cycle ck = ck.ck_cycle

(* The span of registers [f] can touch (see [df_ispan] above). *)
let span_scan (f : Func.t) =
  let ispan = ref (Reg.sp.Reg.id + 1) in
  let fspan = ref 0 in
  let pspan = ref 0 in
  let see (r : Reg.t) =
    match r.Reg.cls with
    | Reg.Flt -> if r.Reg.id >= !fspan then fspan := r.Reg.id + 1
    | Reg.Prd ->
        if r.Reg.id >= !pspan then pspan := r.Reg.id + 1;
        if r.Reg.id >= !ispan then ispan := r.Reg.id + 1
    | _ -> if r.Reg.id >= !ispan then ispan := r.Reg.id + 1
  in
  List.iter see f.Func.params;
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          (match i.Instr.pred with Some p -> see p | None -> ());
          List.iter see i.Instr.dsts;
          List.iter
            (fun (o : Operand.t) ->
              match o with Operand.Reg r -> see r | _ -> ())
            i.Instr.srcs)
        b.Block.instrs)
    f.Func.blocks;
  (min !ispan Reg.num_int, min !fspan Reg.num_flt, min !pspan Reg.num_prd)

let decode_func (layout : Layout.t) (f : Func.t) =
  let dbs =
    Array.of_list
      (List.mapi
         (fun i (b : Block.t) ->
           {
             db_block = b;
             db_index = i;
             db_layout = Layout.block_layout layout f.Func.name b.Block.label;
             db_fall = None;
             db_warm = None;
           })
         f.Func.blocks)
  in
  let by_label = Hashtbl.create (max 8 (2 * Array.length dbs)) in
  Array.iteri
    (fun i db ->
      if i + 1 < Array.length dbs then db.db_fall <- Some dbs.(i + 1);
      if not (Hashtbl.mem by_label db.db_block.Block.label) then
        Hashtbl.add by_label db.db_block.Block.label db)
    dbs;
  let ispan, fspan, pspan = span_scan f in
  {
    df_func = f;
    df_blocks = dbs;
    df_by_label = by_label;
    df_hot_label = "\000"; (* sentinel: physically equal to no label *)
    df_hot_target = None;
    df_ispan = ispan;
    df_fspan = fspan;
    df_pspan = pspan;
  }


let create ?(fuel = 400_000_000) ?trace ?profile ?experiment
    ?(experiments = []) ?(desc = Itanium.desc ()) ?sampling ?checkpoint_at
    (program : Program.t) (layout : Layout.t) (input : int64 array) =
  if experiment <> None && experiments <> [] then
    invalid_arg "Machine.create: ?experiment and ?experiments are exclusive";
  let exps =
    if experiments = [] then None else Some (Accounting.make_set experiments)
  in
  Program.assign_addresses program;
  let mem = Memimage.create () in
  Memimage.load_program mem program;
  let decoded = Hashtbl.create 64 in
  List.iter
    (fun (f : Func.t) ->
      Hashtbl.replace decoded f.Func.name (decode_func layout f))
    program.Program.funcs;
  let geom (g : Machine_desc.cache_geom) = (g.Machine_desc.size, g.Machine_desc.line, g.Machine_desc.assoc) in
  let cache name g =
    let size, line, assoc = geom g in
    Cache.create ~name ~size ~line ~assoc
  in
  let acc = Accounting.create () in
  (* install the causal virtual-speedup experiment, if any, before the
     first charge; with [None] the accounting stays on its inactive fast
     path and the run is bit-identical to a pre-hook machine *)
  Accounting.set_experiment acc experiment;
  let sampling_state = Option.map Sampling.make sampling in
  (* a sampled fused run tracks each experiment's accumulator so finalize
     can extrapolate it exactly as a serial sampled run of it would *)
  (match (sampling_state, exps) with
  | Some sa, Some s -> Sampling.attach sa (Accounting.set_accounts s)
  | _ -> ());
  {
    program;
    layout;
    decoded;
    mem;
    heap = Program.heap_base;
    output = Buffer.create 256;
    input;
    l1i = cache "L1I" desc.Machine_desc.l1i;
    l1d = cache "L1D" desc.Machine_desc.l1d;
    l2 = cache "L2" desc.Machine_desc.l2;
    l3 = cache "L3" desc.Machine_desc.l3;
    dtlb = Tlb.create ~entries:desc.Machine_desc.dtlb_entries ();
    bp =
      Branch_pred.create ~bits:desc.Machine_desc.bp_bits
        ~history_bits:desc.Machine_desc.bp_history_bits ();
    rse =
      Rse.create ~physical:desc.Machine_desc.rse_physical
        ~cost_per_reg:desc.Machine_desc.rse_spill_cost_per_reg ();
    desc;
    acc;
    c = fresh_counters ();
    cycle = 0;
    sb_work = 0;
    sb_last_cycle = 0;
    fuel;
    cur_func = "main";
    cur_block = "entry";
    trace;
    prof = profile;
    onat = false;
    ld_extra = 0;
    cur_bins = [||];
    cur_bins_for = "\000"; (* sentinel: no function is named this *)
    exps;
    cur_xbins =
      (match exps with
      | None -> [||]
      | Some s -> Array.make (Accounting.set_size s) [||]);
    syms = Hashtbl.create 32;
    free_frames = [];
    warm = false;
    sampling = sampling_state;
    sample_summary = None;
    warm_tlb_pages = Array.make warm_filter_size (-1);
    warm_l1d_lines = Array.make warm_filter_size (-1);
    warm_l2_lines = Array.make warm_filter_size (-1);
    warm_l1i_lines = Array.make warm_filter_size (-1);
    wjump = None;
    warm_ttl = 0;
    ck_track = checkpoint_at <> None;
    ck_at = (match checkpoint_at with Some n -> max 0 n | None -> max_int);
    ck_saved = None;
    ck_stack = [];
    pos_blk = -1;
    pos_gi = 0;
    pos_rest = 0;
  }

(* Charge [n] cycles to [cat].  Under a [perfect_*] idealization the
   targeted category is charged zero while the clock (advanced by the
   callers) and every model's state evolve exactly as on the baseline — so
   an idealized run differs from the baseline only in that one category. *)
let charge st cat n =
  if n > 0 && not st.warm then begin
    let suppressed =
      match cat with
      | Accounting.Front_end -> st.desc.Machine_desc.perfect_icache
      | Accounting.Br_mispredict -> st.desc.Machine_desc.perfect_predictor
      | _ -> false
    in
    if not suppressed then begin
      (* The bins of the charged function are cached keyed by the physical
         [cur_func] string; a miss (function change, or the same name via a
         different string) is one hash lookup, a hit is free.  Bins are
         still created only on the first positive charge, exactly as when
         every charge went through [Accounting.charge]. *)
      if not (st.cur_bins_for == st.cur_func) then begin
        st.cur_bins <- Accounting.bins st.acc st.cur_func;
        (match st.exps with
        | None -> ()
        | Some s -> Accounting.set_bins s st.cur_xbins st.cur_func);
        st.cur_bins_for <- st.cur_func
      end;
      Accounting.charge_bins st.acc st.cur_bins cat n;
      (* fused experiments: the same charge against each experiment's
         private accumulator, through the same [charge_bins] — so every
         fused cell is bit-identical to its serial [~experiment] run *)
      match st.exps with
      | None -> ()
      | Some s -> Accounting.charge_set s st.cur_xbins cat n
    end
  end

(* Advance the clock — a no-op in a warm phase, where time is frozen and
   the (suppressed) charges would have accounted for it.  Every charge
   site pairs with an [advance], so warm phases contribute no cycles. *)
let advance st n = if not st.warm then st.cycle <- st.cycle + n

(* Frame pool (DESIGN.md §10): call frames are ~900 words of register
   state, so per-call allocation dominates GC traffic in call-heavy code.
   A released frame is cleared back to the all-zero state a fresh frame
   starts in — but only over the callee's register spans (every register
   the function can read, write, stall on or mark ready lies inside them)
   and only the fields a fresh frame guarantees: register values, NaT
   bits, predicate bits and ready times.  The reason arrays are only read
   under [ready > cycle], which a cleared ready time makes false. *)
let alloc_frame st (df : dfunc) (func : Func.t) =
  match st.free_frames with
  | [] -> fresh_frame func
  | fr :: tl ->
      st.free_frames <- tl;
      fr.func <- func;
      Array.fill fr.ints 0 df.df_ispan 0L;
      Array.fill fr.nat 0 df.df_ispan false;
      Array.fill fr.flts 0 df.df_fspan 0.;
      Array.fill fr.prds 0 df.df_pspan false;
      Array.fill fr.iready 0 df.df_ispan 0;
      Array.fill fr.fready 0 df.df_fspan 0;
      if Hashtbl.length fr.alat > 0 then Hashtbl.reset fr.alat;
      fr

let release_frame st (fr : frame) = st.free_frames <- fr :: st.free_frames

(* Emit a trace event (free when tracing is disabled, the default). *)
let emit st kind addr =
  match st.trace with
  | None -> ()
  | Some tr ->
      Epic_obs.Trace.record tr ~cycle:st.cycle ~kind ~func:st.cur_func ~addr

(* Attribute the sample points in the cycle interval since the last tick to
   the current function and block. *)
let sample_tick st =
  match st.prof with
  | None -> ()
  | Some p ->
      Epic_obs.Profile.tick p ~cycle:st.cycle ~func:st.cur_func ~block:st.cur_block

(* --- memory hierarchy ---------------------------------------------------- *)

(* Penalty cycles beyond the planned L1 latency for a data access. *)
let dcache_extra st (addr : int64) ~(is_float : bool) =
  let d = st.desc in
  if is_float then
    (* Itanium 2 keeps no FP data in L1D; FP loads are served from L2, and
       the compiler plans [float_load_latency] already *)
    if Cache.access st.l2 addr then 0
    else begin
      emit st Epic_obs.Trace.L2_miss addr;
      if Cache.access st.l3 addr then
        max 0 (d.Machine_desc.l3_latency - d.Machine_desc.float_load_latency)
      else d.Machine_desc.mem_latency - d.Machine_desc.float_load_latency
    end
  else if Cache.access st.l1d addr then 0
  else begin
    emit st Epic_obs.Trace.L1d_miss addr;
    if Cache.access st.l2 addr then d.Machine_desc.l2_latency - 1
    else begin
      emit st Epic_obs.Trace.L2_miss addr;
      if Cache.access st.l3 addr then d.Machine_desc.l3_latency - 1
      else d.Machine_desc.mem_latency
    end
  end

let icache_penalty st (addr : int64) =
  let d = st.desc in
  if Cache.access st.l1i addr then 0
  else begin
    emit st Epic_obs.Trace.L1i_miss addr;
    if Cache.access st.l2 addr then d.Machine_desc.l2_latency
    else begin
      emit st Epic_obs.Trace.L2_miss addr;
      if Cache.access st.l3 addr then d.Machine_desc.l3_latency
      else d.Machine_desc.mem_latency
    end
  end

(* DTLB lookup; returns extra cycles charged appropriately.  [spec] decides
   the policy on unmapped pages; returns [`Ok extra | `Nat extra]. *)
let translate st (addr : int64) (spec : Opcode.spec_kind) =
  if
    st.warm
    &&
    let page = Tlb.page_of addr in
    st.warm_tlb_pages.(page land (warm_filter_size - 1)) = page
  then
    (* warm-phase filter hit: the page was warmed recently, skip the
       associative lookup entirely *)
    `Ok 0
  else if Tlb.lookup st.dtlb addr then begin
    (if st.warm then
       let page = Tlb.page_of addr in
       st.warm_tlb_pages.(page land (warm_filter_size - 1)) <- page);
    `Ok 0
  end
  else
    match Memimage.classify st.mem addr with
    | Memimage.Ok -> (
        match spec with
        | Opcode.Spec_sentinel ->
            (* early deferral: a DTLB miss defers rather than walking; the
               chk's recovery will perform the real access *)
            emit st Epic_obs.Trace.Nat_deferral addr;
            `Nat 0
        | Opcode.Nonspec | Opcode.Spec_general | Opcode.Spec_advanced ->
            Tlb.fill st.dtlb addr;
            emit st Epic_obs.Trace.Dtlb_walk addr;
            charge st Accounting.Micropipe st.desc.Machine_desc.vhpt_walk_cycles;
            advance st st.desc.Machine_desc.vhpt_walk_cycles;
            `Ok 0)
    | Memimage.Null_page -> (
        match spec with
        | Opcode.Nonspec | Opcode.Spec_advanced ->
            raise (Machine_fault (Printf.sprintf "NULL access 0x%Lx" addr))
        | _ ->
            (* architected NaT page: cheap *)
            emit st Epic_obs.Trace.Nat_deferral addr;
            charge st Accounting.Micropipe st.desc.Machine_desc.nat_page_cycles;
            advance st st.desc.Machine_desc.nat_page_cycles;
            `Nat 0)
    | Memimage.Unmapped -> (
        match spec with
        | Opcode.Nonspec | Opcode.Spec_advanced ->
            raise (Machine_fault (Printf.sprintf "unmapped access 0x%Lx" addr))
        | Opcode.Spec_general ->
            (* wild load: failed walk + uncached page-table query (kernel) *)
            emit st Epic_obs.Trace.Wild_load addr;
            st.c.wild_loads <- st.c.wild_loads + 1;
            st.c.kernel_ops <-
              st.c.kernel_ops + (st.desc.Machine_desc.wild_walk_cycles / 4);
            charge st Accounting.Kernel st.desc.Machine_desc.wild_walk_cycles;
            advance st st.desc.Machine_desc.wild_walk_cycles;
            `Nat 0
        | Opcode.Spec_sentinel ->
            emit st Epic_obs.Trace.Nat_deferral addr;
            `Nat 0)

(* --- register access ----------------------------------------------------- *)

let stall_on st (fr : frame) (r : Reg.t) =
  if st.warm then ()
    (* ready times are stale in a warm phase (the clock is frozen); a
       leftover [ready > cycle] from the last detail phase must not drag
       the frozen clock forward *)
  else
  let ready, reason =
    match r.Reg.cls with
    | Reg.Flt -> (fr.fready.(r.Reg.id), fr.freason.(r.Reg.id))
    | _ -> (fr.iready.(r.Reg.id), fr.ireason.(r.Reg.id))
  in
  if ready > st.cycle then begin
    let n = ready - st.cycle in
    let cat =
      match reason with
      | Rload -> Accounting.Int_load_bubble
      | Rfload -> Accounting.Float_scoreboard
      | Rlong -> Accounting.Misc
    in
    charge st cat n;
    st.cycle <- ready
  end

(* Register and operand readers report the NaT bit through [st.onat]
   rather than in a returned tuple: with the value coming straight out of
   the frame's arrays, the integer hot path allocates nothing. *)
let read_int st fr (r : Reg.t) =
  stall_on st fr r;
  if r.Reg.id = 0 then begin
    st.onat <- false;
    0L
  end
  else begin
    st.onat <- fr.nat.(r.Reg.id);
    fr.ints.(r.Reg.id)
  end

let read_flt st fr (r : Reg.t) =
  stall_on st fr r;
  fr.flts.(r.Reg.id)

let read_prd st fr (r : Reg.t) =
  stall_on st fr r;
  if r.Reg.id = 0 then true else fr.prds.(r.Reg.id)

let write_int fr (r : Reg.t) (v : int64) (n : bool) =
  if r.Reg.id <> 0 then begin
    fr.ints.(r.Reg.id) <- v;
    fr.nat.(r.Reg.id) <- n
  end

let write_flt fr (r : Reg.t) (v : float) = fr.flts.(r.Reg.id) <- v
let write_prd fr (r : Reg.t) (v : bool) = if r.Reg.id <> 0 then fr.prds.(r.Reg.id) <- v

let mark_ready st fr (r : Reg.t) (extra : int) (reason : reason) =
  if st.warm then ()
    (* no scoreboarding while the clock is frozen: a ready time computed
       against the frozen cycle would be meaningless in the next phase *)
  else
  match r.Reg.cls with
  | Reg.Flt ->
      fr.fready.(r.Reg.id) <- st.cycle + extra;
      fr.freason.(r.Reg.id) <- reason
  | _ ->
      fr.iready.(r.Reg.id) <- st.cycle + extra;
      fr.ireason.(r.Reg.id) <- reason

(* Symbol addresses never change after [Program.assign_addresses], so they
   are resolved once and memoized — the seed scanned the globals list (and
   possibly the function list) on every reference. *)
let sym_address st (s : string) =
  match Hashtbl.find_opt st.syms s with
  | Some a -> a
  | None ->
      let a =
        match Program.find_global st.program s with
        | Some g -> g.Program.address
        | None -> Program.func_address st.program s
      in
      Hashtbl.add st.syms s a;
      a

(* Evaluate an integer-class operand; the NaT bit lands in [st.onat]. *)
let operand_int st fr (o : Operand.t) =
  match o with
  | Operand.Reg r -> (
      match r.Reg.cls with
      | Reg.Flt ->
          let v = Int64.of_float (read_flt st fr r) in
          st.onat <- false;
          v
      | Reg.Prd ->
          let v = if read_prd st fr r then 1L else 0L in
          st.onat <- false;
          v
      | _ -> read_int st fr r)
  | Operand.Imm i ->
      st.onat <- false;
      i
  | Operand.Fimm f ->
      st.onat <- false;
      Int64.of_float f
  | Operand.Label _ ->
      st.onat <- false;
      0L
  | Operand.Sym s ->
      st.onat <- false;
      sym_address st s

let operand_flt st fr (o : Operand.t) =
  match o with
  | Operand.Reg r -> (
      match r.Reg.cls with
      | Reg.Flt ->
          st.onat <- false;
          read_flt st fr r
      | _ ->
          (* [read_int] leaves the register's NaT bit in [st.onat] *)
          Int64.to_float (read_int st fr r))
  | Operand.Fimm f ->
      st.onat <- false;
      f
  | Operand.Imm i ->
      st.onat <- false;
      Int64.to_float i
  | _ ->
      st.onat <- false;
      0.

(* --- intrinsics ---------------------------------------------------------- *)

let do_intrinsic st (k : Intrinsics.kind) (args : (int64 * bool) list) =
  let geti n =
    match List.nth_opt args n with
    | Some (v, false) -> v
    | Some (_, true) ->
        st.c.nat_consumed <- st.c.nat_consumed + 1;
        0L
    | None -> 0L
  in
  let caller = st.cur_func in
  let caller_block = st.cur_block in
  (* settle samples owed to the caller before entering the pseudo-function *)
  sample_tick st;
  let pseudo = Intrinsics.(List.find (fun (_, k') -> k' = k) all) |> fst in
  st.cur_func <- pseudo;
  st.cur_block <- "<intrinsic>";
  let cost = Intrinsics.base_cost k in
  charge st Accounting.Unstalled cost;
  advance st cost;
  let results =
    match k with
    | Intrinsics.Print_int ->
        Buffer.add_string st.output (Int64.to_string (geti 0));
        Buffer.add_char st.output '\n';
        []
    | Intrinsics.Print_char ->
        Buffer.add_char st.output (Char.chr (Int64.to_int (geti 0) land 0xff));
        []
    | Intrinsics.Malloc ->
        let bytes = max 8 ((Int64.to_int (geti 0) + 15) / 16 * 16) in
        let addr = st.heap in
        st.heap <- Int64.add st.heap (Int64.of_int bytes);
        Memimage.map_range st.mem addr bytes;
        [ (addr, false) ]
    | Intrinsics.Input ->
        let i = Int64.to_int (geti 0) in
        if i >= 0 && i < Array.length st.input then [ (st.input.(i), false) ]
        else [ (0L, false) ]
    | Intrinsics.Input_len -> [ (Int64.of_int (Array.length st.input), false) ]
    | Intrinsics.Memcpy ->
        let dst = geti 0 and src = geti 1 and n = Int64.to_int (geti 2) in
        for i = 0 to n - 1 do
          let b = Memimage.read st.mem (Int64.add src (Int64.of_int i)) 1 in
          Memimage.write st.mem (Int64.add dst (Int64.of_int i)) 1 b
        done;
        (* cache traffic per touched line *)
        let lines = max 1 (n / 64) in
        for i = 0 to lines - 1 do
          let off = Int64.of_int (i * 64) in
          let e1 = dcache_extra st (Int64.add src off) ~is_float:false in
          let e2 = dcache_extra st (Int64.add dst off) ~is_float:false in
          let e = (e1 + e2) / 4 in
          charge st Accounting.Unstalled (1 + e);
          advance st (1 + e)
        done;
        []
    | Intrinsics.Memset ->
        let dst = geti 0 and v = geti 1 and n = Int64.to_int (geti 2) in
        for i = 0 to n - 1 do
          Memimage.write st.mem (Int64.add dst (Int64.of_int i)) 1 v
        done;
        let lines = max 1 (n / 64) in
        for i = 0 to lines - 1 do
          let e = dcache_extra st (Int64.add dst (Int64.of_int (i * 64))) ~is_float:false in
          charge st Accounting.Unstalled (1 + (e / 4));
          advance st (1 + (e / 4))
        done;
        []
    | Intrinsics.Exit -> raise (Exit_program (Int64.to_int (geti 0)))
  in
  (* attribute the intrinsic's cycles to the pseudo-function, matching the
     per-function accounting bins *)
  sample_tick st;
  st.cur_func <- caller;
  st.cur_block <- caller_block;
  results

(* --- sampling phase machine ---------------------------------------------- *)

(* Advance the sampling state by one group.  Decided *before* the group
   executes, so a group that ends in a taken branch cannot skip the
   switch.  On entering a warm phase the close-out of the detail phase is
   recorded; on re-entering detail the accounting totals are snapshotted
   so the next close-out can compute its delta. *)
(* Warm groups between flushes of the probe filters.  A filter hit skips
   the model probe, so the probed line's LRU recency is not refreshed;
   flushing every so often re-touches hot lines and keeps the cache/TLB
   models from drifting towards spurious evictions over a long warm
   phase. *)
let warm_flush_interval = 512

let warm_flush_filters st =
  Array.fill st.warm_tlb_pages 0 warm_filter_size (-1);
  Array.fill st.warm_l1d_lines 0 warm_filter_size (-1);
  Array.fill st.warm_l2_lines 0 warm_filter_size (-1);
  Array.fill st.warm_l1i_lines 0 warm_filter_size (-1);
  st.warm_ttl <- warm_flush_interval

(* The phase switch: callers consume one countdown tick per executed
   group *after* calling this (the split keeps a flip observed between
   groups — e.g. by the warm block walker — from consuming a tick the
   next executed group will also consume). *)
let sampling_step st (sa : Sampling.state) =
  if sa.Sampling.left <= 0 then
    if sa.Sampling.in_detail then begin
      Sampling.record_phase sa st.acc.Accounting.totals ~len:sa.Sampling.phase_len;
      sa.Sampling.in_detail <- false;
      st.warm <- true;
      (* the warm probe filters are stale across phases *)
      warm_flush_filters st;
      let wlen = sa.Sampling.plan.Sampling.interval - sa.Sampling.plan.Sampling.detail in
      sa.Sampling.left <- wlen;
      sa.Sampling.phase_len <- wlen
    end
    else begin
      sa.Sampling.in_detail <- true;
      st.warm <- false;
      Sampling.resnap sa st.acc.Accounting.totals;
      sa.Sampling.left <- sa.Sampling.plan.Sampling.detail;
      sa.Sampling.phase_len <- sa.Sampling.plan.Sampling.detail
    end

(* --- checkpoint capture --------------------------------------------------- *)

let ck_frame_of (fr : frame) =
  {
    kf_func = fr.func.Func.name;
    kf_ints = Array.copy fr.ints;
    kf_nat = Array.copy fr.nat;
    kf_flts = Array.copy fr.flts;
    kf_prds = Array.copy fr.prds;
    kf_iready = Array.copy fr.iready;
    kf_ireason = Array.copy fr.ireason;
    kf_fready = Array.copy fr.fready;
    kf_freason = Array.copy fr.freason;
    kf_alat = Hashtbl.fold (fun k v acc -> (k, v) :: acc) fr.alat [];
  }

let materialize_frame st (kf : ck_frame) =
  let fr = fresh_frame (Program.find_func_exn st.program kf.kf_func) in
  Array.blit kf.kf_ints 0 fr.ints 0 (Array.length kf.kf_ints);
  Array.blit kf.kf_nat 0 fr.nat 0 (Array.length kf.kf_nat);
  Array.blit kf.kf_flts 0 fr.flts 0 (Array.length kf.kf_flts);
  Array.blit kf.kf_prds 0 fr.prds 0 (Array.length kf.kf_prds);
  Array.blit kf.kf_iready 0 fr.iready 0 (Array.length kf.kf_iready);
  Array.blit kf.kf_ireason 0 fr.ireason 0 (Array.length kf.kf_ireason);
  Array.blit kf.kf_fready 0 fr.fready 0 (Array.length kf.kf_fready);
  Array.blit kf.kf_freason 0 fr.freason 0 (Array.length kf.kf_freason);
  List.iter (fun (k, v) -> Hashtbl.replace fr.alat k v) kf.kf_alat;
  fr

(* Capture a checkpoint; fires once, at the top of the group loop, with
   [fr] the innermost live frame about to execute group [gi] of [db].
   Every piece of mutable state is deep-copied, so the snapshot is immune
   to the run continuing (and to any number of later resumes). *)
let save_checkpoint st (fr : frame) (db : dblock) (gi : int) =
  st.ck_at <- max_int;
  (* one-shot *)
  let inner =
    { ke_frame = ck_frame_of fr; ke_blk = db.db_index; ke_gi = gi; ke_rest = -1 }
  in
  let stack =
    List.rev_map
      (fun pk ->
        {
          ke_frame = ck_frame_of pk.pk_fr;
          ke_blk = pk.pk_blk;
          ke_gi = pk.pk_gi;
          ke_rest = pk.pk_rest;
        })
      st.ck_stack
    @ [ inner ]
  in
  st.ck_saved <-
    Some
      {
        ck_desc_digest = Machine_desc.digest st.desc;
        ck_groups = st.c.groups;
        ck_cycle = st.cycle;
        ck_sb_work = st.sb_work;
        ck_sb_last_cycle = st.sb_last_cycle;
        ck_fuel = st.fuel;
        ck_heap = st.heap;
        ck_output = Buffer.contents st.output;
        ck_input = Array.copy st.input;
        ck_counters = { st.c with useful_ops = st.c.useful_ops };
        ck_mem = Memimage.copy st.mem;
        ck_l1i = Cache.copy st.l1i;
        ck_l1d = Cache.copy st.l1d;
        ck_l2 = Cache.copy st.l2;
        ck_l3 = Cache.copy st.l3;
        ck_dtlb = Tlb.copy st.dtlb;
        ck_bp = Branch_pred.copy st.bp;
        ck_rse = Rse.copy st.rse;
        ck_acc = Accounting.copy st.acc;
        ck_calls = stack;
      }

(* --- execution ----------------------------------------------------------- *)

exception Taken of string (* branch taken to label *)
exception Returned of (int64 * bool) list

let int_alu op (a : int64) (b : int64) =
  match op with
  | Opcode.Add -> Int64.add a b
  | Opcode.Sub -> Int64.sub a b
  | Opcode.Mul -> Int64.mul a b
  | Opcode.Div -> if Int64.equal b 0L then raise (Machine_fault "div by zero") else Int64.div a b
  | Opcode.Rem -> if Int64.equal b 0L then raise (Machine_fault "rem by zero") else Int64.rem a b
  | Opcode.And -> Int64.logand a b
  | Opcode.Or -> Int64.logor a b
  | Opcode.Xor -> Int64.logxor a b
  | Opcode.Shl -> Int64.shift_left a (Int64.to_int b land 63)
  | Opcode.Shr -> Int64.shift_right_logical a (Int64.to_int b land 63)
  | Opcode.Sra -> Int64.shift_right a (Int64.to_int b land 63)
  | _ -> invalid_arg "int_alu"

let flt_alu op (a : float) (b : float) =
  match op with
  | Opcode.Fadd -> a +. b
  | Opcode.Fsub -> a -. b
  | Opcode.Fmul -> a *. b
  | Opcode.Fdiv -> a /. b
  | _ -> invalid_arg "flt_alu"

(* Warm-phase cache update: keeps the hierarchy's contents and LRU state
   current without timing.  A one-entry line filter per level means the
   common case — another access to the line just touched — is a single
   integer compare instead of an associative search. *)
let dcache_warm st (addr : int64) ~(is_float : bool) =
  if is_float then begin
    let line = Cache.line_of st.l2 addr in
    let slot = line land (warm_filter_size - 1) in
    if st.warm_l2_lines.(slot) <> line then begin
      st.warm_l2_lines.(slot) <- line;
      if not (Cache.access st.l2 addr) then ignore (Cache.access st.l3 addr)
    end
  end
  else begin
    let line = Cache.line_of st.l1d addr in
    let slot = line land (warm_filter_size - 1) in
    if st.warm_l1d_lines.(slot) <> line then begin
      st.warm_l1d_lines.(slot) <- line;
      if not (Cache.access st.l1d addr) then
        if not (Cache.access st.l2 addr) then ignore (Cache.access st.l3 addr)
    end
  end

(* Perform a load's data access (translation already done, result Ok);
   returns the raw bits, with the cache penalty left in [st.ld_extra]. *)
let load_value st (addr : int64) (sz : Opcode.size) ~(is_float : bool) =
  if st.warm then begin
    dcache_warm st addr ~is_float;
    st.ld_extra <- 0
  end
  else st.ld_extra <- dcache_extra st addr ~is_float;
  Memimage.read st.mem addr (Opcode.size_bytes sz)

(* Evaluate a compare's two sources and the condition, encoded without
   allocation: -1 = deferred (a NaT input), 0 = false, 1 = true.  The
   second source is evaluated before the first, preserving the register
   stall (and hence cycle-accounting) order of the seed's tuple build. *)
let cmp_result st fr ~(fcmp : bool) cond (i : Instr.t) =
  match i.Instr.srcs with
  | [ a; b ] ->
      if fcmp then begin
        let y = operand_flt st fr b in
        let ny = st.onat in
        let x = operand_flt st fr a in
        if st.onat || ny then -1
        else if Opcode.eval_fcmp cond x y then 1
        else 0
      end
      else begin
        let y = operand_int st fr b in
        let ny = st.onat in
        let x = operand_int st fr a in
        if st.onat || ny then -1
        else if Opcode.eval_icmp cond x y then 1
        else 0
      end
  | _ -> raise (Machine_fault "cmp arity")

let drain_store_buffer st =
  let elapsed = st.cycle - st.sb_last_cycle in
  st.sb_last_cycle <- st.cycle;
  st.sb_work <- max 0 (st.sb_work - elapsed)

(* Bind call arguments to the callee's parameter registers (missing
   arguments leave the fresh-frame zeros in place), and call results to the
   caller's destination registers (missing results read as 0/false) — as
   parallel walks, not the seed's quadratic [List.nth_opt] per element. *)
let rec bind_params fr (params : Reg.t list) (args : (int64 * bool) list) =
  match (params, args) with
  | [], _ | _, [] -> ()
  | p :: ps, (v, na) :: tl ->
      if p.Reg.cls = Reg.Flt then write_flt fr p (Int64.float_of_bits v)
      else write_int fr p v na;
      bind_params fr ps tl

let rec bind_results fr (dsts : Reg.t list) (results : (int64 * bool) list) =
  match (dsts, results) with
  | [], _ -> ()
  | d :: ds, (v, na) :: tl ->
      (if d.Reg.cls = Reg.Flt then write_flt fr d (Int64.float_of_bits v)
       else write_int fr d v na);
      bind_results fr ds tl
  | d :: ds, [] ->
      (if d.Reg.cls = Reg.Flt then write_flt fr d (Int64.float_of_bits 0L)
       else write_int fr d 0L false);
      bind_results fr ds []

(* --- warm-phase closure compilation (DESIGN.md Â§13) -----------------------
   In a warm phase every instruction still executes architecturally â
   values, NaT bits, predicates, memory, ALAT, predictor updates, cache/TLB
   warming and every retired-op counter â but no cycle is ever charged.
   Paying [exec_instr]'s full operand/opcode dispatch for that capped the
   sampled speedup near 1x, so warm code is compiled once per block: each
   instruction becomes a closure with its register ids, immediates and
   opcode decisions resolved at build time.  Rare or intricate opcodes
   (calls, returns, chk recovery, div/rem's speculated-fault path) fall
   back to [exec_instr], whose timing sites are all warm-guarded already,
   so warm semantics stay identical to the interpreter by construction
   (the sampled-vs-full functional-counter tests enforce this). *)

(* Compile an integer-class operand read; NaT lands in [st.onat], exactly
   as [operand_int]. *)
let warm_rd (o : Operand.t) : t -> frame -> int64 =
  match o with
  | Operand.Reg r -> (
      let id = r.Reg.id in
      match r.Reg.cls with
      | Reg.Flt ->
          fun st fr ->
            st.onat <- false;
            Int64.of_float fr.flts.(id)
      | Reg.Prd ->
          fun st fr ->
            st.onat <- false;
            if id = 0 || fr.prds.(id) then 1L else 0L
      | _ ->
          if id = 0 then
            fun st _ ->
              st.onat <- false;
              0L
          else
            fun st fr ->
              st.onat <- fr.nat.(id);
              fr.ints.(id))
  | Operand.Imm v ->
      fun st _ ->
        st.onat <- false;
        v
  | Operand.Fimm f ->
      let v = Int64.of_float f in
      fun st _ ->
        st.onat <- false;
        v
  | Operand.Label _ ->
      fun st _ ->
        st.onat <- false;
        0L
  | Operand.Sym sym ->
      fun st _ ->
        st.onat <- false;
        sym_address st sym

(* Compile a float-class operand read (mirrors [operand_flt], including
   the int-register path leaving that register's NaT bit in [st.onat]). *)
let warm_rdf (o : Operand.t) : t -> frame -> float =
  match o with
  | Operand.Reg r -> (
      let id = r.Reg.id in
      match r.Reg.cls with
      | Reg.Flt ->
          fun st fr ->
            st.onat <- false;
            fr.flts.(id)
      | _ ->
          if id = 0 then
            fun st _ ->
              st.onat <- false;
              0.
          else
            fun st fr ->
              st.onat <- fr.nat.(id);
              Int64.to_float fr.ints.(id))
  | Operand.Fimm f ->
      fun st _ ->
        st.onat <- false;
        f
  | Operand.Imm i ->
      let v = Int64.to_float i in
      fun st _ ->
        st.onat <- false;
        v
  | _ ->
      fun st _ ->
        st.onat <- false;
        0.

(* [int_alu] resolved to a direct closure at compile time (Div/Rem are
   excluded: their speculated-fault path stays on [exec_instr]). *)
let warm_alu op : int64 -> int64 -> int64 =
  match op with
  | Opcode.Add -> Int64.add
  | Opcode.Sub -> Int64.sub
  | Opcode.Mul -> Int64.mul
  | Opcode.And -> Int64.logand
  | Opcode.Or -> Int64.logor
  | Opcode.Xor -> Int64.logxor
  | Opcode.Shl -> fun a b -> Int64.shift_left a (Int64.to_int b land 63)
  | Opcode.Shr -> fun a b -> Int64.shift_right_logical a (Int64.to_int b land 63)
  | Opcode.Sra -> fun a b -> Int64.shift_right a (Int64.to_int b land 63)
  | _ -> invalid_arg "warm_alu"

(* Execute one instruction.  Raises [Taken l] for a taken branch,
   [Returned vs] for a return. *)
let rec exec_instr st (fr : frame) (i : Instr.t) =
  if st.fuel <= 0 then raise Out_of_fuel;
  st.fuel <- st.fuel - 1;
  let guard =
    match i.Instr.pred with None -> true | Some p -> read_prd st fr p
  in
  match i.Instr.op with
  | Opcode.Cmp (cond, ct) | Opcode.Fcmp (cond, ct) -> (
      let fcmp = match i.Instr.op with Opcode.Fcmp _ -> true | _ -> false in
      match i.Instr.dsts with
      | [ pt; pf ] -> (
          st.c.useful_ops <- st.c.useful_ops + 1;
          match ct with
          | Opcode.Norm ->
              if guard then (
                match cmp_result st fr ~fcmp cond i with
                | -1 ->
                    write_prd fr pt false;
                    write_prd fr pf false
                | r ->
                    write_prd fr pt (r = 1);
                    write_prd fr pf (r = 0))
          | Opcode.Unc ->
              write_prd fr pt false;
              write_prd fr pf false;
              if guard then (
                match cmp_result st fr ~fcmp cond i with
                | -1 -> ()
                | r ->
                    write_prd fr pt (r = 1);
                    write_prd fr pf (r = 0))
          | Opcode.Orform ->
              if guard then (
                match cmp_result st fr ~fcmp cond i with
                | 1 ->
                    write_prd fr pt true;
                    write_prd fr pf true
                | _ -> ()))
      | _ -> raise (Machine_fault "cmp without two dests"))
  | _ when not guard -> (
      st.c.squashed_ops <- st.c.squashed_ops + 1;
      (* pattern match rather than [=]: Opcode.t has parameterized
         constructors, so [=] would be a generic structural compare *)
      match i.Instr.op with
      | Opcode.Br ->
          st.c.branches <- st.c.branches + 1;
          let correct = Branch_pred.predict_and_update st.bp i.Instr.id false in
          if not correct then begin
            emit st Epic_obs.Trace.Br_mispredict (Int64.of_int i.Instr.id);
            charge st Accounting.Br_mispredict
              st.desc.Machine_desc.branch_mispredict_penalty;
            advance st st.desc.Machine_desc.branch_mispredict_penalty
          end
      | _ -> ())
  | Opcode.Add | Opcode.Sub | Opcode.Mul | Opcode.Div | Opcode.Rem
  | Opcode.And | Opcode.Or | Opcode.Xor | Opcode.Shl | Opcode.Shr | Opcode.Sra
    -> (
      match (i.Instr.dsts, i.Instr.srcs) with
      | [ d ], [ a; b ] ->
          st.c.useful_ops <- st.c.useful_ops + 1;
          let va = operand_int st fr a in
          let na = st.onat in
          let vb = operand_int st fr b in
          let nb = st.onat in
          if na || nb then write_int fr d 0L true
          else begin
            (match int_alu i.Instr.op va vb with
            | v -> write_int fr d v false
            | exception Machine_fault _ when i.Instr.attrs.Instr.speculated ->
                (* a speculated divide by zero defers instead of faulting *)
                write_int fr d 0L true);
            match i.Instr.op with
            | Opcode.Div | Opcode.Rem -> mark_ready st fr d 4 Rlong
            | _ -> ()
          end
      | _ -> raise (Machine_fault "bad ALU"))
  | Opcode.Fadd | Opcode.Fsub | Opcode.Fmul | Opcode.Fdiv -> (
      match (i.Instr.dsts, i.Instr.srcs) with
      | [ d ], [ a; b ] ->
          st.c.useful_ops <- st.c.useful_ops + 1;
          let va = operand_flt st fr a in
          let vb = operand_flt st fr b in
          write_flt fr d (flt_alu i.Instr.op va vb);
          (match i.Instr.op with
          | Opcode.Fdiv -> mark_ready st fr d 8 Rfload
          | _ -> ())
      | _ -> raise (Machine_fault "bad FP op"))
  | Opcode.Fneg -> (
      match (i.Instr.dsts, i.Instr.srcs) with
      | [ d ], [ a ] ->
          st.c.useful_ops <- st.c.useful_ops + 1;
          write_flt fr d (-.operand_flt st fr a)
      | _ -> raise (Machine_fault "bad fneg"))
  | Opcode.Cvt_fi -> (
      match (i.Instr.dsts, i.Instr.srcs) with
      | [ d ], [ a ] ->
          st.c.useful_ops <- st.c.useful_ops + 1;
          let v = operand_flt st fr a in
          write_int fr d (Int64.of_float v) st.onat
      | _ -> raise (Machine_fault "bad cvt.fi"))
  | Opcode.Cvt_if -> (
      match (i.Instr.dsts, i.Instr.srcs) with
      | [ d ], [ a ] ->
          st.c.useful_ops <- st.c.useful_ops + 1;
          write_flt fr d (Int64.to_float (operand_int st fr a))
      | _ -> raise (Machine_fault "bad cvt.if"))
  | Opcode.Mov | Opcode.Sxt _ -> (
      match (i.Instr.dsts, i.Instr.srcs) with
      | [ d ], [ a ] ->
          st.c.useful_ops <- st.c.useful_ops + 1;
          if d.Reg.cls = Reg.Flt then write_flt fr d (operand_flt st fr a)
          else begin
            let v = operand_int st fr a in
            let n = st.onat in
            let v =
              match i.Instr.op with
              | Opcode.Sxt sz ->
                  let bits = 8 * Opcode.size_bytes sz in
                  Int64.shift_right (Int64.shift_left v (64 - bits)) (64 - bits)
              | _ -> v
            in
            write_int fr d v n
          end
      | _ -> raise (Machine_fault "bad mov"))
  | Opcode.Lea -> (
      match (i.Instr.dsts, i.Instr.srcs) with
      | [ d ], [ base; off ] ->
          st.c.useful_ops <- st.c.useful_ops + 1;
          let vb = operand_int st fr base in
          let vo = operand_int st fr off in
          write_int fr d (Int64.add vb vo) false
      | _ -> raise (Machine_fault "bad lea"))
  | Opcode.Ld (sz, spec) -> (
      match (i.Instr.dsts, i.Instr.srcs) with
      | [ d ], [ a ] -> (
          st.c.useful_ops <- st.c.useful_ops + 1;
          if spec <> Opcode.Nonspec then st.c.spec_loads <- st.c.spec_loads + 1;
          let addr = operand_int st fr a in
          let na = st.onat in
          if spec <> Opcode.Nonspec then emit st Epic_obs.Trace.Spec_load addr;
          if na then begin
            (* NaT address: propagate deferral *)
            if spec = Opcode.Nonspec then st.c.nat_consumed <- st.c.nat_consumed + 1;
            write_int fr d 0L true
          end
          else
            match translate st addr spec with
            | `Nat extra ->
                advance st extra;
                write_int fr d 0L true
            | `Ok _ ->
                if spec = Opcode.Spec_advanced then
                  Hashtbl.replace fr.alat d.Reg.id (addr, Opcode.size_bytes sz);
                let is_float = d.Reg.cls = Reg.Flt in
                let raw = load_value st addr sz ~is_float in
                let extra = st.ld_extra in
                if is_float then begin
                  write_flt fr d (Int64.float_of_bits raw);
                  if extra > 0 then mark_ready st fr d extra Rfload
                end
                else begin
                  write_int fr d raw false;
                  if extra > 0 then mark_ready st fr d extra Rload
                end)
      | _ -> raise (Machine_fault "bad load"))
  | Opcode.St sz -> (
      match i.Instr.srcs with
      | [ a; v ] -> (
          st.c.useful_ops <- st.c.useful_ops + 1;
          let addr = operand_int st fr a in
          let na = st.onat in
          let data =
            match v with
            | Operand.Reg r when r.Reg.cls = Reg.Flt ->
                let d = Int64.bits_of_float (read_flt st fr r) in
                st.onat <- false;
                d
            | Operand.Fimm fv ->
                st.onat <- false;
                Int64.bits_of_float fv
            | _ -> operand_int st fr v
          in
          let nv = st.onat in
          if na || nv then begin
            st.c.nat_consumed <- st.c.nat_consumed + 1;
            charge st Accounting.Misc 2
          end
          else
            match translate st addr Opcode.Nonspec with
            | `Ok _ ->
                (* ALAT snoop: stores invalidate overlapping advanced loads.
                   The table is empty in the common case (no advanced load in
                   flight), so check the size first; otherwise drop stale
                   entries in place, with no intermediate list. *)
                if Hashtbl.length fr.alat > 0 then begin
                  let bytes = Opcode.size_bytes sz in
                  Hashtbl.filter_map_inplace
                    (fun _rid ((a, n) as e) ->
                      let lo = max (Int64.to_int a) (Int64.to_int addr) in
                      let hi = min (Int64.to_int a + n) (Int64.to_int addr + bytes) in
                      if lo < hi then None else Some e)
                    fr.alat
                end;
                Memimage.write st.mem addr (Opcode.size_bytes sz) data;
                if st.warm then dcache_warm st addr ~is_float:false
                else begin
                  drain_store_buffer st;
                  let extra = dcache_extra st addr ~is_float:false in
                  if extra > 0 then begin
                    st.sb_work <- st.sb_work + 3;
                    if st.sb_work > 24 then begin
                      let over = st.sb_work - 24 in
                      charge st Accounting.Micropipe over;
                      advance st over;
                      st.sb_work <- 24
                    end
                  end
                end
            | `Nat _ -> raise (Machine_fault "store deferred (impossible)"))
      | _ -> raise (Machine_fault "bad store"))
  | Opcode.Chk sz -> (
      match i.Instr.srcs with
      | [ Operand.Reg r; a ] ->
          st.c.useful_ops <- st.c.useful_ops + 1;
          stall_on st fr r;
          let is_nat =
            match r.Reg.cls with Reg.Flt -> false | _ -> fr.nat.(r.Reg.id)
          in
          if is_nat then begin
            (* recovery: pipeline redirect + non-speculative reload *)
            st.c.chk_recoveries <- st.c.chk_recoveries + 1;
            charge st Accounting.Misc st.desc.Machine_desc.chk_recovery_penalty;
            advance st st.desc.Machine_desc.chk_recovery_penalty;
            let addr = operand_int st fr a in
            emit st Epic_obs.Trace.Chk_recovery addr;
            if st.onat then raise (Machine_fault "chk recovery with NaT address")
            else
              match translate st addr Opcode.Nonspec with
              | `Ok _ ->
                  let raw = load_value st addr sz ~is_float:(r.Reg.cls = Reg.Flt) in
                  if r.Reg.cls = Reg.Flt then write_flt fr r (Int64.float_of_bits raw)
                  else write_int fr r raw false;
                  if st.ld_extra > 0 then mark_ready st fr r st.ld_extra Rload
              | `Nat _ -> assert false
          end
      | _ -> raise (Machine_fault "bad chk"))
  | Opcode.Chka sz -> (
      match i.Instr.srcs with
      | [ Operand.Reg r; a ] ->
          st.c.useful_ops <- st.c.useful_ops + 1;
          stall_on st fr r;
          if not (Hashtbl.mem fr.alat r.Reg.id) then begin
            (* the entry was invalidated: redirect + non-speculative reload *)
            st.c.chk_recoveries <- st.c.chk_recoveries + 1;
            charge st Accounting.Misc st.desc.Machine_desc.chk_recovery_penalty;
            advance st st.desc.Machine_desc.chk_recovery_penalty;
            let addr = operand_int st fr a in
            emit st Epic_obs.Trace.Chk_recovery addr;
            if st.onat then raise (Machine_fault "chk.a recovery with NaT address")
            else
              match translate st addr Opcode.Nonspec with
              | `Ok _ ->
                  let raw = load_value st addr sz ~is_float:(r.Reg.cls = Reg.Flt) in
                  if r.Reg.cls = Reg.Flt then write_flt fr r (Int64.float_of_bits raw)
                  else write_int fr r raw false;
                  if st.ld_extra > 0 then mark_ready st fr r st.ld_extra Rload
              | `Nat _ -> assert false
          end
      | _ -> raise (Machine_fault "bad chk.a"))
  | Opcode.Br -> (
      st.c.useful_ops <- st.c.useful_ops + 1;
      st.c.branches <- st.c.branches + 1;
      match i.Instr.srcs with
      | [ Operand.Label l ] ->
          (match i.Instr.pred with
          | None -> Branch_pred.record_unconditional st.bp
          | Some _ ->
              (* conditional, and the guard was true (we are here) *)
              let correct = Branch_pred.predict_and_update st.bp i.Instr.id true in
              if not correct then begin
                emit st Epic_obs.Trace.Br_mispredict (Int64.of_int i.Instr.id);
                charge st Accounting.Br_mispredict
                  st.desc.Machine_desc.branch_mispredict_penalty;
                advance st st.desc.Machine_desc.branch_mispredict_penalty
              end);
          raise (Taken l)
      | _ -> raise (Machine_fault "bad br"))
  | Opcode.Br_call -> (
      st.c.useful_ops <- st.c.useful_ops + 1;
      st.c.branches <- st.c.branches + 1;
      st.c.calls <- st.c.calls + 1;
      Branch_pred.record_unconditional st.bp;
      match i.Instr.srcs with
      | target :: args ->
          let argv =
            List.map
              (fun (o : Operand.t) ->
                match o with
                | Operand.Reg r when r.Reg.cls = Reg.Flt ->
                    (Int64.bits_of_float (read_flt st fr r), false)
                | Operand.Fimm fv -> (Int64.bits_of_float fv, false)
                | _ ->
                    let v = operand_int st fr o in
                    (v, st.onat))
              args
          in
          let fname =
            match target with
            | Operand.Sym s -> s
            | Operand.Reg r -> (
                let addr = read_int st fr r in
                if st.onat then raise (Machine_fault "indirect call through NaT")
                else
                  match Program.func_at_address st.program addr with
                  | Some s -> s
                  | None -> raise (Machine_fault (Printf.sprintf "indirect call to 0x%Lx" addr)))
            | _ -> raise (Machine_fault "bad call target")
          in
          (* the ALAT is flushed at calls; skip the reset (which allocates
             a fresh bucket array) when it is already empty *)
          if Hashtbl.length fr.alat > 0 then Hashtbl.reset fr.alat;
          let results = exec_call st fr fname argv in
          bind_results fr i.Instr.dsts results
      | [] -> raise (Machine_fault "bad call"))
  | Opcode.Br_ret ->
      st.c.useful_ops <- st.c.useful_ops + 1;
      st.c.branches <- st.c.branches + 1;
      Branch_pred.record_unconditional st.bp;
      let vals =
        List.map
          (fun (o : Operand.t) ->
            match o with
            | Operand.Reg r when r.Reg.cls = Reg.Flt ->
                (Int64.bits_of_float (read_flt st fr r), false)
            | Operand.Fimm fv -> (Int64.bits_of_float fv, false)
            | _ ->
                let v = operand_int st fr o in
                (v, st.onat))
          i.Instr.srcs
      in
      raise (Returned vals)
  | Opcode.Alloc | Opcode.Nop -> st.c.useful_ops <- st.c.useful_ops + 1

(* Execute one function invocation (sp inherited via the call). *)
and exec_call st (caller_fr : frame) (fname : string) (args : (int64 * bool) list) =
  match Intrinsics.of_name fname with
  | Some k -> do_intrinsic st k args
  | None ->
      let f = Program.find_func_exn st.program fname in
      let df =
        match Hashtbl.find_opt st.decoded fname with
        | Some df -> df
        | None ->
            (* a function registered after [create]; decode on first call *)
            let df = decode_func st.layout f in
            Hashtbl.replace st.decoded fname df;
            df
      in
      charge st Accounting.Unstalled st.desc.Machine_desc.call_overhead;
      advance st st.desc.Machine_desc.call_overhead;
      (* RSE push *)
      let spill_cycles = Rse.on_call st.rse (max 1 f.Func.n_stacked) in
      if spill_cycles > 0 then begin
        emit st Epic_obs.Trace.Rse_spill 0L;
        charge st Accounting.Rse spill_cycles;
        advance st spill_cycles
      end;
      (* settle samples owed to the caller before attribution switches *)
      sample_tick st;
      let fr = alloc_frame st df f in
      bind_params fr f.Func.params args;
      fr.ints.(Reg.sp.Reg.id) <- caller_fr.ints.(Reg.sp.Reg.id);
      let saved_func = st.cur_func in
      let saved_block = st.cur_block in
      st.cur_func <- fname;
      (* Checkpoint stack maintenance: record where in the caller this call
         lives (the synthetic entry call has no position: [pos_blk] is
         still -1 then), and save/restore the positional coordinates
         around the body so a second call later in the same group tail
         sees the caller's position, not this callee's. *)
      let pushed = st.ck_track && st.pos_blk >= 0 in
      let saved_blk = st.pos_blk and saved_gi = st.pos_gi in
      if pushed then
        st.ck_stack <-
          {
            pk_fr = caller_fr;
            pk_blk = st.pos_blk;
            pk_gi = st.pos_gi;
            pk_rest = st.pos_rest;
          }
          :: st.ck_stack;
      (* [Func.entry] both checks non-emptiness (same fault as before) and
         is, by construction, the block decoded at index 0 *)
      ignore (Func.entry f);
      let result =
        try
          exec_blocks st fr df df.df_blocks.(0);
          []
        with Returned vs -> vs
      in
      if pushed then begin
        match st.ck_stack with
        | _ :: tl -> st.ck_stack <- tl
        | [] -> ()
      end;
      st.pos_blk <- saved_blk;
      st.pos_gi <- saved_gi;
      release_frame st fr;
      (* settle samples owed to the callee before attribution reverts *)
      sample_tick st;
      st.cur_func <- saved_func;
      st.cur_block <- saved_block;
      charge st Accounting.Unstalled st.desc.Machine_desc.return_overhead;
      advance st st.desc.Machine_desc.return_overhead;
      let fill_cycles = Rse.on_return st.rse in
      if fill_cycles > 0 then begin
        emit st Epic_obs.Trace.Rse_fill 0L;
        charge st Accounting.Rse fill_cycles;
        advance st fill_cycles
      end;
      result

(* Compile one instruction's warm form.  Counter updates, NaT/value
   semantics and evaluation order replicate [exec_instr] with all its
   warm-guarded timing sites removed. *)
and compile_warm (df : dfunc) (i : Instr.t) : wop * bool =
  (* Fuel is checked and decremented by the warm op walkers (one inline
     test instead of a wrapper closure per op); the fallback hands the
     unit back because [exec_instr] burns its own.  The second component
     is the purity flag feeding [wg_prefix]: [true] means the op neither
     deposits a jump nor falls back to [exec_instr]. *)
  let fallback : wop * bool =
    ( (fun st fr ->
        st.fuel <- st.fuel + 1;
        exec_instr st fr i),
      false )
  in
  match i.Instr.op with
  | Opcode.Br_call | Opcode.Br_ret | Opcode.Chk _ | Opcode.Chka _
  | Opcode.Div | Opcode.Rem ->
      fallback
  | Opcode.Cmp (cond, ct) | Opcode.Fcmp (cond, ct) -> (
      match (i.Instr.dsts, i.Instr.srcs) with
      | [ pt; pf ], [ a; b ] ->
          let fcmp = match i.Instr.op with Opcode.Fcmp _ -> true | _ -> false in
          (* second source first, as [cmp_result] *)
          let eval : t -> frame -> int =
            if fcmp then begin
              let ry = warm_rdf b and rx = warm_rdf a in
              fun st fr ->
                let y = ry st fr in
                let ny = st.onat in
                let x = rx st fr in
                if st.onat || ny then -1
                else if Opcode.eval_fcmp cond x y then 1
                else 0
            end
            else
              (* fused shapes: sources straight from the register file
                 (evaluation order is immaterial without [onat] traffic) *)
              match (a, b) with
              | Operand.Reg x, Operand.Reg y
                when x.Reg.cls = Reg.Int
                     && y.Reg.cls = Reg.Int
                     && x.Reg.id <> 0
                     && y.Reg.id <> 0 ->
                  let ix = x.Reg.id and iy = y.Reg.id in
                  fun _ fr ->
                    if fr.nat.(ix) || fr.nat.(iy) then -1
                    else if Opcode.eval_icmp cond fr.ints.(ix) fr.ints.(iy)
                    then 1
                    else 0
              | Operand.Reg x, Operand.Imm v
                when x.Reg.cls = Reg.Int && x.Reg.id <> 0 ->
                  let ix = x.Reg.id in
                  fun _ fr ->
                    if fr.nat.(ix) then -1
                    else if Opcode.eval_icmp cond fr.ints.(ix) v then 1
                    else 0
              | _ ->
                  let ry = warm_rd b and rx = warm_rd a in
                  fun st fr ->
                    let y = ry st fr in
                    let ny = st.onat in
                    let x = rx st fr in
                    if st.onat || ny then -1
                    else if Opcode.eval_icmp cond x y then 1
                    else 0
          in
          let guard : t -> frame -> bool =
            match i.Instr.pred with
            | None -> fun _ _ -> true
            | Some p ->
                let pid = p.Reg.id in
                if pid = 0 then fun _ _ -> true else fun _ fr -> fr.prds.(pid)
          in
          let body : wop =
            match ct with
            | Opcode.Norm ->
                fun st fr ->
                  st.c.useful_ops <- st.c.useful_ops + 1;
                  if guard st fr then (
                    match eval st fr with
                    | -1 ->
                        write_prd fr pt false;
                        write_prd fr pf false
                    | r ->
                        write_prd fr pt (r = 1);
                        write_prd fr pf (r = 0))
            | Opcode.Unc ->
                fun st fr ->
                  st.c.useful_ops <- st.c.useful_ops + 1;
                  write_prd fr pt false;
                  write_prd fr pf false;
                  if guard st fr then (
                    match eval st fr with
                    | -1 -> ()
                    | r ->
                        write_prd fr pt (r = 1);
                        write_prd fr pf (r = 0))
            | Opcode.Orform ->
                fun st fr ->
                  st.c.useful_ops <- st.c.useful_ops + 1;
                  if guard st fr && eval st fr = 1 then begin
                    write_prd fr pt true;
                    write_prd fr pf true
                  end
          in
          (body, true)
      | _ -> fallback)
  | op -> (
      let body_opt : wop option =
        match (op, i.Instr.dsts, i.Instr.srcs) with
        | ( ( Opcode.Add | Opcode.Sub | Opcode.Mul | Opcode.And | Opcode.Or
            | Opcode.Xor | Opcode.Shl | Opcode.Shr | Opcode.Sra ),
            [ d ],
            [ a; b ] ) -> (
            let alu = warm_alu op in
            let did = d.Reg.id in
            (* fully-fused shapes for the dominant operand patterns: both
               sources read straight from the register file (no operand
               closures, no [onat] traffic) *)
            match (a, b) with
            | Operand.Reg x, Operand.Reg y
              when did <> 0
                   && x.Reg.cls = Reg.Int
                   && y.Reg.cls = Reg.Int
                   && x.Reg.id <> 0
                   && y.Reg.id <> 0 ->
                let ia = x.Reg.id and ib = y.Reg.id in
                Some
                  (fun st fr ->
                    st.c.useful_ops <- st.c.useful_ops + 1;
                    if fr.nat.(ia) || fr.nat.(ib) then begin
                      fr.ints.(did) <- 0L;
                      fr.nat.(did) <- true
                    end
                    else begin
                      fr.ints.(did) <- alu fr.ints.(ia) fr.ints.(ib);
                      fr.nat.(did) <- false
                    end)
            | Operand.Reg x, Operand.Imm v
              when did <> 0 && x.Reg.cls = Reg.Int && x.Reg.id <> 0 ->
                let ia = x.Reg.id in
                Some
                  (fun st fr ->
                    st.c.useful_ops <- st.c.useful_ops + 1;
                    if fr.nat.(ia) then begin
                      fr.ints.(did) <- 0L;
                      fr.nat.(did) <- true
                    end
                    else begin
                      fr.ints.(did) <- alu fr.ints.(ia) v;
                      fr.nat.(did) <- false
                    end)
            | _ ->
                let ra = warm_rd a and rb = warm_rd b in
                Some
                  (fun st fr ->
                    st.c.useful_ops <- st.c.useful_ops + 1;
                    let va = ra st fr in
                    let na = st.onat in
                    let vb = rb st fr in
                    if did <> 0 then
                      if na || st.onat then begin
                        fr.ints.(did) <- 0L;
                        fr.nat.(did) <- true
                      end
                      else begin
                        fr.ints.(did) <- alu va vb;
                        fr.nat.(did) <- false
                      end))
        | ( (Opcode.Fadd | Opcode.Fsub | Opcode.Fmul | Opcode.Fdiv),
            [ d ],
            [ a; b ] ) ->
            let ra = warm_rdf a and rb = warm_rdf b in
            let alu : float -> float -> float =
              match op with
              | Opcode.Fadd -> ( +. )
              | Opcode.Fsub -> ( -. )
              | Opcode.Fmul -> ( *. )
              | _ -> ( /. )
            in
            let did = d.Reg.id in
            Some
              (fun st fr ->
                st.c.useful_ops <- st.c.useful_ops + 1;
                let va = ra st fr in
                let vb = rb st fr in
                fr.flts.(did) <- alu va vb)
        | Opcode.Fneg, [ d ], [ a ] ->
            let ra = warm_rdf a in
            let did = d.Reg.id in
            Some
              (fun st fr ->
                st.c.useful_ops <- st.c.useful_ops + 1;
                fr.flts.(did) <- -.(ra st fr))
        | Opcode.Cvt_fi, [ d ], [ a ] ->
            let ra = warm_rdf a in
            Some
              (fun st fr ->
                st.c.useful_ops <- st.c.useful_ops + 1;
                let v = ra st fr in
                write_int fr d (Int64.of_float v) st.onat)
        | Opcode.Cvt_if, [ d ], [ a ] ->
            let ra = warm_rd a in
            let did = d.Reg.id in
            Some
              (fun st fr ->
                st.c.useful_ops <- st.c.useful_ops + 1;
                fr.flts.(did) <- Int64.to_float (ra st fr))
        | (Opcode.Mov | Opcode.Sxt _), [ d ], [ a ] ->
            if d.Reg.cls = Reg.Flt then begin
              let ra = warm_rdf a in
              let did = d.Reg.id in
              Some
                (fun st fr ->
                  st.c.useful_ops <- st.c.useful_ops + 1;
                  fr.flts.(did) <- ra st fr)
            end
            else begin
              let sh =
                match op with
                | Opcode.Sxt sz -> 64 - (8 * Opcode.size_bytes sz)
                | _ -> 0
              in
              let did = d.Reg.id in
              match a with
              | Operand.Reg x
                when did <> 0 && sh = 0 && x.Reg.cls = Reg.Int && x.Reg.id <> 0
                ->
                  (* plain register copy: the dominant mov shape *)
                  let ia = x.Reg.id in
                  Some
                    (fun st fr ->
                      st.c.useful_ops <- st.c.useful_ops + 1;
                      fr.ints.(did) <- fr.ints.(ia);
                      fr.nat.(did) <- fr.nat.(ia))
              | Operand.Imm v when did <> 0 && sh = 0 ->
                  Some
                    (fun st fr ->
                      st.c.useful_ops <- st.c.useful_ops + 1;
                      fr.ints.(did) <- v;
                      fr.nat.(did) <- false)
              | _ ->
                  let ra = warm_rd a in
                  Some
                    (fun st fr ->
                      st.c.useful_ops <- st.c.useful_ops + 1;
                      let v = ra st fr in
                      let v =
                        if sh = 0 then v
                        else Int64.shift_right (Int64.shift_left v sh) sh
                      in
                      write_int fr d v st.onat)
            end
        | Opcode.Lea, [ d ], [ base; off ] -> (
            let did = d.Reg.id in
            match (base, off) with
            | Operand.Reg x, Operand.Imm v
              when did <> 0 && x.Reg.cls = Reg.Int && x.Reg.id <> 0 ->
                let ib = x.Reg.id in
                Some
                  (fun st fr ->
                    st.c.useful_ops <- st.c.useful_ops + 1;
                    fr.ints.(did) <- Int64.add fr.ints.(ib) v;
                    fr.nat.(did) <- false)
            | _ ->
                let rb = warm_rd base and ro = warm_rd off in
                Some
                  (fun st fr ->
                    st.c.useful_ops <- st.c.useful_ops + 1;
                    let vb = rb st fr in
                    let vo = ro st fr in
                    write_int fr d (Int64.add vb vo) false))
        | Opcode.Ld (sz, spec), [ d ], [ a ] ->
            let ra = warm_rd a in
            let is_float = d.Reg.cls = Reg.Flt in
            let bytes = Opcode.size_bytes sz in
            let adv = spec = Opcode.Spec_advanced in
            let nonspec = spec = Opcode.Nonspec in
            let did = d.Reg.id in
            Some
              (fun st fr ->
                st.c.useful_ops <- st.c.useful_ops + 1;
                if not nonspec then st.c.spec_loads <- st.c.spec_loads + 1;
                let addr = ra st fr in
                let na = st.onat in
                if not nonspec then emit st Epic_obs.Trace.Spec_load addr;
                if na then begin
                  if nonspec then
                    st.c.nat_consumed <- st.c.nat_consumed + 1;
                  write_int fr d 0L true
                end
                else
                  match translate st addr spec with
                  | `Nat _ -> write_int fr d 0L true
                  | `Ok _ ->
                      if adv then Hashtbl.replace fr.alat did (addr, bytes);
                      dcache_warm st addr ~is_float;
                      st.ld_extra <- 0;
                      let raw = Memimage.read st.mem addr bytes in
                      if is_float then write_flt fr d (Int64.float_of_bits raw)
                      else write_int fr d raw false)
        | Opcode.St sz, _, [ a; v ] ->
            let ra = warm_rd a in
            let rv : t -> frame -> int64 =
              match v with
              | Operand.Reg r when r.Reg.cls = Reg.Flt ->
                  let id = r.Reg.id in
                  fun st fr ->
                    st.onat <- false;
                    Int64.bits_of_float fr.flts.(id)
              | Operand.Fimm fv ->
                  let bits = Int64.bits_of_float fv in
                  fun st _ ->
                    st.onat <- false;
                    bits
              | _ -> warm_rd v
            in
            let bytes = Opcode.size_bytes sz in
            Some
              (fun st fr ->
                st.c.useful_ops <- st.c.useful_ops + 1;
                let addr = ra st fr in
                let na = st.onat in
                let data = rv st fr in
                if na || st.onat then
                  st.c.nat_consumed <- st.c.nat_consumed + 1
                else
                  match translate st addr Opcode.Nonspec with
                  | `Ok _ ->
                      if Hashtbl.length fr.alat > 0 then
                        Hashtbl.filter_map_inplace
                          (fun _rid ((ea, n) as e) ->
                            let lo = max (Int64.to_int ea) (Int64.to_int addr) in
                            let hi =
                              min (Int64.to_int ea + n)
                                (Int64.to_int addr + bytes)
                            in
                            if lo < hi then None else Some e)
                          fr.alat;
                      Memimage.write st.mem addr bytes data;
                      dcache_warm st addr ~is_float:false
                  | `Nat _ -> raise (Machine_fault "store deferred (impossible)"))
        | Opcode.Br, _, [ Operand.Label l ] -> (
            (* the target block is resolved once at compile time; the
               deposit into [wjump] is a single preallocated store, so a
               warm taken branch costs no exception and no allocation *)
            let jump : t -> unit =
              match Hashtbl.find_opt df.df_by_label l with
              | Some tdb ->
                  let j = Some tdb in
                  fun st -> st.wjump <- j
              | None ->
                  fun _ ->
                    raise (Machine_fault ("branch to unknown label " ^ l))
            in
            match i.Instr.pred with
            | None ->
                Some
                  (fun st _ ->
                    st.c.useful_ops <- st.c.useful_ops + 1;
                    st.c.branches <- st.c.branches + 1;
                    Branch_pred.record_unconditional st.bp;
                    jump st)
            | Some _ ->
                let bid = i.Instr.id in
                Some
                  (fun st _ ->
                    st.c.useful_ops <- st.c.useful_ops + 1;
                    st.c.branches <- st.c.branches + 1;
                    let correct = Branch_pred.predict_and_update st.bp bid true in
                    if not correct then
                      emit st Epic_obs.Trace.Br_mispredict (Int64.of_int bid);
                    jump st))
        | (Opcode.Alloc | Opcode.Nop), _, _ ->
            Some (fun st _ -> st.c.useful_ops <- st.c.useful_ops + 1)
        | _ -> None
      in
      match body_opt with
      | None -> fallback
      | Some body ->
          let guarded : wop =
            match i.Instr.pred with
            | None -> body
            | Some p ->
                let pid = p.Reg.id in
                if pid = 0 then body
                else
                  let squash : wop =
                    match op with
                    | Opcode.Br ->
                        let bid = i.Instr.id in
                        fun st _ ->
                          st.c.squashed_ops <- st.c.squashed_ops + 1;
                          st.c.branches <- st.c.branches + 1;
                          let correct =
                            Branch_pred.predict_and_update st.bp bid false
                          in
                          if not correct then
                            emit st Epic_obs.Trace.Br_mispredict
                              (Int64.of_int bid)
                    | _ ->
                        fun st _ ->
                          st.c.squashed_ops <- st.c.squashed_ops + 1
                  in
                  fun st fr ->
                    if fr.prds.(pid) then body st fr else squash st fr
          in
          (guarded, match op with Opcode.Br -> false | _ -> true))

(* Compiled warm code for a block, built on first warm use and cached on
   the decoded block (decoded tables are per-machine, never shared). *)
and warm_ops_of (df : dfunc) (db : dblock) =
  match db.db_warm with
  | Some w -> w
  | None ->
      let w =
        match db.db_layout with
        | Some bl ->
            Array.map
              (fun (g : Layout.group) ->
                let compiled = List.map (compile_warm df) g.Layout.instrs in
                let wg_ops = Array.of_list (List.map fst compiled) in
                let rec prefix n = function
                  | (_, true) :: tl -> prefix (n + 1) tl
                  | _ -> n
                in
                { wg_ops; wg_prefix = prefix 0 compiled })
              bl.Layout.groups
        | None -> [||]
      in
      db.db_warm <- Some w;
      w

(* Execute a group's instruction list; a top-level walker rather than a
   [List.iter] closure so the per-group hot path allocates nothing. *)
and exec_instrs st fr = function
  | [] -> ()
  | i :: tl ->
      (if st.ck_track then
         match i.Instr.op with
         | Opcode.Br_call -> st.pos_rest <- List.length tl
         | _ -> ());
      exec_instr st fr i;
      exec_instrs st fr tl

(* Execute from [block] until return, navigating the predecoded tables.
   The walk is a loop over a mutable current block (no per-block state is
   allocated); it terminates only by exception ([Returned] for the normal
   return path, or a fault). *)
(* One issue group.  The sampling phase switch and the checkpoint trigger
   fire *before* the group executes (and before the groups counter
   advances), so a group ending in a taken branch cannot skip them and a
   checkpoint's position is exactly "about to execute group [gi]". *)
and exec_group st (fr : frame) (df : dfunc) (db : dblock) (g : Layout.group)
    (gi : int) =
  (match st.sampling with
  | Some sa ->
      sampling_step st sa;
      sa.Sampling.left <- sa.Sampling.left - 1
  | None -> ());
  if st.c.groups >= st.ck_at then save_checkpoint st fr db gi;
  st.c.groups <- st.c.groups + 1;
  if st.ck_track then begin
    st.pos_blk <- db.db_index;
    st.pos_gi <- gi
  end;
  (* fetch: one access per [bundles_per_cycle]-bundle chunk (32 bytes on
     itanium2) of the group's bundles *)
  let bpc = st.desc.Machine_desc.bundles_per_cycle in
  let chunks = max 1 ((g.Layout.n_bundles + bpc - 1) / bpc) in
  if st.warm then begin
    (* warm fetch: one I-side probe per group keeps the instruction
       hierarchy warm; the line filter makes straight-line and tight-loop
       code a single compare *)
    st.warm_ttl <- st.warm_ttl - 1;
    if st.warm_ttl <= 0 then warm_flush_filters st;
    let line = Cache.line_of st.l1i g.Layout.addr in
    let slot = line land (warm_filter_size - 1) in
    if st.warm_l1i_lines.(slot) <> line then begin
      st.warm_l1i_lines.(slot) <- line;
      if not (Cache.access st.l1i g.Layout.addr) then
        if not (Cache.access st.l2 g.Layout.addr) then
          ignore (Cache.access st.l3 g.Layout.addr)
    end
  end
  else
    for k = 0 to chunks - 1 do
      (* k = 0 (almost always the only chunk) reuses the group's
         address box instead of re-adding an offset of zero *)
      let addr =
        if k = 0 then g.Layout.addr
        else Int64.add g.Layout.addr (Int64.of_int (k * bpc * 16))
      in
      let pen = icache_penalty st addr in
      if pen > 0 then begin
        charge st Accounting.Front_end pen;
        advance st pen
      end
    done;
  st.c.nop_ops <- st.c.nop_ops + g.Layout.n_nops;
  (* issue: one cycle per fetch chunk *)
  charge st Accounting.Unstalled chunks;
  advance st chunks;
  (if st.warm then begin
     (* slow warm path (detail->warm flip mid-block): run the compiled
        ops, converting a deposited jump back into the [Taken] exception
        the surrounding detailed block loop expects *)
     let wops = (warm_ops_of df db).(gi).wg_ops in
     let len = Array.length wops in
     let k = ref 0 in
     while !k < len && st.wjump == None do
       if st.fuel <= 0 then raise Out_of_fuel;
       st.fuel <- st.fuel - 1;
       wops.(!k) st fr;
       incr k
     done;
     match st.wjump with
     | Some ndb ->
         st.wjump <- None;
         raise (Taken ndb.db_block.Block.label)
     | None -> ()
   end
   else exec_instrs st fr g.Layout.instrs);
  (* sampling attribution point: this group's cycles (issue, stalls,
     penalties) belong to the current block *)
  sample_tick st

(* Detailed execution of one block starting at group [gi0]; returns the
   next block.  [gi0] > 0 happens when the warm fast path flips to a
   detail phase mid-block and hands the tail over. *)
and exec_detail_block st (fr : frame) (df : dfunc) (db : dblock)
    (bl : Layout.block_layout) (gi0 : int) =
  try
    let groups = bl.Layout.groups in
    for gi = gi0 to Array.length groups - 1 do
      exec_group st fr df db groups.(gi) gi
    done;
    (* fall through *)
    match db.db_fall with
    | Some ndb -> ndb
    | None ->
        raise
          (Machine_fault
             (fr.func.Func.name ^ ": fell off " ^ db.db_block.Block.label))
  with Taken l -> (
    sample_tick st;
    let tgt =
      if l == df.df_hot_label then df.df_hot_target
      else begin
        let t = Hashtbl.find_opt df.df_by_label l in
        df.df_hot_label <- l;
        df.df_hot_target <- t;
        t
      end
    in
    match tgt with
    | Some ndb -> ndb
    | None -> raise (Machine_fault ("branch to unknown label " ^ l)))

(* Warm (fast-forward) execution of one block; returns the next block.
   The per-group harness is inlined: no checkpoint hook (exclusive with
   sampling), no charges or clock (warm no-ops), the sampling countdown
   decremented in place, and taken branches arrive through the [wjump]
   mailbox with their targets already resolved — no exceptions, no label
   hashing.  When the countdown expires the phase flips to detail and the
   rest of the block is handed to [exec_detail_block]. *)
and exec_warm_block st (fr : frame) (df : dfunc) (db : dblock)
    (bl : Layout.block_layout) =
  let sa =
    match st.sampling with Some sa -> sa | None -> assert false
    (* st.warm is only ever set by [sampling_step] *)
  in
  let wgs = warm_ops_of df db in
  let groups = bl.Layout.groups in
  let n = Array.length groups in
  let next = ref None in
  let gi = ref 0 in
  while !next == None do
    if !gi >= n then
      match db.db_fall with
      | Some _ as ndb -> next := ndb
      | None ->
          raise
            (Machine_fault
               (fr.func.Func.name ^ ": fell off " ^ db.db_block.Block.label))
    else if not st.warm then
      (* a callee's execution flipped the phase; finish detailed *)
      next := Some (exec_detail_block st fr df db bl !gi)
    else if sa.Sampling.left <= 0 then
      (* phase boundary: flips to detail, handled by the branch above *)
      sampling_step st sa
    else begin
      sa.Sampling.left <- sa.Sampling.left - 1;
      st.c.groups <- st.c.groups + 1;
      st.warm_ttl <- st.warm_ttl - 1;
      if st.warm_ttl <= 0 then warm_flush_filters st;
      let g = groups.(!gi) in
      (* warm fetch: one I-side probe per group behind the line filter *)
      let line = Cache.line_of st.l1i g.Layout.addr in
      let slot = line land (warm_filter_size - 1) in
      if st.warm_l1i_lines.(slot) <> line then begin
        st.warm_l1i_lines.(slot) <- line;
        if not (Cache.access st.l1i g.Layout.addr) then
          if not (Cache.access st.l2 g.Layout.addr) then
            ignore (Cache.access st.l3 g.Layout.addr)
      end;
      st.c.nop_ops <- st.c.nop_ops + g.Layout.n_nops;
      let wg = Array.unsafe_get wgs !gi in
      let wops = wg.wg_ops in
      let len = Array.length wops in
      let p = wg.wg_prefix in
      (* pure prefix: one fuel gate, no jump checks (the ops cannot
         deposit one); the under-fuelled slow loop keeps the exhaustion
         point exact *)
      if st.fuel >= p then begin
        st.fuel <- st.fuel - p;
        for k = 0 to p - 1 do
          (Array.unsafe_get wops k) st fr
        done
      end
      else begin
        let k = ref 0 in
        while !k < p do
          if st.fuel <= 0 then raise Out_of_fuel;
          st.fuel <- st.fuel - 1;
          (Array.unsafe_get wops !k) st fr;
          incr k
        done
      end;
      (if p < len then begin
         let k = ref p in
         while !k < len && st.wjump == None do
           if st.fuel <= 0 then raise Out_of_fuel;
           st.fuel <- st.fuel - 1;
           (Array.unsafe_get wops !k) st fr;
           incr k
         done
       end);
      match st.wjump with
      | Some _ as j ->
          st.wjump <- None;
          next := j
      | None -> incr gi
    end
  done;
  match !next with Some ndb -> ndb | None -> assert false

and exec_blocks st (fr : frame) (df : dfunc) (block : dblock) =
  let cur = ref block in
  while true do
    let db = !cur in
    match db.db_layout with
    | None ->
        raise (Machine_fault ("no layout for block " ^ db.db_block.Block.label))
    | Some bl ->
        st.cur_block <- db.db_block.Block.label;
        cur :=
          (if st.warm then exec_warm_block st fr df db bl
           else exec_detail_block st fr df db bl 0)
  done

(* Run a whole program; returns (exit code, output, state). *)
let run ?fuel ?trace ?profile ?experiment ?experiments ?desc ?sampling
    ?checkpoint_at (p : Program.t) (layout : Layout.t) (input : int64 array) =
  (match (sampling, checkpoint_at) with
  | Some _, Some _ ->
      (* a checkpoint must capture exact state; a sampled run's accounting
         is an estimate, so the combination is rejected rather than
         silently producing an inexact checkpoint *)
      invalid_arg "Machine.run: sampling and checkpoint_at are exclusive"
  | _ -> ());
  let st =
    create ?fuel ?trace ?profile ?experiment ?experiments ?desc ?sampling
      ?checkpoint_at p layout input
  in
  let main_fr = fresh_frame (Program.find_func_exn p p.Program.entry) in
  main_fr.ints.(Reg.sp.Reg.id) <- Int64.sub Program.stack_top 128L;
  let code =
    try
      match exec_call st main_fr p.Program.entry [] with
      | (v, _) :: _ -> Int64.to_int v
      | [] -> 0
    with Exit_program c -> c
  in
  (* settle any samples still owed to the last attribution point *)
  sample_tick st;
  (match st.sampling with
  | Some sa ->
      st.warm <- false;
      st.sample_summary <-
        Some (Sampling.finalize sa st.acc ~total_groups:st.c.groups)
  | None -> ());
  (code, Buffer.contents st.output, st)

let checkpoint st = st.ck_saved
let sample_summary st = st.sample_summary

(* The fused experiments' final accumulators, in the order the experiment
   list was given; [[||]] when the run carried none. *)
let fused_accounts st =
  match st.exps with
  | None -> [||]
  | Some s -> Accounting.set_accounts s

(* --- resume ---------------------------------------------------------------

   Rebuild a machine from a checkpoint and run it to completion.  The
   decoded tables are rebuilt fresh (they hold a mutable hot-label memo,
   so they are never shared between machines), and the checkpoint's deep
   copies are copied *again* into the new machine, so one checkpoint can
   seed any number of resumed runs — including concurrently, from separate
   domains. *)

let rec drop n = function
  | l when n <= 0 -> l
  | [] -> []
  | _ :: tl -> drop (n - 1) tl

(* Continue a function body from mid-block: when [mid], the instruction
   suffix [tail] of group [gi0] runs first (its fetch/issue charges were
   paid before capture); otherwise group [gi0] itself has not started.
   After the first block the walk rejoins [exec_blocks]. *)
let resume_blocks st (fr : frame) (df : dfunc) (db : dblock) (gi0 : int)
    ~(mid : bool) (tail : Instr.t list) =
  let b = db.db_block in
  match db.db_layout with
  | None -> raise (Machine_fault ("no layout for block " ^ b.Block.label))
  | Some bl ->
      st.cur_block <- b.Block.label;
      let next =
        try
          let groups = bl.Layout.groups in
          let start =
            if mid then begin
              exec_instrs st fr tail;
              sample_tick st;
              gi0 + 1
            end
            else gi0
          in
          for gi = start to Array.length groups - 1 do
            exec_group st fr df db groups.(gi) gi
          done;
          (match db.db_fall with
          | Some ndb -> ndb
          | None ->
              raise
                (Machine_fault (fr.func.Func.name ^ ": fell off " ^ b.Block.label)))
        with Taken l -> (
          sample_tick st;
          match Hashtbl.find_opt df.df_by_label l with
          | Some ndb -> ndb
          | None -> raise (Machine_fault ("branch to unknown label " ^ l)))
      in
      exec_blocks st fr df next

(* Rebuild one checkpointed stack level and run it to completion,
   innermost level first.  For a level interrupted by a call ([ke_rest]
   >= 0) the deeper levels run first, then [exec_call]'s exact return
   sequence is replayed — result binding, sample settlement, attribution
   revert, return-overhead and RSE fill charges — so cycles and samples
   land in the same order as an uninterrupted run. *)
let rec resume_entries st ~caller_func ~caller_block = function
  | [] -> invalid_arg "Machine.resume: empty checkpoint stack"
  | (e : ck_entry) :: deeper ->
      let fr = materialize_frame st e.ke_frame in
      let df =
        match Hashtbl.find_opt st.decoded e.ke_frame.kf_func with
        | Some df -> df
        | None ->
            raise
              (Machine_fault
                 ("resume: unknown function " ^ e.ke_frame.kf_func))
      in
      if e.ke_blk < 0 || e.ke_blk >= Array.length df.df_blocks then
        raise (Machine_fault ("resume: bad block index in " ^ e.ke_frame.kf_func));
      let db = df.df_blocks.(e.ke_blk) in
      st.cur_func <- e.ke_frame.kf_func;
      let result =
        try
          (if e.ke_rest < 0 then
             (* innermost: capture fired just before group [ke_gi] *)
             resume_blocks st fr df db e.ke_gi ~mid:false []
           else begin
             (* a call is in flight inside group [ke_gi]: run the callee
                (and everything below it) to completion first *)
             let bl =
               match db.db_layout with
               | Some bl -> bl
               | None ->
                   raise
                     (Machine_fault
                        ("resume: no layout for block " ^ db.db_block.Block.label))
             in
             let instrs = bl.Layout.groups.(e.ke_gi).Layout.instrs in
             let n = List.length instrs in
             let calli = List.nth instrs (n - e.ke_rest - 1) in
             let results =
               resume_entries st ~caller_func:e.ke_frame.kf_func
                 ~caller_block:db.db_block.Block.label deeper
             in
             st.cur_block <- db.db_block.Block.label;
             bind_results fr calli.Instr.dsts results;
             resume_blocks st fr df db e.ke_gi ~mid:true
               (drop (n - e.ke_rest) instrs)
           end);
          []
        with Returned vs -> vs
      in
      release_frame st fr;
      (* replay [exec_call]'s return sequence *)
      sample_tick st;
      st.cur_func <- caller_func;
      st.cur_block <- caller_block;
      charge st Accounting.Unstalled st.desc.Machine_desc.return_overhead;
      advance st st.desc.Machine_desc.return_overhead;
      let fill_cycles = Rse.on_return st.rse in
      if fill_cycles > 0 then begin
        emit st Epic_obs.Trace.Rse_fill 0L;
        charge st Accounting.Rse fill_cycles;
        advance st fill_cycles
      end;
      result

(* Resume a checkpoint against a structurally identical (program, layout)
   pair; returns (exit code, output, state) like [run], with the output
   including the checkpointed prefix.  An [experiment] is applied both
   retroactively to the checkpointed accounting and to the remainder of
   the run.  Fuel defaults to the remaining fuel at capture, so a resumed
   run exhausts at the same point as the uninterrupted one. *)
let resume ?fuel ?trace ?profile ?experiment ?(experiments = [])
    ?(desc = Itanium.desc ()) (p : Program.t) (layout : Layout.t)
    (ck : checkpoint) =
  if experiment <> None && experiments <> [] then
    invalid_arg "Machine.resume: ?experiment and ?experiments are exclusive";
  if not (String.equal (Machine_desc.digest desc) ck.ck_desc_digest) then
    invalid_arg "Machine.resume: machine description differs from capture";
  Program.assign_addresses p;
  let decoded = Hashtbl.create 64 in
  List.iter
    (fun (f : Func.t) ->
      Hashtbl.replace decoded f.Func.name (decode_func layout f))
    p.Program.funcs;
  let acc = Accounting.copy ck.ck_acc in
  Accounting.set_experiment acc experiment;
  Accounting.apply_experiment_to_past acc experiment;
  (* each fused experiment resumes from its own copy of the prefix
     accounting with the experiment applied retroactively *)
  let exps =
    if experiments = [] then None
    else Some (Accounting.resume_set ~past:ck.ck_acc experiments)
  in
  let output = Buffer.create (max 256 (String.length ck.ck_output)) in
  Buffer.add_string output ck.ck_output;
  let st =
    {
      program = p;
      layout;
      decoded;
      mem = Memimage.copy ck.ck_mem;
      heap = ck.ck_heap;
      output;
      input = Array.copy ck.ck_input;
      l1i = Cache.copy ck.ck_l1i;
      l1d = Cache.copy ck.ck_l1d;
      l2 = Cache.copy ck.ck_l2;
      l3 = Cache.copy ck.ck_l3;
      dtlb = Tlb.copy ck.ck_dtlb;
      bp = Branch_pred.copy ck.ck_bp;
      rse = Rse.copy ck.ck_rse;
      desc;
      acc;
      c = { ck.ck_counters with useful_ops = ck.ck_counters.useful_ops };
      cycle = ck.ck_cycle;
      sb_work = ck.ck_sb_work;
      sb_last_cycle = ck.ck_sb_last_cycle;
      fuel = (match fuel with Some f -> f | None -> ck.ck_fuel);
      cur_func = "main";
      cur_block = "entry";
      trace;
      prof = profile;
      onat = false;
      ld_extra = 0;
      cur_bins = [||];
      cur_bins_for = "\000";
      exps;
      cur_xbins =
        (match exps with
        | None -> [||]
        | Some s -> Array.make (Accounting.set_size s) [||]);
      syms = Hashtbl.create 32;
      free_frames = [];
      warm = false;
      sampling = None;
      sample_summary = None;
      warm_tlb_pages = Array.make warm_filter_size (-1);
      warm_l1d_lines = Array.make warm_filter_size (-1);
      warm_l2_lines = Array.make warm_filter_size (-1);
      warm_l1i_lines = Array.make warm_filter_size (-1);
      wjump = None;
      warm_ttl = 0;
      ck_track = false;
      ck_at = max_int;
      ck_saved = None;
      ck_stack = [];
      pos_blk = -1;
      pos_gi = 0;
      pos_rest = 0;
    }
  in
  let code =
    try
      match
        resume_entries st ~caller_func:"main" ~caller_block:"entry" ck.ck_calls
      with
      | (v, _) :: _ -> Int64.to_int v
      | [] -> 0
    with Exit_program c -> c
  in
  sample_tick st;
  (code, Buffer.contents st.output, st)
