(** Fully-associative LRU data TLB (page size shared with
    [Epic_ir.Memimage]). *)

type t = {
  entries : int;
  pages : int array;
      (** page numbers as native ints ([-1] = invalid): a page number is a
          logical shift of the address by [Memimage.page_bits] >= 2 bits,
          so it always fits an OCaml int exactly *)
  age : int array;
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

val create : ?entries:int -> unit -> t
val page_of : int64 -> int

(** Lookup without filling; counts the access. *)
val lookup : t -> int64 -> bool

(** Install a translation (after a successful walk). *)
val fill : t -> int64 -> unit

val reset : t -> unit

(** Deep copy (private page/age arrays), for checkpointing. *)
val copy : t -> t
