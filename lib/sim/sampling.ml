(* SMARTS/SimPoint-style interval sampling for the machine simulator.
   Execution alternates between *detailed* phases (every stall charged, the
   clock advancing — exactly the plain simulator) and *warm* phases
   (functional execution with caches, TLB and branch predictor still
   updated but nothing charged and the clock frozen).  Because the
   simulator's functional state never reads the clock or the accounting,
   the architectural result (exit code, output, retired-op counters) of a
   sampled run is identical to a full run; only the cycle accounting is an
   estimate, extrapolated from the detailed phases.

   This module owns the plan, the runtime phase state and the finalize /
   confidence-bound math; the per-group phase switching itself lives in
   [Machine] (it has to flip the machine's warm flag and snapshot the
   accounting).  See DESIGN.md §13. *)

type plan = {
  interval : int;  (** groups per sampling period (detail + warm) *)
  detail : int;  (** detailed groups at the start of each period *)
  warmup : int;  (** extra detailed groups prepended to the first period *)
}

(* Defaults tuned on the 12-workload suite (EXPERIMENTS.md): the warmup
   covers program startup (cold caches, first-touch page walks), and a
   1/32 detail fraction keeps the geomean total-cycle error within the CI
   budget while leaving enough warm groups for the speedup to matter.
   512-group detail phases measured better than 256 at the same fraction:
   the cold-boundary bias (scoreboard and store buffer re-fill after a
   warm phase) is amortized over twice the groups. *)
let default_plan = { interval = 16384; detail = 512; warmup = 4096 }

let validate (p : plan) =
  if p.detail <= 0 then invalid_arg "Sampling: detail must be positive";
  if p.interval <= p.detail then
    invalid_arg "Sampling: interval must exceed detail";
  if p.warmup < 0 then invalid_arg "Sampling: warmup must be non-negative"

let key_fragment (p : plan) =
  Printf.sprintf "i%d:d%d:w%d" p.interval p.detail p.warmup

let parse_spec (s : string) =
  (* "INTERVAL:DETAIL" or "INTERVAL:DETAIL:WARMUP"; "" = defaults *)
  if s = "" then default_plan
  else
    let fail () =
      invalid_arg
        (Printf.sprintf
           "bad sampling spec %S (want INTERVAL:DETAIL[:WARMUP])" s)
    in
    match String.split_on_char ':' s with
    | [ a; b ] -> (
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some interval, Some detail ->
            let p = { default_plan with interval; detail } in
            validate p;
            p
        | _ -> fail ())
    | [ a; b; c ] -> (
        match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c)
        with
        | Some interval, Some detail, Some warmup ->
            let p = { interval; detail; warmup } in
            validate p;
            p
        | _ -> fail ())
    | _ -> fail ()

(* A per-experiment sampling track: a fused run's extra accumulators each
   get their own phase-entry snapshot and recorded deltas, taken at the
   same (groups-driven, accounting-independent) phase boundaries as the
   host's.  Each track therefore records exactly the deltas a serial
   sampled run of that experiment would, and [finalize] feeds them through
   the same estimator — so a fused sampled experiment's totals and bins
   are bit-identical to its serial sampled run's. *)
type track = {
  tr_acc : Accounting.t;
  tr_snap : float array;  (* length 9 *)
  mutable tr_recorded : (int * float array) list;
}

(* Runtime phase state, driven by [Machine] once per issue group. *)
type state = {
  plan : plan;
  mutable in_detail : bool;
  mutable left : int;  (* groups remaining in the current phase *)
  mutable phase_len : int;  (* total groups of the current phase *)
  mutable detail_groups : int;  (* detailed groups recorded so far *)
  mutable snap : float array;  (* accounting totals at detail-phase entry *)
  mutable recorded : (int * float array) list;
      (* closed detail phases, most recent first: (groups, category cycles) *)
  mutable n_recorded : int;
  mutable tracks : track list;  (* fused-experiment accumulators, if any *)
}

let make (p : plan) =
  validate p;
  {
    plan = p;
    in_detail = true;
    left = p.warmup + p.detail;
    phase_len = p.warmup + p.detail;
    detail_groups = 0;
    snap = Array.make 9 0.;
    recorded = [];
    n_recorded = 0;
    tracks = [];
  }

(* Attach fused-experiment accumulators.  Must be called before the run
   starts (their totals are still zero, matching the initial snapshot). *)
let attach (sa : state) (accs : Accounting.t array) =
  sa.tracks <-
    Array.to_list
      (Array.map
         (fun a ->
           { tr_acc = a; tr_snap = Array.make 9 0.; tr_recorded = [] })
         accs)

(* Re-snapshot at detail-phase entry: host totals plus every track's. *)
let resnap (sa : state) (totals : float array) =
  Array.blit totals 0 sa.snap 0 9;
  List.iter
    (fun tr -> Array.blit tr.tr_acc.Accounting.totals 0 tr.tr_snap 0 9)
    sa.tracks

(* Close the current detail phase of [len] groups: record the category
   cycles it charged (current totals minus the entry snapshot). *)
let record_phase (sa : state) (totals : float array) ~(len : int) =
  if len > 0 then begin
    let delta = Array.make 9 0. in
    for k = 0 to 8 do
      delta.(k) <- totals.(k) -. sa.snap.(k)
    done;
    sa.recorded <- (len, delta) :: sa.recorded;
    sa.n_recorded <- sa.n_recorded + 1;
    sa.detail_groups <- sa.detail_groups + len;
    List.iter
      (fun tr ->
        let d = Array.make 9 0. in
        for k = 0 to 8 do
          d.(k) <- tr.tr_acc.Accounting.totals.(k) -. tr.tr_snap.(k)
        done;
        tr.tr_recorded <- (len, d) :: tr.tr_recorded)
      sa.tracks
  end

(* The result block attached to a sampled run (and exported as JSON). *)
type summary = {
  s_plan : plan;
  s_total_groups : int;
  s_detail_groups : int;
  s_phases : int;  (* closed detail phases (warmup phase included) *)
  s_scale : float;  (* extrapolation factor applied to the accounting *)
  s_measured_cycles : float;  (* cycles actually charged in detail phases *)
  s_est_cycles : float;  (* extrapolated total (= the accounting total) *)
  s_ci95 : float;  (* +- bound on [s_est_cycles] from phase variance *)
  s_cat_ci95 : float array;  (* per-category +- bounds, length 9 *)
}

(* 95% confidence bounds from the inter-phase variance of per-group cycle
   rates, applied over the [extrap_groups] the steady-state rate is
   extrapolated across.  Only full-length detail phases enter the variance
   (the warmup phase and a truncated final phase have different lengths
   and cold-start bias); with fewer than two such phases the bound is
   reported as 0. *)
let confidence (sa : state) ~(extrap_groups : int) =
  let full =
    List.filter (fun (len, _) -> len = sa.plan.detail) sa.recorded
  in
  let n = List.length full in
  let cat_ci = Array.make 9 0. in
  let total_ci = ref 0. in
  if n >= 2 then begin
    let fn = float_of_int n in
    let tg = float_of_int extrap_groups in
    let bound rate_of =
      let mean =
        List.fold_left (fun s ph -> s +. rate_of ph) 0. full /. fn
      in
      let var =
        List.fold_left
          (fun s ph ->
            let d = rate_of ph -. mean in
            s +. (d *. d))
          0. full
        /. (fn -. 1.)
      in
      1.96 *. sqrt (var /. fn) *. tg
    in
    let rate_total (len, delta) =
      Array.fold_left ( +. ) 0. delta /. float_of_int len
    in
    total_ci := bound rate_total;
    for k = 0 to 8 do
      cat_ci.(k) <- bound (fun (len, delta) -> delta.(k) /. float_of_int len)
    done
  end;
  (!total_ci, cat_ci)

(* Finalize a sampled run: close the open phase, then replace the charged
   accounting with the extrapolated estimate, so the existing metrics /
   export pipeline reads extrapolated cycles with no change.

   The estimator is a hybrid (DESIGN.md §13): the *first* detail phase —
   program startup, deliberately lengthened by [warmup] — is kept at its
   exactly-measured cost, and only the steady-state rate from the later
   detail phases is extrapolated over the unmeasured groups.  Folding the
   cold-start phase into the average was measurably wrong: startup's
   compulsory misses inflate the per-group rate by tens of percent on the
   small end of the suite.

   Per-function bins are scaled by their category's estimate/measured
   ratio, so the by-function breakdown stays consistent with the totals.
   When the run never left detail (short programs), nothing is touched and
   the accounting is bit-identical to an unsampled run. *)
(* The hybrid estimator applied to one accumulator in place, from its own
   closed detail phases ([recorded], most recent first): keep the startup
   phase exactly measured and extrapolate the steady-state per-group rate
   over the rest.  Returns [extrap_groups] (for the confidence bound) and
   the estimated total.  Shared by the host accounting and every fused
   track, so a track's arithmetic is exactly what its serial run's
   [finalize] would do. *)
let extrapolate ~(recorded : (int * float array) list) (acc : Accounting.t)
    ~(total_groups : int) =
  (* oldest phase first; the head is the startup/warmup phase *)
  let phases = List.rev recorded in
  let startup_len, startup, steady_len, steady =
    match phases with
    | (wl, wd) :: rest ->
        let sl = List.fold_left (fun a (l, _) -> a + l) 0 rest in
        let sd = Array.make 9 0. in
        List.iter
          (fun (_, d) ->
            for k = 0 to 8 do
              sd.(k) <- sd.(k) +. d.(k)
            done)
          rest;
        if sl > 0 then (wl, wd, sl, sd)
        else
          (* the run ended before a second detail phase: the startup
             phase is the only rate sample there is *)
          (0, Array.make 9 0., wl, wd)
    | [] -> (0, Array.make 9 0., 0, Array.make 9 0.)
  in
  let extrap_groups = total_groups - startup_len in
  let totals = acc.Accounting.totals in
  let est = Array.make 9 0. in
  for k = 0 to 8 do
    est.(k) <-
      startup.(k)
      +. (steady.(k) /. float_of_int (max 1 steady_len))
         *. float_of_int extrap_groups
  done;
  (* rescale the per-function bins by each category's ratio before
     overwriting the totals (bins of a category with zero total are all
     zero and stay so) *)
  Hashtbl.iter
    (fun _ b ->
      for k = 0 to 8 do
        if totals.(k) > 0. then b.(k) <- b.(k) *. (est.(k) /. totals.(k))
      done)
    acc.Accounting.by_func;
  Array.blit est 0 totals 0 9;
  (extrap_groups, Array.fold_left ( +. ) 0. est)

let finalize (sa : state) (acc : Accounting.t) ~(total_groups : int) =
  if sa.in_detail then
    record_phase sa acc.Accounting.totals ~len:(sa.phase_len - sa.left);
  let totals = acc.Accounting.totals in
  let measured = Array.fold_left ( +. ) 0. totals in
  let dg = sa.detail_groups in
  if dg = 0 || dg >= total_groups then
    (* never left detail: exact, untouched (host and tracks alike) *)
    let ci95, cat_ci95 = confidence sa ~extrap_groups:0 in
    {
      s_plan = sa.plan;
      s_total_groups = total_groups;
      s_detail_groups = dg;
      s_phases = sa.n_recorded;
      s_scale = 1.0;
      s_measured_cycles = measured;
      s_est_cycles = measured;
      s_ci95 = ci95;
      s_cat_ci95 = cat_ci95;
    }
  else begin
    let extrap_groups, est_total =
      extrapolate ~recorded:sa.recorded acc ~total_groups
    in
    List.iter
      (fun tr ->
        ignore
          (extrapolate ~recorded:tr.tr_recorded tr.tr_acc ~total_groups))
      sa.tracks;
    let ci95, cat_ci95 = confidence sa ~extrap_groups in
    {
      s_plan = sa.plan;
      s_total_groups = total_groups;
      s_detail_groups = dg;
      s_phases = sa.n_recorded;
      s_scale = est_total /. max measured 1e-12;
      s_measured_cycles = measured;
      s_est_cycles = est_total;
      s_ci95 = ci95;
      s_cat_ci95 = cat_ci95;
    }
  end
