(* Fully-associative LRU data TLB (page size shared with Memimage).

   Host-performance note (DESIGN.md §10): page numbers are native ints —
   the address shifted right logically by [Memimage.page_bits] >= 2 always
   fits an OCaml int exactly — so the lookup loop compares unboxed
   integers instead of boxed [Int64]s. *)

type t = {
  entries : int;
  pages : int array; (* -1 = invalid (page numbers are >= 0) *)
  age : int array;
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let create ?(entries = 32) () =
  {
    entries;
    pages = Array.make entries (-1);
    age = Array.make entries 0;
    clock = 0;
    accesses = 0;
    misses = 0;
  }

let page_of (addr : int64) =
  Int64.to_int (Int64.shift_right_logical addr Epic_ir.Memimage.page_bits)

(* Lookup without filling. *)
let lookup t (addr : int64) =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let page = page_of addr in
  let hit = ref (-1) in
  let k = ref 0 in
  while !hit < 0 && !k < t.entries do
    if t.pages.(!k) = page then hit := !k;
    incr k
  done;
  if !hit >= 0 then begin
    t.age.(!hit) <- t.clock;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    false
  end

(* Install a translation (after a successful walk). *)
let fill t (addr : int64) =
  let page = page_of addr in
  let victim = ref 0 in
  for k = 1 to t.entries - 1 do
    if t.age.(k) < t.age.(!victim) then victim := k
  done;
  t.pages.(!victim) <- page;
  t.age.(!victim) <- t.clock

let reset t =
  Array.fill t.pages 0 t.entries (-1);
  Array.fill t.age 0 t.entries 0;
  t.clock <- 0;
  t.accesses <- 0;
  t.misses <- 0

(* Deep copy for checkpointing. *)
let copy t = { t with pages = Array.copy t.pages; age = Array.copy t.age }
