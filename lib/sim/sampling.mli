(** SMARTS/SimPoint-style interval sampling: the plan (period geometry),
    the per-run phase state driven by {!Machine}, and the finalize math
    that extrapolates the detailed phases' cycle accounting to the whole
    run with per-category confidence bounds.  See DESIGN.md §13.

    A sampled run is architecturally exact — exit code, output and every
    retired-op counter are identical to a full run, because warm phases
    still execute every instruction and update the caches, TLB and branch
    predictor.  Only cycles (and the cache/TLB access counters, which the
    warm phases service through one-entry filters) are estimates. *)

type plan = {
  interval : int;  (** groups per sampling period (detail + warm) *)
  detail : int;  (** detailed groups at the start of each period *)
  warmup : int;  (** extra detailed groups prepended to the first period *)
}

val default_plan : plan
(** [{interval = 16384; detail = 512; warmup = 4096}], tuned on the
    12-workload suite (EXPERIMENTS.md accuracy table). *)

val validate : plan -> unit
(** Raises [Invalid_argument] unless [0 < detail < interval] and
    [warmup >= 0]. *)

val key_fragment : plan -> string
(** Canonical ["i<interval>:d<detail>:w<warmup>"] form, used in
    content-addressed cache keys (the session run cache). *)

val parse_spec : string -> plan
(** Parse ["INTERVAL:DETAIL"] or ["INTERVAL:DETAIL:WARMUP"]; the empty
    string is {!default_plan}.  Raises [Invalid_argument] on bad input. *)

(** A per-experiment sampling track: a fused run's extra accumulators each
    get their own phase-entry snapshot and recorded deltas, taken at the
    same groups-driven phase boundaries as the host's, then fed through
    the same estimator in {!finalize} — so a fused sampled experiment is
    bit-identical to its serial sampled run. *)
type track = {
  tr_acc : Accounting.t;
  tr_snap : float array;  (** length 9 *)
  mutable tr_recorded : (int * float array) list;
}

(** Runtime phase state, created by {!Machine.run} from a plan and driven
    once per issue group.  Transparent because the per-group switch logic
    lives in the machine's hot loop (it flips the warm flag and snapshots
    the accounting); treat it as private elsewhere. *)
type state = {
  plan : plan;
  mutable in_detail : bool;
  mutable left : int;  (** groups remaining in the current phase *)
  mutable phase_len : int;  (** total groups of the current phase *)
  mutable detail_groups : int;  (** detailed groups recorded so far *)
  mutable snap : float array;  (** accounting totals at detail-phase entry *)
  mutable recorded : (int * float array) list;
      (** closed detail phases, most recent first: (groups, cycles[9]) *)
  mutable n_recorded : int;
  mutable tracks : track list;  (** fused-experiment accumulators, if any *)
}

val make : plan -> state

val attach : state -> Accounting.t array -> unit
(** Attach fused-experiment accumulators as tracks.  Must be called before
    the run starts (their totals still zero, matching the initial
    snapshot). *)

val resnap : state -> float array -> unit
(** [resnap sa totals] re-snapshots at detail-phase entry: the host totals
    into [sa.snap] plus every track's own totals. *)

val record_phase : state -> float array -> len:int -> unit
(** [record_phase sa totals ~len] closes a detail phase of [len] groups,
    recording the category cycles charged since the phase-entry snapshot —
    for the host and for every attached track.  Called by the machine at
    detail->warm transitions. *)

type summary = {
  s_plan : plan;
  s_total_groups : int;
  s_detail_groups : int;
  s_phases : int;  (** closed detail phases, the warmup phase included *)
  s_scale : float;  (** extrapolation factor applied to the accounting *)
  s_measured_cycles : float;  (** cycles charged during detail phases *)
  s_est_cycles : float;  (** extrapolated total (= the accounting total) *)
  s_ci95 : float;  (** +- bound on [s_est_cycles] from phase variance *)
  s_cat_ci95 : float array;  (** per-category +- bounds, length 9 *)
}

val finalize : state -> Accounting.t -> total_groups:int -> summary
(** Close the open phase and scale the accounting in place — totals and
    every per-function bin — by [total_groups / detail_groups], so the
    metrics/export pipeline reads extrapolated cycles unchanged.  Every
    attached track is extrapolated the same way from its own recorded
    deltas.  When the run never left detail the scale is exactly 1.0 and
    the accounting is bit-identical to an unsampled run. *)
