(** Register Stack Engine model (Section 4.4): calls push stacked-register
    frames; when residency exceeds the physical stacked registers (96 on
    Itanium 2) the RSE spills the oldest frames (and refills on return),
    costing the cycles Figure 5 shows as "register stack engine".  Geometry
    and per-register cost default to {!Epic_mach.Machine_desc.itanium2}. *)

type frame = { size : int; mutable resident : int }

type t = {
  physical : int;
  cost_per_reg : int;
  mutable frames : frame list;
  mutable resident_total : int;
  mutable spills : int;
  mutable fills : int;
}

val create : ?physical:int -> ?cost_per_reg:int -> unit -> t

(** Push a frame of [size] stacked registers; returns spill cycles. *)
val on_call : t -> int -> int

(** Pop the current frame, refilling the caller; returns fill cycles. *)
val on_return : t -> int

val reset : t -> unit

(** Deep copy (private frame cells, order preserved), for checkpointing. *)
val copy : t -> t
