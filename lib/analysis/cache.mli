(** Per-function analysis cache with explicit, invalidation-tracked entries
    — the storage layer under the pass manager ({!Epic_opt.Passman}).

    Every analysis a transform consumes (dominance, liveness, natural loops,
    the per-block memory-dependence summary; program-level call graph and
    points-to) is fetched through here instead of calling [*.compute]
    directly.  Entries are keyed by function name (functions are mutated in
    place and their names are unique and stable); a pass that mutates a
    function reports it to the pass manager, which drops exactly the
    non-preserved entries via {!invalidate}.

    With {!self_check} on (the test suite turns it on), every cache hit is
    re-validated against a fresh recompute — cached-equals-fresh — so a
    missing invalidation fails loudly instead of silently serving stale
    dataflow. *)

type kind = Dominance | Liveness | Loops | Memdep | Callgraph | Points_to

val all_kinds : kind list
val kind_name : kind -> string

(** Per-block summary of the memory-ordering-relevant instructions (stores,
    and calls that may touch memory), as consumed by LICM's alias scan. *)
type memdep_summary = (string, Epic_ir.Instr.t list) Hashtbl.t

type t

val create : unit -> t

(** When true, every hit recomputes the analysis fresh and asserts equality
    with the cached value (raises [Failure] otherwise).  Off by default;
    the test suite enables it. *)
val self_check : bool ref

(** {1 Cached fetches} — compute on miss, reuse on hit. *)

val dominance : t -> Epic_ir.Func.t -> Dominance.t
val liveness : t -> Epic_ir.Func.t -> Liveness.t

(** Shares the cached dominator solution with {!dominance}. *)
val loops : t -> Epic_ir.Func.t -> Natural_loops.t

val memdep : t -> Epic_ir.Func.t -> memdep_summary
val callgraph : t -> Epic_ir.Program.t -> Callgraph.t

(** Cached points-to run.  On a miss this (re-)annotates every memory
    instruction's [mem_tag]; on a hit the existing annotations stand. *)
val points_to : t -> enabled:bool -> Epic_ir.Program.t -> Points_to.t

(** {1 Invalidation} *)

(** Drop the entries of one function, except the [preserve]d kinds.
    Program-level kinds ([Callgraph], [Points_to]) are dropped too unless
    preserved — a change to any function invalidates them. *)
val invalidate : t -> ?preserve:kind list -> string -> unit

(** Drop the given kinds for every function (and the program-level entries
    if listed).  Used e.g. after re-profiling, which changes the weights
    that loop trip counts and call-graph edge counts are derived from
    without touching any IR structure. *)
val invalidate_kinds : t -> kind list -> unit

(** Drop everything except the [preserve]d kinds. *)
val invalidate_all : t -> ?preserve:kind list -> unit -> unit

(** {1 Counters} *)

(** Cumulative (hits, misses) per analysis kind, in [all_kinds] order. *)
val stats : t -> (kind * (int * int)) list

(** [(kind name, hits, misses)] rows, skipping kinds never queried. *)
val stats_rows : t -> (string * int * int) list

(** [diff_rows before after] — per-kind counter deltas, skipping zero rows;
    [before]/[after] as returned by {!stats}. *)
val diff_rows :
  (kind * (int * int)) list ->
  (kind * (int * int)) list ->
  (string * int * int) list
