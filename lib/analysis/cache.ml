(* Per-function analysis cache (the storage layer under the pass manager).
   Entries are keyed by function name; invalidation is explicit and driven
   by the pass manager's preservation contracts.  A debug self-check mode
   re-validates every hit against a fresh recompute. *)

open Epic_ir

type kind = Dominance | Liveness | Loops | Memdep | Callgraph | Points_to

let all_kinds = [ Dominance; Liveness; Loops; Memdep; Callgraph; Points_to ]

let kind_name = function
  | Dominance -> "dominance"
  | Liveness -> "liveness"
  | Loops -> "loops"
  | Memdep -> "memdep"
  | Callgraph -> "callgraph"
  | Points_to -> "points-to"

type memdep_summary = (string, Instr.t list) Hashtbl.t

(* One function's cached entries.  [None] = absent (never computed, or
   invalidated). *)
type entry = {
  mutable dom : Dominance.t option;
  mutable live : Liveness.t option;
  mutable loops : Natural_loops.t option;
  mutable memdep : memdep_summary option;
}

type counter = { mutable hits : int; mutable misses : int }

type t = {
  funcs : (string, entry) Hashtbl.t;
  mutable cg : Callgraph.t option;
  mutable pt : (bool * Points_to.t) option; (* keyed on the [enabled] flag *)
  counters : (kind * counter) list;
}

let self_check = ref false

let create () =
  {
    funcs = Hashtbl.create 16;
    cg = None;
    pt = None;
    counters = List.map (fun k -> (k, { hits = 0; misses = 0 })) all_kinds;
  }

let counter t k = List.assoc k t.counters

let entry t (f : Func.t) =
  match Hashtbl.find_opt t.funcs f.Func.name with
  | Some e -> e
  | None ->
      let e = { dom = None; live = None; loops = None; memdep = None } in
      Hashtbl.replace t.funcs f.Func.name e;
      e

let check_failure k fname =
  failwith
    (Printf.sprintf
       "Epic_analysis.Cache: stale %s entry for function %s (cached <> \
        fresh; a pass mutated the IR without invalidating)"
       (kind_name k) fname)

(* Generic fetch: [get]/[set] project the slot out of the entry, [compute]
   builds a fresh value, [eq] validates a hit under [self_check]. *)
let fetch t k (f : Func.t) ~get ~set ~compute ~eq =
  let e = entry t f in
  let c = counter t k in
  match get e with
  | Some v ->
      c.hits <- c.hits + 1;
      if !self_check && not (eq v (compute ())) then
        check_failure k f.Func.name;
      v
  | None ->
      c.misses <- c.misses + 1;
      let v = compute () in
      set e (Some v);
      v

let dominance t f =
  fetch t Dominance f
    ~get:(fun e -> e.dom)
    ~set:(fun e v -> e.dom <- v)
    ~compute:(fun () -> Dominance.compute f)
    ~eq:Dominance.equal

let liveness t f =
  fetch t Liveness f
    ~get:(fun e -> e.live)
    ~set:(fun e v -> e.live <- v)
    ~compute:(fun () -> Liveness.compute f)
    ~eq:Liveness.equal

let loops t f =
  fetch t Loops f
    ~get:(fun e -> e.loops)
    ~set:(fun e v -> e.loops <- v)
    ~compute:(fun () -> Natural_loops.compute ~dom:(dominance t f) f)
    ~eq:Natural_loops.equal

let compute_memdep (f : Func.t) : memdep_summary =
  let tbl = Hashtbl.create (List.length f.Func.blocks) in
  List.iter
    (fun (b : Block.t) ->
      Hashtbl.replace tbl b.Block.label
        (List.filter
           (fun (i : Instr.t) ->
             Instr.is_store i
             || (Instr.is_call i && Memdep.call_touches_memory i))
           b.Block.instrs))
    f.Func.blocks;
  tbl

let memdep_equal (a : memdep_summary) (b : memdep_summary) =
  Hashtbl.length a = Hashtbl.length b
  && Hashtbl.fold
       (fun l is acc ->
         acc
         &&
         match Hashtbl.find_opt b l with
         | Some is' ->
             List.length is = List.length is'
             && List.for_all2 (fun (x : Instr.t) y -> x == y) is is'
         | None -> false)
       a true

let memdep t f =
  fetch t Memdep f
    ~get:(fun e -> e.memdep)
    ~set:(fun e v -> e.memdep <- v)
    ~compute:(fun () -> compute_memdep f)
    ~eq:memdep_equal

let callgraph t (p : Program.t) =
  let c = counter t Callgraph in
  match t.cg with
  | Some cg ->
      c.hits <- c.hits + 1;
      cg
  | None ->
      c.misses <- c.misses + 1;
      let cg = Callgraph.compute p in
      t.cg <- Some cg;
      cg

let points_to t ~enabled (p : Program.t) =
  let c = counter t Points_to in
  match t.pt with
  | Some (en, pt) when en = enabled ->
      c.hits <- c.hits + 1;
      pt
  | _ ->
      c.misses <- c.misses + 1;
      let pt = Points_to.analyze ~enabled p in
      t.pt <- Some (enabled, pt);
      pt

let invalidate t ?(preserve = []) fname =
  let keep k = List.mem k preserve in
  (match Hashtbl.find_opt t.funcs fname with
  | Some e ->
      if not (keep Dominance) then e.dom <- None;
      if not (keep Liveness) then e.live <- None;
      if not (keep Loops) then e.loops <- None;
      if not (keep Memdep) then e.memdep <- None
  | None -> ());
  if not (keep Callgraph) then t.cg <- None;
  if not (keep Points_to) then t.pt <- None

let invalidate_kinds t kinds =
  let drop k = List.mem k kinds in
  Hashtbl.iter
    (fun _ e ->
      if drop Dominance then e.dom <- None;
      if drop Liveness then e.live <- None;
      if drop Loops then e.loops <- None;
      if drop Memdep then e.memdep <- None)
    t.funcs;
  if drop Callgraph then t.cg <- None;
  if drop Points_to then t.pt <- None

let invalidate_all t ?(preserve = []) () =
  invalidate_kinds t (List.filter (fun k -> not (List.mem k preserve)) all_kinds)

let stats t = List.map (fun (k, c) -> (k, (c.hits, c.misses))) t.counters

let stats_rows t =
  List.filter_map
    (fun (k, c) ->
      if c.hits = 0 && c.misses = 0 then None
      else Some (kind_name k, c.hits, c.misses))
    t.counters

let diff_rows before after =
  List.filter_map
    (fun (k, (h1, m1)) ->
      let h0, m0 = List.assoc k before in
      if h1 = h0 && m1 = m0 then None
      else Some (kind_name k, h1 - h0, m1 - m0))
    after
