(* Dominator analysis over the block CFG, by the classic iterative dataflow
   formulation (adequate at our CFG sizes).  Used by natural-loop detection,
   GVN scoping, LICM and the structural transforms' safety checks. *)

open Epic_ir

type t = {
  func : Func.t;
  idom : (string, string) Hashtbl.t; (* label -> immediate dominator *)
  order : string array; (* reverse postorder *)
}

let reverse_postorder (f : Func.t) =
  let visited = Hashtbl.create 16 in
  let acc = ref [] in
  let rec visit label =
    if not (Hashtbl.mem visited label) then begin
      Hashtbl.add visited label ();
      (match Func.find_block f label with
      | Some b -> List.iter visit (Func.successors f b)
      | None -> ());
      acc := label :: !acc
    end
  in
  visit (Func.entry f).Block.label;
  Array.of_list !acc

let compute (f : Func.t) =
  let order = reverse_postorder f in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i l -> Hashtbl.replace index l i) order;
  let preds = Func.predecessors f in
  let idom : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let entry = (Func.entry f).Block.label in
  Hashtbl.replace idom entry entry;
  (* Cooper-Harvey-Kennedy iterative algorithm. *)
  let intersect a b =
    let rec go a b =
      if a = b then a
      else
        let ia = Hashtbl.find index a and ib = Hashtbl.find index b in
        if ia > ib then go (Hashtbl.find idom a) b
        else go a (Hashtbl.find idom b)
    in
    go a b
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun label ->
        if label <> entry then begin
          let ps =
            match Hashtbl.find_opt preds label with Some l -> l | None -> []
          in
          (* only predecessors that are themselves reachable & processed *)
          let ps = List.filter (fun p -> Hashtbl.mem index p) ps in
          let processed = List.filter (fun p -> Hashtbl.mem idom p) ps in
          match processed with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if Hashtbl.find_opt idom label <> Some new_idom then begin
                Hashtbl.replace idom label new_idom;
                changed := true
              end
        end)
      order
  done;
  { func = f; idom; order }

let entry_label t = (Func.entry t.func).Block.label

let immediate_dominator t label =
  if label = entry_label t then None else Hashtbl.find_opt t.idom label

(* Does [a] dominate [b]?  (Reflexive.) *)
let dominates t a b =
  let rec go cur =
    if cur = a then true
    else
      match immediate_dominator t cur with
      | Some d -> go d
      | None -> false
  in
  if not (Hashtbl.mem t.idom b) then false else go b

(* Children in the dominator tree. *)
let children t label =
  Hashtbl.fold
    (fun l d acc -> if d = label && l <> label then l :: acc else acc)
    t.idom []

(* Blocks in reverse postorder (reachable blocks only). *)
let rpo t = t.order

(* Structural equality of two dominator solutions over the same function:
   same reverse postorder and the same immediate-dominator map.  Used by the
   analysis cache's debug self-check (cached-equals-fresh). *)
let equal a b =
  a.order = b.order
  && Hashtbl.length a.idom = Hashtbl.length b.idom
  && Hashtbl.fold
       (fun l d acc -> acc && Hashtbl.find_opt b.idom l = Some d)
       a.idom true
