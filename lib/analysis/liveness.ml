(* Block-level live-variable analysis, used by dead-code elimination, the
   register allocator's interference construction, and the scheduler's
   check that hoisting a definition above a side exit is safe. *)

open Epic_ir

type t = {
  live_in : (string, Reg.Set.t) Hashtbl.t;
  live_out : (string, Reg.Set.t) Hashtbl.t;
  use : (string, Reg.Set.t) Hashtbl.t;
  def : (string, Reg.Set.t) Hashtbl.t;
}

let never_tracked (r : Reg.t) = Reg.equal r Reg.r0 || Reg.equal r Reg.p0

(* Does this instruction write its destinations regardless of its guard?
   Unpredicated instructions do; so do unconditional-type compares, which
   clear their predicate targets even when the qualifying predicate is
   false — recognizing this is what keeps hyperblock predicates from
   looking live around loop back edges. *)
let killing_def (i : Instr.t) =
  i.Instr.pred = None
  ||
  match i.Instr.op with
  | Opcode.Cmp (_, Opcode.Unc) | Opcode.Fcmp (_, Opcode.Unc) -> true
  | _ -> false

(* Per-block upward-exposed uses and definitions.  A predicated definition is
   not a "kill": when the guard is false the old value survives, so guarded
   defs count as uses of the old live range for liveness purposes (we treat
   them simply as non-killing defs). *)
let local_sets (b : Block.t) =
  let use = ref Reg.Set.empty and def = ref Reg.Set.empty in
  List.iter
    (fun (i : Instr.t) ->
      List.iter
        (fun r -> if (not (never_tracked r)) && not (Reg.Set.mem r !def) then use := Reg.Set.add r !use)
        (Instr.uses i);
      let killing = killing_def i in
      if killing then
        List.iter
          (fun r -> if not (never_tracked r) then def := Reg.Set.add r !def)
          (Instr.defs i)
      else
        (* conditional def: the old value may flow through *)
        List.iter
          (fun r ->
            if (not (never_tracked r)) && not (Reg.Set.mem r !def) then
              use := Reg.Set.add r !use)
          (Instr.defs i))
    b.Block.instrs;
  (!use, !def)

let compute (f : Func.t) =
  let use = Hashtbl.create 16 and def = Hashtbl.create 16 in
  List.iter
    (fun b ->
      let u, d = local_sets b in
      Hashtbl.replace use b.Block.label u;
      Hashtbl.replace def b.Block.label d)
    f.Func.blocks;
  let live_in = Hashtbl.create 16 and live_out = Hashtbl.create 16 in
  List.iter
    (fun b ->
      Hashtbl.replace live_in b.Block.label Reg.Set.empty;
      Hashtbl.replace live_out b.Block.label Reg.Set.empty)
    f.Func.blocks;
  let changed = ref true in
  while !changed do
    changed := false;
    (* iterate in reverse layout order for fast convergence *)
    List.iter
      (fun b ->
        let label = b.Block.label in
        let out =
          List.fold_left
            (fun acc s ->
              match Hashtbl.find_opt live_in s with
              | Some l -> Reg.Set.union acc l
              | None -> acc)
            Reg.Set.empty (Func.successors f b)
        in
        let inn =
          Reg.Set.union (Hashtbl.find use label)
            (Reg.Set.diff out (Hashtbl.find def label))
        in
        if not (Reg.Set.equal out (Hashtbl.find live_out label)) then begin
          Hashtbl.replace live_out label out;
          changed := true
        end;
        if not (Reg.Set.equal inn (Hashtbl.find live_in label)) then begin
          Hashtbl.replace live_in label inn;
          changed := true
        end)
      (List.rev f.Func.blocks)
  done;
  { live_in; live_out; use; def }

(* Structural equality of two liveness solutions: same per-block live-in and
   live-out sets.  Used by the analysis cache's debug self-check. *)
let equal a b =
  let tbl_equal ta tb =
    Hashtbl.length ta = Hashtbl.length tb
    && Hashtbl.fold
         (fun l s acc ->
           acc
           &&
           match Hashtbl.find_opt tb l with
           | Some s' -> Reg.Set.equal s s'
           | None -> false)
         ta true
  in
  tbl_equal a.live_in b.live_in && tbl_equal a.live_out b.live_out

let live_in t label =
  match Hashtbl.find_opt t.live_in label with Some s -> s | None -> Reg.Set.empty

let live_out t label =
  match Hashtbl.find_opt t.live_out label with Some s -> s | None -> Reg.Set.empty

(* Live registers immediately before each instruction of [b], as a list
   parallel to [b.instrs] (computed backwards from the fall-through
   live-out).  At each side-exit branch the target's live-in joins the set:
   a value dead on the fall-through path may still be observed at the
   exit. *)
let per_instr t (f : Func.t) (b : Block.t) =
  ignore f;
  let out = live_out t b.Block.label in
  let rec go acc live = function
    | [] -> acc
    | (i : Instr.t) :: rest ->
        let live =
          match Instr.branch_target i with
          | Some target -> Reg.Set.union live (live_in t target)
          | None -> live
        in
        let live =
          if killing_def i then
            Reg.Set.diff live (Reg.Set.of_list (Instr.defs i))
          else live
        in
        let live =
          List.fold_left
            (fun l r -> if never_tracked r then l else Reg.Set.add r l)
            live (Instr.uses i)
        in
        go (live :: acc) live rest
  in
  go [] out (List.rev b.Block.instrs)
