(* Natural-loop detection from back edges in the dominator tree, plus the
   profile-derived statistics (average trip count) that drive the loop
   peeling and unrolling heuristics of Sections 2.4 and 3.2. *)

open Epic_ir

type loop = {
  header : string;
  body : string list; (* includes the header *)
  back_edges : string list; (* sources of latch edges *)
  mutable avg_trips : float; (* from profile; 0 when no profile *)
}

type t = { loops : loop list }

let compute ?dom (f : Func.t) =
  let dom = match dom with Some d -> d | None -> Dominance.compute f in
  let back_edges = ref [] in
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          if Dominance.dominates dom s b.Block.label then
            back_edges := (b.Block.label, s) :: !back_edges)
        (Func.successors f b))
    f.Func.blocks;
  (* Group back edges by header and flood backwards from each latch. *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (latch, header) ->
      let existing =
        match Hashtbl.find_opt by_header header with Some l -> l | None -> []
      in
      Hashtbl.replace by_header header (latch :: existing))
    !back_edges;
  let preds = Func.predecessors f in
  let loops =
    Hashtbl.fold
      (fun header latches acc ->
        let body = Hashtbl.create 8 in
        Hashtbl.replace body header ();
        let rec flood label =
          if not (Hashtbl.mem body label) then begin
            Hashtbl.replace body label ();
            match Hashtbl.find_opt preds label with
            | Some ps -> List.iter flood ps
            | None -> ()
          end
        in
        List.iter flood latches;
        {
          header;
          body = Hashtbl.fold (fun l () bs -> l :: bs) body [];
          back_edges = latches;
          avg_trips = 0.;
        }
        :: acc)
      by_header []
  in
  (* Fill in average trip counts from profile weights: iterations per entry =
     header weight / (header weight - latch weights) when well-formed. *)
  List.iter
    (fun l ->
      match Func.find_block f l.header with
      | None -> ()
      | Some hb ->
          let header_w = hb.Block.weight in
          let latch_w =
            List.fold_left
              (fun acc latch ->
                match Func.find_block f latch with
                | Some lb ->
                    (* weight of the edge latch->header; approximate with the
                       latch block weight scaled by its branch probability
                       when the latch ends in a conditional branch to the
                       header *)
                    let edge_w =
                      List.fold_left
                        (fun w (i : Instr.t) ->
                          match Instr.branch_target i with
                          | Some t when t = l.header ->
                              let prob =
                                if i.Instr.pred = None then 1.0
                                else i.Instr.attrs.Instr.taken_prob
                              in
                              w +. (i.Instr.attrs.Instr.weight *. prob)
                          | _ -> w)
                        0. lb.Block.instrs
                    in
                    let edge_w =
                      if edge_w > 0. then edge_w
                      else if
                        (* fall-through latch *)
                        Func.successors f lb = [ l.header ]
                      then lb.Block.weight
                      else 0.
                    in
                    acc +. edge_w
                | None -> acc)
              0. l.back_edges
          in
          let entries = header_w -. latch_w in
          if entries > 0.5 then l.avg_trips <- header_w /. entries)
    loops;
  { loops }

(* Structural equality of two loop forests over the same function: the same
   loops (header, body sets, latch sets) and the same profiled trip counts.
   Used by the analysis cache's debug self-check. *)
let equal a b =
  let norm t =
    List.sort compare
      (List.map
         (fun l ->
           ( l.header,
             List.sort compare l.body,
             List.sort compare l.back_edges,
             l.avg_trips ))
         t.loops)
  in
  norm a = norm b

let innermost_first t =
  List.sort (fun a b -> compare (List.length a.body) (List.length b.body)) t.loops

(* The loop (if any) with the given header. *)
let find t header = List.find_opt (fun l -> l.header = header) t.loops

let in_loop l label = List.mem label l.body

(* Blocks outside the loop that the loop can exit to. *)
let exits (f : Func.t) l =
  List.concat_map
    (fun label ->
      match Func.find_block f label with
      | Some b -> List.filter (fun s -> not (in_loop l s)) (Func.successors f b)
      | None -> [])
    l.body
  |> List.sort_uniq compare
