(** Natural-loop detection (back edges under dominance) plus the
    profile-derived trip-count statistics that drive loop peeling and
    unrolling (paper Sections 2.4 and 3.2). *)

type loop = {
  header : string;
  body : string list;  (** includes the header *)
  back_edges : string list;  (** latch labels *)
  mutable avg_trips : float;
      (** header executions per loop entry, from profile weights; a body
          that "typically executes exactly once" has avg_trips ≈ 2 *)
}

type t = { loops : loop list }

(** [dom] lets callers (notably the analysis cache) share an
    already-computed dominator solution instead of recomputing one. *)
val compute : ?dom:Dominance.t -> Epic_ir.Func.t -> t

(** Structural equality (same loops, bodies, latches and trip counts); used
    by the analysis cache's cached-equals-fresh self check. *)
val equal : t -> t -> bool
val innermost_first : t -> loop list
val find : t -> string -> loop option
val in_loop : loop -> string -> bool

(** Labels outside the loop that the loop can exit to. *)
val exits : Epic_ir.Func.t -> loop -> string list
