(** Block-level live-variable analysis.  Predicated definitions do not kill
    (the old value survives a false guard) — except unconditional-type
    compares, which always write their predicate targets. *)

type t

(** Always writes its destinations, regardless of its guard? *)
val killing_def : Epic_ir.Instr.t -> bool

val compute : Epic_ir.Func.t -> t

(** Structural equality (same per-block live-in/live-out); used by the
    analysis cache's cached-equals-fresh self check. *)
val equal : t -> t -> bool
val live_in : t -> string -> Epic_ir.Reg.Set.t
val live_out : t -> string -> Epic_ir.Reg.Set.t

(** Live registers immediately before each instruction of the block (a list
    parallel to its instructions), merging branch-target live-ins at each
    side exit. *)
val per_instr : t -> Epic_ir.Func.t -> Epic_ir.Block.t -> Epic_ir.Reg.Set.t list
