(** Dominator analysis over the block CFG (iterative Cooper–Harvey–Kennedy),
    used by natural-loop detection, LICM and transform safety checks. *)

type t

val compute : Epic_ir.Func.t -> t

(** Reverse postorder of the reachable blocks (used to build [compute]'s
    fixed point; also a convenient traversal order for clients). *)
val reverse_postorder : Epic_ir.Func.t -> string array

val entry_label : t -> string

(** [None] for the entry block. *)
val immediate_dominator : t -> string -> string option

(** Does [a] dominate [b]?  Reflexive; false for unreachable blocks. *)
val dominates : t -> string -> string -> bool

(** Children of a label in the dominator tree. *)
val children : t -> string -> string list

val rpo : t -> string array

(** Structural equality (same RPO and immediate-dominator map); used by the
    analysis cache's cached-equals-fresh self check. *)
val equal : t -> t -> bool
