(* Superblock loop unrolling: a single-block self-loop (the common shape of
   an inner loop after region formation) with a high profiled trip count is
   unrolled by replicating its body.  Each replica keeps its own loop-exit
   test as a side exit (the "unrolling with early exits" scheme), so no exact
   trip count is needed; the final replica's latch branches back to the top.

   The latch condition must be reversible: the block must end with
   "(pt) br self" where a compare in the block defines both pt and its
   complement pf, so replicas can exit with "(pf) br exit_target". *)

open Epic_ir
open Epic_opt

type params = {
  factor : int;
  min_avg_trips : float;
  max_body_instrs : int;
}

let default_params = { factor = 4; min_avg_trips = 6.0; max_body_instrs = 32 }

type stats = { mutable loops_unrolled : int }

let stats_key = Domain.DLS.new_key (fun () -> { loops_unrolled = 0 })
let stats () = Domain.DLS.get stats_key
let reset_stats () = (stats ()).loops_unrolled <- 0

(* A self-loop: a block whose terminator region is "(pt) br self" either as
   the final instruction (fall-through exit) or followed by one trailing
   unconditional branch to the exit.  Exactly one branch targets the block
   itself. *)
let self_loop_shape (f : Func.t) (b : Block.t) =
  let self_branches =
    List.filter
      (fun (i : Instr.t) -> Instr.branch_target i = Some b.Block.label)
      b.Block.instrs
  in
  if List.length self_branches <> 1 then None
  else
    match List.rev b.Block.instrs with
    | (last : Instr.t) :: _
      when last.Instr.op = Opcode.Br && last.Instr.pred <> None
           && Instr.branch_target last = Some b.Block.label -> (
        match Func.fallthrough f b with
        | Some e -> Some (last, e.Block.label)
        | None -> None)
    | (brf : Instr.t) :: (latch : Instr.t) :: _
      when brf.Instr.op = Opcode.Br && brf.Instr.pred = None
           && latch.Instr.op = Opcode.Br && latch.Instr.pred <> None
           && Instr.branch_target latch = Some b.Block.label -> (
        match Instr.branch_target brf with
        | Some e -> Some (latch, e)
        | None -> None)
    | (last : Instr.t) :: _
      when last.Instr.op = Opcode.Br && last.Instr.pred = None
           && Instr.branch_target last = Some b.Block.label ->
        (* rotated loop: unconditional backward latch, predicated early
           exit(s) inside the body *)
        Some (last, "")
    | _ -> None

let avg_trips (latch : Instr.t) (b : Block.t) =
  if latch.Instr.pred = None then begin
    (* rotated loop: entries = flow leaving through the early exits' origin,
       i.e. block weight minus latch executions; the latch runs on every
       non-exiting iteration, so use the latch's own execution count *)
    let latch_w = latch.Instr.attrs.Instr.weight in
    let entries = b.Block.weight -. latch_w in
    if entries > 0.5 then b.Block.weight /. entries else 0.
  end
  else
    let p = latch.Instr.attrs.Instr.taken_prob in
    let entries = b.Block.weight *. (1. -. p) in
    if entries > 0.5 then b.Block.weight /. entries else 0.

(* Rotated form: replicate the body (which carries its own predicated early
   exits); only the final replica keeps the backward branch. *)
let unroll_rotated (ps : params) (b : Block.t) =
  let body =
    List.filter
      (fun (i : Instr.t) -> Instr.branch_target i <> Some b.Block.label)
      b.Block.instrs
  in
  (* the body must contain at least one exit branch, or unrolling would make
     an unbreakable longer loop for nothing *)
  if not (List.exists Instr.is_branch body) then false
  else begin
    let rec build k acc =
      if k = ps.factor then
        acc
        @ [ Instr.create Opcode.Br ~srcs:[ Operand.Label b.Block.label ] ]
      else build (k + 1) (acc @ List.map Instr.copy body)
    in
    b.Block.instrs <- build 1 body;
    b.Block.kind <- Block.Super;
    (stats ()).loops_unrolled <- (stats ()).loops_unrolled + 1;
    true
  end

let unroll_block (f : Func.t) (ps : params) (b : Block.t) (latch : Instr.t)
    (exit_label : string) =
  if latch.Instr.pred = None then unroll_rotated ps b
  else
  let pt = match latch.Instr.pred with Some p -> p | None -> assert false in
  match Hyperblock.complement_pred b pt with
  | None -> false
  | Some (_, pf) ->
      ignore (Jumpopt.materialize_fallthroughs f);
      let base_instrs = b.Block.instrs in
      let strip_tail instrs =
        (* remove the trailing "br exit" and "(pt) br self" *)
        List.filter
          (fun (i : Instr.t) ->
            not
              (Instr.branch_target i = Some b.Block.label
              || (i.Instr.op = Opcode.Br && i.Instr.pred = None
                 && Instr.branch_target i = Some exit_label)))
          instrs
      in
      let body = strip_tail base_instrs in
      let replica () = List.map Instr.copy body in
      let early_exit () =
        Instr.create ~pred:pf Opcode.Br ~srcs:[ Operand.Label exit_label ]
      in
      let rec build k acc =
        if k = ps.factor - 1 then
          acc @ replica ()
          @ [
              Instr.create ~pred:pt Opcode.Br ~srcs:[ Operand.Label b.Block.label ];
              Instr.create Opcode.Br ~srcs:[ Operand.Label exit_label ];
            ]
        else build (k + 1) (acc @ replica () @ [ early_exit () ])
      in
      b.Block.instrs <- build 1 (body @ [ early_exit () ]);
      b.Block.kind <- Block.Super;
      (stats ()).loops_unrolled <- (stats ()).loops_unrolled + 1;
      true

let run_func ?(params = default_params) (f : Func.t) =
  let count = ref 0 in
  List.iter
    (fun (b : Block.t) ->
      match self_loop_shape f b with
      | Some (latch, exit_label)
        when Block.instr_count b <= params.max_body_instrs
             && avg_trips
                  (if latch.Instr.pred = None then
                     (* rotated: trips come from block weight vs. entries *)
                     latch
                   else latch)
                  b
                >= params.min_avg_trips
             && not b.Block.cold ->
          if unroll_block f params b latch exit_label then incr count
      | _ -> ())
    f.Func.blocks;
  !count

let run ?(params = default_params) (p : Program.t) =
  List.fold_left (fun n f -> n + run_func ~params f) 0 p.Program.funcs
