(** Superblock formation [Hwu et al., JoS'93]: profile-selected traces
    (mutual-most-likely), side entrances removed by tail duplication under
    a static-growth budget (the paper reports 21% average growth), traces
    merged into single-entry blocks with side exits. *)

type params = {
  min_edge_prob : float;
  min_block_weight : float;
  growth_budget : float;  (** max fractional code growth from duplication *)
  max_trace_len : int;
}

val default_params : params

type stats = {
  mutable traces_formed : int;
  mutable blocks_merged : int;
  mutable tail_dup_instrs : int;
}

val stats : unit -> stats
val reset_stats : unit -> unit

val select_traces : Epic_ir.Func.t -> params -> string list list
val remove_side_entrances : Epic_ir.Func.t -> params -> string list -> string list
val merge_trace : Epic_ir.Func.t -> string list -> unit

(** True when the function was mutated. *)
val run_func : ?params:params -> Epic_ir.Func.t -> bool
val run : ?params:params -> Epic_ir.Program.t -> unit
