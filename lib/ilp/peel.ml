(* Loop peeling (Figure 3(b) of the paper): for loops whose profile shows an
   expected trip count near one — the crafty Evaluate() pattern of sequential
   while loops whose bodies "typically execute exactly once" — one iteration
   is pulled out in front.  The ordinarily-taken path then traverses only the
   peeled code, and the original loop is left as a cold(ish) "remainder" to
   clean up unlikely extra iterations.  The peeled copy, being branch-in
   free, can subsequently be absorbed into a surrounding trace (superblock or
   hyperblock), which is where the ILP benefit materializes. *)

open Epic_ir
open Epic_opt
open Epic_analysis

type params = {
  max_avg_trips : float; (* peel when the average trip count is below this *)
  min_avg_trips : float; (* and the loop actually runs (header weight > 0) *)
  max_body_instrs : int;
  growth_budget : float; (* fraction of function size available for copies *)
  mark_remainder_cold : bool;
}

let default_params =
  {
    max_avg_trips = 2.8;
    min_avg_trips = 1.25;
    max_body_instrs = 48;
    growth_budget = 0.15;
    mark_remainder_cold = true;
  }

type stats = { mutable loops_peeled : int; mutable peel_instrs : int }

let stats_key = Domain.DLS.new_key (fun () -> { loops_peeled = 0; peel_instrs = 0 })
let stats () = Domain.DLS.get stats_key
let reset_stats () =
  (stats ()).loops_peeled <- 0;
  (stats ()).peel_instrs <- 0

(* Peel one iteration of [l].  The copy's back edges go to the original
   header (entering the remainder loop); all external entries are redirected
   to the copy. *)
let peel_loop (f : Func.t) (ps : params) (l : Natural_loops.loop) =
  let body_blocks = List.filter_map (Func.find_block f) l.Natural_loops.body in
  let size = List.fold_left (fun n b -> n + Block.instr_count b) 0 body_blocks in
  if
    size > ps.max_body_instrs
    || size
       > max 40
           (int_of_float (float_of_int (Region_util.code_size f) *. ps.growth_budget))
    || List.exists (fun (b : Block.t) -> b.Block.kind = Block.Recovery) body_blocks
    || List.mem (Func.entry f).Block.label l.Natural_loops.body
  then false
  else begin
    ignore (Jumpopt.materialize_fallthroughs f);
    (* Order body blocks in layout order for a sensible copy layout. *)
    let body_in_layout =
      List.filter (fun (b : Block.t) -> Natural_loops.in_loop l b.Block.label) f.Func.blocks
    in
    let copies0, lmap = Region_util.duplicate_blocks f ~weight_scale:1.0 body_blocks in
    (* Arrange the copies in the original layout order. *)
    let copies =
      List.map
        (fun (b : Block.t) ->
          let lbl = Hashtbl.find lmap b.Block.label in
          List.find (fun (c : Block.t) -> c.Block.label = lbl) copies0)
        body_in_layout
    in
    (* Branch remapping inside copies: duplicate_blocks already remapped
       intra-set targets, including the back edge to the header — but a
       peeled iteration must fall into the REMAINDER loop, so back edges in
       the copies are redirected to the original header. *)
    let header_copy = Hashtbl.find lmap l.Natural_loops.header in
    List.iter
      (fun (c : Block.t) ->
        List.iter
          (fun (i : Instr.t) ->
            match Instr.branch_target i with
            | Some t when t = header_copy && c.Block.label <> header_copy ->
                (* this was a latch edge in the copy *)
                i.Instr.srcs <- [ Operand.Label l.Natural_loops.header ]
            | _ -> ())
          c.Block.instrs)
      copies;
    (* Redirect external entries to the copied header. *)
    Region_util.retarget_branches f ~from_l:l.Natural_loops.header ~to_l:header_copy
      ~when_src:(fun b ->
        (not (Natural_loops.in_loop l b.Block.label))
        && not (List.exists (fun (c : Block.t) -> c == b) copies));
    (* Insert the copies before the original header in layout. *)
    let header_block = Func.find_block_exn f l.Natural_loops.header in
    let rec insert = function
      | [] -> copies
      | x :: tl when x == header_block -> copies @ (x :: tl)
      | x :: tl -> x :: insert tl
    in
    f.Func.blocks <- insert f.Func.blocks;
    (* The remainder loop is now entered only via surviving latch edges of
       the peeled copy; weight-wise it is lukewarm or cold. *)
    let reentry = max 0. (l.Natural_loops.avg_trips -. 1.0) in
    List.iter
      (fun (b : Block.t) ->
        b.Block.weight <- b.Block.weight *. reentry /. max l.Natural_loops.avg_trips 0.01;
        if ps.mark_remainder_cold && reentry < 0.25 then b.Block.cold <- true)
      body_blocks;
    (stats ()).loops_peeled <- (stats ()).loops_peeled + 1;
    (stats ()).peel_instrs <- (stats ()).peel_instrs + size;
    true
  end

let run_func ?cache ?(params = default_params) (f : Func.t) =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  let loops = Cache.loops cache f in
  let candidates =
    List.filter
      (fun (l : Natural_loops.loop) ->
        l.Natural_loops.avg_trips > params.min_avg_trips
        && l.Natural_loops.avg_trips <= params.max_avg_trips
        &&
        match Func.find_block f l.Natural_loops.header with
        | Some h -> h.Block.weight >= 1.0
        | None -> false)
      (Natural_loops.innermost_first loops)
  in
  (* Peel only disjoint loops in one pass (the CFG changes invalidate the
     loop analysis); outer/overlapping loops can be handled on a later call. *)
  let touched = Hashtbl.create 16 in
  let count = ref 0 in
  List.iter
    (fun (l : Natural_loops.loop) ->
      let overlaps = List.exists (Hashtbl.mem touched) l.Natural_loops.body in
      if not overlaps then
        if peel_loop f params l then begin
          incr count;
          List.iter (fun b -> Hashtbl.replace touched b ()) l.Natural_loops.body
        end)
    candidates;
  if !count > 0 then
    Cache.invalidate cache ~preserve:[ Cache.Points_to ] f.Func.name;
  !count

let run ?cache ?(params = default_params) (p : Program.t) =
  List.fold_left (fun n f -> n + run_func ?cache ~params f) 0 p.Program.funcs
