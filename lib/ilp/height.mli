(** Data-height reduction (Section 3.2): serial chains of associative
    integer operations — the accumulator updates region formation and
    unrolling line up — are rebalanced into trees, halving dependence
    height.  Only provably-safe chains are rewritten (single-use unguarded
    links, dead outside the block). *)

type stats = { mutable chains_rebalanced : int; mutable links_rewritten : int }

val stats : unit -> stats
val reset_stats : unit -> unit

val run_block :
  Epic_ir.Func.t -> Epic_analysis.Liveness.t -> Epic_ir.Block.t -> bool

val run_func : ?cache:Epic_analysis.Cache.t -> Epic_ir.Func.t -> bool
val run : ?cache:Epic_analysis.Cache.t -> Epic_ir.Program.t -> bool
