(* Control speculation (Sections 2.2, 4.2, 4.3).  Two mechanisms, applied in
   the ILP-CS configuration only:

   1. Predicate promotion: a predicated load in a hyperblock has its guard
      weakened (removed, or replaced by an enclosing guard) so it no longer
      waits for its predicate definition, shortening the dependence chain.
      The load is marked speculative because it now executes on paths where
      the original program would not have.

   2. Side-exit speculation: loads below side-exit branches of a superblock
      are marked speculative so the scheduler may hoist them above the
      branches (the scheduler refuses to move non-speculative may-fault
      operations across control).

   Under the GENERAL model the marked loads complete eagerly (walking the
   page table off-path — the wild-load cost the paper measures in gcc,
   parser, perlbmk and gap).  Under the SENTINEL model they defer failures
   by writing NaT, and a chk.s with (modelled-in-place) recovery code is
   placed at the home location. *)

open Epic_ir

type model = General | Sentinel

type params = {
  model : model;
  promote : bool; (* enable predicate promotion *)
  hoist_marks : bool; (* enable side-exit speculation marking *)
  max_promotions_per_block : int;
}

let default_params =
  { model = General; promote = true; hoist_marks = true; max_promotions_per_block = 16 }

type stats = {
  mutable promoted : int;
  mutable marked : int;
  mutable checks_inserted : int;
}

let stats_key = Domain.DLS.new_key (fun () -> { promoted = 0; marked = 0; checks_inserted = 0 })
let stats () = Domain.DLS.get stats_key
let reset_stats () =
  (stats ()).promoted <- 0;
  (stats ()).marked <- 0;
  (stats ()).checks_inserted <- 0

let spec_kind = function General -> Opcode.Spec_general | Sentinel -> Opcode.Spec_sentinel

(* Instructions strictly after [after] that use or define [r]. *)
let uses_or_defs_after instrs (after : Instr.t) (r : Reg.t) =
  let rec skip = function
    | [] -> []
    | i :: tl when i == after -> tl
    | _ :: tl -> skip tl
  in
  List.filter
    (fun (i : Instr.t) ->
      List.exists (Reg.equal r) (Instr.uses i)
      || List.exists (Reg.equal r) (Instr.defs i))
    (skip instrs)

let defs_of r instrs =
  List.filter (fun (i : Instr.t) -> List.exists (Reg.equal r) (Instr.defs i)) instrs

(* Is promotion of load [ld] (guard [p]) in block [b] of [f] safe?  A wrong
   or NaT value produced by the now-unconditional load must never be
   consumed.  That holds when:
   - the destination is used only inside [b] (it is a block-local
     temporary; region formation creates exactly these);
   - no use of the destination is upward-exposed in [b] (nothing reads a
     value carried around a back edge from a previous iteration);
   - every use between this load and the destination's next redefinition is
     guarded by [p] (or is this load's own chk).
   Repeated definitions (unrolled replicas of the load) are fine: each
   replica's value dies before the next redefinition. *)
let promotion_safe (f : Func.t) (b : Block.t) (ld : Instr.t) (p : Reg.t) =
  match ld.Instr.dsts with
  | [ d ] ->
      let used_outside =
        List.exists
          (fun (b' : Block.t) ->
            b' != b
            && List.exists
                 (fun (i : Instr.t) -> List.exists (Reg.equal d) (Instr.uses i))
                 b'.Block.instrs)
          f.Func.blocks
      in
      let upward_exposed =
        (* a use of d is upward-exposed unless an earlier definition is
           certain to have executed whenever the use does: an unguarded def,
           or a def under the same guard as the use *)
        let rec scan def_guards = function
          | [] -> false
          | (i : Instr.t) :: tl ->
              let covered =
                List.exists
                  (function
                    | None -> true
                    | Some g -> (
                        match i.Instr.pred with
                        | Some q -> Reg.equal g q
                        | None -> false))
                  def_guards
              in
              if List.exists (Reg.equal d) (Instr.uses i) && not covered then true
              else if List.exists (Reg.equal d) (Instr.defs i) then
                scan (i.Instr.pred :: def_guards) tl
              else scan def_guards tl
        in
        scan [] b.Block.instrs
      in
      let until_next_def =
        let rec take = function
          | [] -> []
          | (u : Instr.t) :: tl ->
              if List.exists (Reg.equal d) (Instr.defs u) then
                (* the redefinition itself may read d (e.g. d = d + x) *)
                if List.exists (Reg.equal d) (Instr.uses u) then [ u ] else []
              else if List.exists (Reg.equal d) (Instr.uses u) then u :: take tl
              else take tl
        in
        take (uses_or_defs_after b.Block.instrs ld d)
      in
      (not used_outside) && (not upward_exposed)
      && List.for_all
           (fun (u : Instr.t) ->
             match u.Instr.pred with
             | Some q -> Reg.equal q p
             | None -> ( match u.Instr.op with Opcode.Chk _ -> true | _ -> false))
           until_next_def
  | _ -> false

(* Insert a sentinel check for [ld] right after it, guarded by [guard]. *)
let insert_check (b : Block.t) (ld : Instr.t) (guard : Reg.t option) =
  match (ld.Instr.op, ld.Instr.dsts, ld.Instr.srcs) with
  | Opcode.Ld (sz, _), [ d ], [ addr ] ->
      let chk =
        Instr.create ?pred:guard (Opcode.Chk sz) ~srcs:[ Operand.Reg d; addr ]
      in
      chk.Instr.attrs.Instr.check_reg <- Some d;
      let rec ins = function
        | [] -> [ chk ]
        | i :: tl when i == ld -> i :: chk :: tl
        | i :: tl -> i :: ins tl
      in
      b.Block.instrs <- ins b.Block.instrs;
      (stats ()).checks_inserted <- (stats ()).checks_inserted + 1
  | _ -> ()

let run_block (ps : params) (f : Func.t) (b : Block.t) =
  let promotions = ref 0 in
  (* 1. predicate promotion in predicated regions (hyperblocks, and
     superblocks that inherited predicated code) *)
  if ps.promote && (b.Block.kind = Block.Hyper || b.Block.kind = Block.Super) then
    List.iter
      (fun (i : Instr.t) ->
        match (i.Instr.op, i.Instr.pred) with
        | Opcode.Ld (sz, Opcode.Nonspec), Some p
          when !promotions < ps.max_promotions_per_block
               && promotion_safe f b i p ->
            i.Instr.op <- Opcode.Ld (sz, spec_kind ps.model);
            i.Instr.pred <- None;
            i.Instr.attrs.Instr.speculated <- true;
            i.Instr.attrs.Instr.promoted <- true;
            incr promotions;
            (stats ()).promoted <- (stats ()).promoted + 1;
            if ps.model = Sentinel then insert_check b i (Some p)
        | _ -> ())
      b.Block.instrs;
  (* 2. side-exit speculation marking in blocks with internal branches *)
  if ps.hoist_marks then begin
    let past_branch = ref false in
    List.iter
      (fun (i : Instr.t) ->
        (match (i.Instr.op, i.Instr.pred) with
        | Opcode.Ld (sz, Opcode.Nonspec), None when !past_branch -> (
            match i.Instr.dsts with
            | [ d ] when List.length (defs_of d b.Block.instrs) = 1 ->
                i.Instr.op <- Opcode.Ld (sz, spec_kind ps.model);
                i.Instr.attrs.Instr.speculated <- true;
                (stats ()).marked <- (stats ()).marked + 1;
                if ps.model = Sentinel then insert_check b i None
            | _ -> ())
        | _ -> ());
        if i.Instr.op = Opcode.Br then past_branch := true)
      b.Block.instrs
  end

(* Returns true when any load was promoted or marked in this function
   (every mutation bumps one of the stats counters). *)
let run_func ?(params = default_params) (f : Func.t) =
  let p0 = (stats ()).promoted and m0 = (stats ()).marked in
  let c0 = (stats ()).checks_inserted in
  List.iter (run_block params f) f.Func.blocks;
  (stats ()).promoted <> p0 || (stats ()).marked <> m0 || (stats ()).checks_inserted <> c0

let run ?(params = default_params) (p : Program.t) =
  List.iter (fun f -> ignore (run_func ~params f)) p.Program.funcs
