(* Data-height reduction (Section 3.2: "control and data height reduction").
   Long serial chains of associative integer operations — typically the
   accumulator updates that region formation lines up back to back, e.g.
   after unrolling s = ((((s+a)+b)+c)+d) — are rebalanced into a tree,
   halving the dependence height and exposing the parallelism to the
   six-wide scheduler.

   Only provably-safe chains are rewritten: every link is an unguarded
   two-operand Add/Mul/And/Or/Xor of the same operator, each intermediate
   result has exactly one use (the next link) inside the block and is dead
   outside it.  64-bit wrap-around arithmetic makes reassociation exact. *)

open Epic_ir
open Epic_analysis

type stats = { mutable chains_rebalanced : int; mutable links_rewritten : int }

let stats_key = Domain.DLS.new_key (fun () -> { chains_rebalanced = 0; links_rewritten = 0 })
let stats () = Domain.DLS.get stats_key
let reset_stats () =
  (stats ()).chains_rebalanced <- 0;
  (stats ()).links_rewritten <- 0

let associative = function
  | Opcode.Add | Opcode.Mul | Opcode.And | Opcode.Or | Opcode.Xor -> true
  | _ -> false

(* Number of uses of [r] in the block. *)
let uses_in_block (b : Block.t) (r : Reg.t) =
  List.fold_left
    (fun n (i : Instr.t) ->
      n
      + List.length (List.filter (Reg.equal r) (Instr.uses i)))
    0 b.Block.instrs

(* A chain: instructions i_1..i_n, all op [op], i_k = op (dst i_{k-1}) x_k,
   starting from i_1 = op base x_1.  Returns (chain instrs, base operand,
   terms). *)
let find_chain_from (b : Block.t) (live_out : Reg.Set.t) (instrs : Instr.t array)
    (start : int) =
  let candidate (i : Instr.t) op =
    i.Instr.pred = None && i.Instr.op = op
    && List.length i.Instr.dsts = 1
    && List.length i.Instr.srcs = 2
  in
  match instrs.(start).Instr.op with
  | op when associative op && candidate instrs.(start) op ->
      let rec grow k (chain : int list) (terms : Operand.t list) (cur_dst : Reg.t) =
        if k >= Array.length instrs then (chain, terms, cur_dst)
        else
          let i = instrs.(k) in
          let continues =
            candidate i op
            &&
            match i.Instr.srcs with
            | [ Operand.Reg a; _ ] when Reg.equal a cur_dst -> true
            | [ _; Operand.Reg b' ] when Reg.equal b' cur_dst -> true
            | _ -> false
          in
          if
            continues
            && uses_in_block b cur_dst = 1
            && not (Reg.Set.mem cur_dst live_out)
          then
            let other =
              match i.Instr.srcs with
              | [ Operand.Reg a; o ] when Reg.equal a cur_dst -> o
              | [ o; _ ] -> o
              | _ -> assert false
            in
            grow (k + 1) (k :: chain) (other :: terms) (List.hd i.Instr.dsts)
          else (chain, terms, cur_dst)
      in
      let first = instrs.(start) in
      let base = List.nth first.Instr.srcs 0 in
      let t1 = List.nth first.Instr.srcs 1 in
      let chain, terms, final_dst =
        grow (start + 1) [ start ] [ t1; base ] (List.hd first.Instr.dsts)
      in
      Some (op, List.rev chain, List.rev terms, final_dst)
  | _ -> None

(* Rebalance one chain: emit a balanced tree at the position of the last
   link, writing the final destination. *)
let rebalance (f : Func.t) (b : Block.t) op (chain : int list)
    (terms : Operand.t list) (final_dst : Reg.t) (instrs : Instr.t array) =
  let last_idx = List.fold_left max 0 chain in
  let chain_set = List.sort_uniq compare chain in
  (* balanced reduction over terms *)
  let rec reduce (ops : Operand.t list) (acc_instrs : Instr.t list) =
    match ops with
    | [] -> assert false
    | [ single ] -> (single, acc_instrs)
    | _ ->
        let rec pair = function
          | a :: b' :: tl ->
              let d = Func.fresh_reg f Reg.Int in
              let i = Instr.create op ~dsts:[ d ] ~srcs:[ a; b' ] in
              let rest, emitted = pair tl in
              (Operand.Reg d :: rest, i :: emitted)
          | tail -> (tail, [])
        in
        let next, emitted = pair ops in
        reduce next (acc_instrs @ emitted)
  in
  let result, emitted = reduce terms [] in
  let finish =
    Instr.create op ~dsts:[ final_dst ] ~srcs:[ result; Operand.imm 0 ]
  in
  (* for And/Or/Mul the identity differs; use a move instead *)
  let finish =
    match result with
    | Operand.Reg r when Reg.equal r final_dst -> []
    | _ ->
        if op = Opcode.Add then [ finish ]
        else [ Instr.create Opcode.Mov ~dsts:[ final_dst ] ~srcs:[ result ] ]
  in
  (* rebuild the block: drop chain links, splice the tree at the last link *)
  let out = ref [] in
  Array.iteri
    (fun k i ->
      if k = last_idx then out := List.rev_append (emitted @ finish) !out
      else if List.mem k chain_set then ()
      else out := i :: !out)
    instrs;
  b.Block.instrs <- List.rev !out;
  (stats ()).chains_rebalanced <- (stats ()).chains_rebalanced + 1;
  (stats ()).links_rewritten <- (stats ()).links_rewritten + List.length chain

let run_block (f : Func.t) (live : Liveness.t) (b : Block.t) =
  let live_out = Liveness.live_out live b.Block.label in
  let changed = ref false in
  let continue = ref true in
  while !continue do
    continue := false;
    let instrs = Array.of_list b.Block.instrs in
    let k = ref 0 in
    while (not !continue) && !k < Array.length instrs do
      (match find_chain_from b live_out instrs !k with
      | Some (op, chain, terms, final_dst) when List.length chain >= 4 ->
          rebalance f b op chain terms final_dst instrs;
          changed := true;
          continue := true
      | _ -> ());
      incr k
    done
  done;
  !changed

let run_func ?cache (f : Func.t) =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  let live = Cache.liveness cache f in
  let changed =
    List.fold_left (fun acc b -> run_block f live b || acc) false f.Func.blocks
  in
  if changed then
    Cache.invalidate cache ~preserve:Cache.[ Callgraph; Points_to ]
      f.Func.name;
  changed

let run ?cache (p : Program.t) =
  List.fold_left (fun acc f -> run_func ?cache f || acc) false p.Program.funcs
