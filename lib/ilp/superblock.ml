(* Superblock formation [Hwu et al., JoS'93]: select frequently-traversed
   traces with the mutual-most-likely heuristic, remove side entrances by
   tail duplication (node splitting), and merge each trace into a single-
   entry superblock with side exits.  Tail duplication is limited by a
   static-code-growth budget (the paper reports a 21% average increase). *)

open Epic_ir
open Epic_opt

type params = {
  min_edge_prob : float; (* follow an edge only above this probability *)
  min_block_weight : float; (* seeds must be at least this hot *)
  growth_budget : float; (* max fractional code growth from duplication *)
  max_trace_len : int;
}

let default_params =
  { min_edge_prob = 0.60; min_block_weight = 1.0; growth_budget = 0.25; max_trace_len = 16 }

type stats = {
  mutable traces_formed : int;
  mutable blocks_merged : int;
  mutable tail_dup_instrs : int;
}

let stats_key = Domain.DLS.new_key (fun () -> { traces_formed = 0; blocks_merged = 0; tail_dup_instrs = 0 })
let stats () = Domain.DLS.get stats_key
let reset_stats () =
  (stats ()).traces_formed <- 0;
  (stats ()).blocks_merged <- 0;
  (stats ()).tail_dup_instrs <- 0

(* Select traces: lists of block labels, hottest seeds first. *)
let select_traces (f : Func.t) (ps : params) =
  let visited = Hashtbl.create 32 in
  let entry_label = (Func.entry f).Block.label in
  let seeds =
    List.filter
      (fun (b : Block.t) ->
        b.Block.weight >= ps.min_block_weight
        && b.Block.kind <> Block.Recovery && not b.Block.cold)
      f.Func.blocks
    |> List.sort (fun (a : Block.t) b -> compare b.Block.weight a.Block.weight)
  in
  let traces = ref [] in
  List.iter
    (fun (seed : Block.t) ->
      if not (Hashtbl.mem visited seed.Block.label) then begin
        Hashtbl.replace visited seed.Block.label ();
        let trace = ref [ seed.Block.label ] in
        let cur = ref seed in
        let continue = ref true in
        while !continue && List.length !trace < ps.max_trace_len do
          match Region_util.best_successor f !cur with
          | Some (next_l, p)
            when p >= ps.min_edge_prob
                 && (not (Hashtbl.mem visited next_l))
                 && next_l <> entry_label -> (
              match Func.find_block f next_l with
              | Some next
                when next.Block.kind <> Block.Recovery && not next.Block.cold
                     (* mutual-most-likely: most of [next]'s weight must come
                        from [cur] *)
                     && (!cur).Block.weight *. p >= 0.5 *. next.Block.weight ->
                  Hashtbl.replace visited next_l ();
                  trace := next_l :: !trace;
                  cur := next
              | _ -> continue := false)
          | _ -> continue := false
        done;
        let t = List.rev !trace in
        if List.length t >= 2 then traces := t :: !traces
      end)
    seeds;
  List.rev !traces

(* Remove side entrances into [trace] (all blocks after the head) by
   duplicating the trace suffix for external predecessors.  Returns the
   (possibly truncated) trace that is now single-entry. *)
let remove_side_entrances (f : Func.t) (ps : params) (trace : string list) =
  let budget =
    ref (int_of_float (float_of_int (Region_util.code_size f) *. ps.growth_budget))
  in
  ignore (Jumpopt.materialize_fallthroughs f);
  let rec go kept = function
    | [] -> List.rev kept
    | label :: rest when kept = [] ->
        (* the trace head is the region entry; side entrances are fine *)
        go [ label ] rest
    | label :: rest ->
        let preds = Func.predecessors f in
        let prev = match kept with p :: _ -> Some p | [] -> None in
        let external_preds =
          match Hashtbl.find_opt preds label with
          | Some ps' ->
              List.filter
                (fun p -> Some p <> prev && not (List.mem p (label :: rest)))
                ps'
          | None -> []
        in
        (* a branch within the suffix to a later suffix block is also a side
           entrance; conservatively stop the trace there *)
        if external_preds = [] then go (label :: kept) rest
        else begin
          (* duplicate the suffix starting at [label] *)
          let suffix_blocks =
            List.filter_map (Func.find_block f) (label :: rest)
          in
          let size = List.fold_left (fun n b -> n + Block.instr_count b) 0 suffix_blocks in
          if size <= !budget then begin
            budget := !budget - size;
            (stats ()).tail_dup_instrs <- (stats ()).tail_dup_instrs + size;
            (* entry ratio: fraction of weight entering from outside *)
            let total_w =
              match Func.find_block f label with Some b -> max b.Block.weight 1. | None -> 1.
            in
            let ext_w =
              List.fold_left
                (fun acc p ->
                  match Func.find_block f p with
                  | Some pb -> acc +. (Region_util.edge_prob f pb label *. pb.Block.weight)
                  | None -> acc)
                0. external_preds
            in
            let scale = min 1.0 (ext_w /. total_w) in
            let copies, lmap = Region_util.duplicate_blocks f ~weight_scale:scale suffix_blocks in
            (* scale originals down *)
            List.iter
              (fun (b : Block.t) -> b.Block.weight <- b.Block.weight *. (1. -. scale))
              suffix_blocks;
            (* the copies go at the end of the layout; they end with explicit
               branches (fallthroughs were materialized) *)
            f.Func.blocks <- f.Func.blocks @ copies;
            let copy_head = Hashtbl.find lmap label in
            List.iter
              (fun p ->
                Region_util.retarget_branches f ~from_l:label ~to_l:copy_head
                  ~when_src:(fun b -> b.Block.label = p))
              external_preds;
            go (label :: kept) rest
          end
          else
            (* out of budget: truncate the trace before this block *)
            List.rev kept
        end
  in
  go [] trace

(* Merge a single-entry trace into one superblock. *)
let merge_trace (f : Func.t) (trace : string list) =
  match trace with
  | [] | [ _ ] -> ()
  | head_l :: rest ->
      let head = Func.find_block_exn f head_l in
      let stopped = ref false in
      List.iter
        (fun label ->
          if not !stopped then begin
            let b = Func.find_block_exn f label in
            (* Make [label] the implicit continuation of [head]: either drop
               a trailing unconditional branch to it, or reverse a trailing
               "(pt) br label; br other" pair into "(pf) br other". *)
            let stripped =
              match List.rev head.Block.instrs with
              | last :: before
                when last.Instr.op = Opcode.Br && last.Instr.pred = None
                     && Instr.branch_target last = Some label ->
                  head.Block.instrs <- List.rev before;
                  true
              | (brf : Instr.t) :: (brt : Instr.t) :: _
                when brf.Instr.op = Opcode.Br && brf.Instr.pred = None
                     && brt.Instr.op = Opcode.Br && brt.Instr.pred <> None
                     && Instr.branch_target brt = Some label -> (
                  let pt = Option.get brt.Instr.pred in
                  (* reuse the hyperblock helper through a probe block that
                     excludes the terminating branches *)
                  let probe = Block.create "probe" in
                  probe.Block.instrs <-
                    List.filter (fun i -> i != brf && i != brt) head.Block.instrs;
                  match Hyperblock.complement_pred probe pt with
                  | Some (_, pf) ->
                      brf.Instr.pred <- Some pf;
                      brf.Instr.attrs.Instr.taken_prob <-
                        1.0 -. brt.Instr.attrs.Instr.taken_prob;
                      head.Block.instrs <-
                        List.filter (fun i -> i != brt) head.Block.instrs;
                      true
                  | None -> false)
              | _ -> false
            in
            (* merging removes [label]; any surviving branch to it (e.g. a
               second edge from the same predecessor) forbids the merge *)
            let still_targeted =
              Func.fold_instrs f
                (fun acc i -> acc || Instr.branch_target i = Some label)
                false
            in
            if (not stripped) || still_targeted then begin
              (* restore and stop extending this superblock *)
              (if stripped then
                 head.Block.instrs <-
                   head.Block.instrs
                   @ [ Instr.create Opcode.Br ~srcs:[ Operand.Label label ] ]);
              stopped := true
            end
            else begin
              head.Block.instrs <- head.Block.instrs @ b.Block.instrs;
              f.Func.blocks <- List.filter (fun x -> x != b) f.Func.blocks;
              (stats ()).blocks_merged <- (stats ()).blocks_merged + 1
            end
          end)
        rest;
      head.Block.kind <- Block.Super;
      (stats ()).traces_formed <- (stats ()).traces_formed + 1

(* Returns true when the function was mutated.  Detected via the stats
   deltas plus block/instruction-count changes: trace merges bump
   [traces_formed], side-entrance removal bumps [tail_dup_instrs], and the
   remaining mutations (fall-through materialization, unreachable-block
   removal) shift the counts. *)
let run_func ?(params = default_params) (f : Func.t) =
  let traces0 = (stats ()).traces_formed and dup0 = (stats ()).tail_dup_instrs in
  let blocks0 = List.length f.Func.blocks and instrs0 = Func.instr_count f in
  let traces = select_traces f params in
  List.iter
    (fun trace ->
      (* the trace may have been invalidated by earlier merges *)
      if List.for_all (fun l -> Func.find_block f l <> None) trace then begin
        let t = remove_side_entrances f params trace in
        merge_trace f t
      end)
    traces;
  Func.remove_unreachable f;
  (stats ()).traces_formed <> traces0
  || (stats ()).tail_dup_instrs <> dup0
  || List.length f.Func.blocks <> blocks0
  || Func.instr_count f <> instrs0

let run ?(params = default_params) (p : Program.t) =
  List.iter (fun f -> ignore (run_func ~params f)) p.Program.funcs
