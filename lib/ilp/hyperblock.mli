(** Hyperblock formation [Mahlke et al., MICRO-25]: iterative if-conversion
    of single-entry acyclic hammocks (triangles and diamonds) into
    predicated straight-line code, with unconditional-type compares carrying
    nested guards.  Inclusion heuristics follow the paper: path execution
    ratio, arm size (resources), dependence-height compatibility, and a
    predicate-file pressure cap. *)

type params = {
  max_path_instrs : int;
  min_path_ratio : float;
  max_height_diff : int;
  max_block_predicates : int;
}

val default_params : params

type stats = { mutable regions_converted : int; mutable branches_removed : int }

val stats : unit -> stats
val reset_stats : unit -> unit

(** Distinct predicate registers appearing in a block (the pressure
    metric). *)
val block_predicates : Epic_ir.Block.t -> int

(** Find the complement of predicate [pt] in a block: the compare defining
    both [pt] and its complement with neither redefined since.  Shared with
    superblock branch reversal and unrolling. *)
val complement_pred :
  Epic_ir.Block.t -> Epic_ir.Reg.t -> (Epic_ir.Instr.t * Epic_ir.Reg.t) option


(** True when the function was mutated. *)
val run_func : ?params:params -> Epic_ir.Func.t -> bool
val run : ?params:params -> Epic_ir.Program.t -> unit
