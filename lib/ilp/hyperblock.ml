(* Hyperblock formation [Mahlke et al., MICRO-25]: if-conversion of
   single-entry, acyclic hammock regions (triangles and diamonds) into
   predicated straight-line code.  Applied iteratively, so nested control
   flow collapses bottom-up; nested guards are handled with unconditional-
   type compares, which clear their targets when their own qualifying
   predicate is false.

   Inclusion heuristics follow the paper's discussion: a path is included
   when it is executed often enough relative to the main path, is small
   enough for the issue width, contains no calls or loops, and has a
   dependence height compatible with the other path. *)

open Epic_ir
open Epic_opt

type params = {
  max_path_instrs : int; (* resource heuristic: arm size bound *)
  min_path_ratio : float; (* include a path whose weight ratio is above this *)
  max_height_diff : int; (* dependence-height compatibility bound *)
  max_block_predicates : int;
      (* stop growing a hyperblock once it would hold this many distinct
         predicate registers — the register-file pressure guard the paper's
         Section 4.4 motivates *)
}

let default_params =
  {
    max_path_instrs = 24;
    min_path_ratio = 0.015;
    max_height_diff = 16;
    max_block_predicates = 36;
  }

(* Distinct predicate registers appearing in a block. *)
let block_predicates (b : Block.t) =
  let s = ref Reg.Set.empty in
  List.iter
    (fun (i : Instr.t) ->
      List.iter
        (fun (r : Reg.t) -> if r.Reg.cls = Reg.Prd then s := Reg.Set.add r !s)
        (Instr.uses i @ Instr.defs i))
    b.Block.instrs;
  Reg.Set.cardinal !s

type stats = { mutable regions_converted : int; mutable branches_removed : int }

let stats_key = Domain.DLS.new_key (fun () -> { regions_converted = 0; branches_removed = 0 })
let stats () = Domain.DLS.get stats_key
let reset_stats () =
  (stats ()).regions_converted <- 0;
  (stats ()).branches_removed <- 0

(* Can every instruction of this block be predicated? *)
let arm_convertible (ps : params) (b : Block.t) =
  let body =
    match List.rev b.Block.instrs with
    | (last : Instr.t) :: before
      when last.Instr.op = Opcode.Br && last.Instr.pred = None ->
        before
    | l -> l
  in
  Block.instr_count b <= ps.max_path_instrs
  && b.Block.kind <> Block.Recovery
  && List.for_all
       (fun (i : Instr.t) ->
         match i.Instr.op with
         | Opcode.Br | Opcode.Br_call | Opcode.Br_ret -> false
         | _ -> true)
       body

(* Guard every instruction of [b] with [q]; compares become unconditional
   type so squashed guards clear their predicate targets. *)
let predicate_block (b : Block.t) (q : Reg.t) =
  List.iter
    (fun (i : Instr.t) ->
      (match i.Instr.op with
      | Opcode.Cmp (c, _) -> i.Instr.op <- Opcode.Cmp (c, Opcode.Unc)
      | Opcode.Fcmp (c, _) -> i.Instr.op <- Opcode.Fcmp (c, Opcode.Unc)
      | _ -> ());
      if i.Instr.pred = None then i.Instr.pred <- Some q)
    b.Block.instrs

(* Find the complement predicate of branch guard [pt]: a compare in [a]
   defining both [pt] and its complement, with neither redefined since. *)
let complement_pred (a : Block.t) (pt : Reg.t) =
  let rec go seen_defs = function
    | [] -> None
    | (i : Instr.t) :: rest -> (
        let ok_complement f =
          if List.exists (Reg.equal f) seen_defs then None else Some (i, f)
        in
        match (i.Instr.op, i.Instr.dsts) with
        | (Opcode.Cmp _ | Opcode.Fcmp _), [ t; f ] when Reg.equal t pt ->
            ok_complement f
        | (Opcode.Cmp _ | Opcode.Fcmp _), [ t; f ] when Reg.equal f pt ->
            ok_complement t
        | _, dsts when List.exists (Reg.equal pt) dsts -> None
        | _, dsts -> go (dsts @ seen_defs) rest)
  in
  go [] (List.rev a.Block.instrs)

(* The terminator shape of a candidate region root: a guarded branch to
   [taken] followed by a definite transfer to [fall] — either an
   unconditional branch or a layout fall-through.  Returns the guarded
   branch, the two labels, and the preceding instructions (reversed). *)
let two_way_exit (f : Func.t) (a : Block.t) =
  match List.rev a.Block.instrs with
  | (brf : Instr.t) :: (brt : Instr.t) :: rest
    when brf.Instr.op = Opcode.Br && brf.Instr.pred = None
         && brt.Instr.op = Opcode.Br && brt.Instr.pred <> None -> (
      match (Instr.branch_target brt, Instr.branch_target brf) with
      | Some t, Some fl when t <> fl -> Some (brt, t, fl, rest)
      | _ -> None)
  | (brt : Instr.t) :: rest when brt.Instr.op = Opcode.Br && brt.Instr.pred <> None -> (
      match (Instr.branch_target brt, Func.fallthrough f a) with
      | Some t, Some fall when t <> fall.Block.label ->
          Some (brt, t, fall.Block.label, rest)
      | _ -> None)
  | _ -> None

(* The unique successor label of arm [b]: it must end in a single
   unconditional branch (or fall through) with no other control flow. *)
let straight_successor (f : Func.t) (b : Block.t) =
  let branches = List.filter Instr.is_branch b.Block.instrs in
  match branches with
  | [] -> Option.map (fun (n : Block.t) -> n.Block.label) (Func.fallthrough f b)
  | [ i ] when i.Instr.op = Opcode.Br && i.Instr.pred = None -> (
      match (List.rev b.Block.instrs, Instr.branch_target i) with
      | last :: _, Some t when last == i -> Some t
      | _ -> None)
  | _ -> None

(* Region shapes.  In each case the join is a label outside the arms. *)
type shape =
  | Triangle_taken of Block.t * string (* taken arm + join (= fall label) *)
  | Triangle_fall of Block.t * string (* fall arm + join (= taken label) *)
  | Diamond of Block.t * Block.t * string

let single_pred (preds : (string, string list) Hashtbl.t) label =
  match Hashtbl.find_opt preds label with Some [ _ ] -> true | _ -> false

let classify (f : Func.t) (ps : params) preds (a : Block.t) =
  match two_way_exit f a with
  | None -> None
  | Some (_, t_label, f_label, _) -> (
      let arm label =
        match Func.find_block f label with
        | Some b
          when single_pred preds label && arm_convertible ps b
               && b != Func.entry f && b != a ->
            Some b
        | _ -> None
      in
      match (arm t_label, arm f_label) with
      | Some tb, Some fb -> (
          match (straight_successor f tb, straight_successor f fb) with
          | Some j1, Some j2
            when j1 = j2 && j1 <> t_label && j1 <> f_label
                 && j1 <> a.Block.label ->
              Some (Diamond (tb, fb, j1))
          | Some j1, _ when j1 = f_label -> Some (Triangle_taken (tb, f_label))
          | _, Some j2 when j2 = t_label -> Some (Triangle_fall (fb, t_label))
          | _ -> None)
      | Some tb, None -> (
          match straight_successor f tb with
          | Some j1 when j1 = f_label -> Some (Triangle_taken (tb, f_label))
          | _ -> None)
      | None, Some fb -> (
          match straight_successor f fb with
          | Some j2 when j2 = t_label -> Some (Triangle_fall (fb, t_label))
          | _ -> None)
      | None, None -> None)

(* Drop the arm's trailing unconditional branch (if any). *)
let strip_terminator (b : Block.t) =
  match List.rev b.Block.instrs with
  | last :: before when last.Instr.op = Opcode.Br && last.Instr.pred = None ->
      b.Block.instrs <- List.rev before
  | _ -> ()

let profitable (ps : params) (br : Instr.t) arms =
  let p = br.Instr.attrs.Instr.taken_prob in
  let ratio = min p (1. -. p) in
  ratio >= ps.min_path_ratio
  &&
  match arms with
  | [ x ] -> Region_util.dependence_height x <= ps.max_height_diff + 4
  | [ x; y ] ->
      abs (Region_util.dependence_height x - Region_util.dependence_height y)
      <= ps.max_height_diff
  | _ -> true

(* Attempt to if-convert one region rooted at [a]; true on success. *)
let convert_region (f : Func.t) (ps : params) preds (a : Block.t) =
  match (classify f ps preds a, two_way_exit f a) with
  | Some shape, Some (brt, _, _, before_rev) -> (
      let pt = match brt.Instr.pred with Some p -> p | None -> assert false in
      (* [before_rev] excludes the terminating branches but still contains
         the compare; find the complement among the remaining instrs *)
      let probe = Block.create "probe" in
      probe.Block.instrs <- List.rev before_rev;
      match complement_pred probe pt with
      | None -> false
      | Some (cmp, pf) ->
          let arms =
            match shape with
            | Triangle_taken (x, _) | Triangle_fall (x, _) -> [ x ]
            | Diamond (x, y, _) -> [ x; y ]
          in
          let combined_preds =
            List.fold_left
              (fun n arm -> n + block_predicates arm)
              (block_predicates a) arms
          in
          if (not (profitable ps brt arms)) || combined_preds > ps.max_block_predicates
          then false
          else begin
            (match cmp.Instr.op with
            | Opcode.Cmp (c, Opcode.Norm) -> cmp.Instr.op <- Opcode.Cmp (c, Opcode.Unc)
            | Opcode.Fcmp (c, Opcode.Norm) -> cmp.Instr.op <- Opcode.Fcmp (c, Opcode.Unc)
            | _ -> ());
            let before = List.rev before_rev in
            let arm_instrs guard (arm : Block.t) =
              strip_terminator arm;
              predicate_block arm guard;
              arm.Block.instrs
            in
            let finish arms_instrs join removed =
              a.Block.instrs <-
                before @ arms_instrs
                @ [ Instr.create Opcode.Br ~srcs:[ Operand.Label join ] ];
              f.Func.blocks <-
                List.filter (fun x -> not (List.memq x removed)) f.Func.blocks;
              a.Block.kind <- Block.Hyper;
              (stats ()).regions_converted <- (stats ()).regions_converted + 1;
              (stats ()).branches_removed <- (stats ()).branches_removed + 1
            in
            (match shape with
            | Triangle_taken (tb, join) -> finish (arm_instrs pt tb) join [ tb ]
            | Triangle_fall (fb, join) -> finish (arm_instrs pf fb) join [ fb ]
            | Diamond (tb, fb, join) ->
                finish (arm_instrs pt tb @ arm_instrs pf fb) join [ tb; fb ]);
            true
          end)
  | _ -> false

(* Iterate conversion to a fixed point.  Returns true when the function was
   mutated (a region converted, a fall-through materialized, or the closing
   jump optimization fired). *)
let run_func ?(params = default_params) (f : Func.t) =
  let materialized = Jumpopt.materialize_fallthroughs f in
  let converted = ref false in
  let changed = ref true in
  while !changed do
    changed := false;
    let preds = Func.predecessors f in
    List.iter
      (fun (a : Block.t) ->
        if (not !changed) && convert_region f params preds a then changed := true)
      f.Func.blocks;
    if !changed then converted := true
  done;
  let cleaned = Jumpopt.run_func f in
  materialized || !converted || cleaned

let run ?(params = default_params) (p : Program.t) =
  List.iter (fun f -> ignore (run_func ~params f)) p.Program.funcs
