(** Data speculation (the paper's Section 2 "future work", implemented as
    an extension): loads blocked only by unresolvable may-alias store
    dependences become advanced loads (ld.a) with an ALAT check (chk.a) at
    their original position; the scheduler may then hoist them above the
    stores, and a genuinely conflicting store forces reload recovery. *)

type params = {
  min_block_weight : float;
  max_advances_per_block : int;
  window : int;
}

val default_params : params

type stats = { mutable advanced : int; mutable checks : int }

val stats : unit -> stats
val reset_stats : unit -> unit

(** True when the function was mutated. *)
val run_func : ?params:params -> Epic_ir.Func.t -> bool
val run : ?params:params -> Epic_ir.Program.t -> unit
