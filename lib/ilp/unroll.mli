(** Superblock loop unrolling with early exits: a hot single-block self-loop
    is replicated [factor] times, each replica keeping its own exit test as
    a side exit, so no static trip count is needed. *)

type params = { factor : int; min_avg_trips : float; max_body_instrs : int }

val default_params : params

type stats = { mutable loops_unrolled : int }

val stats : unit -> stats
val reset_stats : unit -> unit

(** Returns the number of loops unrolled. *)
val run_func : ?params:params -> Epic_ir.Func.t -> int

val run : ?params:params -> Epic_ir.Program.t -> int
